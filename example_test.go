package boosting_test

import (
	"context"
	"fmt"

	"boosting"
)

// The staged Pipeline API compiles a workload once and simulates it on
// any number of machine models; shared artifacts (the compiled pair,
// the scalar baseline) are memoized across calls.
func ExamplePipeline() {
	ctx := context.Background()
	p := boosting.NewPipeline()
	c, err := p.Compile(ctx, boosting.WorkloadGrep)
	if err != nil {
		panic(err)
	}
	for _, m := range []string{"MinBoost3", "Boost7"} {
		model, err := boosting.ModelByName(m)
		if err != nil {
			panic(err)
		}
		res, err := p.Simulate(ctx, c, model)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s beats scalar: %v\n", m, res.Speedup > 1)
	}
	// Output:
	// MinBoost3 beats scalar: true
	// Boost7 beats scalar: true
}

// Compile one of the benchmark workloads for the paper's minimal boosting
// machine and inspect the outcome. Every run is verified against a
// reference interpreter before results are returned.
func ExampleCompileAndRun() {
	res, err := boosting.CompileAndRun(boosting.WorkloadGrep,
		boosting.Models().MinBoost3, boosting.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("speedup over R2000 >= 1.2:", res.Speedup >= 1.2)
	fmt.Println("boosted instructions executed:", res.BoostedExec > 0)
	fmt.Println("object growth below the paper's 2x bound:", res.ObjectGrowth < 2)
	// Output:
	// speedup over R2000 >= 1.2: true
	// boosted instructions executed: true
	// object growth below the paper's 2x bound: true
}

// Compare a statically-scheduled boosting machine against the paper's
// dynamically-scheduled machine on the same workload.
func ExampleRunDynamic() {
	static, err := boosting.CompileAndRun(boosting.WorkloadXLisp,
		boosting.Models().MinBoost3, boosting.Options{})
	if err != nil {
		panic(err)
	}
	dynamic, err := boosting.RunDynamic(boosting.WorkloadXLisp, false)
	if err != nil {
		panic(err)
	}
	// The paper's headline: minimal boosting hardware keeps up with a far
	// more complex out-of-order machine.
	fmt.Println("both beat the scalar machine:",
		static.Speedup > 1 && dynamic.Speedup > 1)
	// Output:
	// both beat the scalar machine: true
}

// Resolve machine models by name, as the CLI tools do.
func ExampleModelByName() {
	m, err := boosting.ModelByName("minboost3")
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Name, "issue width:", m.IssueWidth, "max boost level:", m.Boost.MaxLevel)
	// Output:
	// MinBoost3 issue width: 2 max boost level: 3
}

// The benchmark set follows the paper's Table 1 order.
func ExampleWorkloads() {
	for _, w := range boosting.Workloads() {
		fmt.Println(w)
	}
	// Output:
	// awk
	// compress
	// eqntott
	// espresso
	// grep
	// nroff
	// xlisp
}
