package boosting

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// TestPipelineMatchesCompileAndRun: the staged API must report exactly
// what the legacy one-shot wrapper reports.
func TestPipelineMatchesCompileAndRun(t *testing.T) {
	ctx := context.Background()
	m := Models().MinBoost3
	legacy, err := CompileAndRun(WorkloadGrep, m, Options{})
	if err != nil {
		t.Fatal(err)
	}

	p := NewPipeline()
	c, err := p.Compile(ctx, WorkloadGrep)
	if err != nil {
		t.Fatal(err)
	}
	staged, err := p.Simulate(ctx, c, m)
	if err != nil {
		t.Fatal(err)
	}
	if staged.Cycles != legacy.Cycles || staged.ScalarCycles != legacy.ScalarCycles ||
		staged.Insts != legacy.Insts || staged.BoostedExec != legacy.BoostedExec ||
		staged.Squashed != legacy.Squashed ||
		staged.PredictionAccuracy != legacy.PredictionAccuracy ||
		staged.ObjectGrowth != legacy.ObjectGrowth {
		t.Errorf("staged %+v\nlegacy %+v", staged, legacy)
	}
}

// TestPipelineCompileMemoized: repeated and concurrent Compile calls for
// the same (workload, register mode) return the same shared artifact;
// different register modes get different artifacts.
func TestPipelineCompileMemoized(t *testing.T) {
	ctx := context.Background()
	p := NewPipeline()
	first, err := p.Compile(ctx, WorkloadGrep)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	arts := make([]*Compiled, 8)
	for i := range arts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arts[i], _ = p.Compile(ctx, WorkloadGrep)
		}(i)
	}
	wg.Wait()
	for i, a := range arts {
		if a != first {
			t.Fatalf("compile %d returned a different artifact", i)
		}
	}
	inf, err := p.Compile(ctx, WorkloadGrep, WithInfiniteRegisters())
	if err != nil {
		t.Fatal(err)
	}
	if inf == first {
		t.Error("infinite-register compile shares the allocated artifact")
	}
	if !inf.InfiniteRegisters || first.InfiniteRegisters {
		t.Error("InfiniteRegisters flag not recorded on artifacts")
	}
}

// TestPipelineOptions: per-call options layer on top of pipeline
// defaults, and ablations change measured cycles.
func TestPipelineOptions(t *testing.T) {
	ctx := context.Background()
	m := Models().NoBoost

	global, err := NewPipeline().Run(ctx, WorkloadGrep, m)
	if err != nil {
		t.Fatal(err)
	}
	local, err := NewPipeline(WithLocalOnly()).Run(ctx, WorkloadGrep, m)
	if err != nil {
		t.Fatal(err)
	}
	if local.Cycles <= global.Cycles {
		t.Errorf("basic-block schedule (%d cycles) should be slower than global (%d)",
			local.Cycles, global.Cycles)
	}
	// The same ablation as a per-call option must agree with the
	// pipeline-default form.
	localCall, err := NewPipeline().Run(ctx, WorkloadGrep, m, WithLocalOnly())
	if err != nil {
		t.Fatal(err)
	}
	if localCall.Cycles != local.Cycles {
		t.Errorf("per-call option %d cycles, pipeline default %d", localCall.Cycles, local.Cycles)
	}
}

// TestPipelineSimulateBatch: every batch lane reports exactly what a
// solo Simulate of the same options reports, the schedule runs once for
// the whole batch, and a lane that would change the schedule variant is
// rejected up front.
func TestPipelineSimulateBatch(t *testing.T) {
	ctx := context.Background()
	m := Models().Boost7
	p := NewPipeline()
	c, err := p.Compile(ctx, WorkloadGrep)
	if err != nil {
		t.Fatal(err)
	}
	mem := DefaultMemConfig()
	mem.L1 = MemCacheConfig{Sets: 64, Ways: 1, LineBytes: 16}
	lanes := [][]Option{
		nil,
		{WithLegacyEngine()},
		{WithMemHier(mem)},
		nil,
	}
	results, errs, err := p.SimulateBatch(ctx, c, m, lanes)
	if err != nil {
		t.Fatal(err)
	}
	passes := p.SchedulePasses()
	for i, lane := range lanes {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		solo, err := p.Simulate(ctx, c, m, lane...)
		if err != nil {
			t.Fatalf("lane %d solo: %v", i, err)
		}
		b := results[i]
		if b.Cycles != solo.Cycles || b.Speedup != solo.Speedup ||
			b.ScalarCycles != solo.ScalarCycles || b.Insts != solo.Insts ||
			b.BoostedExec != solo.BoostedExec || b.Squashed != solo.Squashed ||
			b.MemStalls != solo.MemStalls || b.Engine != solo.Engine {
			t.Errorf("lane %d diverges from solo Simulate:\nbatch %+v\nsolo  %+v", i, b, solo)
		}
	}
	// The solo reruns above hit the variant cache: the batch left exactly
	// one schedule (plus the scalar baselines) behind.
	if got := p.SchedulePasses(); got != passes {
		t.Errorf("solo reruns re-scheduled: %d passes, want %d", got, passes)
	}

	// A lane that changes the schedule variant fails the whole batch.
	if _, _, err := p.SimulateBatch(ctx, c, m, [][]Option{nil, {WithLocalOnly()}}); err == nil ||
		!strings.Contains(err.Error(), "lane 1 changes the schedule variant") {
		t.Errorf("variant-changing lane: err = %v", err)
	}
}

// TestPipelineGrid: batch results come back in cell order, identical at
// any parallelism, with per-cell errors isolated to their cell.
func TestPipelineGrid(t *testing.T) {
	ctx := context.Background()
	ms := Models()
	cells := []GridCell{
		{Workload: WorkloadGrep, Model: ms.MinBoost3},
		{Workload: WorkloadGrep, Model: ms.NoBoost, Opts: []Option{WithLocalOnly()}},
		{Workload: "nope", Model: ms.Boost1},
		{Workload: WorkloadCompress, Model: ms.Boost7},
	}

	serial, err := NewPipeline(WithParallelism(1)).Grid(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewPipeline(WithParallelism(4)).Grid(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		s, p := serial[i], parallel[i]
		if (s.Err == nil) != (p.Err == nil) {
			t.Fatalf("cell %d: serial err %v, parallel err %v", i, s.Err, p.Err)
		}
		if s.Err != nil {
			if i != 2 {
				t.Errorf("cell %d unexpectedly failed: %v", i, s.Err)
			}
			continue
		}
		if s.Result.Cycles != p.Result.Cycles || s.Result.Speedup != p.Result.Speedup {
			t.Errorf("cell %d: serial %d cycles, parallel %d", i, s.Result.Cycles, p.Result.Cycles)
		}
	}
	if serial[2].Err == nil || !strings.Contains(serial[2].Err.Error(), "nope") {
		t.Errorf("bad-workload cell error = %v", serial[2].Err)
	}
}

// TestPipelineCancellation: a cancelled context aborts Compile, Simulate
// and Grid with a wrapped context.Canceled.
func TestPipelineCancellation(t *testing.T) {
	p := NewPipeline(WithParallelism(2))
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := p.Compile(cancelled, WorkloadGrep); !errors.Is(err, context.Canceled) {
		t.Errorf("Compile on cancelled ctx: %v", err)
	}

	c, err := p.Compile(context.Background(), WorkloadGrep)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Simulate(cancelled, c, Models().MinBoost3); !errors.Is(err, context.Canceled) {
		t.Errorf("Simulate on cancelled ctx: %v", err)
	}

	var cells []GridCell
	for _, w := range Workloads() {
		cells = append(cells, GridCell{Workload: w, Model: Models().MinBoost3})
	}
	results, err := p.Grid(cancelled, cells)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Grid on cancelled ctx: %v", err)
	}
	for i, r := range results {
		if r.Err == nil && r.Result == nil {
			t.Errorf("cell %d left with neither result nor error", i)
		}
	}
}
