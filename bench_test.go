// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablation benches for the design choices DESIGN.md calls
// out. Each benchmark regenerates its experiment end to end (compile,
// simulate, verify) and reports the headline numbers via b.ReportMetric,
// so `go test -bench=. -benchmem` reproduces the paper's results table by
// table.
package boosting

import (
	"context"
	"testing"

	"boosting/internal/core"
	"boosting/internal/dynsched"
	"boosting/internal/experiments"
	"boosting/internal/hwcost"
	"boosting/internal/machine"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/regalloc"
	"boosting/internal/sim"
	"boosting/internal/workloads"
)

// BenchmarkTable1 regenerates Table 1 (scalar cycles, IPC, prediction
// accuracy per benchmark) and reports the mean IPC and accuracy.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		rows, err := s.Table1(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		var ipc, acc float64
		for _, r := range rows {
			ipc += r.IPC
			acc += r.Accuracy
		}
		b.ReportMetric(ipc/float64(len(rows)), "mean-R2000-IPC")
		b.ReportMetric(100*acc/float64(len(rows)), "mean-accuracy-%")
	}
}

// BenchmarkFigure8 regenerates Figure 8 and reports the geometric-mean
// speedups of basic-block and global scheduling (paper: 1.14x and 1.24x).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		_, gmBB, gmGl, err := s.Figure8(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(gmBB, "gm-basicblock-x")
		b.ReportMetric(gmGl, "gm-global-x")
	}
}

// BenchmarkTable2 regenerates Table 2 and reports the geometric-mean
// improvement of each boosting configuration over global scheduling
// (paper: 9.9%, 17.0%, 19.3%, 20.5%).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		_, geo, err := s.Table2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*geo["Squashing"], "gm-squashing-%")
		b.ReportMetric(100*geo["Boost1"], "gm-boost1-%")
		b.ReportMetric(100*geo["MinBoost3"], "gm-minboost3-%")
		b.ReportMetric(100*geo["Boost7"], "gm-boost7-%")
	}
}

// BenchmarkFigure9 regenerates Figure 9 and reports the geometric-mean
// speedups of MinBoost3 and the dynamic scheduler over the scalar machine
// (paper: both ≈1.5x).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		_, gmMB3, gmDyn, err := s.Figure9(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(gmMB3, "gm-minboost3-x")
		b.ReportMetric(gmDyn, "gm-dynamic-x")
	}
}

// BenchmarkExceptionOverhead measures §2.3's costs: the object-file growth
// from recovery code (paper: <2x) across the benchmark set.
func BenchmarkExceptionOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		ec, err := s.ExceptionCostsReport(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, g := range ec.Growth {
			if g > worst {
				worst = g
			}
		}
		b.ReportMetric(worst, "worst-object-growth-x")
		b.ReportMetric(float64(ec.HandlerOverhead), "handler-cycles")
	}
}

// BenchmarkHardwareCost evaluates the §4.3.2 shadow register file cost
// model (paper: Boost1 +33%, MinBoost3 +50% decoder transistors).
func BenchmarkHardwareCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := hwcost.NewReport()
		b.ReportMetric(100*r.DecoderGrowth1, "boost1-decoder-%")
		b.ReportMetric(100*r.DecoderGrowth3, "minboost3-decoder-%")
	}
}

// --- ablation benches (DESIGN.md §7) ---

// ablationCycles compiles every workload under MinBoost3 with the given
// scheduler options and returns total cycles.
func ablationCycles(b *testing.B, opts core.Options) int64 {
	b.Helper()
	var total int64
	for _, w := range workloads.All() {
		train := w.BuildTrain()
		test := w.BuildTest()
		if _, err := regalloc.Allocate(train); err != nil {
			b.Fatal(err)
		}
		if _, err := regalloc.Allocate(test); err != nil {
			b.Fatal(err)
		}
		if err := profile.Annotate(train); err != nil {
			b.Fatal(err)
		}
		if err := profile.Transfer(train, test); err != nil {
			b.Fatal(err)
		}
		sp, err := core.Schedule(test, machine.MinBoost3(), opts)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Exec(sp, sim.ExecConfig{})
		if err != nil {
			b.Fatal(err)
		}
		total += res.Cycles
	}
	return total
}

// BenchmarkAblationEquivalence measures the value of the control/data
// equivalence shortcut (paper §3.2.2): scheduling with it disabled forces
// duplication-based bookkeeping everywhere.
func BenchmarkAblationEquivalence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := ablationCycles(b, core.Options{})
		without := ablationCycles(b, core.Options{DisableEquivalence: true})
		b.ReportMetric(float64(without)/float64(with), "cycles-without/with")
	}
}

// BenchmarkAblationDisambiguation measures the simple base+offset memory
// disambiguator against fully conservative memory dependences (the
// paper's conclusion calls for "better memory disambiguation").
func BenchmarkAblationDisambiguation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := ablationCycles(b, core.Options{})
		without := ablationCycles(b, core.Options{NoDisambiguation: true})
		b.ReportMetric(float64(without)/float64(with), "cycles-without/with")
	}
}

// BenchmarkAblationTraceLength measures the value of long traces by
// capping trace growth at two blocks.
func BenchmarkAblationTraceLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		long := ablationCycles(b, core.Options{})
		short := ablationCycles(b, core.Options{MaxTraceBlocks: 2})
		b.ReportMetric(float64(short)/float64(long), "cycles-short/long")
	}
}

// BenchmarkSimulatorThroughput measures the raw cycle-simulation rate of
// the boosting-hardware simulator (engineering metric, not a paper
// number).
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, err := workloads.ByName("espresso")
	if err != nil {
		b.Fatal(err)
	}
	train := w.BuildTrain()
	test := w.BuildTest()
	if _, err := regalloc.Allocate(train); err != nil {
		b.Fatal(err)
	}
	if _, err := regalloc.Allocate(test); err != nil {
		b.Fatal(err)
	}
	if err := profile.Annotate(train); err != nil {
		b.Fatal(err)
	}
	if err := profile.Transfer(train, test); err != nil {
		b.Fatal(err)
	}
	sp, err := core.Schedule(test, machine.MinBoost3(), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := sim.Exec(sp, sim.ExecConfig{})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkDynamicSchedulerThroughput measures the out-of-order timing
// model's simulation rate.
func BenchmarkDynamicSchedulerThroughput(b *testing.B) {
	w, err := workloads.ByName("espresso")
	if err != nil {
		b.Fatal(err)
	}
	var pr *prog.Program
	build := func() {
		pr = w.BuildTest()
		if _, err := regalloc.Allocate(pr); err != nil {
			b.Fatal(err)
		}
	}
	build()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		build()
		b.StartTimer()
		res, err := dynsched.Simulate(pr, dynsched.Default())
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// --- extension benches (paper §4.3.2 future-work experiments) ---

// BenchmarkExtensionUnrolling measures MinBoost3 with all innermost loops
// unrolled ×2 (the paper: "performance did increase slightly [but] well
// below what we expected").
func BenchmarkExtensionUnrolling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		var base, unrolled int64
		for _, w := range s.Workloads {
			c, err := s.UnrolledCycles(context.Background(), w)
			if err != nil {
				b.Fatal(err)
			}
			unrolled += c
			c2, err2 := suiteMinBoost3(s, w)
			if err2 != nil {
				b.Fatal(err2)
			}
			base += c2
		}
		b.ReportMetric(float64(base)/float64(unrolled), "speedup-from-unrolling")
	}
}

// suiteMinBoost3 measures the standard MinBoost3 pipeline for a workload.
func suiteMinBoost3(s *experiments.Suite, w *workloads.Workload) (int64, error) {
	return s.MeasureModel(context.Background(), w, machine.MinBoost3())
}

// BenchmarkExtensionPreschedule measures the dynamic scheduler fed
// globally-prescheduled code (the paper: "we can more efficiently use the
// machine resources [by prescheduling]").
func BenchmarkExtensionPreschedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		var plain, pre int64
		for _, w := range s.Workloads {
			c, err := s.DynCycles(context.Background(), w, false)
			if err != nil {
				b.Fatal(err)
			}
			plain += c
			c2, err := s.DynPrescheduled(context.Background(), w, false)
			if err != nil {
				b.Fatal(err)
			}
			pre += c2
		}
		b.ReportMetric(float64(plain)/float64(pre), "speedup-from-preschedule")
	}
}

// BenchmarkExtensionCache quantifies the paper's perfect-memory caveat: it
// reports the MinBoost3-over-scalar geometric-mean speedup with the
// paper's perfect memory and with an 8KiB direct-mapped data cache on both
// machines.
func BenchmarkExtensionCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		var perf, cach []float64
		for _, w := range s.Workloads {
			p, c, err := s.CacheSpeedups(context.Background(), w)
			if err != nil {
				b.Fatal(err)
			}
			perf = append(perf, p)
			cach = append(cach, c)
		}
		b.ReportMetric(experiments.GeoMean(perf), "gm-perfect-memory-x")
		b.ReportMetric(experiments.GeoMean(cach), "gm-with-cache-x")
	}
}

// BenchmarkAblationROBSize sweeps the dynamic machine's reorder-buffer
// size around the paper's 16 entries, reporting total workload cycles per
// configuration (evaluating the paper's choice of parameters).
func BenchmarkAblationROBSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(rob int) int64 {
			var total int64
			for _, w := range workloads.All() {
				pr := w.BuildTest()
				if _, err := regalloc.Allocate(pr); err != nil {
					b.Fatal(err)
				}
				cfg := dynsched.Default()
				cfg.ROBSize = rob
				res, err := dynsched.Simulate(pr, cfg)
				if err != nil {
					b.Fatal(err)
				}
				total += res.Cycles
			}
			return total
		}
		paper := run(16)
		b.ReportMetric(float64(run(4))/float64(paper), "rob4/rob16-cycles")
		b.ReportMetric(float64(run(64))/float64(paper), "rob64/rob16-cycles")
	}
}

// BenchmarkExtensionIssueWidth explores how boosting's benefit scales
// with issue width: MinBoost3-style boosting on the paper's 2-issue
// machine versus a 4-issue machine (two copies of each side).
func BenchmarkExtensionIssueWidth(b *testing.B) {
	wide := machine.Wide4(machine.MinBoost3().Boost)
	wide.Name = "Wide4MinBoost3"
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		var two, four []float64
		for _, w := range s.Workloads {
			scalar, err := s.ScalarCycles(context.Background(), w)
			if err != nil {
				b.Fatal(err)
			}
			c2, err := s.MeasureModel(context.Background(), w, machine.MinBoost3())
			if err != nil {
				b.Fatal(err)
			}
			c4, err := s.MeasureModel(context.Background(), w, wide)
			if err != nil {
				b.Fatal(err)
			}
			two = append(two, float64(scalar)/float64(c2))
			four = append(four, float64(scalar)/float64(c4))
		}
		b.ReportMetric(experiments.GeoMean(two), "gm-2wide-x")
		b.ReportMetric(experiments.GeoMean(four), "gm-4wide-x")
	}
}
