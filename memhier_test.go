package boosting

import (
	"context"
	"testing"
)

// TestWithMemHierTimingOnly: a finite memory hierarchy slows the run and
// reports stall statistics, but never changes what the program computes —
// outputs, instruction counts and speculation activity are identical to
// the perfect-memory run, and the scalar baseline is re-measured under
// the same hierarchy so Speedup stays like-for-like.
func TestWithMemHierTimingOnly(t *testing.T) {
	ctx := context.Background()
	p := NewPipeline()
	c, err := p.Compile(ctx, WorkloadGrep)
	if err != nil {
		t.Fatal(err)
	}
	m := Models().MinBoost3

	perfect, err := p.Simulate(ctx, c, m)
	if err != nil {
		t.Fatal(err)
	}
	if perfect.Mem != nil || perfect.MemStalls != 0 {
		t.Errorf("perfect-memory run reports hierarchy stats: stalls=%d mem=%+v",
			perfect.MemStalls, perfect.Mem)
	}

	hier, err := p.Simulate(ctx, c, m, WithMemHier(DefaultMemConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if hier.Cycles <= perfect.Cycles {
		t.Errorf("hierarchy run %d cycles, want > perfect %d", hier.Cycles, perfect.Cycles)
	}
	if hier.MemStalls == 0 || hier.Mem == nil {
		t.Fatalf("hierarchy run reports no memory activity: %+v", hier)
	}
	if hier.Cycles != perfect.Cycles+hier.MemStalls {
		t.Errorf("cycles %d != perfect %d + stalls %d",
			hier.Cycles, perfect.Cycles, hier.MemStalls)
	}
	if hier.Insts != perfect.Insts || hier.BoostedExec != perfect.BoostedExec ||
		hier.Squashed != perfect.Squashed {
		t.Errorf("architectural counters changed: hier %+v perfect %+v", hier, perfect)
	}
	if len(hier.Out) != len(perfect.Out) {
		t.Fatalf("output length changed: %d vs %d", len(hier.Out), len(perfect.Out))
	}
	for i := range hier.Out {
		if hier.Out[i] != perfect.Out[i] {
			t.Fatalf("out[%d] = %d, perfect %d", i, hier.Out[i], perfect.Out[i])
		}
	}
	if hier.ScalarCycles <= perfect.ScalarCycles {
		t.Errorf("scalar baseline %d not re-measured under hierarchy (perfect %d)",
			hier.ScalarCycles, perfect.ScalarCycles)
	}
	if hier.Mem.Accesses == 0 || hier.Mem.L1Misses == 0 {
		t.Errorf("hierarchy counters empty: %+v", hier.Mem)
	}
}

// TestWithoutBoostedLoads: forbidding boosted loads on a machine without
// a shadow store buffer (MinBoost3) leaves no speculative memory
// accesses at all, so the boosted/squashed stall counters go to zero,
// while the baseline configuration does lose cycles to squashed
// speculative misses. A tiny single-level cache makes the speculative
// misses unmissable (awk's boosted loads all hit an 8 KiB L1).
func TestWithoutBoostedLoads(t *testing.T) {
	ctx := context.Background()
	p := NewPipeline(WithMemHier(SingleLevelMemConfig(16, 1, 16, 30)))
	c, err := p.Compile(ctx, WorkloadAWK)
	if err != nil {
		t.Fatal(err)
	}
	m := Models().MinBoost3

	base, err := p.Simulate(ctx, c, m)
	if err != nil {
		t.Fatal(err)
	}
	if base.BoostedMemStalls == 0 || base.SquashedMemStalls == 0 {
		t.Errorf("baseline run has no speculative memory stalls (boosted=%d squashed=%d); ablation has nothing to isolate",
			base.BoostedMemStalls, base.SquashedMemStalls)
	}

	nobl, err := p.Simulate(ctx, c, m, WithoutBoostedLoads())
	if err != nil {
		t.Fatal(err)
	}
	if nobl.BoostedMemStalls != 0 || nobl.SquashedMemStalls != 0 {
		t.Errorf("no-boosted-loads run still stalls speculatively: boosted=%d squashed=%d",
			nobl.BoostedMemStalls, nobl.SquashedMemStalls)
	}
	if nobl.BoostedExec >= base.BoostedExec {
		t.Errorf("no-boosted-loads boosted %d insts, want < baseline %d",
			nobl.BoostedExec, base.BoostedExec)
	}
}

// TestWithPerfectMemory overrides a pipeline-level hierarchy for one
// call.
func TestWithPerfectMemory(t *testing.T) {
	ctx := context.Background()
	p := NewPipeline(WithMemHier(DefaultMemConfig()))
	res, err := p.Run(ctx, WorkloadGrep, Models().MinBoost3, WithPerfectMemory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem != nil || res.MemStalls != 0 {
		t.Errorf("WithPerfectMemory did not clear the hierarchy: %+v", res)
	}
}

// TestSimulateDynamicWithMemHier: the dynamically-scheduled baseline
// honors the same hierarchy option and stays architecturally identical.
func TestSimulateDynamicWithMemHier(t *testing.T) {
	ctx := context.Background()
	p := NewPipeline()
	c, err := p.Compile(ctx, WorkloadGrep)
	if err != nil {
		t.Fatal(err)
	}
	perfect, err := p.SimulateDynamic(ctx, c, true)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := p.SimulateDynamic(ctx, c, true, WithMemHier(DefaultMemConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if hier.MemStalls == 0 || hier.Mem == nil {
		t.Fatalf("dynamic hierarchy run reports no memory activity: %+v", hier)
	}
	if hier.Cycles <= perfect.Cycles {
		t.Errorf("dynamic hierarchy run %d cycles, want > perfect %d", hier.Cycles, perfect.Cycles)
	}
	if hier.Mispredicts != perfect.Mispredicts {
		t.Errorf("mispredicts changed under hierarchy: %d vs %d",
			hier.Mispredicts, perfect.Mispredicts)
	}
	for i := range hier.Out {
		if hier.Out[i] != perfect.Out[i] {
			t.Fatalf("dynamic out[%d] = %d, perfect %d", i, hier.Out[i], perfect.Out[i])
		}
	}
}
