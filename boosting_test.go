package boosting

import (
	"context"
	"testing"
)

func TestCompileAndRunGrep(t *testing.T) {
	models := Models()
	res, err := CompileAndRun(WorkloadGrep, models.MinBoost3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 1.0 {
		t.Errorf("MinBoost3 speedup %.2f should exceed 1", res.Speedup)
	}
	if res.BoostedExec == 0 {
		t.Error("expected boosted instructions on grep")
	}
	if res.ObjectGrowth >= 2 {
		t.Errorf("object growth %.2f exceeds the paper's bound", res.ObjectGrowth)
	}
	if res.PredictionAccuracy < 0.9 {
		t.Errorf("grep accuracy %.2f too low", res.PredictionAccuracy)
	}
	if len(res.Out) == 0 {
		t.Error("no output")
	}
}

func TestCompileAndRunRejectsUnknown(t *testing.T) {
	if _, err := CompileAndRun("nope", Models().Boost1, Options{}); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestWorkloadsList(t *testing.T) {
	ws := Workloads()
	if len(ws) != 7 || ws[0] != WorkloadAWK || ws[6] != WorkloadXLisp {
		t.Fatalf("workload list %v", ws)
	}
}

func TestRunDynamic(t *testing.T) {
	res, err := RunDynamic(WorkloadXLisp, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Speedup <= 0 {
		t.Fatalf("bad result %+v", res)
	}
	ren, err := RunDynamic(WorkloadXLisp, true)
	if err != nil {
		t.Fatal(err)
	}
	if ren.Cycles > res.Cycles {
		t.Errorf("renaming should not slow the machine (%d vs %d)", ren.Cycles, res.Cycles)
	}
}

func TestInfiniteRegistersAtLeastAsFast(t *testing.T) {
	m := Models().Boost1
	alloc, err := CompileAndRun(WorkloadAWK, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inf, err := CompileAndRun(WorkloadAWK, m, Options{InfiniteRegisters: true})
	if err != nil {
		t.Fatal(err)
	}
	if inf.Cycles > alloc.Cycles {
		t.Errorf("infinite registers slower (%d) than allocated (%d)", inf.Cycles, alloc.Cycles)
	}
}

func TestModelByName(t *testing.T) {
	for name, want := range map[string]string{
		"r2000": "R2000", "scalar": "R2000", "NoBoost": "NoBoost",
		"base": "NoBoost", "SQUASH": "Squashing", "boost1": "Boost1",
		"MinBoost3": "MinBoost3", "boost7": "Boost7",
	} {
		m, err := ModelByName(name)
		if err != nil || m.Name != want {
			t.Errorf("ModelByName(%q) = %v, %v; want %s", name, m, err, want)
		}
	}
	if _, err := ModelByName("pentium"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestScheduleListing(t *testing.T) {
	ctx := context.Background()
	out, err := ScheduleListing(ctx, WorkloadGrep, Models().MinBoost3)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{".sched main", ".B", " | "} {
		if !contains(out, want) {
			t.Errorf("listing missing %q", want)
		}
	}
	if _, err := ScheduleListing(ctx, "nope", Models().Boost1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
