package passes

import (
	"errors"
	"strings"
	"testing"

	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/profile"
	"boosting/internal/prog"
)

const countdownAsm = `
.proc main
entry:
	li v1, 3
	li v2, 0
	;fallthrough -> loop
loop:
	add v2, v2, v1
	addi v1, v1, -1
	bgtz v1, loop, done
done:
	out v2
	halt
`

func buildProfiled(t *testing.T) *prog.Program {
	t.Helper()
	pr, err := prog.Parse(countdownAsm)
	if err != nil {
		t.Fatal(err)
	}
	if err := profile.Annotate(pr); err != nil {
		t.Fatal(err)
	}
	return pr
}

// TestRunRecordsPasses checks the basic bookkeeping: each Run appends a
// named, timed row and TotalSeconds accumulates.
func TestRunRecordsPasses(t *testing.T) {
	m := NewManager()
	if err := m.Run("first", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := m.Run("second", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	cs := m.Stats()
	if len(cs.Passes) != 2 {
		t.Fatalf("recorded %d passes, want 2", len(cs.Passes))
	}
	for _, name := range []string{"first", "second"} {
		row := cs.Find(name)
		if row == nil {
			t.Fatalf("no row for pass %q", name)
		}
		if row.Seconds < 0 {
			t.Errorf("pass %q has negative time %v", name, row.Seconds)
		}
	}
	if cs.Find("third") != nil {
		t.Error("Find returned a row for a pass that never ran")
	}
	if cs.Sched() != nil {
		t.Error("Sched() non-nil without a schedule pass")
	}
	if want := cs.Passes[0].Seconds + cs.Passes[1].Seconds; cs.TotalSeconds != want {
		t.Errorf("TotalSeconds = %v, want %v", cs.TotalSeconds, want)
	}
}

// TestRunWrapsErrors checks that a failing pass is still recorded and its
// error comes back wrapped with the pass name.
func TestRunWrapsErrors(t *testing.T) {
	m := NewManager()
	sentinel := errors.New("boom")
	err := m.Run("explode", func() error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap the pass error", err)
	}
	if !strings.Contains(err.Error(), "passes: explode:") {
		t.Errorf("error %q lacks the pass-name prefix", err)
	}
	if m.Stats().Find("explode") == nil {
		t.Error("failed pass was not recorded")
	}
}

// TestRunVerifyEach checks that VerifyEach runs the program verifier
// after a pass and attributes a corrupted CFG to that pass.
func TestRunVerifyEach(t *testing.T) {
	pr := buildProfiled(t)
	m := NewManager()
	m.VerifyEach = true
	if err := m.Run("harmless", func() error { return nil }, pr); err != nil {
		t.Fatalf("verified pass on a healthy program failed: %v", err)
	}
	err := m.Run("corrupt", func() error {
		// A conditional branch must have two successors; drop one.
		loop := pr.Main().Blocks[1]
		loop.Succs = loop.Succs[:1]
		return nil
	}, pr)
	if err == nil {
		t.Fatal("verifier accepted a corrupted CFG")
	}
	if !strings.Contains(err.Error(), "verify after corrupt") {
		t.Errorf("error %q does not name the corrupting pass", err)
	}
}

// TestScheduleStageRows checks the trace-scheduling pass: stage rows plus
// a "schedule" row carrying the full scheduler counter set, with the
// stage times bounded by the schedule time.
func TestScheduleStageRows(t *testing.T) {
	pr := buildProfiled(t)
	m := NewManager()
	m.VerifyEach = true
	sp, err := m.Schedule(pr, machine.MinBoost3(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sp == nil {
		t.Fatal("Schedule returned no program")
	}
	cs := m.Stats()
	for _, name := range []string{"trace-select", "ddg-build", "list-schedule", "recovery-emit", "schedule"} {
		if cs.Find(name) == nil {
			t.Errorf("no row for %q", name)
		}
	}
	st := cs.Sched()
	if st == nil {
		t.Fatal("schedule row carries no scheduler stats")
	}
	if st.TracesFormed == 0 {
		t.Error("scheduler stats report no traces")
	}
	sched := cs.Find("schedule")
	for _, stage := range []string{"trace-select", "ddg-build", "list-schedule", "recovery-emit"} {
		if row := cs.Find(stage); row.Seconds > sched.Seconds {
			t.Errorf("stage %q (%vs) exceeds its enclosing schedule pass (%vs)",
				stage, row.Seconds, sched.Seconds)
		}
	}
	// Stage rows are sub-spans: only the schedule row counts toward the
	// total.
	if cs.TotalSeconds != sched.Seconds {
		t.Errorf("TotalSeconds = %v, want the schedule row's %v", cs.TotalSeconds, sched.Seconds)
	}
}

// TestScheduleErrorRecorded checks that a failing schedule still records
// a timed "schedule" row and returns the raw scheduler error.
func TestScheduleErrorRecorded(t *testing.T) {
	pr := buildProfiled(t)
	// A model whose single slot accepts no instruction class cannot place
	// anything: the list scheduler fails to converge.
	bad := &machine.Model{Name: "bad", IssueWidth: 1, Slots: make([]machine.ClassSet, 1)}
	m := NewManager()
	if _, err := m.Schedule(pr, bad, core.Options{}); err == nil {
		t.Fatal("scheduling on a slotless model succeeded")
	}
	if m.Stats().Find("schedule") == nil {
		t.Error("failed schedule pass was not recorded")
	}
	if m.Stats().Sched() != nil {
		t.Error("failed schedule pass carries scheduler counters")
	}
}

// TestCompileStatsAdd checks the aggregation used by the experiments
// engine and boostd metrics: same-named rows accumulate, new rows append,
// scheduler counters merge.
func TestCompileStatsAdd(t *testing.T) {
	var agg CompileStats
	agg.Add(nil) // no-op

	for i := 0; i < 2; i++ {
		pr := buildProfiled(t)
		m := NewManager()
		if err := m.Run("parse", func() error { return nil }); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Schedule(pr, machine.MinBoost3(), core.Options{}); err != nil {
			t.Fatal(err)
		}
		agg.Add(m.Stats())
	}

	if got := len(agg.Passes); got != 6 {
		t.Errorf("aggregate has %d rows, want 6 (parse + 4 stages + schedule)", got)
	}
	st := agg.Sched()
	if st == nil {
		t.Fatal("aggregate lost the scheduler counters")
	}
	single := CompileStats{}
	m := NewManager()
	pr := buildProfiled(t)
	if _, err := m.Schedule(pr, machine.MinBoost3(), core.Options{}); err != nil {
		t.Fatal(err)
	}
	single.Add(m.Stats())
	if st.TracesFormed != 2*single.Sched().TracesFormed {
		t.Errorf("merged TracesFormed = %d, want twice %d",
			st.TracesFormed, single.Sched().TracesFormed)
	}
	if agg.TotalSeconds <= 0 {
		t.Error("aggregate TotalSeconds not accumulated")
	}
}
