// Package passes structures the compile side as an explicit pass
// pipeline: a Manager runs named, individually timed passes — workload
// build, register allocation, profiling, trace scheduling — over a
// program and reports structured PassStats for each. The trace-scheduling
// pass expands into its per-stage rows (trace-select, ddg-build,
// list-schedule, recovery-emit) and carries the scheduler's full counter
// set (motions, rejections by reason, boosting depth, compensation,
// recovery, analysis-cache activity) from core.ScheduleWithStats.
//
// The manager imposes no fixed pass list: callers sequence passes to
// match their flow (the assembly service interleaves a bounded reference
// run between regalloc and profiling; the workload pipeline does not),
// and every pass lands in the same stats schema. With VerifyEach set,
// the prog verifier runs after every pass, turning a pass that corrupts
// the CFG into an immediate, named failure instead of a downstream
// mystery.
package passes

import (
	"fmt"
	"time"

	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/prog"
)

// PassStats is one row of a compile report: a named pass (or scheduler
// stage) and its wall time. The "schedule" row additionally carries the
// trace scheduler's full counter set.
type PassStats struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	// Sched is set only on the "schedule" row: the scheduler's motion,
	// rejection, boosting, compensation, recovery and analysis-cache
	// counters.
	Sched *core.Stats `json:"sched,omitempty"`
}

// CompileStats is the structured per-pass report of one compile.
//
// Stage rows (trace-select, ddg-build, list-schedule, recovery-emit) are
// sub-spans of the "schedule" row, so TotalSeconds counts top-level
// passes only.
type CompileStats struct {
	Passes       []PassStats `json:"passes"`
	TotalSeconds float64     `json:"total_seconds"`
}

// Find returns the named row, or nil.
func (cs *CompileStats) Find(name string) *PassStats {
	for i := range cs.Passes {
		if cs.Passes[i].Name == name {
			return &cs.Passes[i]
		}
	}
	return nil
}

// Sched returns the "schedule" row's scheduler counters, or nil if no
// schedule pass ran.
func (cs *CompileStats) Sched() *core.Stats {
	if row := cs.Find("schedule"); row != nil {
		return row.Sched
	}
	return nil
}

// Add merges other into cs: same-named rows accumulate seconds (and
// scheduler counters), new rows append. Aggregators (experiments cells,
// service metrics) use this to fold many compiles into one report.
func (cs *CompileStats) Add(other *CompileStats) {
	if other == nil {
		return
	}
	for _, row := range other.Passes {
		dst := cs.Find(row.Name)
		if dst == nil {
			cs.Passes = append(cs.Passes, PassStats{Name: row.Name})
			dst = &cs.Passes[len(cs.Passes)-1]
		}
		dst.Seconds += row.Seconds
		if row.Sched != nil {
			if dst.Sched == nil {
				dst.Sched = core.NewStats()
			}
			dst.Sched.Merge(row.Sched)
		}
	}
	cs.TotalSeconds += other.TotalSeconds
}

// Manager sequences named passes over a program and accumulates their
// stats. The zero value is ready to use; it is not safe for concurrent
// use (one compile = one manager).
type Manager struct {
	// VerifyEach runs the prog verifier over the whole program after
	// every pass, attributing any broken CFG invariant to the pass that
	// introduced it.
	VerifyEach bool

	stats CompileStats
}

// NewManager returns an empty pass manager.
func NewManager() *Manager { return &Manager{} }

// Stats returns the accumulated report. The returned value is shared
// with the manager; run all passes before reading it.
func (m *Manager) Stats() *CompileStats { return &m.stats }

// Run executes fn as the named pass: timed, recorded, and — with
// VerifyEach — followed by the prog verifier over each program in progs
// (the programs the pass mutated). Errors are wrapped with the pass
// name.
func (m *Manager) Run(name string, fn func() error, progs ...*prog.Program) error {
	start := time.Now()
	err := fn()
	sec := time.Since(start).Seconds()
	m.stats.Passes = append(m.stats.Passes, PassStats{Name: name, Seconds: sec})
	m.stats.TotalSeconds += sec
	if err != nil {
		return fmt.Errorf("passes: %s: %w", name, err)
	}
	for _, pr := range progs {
		if err := m.verifyAfter(pr, name); err != nil {
			return err
		}
	}
	return nil
}

// Schedule runs the trace-scheduling pass, recording the scheduler's
// per-stage rows plus an aggregate "schedule" row that carries the full
// core.Stats payload.
func (m *Manager) Schedule(pr *prog.Program, model *machine.Model, opts core.Options) (*machine.SchedProgram, error) {
	start := time.Now()
	sp, st, err := core.ScheduleWithStats(pr, model, opts)
	sec := time.Since(start).Seconds()
	if err != nil {
		m.stats.Passes = append(m.stats.Passes, PassStats{Name: "schedule", Seconds: sec})
		m.stats.TotalSeconds += sec
		return nil, err
	}
	m.stats.Passes = append(m.stats.Passes,
		PassStats{Name: "trace-select", Seconds: st.TraceSelectSeconds},
		PassStats{Name: "ddg-build", Seconds: st.DDGBuildSeconds},
		PassStats{Name: "list-schedule", Seconds: st.ListScheduleSeconds},
		PassStats{Name: "recovery-emit", Seconds: st.RecoveryEmitSeconds},
		PassStats{Name: "schedule", Seconds: sec, Sched: st},
	)
	m.stats.TotalSeconds += sec
	if err := m.verifyAfter(pr, "schedule"); err != nil {
		return nil, err
	}
	return sp, nil
}

func (m *Manager) verifyAfter(pr *prog.Program, name string) error {
	if !m.VerifyEach || pr == nil {
		return nil
	}
	if err := prog.VerifyProgram(pr); err != nil {
		return fmt.Errorf("passes: verify after %s: %w", name, err)
	}
	return nil
}
