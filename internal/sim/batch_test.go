package sim_test

import (
	"reflect"
	"testing"

	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/memhier"
	"boosting/internal/prog"
	"boosting/internal/sim"
)

// TestExecBatchLaneIdentity proves every ExecBatch lane is byte-identical
// to a solo Exec run of the same config, across models × engines × memhier
// configs in one mixed batch. This is the in-repo half of the lane-vs-solo
// oracle; the difftest "/batch" config is the external half.
func TestExecBatchLaneIdentity(t *testing.T) {
	master := compileWorkload(t, "grep")
	models := []*machine.Model{machine.NoBoost(), machine.Boost1(), machine.Boost7()}
	for _, model := range models {
		sp, err := core.Schedule(prog.Clone(master), model, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		defaultMem := memhier.Default()
		strideMem := memhier.Default()
		strideMem.Prefetch = "stride"
		cfgs := []sim.ExecConfig{
			{Engine: sim.EngineFast},
			{Engine: sim.EngineLegacy},
			{Engine: sim.EngineFast, Mem: &defaultMem},
			{Engine: sim.EngineLegacy, Mem: &defaultMem},
			{Engine: sim.EngineFast, Mem: &strideMem},
			{Engine: sim.EngineFast, MaxCycles: 100},
		}
		batch, berrs := sim.ExecBatch(sp, cfgs)
		if len(batch) != len(cfgs) || len(berrs) != len(cfgs) {
			t.Fatalf("%s: batch returned %d results / %d errs for %d lanes",
				model, len(batch), len(berrs), len(cfgs))
		}
		for i, cfg := range cfgs {
			solo, serr := sim.Exec(sp, cfg)
			if (serr == nil) != (berrs[i] == nil) ||
				(serr != nil && serr.Error() != berrs[i].Error()) {
				t.Errorf("%s lane %d: error mismatch: solo=%v batch=%v", model, i, serr, berrs[i])
				continue
			}
			if !reflect.DeepEqual(solo, batch[i]) {
				t.Errorf("%s lane %d: result diverges from solo run:\nsolo:  %+v\nbatch: %+v",
					model, i, solo, batch[i])
			}
		}
	}
}

// TestPredecodedExecBatchLaneIdentity drives the predecoded entry point
// directly (the path Pipeline.SimulateBatch uses) and checks lane results
// against solo pd.Exec runs, including an erroring lane retiring early
// without disturbing its neighbors.
func TestPredecodedExecBatchLaneIdentity(t *testing.T) {
	master := compileWorkload(t, "eqntott")
	sp, err := core.Schedule(prog.Clone(master), machine.Boost7(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pd, err := sim.Predecode(sp)
	if err != nil {
		t.Fatal(err)
	}
	mem := memhier.Default()
	cfgs := []sim.ExecConfig{
		{},
		{MaxCycles: 1000}, // exceeds mid-run: partial result + error
		{Mem: &mem},
		{},
	}
	batch, berrs := pd.ExecBatch(cfgs)
	if berrs[1] == nil {
		t.Errorf("lane 1: want exceeded-cycles error, got success")
	}
	for i, cfg := range cfgs {
		solo, serr := pd.Exec(cfg)
		if (serr == nil) != (berrs[i] == nil) ||
			(serr != nil && serr.Error() != berrs[i].Error()) {
			t.Errorf("lane %d: error mismatch: solo=%v batch=%v", i, serr, berrs[i])
			continue
		}
		if !reflect.DeepEqual(solo, batch[i]) {
			t.Errorf("lane %d: result diverges from solo run", i)
		}
	}
}

// TestExecBatchCallbackStreams checks that per-lane callbacks observe the
// same event streams a solo run produces, even though lanes interleave.
func TestExecBatchCallbackStreams(t *testing.T) {
	master := compileWorkload(t, "grep")
	sp, err := core.Schedule(prog.Clone(master), machine.Boost7(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	solo := traceExec(sp, sim.ExecConfig{Engine: sim.EngineFast})

	const lanes = 3
	traces := make([]*engineTrace, lanes)
	cfgs := make([]sim.ExecConfig, lanes)
	for i := range cfgs {
		tr := &engineTrace{}
		traces[i] = tr
		cfgs[i] = sim.ExecConfig{
			Engine: sim.EngineFast,
			OnStore: func(addr uint32, size int, val uint32) {
				tr.stores = append(tr.stores, [3]uint32{addr, uint32(size), val})
			},
			OnSquash: func(si sim.SquashInfo) { tr.squashes = append(tr.squashes, si) },
			OnBlock: func(proc string, id int) {
				tr.blocks = append(tr.blocks, proc)
				tr.blockIDs = append(tr.blockIDs, id)
			},
		}
	}
	batch, berrs := sim.ExecBatch(sp, cfgs)
	for i := range cfgs {
		if berrs[i] != nil {
			t.Fatalf("lane %d: %v", i, berrs[i])
		}
		traces[i].res = batch[i]
		diffTraces(t, "batch lane", traces[i], solo)
	}
}
