package sim_test

// Throughput benchmarks for the simulator cores, plus the BENCH_simcore.json
// writer and the committed-baseline regression gate that CI runs.
//
//	go test -bench BenchmarkSimCore -benchmem ./internal/sim/   ad-hoc numbers
//	make bench-simcore                                          rewrite BENCH_simcore.json
//	make bench-simcore-check                                    fail on >15% fast-core regression

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/memhier"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/regalloc"
	"boosting/internal/sim"
	"boosting/internal/testgen"
)

// simcoreWorkloads are the benchmark programs: the two longest-running
// kernels, on the deepest boosting model, where executor overhead
// dominates.
var simcoreWorkloads = []string{"eqntott", "espresso"}

// maxNsPerCycle is the ceiling the writer enforces on the fast core's
// ns per simulated cycle: >=1.5x better than the ~34 ns/cycle the
// pre-threaded-dispatch core measured.
const maxNsPerCycle = 34.0 / 1.5

func scheduleBoost7(tb testing.TB, name string) *machine.SchedProgram {
	tb.Helper()
	master := compileWorkload(tb, name)
	sp, err := core.Schedule(prog.Clone(master), machine.Boost7(), core.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	return sp
}

// BenchmarkSimCore measures whole-run simulation throughput of both
// engines on the long kernels, reporting allocations and normalized
// ns per simulated machine cycle.
func BenchmarkSimCore(b *testing.B) {
	for _, name := range simcoreWorkloads {
		sp := scheduleBoost7(b, name)
		for _, engine := range sim.Engines() {
			b.Run(engine.String()+"/"+name, func(b *testing.B) {
				b.ReportAllocs()
				var cycles int64
				for i := 0; i < b.N; i++ {
					res, err := sim.Exec(sp, sim.ExecConfig{Engine: engine})
					if err != nil {
						b.Fatal(err)
					}
					cycles = res.Cycles
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(cycles), "ns/simcycle")
			})
		}
	}
}

// engineBench is one engine's measurement in BENCH_simcore.json.
type engineBench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerCycle  float64 `json:"ns_per_cycle"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// workloadBench is one workload's measurement pair.
type workloadBench struct {
	Model   string      `json:"model"`
	Cycles  int64       `json:"cycles"`
	Fast    engineBench `json:"fast"`
	Legacy  engineBench `json:"legacy"`
	Speedup float64     `json:"speedup"`
}

// batchBench is one lockstep-batch measurement: N grid cells of the same
// schedule under N memory hierarchies, run as N cold solo passes
// (schedule + execute per input — what independent grid cells pay) versus
// one batched pass (schedule once, one lockstep ExecBatch).
type batchBench struct {
	N               int     `json:"n"`
	Cycles          int64   `json:"cycles"`
	SoloNsPerInput  float64 `json:"solo_ns_per_input"`
	BatchNsPerInput float64 `json:"batch_ns_per_input"`
	// ThroughputGain = SoloNsPerInput / BatchNsPerInput: per-input
	// throughput of the batched grid relative to solo cells.
	ThroughputGain float64 `json:"throughput_gain"`
}

type simcoreBenchFile struct {
	GeneratedBy string                   `json:"generated_by"`
	Workloads   map[string]workloadBench `json:"workloads"`
	// Batch holds the lockstep grid measurements: "short-kernel" is the
	// schedule-dominated regime (small program, the boostd grid /
	// mem-sweep shape) where batching must gain >= 2x per input;
	// "eqntott" documents the execution-dominated end of the range.
	Batch map[string]batchBench `json:"batch"`
}

// measureEngine times reps whole-program runs and counts steady-state
// allocations for one engine.
func measureEngine(tb testing.TB, sp *machine.SchedProgram, engine sim.Engine, reps int) (engineBench, int64) {
	tb.Helper()
	run := func() int64 {
		res, err := sim.Exec(sp, sim.ExecConfig{Engine: engine})
		if err != nil {
			tb.Fatal(err)
		}
		return res.Cycles
	}
	cycles := run() // warm pools and caches
	allocs := testing.AllocsPerRun(2, func() { run() })
	nsPerOp := minOverReps(reps, func() { run() })
	return engineBench{
		NsPerOp:     nsPerOp,
		NsPerCycle:  nsPerOp / float64(cycles),
		AllocsPerOp: allocs,
	}, cycles
}

// minOverReps times reps runs of f and returns the fastest in ns — the
// standard noise-resistant estimator for a deterministic workload.
func minOverReps(reps int, f func()) float64 {
	best := float64(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		if ns := float64(time.Since(start).Nanoseconds()); best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// shortKernel builds the short generated kernel of the batch benchmark's
// schedule-dominated regime: a fixed-seed testgen program through the
// production front end (register allocation + profiling).
func shortKernel(tb testing.TB) *prog.Program {
	tb.Helper()
	master := testgen.Random(7, testgen.RandomShape(7))
	if _, err := regalloc.Allocate(master); err != nil {
		tb.Fatal(err)
	}
	if err := profile.Annotate(master); err != nil {
		tb.Fatal(err)
	}
	return master
}

// measureBatch times N grid cells — the same program under N memory
// hierarchies — both as cold solo cells (schedule + execute per input)
// and as one batched pass (schedule once, one lockstep ExecBatch).
func measureBatch(tb testing.TB, master *prog.Program, n, reps int) batchBench {
	tb.Helper()
	mcfgs := make([]memhier.Config, n)
	for i := range mcfgs {
		m := memhier.Default()
		m.MemLatency = int64(20 + i)
		mcfgs[i] = m
	}
	var cycles int64
	solo := func() {
		for i := 0; i < n; i++ {
			sp, err := core.Schedule(prog.Clone(master), machine.Boost7(), core.Options{})
			if err != nil {
				tb.Fatal(err)
			}
			res, err := sim.Exec(sp, sim.ExecConfig{Mem: &mcfgs[i]})
			if err != nil {
				tb.Fatal(err)
			}
			cycles = res.Cycles
		}
	}
	batch := func() {
		sp, err := core.Schedule(prog.Clone(master), machine.Boost7(), core.Options{})
		if err != nil {
			tb.Fatal(err)
		}
		cfgs := make([]sim.ExecConfig, n)
		for i := range cfgs {
			cfgs[i] = sim.ExecConfig{Mem: &mcfgs[i]}
		}
		_, errs := sim.ExecBatch(sp, cfgs)
		for _, e := range errs {
			if e != nil {
				tb.Fatal(e)
			}
		}
	}
	solo() // warm pools and caches
	batch()
	soloNs := minOverReps(reps, solo) / float64(n)
	batchNs := minOverReps(reps, batch) / float64(n)
	return batchBench{
		N:               n,
		Cycles:          cycles,
		SoloNsPerInput:  soloNs,
		BatchNsPerInput: batchNs,
		ThroughputGain:  soloNs / batchNs,
	}
}

// TestWriteSimcoreBenchJSON measures both engines on the long kernels and
// writes BENCH_simcore.json (path in SIMCORE_BENCH_JSON; skipped when
// unset so `go test ./...` stays quiet). It fails outright if the fast
// core has lost its headline properties — <3x over legacy or an
// allocating steady state — so a regressed baseline cannot be committed.
func TestWriteSimcoreBenchJSON(t *testing.T) {
	out := os.Getenv("SIMCORE_BENCH_JSON")
	if out == "" {
		t.Skip("set SIMCORE_BENCH_JSON=path to write the simulator-core benchmark file")
	}
	file := simcoreBenchFile{
		GeneratedBy: "go test -run TestWriteSimcoreBenchJSON ./internal/sim/ (make bench-simcore)",
		Workloads:   map[string]workloadBench{},
		Batch:       map[string]batchBench{},
	}
	for _, name := range simcoreWorkloads {
		sp := scheduleBoost7(t, name)
		fast, cycles := measureEngine(t, sp, sim.EngineFast, 5)
		legacy, _ := measureEngine(t, sp, sim.EngineLegacy, 3)
		wb := workloadBench{
			Model:   "Boost7",
			Cycles:  cycles,
			Fast:    fast,
			Legacy:  legacy,
			Speedup: legacy.NsPerOp / fast.NsPerOp,
		}
		file.Workloads[name] = wb
		t.Logf("%s: fast %.2fms (%.2f ns/cycle, %.0f allocs), legacy %.2fms (%.0f allocs), %.2fx",
			name, fast.NsPerOp/1e6, fast.NsPerCycle, fast.AllocsPerOp,
			legacy.NsPerOp/1e6, legacy.AllocsPerOp, wb.Speedup)
		if wb.Speedup < 3 {
			t.Errorf("%s: fast core is only %.2fx over legacy, want >= 3x", name, wb.Speedup)
		}
		if fast.AllocsPerOp > 256 {
			t.Errorf("%s: fast core allocates %.0f objects per run; steady state should be allocation-free", name, fast.AllocsPerOp)
		}
		// Threaded dispatch + superblock chaining hold the fast core under
		// 25 ns per simulated cycle on the long kernels (the pre-refactor
		// core sat at ~34); a baseline that lost that cannot be committed.
		if fast.NsPerCycle > maxNsPerCycle {
			t.Errorf("%s: fast core at %.2f ns/simulated-cycle, want <= %.0f", name, fast.NsPerCycle, maxNsPerCycle)
		}
	}
	batches := map[string]*prog.Program{
		"short-kernel": shortKernel(t),
		"eqntott":      compileWorkload(t, "eqntott"),
	}
	for name, master := range batches {
		bb := measureBatch(t, master, 8, 5)
		file.Batch[name] = bb
		t.Logf("batch %s: solo %.2fms/input, batch %.2fms/input, %.2fx",
			name, bb.SoloNsPerInput/1e6, bb.BatchNsPerInput/1e6, bb.ThroughputGain)
	}
	// The schedule-dominated regime is the point of the lockstep batch:
	// a baseline where an 8-lane grid does not at least double per-input
	// throughput over cold solo cells cannot be committed.
	if g := file.Batch["short-kernel"].ThroughputGain; g < 2 {
		t.Errorf("short-kernel batch gain %.2fx, want >= 2x", g)
	}
	if g := file.Batch["eqntott"].ThroughputGain; g < 0.9 {
		t.Errorf("eqntott batch gain %.2fx: lockstep made the exec-bound regime slower", g)
	}
	b, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSimcoreBenchRegression re-measures the fast core and fails if it
// runs >15% slower than the committed BENCH_simcore.json baseline (path
// in SIMCORE_BENCH_BASELINE; skipped when unset). The comparison is on
// ns/op of the same machine-independent workloads, so run it on hardware
// comparable to what produced the baseline — CI regenerates the baseline
// when it moves for a justified reason.
func TestSimcoreBenchRegression(t *testing.T) {
	base := os.Getenv("SIMCORE_BENCH_BASELINE")
	if base == "" {
		t.Skip("set SIMCORE_BENCH_BASELINE=path to compare against a committed baseline")
	}
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var want simcoreBenchFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	const tolerance = 1.15
	for _, name := range simcoreWorkloads {
		wb, ok := want.Workloads[name]
		if !ok {
			t.Errorf("baseline %s lacks workload %s; regenerate with make bench-simcore", base, name)
			continue
		}
		sp := scheduleBoost7(t, name)
		got, _ := measureEngine(t, sp, sim.EngineFast, 5)
		ratio := got.NsPerOp / wb.Fast.NsPerOp
		t.Logf("%s: fast %.2fms vs baseline %.2fms (%.2fx)", name, got.NsPerOp/1e6, wb.Fast.NsPerOp/1e6, ratio)
		if ratio > tolerance {
			t.Errorf("%s: fast core regressed to %.2fx the committed baseline (tolerance %.2fx): %s",
				name, ratio, tolerance, fmt.Sprintf("%.2fms vs %.2fms", got.NsPerOp/1e6, wb.Fast.NsPerOp/1e6))
		}
		if got.AllocsPerOp > 256 {
			t.Errorf("%s: fast core allocates %.0f objects per run; steady state should be allocation-free", name, got.AllocsPerOp)
		}
	}
	// The lockstep-batch rows: per-input batch cost must stay within
	// tolerance of the committed baseline, and the schedule-dominated
	// regime must keep its >= 2x per-input throughput gain over cold
	// solo grid cells.
	batches := map[string]*prog.Program{
		"short-kernel": shortKernel(t),
		"eqntott":      compileWorkload(t, "eqntott"),
	}
	for name, master := range batches {
		wb, ok := want.Batch[name]
		if !ok {
			t.Errorf("baseline %s lacks batch row %s; regenerate with make bench-simcore", base, name)
			continue
		}
		got := measureBatch(t, master, wb.N, 5)
		ratio := got.BatchNsPerInput / wb.BatchNsPerInput
		t.Logf("batch %s: %.2fms/input vs baseline %.2fms/input (%.2fx), gain %.2fx",
			name, got.BatchNsPerInput/1e6, wb.BatchNsPerInput/1e6, ratio, got.ThroughputGain)
		switch name {
		case "short-kernel":
			// Sub-millisecond per-input runs are too noisy for an absolute
			// cross-run tolerance; the row is a ratio benchmark — solo and
			// batch measured back to back — so the gate is the gain itself.
			if got.ThroughputGain < 2 {
				t.Errorf("batch %s: throughput gain fell to %.2fx, want >= 2x over cold solo cells",
					name, got.ThroughputGain)
			}
		default:
			if ratio > tolerance {
				t.Errorf("batch %s: per-input cost regressed to %.2fx the committed baseline (tolerance %.2fx)",
					name, ratio, tolerance)
			}
		}
	}
}
