package sim_test

// Throughput benchmarks for the simulator cores, plus the BENCH_simcore.json
// writer and the committed-baseline regression gate that CI runs.
//
//	go test -bench BenchmarkSimCore -benchmem ./internal/sim/   ad-hoc numbers
//	make bench-simcore                                          rewrite BENCH_simcore.json
//	make bench-simcore-check                                    fail on >15% fast-core regression

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/prog"
	"boosting/internal/sim"
)

// simcoreWorkloads are the benchmark programs: the two longest-running
// kernels, on the deepest boosting model, where executor overhead
// dominates.
var simcoreWorkloads = []string{"eqntott", "espresso"}

func scheduleBoost7(tb testing.TB, name string) *machine.SchedProgram {
	tb.Helper()
	master := compileWorkload(tb, name)
	sp, err := core.Schedule(prog.Clone(master), machine.Boost7(), core.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	return sp
}

// BenchmarkSimCore measures whole-run simulation throughput of both
// engines on the long kernels, reporting allocations and normalized
// ns per simulated machine cycle.
func BenchmarkSimCore(b *testing.B) {
	for _, name := range simcoreWorkloads {
		sp := scheduleBoost7(b, name)
		for _, engine := range sim.Engines() {
			b.Run(engine.String()+"/"+name, func(b *testing.B) {
				b.ReportAllocs()
				var cycles int64
				for i := 0; i < b.N; i++ {
					res, err := sim.Exec(sp, sim.ExecConfig{Engine: engine})
					if err != nil {
						b.Fatal(err)
					}
					cycles = res.Cycles
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(cycles), "ns/simcycle")
			})
		}
	}
}

// engineBench is one engine's measurement in BENCH_simcore.json.
type engineBench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerCycle  float64 `json:"ns_per_cycle"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// workloadBench is one workload's measurement pair.
type workloadBench struct {
	Model   string      `json:"model"`
	Cycles  int64       `json:"cycles"`
	Fast    engineBench `json:"fast"`
	Legacy  engineBench `json:"legacy"`
	Speedup float64     `json:"speedup"`
}

type simcoreBenchFile struct {
	GeneratedBy string                   `json:"generated_by"`
	Workloads   map[string]workloadBench `json:"workloads"`
}

// measureEngine times reps whole-program runs and counts steady-state
// allocations for one engine.
func measureEngine(tb testing.TB, sp *machine.SchedProgram, engine sim.Engine, reps int) (engineBench, int64) {
	tb.Helper()
	run := func() int64 {
		res, err := sim.Exec(sp, sim.ExecConfig{Engine: engine})
		if err != nil {
			tb.Fatal(err)
		}
		return res.Cycles
	}
	cycles := run() // warm pools and caches
	allocs := testing.AllocsPerRun(2, func() { run() })
	start := time.Now()
	for i := 0; i < reps; i++ {
		run()
	}
	nsPerOp := float64(time.Since(start).Nanoseconds()) / float64(reps)
	return engineBench{
		NsPerOp:     nsPerOp,
		NsPerCycle:  nsPerOp / float64(cycles),
		AllocsPerOp: allocs,
	}, cycles
}

// TestWriteSimcoreBenchJSON measures both engines on the long kernels and
// writes BENCH_simcore.json (path in SIMCORE_BENCH_JSON; skipped when
// unset so `go test ./...` stays quiet). It fails outright if the fast
// core has lost its headline properties — <3x over legacy or an
// allocating steady state — so a regressed baseline cannot be committed.
func TestWriteSimcoreBenchJSON(t *testing.T) {
	out := os.Getenv("SIMCORE_BENCH_JSON")
	if out == "" {
		t.Skip("set SIMCORE_BENCH_JSON=path to write the simulator-core benchmark file")
	}
	file := simcoreBenchFile{
		GeneratedBy: "go test -run TestWriteSimcoreBenchJSON ./internal/sim/ (make bench-simcore)",
		Workloads:   map[string]workloadBench{},
	}
	for _, name := range simcoreWorkloads {
		sp := scheduleBoost7(t, name)
		fast, cycles := measureEngine(t, sp, sim.EngineFast, 5)
		legacy, _ := measureEngine(t, sp, sim.EngineLegacy, 3)
		wb := workloadBench{
			Model:   "Boost7",
			Cycles:  cycles,
			Fast:    fast,
			Legacy:  legacy,
			Speedup: legacy.NsPerOp / fast.NsPerOp,
		}
		file.Workloads[name] = wb
		t.Logf("%s: fast %.2fms (%.0f allocs), legacy %.2fms (%.0f allocs), %.2fx",
			name, fast.NsPerOp/1e6, fast.AllocsPerOp, legacy.NsPerOp/1e6, legacy.AllocsPerOp, wb.Speedup)
		if wb.Speedup < 3 {
			t.Errorf("%s: fast core is only %.2fx over legacy, want >= 3x", name, wb.Speedup)
		}
		if fast.AllocsPerOp > 256 {
			t.Errorf("%s: fast core allocates %.0f objects per run; steady state should be allocation-free", name, fast.AllocsPerOp)
		}
	}
	b, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSimcoreBenchRegression re-measures the fast core and fails if it
// runs >15% slower than the committed BENCH_simcore.json baseline (path
// in SIMCORE_BENCH_BASELINE; skipped when unset). The comparison is on
// ns/op of the same machine-independent workloads, so run it on hardware
// comparable to what produced the baseline — CI regenerates the baseline
// when it moves for a justified reason.
func TestSimcoreBenchRegression(t *testing.T) {
	base := os.Getenv("SIMCORE_BENCH_BASELINE")
	if base == "" {
		t.Skip("set SIMCORE_BENCH_BASELINE=path to compare against a committed baseline")
	}
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var want simcoreBenchFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	const tolerance = 1.15
	for _, name := range simcoreWorkloads {
		wb, ok := want.Workloads[name]
		if !ok {
			t.Errorf("baseline %s lacks workload %s; regenerate with make bench-simcore", base, name)
			continue
		}
		sp := scheduleBoost7(t, name)
		got, _ := measureEngine(t, sp, sim.EngineFast, 5)
		ratio := got.NsPerOp / wb.Fast.NsPerOp
		t.Logf("%s: fast %.2fms vs baseline %.2fms (%.2fx)", name, got.NsPerOp/1e6, wb.Fast.NsPerOp/1e6, ratio)
		if ratio > tolerance {
			t.Errorf("%s: fast core regressed to %.2fx the committed baseline (tolerance %.2fx): %s",
				name, ratio, tolerance, fmt.Sprintf("%.2fms vs %.2fms", got.NsPerOp/1e6, wb.Fast.NsPerOp/1e6))
		}
		if got.AllocsPerOp > 256 {
			t.Errorf("%s: fast core allocates %.0f objects per run; steady state should be allocation-free", name, got.AllocsPerOp)
		}
	}
}
