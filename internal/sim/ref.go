package sim

import (
	"fmt"

	"boosting/internal/isa"
	"boosting/internal/prog"
)

// retTokenBase tags return-address tokens. JAL stores a token in RA; JR
// maps the token back to a (procedure, block) continuation. Tokens survive
// round trips through registers and memory, so callees may spill RA.
const retTokenBase uint32 = 0x4000_0000

// linkTable maps return tokens to continuations for one program.
type linkTable struct {
	toToken map[blockKey]uint32
	toBlock []blockRef
}

type blockKey struct {
	proc  string
	block int
}

type blockRef struct {
	proc  *prog.Proc
	block *prog.Block
}

func buildLinkTable(pr *prog.Program) *linkTable {
	lt := &linkTable{toToken: map[blockKey]uint32{}}
	for _, p := range pr.ProcList() {
		for _, b := range p.Blocks {
			lt.toToken[blockKey{p.Name, b.ID}] = retTokenBase + uint32(len(lt.toBlock))
			lt.toBlock = append(lt.toBlock, blockRef{p, b})
		}
	}
	return lt
}

func (lt *linkTable) token(p *prog.Proc, b *prog.Block) uint32 {
	return lt.toToken[blockKey{p.Name, b.ID}]
}

func (lt *linkTable) resolve(tok uint32) (blockRef, bool) {
	idx := tok - retTokenBase
	if tok < retTokenBase || int(idx) >= len(lt.toBlock) {
		return blockRef{}, false
	}
	return lt.toBlock[idx], true
}

// InstEvent describes one dynamically executed instruction, for consumers
// that need the full dynamic stream (the trace-driven dynamic-scheduler
// simulator).
type InstEvent struct {
	// Inst points at the executed instruction (do not retain across
	// calls; copy what you need).
	Inst *isa.Inst
	// Addr is the effective address for loads and stores.
	Addr uint32
	// Taken is the outcome for conditional branches.
	Taken bool
	// NextID is the instruction ID of the next instruction executed for
	// indirect control transfers (JR), used for target prediction.
	NextID int
}

// RefConfig parameterizes the reference interpreter.
type RefConfig struct {
	// MaxSteps bounds execution (0 = default of 100M instructions).
	MaxSteps int64
	// OnBlock, if non-nil, is called when a block begins executing.
	OnBlock func(p *prog.Proc, b *prog.Block)
	// OnInst, if non-nil, receives every executed instruction in dynamic
	// order (NOPs excluded).
	OnInst func(ev InstEvent)
	// OnBranch, if non-nil, is called for every executed conditional
	// branch with its outcome.
	OnBranch func(p *prog.Proc, b *prog.Block, taken bool)
	// OnStore, if non-nil, observes every architectural memory write in
	// program order; the differential oracle compares this stream against
	// a scheduled execution's committed stores.
	OnStore func(addr uint32, size int, val uint32)
	// OnFault, if non-nil, is consulted on an architectural fault; if it
	// returns true (for example after mapping the faulting page) the
	// instruction is retried, otherwise execution stops with the fault.
	OnFault func(m *Memory, f *Fault) bool
}

// Result summarizes an execution.
type Result struct {
	// Out is the observable output stream (OUT instruction values).
	Out []uint32
	// Insts is the number of instructions executed (NOPs excluded).
	Insts int64
	// Branches and Taken count executed conditional branches.
	Branches int64
	Taken    int64
	// MemHash digests the final memory state.
	MemHash uint64
	// Fault is the terminating fault, if any (nil on clean HALT).
	Fault *Fault
}

// SetupMemory builds and maps the initial memory image for a program.
func SetupMemory(pr *prog.Program) *Memory {
	m := NewMemory()
	if len(pr.Data) > 0 {
		m.WriteBytes(prog.DataBase, pr.Data)
	}
	if pr.BSS > 0 {
		base := prog.DataBase + uint32(len(pr.Data))
		m.Map(base, uint32(pr.BSS)+4)
	}
	m.Map(prog.StackTop-prog.StackSize, prog.StackSize)
	return m
}

// Run executes the program sequentially from main's entry until HALT,
// a fault, or the step bound. It is the semantic reference: every
// scheduled configuration must reproduce its Out and MemHash exactly.
func Run(pr *prog.Program, cfg RefConfig) (*Result, error) {
	if pr.Main() == nil {
		return nil, fmt.Errorf("sim: program has no main")
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 100_000_000
	}
	lt := buildLinkTable(pr)
	mem := SetupMemory(pr)
	regs := make([]uint32, int(maxRegProgram(pr))+1)
	regs[isa.SP] = prog.StackTop

	res := &Result{}
	p := pr.Main()
	b := p.Entry

	for {
		if cfg.OnBlock != nil {
			cfg.OnBlock(p, b)
		}
		next, done, err := runBlock(pr, p, b, regs, mem, lt, res, &cfg, maxSteps)
		if err != nil {
			return res, err
		}
		if done {
			res.MemHash = mem.Snapshot()
			return res, nil
		}
		if res.Insts > maxSteps {
			return res, fmt.Errorf("sim: exceeded %d steps (runaway program?)", maxSteps)
		}
		p, b = next.proc, next.block
	}
}

func maxRegProgram(pr *prog.Program) isa.Reg {
	max := isa.Reg(isa.NumArchRegs - 1)
	for _, p := range pr.ProcList() {
		if r := p.MaxReg(); r > max {
			max = r
		}
	}
	return max
}

// runBlock executes one basic block. It returns the successor, or
// done=true on HALT.
func runBlock(pr *prog.Program, p *prog.Proc, b *prog.Block, regs []uint32,
	mem *Memory, lt *linkTable, res *Result, cfg *RefConfig, maxSteps int64,
) (next blockRef, done bool, err error) {
	var curInst *isa.Inst
	emit := func(addr uint32, taken bool, next int) {
		if cfg.OnInst != nil {
			cfg.OnInst(InstEvent{Inst: curInst, Addr: addr, Taken: taken, NextID: next})
		}
	}
	for i := range b.Insts {
		in := &b.Insts[i]
		curInst = in
	retry:
		if res.Insts > maxSteps {
			return blockRef{}, false, fmt.Errorf("sim: exceeded %d steps", maxSteps)
		}
		switch {
		case in.Op == isa.NOP:
			// not counted
		case in.Op == isa.HALT:
			res.Insts++
			emit(0, false, 0)
			return blockRef{}, true, nil
		case in.Op == isa.OUT:
			res.Insts++
			emit(0, false, 0)
			res.Out = append(res.Out, regs[in.Rs])
		case in.Op == isa.J:
			res.Insts++
			emit(0, false, 0)
			return blockRef{p, b.Succs[0]}, false, nil
		case in.Op == isa.JAL:
			res.Insts++
			emit(0, false, 0)
			callee := pr.Procs[in.Sym]
			if callee == nil {
				return blockRef{}, false, fmt.Errorf("sim: call to undefined %q", in.Sym)
			}
			setReg(regs, in.Rd, lt.token(p, b.Succs[0]))
			return blockRef{callee, callee.Entry}, false, nil
		case in.Op == isa.JR:
			res.Insts++
			ref, ok := lt.resolve(regs[in.Rs])
			if !ok {
				return blockRef{}, false, fmt.Errorf("sim: jr to invalid token %#x", regs[in.Rs])
			}
			emit(0, false, firstInstID(ref.block))
			return ref, false, nil
		case isa.IsCondBranch(in.Op):
			res.Insts++
			taken := branchTaken(in.Op, regs[in.Rs], regs[in.Rt])
			emit(0, taken, 0)
			res.Branches++
			if taken {
				res.Taken++
			}
			if cfg.OnBranch != nil {
				cfg.OnBranch(p, b, taken)
			}
			if taken {
				return blockRef{p, b.Succs[1]}, false, nil
			}
			return blockRef{p, b.Succs[0]}, false, nil
		case isa.IsLoad(in.Op):
			res.Insts++
			addr := regs[in.Rs] + uint32(in.Imm)
			size, signExt := memAccess(in.Op)
			if f := checkAccess(addr, size, false, p, b, in); f != nil {
				if cfg.OnFault != nil && cfg.OnFault(mem, f) {
					goto retry
				}
				res.Fault = f
				return blockRef{}, false, f
			}
			v, ok := mem.Load(addr, size)
			if !ok {
				f := &Fault{Kind: FaultLoad, Addr: addr, Proc: p.Name, Block: b.ID, InstID: in.ID}
				if cfg.OnFault != nil && cfg.OnFault(mem, f) {
					goto retry
				}
				res.Fault = f
				return blockRef{}, false, f
			}
			emit(addr, false, 0)
			setReg(regs, in.Rd, extend(v, size, signExt))
		case isa.IsStore(in.Op):
			res.Insts++
			addr := regs[in.Rs] + uint32(in.Imm)
			size, _ := memAccess(in.Op)
			if f := checkAccess(addr, size, true, p, b, in); f != nil {
				if cfg.OnFault != nil && cfg.OnFault(mem, f) {
					goto retry
				}
				res.Fault = f
				return blockRef{}, false, f
			}
			if !mem.Store(addr, size, regs[in.Rt]) {
				f := &Fault{Kind: FaultStore, Addr: addr, Proc: p.Name, Block: b.ID, InstID: in.ID}
				if cfg.OnFault != nil && cfg.OnFault(mem, f) {
					goto retry
				}
				res.Fault = f
				return blockRef{}, false, f
			}
			if cfg.OnStore != nil {
				cfg.OnStore(addr, size, regs[in.Rt])
			}
			emit(addr, false, 0)
		default:
			res.Insts++
			v, ok := evalALU(in.Op, regs[in.Rs], regs[in.Rt], in.Imm)
			if !ok {
				f := &Fault{Kind: FaultDivZero, Proc: p.Name, Block: b.ID, InstID: in.ID}
				if cfg.OnFault != nil && cfg.OnFault(mem, f) {
					goto retry
				}
				res.Fault = f
				return blockRef{}, false, f
			}
			emit(0, false, 0)
			setReg(regs, in.Rd, v)
		}
	}
	// Fall-through block.
	if len(b.Succs) != 1 {
		return blockRef{}, false, fmt.Errorf("sim: block B%d of %s ends without successor", b.ID, p.Name)
	}
	return blockRef{p, b.Succs[0]}, false, nil
}

// firstInstID returns the ID of the first instruction that will execute in
// or after block b (following fall-through chains), for indirect-jump
// target prediction.
func firstInstID(b *prog.Block) int {
	for hops := 0; b != nil && hops < 64; hops++ {
		if len(b.Insts) > 0 {
			return b.Insts[0].ID
		}
		if len(b.Succs) != 1 {
			return 0
		}
		b = b.Succs[0]
	}
	return 0
}

// checkAccess validates alignment; mapping is validated by the access
// itself.
func checkAccess(addr uint32, size int, store bool, p *prog.Proc, b *prog.Block, in *isa.Inst) *Fault {
	if size > 1 && addr%uint32(size) != 0 {
		return &Fault{Kind: FaultAlign, Addr: addr, Proc: p.Name, Block: b.ID, InstID: in.ID}
	}
	_ = store
	return nil
}

// setReg writes a register, discarding writes to R0.
func setReg(regs []uint32, r isa.Reg, v uint32) {
	if r != isa.R0 {
		regs[r] = v
	}
}
