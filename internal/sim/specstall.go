package sim

// specStallTracker attributes memory-hierarchy stall cycles charged by
// boosted accesses to the boost level that incurred them, mirroring the
// exception shift buffer's level discipline: when a branch commits,
// level-1 stalls become architecturally useful work and deeper levels
// shift down one; when speculation is squashed (misprediction or boosted
// exception recovery), every outstanding cycle was wasted on a wrong path
// and is reported as SquashedMemStalls. Both engines drive the tracker at
// identical points, so the derived statistics are engine-invariant.
type specStallTracker struct {
	pending []int64 // index = boost level; [0] unused
}

func (t *specStallTracker) reset(maxLevel int) {
	if cap(t.pending) < maxLevel+1 {
		t.pending = make([]int64, maxLevel+1)
	} else {
		t.pending = t.pending[:maxLevel+1]
		clear(t.pending)
	}
}

// add records stall cycles incurred by an access boosted to level.
func (t *specStallTracker) add(level int, cycles int64) {
	t.pending[level] += cycles
}

// commit resolves one branch correctly: level-1 stalls paid for work that
// is now architectural, deeper levels move one branch closer to commit.
func (t *specStallTracker) commit() {
	if len(t.pending) > 2 {
		copy(t.pending[1:], t.pending[2:])
	}
	if len(t.pending) > 1 {
		t.pending[len(t.pending)-1] = 0
	}
}

// squash discards all outstanding speculative stalls and returns the
// total: cycles the machine spent waiting on memory for work it threw
// away.
func (t *specStallTracker) squash() int64 {
	var lost int64
	for i := 1; i < len(t.pending); i++ {
		lost += t.pending[i]
		t.pending[i] = 0
	}
	return lost
}
