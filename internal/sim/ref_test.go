package sim

import (
	"testing"

	"boosting/internal/isa"
	"boosting/internal/prog"
)

func mustRun(t *testing.T, pr *prog.Program) *Result {
	t.Helper()
	res, err := Run(pr, RefConfig{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestRunArithmetic(t *testing.T) {
	pr := prog.New()
	f := prog.NewBuilder(pr, "main")
	a, b, c := f.Reg(), f.Reg(), f.Reg()
	f.Li(a, 6)
	f.Li(b, 7)
	f.ALU(isa.MUL, c, a, b)
	f.Out(c)
	f.ALU(isa.SUB, c, a, b)
	f.Out(c)
	f.Imm(isa.SLTI, c, a, 7)
	f.Out(c)
	f.ALU(isa.DIV, c, b, a)
	f.Out(c)
	f.ALU(isa.REM, c, b, a)
	f.Out(c)
	f.Halt()
	f.Finish()

	res := mustRun(t, pr)
	minus1 := int32(-1)
	want := []uint32{42, uint32(minus1), 1, 1, 1}
	if len(res.Out) != len(want) {
		t.Fatalf("out = %v, want %v", res.Out, want)
	}
	for i := range want {
		if res.Out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, int32(res.Out[i]), int32(want[i]))
		}
	}
}

func TestRunShifts(t *testing.T) {
	pr := prog.New()
	f := prog.NewBuilder(pr, "main")
	a, c := f.Reg(), f.Reg()
	f.Li(a, -8)
	f.Imm(isa.SRA, c, a, 1)
	f.Out(c) // -4
	f.Imm(isa.SRL, c, a, 28)
	f.Out(c) // 15
	f.Imm(isa.SLL, c, a, 1)
	f.Out(c) // -16
	f.Halt()
	f.Finish()
	res := mustRun(t, pr)
	want := []int32{-4, 15, -16}
	for i, w := range want {
		if int32(res.Out[i]) != w {
			t.Errorf("out[%d] = %d, want %d", i, int32(res.Out[i]), w)
		}
	}
}

func TestRunLoopAndCounts(t *testing.T) {
	pr := prog.New()
	f := prog.NewBuilder(pr, "main")
	loop := f.Block("loop")
	done := f.Block("done")
	i, sum := f.Reg(), f.Reg()
	f.Li(i, 10)
	f.Li(sum, 0)
	f.Goto(loop)
	f.Enter(loop)
	f.ALU(isa.ADD, sum, sum, i)
	f.Imm(isa.ADDI, i, i, -1)
	f.Branch(isa.BGTZ, i, isa.R0, loop, done)
	f.Enter(done)
	f.Out(sum)
	f.Halt()
	f.Finish()

	res := mustRun(t, pr)
	if res.Out[0] != 55 {
		t.Errorf("sum = %d, want 55", res.Out[0])
	}
	if res.Branches != 10 || res.Taken != 9 {
		t.Errorf("branches=%d taken=%d, want 10/9", res.Branches, res.Taken)
	}
}

func TestRunMemory(t *testing.T) {
	pr := prog.New()
	arr := pr.Words(10, 20, 30, 40)
	f := prog.NewBuilder(pr, "main")
	base, v, sum := f.Reg(), f.Reg(), f.Reg()
	f.La(base, arr)
	f.Li(sum, 0)
	for k := 0; k < 4; k++ {
		f.Load(isa.LW, v, base, int32(4*k))
		f.ALU(isa.ADD, sum, sum, v)
	}
	f.Out(sum)
	// Store and reload a byte.
	f.Li(v, 0x7F)
	f.Store(isa.SB, v, base, 1)
	f.Load(isa.LW, v, base, 0)
	f.Out(v) // 10 | 0x7F00
	// Halfword with sign extension.
	f.Li(v, -2)
	f.Store(isa.SH, v, base, 8)
	f.Load(isa.LH, v, base, 8)
	f.Out(v)
	f.Load(isa.LHU, v, base, 8)
	f.Out(v)
	f.Halt()
	f.Finish()

	res := mustRun(t, pr)
	if res.Out[0] != 100 {
		t.Errorf("sum = %d", res.Out[0])
	}
	if res.Out[1] != 10|0x7F00 {
		t.Errorf("byte store result = %#x", res.Out[1])
	}
	if int32(res.Out[2]) != -2 {
		t.Errorf("lh = %d, want -2", int32(res.Out[2]))
	}
	if res.Out[3] != 0xFFFE {
		t.Errorf("lhu = %#x, want 0xfffe", res.Out[3])
	}
}

func TestRunCallsWithSpill(t *testing.T) {
	pr := prog.New()

	// leaf(x) = x + 1
	leaf := prog.NewBuilder(pr, "leaf")
	leaf.Imm(isa.ADDI, isa.RV, isa.A0, 1)
	leaf.Ret()
	leaf.Finish()

	// twice(x) = leaf(leaf(x)), spilling RA to the stack.
	twice := prog.NewBuilder(pr, "twice")
	twice.Imm(isa.ADDI, isa.SP, isa.SP, -8)
	twice.Store(isa.SW, isa.RA, isa.SP, 0)
	twice.Call("leaf")
	twice.Move(isa.A0, isa.RV)
	twice.Call("leaf")
	twice.Load(isa.LW, isa.RA, isa.SP, 0)
	twice.Imm(isa.ADDI, isa.SP, isa.SP, 8)
	twice.Ret()
	twice.Finish()

	main := prog.NewBuilder(pr, "main")
	main.Li(isa.A0, 40)
	main.Call("twice")
	main.Out(isa.RV)
	main.Halt()
	main.Finish()

	res := mustRun(t, pr)
	if res.Out[0] != 42 {
		t.Errorf("twice(40) = %d, want 42", res.Out[0])
	}
}

func TestRunFaultNullLoad(t *testing.T) {
	pr := prog.New()
	f := prog.NewBuilder(pr, "main")
	v := f.Reg()
	f.Load(isa.LW, v, isa.R0, 0) // load from address 0
	f.Out(v)
	f.Halt()
	f.Finish()

	_, err := Run(pr, RefConfig{})
	fault, ok := err.(*Fault)
	if !ok {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if fault.Kind != FaultLoad || fault.Addr != 0 {
		t.Errorf("fault = %v", fault)
	}
}

func TestRunFaultDivZero(t *testing.T) {
	pr := prog.New()
	f := prog.NewBuilder(pr, "main")
	a, b := f.Reg(), f.Reg()
	f.Li(a, 1)
	f.ALU(isa.DIV, b, a, isa.R0)
	f.Out(b)
	f.Halt()
	f.Finish()
	_, err := Run(pr, RefConfig{})
	if fault, ok := err.(*Fault); !ok || fault.Kind != FaultDivZero {
		t.Fatalf("err = %v, want div-zero fault", err)
	}
}

func TestRunFaultAlign(t *testing.T) {
	pr := prog.New()
	pr.Words(1, 2)
	f := prog.NewBuilder(pr, "main")
	base, v := f.Reg(), f.Reg()
	f.La(base, prog.DataBase)
	f.Load(isa.LW, v, base, 2) // misaligned word load
	f.Out(v)
	f.Halt()
	f.Finish()
	_, err := Run(pr, RefConfig{})
	if fault, ok := err.(*Fault); !ok || fault.Kind != FaultAlign {
		t.Fatalf("err = %v, want align fault", err)
	}
}

func TestRunFaultHandlerRetries(t *testing.T) {
	pr := prog.New()
	f := prog.NewBuilder(pr, "main")
	base, v := f.Reg(), f.Reg()
	f.La(base, 0x0050_0000) // unmapped page
	f.Li(v, 99)
	f.Store(isa.SW, v, base, 0)
	f.Load(isa.LW, v, base, 0)
	f.Out(v)
	f.Halt()
	f.Finish()

	handled := 0
	res, err := Run(pr, RefConfig{
		OnFault: func(m *Memory, fa *Fault) bool {
			handled++
			m.Map(fa.Addr, 4)
			return true
		},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if handled != 1 {
		t.Errorf("handler invoked %d times, want 1 (demand paging)", handled)
	}
	if res.Out[0] != 99 {
		t.Errorf("out = %d", res.Out[0])
	}
}

func TestRunStepBound(t *testing.T) {
	pr := prog.New()
	f := prog.NewBuilder(pr, "main")
	loop := f.Block("loop")
	f.Goto(loop)
	f.Enter(loop)
	r := f.Reg()
	f.Imm(isa.ADDI, r, r, 1)
	f.Jump(loop)
	f.Finish()
	_, err := Run(pr, RefConfig{MaxSteps: 1000})
	if err == nil {
		t.Fatal("infinite loop must hit the step bound")
	}
}

func TestR0AlwaysZero(t *testing.T) {
	pr := prog.New()
	f := prog.NewBuilder(pr, "main")
	f.Imm(isa.ADDI, isa.R0, isa.R0, 5) // write to R0 discarded
	f.Out(isa.R0)
	f.Halt()
	f.Finish()
	res := mustRun(t, pr)
	if res.Out[0] != 0 {
		t.Errorf("R0 = %d, want 0", res.Out[0])
	}
}

func TestMemorySnapshotDiffers(t *testing.T) {
	m1 := NewMemory()
	m1.WriteBytes(0x1000, []byte{1, 2, 3})
	m2 := NewMemory()
	m2.WriteBytes(0x1000, []byte{1, 2, 4})
	if m1.Snapshot() == m2.Snapshot() {
		t.Error("different memories must hash differently")
	}
	m3 := NewMemory()
	m3.WriteBytes(0x1000, []byte{1, 2, 3})
	if m1.Snapshot() != m3.Snapshot() {
		t.Error("identical memories must hash identically")
	}
}

func TestMemoryMapBoundaries(t *testing.T) {
	m := NewMemory()
	m.Map(pageSize-1, 2) // straddles two pages
	if !m.Mapped(pageSize-1) || !m.Mapped(pageSize) {
		t.Error("straddling map failed")
	}
	if m.Mapped(2 * pageSize) {
		t.Error("unmapped page reported mapped")
	}
	if ok := m.Store(2*pageSize, 4, 1); ok {
		t.Error("store to unmapped page must fail")
	}
	if _, ok := m.Load(pageSize-1, 1); !ok {
		t.Error("load from mapped byte must succeed")
	}
}
