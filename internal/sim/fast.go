package sim

import (
	"fmt"
	"math/bits"
	"sync"

	"boosting/internal/isa"
	"boosting/internal/memhier"
	"boosting/internal/prog"
)

// This file is the fast execution core: the executor for programs lowered
// by Predecode. Its steady-state loop is allocation-free — the machine
// state (register files, shadow file, store buffer, exception buffer,
// issue-cycle scratch) lives in a pooled fastState whose pieces are reset
// by generation counter or slice truncation rather than reallocation, and
// no map lookups or string hashing happen per cycle. It mirrors the
// semantics of execLegacy in exec.go instruction for instruction: both
// engines must produce byte-identical ExecResults, which the golden-trace
// suite and the difftest oracle enforce.

// fastShadow is the boosting shadow register file in dense form: per
// register a bitmask of outstanding levels (bit n set = level n has an
// uncommitted value) plus a value slot per level. Squash is O(1): bump the
// generation counter and truncate the dirty list; a register's mask is
// only meaningful when its generation matches.
type fastShadow struct {
	mask  []uint16 // outstanding-level bitmask per register (bits 1..maxLevel)
	gen   []uint64 // generation at which mask/vals are valid
	vals  []uint32 // value per (register, level), stride maxLevel+1
	dirty []int32  // registers with a nonzero mask in the current generation

	curGen   uint64
	maxLevel int
	multi    bool
	stride   int
}

func (sh *fastShadow) reset(maxLevel int, multi bool, numRegs int) {
	sh.maxLevel = maxLevel
	sh.multi = multi
	sh.stride = maxLevel + 1
	if cap(sh.mask) < numRegs {
		sh.mask = make([]uint16, numRegs)
		sh.gen = make([]uint64, numRegs)
	}
	sh.mask = sh.mask[:numRegs]
	sh.gen = sh.gen[:numRegs]
	if need := numRegs * sh.stride; cap(sh.vals) < need {
		sh.vals = make([]uint32, need)
	} else {
		sh.vals = sh.vals[:need]
	}
	sh.dirty = sh.dirty[:0]
	// One bump isolates this run from whatever a previous pooled run left
	// in gen; the counter never resets, so stale entries can't collide.
	sh.curGen++
}

// levels returns the valid outstanding-level mask of r (0 if none).
func (sh *fastShadow) levels(r int32) uint16 {
	if sh.gen[r] != sh.curGen {
		return 0
	}
	return sh.mask[r]
}

// read returns the value of r seen from the given boost level, or ok=false
// if the sequential register file should be used. Mirrors shadowFile.read:
// the outstanding value with the largest level ≤ level wins.
func (sh *fastShadow) read(r int32, level int) (uint32, bool) {
	m := sh.levels(r) & (1<<(uint(level)+1) - 2)
	if m == 0 {
		return 0, false
	}
	lv := bits.Len16(m) - 1
	return sh.vals[int(r)*sh.stride+lv], true
}

// write records a boosted def of r. Mirrors shadowFile.write, including the
// single-shadow conflict check and its error text.
func (sh *fastShadow) write(r int32, level int, v uint32) error {
	if level <= 0 || level > sh.maxLevel {
		return fmt.Errorf("shadow write level %d outside hardware range 1..%d", level, sh.maxLevel)
	}
	if r == int32(isa.R0) {
		return nil
	}
	if sh.gen[r] != sh.curGen {
		sh.gen[r] = sh.curGen
		sh.mask[r] = 0
		sh.dirty = append(sh.dirty, r)
	}
	m := sh.mask[r]
	if !sh.multi {
		if other := m &^ (1 << uint(level)); other != 0 {
			return fmt.Errorf("single-shadow conflict on %s: outstanding level %d, new level %d",
				isa.Reg(r), bits.TrailingZeros16(other), level)
		}
	}
	sh.mask[r] = m | 1<<uint(level)
	sh.vals[int(r)*sh.stride+level] = v // newest same-level def wins
	return nil
}

// commit applies level-1 values to the sequential register file and shifts
// deeper levels down one, as shadowFile.commit does.
func (sh *fastShadow) commit(regs []uint32) {
	for di := 0; di < len(sh.dirty); {
		r := sh.dirty[di]
		m := sh.mask[r]
		base := int(r) * sh.stride
		if m&2 != 0 {
			regs[r] = sh.vals[base+1]
		}
		for rem := m &^ 3; rem != 0; {
			lv := bits.TrailingZeros16(rem)
			rem &^= 1 << uint(lv)
			sh.vals[base+lv-1] = sh.vals[base+lv]
		}
		m = (m >> 1) &^ 1
		sh.mask[r] = m
		if m == 0 {
			// Invalidate the generation, not just the mask: a later write
			// must re-enter the dirty list or it would never commit.
			sh.gen[r] = 0
			sh.dirty[di] = sh.dirty[len(sh.dirty)-1]
			sh.dirty = sh.dirty[:len(sh.dirty)-1]
		} else {
			di++
		}
	}
}

// count returns the number of outstanding (register, level) entries; it
// matches the per-entry squash accounting of the legacy shadow file.
func (sh *fastShadow) count() int {
	n := 0
	for _, r := range sh.dirty {
		n += bits.OnesCount16(sh.mask[r])
	}
	return n
}

// squash discards all speculative register state in O(1).
func (sh *fastShadow) squash() {
	sh.curGen++
	sh.dirty = sh.dirty[:0]
}

func (sh *fastShadow) outstanding() bool { return len(sh.dirty) > 0 }

// fastState is the pooled machine state of one fast-core execution.
type fastState struct {
	pd  *Predecoded
	cfg *ExecConfig
	res *ExecResult
	mem *Memory

	regs     []uint32
	regReady []int64
	vals     [][2]uint32 // issue-cycle operand scratch
	shadow   fastShadow
	stores   storeBuffer
	excbuf   exceptionBuffer

	// One-entry page cache for the hot memory path. Only successful
	// lookups are cached, so pages mapped later (e.g. by an OnFault
	// handler) are picked up naturally.
	cachePN   uint32
	cachePage *page

	mh   *memhier.Hierarchy
	spec specStallTracker

	maxCycles int64
}

var fastStatePool = sync.Pool{New: func() any { return new(fastState) }}

func getFastState(pd *Predecoded, cfg *ExecConfig) *fastState {
	fs := fastStatePool.Get().(*fastState)
	fs.pd = pd
	fs.cfg = cfg
	fs.res = &ExecResult{}
	fs.mem = SetupMemory(pd.sprog.Prog)
	if cap(fs.regs) < pd.numRegs {
		fs.regs = make([]uint32, pd.numRegs)
		fs.regReady = make([]int64, pd.numRegs)
	} else {
		fs.regs = fs.regs[:pd.numRegs]
		fs.regReady = fs.regReady[:pd.numRegs]
		clear(fs.regs)
		clear(fs.regReady)
	}
	if cap(fs.vals) < pd.maxPerCycle {
		fs.vals = make([][2]uint32, pd.maxPerCycle)
	} else {
		fs.vals = fs.vals[:pd.maxPerCycle]
	}
	fs.shadow.reset(pd.maxLevel, pd.multiShadow, pd.numRegs)
	fs.stores.entries = fs.stores.entries[:0]
	fs.stores.cap = pd.storeCap
	if len(fs.excbuf.bits) < pd.maxLevel+1 {
		fs.excbuf.bits = make([]bool, pd.maxLevel+1)
	} else {
		fs.excbuf.bits = fs.excbuf.bits[:pd.maxLevel+1]
		clear(fs.excbuf.bits)
	}
	fs.cachePage = nil
	fs.cachePN = 0
	fs.mh = nil
	if cfg.Mem != nil {
		fs.spec.reset(pd.maxLevel)
	}
	fs.maxCycles = cfg.MaxCycles
	if fs.maxCycles == 0 {
		fs.maxCycles = 500_000_000
	}
	fs.regs[isa.SP] = prog.StackTop
	return fs
}

func putFastState(fs *fastState) {
	// Drop per-run pointers so the pool doesn't retain programs or
	// memories; the flat slices are the point of pooling and stay.
	fs.pd = nil
	fs.cfg = nil
	fs.res = nil
	fs.mem = nil
	fs.cachePage = nil
	fs.mh = nil
	fastStatePool.Put(fs)
}

// Exec runs the pre-decoded program to completion, applying full boosting
// hardware semantics. It is safe to call concurrently on the same
// Predecoded value.
func (pd *Predecoded) Exec(cfg ExecConfig) (*ExecResult, error) {
	var mh *memhier.Hierarchy
	if cfg.Mem != nil {
		var err error
		if mh, err = memhier.New(*cfg.Mem); err != nil {
			return nil, err
		}
	}
	fs := getFastState(pd, &cfg)
	defer putFastState(fs)
	fs.mh = mh
	res := fs.res

	cur := pd.entry
	if fb := &pd.blocks[cur]; !fb.scheduled {
		return res, fmt.Errorf("sim: no schedule for %s block B%d", fb.proc, fb.id)
	}
	for {
		fb := &pd.blocks[cur]
		next, done, err := fs.runBlock(fb)
		if err != nil {
			return res, err
		}
		if done {
			if fs.shadow.outstanding() || fs.stores.outstanding() {
				return res, fmt.Errorf("sim: speculative state outstanding at halt")
			}
			res.MemHash = fs.mem.Snapshot()
			if fs.mh != nil {
				stats := fs.mh.Stats()
				res.Mem = &stats
			}
			return res, nil
		}
		if res.Cycles > fs.maxCycles {
			return res, fmt.Errorf("sim: exceeded %d cycles", fs.maxCycles)
		}
		if next < 0 {
			return res, fmt.Errorf("sim: block B%d has no successor", fb.id)
		}
		nb := &pd.blocks[next]
		if !nb.procSched {
			return res, fmt.Errorf("sim: no schedule for proc %s", nb.proc)
		}
		if !nb.scheduled {
			return res, fmt.Errorf("sim: no schedule for %s block B%d", nb.proc, nb.id)
		}
		cur = next
	}
}

// fastCtl is the pending control decision of a block's terminator.
type fastCtl struct {
	fi     *fastInst
	taken  bool
	target int32 // resolved successor for JAL/JR
}

// runBlock executes one pre-decoded block and resolves its control
// transfer, mirroring execState.runBlock + finishBlock.
func (fs *fastState) runBlock(fb *fastBlock) (next int32, done bool, err error) {
	pd, res := fs.pd, fs.res
	if fs.cfg.OnBlock != nil {
		fs.cfg.OnBlock(fb.proc, fb.id)
	}
	var ctl *fastCtl
	var ctlBuf fastCtl

	for ci := fb.cycLo; ci < fb.cycHi; ci++ {
		cy := pd.cycles[ci]
		insts := pd.insts[cy.lo:cy.hi]

		// Operand interlock: the whole issue cycle stalls until every
		// operand of every instruction in it is ready.
		need := res.Cycles
		for i := range insts {
			fi := &insts[i]
			if fi.use0 >= 0 {
				if t := fs.regReady[fi.use0]; t > need {
					need = t
				}
			}
			if fi.use1 >= 0 {
				if t := fs.regReady[fi.use1]; t > need {
					need = t
				}
			}
		}
		if need > res.Cycles {
			res.Stalls += need - res.Cycles
			res.Cycles = need
		}

		// Register reads happen at issue for every slot, before any writes
		// of this cycle.
		vals := fs.vals
		for i := range insts {
			fi := &insts[i]
			vals[i][0] = fs.readReg(fi.rs, int(fi.boost))
			vals[i][1] = fs.readReg(fi.rt, int(fi.boost))
		}

		for i := range insts {
			fi := &insts[i]
			if fi.kind != fkNop {
				res.Insts++
			}
			if fi.boost > 0 {
				res.BoostedExec++
			}
			isCtl, err := fs.execute(fb, fi, vals[i][0], vals[i][1], &ctlBuf)
			if err != nil {
				return 0, false, err
			}
			if isCtl {
				if ctl != nil {
					return 0, false, fmt.Errorf("sim: two control ops in block B%d", fb.id)
				}
				ctl = &ctlBuf
			}
			if fi.def >= 0 {
				fs.regReady[fi.def] = res.Cycles + int64(fi.lat)
			}
		}
		res.Cycles++
	}

	return fs.finishBlock(fb, ctl)
}

// readReg reads a register as seen from the given boost level.
func (fs *fastState) readReg(r int32, level int) uint32 {
	if r == int32(isa.R0) {
		return 0
	}
	if level > 0 {
		if v, ok := fs.shadow.read(r, level); ok {
			return v
		}
	}
	return fs.regs[r]
}

// writeReg writes a register sequentially or into the shadow file.
func (fs *fastState) writeReg(r int32, level int, v uint32) error {
	if r == int32(isa.R0) {
		return nil
	}
	if level > 0 {
		return fs.shadow.write(r, level, v)
	}
	fs.regs[r] = v
	return nil
}

// memLoad reads through the one-entry page cache; cross-page accesses fall
// back to the byte-wise Memory path.
func (fs *fastState) memLoad(addr uint32, size int) (uint32, bool) {
	off := addr % pageSize
	if int(off)+size <= pageSize {
		pn := addr / pageSize
		p := fs.cachePage
		if p == nil || fs.cachePN != pn {
			p = fs.mem.pages[pn]
			if p == nil {
				return 0, false
			}
			fs.cachePage, fs.cachePN = p, pn
		}
		switch size {
		case 1:
			return uint32(p[off]), true
		case 2:
			return uint32(p[off]) | uint32(p[off+1])<<8, true
		default:
			return uint32(p[off]) | uint32(p[off+1])<<8 |
				uint32(p[off+2])<<16 | uint32(p[off+3])<<24, true
		}
	}
	return fs.mem.Load(addr, size)
}

// memStore writes through the page cache. The cross-page fallback keeps
// Memory.Store's partial-write-then-fail behavior on unmapped tails.
func (fs *fastState) memStore(addr uint32, size int, v uint32) bool {
	off := addr % pageSize
	if int(off)+size <= pageSize {
		pn := addr / pageSize
		p := fs.cachePage
		if p == nil || fs.cachePN != pn {
			p = fs.mem.pages[pn]
			if p == nil {
				return false
			}
			fs.cachePage, fs.cachePN = p, pn
		}
		switch size {
		case 1:
			p[off] = byte(v)
		case 2:
			p[off] = byte(v)
			p[off+1] = byte(v >> 8)
		default:
			p[off] = byte(v)
			p[off+1] = byte(v >> 8)
			p[off+2] = byte(v >> 16)
			p[off+3] = byte(v >> 24)
		}
		return true
	}
	return fs.mem.Store(addr, size, v)
}

// touchMem charges memory-hierarchy stall cycles when a hierarchy is
// modeled; it mirrors execState.touchMem exactly.
func (fs *fastState) touchMem(id int, addr uint32, store bool, level int) {
	if fs.mh == nil {
		return
	}
	if p := fs.mh.Access(fs.res.Cycles, id, addr, store); p > 0 {
		fs.res.Cycles += p
		fs.res.MemStalls += p
		if level > 0 {
			fs.res.BoostedMemStalls += p
			fs.spec.add(level, p)
		}
	}
}

// loadValue reads memory through the level-bounded store-buffer view,
// bypassing the buffer entirely when it is empty (the common case).
func (fs *fastState) loadValue(fb *fastBlock, fi *fastInst, addr uint32, size int) (uint32, *Fault) {
	if size > 1 && addr%uint32(size) != 0 {
		return 0, &Fault{Kind: FaultAlign, Addr: addr, Proc: fb.proc,
			Block: fb.id, InstID: int(fi.id), Boosted: fi.boost > 0}
	}
	var v uint32
	var ok bool
	if len(fs.stores.entries) == 0 {
		v, ok = fs.memLoad(addr, size)
	} else {
		v, ok = fs.stores.read(int(fi.boost), addr, size, fs.mem)
	}
	if !ok {
		return 0, &Fault{Kind: FaultLoad, Addr: addr, Proc: fb.proc,
			Block: fb.id, InstID: int(fi.id), Boosted: fi.boost > 0}
	}
	return v, nil
}

// preciseFault routes a sequential fault through the user handler; retry
// re-runs the failing action.
func (fs *fastState) preciseFault(f *Fault, retry func() *Fault) error {
	if fs.cfg.OnFault != nil && fs.cfg.OnFault(fs.mem, f) {
		if f2 := retry(); f2 != nil {
			fs.res.Fault = f2
			return f2
		}
		return nil
	}
	fs.res.Fault = f
	return f
}

// execute performs one instruction's function; a and c are the issued
// operand values. Control decisions are written to *ctl (isCtl=true); the
// transfer happens at block end.
func (fs *fastState) execute(fb *fastBlock, fi *fastInst, a, c uint32, ctl *fastCtl) (isCtl bool, err error) {
	switch fi.kind {
	case fkALU:
		v, ok := evalALU(fi.op, a, c, fi.imm)
		if !ok {
			if fi.boost > 0 {
				fs.excbuf.set(int(fi.boost))
				return false, fs.writeReg(fi.rd, int(fi.boost), 0)
			}
			f := &Fault{Kind: FaultDivZero, Proc: fb.proc, Block: fb.id, InstID: int(fi.id)}
			fs.res.Fault = f
			return false, f
		}
		return false, fs.writeReg(fi.rd, int(fi.boost), v)
	case fkLoad:
		addr := a + uint32(fi.imm)
		size := int(fi.size)
		fs.touchMem(int(fi.id), addr, false, int(fi.boost))
		v, f := fs.loadValue(fb, fi, addr, size)
		if f != nil {
			if fi.boost > 0 {
				fs.excbuf.set(int(fi.boost))
				return false, fs.writeReg(fi.rd, int(fi.boost), 0)
			}
			if fs.cfg.OnFault != nil && fs.cfg.OnFault(fs.mem, f) {
				v2, f2 := fs.loadValue(fb, fi, addr, size)
				if f2 != nil {
					fs.res.Fault = f2
					return false, f2
				}
				return false, fs.writeReg(fi.rd, 0, extend(v2, size, fi.signExt))
			}
			fs.res.Fault = f
			return false, f
		}
		return false, fs.writeReg(fi.rd, int(fi.boost), extend(v, size, fi.signExt))
	case fkStore:
		addr := a + uint32(fi.imm)
		size := int(fi.size)
		fs.touchMem(int(fi.id), addr, true, int(fi.boost))
		if fi.boost > 0 {
			if !fs.pd.storeBuffer {
				return false, fmt.Errorf("sim: boosted store without store buffer in B%d", fb.id)
			}
			// Alignment/mapping faults on boosted stores are postponed.
			if size > 1 && addr%uint32(size) != 0 || !fs.mem.Mapped(addr) || !fs.mem.Mapped(addr+uint32(size)-1) {
				fs.excbuf.set(int(fi.boost))
				return false, nil
			}
			if err := fs.stores.write(int(fi.boost), addr, size, c); err != nil {
				return false, fmt.Errorf("sim: B%d of %s: %w", fb.id, fb.proc, err)
			}
			return false, nil
		}
		if size > 1 && addr%uint32(size) != 0 {
			f := &Fault{Kind: FaultAlign, Addr: addr, Proc: fb.proc, Block: fb.id, InstID: int(fi.id)}
			return false, fs.preciseFault(f, func() *Fault {
				if !fs.memStore(addr, size, c) {
					return &Fault{Kind: FaultStore, Addr: addr, Proc: fb.proc, Block: fb.id, InstID: int(fi.id)}
				}
				return nil
			})
		}
		if !fs.memStore(addr, size, c) {
			f := &Fault{Kind: FaultStore, Addr: addr, Proc: fb.proc, Block: fb.id, InstID: int(fi.id)}
			return false, fs.preciseFault(f, func() *Fault {
				if !fs.memStore(addr, size, c) {
					return f
				}
				return nil
			})
		}
		if fs.cfg.OnStore != nil {
			fs.cfg.OnStore(addr, size, c)
		}
		return false, nil
	case fkBranch:
		*ctl = fastCtl{fi: fi, taken: branchTaken(fi.op, a, c)}
		return true, nil
	case fkJ:
		*ctl = fastCtl{fi: fi}
		return true, nil
	case fkJAL:
		if fs.shadow.outstanding() || fs.stores.outstanding() {
			return false, fmt.Errorf("sim: speculative state outstanding at call in B%d", fb.id)
		}
		if fi.target < 0 {
			return false, fmt.Errorf("sim: call to undefined %q", fi.sym)
		}
		if err := fs.writeReg(fi.rd, 0, fi.link); err != nil {
			return false, err
		}
		*ctl = fastCtl{fi: fi, target: fi.target}
		return true, nil
	case fkJR:
		if fs.shadow.outstanding() || fs.stores.outstanding() {
			return false, fmt.Errorf("sim: speculative state outstanding at return in B%d", fb.id)
		}
		idx := a - retTokenBase
		if a < retTokenBase || int(idx) >= len(fs.pd.blocks) {
			return false, fmt.Errorf("sim: jr to invalid token %#x", a)
		}
		*ctl = fastCtl{fi: fi, target: int32(idx)}
		return true, nil
	case fkOut:
		if fi.boost > 0 {
			return false, fmt.Errorf("sim: boosted OUT is not supported by any model")
		}
		fs.res.Out = append(fs.res.Out, a)
		return false, nil
	case fkHalt:
		*ctl = fastCtl{fi: fi}
		return true, nil
	default: // fkNop
		return false, nil
	}
}

// finishBlock resolves the block's control decision: commit or squash
// speculative state at conditional branches, dispatch recovery code on
// postponed exceptions, and compute the dense successor index.
func (fs *fastState) finishBlock(fb *fastBlock, ctl *fastCtl) (next int32, done bool, err error) {
	res := fs.res
	switch {
	case ctl == nil:
		// Fall-through block.
		if fb.nsucc != 1 {
			return 0, false, fmt.Errorf("sim: block B%d has no successor", fb.id)
		}
		return fb.succ0, false, nil
	case ctl.fi.kind == fkHalt:
		return 0, true, nil
	case ctl.fi.kind == fkJ:
		return fb.succ0, false, nil
	case ctl.fi.kind == fkJAL, ctl.fi.kind == fkJR:
		return ctl.target, false, nil
	default: // conditional branch
		res.Branches++
		correct := ctl.taken == ctl.fi.pred
		succ := fb.succ0
		if ctl.taken {
			succ = fb.succ1
		}
		if correct {
			res.Correct++
			var commitFault *Fault
			fs.shadow.commit(fs.regs)
			if f := fs.stores.commit(fs.mem, fs.cfg.OnStore); f != nil {
				commitFault = f
			}
			if fs.mh != nil {
				fs.spec.commit()
			}
			if fs.excbuf.shift() || commitFault != nil {
				return fs.recover(fb, ctl.fi, succ)
			}
			return succ, false, nil
		}
		// Incorrect prediction: discard all speculative state.
		droppedStores := len(fs.stores.entries)
		droppedRegs := fs.shadow.count()
		res.Squashed += int64(droppedStores + droppedRegs)
		if !fs.cfg.Inject.SkipShadowSquash {
			fs.shadow.squash()
		}
		if !fs.cfg.Inject.SkipStoreSquash {
			fs.stores.squash()
		}
		fs.excbuf.clear()
		if fs.mh != nil {
			res.SquashedMemStalls += fs.spec.squash()
		}
		if fs.cfg.OnSquash != nil {
			leaked := len(fs.stores.entries) + fs.shadow.count()
			fs.cfg.OnSquash(SquashInfo{
				BranchID: int(ctl.fi.id),
				Regs:     droppedRegs,
				Stores:   droppedStores,
				Leaked:   leaked,
			})
		}
		return succ, false, nil
	}
}

// recover implements the boosted exception handler (paper §2.3) on the
// pre-decoded recovery stream; see execState.recover for the semantics.
func (fs *fastState) recover(fb *fastBlock, bi *fastInst, succ int32) (int32, bool, error) {
	res := fs.res
	res.Recoveries++
	fs.shadow.squash()
	fs.stores.squash()
	fs.excbuf.clear()
	if fs.mh != nil {
		res.SquashedMemStalls += fs.spec.squash()
	}
	res.Cycles += int64(fs.pd.excOverhead)

	if bi.recLo < 0 {
		return 0, false, fmt.Errorf(
			"sim: boosted exception at branch %d in B%d of %s but no recovery code",
			bi.id, fb.id, fb.proc)
	}
	var ctlBuf fastCtl
	for ri := bi.recLo; ri < bi.recHi; ri++ {
		fi := &fs.pd.rec[ri]
		res.Cycles++
		res.Insts++
		a := fs.readReg(fi.rs, int(fi.boost))
		c := fs.readReg(fi.rt, int(fi.boost))
		// execute consults the user fault handler itself for sequential
		// faults; an error here means the fault went unhandled.
		isCtl, err := fs.execute(fb, fi, a, c, &ctlBuf)
		if err != nil {
			return 0, false, err
		}
		if isCtl {
			return 0, false, fmt.Errorf("sim: control op in recovery code")
		}
		if fi.def >= 0 {
			fs.regReady[fi.def] = res.Cycles + int64(fi.lat)
		}
	}
	// Recovery ends with an unconditional jump to the predicted target.
	res.Cycles++
	return succ, false, nil
}
