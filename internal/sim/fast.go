package sim

import (
	"fmt"
	"math/bits"
	"sync"

	"boosting/internal/isa"
	"boosting/internal/memhier"
	"boosting/internal/prog"
)

// This file is the fast execution core: the executor for programs lowered
// by Predecode. Its steady-state loop is allocation-free — the machine
// state (register files, shadow file, store buffer, exception buffer,
// issue-cycle scratch) lives in a pooled fastState whose pieces are reset
// by generation counter or slice truncation rather than reallocation, and
// no map lookups or string hashing happen per cycle. It mirrors the
// semantics of execLegacy in exec.go instruction for instruction: both
// engines must produce byte-identical ExecResults, which the golden-trace
// suite and the difftest oracle enforce.

// fastShadow is the boosting shadow register file in dense form, keyed by
// *maturity epoch* rather than by boost level: a write at level L during
// commit epoch E matures (reaches the sequential file) at epoch E+L, and
// each commit just bumps the epoch and applies the bucket of entries that
// mature now — O(applied), with no per-commit value shifting. The boost
// level of an outstanding entry is maturity−epoch, so the level-indexed
// views the paper semantics need (read "largest level ≤ n wins", the
// single-shadow conflict check) are recovered by rotating the per-register
// bitmask by epoch mod 16. Slots alias mod 16, which is safe because
// maxLevel ≤ 15 keeps the live window inside one rotation. Squash is
// O(1)+O(window): bump the generation counter and truncate the buckets; a
// register's mask is only meaningful when its generation matches.
type fastShadow struct {
	mask []uint16 // per register: bit (E mod 16) set = an entry matures at epoch E
	gen  []uint64 // generation at which mask is valid
	vals []uint32 // value per (register, maturity slot), stride 16
	// buckets[E mod 16] lists the registers with an entry maturing at E.
	// Invariant: every listed register has its bit set in the current
	// generation — commit drains a whole bucket and squash/reset truncate
	// them all, so no stale entries survive. occ mirrors which buckets are
	// non-empty so squash/count/outstanding touch only live ones.
	buckets [16][]int32
	occ     uint16

	epoch    uint64 // commits so far; rotation origin for mask/vals slots
	curGen   uint64
	maxLevel int
	multi    bool
}

func (sh *fastShadow) reset(maxLevel int, multi bool, numRegs int) {
	sh.maxLevel = maxLevel
	sh.multi = multi
	if cap(sh.mask) < numRegs {
		sh.mask = make([]uint16, numRegs)
		sh.gen = make([]uint64, numRegs)
	}
	sh.mask = sh.mask[:numRegs]
	sh.gen = sh.gen[:numRegs]
	if need := numRegs * 16; cap(sh.vals) < need {
		sh.vals = make([]uint32, need)
	} else {
		sh.vals = sh.vals[:need]
	}
	sh.squash()
	// One further bump isolates this run from whatever a previous pooled
	// run left in gen; the counter never resets, so stale entries can't
	// collide.
	sh.curGen++
}

// levels returns the outstanding-level mask of r (bit n set = level n has
// an uncommitted value; 0 if none): the maturity mask rotated back by the
// current epoch.
func (sh *fastShadow) levels(r int32) uint16 {
	if sh.gen[r] != sh.curGen {
		return 0
	}
	return bits.RotateLeft16(sh.mask[r], -int(sh.epoch&15))
}

// read returns the value of r seen from the given boost level, or ok=false
// if the sequential register file should be used. Mirrors shadowFile.read:
// the outstanding value with the largest level ≤ level wins.
func (sh *fastShadow) read(r int32, level int) (uint32, bool) {
	m := sh.levels(r) & (1<<(uint(level)+1) - 2)
	if m == 0 {
		return 0, false
	}
	lv := bits.Len16(m) - 1
	return sh.vals[int(r)*16+int((sh.epoch+uint64(lv))&15)], true
}

// write records a boosted def of r. Mirrors shadowFile.write, including the
// single-shadow conflict check and its error text.
func (sh *fastShadow) write(r int32, level int, v uint32) error {
	if level <= 0 || level > sh.maxLevel {
		return fmt.Errorf("shadow write level %d outside hardware range 1..%d", level, sh.maxLevel)
	}
	if r == int32(isa.R0) {
		return nil
	}
	if sh.gen[r] != sh.curGen {
		sh.gen[r] = sh.curGen
		sh.mask[r] = 0
	}
	if !sh.multi {
		if other := sh.levels(r) &^ (1 << uint(level)); other != 0 {
			return fmt.Errorf("single-shadow conflict on %s: outstanding level %d, new level %d",
				isa.Reg(r), bits.TrailingZeros16(other), level)
		}
	}
	slot := (sh.epoch + uint64(level)) & 15
	if b := uint16(1) << slot; sh.mask[r]&b == 0 {
		sh.mask[r] |= b
		sh.buckets[slot] = append(sh.buckets[slot], r)
		sh.occ |= b
	}
	sh.vals[int(r)*16+int(slot)] = v // newest same-level def wins
	return nil
}

// commit applies level-1 values to the sequential register file; deeper
// levels "shift down" implicitly because their level is measured against
// the advanced epoch. Matches shadowFile.commit observably.
func (sh *fastShadow) commit(regs []uint32) {
	sh.epoch++
	slot := sh.epoch & 15
	if sh.occ&(1<<slot) == 0 {
		return
	}
	for _, r := range sh.buckets[slot] {
		// Bucket entries are never stale (see the invariant above), so the
		// bit is set and the generation current; R0 writes were suppressed
		// at write time.
		sh.mask[r] &^= 1 << slot
		regs[r] = sh.vals[int(r)*16+int(slot)]
	}
	sh.buckets[slot] = sh.buckets[slot][:0]
	sh.occ &^= 1 << slot
}

// count returns the number of outstanding (register, level) entries; it
// matches the per-entry squash accounting of the legacy shadow file.
func (sh *fastShadow) count() int {
	n := 0
	for occ := sh.occ; occ != 0; occ &= occ - 1 {
		n += len(sh.buckets[bits.TrailingZeros16(occ)])
	}
	return n
}

// squash discards all speculative register state.
func (sh *fastShadow) squash() {
	sh.curGen++
	for occ := sh.occ; occ != 0; occ &= occ - 1 {
		slot := bits.TrailingZeros16(occ)
		sh.buckets[slot] = sh.buckets[slot][:0]
	}
	sh.occ = 0
}

func (sh *fastShadow) outstanding() bool { return sh.occ != 0 }

// fastExcBuf is the paper's one-bit exception shift buffer as a bitmask:
// bit n set means a boosted instruction of level n raised a postponed
// exception. Mirrors exceptionBuffer observably (maxLevel ≤ 15).
type fastExcBuf uint16

// set records a postponed exception at the given level.
func (e *fastExcBuf) set(level int) { *e |= 1 << uint(level) }

// shift performs the commit-time shift and returns the out-shifted bit.
func (e *fastExcBuf) shift() bool {
	out := *e&2 != 0
	*e = (*e >> 1) &^ 1
	return out
}

// clear wipes the buffer (incorrect prediction).
func (e *fastExcBuf) clear() { *e = 0 }

// fastState is the pooled machine state of one fast-core execution.
type fastState struct {
	pd  *Predecoded
	cfg *ExecConfig
	res *ExecResult
	mem *Memory

	regs     []uint32
	regReady []int64
	vals     [][2]uint32 // issue-cycle operand scratch
	shadow   fastShadow
	stores   storeBuffer
	excbuf   fastExcBuf

	// One-entry page cache for the hot memory path. Only successful
	// lookups are cached, so pages mapped later (e.g. by an OnFault
	// handler) are picked up naturally.
	cachePN   uint32
	cachePage *page

	mh   *memhier.Hierarchy
	spec specStallTracker

	maxCycles int64
	// maxReady is a watermark over regReady: once res.Cycles reaches it no
	// register write is still in flight, so the per-operand interlock scan
	// is provably a no-op and the hot loop skips it.
	maxReady int64
}

var fastStatePool = sync.Pool{New: func() any { return new(fastState) }}

func getFastState(pd *Predecoded, cfg *ExecConfig) *fastState {
	fs := fastStatePool.Get().(*fastState)
	fs.pd = pd
	fs.cfg = cfg
	fs.res = &ExecResult{}
	fs.mem = SetupMemory(pd.sprog.Prog)
	if cap(fs.regs) < pd.numRegs {
		fs.regs = make([]uint32, pd.numRegs)
		fs.regReady = make([]int64, pd.numRegs)
	} else {
		fs.regs = fs.regs[:pd.numRegs]
		fs.regReady = fs.regReady[:pd.numRegs]
		clear(fs.regs)
		clear(fs.regReady)
	}
	if cap(fs.vals) < pd.maxPerCycle {
		fs.vals = make([][2]uint32, pd.maxPerCycle)
	} else {
		fs.vals = fs.vals[:pd.maxPerCycle]
	}
	fs.shadow.reset(pd.maxLevel, pd.multiShadow, pd.numRegs)
	fs.stores.entries = fs.stores.entries[:0]
	fs.stores.cap = pd.storeCap
	fs.excbuf.clear()
	fs.cachePage = nil
	fs.cachePN = 0
	fs.mh = nil
	// Always reset the speculative-stall tracker, not only when this run
	// models a memory hierarchy: a pooled state may come from a memhier run
	// and its pending counters must never leak into the next run (or the
	// next batch lane).
	fs.spec.reset(pd.maxLevel)
	fs.maxReady = 0
	fs.maxCycles = cfg.MaxCycles
	if fs.maxCycles == 0 {
		fs.maxCycles = 500_000_000
	}
	fs.regs[isa.SP] = prog.StackTop
	return fs
}

func putFastState(fs *fastState) {
	// Drop per-run pointers so the pool doesn't retain programs or
	// memories; the flat slices are the point of pooling and stay.
	fs.pd = nil
	fs.cfg = nil
	fs.res = nil
	fs.mem = nil
	fs.cachePage = nil
	fs.mh = nil
	fastStatePool.Put(fs)
}

// Exec runs the pre-decoded program to completion, applying full boosting
// hardware semantics. It is safe to call concurrently on the same
// Predecoded value.
func (pd *Predecoded) Exec(cfg ExecConfig) (*ExecResult, error) {
	var mh *memhier.Hierarchy
	if cfg.Mem != nil {
		var err error
		if mh, err = memhier.New(*cfg.Mem); err != nil {
			return nil, err
		}
	}
	fs := getFastState(pd, &cfg)
	defer putFastState(fs)
	fs.mh = mh
	res := fs.res

	cur := pd.entry
	if fb := &pd.blocks[cur]; !fb.scheduled {
		return res, fmt.Errorf("sim: no schedule for %s block B%d", fb.proc, fb.id)
	}
	for {
		next, done, err := fs.step(cur)
		if done || err != nil {
			return res, err
		}
		cur = next
	}
}

// step advances one top-level dispatch round: one superblock (runBlock)
// plus the cycle-budget and schedule checks on its successor. It finalizes
// the result (memory hash, hierarchy stats) when the program halts. Exec
// and ExecBatch both drive execution exclusively through step, so a batch
// lane's round sequence is the solo sequence by construction.
func (fs *fastState) step(cur int32) (next int32, done bool, err error) {
	pd, res := fs.pd, fs.res
	next, validated, done, err := fs.runBlock(&pd.blocks[cur])
	if err != nil {
		return 0, false, err
	}
	if done {
		if fs.shadow.outstanding() || fs.stores.outstanding() {
			return 0, false, fmt.Errorf("sim: speculative state outstanding at halt")
		}
		res.MemHash = fs.mem.Snapshot()
		if fs.mh != nil {
			stats := fs.mh.Stats()
			res.Mem = &stats
		}
		return 0, true, nil
	}
	if res.Cycles > fs.maxCycles {
		return 0, false, fmt.Errorf("sim: exceeded %d cycles", fs.maxCycles)
	}
	// runBlock reports missing successors itself; next is a real block
	// here. Chained (pre-validated) edges skip the schedule checks.
	if !validated {
		nb := &pd.blocks[next]
		if !nb.procSched {
			return 0, false, fmt.Errorf("sim: no schedule for proc %s", nb.proc)
		}
		if !nb.scheduled {
			return 0, false, fmt.Errorf("sim: no schedule for %s block B%d", nb.proc, nb.id)
		}
	}
	return next, false, nil
}

// fastCtl is the pending control decision of a block's terminator.
type fastCtl struct {
	fi     *fastInst
	ext    *fastExt // cold half of fi (squash info, recovery bounds)
	taken  bool
	target int32 // resolved successor for JAL/JR
}

// failCycle repairs the batched counters when execution aborts at slot i
// of cycle ci: the whole block's Insts/BoostedExec were added up front, so
// the unexecuted tail (later slots of this cycle plus all later cycles) is
// subtracted, and the locally-mirrored cycle counter and ready watermark
// are written back. The partial result is then byte-identical to
// per-instruction counting, which is what the legacy engine reports.
func (fs *fastState) failCycle(fb *fastBlock, ci int32, insts []fastInst, i int, cycles, maxReady int64) {
	res := fs.res
	for j := i + 1; j < len(insts); j++ {
		if insts[j].kind != fkNop {
			res.Insts--
		}
		if insts[j].boost > 0 {
			res.BoostedExec--
		}
	}
	for cj := ci + 1; cj < fb.cycHi; cj++ {
		cy := &fs.pd.cycles[cj]
		res.Insts -= int64(cy.nInsts)
		res.BoostedExec -= int64(cy.nBoosted)
	}
	res.Cycles = cycles
	fs.maxReady = maxReady
}

// runBlock executes a superblock starting at fb: the block itself, then —
// as long as control resolves onto an edge pre-validated at predecode
// (fastBlock.chain for unconditional edges, fastBlock.predChain for a
// correctly-predicted branch that committed cleanly) — its fused
// successors, without returning to top-level dispatch. The inner loop is
// switch-threaded: operand shape and faultability are pre-specialized
// into fastInst.kind, so the hot kinds (safe ALU, branch, resident
// aligned load/store, J, halt) execute inline and only cold kinds
// (divides, calls, returns, OUT, cache-miss or buffered memory ops) pay
// the execute() call.
//
// It returns the dense successor once control leaves the chain;
// validated=true means the successor was pre-checked at predecode and
// the caller may skip schedule validation. Recovery, mispredicted
// squash, calls, and returns always leave the chain, which keeps
// squash/recovery semantics byte-identical to the legacy engine.
func (fs *fastState) runBlock(fb *fastBlock) (next int32, validated, done bool, err error) {
	pd, res := fs.pd, fs.res
	regs, regReady := fs.regs, fs.regReady
	vals := fs.vals
	onBlock := fs.cfg.OnBlock
	// The cycle counter and ready watermark are mirrored in locals so the
	// hot loop keeps them in registers; they are written back after each
	// block's cycles, around every execute() call, and in failCycle.
	cycles := res.Cycles
	maxReady := fs.maxReady

chain:
	for {
		if onBlock != nil {
			onBlock(fb.proc, fb.id)
		}
		var ctl *fastCtl
		var ctlBuf fastCtl

		// Whole-block instruction statistics were pre-summed at predecode
		// and are added up front; failCycle subtracts the unexecuted tail
		// if the block aborts mid-cycle.
		res.Insts += int64(fb.nInsts)
		res.BoostedExec += int64(fb.nBoosted)

		for ci := fb.cycLo; ci < fb.cycHi; ci++ {
			cy := &pd.cycles[ci]
			insts := pd.insts[cy.lo:cy.hi]

			// Operand interlock: the whole issue cycle stalls until every
			// operand of every instruction in it is ready. When the ready
			// watermark has passed, no write is in flight and the scan is
			// provably a no-op.
			if maxReady > cycles {
				need := cycles
				for i := range insts {
					fi := &insts[i]
					if fi.use0 >= 0 {
						if t := regReady[fi.use0]; t > need {
							need = t
						}
					}
					if fi.use1 >= 0 {
						if t := regReady[fi.use1]; t > need {
							need = t
						}
					}
				}
				if need > cycles {
					res.Stalls += need - cycles
					cycles = need
				}
			}

			// Register reads happen at issue for every slot, before any
			// writes of this cycle. RAW-free cycles (effectively all of
			// them) read operands directly in the dispatch loop instead of
			// staging them in the operand buffer; non-boosted operands read
			// the sequential file directly (writes to R0 are suppressed, so
			// regs[0] stays 0).
			direct := cy.rawFree
			if !direct {
				for i := range insts {
					fi := &insts[i]
					if fi.boost == 0 {
						vals[i][0], vals[i][1] = regs[fi.rs], regs[fi.rt]
					} else {
						vals[i][0] = fs.readReg(fi.rs, int(fi.boost))
						vals[i][1] = fs.readReg(fi.rt, int(fi.boost))
					}
				}
			}

			for i := range insts {
				fi := &insts[i]
				var a, c uint32
				if direct {
					if fi.boost == 0 {
						a, c = regs[fi.rs], regs[fi.rt]
					} else {
						a = fs.readReg(fi.rs, int(fi.boost))
						c = fs.readReg(fi.rt, int(fi.boost))
					}
				} else {
					a, c = vals[i][0], vals[i][1]
				}

				switch fi.kind {
				case fkALUSafe:
					// Pre-classified as unable to fault: no exception
					// machinery on this path.
					v, _ := evalALU(fi.op, a, c, fi.imm)
					if fi.boost == 0 {
						if fi.rd != 0 {
							regs[fi.rd] = v
						}
					} else if werr := fs.shadow.write(fi.rd, int(fi.boost), v); werr != nil {
						fs.failCycle(fb, ci, insts, i, cycles, maxReady)
						return 0, false, false, werr
					}
				case fkBranch:
					if ctl != nil {
						fs.failCycle(fb, ci, insts, i, cycles, maxReady)
						return 0, false, false, fmt.Errorf("sim: two control ops in block B%d", fb.id)
					}
					ctlBuf = fastCtl{fi: fi, ext: &pd.exts[int(cy.lo)+i], taken: branchTaken(fi.op, a, c)}
					ctl = &ctlBuf
				case fkLoad:
					addr := a + uint32(fi.imm)
					size := int(fi.size)
					// Access sizes are powers of two, so alignment is a mask.
					if fs.mh == nil && len(fs.stores.entries) == 0 &&
						addr&uint32(size-1) == 0 &&
						fs.cachePage != nil && fs.cachePN == addr/pageSize &&
						int(addr%pageSize)+size <= pageSize {
						// Resident aligned load with no buffered stores and
						// no modeled hierarchy: read the cached page inline.
						p, off := fs.cachePage, addr%pageSize
						var v uint32
						switch size {
						case 1:
							v = uint32(p[off])
						case 2:
							v = uint32(p[off]) | uint32(p[off+1])<<8
						default:
							v = uint32(p[off]) | uint32(p[off+1])<<8 |
								uint32(p[off+2])<<16 | uint32(p[off+3])<<24
						}
						v = extend(v, size, fi.signExt)
						if fi.boost == 0 {
							if fi.rd != 0 {
								regs[fi.rd] = v
							}
						} else if werr := fs.shadow.write(fi.rd, int(fi.boost), v); werr != nil {
							fs.failCycle(fb, ci, insts, i, cycles, maxReady)
							return 0, false, false, werr
						}
					} else {
						res.Cycles = cycles
						_, eerr := fs.execute(fb, fi, &pd.exts[int(cy.lo)+i], a, c, &ctlBuf)
						cycles = res.Cycles
						if eerr != nil {
							fs.failCycle(fb, ci, insts, i, cycles, maxReady)
							return 0, false, false, eerr
						}
					}
				case fkStore:
					addr := a + uint32(fi.imm)
					size := int(fi.size)
					if fi.boost == 0 && fs.mh == nil &&
						addr&uint32(size-1) == 0 &&
						fs.cachePage != nil && fs.cachePN == addr/pageSize &&
						int(addr%pageSize)+size <= pageSize {
						// Sequential stores write memory directly even with
						// buffered boosted stores outstanding, exactly as
						// the generic path does.
						p, off := fs.cachePage, addr%pageSize
						switch size {
						case 1:
							p[off] = byte(c)
						case 2:
							p[off] = byte(c)
							p[off+1] = byte(c >> 8)
						default:
							p[off] = byte(c)
							p[off+1] = byte(c >> 8)
							p[off+2] = byte(c >> 16)
							p[off+3] = byte(c >> 24)
						}
						if fs.cfg.OnStore != nil {
							fs.cfg.OnStore(addr, size, c)
						}
					} else {
						res.Cycles = cycles
						_, eerr := fs.execute(fb, fi, &pd.exts[int(cy.lo)+i], a, c, &ctlBuf)
						cycles = res.Cycles
						if eerr != nil {
							fs.failCycle(fb, ci, insts, i, cycles, maxReady)
							return 0, false, false, eerr
						}
					}
				case fkJ, fkHalt:
					if ctl != nil {
						fs.failCycle(fb, ci, insts, i, cycles, maxReady)
						return 0, false, false, fmt.Errorf("sim: two control ops in block B%d", fb.id)
					}
					ctlBuf = fastCtl{fi: fi}
					ctl = &ctlBuf
				case fkNop:
					// Boosted NOP: counted via the block totals, no
					// architectural effect.
				default:
					res.Cycles = cycles
					isCtl, eerr := fs.execute(fb, fi, &pd.exts[int(cy.lo)+i], a, c, &ctlBuf)
					cycles = res.Cycles
					if eerr != nil {
						fs.failCycle(fb, ci, insts, i, cycles, maxReady)
						return 0, false, false, eerr
					}
					if isCtl {
						if ctl != nil {
							fs.failCycle(fb, ci, insts, i, cycles, maxReady)
							return 0, false, false, fmt.Errorf("sim: two control ops in block B%d", fb.id)
						}
						ctl = &ctlBuf
					}
				}
				if fi.def >= 0 {
					t := cycles + int64(fi.lat)
					regReady[fi.def] = t
					if t > maxReady {
						maxReady = t
					}
				}
			}
			cycles++
		}

		// The cycle counter and watermark mirrors are written back before
		// control resolution, which may run commit/recovery code that
		// reads them.
		res.Cycles = cycles
		fs.maxReady = maxReady

		// Resolve the block's control transfer; chain edges continue the
		// superblock as long as the cycle budget holds.
		if ctl == nil {
			// Fall-through block.
			if fb.nsucc != 1 {
				return 0, false, false, fmt.Errorf("sim: block B%d has no successor", fb.id)
			}
			if fb.chain >= 0 && res.Cycles <= fs.maxCycles {
				fb = &pd.blocks[fb.chain]
				continue chain
			}
			return fb.succ0, fb.chain >= 0, false, nil
		}
		switch ctl.fi.kind {
		case fkHalt:
			return 0, false, true, nil
		case fkJ:
			if fb.chain >= 0 && res.Cycles <= fs.maxCycles {
				fb = &pd.blocks[fb.chain]
				continue chain
			}
			next, validated = fb.succ0, fb.chain >= 0
		case fkJAL, fkJR:
			next = ctl.target
		default: // conditional branch
			res.Branches++
			correct := ctl.taken == ctl.fi.pred
			succ := fb.succ0
			if ctl.taken {
				succ = fb.succ1
			}
			if correct {
				res.Correct++
				var commitFault *Fault
				fs.shadow.commit(regs)
				if f := fs.stores.commit(fs.mem, fs.cfg.OnStore); f != nil {
					commitFault = f
				}
				if fs.mh != nil {
					fs.spec.commit()
				}
				if fs.excbuf.shift() || commitFault != nil {
					n, d, rerr := fs.recover(fb, ctl.fi, ctl.ext, succ)
					return n, false, d, rerr
				}
				if fb.predChain >= 0 && res.Cycles <= fs.maxCycles {
					fb = &pd.blocks[fb.predChain]
					continue chain
				}
				next, validated = succ, fb.predChain >= 0
			} else {
				// Incorrect prediction: discard all speculative state.
				droppedStores := len(fs.stores.entries)
				droppedRegs := fs.shadow.count()
				res.Squashed += int64(droppedStores + droppedRegs)
				if !fs.cfg.Inject.SkipShadowSquash {
					fs.shadow.squash()
				}
				if !fs.cfg.Inject.SkipStoreSquash {
					fs.stores.squash()
				}
				fs.excbuf.clear()
				if fs.mh != nil {
					res.SquashedMemStalls += fs.spec.squash()
				}
				if fs.cfg.OnSquash != nil {
					leaked := len(fs.stores.entries) + fs.shadow.count()
					fs.cfg.OnSquash(SquashInfo{
						BranchID: int(ctl.ext.id),
						Regs:     droppedRegs,
						Stores:   droppedStores,
						Leaked:   leaked,
					})
				}
				next = succ
			}
		}
		// A missing successor is reported here with the block that lacks
		// it, but only when the cycle budget still holds: the exceeded-
		// cycles error takes precedence at top level, as it always has.
		if next < 0 && res.Cycles <= fs.maxCycles {
			return 0, false, false, fmt.Errorf("sim: block B%d has no successor", fb.id)
		}
		return next, validated, false, nil
	}
}

// readReg reads a register as seen from the given boost level.
func (fs *fastState) readReg(r int32, level int) uint32 {
	if r == int32(isa.R0) {
		return 0
	}
	if level > 0 {
		if v, ok := fs.shadow.read(r, level); ok {
			return v
		}
	}
	return fs.regs[r]
}

// writeReg writes a register sequentially or into the shadow file.
func (fs *fastState) writeReg(r int32, level int, v uint32) error {
	if r == int32(isa.R0) {
		return nil
	}
	if level > 0 {
		return fs.shadow.write(r, level, v)
	}
	fs.regs[r] = v
	return nil
}

// memLoad reads through the one-entry page cache; cross-page accesses fall
// back to the byte-wise Memory path.
func (fs *fastState) memLoad(addr uint32, size int) (uint32, bool) {
	off := addr % pageSize
	if int(off)+size <= pageSize {
		pn := addr / pageSize
		p := fs.cachePage
		if p == nil || fs.cachePN != pn {
			p = fs.mem.pages[pn]
			if p == nil {
				return 0, false
			}
			fs.cachePage, fs.cachePN = p, pn
		}
		switch size {
		case 1:
			return uint32(p[off]), true
		case 2:
			return uint32(p[off]) | uint32(p[off+1])<<8, true
		default:
			return uint32(p[off]) | uint32(p[off+1])<<8 |
				uint32(p[off+2])<<16 | uint32(p[off+3])<<24, true
		}
	}
	return fs.mem.Load(addr, size)
}

// memStore writes through the page cache. The cross-page fallback keeps
// Memory.Store's partial-write-then-fail behavior on unmapped tails.
func (fs *fastState) memStore(addr uint32, size int, v uint32) bool {
	off := addr % pageSize
	if int(off)+size <= pageSize {
		pn := addr / pageSize
		p := fs.cachePage
		if p == nil || fs.cachePN != pn {
			p = fs.mem.pages[pn]
			if p == nil {
				return false
			}
			fs.cachePage, fs.cachePN = p, pn
		}
		switch size {
		case 1:
			p[off] = byte(v)
		case 2:
			p[off] = byte(v)
			p[off+1] = byte(v >> 8)
		default:
			p[off] = byte(v)
			p[off+1] = byte(v >> 8)
			p[off+2] = byte(v >> 16)
			p[off+3] = byte(v >> 24)
		}
		return true
	}
	return fs.mem.Store(addr, size, v)
}

// touchMem charges memory-hierarchy stall cycles when a hierarchy is
// modeled; it mirrors execState.touchMem exactly.
func (fs *fastState) touchMem(id int, addr uint32, store bool, level int) {
	if fs.mh == nil {
		return
	}
	if p := fs.mh.Access(fs.res.Cycles, id, addr, store); p > 0 {
		fs.res.Cycles += p
		fs.res.MemStalls += p
		if level > 0 {
			fs.res.BoostedMemStalls += p
			fs.spec.add(level, p)
		}
	}
}

// loadValue reads memory through the level-bounded store-buffer view,
// bypassing the buffer entirely when it is empty (the common case).
func (fs *fastState) loadValue(fb *fastBlock, fi *fastInst, ext *fastExt, addr uint32, size int) (uint32, *Fault) {
	if size > 1 && addr%uint32(size) != 0 {
		return 0, &Fault{Kind: FaultAlign, Addr: addr, Proc: fb.proc,
			Block: fb.id, InstID: int(ext.id), Boosted: fi.boost > 0}
	}
	var v uint32
	var ok bool
	if len(fs.stores.entries) == 0 {
		v, ok = fs.memLoad(addr, size)
	} else {
		v, ok = fs.stores.read(int(fi.boost), addr, size, fs.mem)
	}
	if !ok {
		return 0, &Fault{Kind: FaultLoad, Addr: addr, Proc: fb.proc,
			Block: fb.id, InstID: int(ext.id), Boosted: fi.boost > 0}
	}
	return v, nil
}

// preciseFault routes a sequential fault through the user handler; retry
// re-runs the failing action.
func (fs *fastState) preciseFault(f *Fault, retry func() *Fault) error {
	if fs.cfg.OnFault != nil && fs.cfg.OnFault(fs.mem, f) {
		if f2 := retry(); f2 != nil {
			fs.res.Fault = f2
			return f2
		}
		return nil
	}
	fs.res.Fault = f
	return f
}

// execute performs one instruction's function; a and c are the issued
// operand values and ext is the instruction's cold half. Control
// decisions are written to *ctl (isCtl=true); the transfer happens at
// block end.
func (fs *fastState) execute(fb *fastBlock, fi *fastInst, ext *fastExt, a, c uint32, ctl *fastCtl) (isCtl bool, err error) {
	switch fi.kind {
	case fkALU, fkALUSafe:
		v, ok := evalALU(fi.op, a, c, fi.imm)
		if !ok {
			if fi.boost > 0 {
				fs.excbuf.set(int(fi.boost))
				return false, fs.writeReg(fi.rd, int(fi.boost), 0)
			}
			f := &Fault{Kind: FaultDivZero, Proc: fb.proc, Block: fb.id, InstID: int(ext.id)}
			fs.res.Fault = f
			return false, f
		}
		return false, fs.writeReg(fi.rd, int(fi.boost), v)
	case fkLoad:
		addr := a + uint32(fi.imm)
		size := int(fi.size)
		fs.touchMem(int(ext.id), addr, false, int(fi.boost))
		v, f := fs.loadValue(fb, fi, ext, addr, size)
		if f != nil {
			if fi.boost > 0 {
				fs.excbuf.set(int(fi.boost))
				return false, fs.writeReg(fi.rd, int(fi.boost), 0)
			}
			if fs.cfg.OnFault != nil && fs.cfg.OnFault(fs.mem, f) {
				v2, f2 := fs.loadValue(fb, fi, ext, addr, size)
				if f2 != nil {
					fs.res.Fault = f2
					return false, f2
				}
				return false, fs.writeReg(fi.rd, 0, extend(v2, size, fi.signExt))
			}
			fs.res.Fault = f
			return false, f
		}
		return false, fs.writeReg(fi.rd, int(fi.boost), extend(v, size, fi.signExt))
	case fkStore:
		addr := a + uint32(fi.imm)
		size := int(fi.size)
		fs.touchMem(int(ext.id), addr, true, int(fi.boost))
		if fi.boost > 0 {
			if !fs.pd.storeBuffer {
				return false, fmt.Errorf("sim: boosted store without store buffer in B%d", fb.id)
			}
			// Alignment/mapping faults on boosted stores are postponed.
			if size > 1 && addr%uint32(size) != 0 || !fs.mem.Mapped(addr) || !fs.mem.Mapped(addr+uint32(size)-1) {
				fs.excbuf.set(int(fi.boost))
				return false, nil
			}
			if err := fs.stores.write(int(fi.boost), addr, size, c); err != nil {
				return false, fmt.Errorf("sim: B%d of %s: %w", fb.id, fb.proc, err)
			}
			return false, nil
		}
		if size > 1 && addr%uint32(size) != 0 {
			f := &Fault{Kind: FaultAlign, Addr: addr, Proc: fb.proc, Block: fb.id, InstID: int(ext.id)}
			return false, fs.preciseFault(f, func() *Fault {
				if !fs.memStore(addr, size, c) {
					return &Fault{Kind: FaultStore, Addr: addr, Proc: fb.proc, Block: fb.id, InstID: int(ext.id)}
				}
				return nil
			})
		}
		if !fs.memStore(addr, size, c) {
			f := &Fault{Kind: FaultStore, Addr: addr, Proc: fb.proc, Block: fb.id, InstID: int(ext.id)}
			return false, fs.preciseFault(f, func() *Fault {
				if !fs.memStore(addr, size, c) {
					return f
				}
				return nil
			})
		}
		if fs.cfg.OnStore != nil {
			fs.cfg.OnStore(addr, size, c)
		}
		return false, nil
	case fkBranch:
		*ctl = fastCtl{fi: fi, ext: ext, taken: branchTaken(fi.op, a, c)}
		return true, nil
	case fkJ:
		*ctl = fastCtl{fi: fi, ext: ext}
		return true, nil
	case fkJAL:
		if fs.shadow.outstanding() || fs.stores.outstanding() {
			return false, fmt.Errorf("sim: speculative state outstanding at call in B%d", fb.id)
		}
		if ext.target < 0 {
			return false, fmt.Errorf("sim: call to undefined %q", ext.sym)
		}
		if err := fs.writeReg(fi.rd, 0, ext.link); err != nil {
			return false, err
		}
		*ctl = fastCtl{fi: fi, ext: ext, target: ext.target}
		return true, nil
	case fkJR:
		if fs.shadow.outstanding() || fs.stores.outstanding() {
			return false, fmt.Errorf("sim: speculative state outstanding at return in B%d", fb.id)
		}
		idx := a - retTokenBase
		if a < retTokenBase || int(idx) >= len(fs.pd.blocks) {
			return false, fmt.Errorf("sim: jr to invalid token %#x", a)
		}
		*ctl = fastCtl{fi: fi, ext: ext, target: int32(idx)}
		return true, nil
	case fkOut:
		if fi.boost > 0 {
			return false, fmt.Errorf("sim: boosted OUT is not supported by any model")
		}
		fs.res.Out = append(fs.res.Out, a)
		return false, nil
	case fkHalt:
		*ctl = fastCtl{fi: fi, ext: ext}
		return true, nil
	default: // fkNop
		return false, nil
	}
}

// recover implements the boosted exception handler (paper §2.3) on the
// pre-decoded recovery stream; see execState.recover for the semantics.
// bi/bext are the committing branch whose exception buffer fired.
func (fs *fastState) recover(fb *fastBlock, bi *fastInst, bext *fastExt, succ int32) (int32, bool, error) {
	res := fs.res
	res.Recoveries++
	fs.shadow.squash()
	fs.stores.squash()
	fs.excbuf.clear()
	if fs.mh != nil {
		res.SquashedMemStalls += fs.spec.squash()
	}
	res.Cycles += int64(fs.pd.excOverhead)

	if bext.recLo < 0 {
		return 0, false, fmt.Errorf(
			"sim: boosted exception at branch %d in B%d of %s but no recovery code",
			bext.id, fb.id, fb.proc)
	}
	var ctlBuf fastCtl
	for ri := bext.recLo; ri < bext.recHi; ri++ {
		fi := &fs.pd.rec[ri]
		res.Cycles++
		res.Insts++
		a := fs.readReg(fi.rs, int(fi.boost))
		c := fs.readReg(fi.rt, int(fi.boost))
		// execute consults the user fault handler itself for sequential
		// faults; an error here means the fault went unhandled.
		isCtl, err := fs.execute(fb, fi, &fs.pd.recExts[ri], a, c, &ctlBuf)
		if err != nil {
			return 0, false, err
		}
		if isCtl {
			return 0, false, fmt.Errorf("sim: control op in recovery code")
		}
		if fi.def >= 0 {
			t := res.Cycles + int64(fi.lat)
			fs.regReady[fi.def] = t
			if t > fs.maxReady {
				fs.maxReady = t
			}
		}
	}
	// Recovery ends with an unconditional jump to the predicted target.
	res.Cycles++
	return succ, false, nil
}
