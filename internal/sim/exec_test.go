package sim

import (
	"strings"
	"testing"

	"boosting/internal/isa"
	"boosting/internal/machine"
	"boosting/internal/memhier"
	"boosting/internal/prog"
)

// manual builds a SchedProgram from per-block cycle lists for the given
// model, without running the scheduler — used to exercise the executor's
// hardware checks directly.
type manual struct {
	pr *prog.Program
	sp *machine.SchedProgram
}

func newManual(model *machine.Model, build func(f *prog.Builder)) *manual {
	pr := prog.New()
	f := prog.NewBuilder(pr, "main")
	build(f)
	f.Finish()
	m := &manual{pr: pr, sp: &machine.SchedProgram{
		Prog:  pr,
		Model: model,
		Procs: map[string]*machine.SchedProc{"main": {
			Proc:     pr.Main(),
			Blocks:   map[int]*machine.SchedBlock{},
			Recovery: map[int][]isa.Inst{},
		}},
	}}
	return m
}

// sched assigns a hand-written schedule to block id. Each entry of cycles
// is a slice of width 2 instruction pointers.
func (m *manual) sched(id int, cycles ...[]*isa.Inst) {
	b := m.pr.Main().Blocks[id]
	sb := &machine.SchedBlock{Block: b}
	for _, cy := range cycles {
		sb.Cycles = append(sb.Cycles, machine.Cycle{Slots: cy})
	}
	m.sp.Procs["main"].Blocks[id] = sb
}

// inst is shorthand for building instruction pointers.
func inst(in isa.Inst) *isa.Inst { return &in }

func TestExecRejectsBoostedStoreWithoutBuffer(t *testing.T) {
	m := newManual(machine.MinBoost3(), func(f *prog.Builder) {
		done := f.Block("done")
		r := f.Reg()
		f.Li(r, 1)
		f.Branch(isa.BGTZ, r, isa.R0, done, done)
		f.Enter(done)
		f.Halt()
	})
	entry := m.pr.Main().Blocks[0]
	li := &entry.Insts[0]
	br := &entry.Insts[1]
	store := inst(isa.Inst{Op: isa.SW, Rt: 1, Rs: 1, Imm: 0, Boost: 1})
	m.sched(0,
		[]*isa.Inst{nil, li},
		[]*isa.Inst{br, store},
		[]*isa.Inst{nil, nil},
	)
	halt := &m.pr.Main().Blocks[1].Insts[0]
	m.sched(1, []*isa.Inst{halt, nil})

	_, err := Exec(m.sp, ExecConfig{})
	if err == nil || !strings.Contains(err.Error(), "store buffer") {
		t.Fatalf("want store-buffer hardware error, got %v", err)
	}
}

func TestExecDetectsSingleShadowConflict(t *testing.T) {
	// Two boosted defs of the same register at different levels in one
	// block: MinBoost3's single shadow location cannot represent it.
	m := newManual(machine.MinBoost3(), func(f *prog.Builder) {
		mid := f.Block("mid")
		done := f.Block("done")
		r := f.Reg()
		f.Li(r, 1)
		f.Branch(isa.BGTZ, r, isa.R0, mid, mid)
		f.Enter(mid)
		f.Branch(isa.BGTZ, r, isa.R0, done, done)
		f.Enter(done)
		f.Halt()
	})
	entry := m.pr.Main().Blocks[0]
	li := &entry.Insts[0]
	br := &entry.Insts[1]
	d2 := inst(isa.Inst{Op: isa.ADDI, Rd: 20, Rs: 0, Imm: 2, Boost: 2})
	d1 := inst(isa.Inst{Op: isa.ADDI, Rd: 20, Rs: 0, Imm: 1, Boost: 1})
	m.sched(0,
		[]*isa.Inst{nil, li},
		[]*isa.Inst{d2, d1}, // both in flight at once
		[]*isa.Inst{br, nil},
		[]*isa.Inst{nil, nil},
	)
	br2 := &m.pr.Main().Blocks[1].Insts[0]
	m.sched(1, []*isa.Inst{br2, nil}, []*isa.Inst{nil, nil})
	halt := &m.pr.Main().Blocks[2].Insts[0]
	m.sched(2, []*isa.Inst{halt, nil})

	_, err := Exec(m.sp, ExecConfig{})
	if err == nil || !strings.Contains(err.Error(), "single-shadow conflict") {
		t.Fatalf("want single-shadow conflict, got %v", err)
	}
}

func TestExecAllowsMultiShadowLevels(t *testing.T) {
	// The same schedule on Boost7 (multi-shadow) must run and commit both
	// values in order.
	m := newManual(machine.Boost7(), func(f *prog.Builder) {
		mid := f.Block("mid")
		done := f.Block("done")
		r := f.Reg()
		f.Li(r, 1)
		f.Branch(isa.BGTZ, r, isa.R0, mid, mid)
		f.Enter(mid)
		f.Branch(isa.BGTZ, r, isa.R0, done, done)
		f.Enter(done)
		f.Out(isa.Reg(20))
		f.Halt()
	})
	entry := m.pr.Main().Blocks[0]
	li := &entry.Insts[0]
	br := &entry.Insts[1]
	// Predictions: both branches taken.
	entry.Insts[1].Pred = true
	m.pr.Main().Blocks[1].Insts[0].Pred = true
	d2 := inst(isa.Inst{Op: isa.ADDI, Rd: 20, Rs: 0, Imm: 22, Boost: 2})
	d1 := inst(isa.Inst{Op: isa.ADDI, Rd: 20, Rs: 0, Imm: 11, Boost: 1})
	m.sched(0,
		[]*isa.Inst{nil, li},
		[]*isa.Inst{d1, d2},
		[]*isa.Inst{br, nil},
		[]*isa.Inst{nil, nil},
	)
	br2 := &m.pr.Main().Blocks[1].Insts[0]
	m.sched(1, []*isa.Inst{br2, nil}, []*isa.Inst{nil, nil})
	out := &m.pr.Main().Blocks[2].Insts[0]
	halt := &m.pr.Main().Blocks[2].Insts[1]
	m.sched(2, []*isa.Inst{out, nil}, []*isa.Inst{halt, nil})

	res, err := Exec(m.sp, ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// d1 (the program-order-later value per level semantics) commits at
	// branch 1, d2 at branch 2; the sequential register ends at 22.
	if len(res.Out) != 1 || res.Out[0] != 22 {
		t.Fatalf("out = %v, want [22]", res.Out)
	}
	if res.BoostedExec != 2 {
		t.Errorf("boosted executed = %d", res.BoostedExec)
	}
}

func TestExecRejectsSpeculativeStateAtHalt(t *testing.T) {
	m := newManual(machine.Boost1(), func(f *prog.Builder) {
		f.Halt()
	})
	halt := &m.pr.Main().Blocks[0].Insts[0]
	d := inst(isa.Inst{Op: isa.ADDI, Rd: 20, Rs: 0, Imm: 1, Boost: 1})
	m.sched(0,
		[]*isa.Inst{d, nil},
		[]*isa.Inst{halt, nil},
	)
	_, err := Exec(m.sp, ExecConfig{})
	if err == nil || !strings.Contains(err.Error(), "outstanding") {
		t.Fatalf("want outstanding-state error, got %v", err)
	}
}

func TestExecCountsSquashes(t *testing.T) {
	// Branch predicted taken but falls through: the boosted def squashes.
	m := newManual(machine.Boost1(), func(f *prog.Builder) {
		done := f.Block("done")
		other := f.Block("other")
		r := f.Reg()
		f.Li(r, 0) // BGTZ not taken
		f.Branch(isa.BGTZ, r, isa.R0, other, done)
		f.Enter(other)
		f.Halt()
		f.Enter(done)
		f.Out(isa.Reg(20))
		f.Halt()
	})
	entry := m.pr.Main().Blocks[0]
	entry.Insts[1].Pred = true // mispredicted
	li := &entry.Insts[0]
	br := &entry.Insts[1]
	d := inst(isa.Inst{Op: isa.ADDI, Rd: 20, Rs: 0, Imm: 9, Boost: 1})
	m.sched(0,
		[]*isa.Inst{nil, li},
		[]*isa.Inst{br, d},
		[]*isa.Inst{nil, nil},
	)
	// Blocks: 0=entry, 1=done (out, halt), 2=other (halt).
	out := &m.pr.Main().Blocks[1].Insts[0]
	halt := &m.pr.Main().Blocks[1].Insts[1]
	m.sched(1, []*isa.Inst{out, nil}, []*isa.Inst{halt, nil})
	m.sched(2, []*isa.Inst{&m.pr.Main().Blocks[2].Insts[0], nil})

	res, err := Exec(m.sp, ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Squashed != 1 {
		t.Errorf("squashed = %d, want 1", res.Squashed)
	}
	if res.Out[0] != 0 {
		t.Errorf("squashed value leaked into sequential state: %d", res.Out[0])
	}
	if res.Correct != 0 || res.Branches != 1 {
		t.Errorf("branch stats %d/%d", res.Correct, res.Branches)
	}
}

func TestExecStallsOnCrossBlockLatency(t *testing.T) {
	// A load in one block and its consumer scheduled at the top of the
	// next: the executor must charge the residual interlock stall.
	m := newManual(machine.NoBoost(), func(f *prog.Builder) {
		next := f.Block("next")
		base, v, s := f.Reg(), f.Reg(), f.Reg()
		f.La(base, prog.DataBase)
		f.Load(isa.LW, v, base, 0)
		f.Goto(next)
		f.Enter(next)
		f.ALU(isa.ADD, s, v, v)
		f.Out(s)
		f.Halt()
	})
	m.pr.Word(21)
	entry := m.pr.Main().Blocks[0]
	// entry: la (a single lui, since DataBase's low half is zero), lw.
	m.sched(0,
		[]*isa.Inst{&entry.Insts[0], nil},
		[]*isa.Inst{nil, &entry.Insts[1]}, // lw in the mem slot
	)
	nb := m.pr.Main().Blocks[1]
	m.sched(1,
		[]*isa.Inst{&nb.Insts[0], nil}, // add immediately: must stall 1
		[]*isa.Inst{&nb.Insts[1], nil},
		[]*isa.Inst{&nb.Insts[2], nil},
	)
	res, err := Exec(m.sp, ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalls == 0 {
		t.Error("cross-block load-use must stall")
	}
	if res.Out[0] != 42 {
		t.Errorf("out = %d, want 42", res.Out[0])
	}
}

func TestCacheChangesTimingNotSemantics(t *testing.T) {
	m := newManual(machine.NoBoost(), func(f *prog.Builder) {
		next := f.Block("next")
		base, v, s := f.Reg(), f.Reg(), f.Reg()
		f.La(base, prog.DataBase)
		f.Load(isa.LW, v, base, 0)
		f.Goto(next)
		f.Enter(next)
		f.ALU(isa.ADD, s, v, v)
		f.Out(s)
		f.Halt()
	})
	m.pr.Word(21)
	entry := m.pr.Main().Blocks[0]
	m.sched(0,
		[]*isa.Inst{&entry.Insts[0], nil},
		[]*isa.Inst{nil, &entry.Insts[1]},
	)
	nb := m.pr.Main().Blocks[1]
	m.sched(1,
		[]*isa.Inst{&nb.Insts[0], nil},
		[]*isa.Inst{&nb.Insts[1], nil},
		[]*isa.Inst{&nb.Insts[2], nil},
	)

	plain, err := Exec(m.sp, ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mc := memhier.SingleLevel(4, 1, 16, 50)
	cached, err := Exec(m.sp, ExecConfig{Mem: &mc})
	if err != nil {
		t.Fatal(err)
	}
	if cached.Out[0] != plain.Out[0] || cached.MemHash != plain.MemHash {
		t.Error("cache changed semantics")
	}
	if cached.MemStalls == 0 || cached.Cycles <= plain.Cycles {
		t.Errorf("cold miss must cost cycles: %d vs %d (memstalls %d)",
			cached.Cycles, plain.Cycles, cached.MemStalls)
	}
}

// TestExecRecoveryDirect drives the recovery machinery with a hand-built
// schedule: a boosted faulting load whose branch commits, recovery code
// attached to the branch, and a handler that maps the page.
func TestExecRecoveryDirect(t *testing.T) {
	m := newManual(machine.Boost1(), func(f *prog.Builder) {
		done := f.Block("done")
		r := f.Reg()
		f.Li(r, 1)
		f.Branch(isa.BGTZ, r, isa.R0, done, done)
		f.Enter(done)
		f.Out(isa.Reg(21))
		f.Halt()
	})
	entry := m.pr.Main().Blocks[0]
	entry.Insts[1].Pred = true // predicted taken; actual taken → commit
	li := &entry.Insts[0]
	br := &entry.Insts[1]
	const wild = 0x0040_0000
	ld := inst(isa.Inst{Op: isa.LW, Rd: 21, Rs: 0, Imm: 0, Boost: 1, ID: 990})
	// The load's absolute address comes from Rs=R0 + Imm; patch a wild
	// address through a register instead: use r22 preloaded via the
	// schedule (simplest: make the load use R0+imm with an unmapped page
	// below the data segment).
	ld.Imm = int32(wild)
	m.sched(0,
		[]*isa.Inst{nil, li},
		[]*isa.Inst{br, ld},
		[]*isa.Inst{nil, nil},
	)
	done := m.pr.Main().Blocks[1]
	m.sched(1,
		[]*isa.Inst{&done.Insts[0], nil},
		[]*isa.Inst{&done.Insts[1], nil},
	)
	// Compiler-generated recovery for the branch: the load, sequential.
	rec := *ld
	rec.Boost = 0
	m.sp.Procs["main"].Recovery[br.ID] = []isa.Inst{rec}

	handled := 0
	res, err := Exec(m.sp, ExecConfig{
		OnFault: func(mm *Memory, f *Fault) bool {
			handled++
			if f.Boosted {
				t.Error("recovery fault must be precise (sequential)")
			}
			mm.Map(f.Addr, 4)
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 1 || handled != 1 {
		t.Errorf("recoveries=%d handled=%d", res.Recoveries, handled)
	}
	if res.Out[0] != 0 {
		t.Errorf("out = %d (value from the demand-mapped page)", res.Out[0])
	}

	// Without a handler, the same program terminates with a precise fault.
	m.sp.Procs["main"].Recovery[br.ID] = []isa.Inst{rec}
	res2, err2 := Exec(m.sp, ExecConfig{})
	if err2 == nil {
		t.Fatal("unhandled precise fault must terminate")
	}
	if res2.Recoveries != 1 {
		t.Errorf("recoveries=%d", res2.Recoveries)
	}

	// Missing recovery code is a hardware/compiler contract violation.
	delete(m.sp.Procs["main"].Recovery, br.ID)
	if _, err := Exec(m.sp, ExecConfig{}); err == nil || !strings.Contains(err.Error(), "no recovery code") {
		t.Errorf("want missing-recovery error, got %v", err)
	}
}
