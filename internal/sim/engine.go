package sim

import (
	"fmt"
	"strings"
)

// Engine selects the scheduled-code executor implementation. Both engines
// implement identical boosting-hardware semantics and produce byte-identical
// ExecResults (statistics, output stream, final memory, store stream); they
// differ only in speed. The zero value is EngineFast, so the fast core is
// the default everywhere an ExecConfig is zero-initialized.
type Engine uint8

const (
	// EngineFast is the pre-decoded executor: the scheduled program is
	// lowered once into dense arrays (resolved control targets, small-int
	// operands, pre-classified operation kinds) and run by a steady-state
	// loop that is allocation-free and performs no map lookups per cycle.
	EngineFast Engine = iota
	// EngineLegacy is the original interpretive executor that walks the
	// machine.SchedProgram structures directly. It is retained as the
	// differential-testing partner for the fast core and as an escape
	// hatch.
	EngineLegacy
)

// String returns the engine's wire name ("fast" or "legacy").
func (e Engine) String() string {
	if e == EngineLegacy {
		return "legacy"
	}
	return "fast"
}

// ParseEngine resolves a wire name to an Engine. The empty string selects
// the default (fast) engine.
func ParseEngine(s string) (Engine, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "fast":
		return EngineFast, nil
	case "legacy":
		return EngineLegacy, nil
	}
	return 0, fmt.Errorf("sim: unknown engine %q (want \"fast\" or \"legacy\")", s)
}

// Engines lists every executor engine, default first.
func Engines() []Engine { return []Engine{EngineFast, EngineLegacy} }
