package sim

import (
	"testing"

	"boosting/internal/machine"
	"boosting/internal/prog"
)

func TestParseEngine(t *testing.T) {
	cases := []struct {
		in      string
		want    Engine
		wantErr bool
	}{
		{"", EngineFast, false},
		{"fast", EngineFast, false},
		{"legacy", EngineLegacy, false},
		{"  Fast ", EngineFast, false},
		{"LEGACY", EngineLegacy, false},
		{"turbo", 0, true},
	}
	for _, c := range cases {
		got, err := ParseEngine(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseEngine(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseEngine(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if EngineFast.String() != "fast" || EngineLegacy.String() != "legacy" {
		t.Errorf("engine names: %v %v", EngineFast, EngineLegacy)
	}
	if es := Engines(); len(es) != 2 || es[0] != EngineFast {
		t.Errorf("Engines() = %v", es)
	}
}

// TestPredecodeTokenOrder pins the dense block numbering to the link
// table's token numbering: the fast core resolves return tokens by array
// arithmetic, so the two orders must never drift apart. The program has
// two procedures so cross-procedure ordering is exercised.
func TestPredecodeTokenOrder(t *testing.T) {
	pr := prog.New()
	cb := prog.NewBuilder(pr, "callee")
	cb.Ret()
	cb.Finish()
	mb := prog.NewBuilder(pr, "main")
	mb.Call("callee")
	mb.Halt()
	mb.Finish()

	sp := &machine.SchedProgram{
		Prog:  pr,
		Model: machine.NoBoost(),
		Procs: map[string]*machine.SchedProc{
			"main": {Proc: pr.Main(), Blocks: map[int]*machine.SchedBlock{}},
		},
	}
	// The schedules themselves are irrelevant to block numbering; an
	// unscheduled program predecodes fine as long as main exists.
	pd, err := Predecode(sp)
	if err != nil {
		t.Fatal(err)
	}
	lt := buildLinkTable(pr)
	if len(lt.toBlock) != len(pd.blocks) {
		t.Fatalf("block count: link table %d, predecoded %d", len(lt.toBlock), len(pd.blocks))
	}
	for i, ref := range lt.toBlock {
		fb := &pd.blocks[i]
		if ref.proc.Name != fb.proc || ref.block.ID != fb.id {
			t.Fatalf("dense index %d: link table has %s/B%d, predecode has %s/B%d",
				i, ref.proc.Name, ref.block.ID, fb.proc, fb.id)
		}
		tok := lt.token(ref.proc, ref.block)
		if tok != retTokenBase+uint32(i) {
			t.Fatalf("token of %s/B%d = %#x, want %#x", ref.proc.Name, ref.block.ID, tok, retTokenBase+uint32(i))
		}
	}
}
