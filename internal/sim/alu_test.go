package sim

import (
	"strings"
	"testing"
	"testing/quick"

	"boosting/internal/isa"
)

func TestEvalALUExhaustive(t *testing.T) {
	minI32 := int32(-1 << 31)
	cases := []struct {
		op      isa.Op
		a, b    uint32
		imm     int32
		want    uint32
		wantErr bool
	}{
		{op: isa.ADD, a: 7, b: 5, want: 12},
		{op: isa.ADD, a: 0xFFFFFFFF, b: 1, want: 0}, // wraps, no trap
		{op: isa.SUB, a: 5, b: 7, want: uint32(-2 & 0xFFFFFFFF)},
		{op: isa.AND, a: 0b1100, b: 0b1010, want: 0b1000},
		{op: isa.OR, a: 0b1100, b: 0b1010, want: 0b1110},
		{op: isa.XOR, a: 0b1100, b: 0b1010, want: 0b0110},
		{op: isa.NOR, a: 0, b: 0, want: 0xFFFFFFFF},
		{op: isa.SLT, a: uint32(minI32), b: 1, want: 1},
		{op: isa.SLTU, a: uint32(minI32), b: 1, want: 0},
		{op: isa.ADDI, a: 10, imm: -3, want: 7},
		{op: isa.ANDI, a: 0xFFFF_FFFF, imm: 0x0F0F, want: 0x0F0F},
		{op: isa.ORI, a: 0xF000_0000, imm: 0x00FF, want: 0xF000_00FF},
		{op: isa.XORI, a: 1, imm: 1, want: 0},
		{op: isa.SLTI, a: uint32(minI32), imm: 0, want: 1},
		{op: isa.SLTIU, a: 1, imm: 2, want: 1},
		{op: isa.LUI, imm: 0x1234, want: 0x1234_0000},
		{op: isa.SLL, a: 1, imm: 4, want: 16},
		{op: isa.SRL, a: 0x8000_0000, imm: 31, want: 1},
		{op: isa.SRA, a: 0x8000_0000, imm: 31, want: 0xFFFF_FFFF},
		{op: isa.SLLV, a: 1, b: 35, want: 8}, // shift amount masked to 5 bits
		{op: isa.SRLV, a: 16, b: 4, want: 1},
		{op: isa.SRAV, a: uint32(-16 & 0xFFFFFFFF), b: 2, want: uint32(-4 & 0xFFFFFFFF)},
		{op: isa.MUL, a: uint32(-3 & 0xFFFFFFFF), b: 7, want: uint32(-21 & 0xFFFFFFFF)},
		{op: isa.DIV, a: uint32(-7 & 0xFFFFFFFF), b: 2, want: uint32(-3 & 0xFFFFFFFF)},
		{op: isa.DIV, a: 1, b: 0, wantErr: true},
		{op: isa.DIV, a: uint32(minI32), b: uint32(-1 & 0xFFFFFFFF), want: uint32(minI32)},
		{op: isa.REM, a: uint32(-7 & 0xFFFFFFFF), b: 2, want: uint32(-1 & 0xFFFFFFFF)},
		{op: isa.REM, a: 1, b: 0, wantErr: true},
		{op: isa.REM, a: uint32(minI32), b: uint32(-1 & 0xFFFFFFFF), want: 0},
		{op: isa.DIVU, a: 0xFFFF_FFFF, b: 2, want: 0x7FFF_FFFF},
		{op: isa.DIVU, a: 1, b: 0, wantErr: true},
	}
	for _, c := range cases {
		got, ok := evalALU(c.op, c.a, c.b, c.imm)
		if c.wantErr {
			if ok {
				t.Errorf("%s(%#x,%#x,%d): expected trap", c.op, c.a, c.b, c.imm)
			}
			continue
		}
		if !ok || got != c.want {
			t.Errorf("%s(%#x,%#x,%d) = %#x,%v; want %#x", c.op, c.a, c.b, c.imm, got, ok, c.want)
		}
	}
}

func TestBranchTakenExhaustive(t *testing.T) {
	neg := uint32(-5 & 0xFFFFFFFF)
	cases := []struct {
		op   isa.Op
		a, b uint32
		want bool
	}{
		{isa.BEQ, 3, 3, true}, {isa.BEQ, 3, 4, false},
		{isa.BNE, 3, 4, true}, {isa.BNE, 3, 3, false},
		{isa.BLEZ, 0, 0, true}, {isa.BLEZ, neg, 0, true}, {isa.BLEZ, 1, 0, false},
		{isa.BGTZ, 1, 0, true}, {isa.BGTZ, 0, 0, false}, {isa.BGTZ, neg, 0, false},
		{isa.BLTZ, neg, 0, true}, {isa.BLTZ, 0, 0, false},
		{isa.BGEZ, 0, 0, true}, {isa.BGEZ, neg, 0, false},
	}
	for _, c := range cases {
		if got := branchTaken(c.op, c.a, c.b); got != c.want {
			t.Errorf("%s(%d,%d) = %v", c.op, int32(c.a), int32(c.b), got)
		}
	}
}

// Property: SLT agrees with native signed comparison, SLTU with unsigned.
func TestComparisonProperties(t *testing.T) {
	f := func(a, b uint32) bool {
		slt, _ := evalALU(isa.SLT, a, b, 0)
		sltu, _ := evalALU(isa.SLTU, a, b, 0)
		return (slt == 1) == (int32(a) < int32(b)) && (sltu == 1) == (a < b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: extend round-trips low bytes for every size/signedness.
func TestExtendProperty(t *testing.T) {
	f := func(v uint32) bool {
		if extend(v, 1, false) != v&0xFF {
			return false
		}
		if extend(v, 2, false) != v&0xFFFF {
			return false
		}
		if int32(extend(v, 1, true)) != int32(int8(v)) {
			return false
		}
		if int32(extend(v, 2, true)) != int32(int16(v)) {
			return false
		}
		return extend(v, 4, false) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFaultStrings(t *testing.T) {
	for _, k := range []FaultKind{FaultNone, FaultLoad, FaultStore, FaultAlign, FaultDivZero} {
		if k.String() == "?" {
			t.Errorf("kind %d has no name", k)
		}
	}
	f := &Fault{Kind: FaultLoad, Addr: 0x1234, Proc: "main", Block: 3, InstID: 7, Boosted: true}
	msg := f.Error()
	for _, want := range []string{"load-fault", "0x1234", "main", "boosted=true"} {
		if !strings.Contains(msg, want) {
			t.Errorf("fault message %q missing %q", msg, want)
		}
	}
}
