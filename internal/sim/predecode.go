package sim

import (
	"fmt"

	"boosting/internal/isa"
	"boosting/internal/machine"
	"boosting/internal/prog"
)

// This file is the Lower/Predecode pass behind the fast execution core:
// it flattens a machine.SchedProgram into dense arrays the executor in
// fast.go can walk without pointer chasing, map lookups or per-cycle
// allocation. Every block of every procedure gets a dense index (assigned
// in the same order buildLinkTable assigns return tokens, so a return
// token IS a dense block index plus retTokenBase), control targets are
// resolved to those indices, operands become small ints, and per-op
// facts the legacy loop recomputes every cycle — functional-unit kind,
// memory access size/extension, result latency, use/def registers — are
// computed once here.

// Operation kinds the fast executor dispatches on. They collapse the
// per-instruction switch of the legacy loop into a dense jump. The kinds
// are pre-specialized at predecode so the threaded inner loop does no
// per-instruction re-classification: ALU operations that can never fault
// (everything but the divide family) get their own kind and execute
// inline in the dispatch loop without touching the exception machinery.
const (
	fkALUSafe uint8 = iota // ALU op that cannot fault — inline fast path
	fkALU                  // ALU op that may fault (DIV/DIVU/REM)
	fkLoad
	fkStore
	fkBranch
	fkJ
	fkJAL
	fkJR
	fkOut
	fkHalt
	fkNop
)

// fastInst is one pre-decoded instruction. It holds only the fields the
// threaded dispatch loop touches every execution — 36 bytes, so nearly
// two instructions share a cache line. Cold facts (fault identity, call
// targets, recovery bounds) live in the parallel fastExt array and are
// only loaded on slow paths.
type fastInst struct {
	op      isa.Op
	kind    uint8
	boost   uint8
	size    uint8 // memory access size in bytes
	signExt bool  // loads: sign-extend
	pred    bool  // branches: static prediction
	lat     int8  // result latency
	rd      int32 // destination register (0 = R0/none for value writes)
	rs, rt  int32 // source registers (0 = R0)
	imm     int32
	// use0/use1/def drive the interlock and ready bookkeeping. -1 means
	// "no register in this role"; R0 is a valid (if architecturally
	// inert) participant, exactly as in the legacy loop.
	use0, use1, def int32
}

// fastExt is the cold half of a pre-decoded instruction, indexed in
// lockstep with the fastInst arrays (Predecoded.insts/exts and
// rec/recExts). Nothing here is read by the hot dispatch loop.
type fastExt struct {
	id int32 // stable instruction ID (fault reports, squash info)
	// target is the dense block index of the control transfer: the
	// callee entry for JAL (-1 = undefined callee). J/branch successors
	// live on the block instead.
	target int32
	link   uint32 // JAL: return token to write into rd
	// recLo/recHi bound this branch's boosted-exception recovery code in
	// Predecoded.rec (-1 = no recovery code emitted for this branch).
	recLo, recHi int32
	sym          string // JAL: callee name (error reporting)
}

// fastCycle is one issue cycle: insts[lo:hi] issue together. NOPs and
// empty slots are dropped at predecode (they read R0 and write nothing),
// but the cycle itself still costs one machine cycle. nInsts and nBoosted
// are the cycle's static contribution to the Insts/BoostedExec counters,
// so the executor adds once per cycle instead of branching per
// instruction.
type fastCycle struct {
	lo, hi   int32
	nInsts   uint8
	nBoosted uint8
	// rawFree means no slot reads a register defined by an earlier slot of
	// the same cycle, so issue-time reads and in-order execution observe
	// the same values and the executor can skip the operand buffer.
	// Schedulers never co-issue a producer with its consumer (results have
	// latency), so effectively every cycle qualifies.
	rawFree bool
}

// fastBlock is one pre-decoded basic block.
type fastBlock struct {
	proc         string
	id           int
	procSched    bool // the owning procedure has a schedule
	scheduled    bool // this block has a schedule
	cycLo, cycHi int32
	nsucc        uint8
	succ0, succ1 int32 // dense successor indices (-1 = none)

	// Whole-block totals of the per-cycle static counters: the executor
	// adds them once per block and repairs the tail from the per-cycle
	// counts on an error return.
	nInsts   int32
	nBoosted int32

	// Superblock chaining, computed once all blocks are lowered. chain is
	// the dense successor of a statically-unconditional control edge
	// (fall-through or J) whose target is pre-validated as scheduled: the
	// executor transfers to it without returning to top-level dispatch or
	// re-checking schedules. predChain is the same for the profile-
	// predicted direction of a conditional terminator — the
	// overwhelmingly-taken path of the superblock — taken after a correct
	// prediction commits cleanly. -1 = no chain (the generic, fully
	// checked dispatch path runs instead, preserving every error message).
	chain     int32
	predChain int32
}

// Predecoded is a scheduled program lowered for the fast execution core.
// It is immutable after Predecode and safe for concurrent Exec calls.
type Predecoded struct {
	sprog   *machine.SchedProgram
	blocks  []fastBlock
	cycles  []fastCycle
	insts   []fastInst
	exts    []fastExt  // cold half of insts, same indexing
	rec     []fastInst // recovery-code pool, indexed by fastExt.recLo/recHi
	recExts []fastExt  // cold half of rec, same indexing

	entry       int32 // dense index of main's entry block
	numRegs     int
	maxPerCycle int // widest issue cycle after NOP dropping

	// Boosting-hardware configuration, copied out of the model.
	maxLevel    int
	multiShadow bool
	storeBuffer bool
	storeCap    int
	excOverhead int

	// Superblock-chaining statistics (see fastBlock.chain).
	nChained     int // blocks with a pre-validated unconditional chain
	nPredChained int // blocks with a pre-validated predicted-path chain
}

// ChainStats reports how many blocks predecode fused into superblock
// chains: unconditional (fall-through/J) edges and profile-predicted
// conditional edges with pre-validated, schedule-checked targets.
func (pd *Predecoded) ChainStats() (unconditional, predicted int) {
	return pd.nChained, pd.nPredChained
}

// Predecode lowers a scheduled program for the fast execution core. The
// result may be reused across many Exec calls (each run gets its own
// pooled machine state).
func Predecode(sp *machine.SchedProgram) (*Predecoded, error) {
	mainSP := sp.Procs["main"]
	if mainSP == nil {
		return nil, fmt.Errorf("sim: scheduled program has no main")
	}
	pd := &Predecoded{
		sprog:       sp,
		numRegs:     int(maxRegProgram(sp.Prog)) + 1,
		maxLevel:    sp.Model.Boost.MaxLevel,
		multiShadow: sp.Model.Boost.MultiShadow,
		storeBuffer: sp.Model.Boost.StoreBuffer,
		storeCap:    sp.Model.Boost.StoreBufferSize,
		excOverhead: sp.Model.ExceptionOverhead,
	}

	// Pass 1: assign dense block indices in link-table order, so return
	// tokens resolve by arithmetic (token - retTokenBase = dense index).
	idx := map[blockKey]int32{}
	for _, p := range sp.Prog.ProcList() {
		for _, b := range p.Blocks {
			idx[blockKey{p.Name, b.ID}] = int32(len(pd.blocks))
			pd.blocks = append(pd.blocks, fastBlock{proc: p.Name, id: b.ID})
		}
	}
	pd.entry = idx[blockKey{"main", mainSP.Proc.Entry.ID}]

	// Pass 2: lower every scheduled block.
	for _, p := range sp.Prog.ProcList() {
		schedProc := sp.Procs[p.Name]
		for _, b := range p.Blocks {
			fb := &pd.blocks[idx[blockKey{p.Name, b.ID}]]
			fb.nsucc = uint8(len(b.Succs))
			fb.succ0, fb.succ1 = -1, -1
			if len(b.Succs) > 0 {
				fb.succ0 = idx[blockKey{p.Name, b.Succs[0].ID}]
			}
			if len(b.Succs) > 1 {
				fb.succ1 = idx[blockKey{p.Name, b.Succs[1].ID}]
			}
			if schedProc == nil {
				continue
			}
			fb.procSched = true
			sb := schedProc.Blocks[b.ID]
			if sb == nil {
				continue
			}
			fb.scheduled = true
			fb.cycLo = int32(len(pd.cycles))
			for ci := range sb.Cycles {
				lo := int32(len(pd.insts))
				for _, in := range sb.Cycles[ci].Slots {
					// Empty slots and sequential NOPs have no architectural
					// or statistical effect and are dropped; a boosted NOP
					// still counts toward BoostedExec, so it stays.
					if in == nil || (in.Op == isa.NOP && in.Boost == 0) {
						continue
					}
					fi, ext, err := pd.lowerInst(sp, schedProc, p.Name, b, in, idx)
					if err != nil {
						return nil, err
					}
					pd.insts = append(pd.insts, fi)
					pd.exts = append(pd.exts, ext)
				}
				hi := int32(len(pd.insts))
				if w := int(hi - lo); w > pd.maxPerCycle {
					pd.maxPerCycle = w
				}
				cy := fastCycle{lo: lo, hi: hi, rawFree: true}
				for j := lo; j < hi; j++ {
					fi := &pd.insts[j]
					if fi.kind != fkNop {
						cy.nInsts++
					}
					if fi.boost > 0 {
						cy.nBoosted++
					}
					// R0 defs are suppressed by the register file, so only
					// real registers create intra-cycle hazards.
					for k := lo; k < j; k++ {
						if d := pd.insts[k].def; d > 0 && (fi.rs == d || fi.rt == d) {
							cy.rawFree = false
						}
					}
				}
				pd.cycles = append(pd.cycles, cy)
				fb.nInsts += int32(cy.nInsts)
				fb.nBoosted += int32(cy.nBoosted)
			}
			fb.cycHi = int32(len(pd.cycles))
		}
	}
	pd.buildChains()
	return pd, nil
}

// buildChains fuses blocks into superblocks: for every scheduled block it
// finds the terminator among the lowered instructions and, when the
// control edge is statically certain — fall-through, unconditional J, or
// the profile-predicted direction of a conditional branch — pre-validates
// the target (owning procedure and block both scheduled) and records it
// as a chain. The executor follows chains without returning to top-level
// dispatch; unvalidated edges keep -1 and take the generic, fully checked
// path so error behavior is byte-identical.
func (pd *Predecoded) buildChains() {
	valid := func(next int32) bool {
		if next < 0 {
			return false
		}
		nb := &pd.blocks[next]
		return nb.procSched && nb.scheduled
	}
	for i := range pd.blocks {
		fb := &pd.blocks[i]
		fb.chain, fb.predChain = -1, -1
		if !fb.scheduled {
			continue
		}
		// Find the block's terminator. More than one control op is a
		// malformed schedule the executor reports at run time; never chain
		// those.
		var term *fastInst
		ctlOps := 0
		for ci := fb.cycLo; ci < fb.cycHi; ci++ {
			cy := &pd.cycles[ci]
			for ii := cy.lo; ii < cy.hi; ii++ {
				switch pd.insts[ii].kind {
				case fkBranch, fkJ, fkJAL, fkJR, fkHalt:
					term = &pd.insts[ii]
					ctlOps++
				}
			}
		}
		if ctlOps > 1 {
			continue
		}
		switch {
		case term == nil:
			// Fall-through: chain only the well-formed single-successor
			// shape; anything else must raise the runtime error.
			if fb.nsucc == 1 && valid(fb.succ0) {
				fb.chain = fb.succ0
				pd.nChained++
			}
		case term.kind == fkJ:
			if valid(fb.succ0) {
				fb.chain = fb.succ0
				pd.nChained++
			}
		case term.kind == fkBranch:
			next := fb.succ0
			if term.pred {
				next = fb.succ1
			}
			if valid(next) {
				fb.predChain = next
				pd.nPredChained++
			}
		}
	}
}

// lowerInst pre-decodes one instruction of block b in procedure proc.
func (pd *Predecoded) lowerInst(sp *machine.SchedProgram, schedProc *machine.SchedProc,
	proc string, b *prog.Block, in *isa.Inst, idx map[blockKey]int32) (fastInst, fastExt, error) {
	fi, ext := lowerCommon(in)
	switch fi.kind {
	case fkJAL:
		ext.sym = in.Sym
		if callee := sp.Prog.Procs[in.Sym]; callee != nil {
			ext.target = idx[blockKey{callee.Name, callee.Entry.ID}]
		}
		// The return continuation is the calling block's first successor;
		// its token is retTokenBase plus the dense block index, exactly as
		// buildLinkTable assigns it.
		if len(b.Succs) > 0 {
			ext.link = retTokenBase + uint32(idx[blockKey{proc, b.Succs[0].ID}])
		}
	case fkBranch:
		if rec := schedProc.Recovery[in.ID]; rec != nil {
			ext.recLo = int32(len(pd.rec))
			for i := range rec {
				rfi, rext := lowerCommon(&rec[i])
				pd.rec = append(pd.rec, rfi)
				pd.recExts = append(pd.recExts, rext)
			}
			ext.recHi = int32(len(pd.rec))
		}
	}
	return fi, ext, nil
}

// lowerCommon fills the operand/classification fields shared by block and
// recovery instructions.
func lowerCommon(in *isa.Inst) (fastInst, fastExt) {
	fi := fastInst{
		op:    in.Op,
		boost: uint8(in.Boost),
		pred:  in.Pred,
		lat:   int8(isa.Latency(in.Op)),
		rd:    int32(in.Rd),
		rs:    int32(in.Rs),
		rt:    int32(in.Rt),
		imm:   in.Imm,
		use0:  -1,
		use1:  -1,
		def:   -1,
	}
	ext := fastExt{
		id:     int32(in.ID),
		target: -1,
		recLo:  -1,
		recHi:  -1,
	}
	switch {
	case in.Op == isa.NOP:
		fi.kind = fkNop
	case in.Op == isa.HALT:
		fi.kind = fkHalt
	case in.Op == isa.OUT:
		fi.kind = fkOut
	case in.Op == isa.J:
		fi.kind = fkJ
	case in.Op == isa.JAL:
		fi.kind = fkJAL
	case in.Op == isa.JR:
		fi.kind = fkJR
	case isa.IsCondBranch(in.Op):
		fi.kind = fkBranch
	case isa.IsLoad(in.Op):
		fi.kind = fkLoad
		size, signExt := memAccess(in.Op)
		fi.size, fi.signExt = uint8(size), signExt
	case isa.IsStore(in.Op):
		fi.kind = fkStore
		size, _ := memAccess(in.Op)
		fi.size = uint8(size)
	case in.Op == isa.DIV || in.Op == isa.DIVU || in.Op == isa.REM:
		fi.kind = fkALU // divide family: the only ALU ops that can fault
	default:
		fi.kind = fkALUSafe
	}
	var buf [2]isa.Reg
	uses := in.Uses(buf[:0])
	if len(uses) > 0 {
		fi.use0 = int32(uses[0])
	}
	if len(uses) > 1 {
		fi.use1 = int32(uses[1])
	}
	defs := in.Defs(buf[:0])
	if len(defs) > 0 {
		fi.def = int32(defs[0])
	}
	return fi, ext
}
