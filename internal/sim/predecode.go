package sim

import (
	"fmt"

	"boosting/internal/isa"
	"boosting/internal/machine"
	"boosting/internal/prog"
)

// This file is the Lower/Predecode pass behind the fast execution core:
// it flattens a machine.SchedProgram into dense arrays the executor in
// fast.go can walk without pointer chasing, map lookups or per-cycle
// allocation. Every block of every procedure gets a dense index (assigned
// in the same order buildLinkTable assigns return tokens, so a return
// token IS a dense block index plus retTokenBase), control targets are
// resolved to those indices, operands become small ints, and per-op
// facts the legacy loop recomputes every cycle — functional-unit kind,
// memory access size/extension, result latency, use/def registers — are
// computed once here.

// Operation kinds the fast executor dispatches on. They collapse the
// per-instruction switch of the legacy loop into a dense jump.
const (
	fkALU uint8 = iota
	fkLoad
	fkStore
	fkBranch
	fkJ
	fkJAL
	fkJR
	fkOut
	fkHalt
	fkNop
)

// fastInst is one pre-decoded instruction.
type fastInst struct {
	op      isa.Op
	kind    uint8
	boost   uint8
	size    uint8 // memory access size in bytes
	signExt bool  // loads: sign-extend
	pred    bool  // branches: static prediction
	lat     int8  // result latency
	rd      int32 // destination register (0 = R0/none for value writes)
	rs, rt  int32 // source registers (0 = R0)
	imm     int32
	id      int32 // stable instruction ID (fault reports, squash info)
	// use0/use1/def drive the interlock and ready bookkeeping. -1 means
	// "no register in this role"; R0 is a valid (if architecturally
	// inert) participant, exactly as in the legacy loop.
	use0, use1, def int32
	// target is the dense block index of the control transfer: the
	// callee entry for JAL (-1 = undefined callee). J/branch successors
	// live on the block instead.
	target int32
	link   uint32 // JAL: return token to write into rd
	sym    string // JAL: callee name (error reporting)
	// recLo/recHi bound this branch's boosted-exception recovery code in
	// Predecoded.rec (-1 = no recovery code emitted for this branch).
	recLo, recHi int32
}

// fastCycle is one issue cycle: insts[lo:hi] issue together. NOPs and
// empty slots are dropped at predecode (they read R0 and write nothing),
// but the cycle itself still costs one machine cycle.
type fastCycle struct{ lo, hi int32 }

// fastBlock is one pre-decoded basic block.
type fastBlock struct {
	proc         string
	id           int
	procSched    bool // the owning procedure has a schedule
	scheduled    bool // this block has a schedule
	cycLo, cycHi int32
	nsucc        uint8
	succ0, succ1 int32 // dense successor indices (-1 = none)
}

// Predecoded is a scheduled program lowered for the fast execution core.
// It is immutable after Predecode and safe for concurrent Exec calls.
type Predecoded struct {
	sprog  *machine.SchedProgram
	blocks []fastBlock
	cycles []fastCycle
	insts  []fastInst
	rec    []fastInst // recovery-code pool, indexed by fastInst.recLo/recHi

	entry       int32 // dense index of main's entry block
	numRegs     int
	maxPerCycle int // widest issue cycle after NOP dropping

	// Boosting-hardware configuration, copied out of the model.
	maxLevel    int
	multiShadow bool
	storeBuffer bool
	storeCap    int
	excOverhead int
}

// Predecode lowers a scheduled program for the fast execution core. The
// result may be reused across many Exec calls (each run gets its own
// pooled machine state).
func Predecode(sp *machine.SchedProgram) (*Predecoded, error) {
	mainSP := sp.Procs["main"]
	if mainSP == nil {
		return nil, fmt.Errorf("sim: scheduled program has no main")
	}
	pd := &Predecoded{
		sprog:       sp,
		numRegs:     int(maxRegProgram(sp.Prog)) + 1,
		maxLevel:    sp.Model.Boost.MaxLevel,
		multiShadow: sp.Model.Boost.MultiShadow,
		storeBuffer: sp.Model.Boost.StoreBuffer,
		storeCap:    sp.Model.Boost.StoreBufferSize,
		excOverhead: sp.Model.ExceptionOverhead,
	}

	// Pass 1: assign dense block indices in link-table order, so return
	// tokens resolve by arithmetic (token - retTokenBase = dense index).
	idx := map[blockKey]int32{}
	for _, p := range sp.Prog.ProcList() {
		for _, b := range p.Blocks {
			idx[blockKey{p.Name, b.ID}] = int32(len(pd.blocks))
			pd.blocks = append(pd.blocks, fastBlock{proc: p.Name, id: b.ID})
		}
	}
	pd.entry = idx[blockKey{"main", mainSP.Proc.Entry.ID}]

	// Pass 2: lower every scheduled block.
	for _, p := range sp.Prog.ProcList() {
		schedProc := sp.Procs[p.Name]
		for _, b := range p.Blocks {
			fb := &pd.blocks[idx[blockKey{p.Name, b.ID}]]
			fb.nsucc = uint8(len(b.Succs))
			fb.succ0, fb.succ1 = -1, -1
			if len(b.Succs) > 0 {
				fb.succ0 = idx[blockKey{p.Name, b.Succs[0].ID}]
			}
			if len(b.Succs) > 1 {
				fb.succ1 = idx[blockKey{p.Name, b.Succs[1].ID}]
			}
			if schedProc == nil {
				continue
			}
			fb.procSched = true
			sb := schedProc.Blocks[b.ID]
			if sb == nil {
				continue
			}
			fb.scheduled = true
			fb.cycLo = int32(len(pd.cycles))
			for ci := range sb.Cycles {
				lo := int32(len(pd.insts))
				for _, in := range sb.Cycles[ci].Slots {
					// Empty slots and sequential NOPs have no architectural
					// or statistical effect and are dropped; a boosted NOP
					// still counts toward BoostedExec, so it stays.
					if in == nil || (in.Op == isa.NOP && in.Boost == 0) {
						continue
					}
					fi, err := pd.lowerInst(sp, schedProc, p.Name, b, in, idx)
					if err != nil {
						return nil, err
					}
					pd.insts = append(pd.insts, fi)
				}
				hi := int32(len(pd.insts))
				if w := int(hi - lo); w > pd.maxPerCycle {
					pd.maxPerCycle = w
				}
				pd.cycles = append(pd.cycles, fastCycle{lo, hi})
			}
			fb.cycHi = int32(len(pd.cycles))
		}
	}
	return pd, nil
}

// lowerInst pre-decodes one instruction of block b in procedure proc.
func (pd *Predecoded) lowerInst(sp *machine.SchedProgram, schedProc *machine.SchedProc,
	proc string, b *prog.Block, in *isa.Inst, idx map[blockKey]int32) (fastInst, error) {
	fi := lowerCommon(in)
	switch fi.kind {
	case fkJAL:
		fi.sym = in.Sym
		if callee := sp.Prog.Procs[in.Sym]; callee != nil {
			fi.target = idx[blockKey{callee.Name, callee.Entry.ID}]
		}
		// The return continuation is the calling block's first successor;
		// its token is retTokenBase plus the dense block index, exactly as
		// buildLinkTable assigns it.
		if len(b.Succs) > 0 {
			fi.link = retTokenBase + uint32(idx[blockKey{proc, b.Succs[0].ID}])
		}
	case fkBranch:
		if rec := schedProc.Recovery[in.ID]; rec != nil {
			fi.recLo = int32(len(pd.rec))
			for i := range rec {
				pd.rec = append(pd.rec, lowerCommon(&rec[i]))
			}
			fi.recHi = int32(len(pd.rec))
		}
	}
	return fi, nil
}

// lowerCommon fills the operand/classification fields shared by block and
// recovery instructions.
func lowerCommon(in *isa.Inst) fastInst {
	fi := fastInst{
		op:     in.Op,
		boost:  uint8(in.Boost),
		pred:   in.Pred,
		lat:    int8(isa.Latency(in.Op)),
		rd:     int32(in.Rd),
		rs:     int32(in.Rs),
		rt:     int32(in.Rt),
		imm:    in.Imm,
		id:     int32(in.ID),
		use0:   -1,
		use1:   -1,
		def:    -1,
		target: -1,
		recLo:  -1,
		recHi:  -1,
	}
	switch {
	case in.Op == isa.NOP:
		fi.kind = fkNop
	case in.Op == isa.HALT:
		fi.kind = fkHalt
	case in.Op == isa.OUT:
		fi.kind = fkOut
	case in.Op == isa.J:
		fi.kind = fkJ
	case in.Op == isa.JAL:
		fi.kind = fkJAL
	case in.Op == isa.JR:
		fi.kind = fkJR
	case isa.IsCondBranch(in.Op):
		fi.kind = fkBranch
	case isa.IsLoad(in.Op):
		fi.kind = fkLoad
		size, signExt := memAccess(in.Op)
		fi.size, fi.signExt = uint8(size), signExt
	case isa.IsStore(in.Op):
		fi.kind = fkStore
		size, _ := memAccess(in.Op)
		fi.size = uint8(size)
	default:
		fi.kind = fkALU
	}
	var buf [2]isa.Reg
	uses := in.Uses(buf[:0])
	if len(uses) > 0 {
		fi.use0 = int32(uses[0])
	}
	if len(uses) > 1 {
		fi.use1 = int32(uses[1])
	}
	defs := in.Defs(buf[:0])
	if len(defs) > 0 {
		fi.def = int32(defs[0])
	}
	return fi
}
