package sim

import (
	"testing"
	"testing/quick"

	"boosting/internal/isa"
	"boosting/internal/machine"
)

func multiCfg() machine.BoostConfig {
	return machine.BoostConfig{MaxLevel: 7, MultiShadow: true, StoreBuffer: true}
}

func singleCfg() machine.BoostConfig {
	return machine.BoostConfig{MaxLevel: 3}
}

func TestShadowReadLevels(t *testing.T) {
	s := newShadowFile(multiCfg())
	r := isa.Reg(5)
	if err := s.write(r, 2, 22); err != nil {
		t.Fatal(err)
	}
	if err := s.write(r, 1, 11); err != nil {
		t.Fatal(err)
	}
	// Sequential readers never see shadow state.
	if _, ok := s.read(r, 0); ok {
		t.Error("level-0 read must not see shadow state")
	}
	// A level-1 reader sees the level-1 value.
	if v, ok := s.read(r, 1); !ok || v != 11 {
		t.Errorf("level-1 read = %d,%v", v, ok)
	}
	// A level-2 reader sees the newest entry with level ≤ 2.
	if v, ok := s.read(r, 2); !ok || v != 22 {
		t.Errorf("level-2 read = %d,%v", v, ok)
	}
	// A level-3 reader also sees the level-2 entry.
	if v, ok := s.read(r, 3); !ok || v != 22 {
		t.Errorf("level-3 read = %d,%v", v, ok)
	}
}

func TestShadowCommitCascade(t *testing.T) {
	s := newShadowFile(multiCfg())
	r := isa.Reg(7)
	seq := uint32(99)
	apply := func(reg isa.Reg, v uint32) {
		if reg == r {
			seq = v
		}
	}
	s.write(r, 1, 1)
	s.write(r, 2, 2)
	s.write(r, 3, 3)
	s.commit(apply)
	if seq != 1 {
		t.Errorf("after first commit seq = %d, want 1", seq)
	}
	s.commit(apply)
	if seq != 2 {
		t.Errorf("after second commit seq = %d, want 2", seq)
	}
	s.commit(apply)
	if seq != 3 || s.outstanding() {
		t.Errorf("after third commit seq = %d outstanding=%v", seq, s.outstanding())
	}
}

func TestShadowSquash(t *testing.T) {
	s := newShadowFile(multiCfg())
	s.write(3, 1, 10)
	s.write(4, 2, 20)
	s.squash()
	if s.outstanding() {
		t.Error("squash must clear all entries")
	}
	if _, ok := s.read(3, 7); ok {
		t.Error("squashed value still readable")
	}
}

func TestShadowSingleConflict(t *testing.T) {
	s := newShadowFile(singleCfg())
	r := isa.Reg(9)
	if err := s.write(r, 2, 1); err != nil {
		t.Fatal(err)
	}
	// Same level: overwrite is fine (same commit point).
	if err := s.write(r, 2, 2); err != nil {
		t.Errorf("same-level overwrite must be allowed: %v", err)
	}
	// Different level: hardware conflict.
	if err := s.write(r, 1, 3); err == nil {
		t.Error("single-shadow hardware must reject a second level for the same register")
	}
	// A different register is independent.
	if err := s.write(r+1, 1, 4); err != nil {
		t.Errorf("different register rejected: %v", err)
	}
}

func TestShadowWriteLevelBounds(t *testing.T) {
	s := newShadowFile(singleCfg())
	if err := s.write(3, 0, 1); err == nil {
		t.Error("level 0 write must be rejected")
	}
	if err := s.write(3, 4, 1); err == nil {
		t.Error("write beyond MaxLevel must be rejected")
	}
	if err := s.write(isa.R0, 1, 1); err != nil {
		t.Error("R0 writes are discarded, not errors")
	}
}

// Property: after n commits, the sequential value equals the last write at
// level ≤ n, for random write sequences.
func TestShadowCommitProperty(t *testing.T) {
	f := func(levels []uint8, vals []uint8) bool {
		s := newShadowFile(multiCfg())
		r := isa.Reg(4)
		want := map[int]uint32{} // level → last value written
		for i, lv := range levels {
			if i >= len(vals) {
				break
			}
			level := int(lv%7) + 1
			v := uint32(vals[i])
			if s.write(r, level, v) == nil {
				want[level] = v
			}
		}
		seq := uint32(0xFFFF)
		for step := 1; step <= 7; step++ {
			s.commit(func(reg isa.Reg, v uint32) { seq = v })
			if w, ok := want[step]; ok && seq != w {
				return false
			}
		}
		return !s.outstanding()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStoreBufferForwarding(t *testing.T) {
	mem := NewMemory()
	mem.Map(0x1000, 64)
	mem.Store(0x1000, 4, 0xAABBCCDD)
	sb := &storeBuffer{}
	sb.write(1, 0x1000, 4, 0x11223344)

	// Sequential loads (level 0) see memory only.
	if v, _ := sb.read(0, 0x1000, 4, mem); v != 0xAABBCCDD {
		t.Errorf("level-0 load = %#x", v)
	}
	// Speculative loads at level ≥ 1 see the buffered store.
	if v, _ := sb.read(1, 0x1000, 4, mem); v != 0x11223344 {
		t.Errorf("level-1 load = %#x", v)
	}
	// Byte-wise partial overlap: a byte store over the buffered word.
	sb.write(1, 0x1001, 1, 0xEE)
	if v, _ := sb.read(1, 0x1000, 4, mem); v != 0x1122EE44 {
		t.Errorf("partial overlap load = %#x", v)
	}
	// Commit applies in order.
	if f := sb.commit(mem, nil); f != nil {
		t.Fatal(f)
	}
	if v, _ := mem.Load(0x1000, 4); v != 0x1122EE44 {
		t.Errorf("memory after commit = %#x", v)
	}
	if sb.outstanding() {
		t.Error("buffer should be empty after commit")
	}
}

func TestStoreBufferLevelsAndSquash(t *testing.T) {
	mem := NewMemory()
	mem.Map(0x2000, 16)
	sb := &storeBuffer{}
	sb.write(2, 0x2000, 4, 7)
	// First commit only decrements.
	if f := sb.commit(mem, nil); f != nil {
		t.Fatal(f)
	}
	if v, _ := mem.Load(0x2000, 4); v != 0 {
		t.Error("level-2 store committed too early")
	}
	// A level-1 reader now sees it (entry decremented to 1).
	if v, _ := sb.read(1, 0x2000, 4, mem); v != 7 {
		t.Error("decremented entry not visible at level 1")
	}
	sb.squash()
	if f := sb.commit(mem, nil); f != nil {
		t.Fatal(f)
	}
	if v, _ := mem.Load(0x2000, 4); v != 0 {
		t.Error("squashed store reached memory")
	}
}

func TestStoreBufferCommitFault(t *testing.T) {
	mem := NewMemory()
	sb := &storeBuffer{}
	sb.write(1, 0xDEAD0000, 4, 1) // unmapped
	if f := sb.commit(mem, nil); f == nil || f.Kind != FaultStore {
		t.Errorf("commit to unmapped memory must fault, got %v", f)
	}
}

func TestExceptionBufferShift(t *testing.T) {
	e := newExceptionBuffer(3)
	e.set(2)
	if e.shift() {
		t.Error("first shift must not expose the level-2 bit")
	}
	if !e.shift() {
		t.Error("second shift must expose the bit")
	}
	if e.shift() {
		t.Error("bit must shift out once")
	}
	e.set(1)
	e.clear()
	if e.shift() {
		t.Error("cleared buffer must be empty")
	}
}

func TestStoreBufferOverflow(t *testing.T) {
	mem := NewMemory()
	mem.Map(0x3000, 64)
	sb := &storeBuffer{cap: 2}
	if err := sb.write(1, 0x3000, 4, 1); err != nil {
		t.Fatal(err)
	}
	if err := sb.write(2, 0x3004, 4, 2); err != nil {
		t.Fatal(err)
	}
	// Third outstanding entry exceeds the hardware buffer.
	if err := sb.write(1, 0x3008, 4, 3); err == nil {
		t.Fatal("overflowing write must report a hardware conflict")
	}
	// The rejected store must not have been buffered.
	if v, _ := sb.read(7, 0x3008, 4, mem); v != 0 {
		t.Errorf("rejected store visible to speculative load: %#x", v)
	}
	// Committing level-1 entries frees capacity.
	if f := sb.commit(mem, nil); f != nil {
		t.Fatal(f)
	}
	if err := sb.write(1, 0x3008, 4, 3); err != nil {
		t.Errorf("write after commit freed a slot: %v", err)
	}
	// Squash empties the buffer entirely.
	sb.squash()
	for i := 0; i < 2; i++ {
		if err := sb.write(1, 0x3010+uint32(4*i), 4, 9); err != nil {
			t.Errorf("write %d after squash: %v", i, err)
		}
	}
}

func TestStoreBufferUnboundedByDefault(t *testing.T) {
	sb := &storeBuffer{} // cap 0 = unbounded (the paper's idealized buffer)
	for i := 0; i < 100; i++ {
		if err := sb.write(1, uint32(0x4000+4*i), 4, uint32(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
}

// TestExceptionBufferCommitOrdering pins the shift buffer's semantics when
// several boosted levels have postponed exceptions: each commit exposes
// exactly the bit that has reached level 1, in branch order, and deeper
// bits surface on later commits.
func TestExceptionBufferCommitOrdering(t *testing.T) {
	e := newExceptionBuffer(7)
	e.set(1)
	e.set(3)
	// Commit 1: the level-1 exception surfaces.
	if !e.shift() {
		t.Error("commit 1 must expose the level-1 exception")
	}
	// Commit 2: level 3 has only reached level 2.
	if e.shift() {
		t.Error("commit 2 must not expose the level-3 exception yet")
	}
	// The original level-3 bit has shifted to level 1. A new level-1
	// exception set now lands on the same bit: the buffer holds one bit
	// per level, so exceptions that reach the same level merge — the
	// handler re-executes the boosted instructions either way.
	e.set(1)
	if !e.shift() {
		t.Error("commit 3 must expose the merged level-1 exceptions")
	}
	if e.shift() {
		t.Error("the merged bit must expose exactly once; no exceptions remain")
	}
}

// TestExceptionBufferClearDropsAllLevels: an incorrect prediction wipes
// every postponed exception, not just level 1.
func TestExceptionBufferClearDropsAllLevels(t *testing.T) {
	e := newExceptionBuffer(7)
	for lv := 1; lv <= 7; lv++ {
		e.set(lv)
	}
	e.clear()
	for i := 0; i < 7; i++ {
		if e.shift() {
			t.Fatalf("shift %d exposed an exception after clear", i)
		}
	}
}

// TestStoreBufferSquashDuringPendingLoad: a speculative load that already
// forwarded from a buffered store must not leave stale data visible after
// the squash — post-squash reads at any level fall through to memory.
func TestStoreBufferSquashDuringPendingLoad(t *testing.T) {
	mem := NewMemory()
	mem.Map(0x5000, 32)
	mem.Store(0x5000, 4, 0x01020304)
	sb := &storeBuffer{}
	sb.write(1, 0x5000, 4, 0xDEADBEEF)

	// The boosted load (level 1) forwards the speculative value while the
	// store is pending.
	if v, _ := sb.read(1, 0x5000, 4, mem); v != 0xDEADBEEF {
		t.Fatalf("pending forward = %#x", v)
	}
	// Mispredict: the store squashes while the consuming load's value is
	// still "in flight" in the shadow register file. The buffer side must
	// revert to memory for every level.
	sb.squash()
	for level := 0; level <= 7; level++ {
		if v, _ := sb.read(level, 0x5000, 4, mem); v != 0x01020304 {
			t.Errorf("level-%d read after squash = %#x, want memory value", level, v)
		}
	}
	// And the squashed store never reaches memory on later commits.
	if f := sb.commit(mem, nil); f != nil {
		t.Fatal(f)
	}
	if v, _ := mem.Load(0x5000, 4); v != 0x01020304 {
		t.Errorf("memory after squash+commit = %#x", v)
	}
}

// TestShadowSquashDuringCascade: squash between commits of a multi-level
// cascade discards the deeper, still-uncommitted values.
func TestShadowSquashDuringCascade(t *testing.T) {
	s := newShadowFile(multiCfg())
	r := isa.Reg(6)
	s.write(r, 1, 10)
	s.write(r, 2, 20)
	var got []uint32
	apply := func(reg isa.Reg, v uint32) { got = append(got, v) }
	s.commit(apply) // level 1 commits, level 2 decrements
	s.squash()      // mispredict before the second branch commits
	s.commit(apply)
	s.commit(apply)
	if len(got) != 1 || got[0] != 10 {
		t.Errorf("committed values = %v, want [10]", got)
	}
	if s.outstanding() {
		t.Error("entries remain after squash")
	}
}
