package sim

import (
	"fmt"

	"boosting/internal/isa"
	"boosting/internal/machine"
)

// shadowFile models the boosting shadow register file. Each register may
// hold uncommitted boosted values, one per outstanding boosting level.
//
//   - Full/multi-shadow hardware (Boost7, paper §4.1): every level has its
//     own physical location, implemented there with register/counter pools;
//     here as a per-register list of (level, value) entries.
//   - Single-shadow hardware (Boost1/MinBoost3, Option 2 / Figure 7): one
//     shadow location per register with a level counter. At most one
//     uncommitted boosted value per register may exist; the scheduler must
//     honor the resulting output-like dependence, and this model *checks*
//     the constraint, reporting a hardware-conflict error on violation.
type shadowFile struct {
	cfg machine.BoostConfig
	// entries[r] holds outstanding boosted values of register r, sorted
	// by ascending level, at most one entry per level.
	entries map[isa.Reg][]shadowEntry
}

type shadowEntry struct {
	level int
	val   uint32
}

func newShadowFile(cfg machine.BoostConfig) *shadowFile {
	return &shadowFile{cfg: cfg, entries: map[isa.Reg][]shadowEntry{}}
}

// write records a boosted def of r at the given level.
func (s *shadowFile) write(r isa.Reg, level int, v uint32) error {
	if level <= 0 || level > s.cfg.MaxLevel {
		return fmt.Errorf("shadow write level %d outside hardware range 1..%d", level, s.cfg.MaxLevel)
	}
	if r == isa.R0 {
		return nil
	}
	es := s.entries[r]
	if !s.cfg.MultiShadow {
		// Single shadow location: any outstanding entry at a *different*
		// level is a conflict the hardware cannot represent.
		for _, e := range es {
			if e.level != level {
				return fmt.Errorf("single-shadow conflict on %s: outstanding level %d, new level %d",
					r, e.level, level)
			}
		}
	}
	for i := range es {
		if es[i].level == level {
			es[i].val = v // newest same-level def wins
			return nil
		}
	}
	es = append(es, shadowEntry{level, v})
	// Keep sorted by level (lists are tiny).
	for i := len(es) - 1; i > 0 && es[i].level < es[i-1].level; i-- {
		es[i], es[i-1] = es[i-1], es[i]
	}
	s.entries[r] = es
	return nil
}

// read returns the value of r as seen by an instruction boosted to the
// given level: the outstanding shadow value with the largest level ≤
// level, or ok=false if the sequential value should be used. Sequential
// instructions (level 0) never see shadow state.
func (s *shadowFile) read(r isa.Reg, level int) (uint32, bool) {
	if level <= 0 {
		return 0, false
	}
	es := s.entries[r]
	for i := len(es) - 1; i >= 0; i-- {
		if es[i].level <= level {
			return es[i].val, true
		}
	}
	return 0, false
}

// commit processes a correctly predicted branch: level-1 entries move to
// the sequential register file (via the apply callback) and deeper entries
// decrement. Commit order across registers is irrelevant because at most
// one committed value exists per register.
func (s *shadowFile) commit(apply func(r isa.Reg, v uint32)) {
	for r, es := range s.entries {
		out := es[:0]
		for _, e := range es {
			if e.level == 1 {
				apply(r, e.val)
			} else {
				e.level--
				out = append(out, e)
			}
		}
		if len(out) == 0 {
			delete(s.entries, r)
		} else {
			s.entries[r] = out
		}
	}
}

// squash discards all speculative register state (incorrect prediction or
// boosted-exception recovery).
func (s *shadowFile) squash() {
	for r := range s.entries {
		delete(s.entries, r)
	}
}

// outstanding reports whether any speculative register state exists.
func (s *shadowFile) outstanding() bool { return len(s.entries) > 0 }

// storeBuffer models the shadow store buffer holding boosted stores until
// their dependent branches commit. Entries preserve program (execution)
// order within and across levels; commit applies level-1 entries to memory
// in order.
type storeBuffer struct {
	entries []storeEntry
	// cap bounds the number of simultaneously buffered stores
	// (0 = unbounded). Real hardware has a small fixed buffer; the
	// checked model reports overflow instead of silently dropping.
	cap int
}

type storeEntry struct {
	level int
	addr  uint32
	size  int
	val   uint32
}

// write buffers a boosted store, reporting a hardware conflict when a
// finite buffer is already full.
func (sb *storeBuffer) write(level int, addr uint32, size int, val uint32) error {
	if sb.cap > 0 && len(sb.entries) >= sb.cap {
		return fmt.Errorf("shadow store buffer overflow: %d entries outstanding (capacity %d)",
			len(sb.entries), sb.cap)
	}
	sb.entries = append(sb.entries, storeEntry{level, addr, size, val})
	return nil
}

// read services a boosted load at the given level. Forwarding is resolved
// byte-wise: each byte comes from the newest buffered store with level ≤
// level covering it, falling back to memory, so partially overlapping
// stores still yield a coherent view.
func (sb *storeBuffer) read(level int, addr uint32, size int, mem *Memory) (uint32, bool) {
	var v uint32
	for i := 0; i < size; i++ {
		b, ok := sb.readByte(level, addr+uint32(i), mem)
		if !ok {
			return 0, false
		}
		v |= uint32(b) << (8 * uint(i))
	}
	return v, true
}

// readByte returns one byte as seen by a level-bounded speculative load.
func (sb *storeBuffer) readByte(level int, addr uint32, mem *Memory) (byte, bool) {
	for i := len(sb.entries) - 1; i >= 0; i-- {
		e := &sb.entries[i]
		if e.level <= level && addr >= e.addr && addr < e.addr+uint32(e.size) {
			return byte(e.val >> (8 * (addr - e.addr))), true
		}
	}
	return mem.LoadByte(addr)
}

// commit applies level-1 entries to memory in buffer order and decrements
// the rest. It reports a store fault if a committed store hits an unmapped
// page — at commit time the branch has resolved, so the fault is precise.
// onStore, if non-nil, observes each committed write.
func (sb *storeBuffer) commit(mem *Memory, onStore func(addr uint32, size int, val uint32)) *Fault {
	out := sb.entries[:0]
	for _, e := range sb.entries {
		if e.level == 1 {
			if !mem.Store(e.addr, e.size, e.val) {
				sb.entries = out
				return &Fault{Kind: FaultStore, Addr: e.addr}
			}
			if onStore != nil {
				onStore(e.addr, e.size, e.val)
			}
		} else {
			e.level--
			out = append(out, e)
		}
	}
	sb.entries = out
	return nil
}

// squash discards all buffered stores.
func (sb *storeBuffer) squash() { sb.entries = sb.entries[:0] }

// outstanding reports whether any buffered stores exist.
func (sb *storeBuffer) outstanding() bool { return len(sb.entries) > 0 }

// exceptionBuffer is the paper's one-bit shift buffer: bit n is set when a
// boosted instruction of level n raises an exception. A correct prediction
// shifts the buffer and exposes the out-shifted bit; an incorrect
// prediction clears it.
type exceptionBuffer struct {
	bits []bool // index 1..MaxLevel used
}

func newExceptionBuffer(maxLevel int) *exceptionBuffer {
	return &exceptionBuffer{bits: make([]bool, maxLevel+1)}
}

// set records a postponed exception at the given level.
func (e *exceptionBuffer) set(level int) { e.bits[level] = true }

// shift performs the commit-time shift and returns the out-shifted bit.
func (e *exceptionBuffer) shift() bool {
	out := false
	if len(e.bits) > 1 {
		out = e.bits[1]
		copy(e.bits[1:], e.bits[2:])
		e.bits[len(e.bits)-1] = false
	}
	return out
}

// clear wipes the buffer (incorrect prediction).
func (e *exceptionBuffer) clear() {
	for i := range e.bits {
		e.bits[i] = false
	}
}
