// Package sim implements the simulators of the reproduction:
//
//   - Run: a reference instruction-level interpreter that executes a
//     prog.Program sequentially (the paper's "instruction-level simulator
//     that verifies that the scheduled code is correct" plays this role,
//     and it also drives the branch profiler);
//   - Exec: a trace-driven cycle simulator that executes machine schedules
//     with full boosting hardware semantics — shadow register file with
//     level counters (paper Figure 7), shadow store buffer, one-bit
//     exception shift buffer, commit/squash at branches, and dispatch to
//     compiler-generated recovery code on boosted exceptions.
//
// Both interpreters share the paged memory model and fault taxonomy here.
package sim

import "fmt"

// FaultKind enumerates the architectural exceptions.
type FaultKind uint8

const (
	// FaultNone means no fault.
	FaultNone FaultKind = iota
	// FaultLoad is a load from an unmapped address.
	FaultLoad
	// FaultStore is a store to an unmapped address.
	FaultStore
	// FaultAlign is a misaligned word or halfword access.
	FaultAlign
	// FaultDivZero is an integer division by zero.
	FaultDivZero
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultLoad:
		return "load-fault"
	case FaultStore:
		return "store-fault"
	case FaultAlign:
		return "align-fault"
	case FaultDivZero:
		return "div-zero"
	}
	return "?"
}

// Fault describes an architectural exception.
type Fault struct {
	Kind FaultKind
	// Addr is the faulting address for memory faults.
	Addr uint32
	// Proc and Block locate the faulting instruction.
	Proc  string
	Block int
	// InstID is the stable identity of the faulting instruction.
	InstID int
	// Boosted reports whether the fault was raised by a boosted
	// instruction (and therefore postponed).
	Boosted bool
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("%s at addr %#x (proc %s block %d inst %d, boosted=%v)",
		f.Kind, f.Addr, f.Proc, f.Block, f.InstID, f.Boosted)
}

const pageSize = 4096

type page [pageSize]byte

// Memory is a paged sparse memory. Accesses to unmapped pages fault;
// Map makes pages accessible.
type Memory struct {
	pages map[uint32]*page
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{pages: map[uint32]*page{}} }

// Map makes [addr, addr+size) accessible (zero-filled), rounding outward
// to page boundaries.
func (m *Memory) Map(addr, size uint32) {
	if size == 0 {
		return
	}
	first := addr / pageSize
	last := (addr + size - 1) / pageSize
	for p := first; ; p++ {
		if m.pages[p] == nil {
			m.pages[p] = new(page)
		}
		if p == last {
			break
		}
	}
}

// Mapped reports whether addr is accessible.
func (m *Memory) Mapped(addr uint32) bool { return m.pages[addr/pageSize] != nil }

// WriteBytes copies bs to addr, mapping pages as needed (loader use only).
func (m *Memory) WriteBytes(addr uint32, bs []byte) {
	m.Map(addr, uint32(len(bs)))
	for i, b := range bs {
		a := addr + uint32(i)
		m.pages[a/pageSize][a%pageSize] = b
	}
}

// LoadByte reads one byte; ok=false on unmapped address.
func (m *Memory) LoadByte(addr uint32) (byte, bool) {
	p := m.pages[addr/pageSize]
	if p == nil {
		return 0, false
	}
	return p[addr%pageSize], true
}

// StoreByte writes one byte; ok=false on unmapped address.
func (m *Memory) StoreByte(addr uint32, v byte) bool {
	p := m.pages[addr/pageSize]
	if p == nil {
		return false
	}
	p[addr%pageSize] = v
	return true
}

// Load reads size (1, 2 or 4) bytes little-endian.
func (m *Memory) Load(addr uint32, size int) (uint32, bool) {
	var v uint32
	for i := 0; i < size; i++ {
		b, ok := m.LoadByte(addr + uint32(i))
		if !ok {
			return 0, false
		}
		v |= uint32(b) << (8 * uint(i))
	}
	return v, true
}

// Store writes size (1, 2 or 4) bytes little-endian.
func (m *Memory) Store(addr uint32, size int, v uint32) bool {
	for i := 0; i < size; i++ {
		if !m.StoreByte(addr+uint32(i), byte(v>>(8*uint(i)))) {
			return false
		}
	}
	return true
}

// Snapshot returns a deterministic digest of memory contents, used by
// tests to compare final states. It XOR-folds address/value pairs, which
// is order-independent and cheap.
func (m *Memory) Snapshot() uint64 {
	var h uint64
	for pn, p := range m.pages {
		for i, b := range p {
			if b != 0 {
				a := uint64(pn)*pageSize + uint64(i)
				h ^= (a + 0x9E3779B97F4A7C15) * uint64(b)
			}
		}
	}
	return h
}
