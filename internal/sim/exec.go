package sim

import (
	"fmt"

	"boosting/internal/isa"
	"boosting/internal/machine"
	"boosting/internal/memhier"
	"boosting/internal/prog"
)

// ExecConfig parameterizes the scheduled-code cycle simulator.
type ExecConfig struct {
	// Engine selects the executor implementation (zero value = the
	// pre-decoded fast core; EngineLegacy forces the original
	// interpretive loop). Both produce byte-identical results.
	Engine Engine
	// MaxCycles bounds execution (0 = default of 500M cycles).
	MaxCycles int64
	// OnFault is consulted on a *precise* (sequential) fault; returning
	// true retries the faulting instruction. Boosted faults never reach
	// this handler directly — they are postponed by the exception shift
	// buffer and re-raised precisely by recovery code.
	OnFault func(m *Memory, f *Fault) bool
	// OnStore, if non-nil, observes every architectural memory write
	// (sequential stores immediately, boosted stores at commit), for
	// debugging and differential testing.
	OnStore func(addr uint32, size int, val uint32)
	// OnBlock, if non-nil, observes every executed block (debug aid).
	OnBlock func(proc string, blockID int)
	// OnSquash, if non-nil, observes every mispredicted-branch squash.
	// The differential oracle asserts Leaked == 0 on every event: after a
	// squash the machine must hold no speculative state whatsoever, or
	// precise exceptions are lost.
	OnSquash func(SquashInfo)
	// Inject deliberately breaks the boosting hardware; it exists so the
	// differential oracle can prove (in its own tests) that it detects
	// and minimizes real bugs. Production paths leave it zero.
	Inject FaultInjection
	// Mem, if non-nil, models a finite memory hierarchy: every memory
	// access (speculative or not) touches it and misses stall the
	// machine (the paper assumes a perfect memory system; this knob
	// quantifies that assumption). The hierarchy perturbs only timing —
	// architectural results stay byte-identical to a perfect-memory run.
	// Each execution builds a fresh hierarchy from this config.
	Mem *memhier.Config
}

// SquashInfo describes one mispredicted-branch squash.
type SquashInfo struct {
	// BranchID is the static instruction ID of the mispredicted branch.
	BranchID int
	// Regs and Stores count the discarded shadow-register entries and
	// buffered stores.
	Regs, Stores int
	// Leaked counts speculative entries still outstanding after the
	// squash. Correct hardware always reports 0; fault injection makes it
	// observable.
	Leaked int
}

// FaultInjection selects an intentional hardware bug for oracle
// self-tests. The zero value injects nothing.
type FaultInjection struct {
	// SkipStoreSquash leaves the shadow store buffer intact on a
	// mispredicted branch, so wrong-path boosted stores can later commit.
	SkipStoreSquash bool
	// SkipShadowSquash leaves the shadow register file intact on a
	// mispredicted branch.
	SkipShadowSquash bool
}

// Enabled reports whether any bug is injected.
func (fi FaultInjection) Enabled() bool {
	return fi.SkipStoreSquash || fi.SkipShadowSquash
}

// ExecResult reports the outcome and cost of a scheduled execution.
type ExecResult struct {
	// Out is the observable output stream; must equal the reference run.
	Out []uint32
	// MemHash digests final memory; must equal the reference run.
	MemHash uint64
	// Cycles is the total machine cycles consumed.
	Cycles int64
	// Insts counts useful (non-NOP) instructions issued, including
	// speculative ones later squashed.
	Insts int64
	// Squashed counts boosted register/store effects discarded on
	// mispredictions.
	Squashed int64
	// BoostedExec counts boosted instructions executed.
	BoostedExec int64
	// Branches, Correct count conditional branches and correct static
	// predictions.
	Branches int64
	Correct  int64
	// Recoveries counts boosted-exception recovery invocations.
	Recoveries int64
	// Stalls counts cycles lost to operand interlocks.
	Stalls int64
	// MemStalls counts cycles lost to memory-hierarchy misses (zero with
	// the default perfect memory system).
	MemStalls int64
	// BoostedMemStalls counts the subset of MemStalls incurred by boosted
	// (speculative) accesses.
	BoostedMemStalls int64
	// SquashedMemStalls counts memory-stall cycles spent on speculative
	// accesses whose work was later squashed — the cost of boosting loads
	// past branches on a real memory system.
	SquashedMemStalls int64
	// Mem holds the memory-hierarchy counters when a hierarchy was
	// modeled (nil with perfect memory). Populated on normal completion.
	Mem *memhier.Stats
	// Fault is the terminating precise fault, if any.
	Fault *Fault
}

// execState is the machine state of one scheduled execution.
type execState struct {
	sprog *machine.SchedProgram
	cfg   *ExecConfig
	model *machine.Model

	regs     []uint32
	regReady []int64
	mem      *Memory
	shadow   *shadowFile
	stores   *storeBuffer
	excbuf   *exceptionBuffer
	lt       *linkTable

	res       *ExecResult
	maxCycles int64

	mh   *memhier.Hierarchy
	spec specStallTracker
}

// Exec runs a scheduled program to completion on its model, applying full
// boosting hardware semantics and counting cycles. The executor engine is
// chosen by cfg.Engine: by default the program is lowered once by
// Predecode and run on the allocation-free fast core; EngineLegacy forces
// the original interpretive loop. Both engines produce byte-identical
// results and statistics.
func Exec(sp *machine.SchedProgram, cfg ExecConfig) (*ExecResult, error) {
	if cfg.Engine == EngineLegacy {
		return execLegacy(sp, cfg)
	}
	pd, err := Predecode(sp)
	if err != nil {
		return nil, err
	}
	return pd.Exec(cfg)
}

// execLegacy is the original structure-walking executor.
func execLegacy(sp *machine.SchedProgram, cfg ExecConfig) (*ExecResult, error) {
	mainSP := sp.Procs["main"]
	if mainSP == nil {
		return nil, fmt.Errorf("sim: scheduled program has no main")
	}
	st := &execState{
		sprog:     sp,
		cfg:       &cfg,
		model:     sp.Model,
		regs:      make([]uint32, int(maxRegProgram(sp.Prog))+1),
		mem:       SetupMemory(sp.Prog),
		shadow:    newShadowFile(sp.Model.Boost),
		stores:    &storeBuffer{cap: sp.Model.Boost.StoreBufferSize},
		excbuf:    newExceptionBuffer(sp.Model.Boost.MaxLevel),
		lt:        buildLinkTable(sp.Prog),
		res:       &ExecResult{},
		maxCycles: cfg.MaxCycles,
	}
	st.regReady = make([]int64, len(st.regs))
	if st.maxCycles == 0 {
		st.maxCycles = 500_000_000
	}
	if cfg.Mem != nil {
		mh, err := memhier.New(*cfg.Mem)
		if err != nil {
			return nil, err
		}
		st.mh = mh
		st.spec.reset(sp.Model.Boost.MaxLevel)
	}
	st.regs[isa.SP] = prog.StackTop

	curProc := mainSP
	cur := mainSP.Blocks[mainSP.Proc.Entry.ID]
	for {
		next, done, err := st.runBlock(curProc, cur)
		if err != nil {
			return st.res, err
		}
		if done {
			if st.shadow.outstanding() || st.stores.outstanding() {
				return st.res, fmt.Errorf("sim: speculative state outstanding at halt")
			}
			st.res.MemHash = st.mem.Snapshot()
			if st.mh != nil {
				stats := st.mh.Stats()
				st.res.Mem = &stats
			}
			return st.res, nil
		}
		if st.res.Cycles > st.maxCycles {
			return st.res, fmt.Errorf("sim: exceeded %d cycles", st.maxCycles)
		}
		curProc = st.sprog.Procs[next.proc.Name]
		if curProc == nil {
			return st.res, fmt.Errorf("sim: no schedule for proc %s", next.proc.Name)
		}
		cur = curProc.Blocks[next.block.ID]
		if cur == nil {
			return st.res, fmt.Errorf("sim: no schedule for %s block B%d", next.proc.Name, next.block.ID)
		}
	}
}

// pendingCtl records the control decision made by the block's terminator.
type pendingCtl struct {
	kind  isa.Op
	taken bool // conditional branches
	// target for J/JAL (callee entry) and JR (resolved)
	target blockRef
	inst   *isa.Inst
}

// runBlock executes one scheduled block, returning the dynamic successor.
func (st *execState) runBlock(sp *machine.SchedProc, sb *machine.SchedBlock) (next blockRef, done bool, err error) {
	b := sb.Block
	if st.cfg.OnBlock != nil {
		st.cfg.OnBlock(procOf(sp).Name, b.ID)
	}
	var ctl *pendingCtl
	var uses, defs []isa.Reg

	for ci := range sb.Cycles {
		cy := &sb.Cycles[ci]
		insts := cy.Insts()

		// Operand interlock: the whole issue cycle stalls until every
		// operand of every instruction in it is ready.
		need := st.res.Cycles
		for _, in := range insts {
			uses = in.Uses(uses[:0])
			for _, r := range uses {
				if t := st.regReady[r]; t > need {
					need = t
				}
			}
		}
		if need > st.res.Cycles {
			st.res.Stalls += need - st.res.Cycles
			st.res.Cycles = need
		}

		// Register reads happen at issue for every slot, before any
		// writes of this cycle (same-cycle instructions are independent
		// by schedule construction; reading first makes violations
		// deterministic and testable).
		vals := make([][2]uint32, len(insts))
		for i, in := range insts {
			vals[i][0] = st.readReg(in.Rs, in.Boost)
			vals[i][1] = st.readReg(in.Rt, in.Boost)
		}

		for i, in := range insts {
			if in.Op != isa.NOP {
				st.res.Insts++
			}
			if in.IsBoosted() {
				st.res.BoostedExec++
			}
			c, err := st.execute(sp, b, in, vals[i][0], vals[i][1])
			if err != nil {
				return blockRef{}, false, err
			}
			if c != nil {
				if ctl != nil {
					return blockRef{}, false, fmt.Errorf("sim: two control ops in block B%d", b.ID)
				}
				ctl = c
			}
			// Result ready time.
			defs = in.Defs(defs[:0])
			for _, r := range defs {
				st.regReady[r] = st.res.Cycles + int64(isa.Latency(in.Op))
			}
		}
		st.res.Cycles++
	}

	return st.finishBlock(sp, b, ctl)
}

// readReg reads a register as seen by an instruction boosted to the given
// level (0 = sequential).
func (st *execState) readReg(r isa.Reg, level int) uint32 {
	if r == isa.R0 {
		return 0
	}
	if v, ok := st.shadow.read(r, level); ok {
		return v
	}
	return st.regs[r]
}

// writeReg writes a register sequentially or into the shadow file.
func (st *execState) writeReg(r isa.Reg, level int, v uint32) error {
	if r == isa.R0 {
		return nil
	}
	if level > 0 {
		return st.shadow.write(r, level, v)
	}
	st.regs[r] = v
	return nil
}

// execute performs one instruction's function. Control ops return a
// pendingCtl; the transfer happens at block end (after the delay cycle).
func (st *execState) execute(sp *machine.SchedProc, b *prog.Block, in *isa.Inst, a, c uint32) (*pendingCtl, error) {
	switch {
	case in.Op == isa.NOP:
		return nil, nil
	case in.Op == isa.HALT:
		return &pendingCtl{kind: isa.HALT, inst: in}, nil
	case in.Op == isa.OUT:
		if in.IsBoosted() {
			return nil, fmt.Errorf("sim: boosted OUT is not supported by any model")
		}
		st.res.Out = append(st.res.Out, a)
		return nil, nil
	case in.Op == isa.J:
		return &pendingCtl{kind: isa.J, inst: in}, nil
	case in.Op == isa.JAL:
		if st.shadow.outstanding() || st.stores.outstanding() {
			return nil, fmt.Errorf("sim: speculative state outstanding at call in B%d", b.ID)
		}
		callee := st.sprog.Prog.Procs[in.Sym]
		if callee == nil {
			return nil, fmt.Errorf("sim: call to undefined %q", in.Sym)
		}
		if err := st.writeReg(in.Rd, 0, st.lt.token(procOf(sp), b.Succs[0])); err != nil {
			return nil, err
		}
		return &pendingCtl{kind: isa.JAL, inst: in, target: blockRef{callee, callee.Entry}}, nil
	case in.Op == isa.JR:
		if st.shadow.outstanding() || st.stores.outstanding() {
			return nil, fmt.Errorf("sim: speculative state outstanding at return in B%d", b.ID)
		}
		ref, ok := st.lt.resolve(a)
		if !ok {
			return nil, fmt.Errorf("sim: jr to invalid token %#x", a)
		}
		return &pendingCtl{kind: isa.JR, inst: in, target: ref}, nil
	case isa.IsCondBranch(in.Op):
		return &pendingCtl{kind: in.Op, taken: branchTaken(in.Op, a, c), inst: in}, nil
	case isa.IsLoad(in.Op):
		addr := a + uint32(in.Imm)
		size, signExt := memAccess(in.Op)
		st.touchMem(in.ID, addr, false, in.Boost)
		v, f := st.loadValue(sp, b, in, addr, size)
		if f != nil {
			if in.IsBoosted() {
				st.excbuf.set(in.Boost)
				return nil, st.writeReg(in.Rd, in.Boost, 0)
			}
			if st.cfg.OnFault != nil && st.cfg.OnFault(st.mem, f) {
				v2, f2 := st.loadValue(sp, b, in, addr, size)
				if f2 != nil {
					st.res.Fault = f2
					return nil, f2
				}
				return nil, st.writeReg(in.Rd, 0, extend(v2, size, signExt))
			}
			st.res.Fault = f
			return nil, f
		}
		return nil, st.writeReg(in.Rd, in.Boost, extend(v, size, signExt))
	case isa.IsStore(in.Op):
		addr := a + uint32(in.Imm)
		size, _ := memAccess(in.Op)
		st.touchMem(in.ID, addr, true, in.Boost)
		if in.IsBoosted() {
			if !st.model.Boost.StoreBuffer {
				return nil, fmt.Errorf("sim: boosted store without store buffer in B%d", b.ID)
			}
			// Alignment/mapping faults on boosted stores are postponed.
			if size > 1 && addr%uint32(size) != 0 || !st.mem.Mapped(addr) || !st.mem.Mapped(addr+uint32(size)-1) {
				st.excbuf.set(in.Boost)
				return nil, nil
			}
			if err := st.stores.write(in.Boost, addr, size, c); err != nil {
				return nil, fmt.Errorf("sim: B%d of %s: %w", b.ID, procOf(sp).Name, err)
			}
			return nil, nil
		}
		if size > 1 && addr%uint32(size) != 0 {
			f := &Fault{Kind: FaultAlign, Addr: addr, Proc: procOf(sp).Name, Block: b.ID, InstID: in.ID}
			return nil, st.preciseFault(f, func() *Fault {
				if !st.mem.Store(addr, size, c) {
					return &Fault{Kind: FaultStore, Addr: addr, Proc: procOf(sp).Name, Block: b.ID, InstID: in.ID}
				}
				return nil
			})
		}
		if !st.mem.Store(addr, size, c) {
			f := &Fault{Kind: FaultStore, Addr: addr, Proc: procOf(sp).Name, Block: b.ID, InstID: in.ID}
			return nil, st.preciseFault(f, func() *Fault {
				if !st.mem.Store(addr, size, c) {
					return f
				}
				return nil
			})
		}
		if st.cfg.OnStore != nil {
			st.cfg.OnStore(addr, size, c)
		}
		return nil, nil
	default:
		v, ok := evalALU(in.Op, a, c, in.Imm)
		if !ok {
			if in.IsBoosted() {
				st.excbuf.set(in.Boost)
				return nil, st.writeReg(in.Rd, in.Boost, 0)
			}
			f := &Fault{Kind: FaultDivZero, Proc: procOf(sp).Name, Block: b.ID, InstID: in.ID}
			st.res.Fault = f
			return nil, f
		}
		return nil, st.writeReg(in.Rd, in.Boost, v)
	}
}

// touchMem charges memory-hierarchy stall cycles when a hierarchy is
// modeled. Stalls incurred by boosted accesses are additionally tracked
// per level so cycles wasted on later-squashed speculation are reported.
func (st *execState) touchMem(id int, addr uint32, store bool, level int) {
	if st.mh == nil {
		return
	}
	if p := st.mh.Access(st.res.Cycles, id, addr, store); p > 0 {
		st.res.Cycles += p
		st.res.MemStalls += p
		if level > 0 {
			st.res.BoostedMemStalls += p
			st.spec.add(level, p)
		}
	}
}

// loadValue reads memory through the level-bounded store buffer view.
func (st *execState) loadValue(sp *machine.SchedProc, b *prog.Block, in *isa.Inst, addr uint32, size int) (uint32, *Fault) {
	if size > 1 && addr%uint32(size) != 0 {
		return 0, &Fault{Kind: FaultAlign, Addr: addr, Proc: procOf(sp).Name,
			Block: b.ID, InstID: in.ID, Boosted: in.IsBoosted()}
	}
	v, ok := st.stores.read(in.Boost, addr, size, st.mem)
	if !ok {
		return 0, &Fault{Kind: FaultLoad, Addr: addr, Proc: procOf(sp).Name,
			Block: b.ID, InstID: in.ID, Boosted: in.IsBoosted()}
	}
	return v, nil
}

// preciseFault routes a sequential fault through the user handler; retry
// re-runs the failing action.
func (st *execState) preciseFault(f *Fault, retry func() *Fault) error {
	if st.cfg.OnFault != nil && st.cfg.OnFault(st.mem, f) {
		if f2 := retry(); f2 != nil {
			st.res.Fault = f2
			return f2
		}
		return nil
	}
	st.res.Fault = f
	return f
}

// finishBlock resolves the block's control decision: commit or squash
// speculative state at conditional branches, dispatch recovery code on
// postponed exceptions, and compute the successor block.
func (st *execState) finishBlock(sp *machine.SchedProc, b *prog.Block, ctl *pendingCtl) (next blockRef, done bool, err error) {
	p := procOf(sp)
	switch {
	case ctl == nil:
		// Fall-through block.
		if len(b.Succs) != 1 {
			return blockRef{}, false, fmt.Errorf("sim: block B%d has no successor", b.ID)
		}
		return blockRef{p, b.Succs[0]}, false, nil
	case ctl.kind == isa.HALT:
		return blockRef{}, true, nil
	case ctl.kind == isa.J:
		return blockRef{p, b.Succs[0]}, false, nil
	case ctl.kind == isa.JAL, ctl.kind == isa.JR:
		return ctl.target, false, nil
	default: // conditional branch
		st.res.Branches++
		predictedTaken := ctl.inst.Pred
		correct := ctl.taken == predictedTaken
		var succ *prog.Block
		if ctl.taken {
			succ = b.Succs[1]
		} else {
			succ = b.Succs[0]
		}
		if correct {
			st.res.Correct++
			var commitFault *Fault
			st.shadow.commit(func(r isa.Reg, v uint32) { st.regs[r] = v })
			if f := st.stores.commit(st.mem, st.cfg.OnStore); f != nil {
				commitFault = f
			}
			if st.mh != nil {
				st.spec.commit()
			}
			if st.excbuf.shift() || commitFault != nil {
				return st.recover(sp, b, ctl, succ)
			}
			return blockRef{p, succ}, false, nil
		}
		// Incorrect prediction: discard all speculative state.
		droppedStores := len(st.stores.entries)
		droppedRegs := 0
		for _, es := range st.shadow.entries {
			droppedRegs += len(es)
		}
		st.res.Squashed += int64(droppedStores + droppedRegs)
		if !st.cfg.Inject.SkipShadowSquash {
			st.shadow.squash()
		}
		if !st.cfg.Inject.SkipStoreSquash {
			st.stores.squash()
		}
		st.excbuf.clear()
		if st.mh != nil {
			st.res.SquashedMemStalls += st.spec.squash()
		}
		if st.cfg.OnSquash != nil {
			leaked := len(st.stores.entries)
			for _, es := range st.shadow.entries {
				leaked += len(es)
			}
			st.cfg.OnSquash(SquashInfo{
				BranchID: ctl.inst.ID,
				Regs:     droppedRegs,
				Stores:   droppedStores,
				Leaked:   leaked,
			})
		}
		return blockRef{p, succ}, false, nil
	}
}

// recover implements the boosted exception handler of paper §2.3: discard
// all speculative state, charge the handler overhead, re-execute the
// compiler's recovery code for the committing branch (boosted levels
// already decremented by the compiler), and continue at the predicted
// target. A fault raised by a now-sequential instruction is precise and
// routed to the user fault handler.
func (st *execState) recover(sp *machine.SchedProc, b *prog.Block, ctl *pendingCtl, succ *prog.Block) (blockRef, bool, error) {
	p := procOf(sp)
	st.res.Recoveries++
	st.shadow.squash()
	st.stores.squash()
	st.excbuf.clear()
	if st.mh != nil {
		st.res.SquashedMemStalls += st.spec.squash()
	}
	st.res.Cycles += int64(st.model.ExceptionOverhead)

	rec := sp.Recovery[ctl.inst.ID]
	if rec == nil {
		return blockRef{}, false, fmt.Errorf(
			"sim: boosted exception at branch %d in B%d of %s but no recovery code",
			ctl.inst.ID, b.ID, p.Name)
	}
	var defs []isa.Reg
	for i := range rec {
		in := &rec[i]
		st.res.Cycles++
		st.res.Insts++
		a := st.readReg(in.Rs, in.Boost)
		c := st.readReg(in.Rt, in.Boost)
		// execute consults the user fault handler itself for sequential
		// faults; an error here means the fault went unhandled.
		ctl2, err := st.execute(sp, b, in, a, c)
		if err != nil {
			return blockRef{}, false, err
		}
		if ctl2 != nil {
			return blockRef{}, false, fmt.Errorf("sim: control op in recovery code")
		}
		defs = in.Defs(defs[:0])
		for _, r := range defs {
			st.regReady[r] = st.res.Cycles + int64(isa.Latency(in.Op))
		}
	}
	// Recovery ends with an unconditional jump to the predicted target.
	st.res.Cycles++
	return blockRef{p, succ}, false, nil
}

func procOf(sp *machine.SchedProc) *prog.Proc { return sp.Proc }
