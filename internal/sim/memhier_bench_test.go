package sim_test

// Throughput benchmarks for the memory-hierarchy timing model, plus the
// BENCH_memhier.json writer and the committed-baseline regression gate
// that CI runs.
//
//	go test -bench BenchmarkMemHier -benchmem ./internal/sim/   ad-hoc numbers
//	make bench-memhier                                          rewrite BENCH_memhier.json
//	make bench-memhier-check                                    fail on >15% regression
//
// The hierarchy sits on the fast core's hot path (every load and store
// probes it), so the gate watches two things: absolute ns/op of a
// finite-memory run, and the overhead ratio over the same run with
// perfect memory — the hierarchy must stay a small multiple of the
// executor it decorates.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"boosting/internal/machine"
	"boosting/internal/memhier"
	"boosting/internal/sim"
)

// memhierBenchConfigs are the hierarchies under test: the stock two-level
// configuration, and the busiest one (stride prefetcher on a small L1,
// so the MSHR and prefetch paths run constantly).
func memhierBenchConfigs() map[string]memhier.Config {
	busy := memhier.Default()
	busy.L1 = memhier.CacheConfig{Sets: 64, Ways: 1, LineBytes: 16}
	busy.Prefetch = "stride"
	return map[string]memhier.Config{
		"default": memhier.Default(),
		"busy":    busy,
	}
}

// memhierBenchOrder fixes the measurement order for deterministic output.
var memhierBenchOrder = []string{"default", "busy"}

// BenchmarkMemHier measures whole-run fast-core throughput with each
// hierarchy in front of it, against the perfect-memory run as the
// reference point, reporting ns per demand access.
func BenchmarkMemHier(b *testing.B) {
	sp := scheduleBoost7(b, "eqntott")
	b.Run("perfect", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Exec(sp, sim.ExecConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, name := range memhierBenchOrder {
		cfg := memhierBenchConfigs()[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var accesses int64
			for i := 0; i < b.N; i++ {
				res, err := sim.Exec(sp, sim.ExecConfig{Mem: &cfg})
				if err != nil {
					b.Fatal(err)
				}
				accesses = res.Mem.Accesses
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(accesses), "ns/access")
		})
	}
}

// memhierBench is one hierarchy's measurement in BENCH_memhier.json.
type memhierBench struct {
	NsPerOp float64 `json:"ns_per_op"`
	// Overhead is ns/op over the perfect-memory run of the same schedule.
	Overhead    float64 `json:"overhead"`
	Accesses    int64   `json:"accesses"`
	StallCycles int64   `json:"stall_cycles"`
}

type memhierBenchFile struct {
	GeneratedBy string `json:"generated_by"`
	Workload    string `json:"workload"`
	Model       string `json:"model"`
	// PerfectNsPerOp anchors the overhead ratios.
	PerfectNsPerOp float64                 `json:"perfect_ns_per_op"`
	Configs        map[string]memhierBench `json:"configs"`
}

// measureMemhier times reps whole-program runs under one hierarchy
// (nil = perfect memory).
func measureMemhier(tb testing.TB, sp *machine.SchedProgram, cfg *memhier.Config, reps int) (float64, *sim.ExecResult) {
	tb.Helper()
	run := func() *sim.ExecResult {
		res, err := sim.Exec(sp, sim.ExecConfig{Mem: cfg})
		if err != nil {
			tb.Fatal(err)
		}
		return res
	}
	last := run() // warm pools and caches
	start := time.Now()
	for i := 0; i < reps; i++ {
		last = run()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps), last
}

// TestWriteMemhierBenchJSON measures the hierarchy configurations on the
// longest kernel and writes BENCH_memhier.json (path in
// MEMHIER_BENCH_JSON; skipped when unset so `go test ./...` stays
// quiet). It fails outright if a hierarchy costs more than 4x the
// perfect-memory run, so a baseline with a bloated timing model cannot
// be committed.
func TestWriteMemhierBenchJSON(t *testing.T) {
	out := os.Getenv("MEMHIER_BENCH_JSON")
	if out == "" {
		t.Skip("set MEMHIER_BENCH_JSON=path to write the memory-hierarchy benchmark file")
	}
	sp := scheduleBoost7(t, "eqntott")
	perfect, _ := measureMemhier(t, sp, nil, 5)
	file := memhierBenchFile{
		GeneratedBy:    "go test -run TestWriteMemhierBenchJSON ./internal/sim/ (make bench-memhier)",
		Workload:       "eqntott",
		Model:          "Boost7",
		PerfectNsPerOp: perfect,
		Configs:        map[string]memhierBench{},
	}
	for _, name := range memhierBenchOrder {
		cfg := memhierBenchConfigs()[name]
		ns, res := measureMemhier(t, sp, &cfg, 5)
		mb := memhierBench{
			NsPerOp:     ns,
			Overhead:    ns / perfect,
			Accesses:    res.Mem.Accesses,
			StallCycles: res.Mem.StallCycles,
		}
		file.Configs[name] = mb
		t.Logf("%s: %.2fms (%.2fx perfect, %d accesses, %d stall cycles)",
			name, ns/1e6, mb.Overhead, mb.Accesses, mb.StallCycles)
		if mb.Overhead > 4 {
			t.Errorf("%s: hierarchy costs %.2fx the perfect-memory run, want <= 4x", name, mb.Overhead)
		}
	}
	b, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMemhierBenchRegression re-measures the hierarchy runs and fails if
// one runs >15% slower than the committed BENCH_memhier.json baseline
// (path in MEMHIER_BENCH_BASELINE; skipped when unset). The comparison
// is on ns/op of the same machine-independent workload, so run it on
// hardware comparable to what produced the baseline.
func TestMemhierBenchRegression(t *testing.T) {
	base := os.Getenv("MEMHIER_BENCH_BASELINE")
	if base == "" {
		t.Skip("set MEMHIER_BENCH_BASELINE=path to compare against a committed baseline")
	}
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var want memhierBenchFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	const tolerance = 1.15
	sp := scheduleBoost7(t, want.Workload)
	for _, name := range memhierBenchOrder {
		wb, ok := want.Configs[name]
		if !ok {
			t.Errorf("baseline %s lacks config %s; regenerate with make bench-memhier", base, name)
			continue
		}
		cfg := memhierBenchConfigs()[name]
		ns, res := measureMemhier(t, sp, &cfg, 5)
		ratio := ns / wb.NsPerOp
		t.Logf("%s: %.2fms vs baseline %.2fms (%.2fx)", name, ns/1e6, wb.NsPerOp/1e6, ratio)
		if ratio > tolerance {
			t.Errorf("%s: hierarchy run regressed to %.2fx the committed baseline (tolerance %.2fx): %s",
				name, ratio, tolerance, fmt.Sprintf("%.2fms vs %.2fms", ns/1e6, wb.NsPerOp/1e6))
		}
		if res.Mem.Accesses != wb.Accesses || res.Mem.StallCycles != wb.StallCycles {
			t.Errorf("%s: timing-model behavior drifted from baseline: %d accesses/%d stalls, want %d/%d",
				name, res.Mem.Accesses, res.Mem.StallCycles, wb.Accesses, wb.StallCycles)
		}
	}
}
