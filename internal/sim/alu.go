package sim

import "boosting/internal/isa"

// evalALU computes the result of a non-memory, non-control operation.
// a and b are the values of Rs and Rt; imm is the sign-extended immediate.
// Divide-by-zero is reported via ok=false.
func evalALU(op isa.Op, a, b uint32, imm int32) (v uint32, ok bool) {
	ui := uint32(imm)
	switch op {
	case isa.ADD:
		return a + b, true
	case isa.SUB:
		return a - b, true
	case isa.AND:
		return a & b, true
	case isa.OR:
		return a | b, true
	case isa.XOR:
		return a ^ b, true
	case isa.NOR:
		return ^(a | b), true
	case isa.SLT:
		if int32(a) < int32(b) {
			return 1, true
		}
		return 0, true
	case isa.SLTU:
		if a < b {
			return 1, true
		}
		return 0, true
	case isa.ADDI:
		return a + ui, true
	case isa.ANDI:
		return a & (ui & 0xFFFF), true
	case isa.ORI:
		return a | (ui & 0xFFFF), true
	case isa.XORI:
		return a ^ (ui & 0xFFFF), true
	case isa.SLTI:
		if int32(a) < imm {
			return 1, true
		}
		return 0, true
	case isa.SLTIU:
		if a < ui {
			return 1, true
		}
		return 0, true
	case isa.LUI:
		return ui << 16, true
	case isa.SLL:
		return a << (uint(imm) & 31), true
	case isa.SRL:
		return a >> (uint(imm) & 31), true
	case isa.SRA:
		return uint32(int32(a) >> (uint(imm) & 31)), true
	case isa.SLLV:
		return a << (b & 31), true
	case isa.SRLV:
		return a >> (b & 31), true
	case isa.SRAV:
		return uint32(int32(a) >> (b & 31)), true
	case isa.MUL:
		return uint32(int32(a) * int32(b)), true
	case isa.DIV:
		if b == 0 {
			return 0, false
		}
		if int32(a) == -1<<31 && int32(b) == -1 {
			return a, true // wraparound, no trap (documented deviation)
		}
		return uint32(int32(a) / int32(b)), true
	case isa.REM:
		if b == 0 {
			return 0, false
		}
		if int32(a) == -1<<31 && int32(b) == -1 {
			return 0, true
		}
		return uint32(int32(a) % int32(b)), true
	case isa.DIVU:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	}
	return 0, true
}

// branchTaken evaluates a conditional branch.
func branchTaken(op isa.Op, a, b uint32) bool {
	switch op {
	case isa.BEQ:
		return a == b
	case isa.BNE:
		return a != b
	case isa.BLEZ:
		return int32(a) <= 0
	case isa.BGTZ:
		return int32(a) > 0
	case isa.BLTZ:
		return int32(a) < 0
	case isa.BGEZ:
		return int32(a) >= 0
	}
	return false
}

// memAccess returns the access size in bytes and whether a load
// sign-extends.
func memAccess(op isa.Op) (size int, signExt bool) {
	switch op {
	case isa.LW, isa.SW:
		return 4, false
	case isa.LH:
		return 2, true
	case isa.LHU, isa.SH:
		return 2, false
	case isa.LB:
		return 1, true
	case isa.LBU, isa.SB:
		return 1, false
	}
	return 4, false
}

// extend sign- or zero-extends a loaded value of the given size.
func extend(v uint32, size int, signExt bool) uint32 {
	switch size {
	case 1:
		if signExt {
			return uint32(int32(int8(v)))
		}
		return v & 0xFF
	case 2:
		if signExt {
			return uint32(int32(int16(v)))
		}
		return v & 0xFFFF
	}
	return v
}
