package sim

import (
	"reflect"
	"testing"

	"boosting/internal/isa"
	"boosting/internal/machine"
	"boosting/internal/memhier"
	"boosting/internal/prog"
)

// mispredictSched builds a program whose single branch mispredicts (static
// prediction not-taken, execution taken) right after a boosted load, so a
// run with a modeled memory hierarchy squashes the load's pending
// speculative stall cycles into SquashedMemStalls — the statistic a stale
// spec-stall tracker would corrupt.
func mispredictSched() *manual {
	m := newManual(machine.Boost7(), func(f *prog.Builder) {
		taken := f.Block("taken")
		fall := f.Block("fall")
		r := f.Reg()
		f.Li(r, 1)
		f.Branch(isa.BGTZ, r, isa.R0, taken, fall)
		f.Enter(fall)
		f.Halt()
		f.Enter(taken)
		f.Halt()
	})
	entry := m.pr.Main().Blocks[0]
	li := &entry.Insts[0]
	br := &entry.Insts[1]
	ld := inst(isa.Inst{Op: isa.LW, Rd: 20, Rs: isa.SP, Imm: -4, Boost: 1})
	m.sched(0,
		[]*isa.Inst{li, nil},
		[]*isa.Inst{br, ld},
		[]*isa.Inst{nil, nil},
	)
	m.sched(1, []*isa.Inst{&m.pr.Main().Blocks[1].Insts[0], nil})
	m.sched(2, []*isa.Inst{&m.pr.Main().Blocks[2].Insts[0], nil})
	return m
}

// dirtySched builds a program that aborts with an unhandled precise fault
// one cycle after a boosted load: the erroring run leaves the load's stall
// cycles pending in the pooled state's spec-stall tracker.
func dirtySched() *manual {
	m := newManual(machine.Boost7(), func(f *prog.Builder) {
		done := f.Block("done")
		r := f.Reg()
		f.Li(r, 1)
		f.Branch(isa.BGTZ, r, isa.R0, done, done)
		f.Enter(done)
		f.Halt()
	})
	entry := m.pr.Main().Blocks[0]
	li := &entry.Insts[0]
	br := &entry.Insts[1]
	boosted := inst(isa.Inst{Op: isa.LW, Rd: 20, Rs: isa.SP, Imm: -4, Boost: 1})
	unmapped := inst(isa.Inst{Op: isa.LW, Rd: 21, Rs: isa.R0, Imm: 16})
	m.sched(0,
		[]*isa.Inst{li, boosted},
		[]*isa.Inst{unmapped, nil},
		[]*isa.Inst{br, nil},
		[]*isa.Inst{nil, nil},
	)
	m.sched(1, []*isa.Inst{&m.pr.Main().Blocks[1].Insts[0], nil})
	return m
}

// TestPooledStateNoStallLeakAcrossLanes is the regression test for batch
// lane pooling: a fastState returned to the pool mid-speculation (here by
// an erroring memhier run) must come back fully reset — its spec-stall
// tracker and interlock watermark must not leak into the next run or
// batch lane.
func TestPooledStateNoStallLeakAcrossLanes(t *testing.T) {
	mem := memhier.Default()
	clean, err := Predecode(mispredictSched().sp)
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := Predecode(dirtySched().sp)
	if err != nil {
		t.Fatal(err)
	}

	want, err := clean.Exec(ExecConfig{Mem: &mem})
	if err != nil {
		t.Fatal(err)
	}
	if want.SquashedMemStalls <= 0 {
		t.Fatalf("scenario does not exercise the spec-stall tracker: %+v", want)
	}
	// Alternate dirtying and clean runs: each erroring run parks a state
	// with pending speculative stalls in the pool, which the next clean
	// run (or batch lane) will typically reuse.
	for round := 0; round < 8; round++ {
		if _, derr := dirty.Exec(ExecConfig{Mem: &mem}); derr == nil {
			t.Fatal("dirtying run unexpectedly succeeded")
		}
		got, err := clean.Exec(ExecConfig{Mem: &mem})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round %d: pooled state leaked across runs:\nwant %+v\ngot  %+v", round, want, got)
		}
	}
	// Batch lanes draw from the same pool: dirty it once more and run a
	// multi-lane batch, every lane of which must match the reference.
	if _, derr := dirty.Exec(ExecConfig{Mem: &mem}); derr == nil {
		t.Fatal("dirtying run unexpectedly succeeded")
	}
	memCopies := [4]memhier.Config{mem, mem, mem, mem}
	var cfgs []ExecConfig
	for i := range memCopies {
		cfgs = append(cfgs, ExecConfig{Mem: &memCopies[i]})
	}
	results, errs := clean.ExecBatch(cfgs)
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(want, results[i]) {
			t.Fatalf("lane %d: pooled state leaked into batch lane:\nwant %+v\ngot  %+v", i, want, results[i])
		}
	}

	// White-box: a deliberately dirtied state must come back from the pool
	// reset (pointer-guarded — the pool may hand back a different object,
	// in which case the behavioral checks above still cover the property).
	cfg := ExecConfig{}
	fs := getFastState(clean, &cfg)
	fs.spec.add(1, 17)
	fs.spec.add(7, 4)
	fs.maxReady = 1 << 40
	putFastState(fs)
	fs2 := getFastState(clean, &cfg)
	defer putFastState(fs2)
	if fs2 == fs {
		for lv, p := range fs2.spec.pending {
			if p != 0 {
				t.Errorf("pooled reuse kept %d pending stall cycles at level %d", p, lv)
			}
		}
		if fs2.maxReady != 0 {
			t.Errorf("pooled reuse kept interlock watermark %d", fs2.maxReady)
		}
	}
}
