package sim_test

// External black-box tests of the fast execution core: they compile real
// workloads through the production pipeline stages (profile → transfer →
// schedule) and assert the fast core is byte-identical to the legacy
// interpreter in every observable dimension — the ExecResult, and the
// store/squash/block callback streams — across machine models, fault
// injections and the finite data-cache model.

import (
	"reflect"
	"testing"

	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/memhier"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/sim"
	"boosting/internal/workloads"
)

// compileWorkload builds a workload like the pipeline does (minus register
// allocation, which is irrelevant to executor equivalence): train/test
// pair, profile on train, predictions transferred to test — so the test
// program carries realistic, imperfect branch predictions and exercises
// commit, squash and recovery paths.
func compileWorkload(t testing.TB, name string) *prog.Program {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	train, test := w.BuildTrain(), w.BuildTest()
	if err := profile.Annotate(train); err != nil {
		t.Fatal(err)
	}
	if err := profile.Transfer(train, test); err != nil {
		t.Fatal(err)
	}
	return test
}

// engineTrace captures everything observable about one execution: the
// result struct plus every callback event in order.
type engineTrace struct {
	res      *sim.ExecResult
	err      string
	stores   [][3]uint32 // addr, size, val
	squashes []sim.SquashInfo
	blocks   []string
	blockIDs []int
}

func traceExec(sp *machine.SchedProgram, cfg sim.ExecConfig) *engineTrace {
	tr := &engineTrace{}
	cfg.OnStore = func(addr uint32, size int, val uint32) {
		tr.stores = append(tr.stores, [3]uint32{addr, uint32(size), val})
	}
	cfg.OnSquash = func(si sim.SquashInfo) { tr.squashes = append(tr.squashes, si) }
	cfg.OnBlock = func(proc string, id int) {
		tr.blocks = append(tr.blocks, proc)
		tr.blockIDs = append(tr.blockIDs, id)
	}
	res, err := sim.Exec(sp, cfg)
	tr.res = res
	if err != nil {
		tr.err = err.Error()
	}
	return tr
}

func diffTraces(t *testing.T, label string, fast, legacy *engineTrace) {
	t.Helper()
	if fast.err != legacy.err {
		t.Errorf("%s: error mismatch: fast=%q legacy=%q", label, fast.err, legacy.err)
		return
	}
	if !reflect.DeepEqual(fast.res, legacy.res) {
		t.Errorf("%s: ExecResult mismatch:\nfast:   %+v\nlegacy: %+v", label, fast.res, legacy.res)
	}
	if !reflect.DeepEqual(fast.stores, legacy.stores) {
		t.Errorf("%s: store stream mismatch (%d vs %d events)", label, len(fast.stores), len(legacy.stores))
	}
	if !reflect.DeepEqual(fast.squashes, legacy.squashes) {
		t.Errorf("%s: squash stream mismatch:\nfast:   %+v\nlegacy: %+v", label, fast.squashes, legacy.squashes)
	}
	if !reflect.DeepEqual(fast.blocks, legacy.blocks) || !reflect.DeepEqual(fast.blockIDs, legacy.blockIDs) {
		t.Errorf("%s: block stream mismatch (%d vs %d blocks)", label, len(fast.blocks), len(legacy.blocks))
	}
}

// TestEnginesByteIdentical proves the fast core reproduces the legacy
// interpreter exactly — statistics, output, memory digest, and the full
// store/squash/block callback streams — on real workloads across every
// machine model.
func TestEnginesByteIdentical(t *testing.T) {
	models := []*machine.Model{
		machine.Scalar(), machine.NoBoost(), machine.Squashing(),
		machine.Boost1(), machine.MinBoost3(), machine.Boost7(),
		machine.Wide4(machine.Boost7().Boost),
	}
	names := []string{"grep", "eqntott"}
	if testing.Short() {
		names = names[:1]
	}
	for _, name := range names {
		master := compileWorkload(t, name)
		for _, model := range models {
			opts := core.Options{LocalOnly: model.IssueWidth == 1}
			sp, err := core.Schedule(prog.Clone(master), model, opts)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, model, err)
			}
			fast := traceExec(sp, sim.ExecConfig{Engine: sim.EngineFast})
			legacy := traceExec(sp, sim.ExecConfig{Engine: sim.EngineLegacy})
			diffTraces(t, name+"/"+model.Name, fast, legacy)
		}
	}
}

// TestEnginesIdenticalUnderInjection checks that the deliberately broken
// hardware modes (used by the difftest oracle's self-tests) behave the
// same on both engines, including the Leaked accounting after a skipped
// squash.
func TestEnginesIdenticalUnderInjection(t *testing.T) {
	master := compileWorkload(t, "grep")
	injections := []sim.FaultInjection{
		{SkipShadowSquash: true},
		{SkipStoreSquash: true},
	}
	for _, inj := range injections {
		sp, err := core.Schedule(prog.Clone(master), machine.Boost7(), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fast := traceExec(sp, sim.ExecConfig{Engine: sim.EngineFast, Inject: inj})
		legacy := traceExec(sp, sim.ExecConfig{Engine: sim.EngineLegacy, Inject: inj})
		diffTraces(t, "grep/inject", fast, legacy)
	}
}

// TestEnginesIdenticalWithMemHier runs both engines with the memory
// hierarchy, whose miss stalls perturb cycle accounting mid-instruction.
// Several configs exercise the MSHR/write-buffer/prefetcher paths.
func TestEnginesIdenticalWithMemHier(t *testing.T) {
	master := compileWorkload(t, "grep")
	sp, err := core.Schedule(prog.Clone(master), machine.Boost7(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	configs := map[string]memhier.Config{
		"single":  memhier.SingleLevel(512, 1, 16, 12),
		"default": memhier.Default(),
		"stride": func() memhier.Config {
			c := memhier.Default()
			c.Prefetch = "stride"
			return c
		}(),
		"stream-random": func() memhier.Config {
			c := memhier.Default()
			c.Prefetch = "stream"
			c.L1.Policy = memhier.PolicyRandom
			return c
		}(),
	}
	for name, mc := range configs {
		mc := mc
		fast := traceExec(sp, sim.ExecConfig{Engine: sim.EngineFast, Mem: &mc})
		legacy := traceExec(sp, sim.ExecConfig{Engine: sim.EngineLegacy, Mem: &mc})
		diffTraces(t, "grep/mem/"+name, fast, legacy)
	}
}

// TestFastCoreSteadyStateAllocFree verifies the tentpole property: once a
// run is set up, the fast core's execution loop does not allocate. It
// compares total allocations of a cycle-bounded short run against a full
// run orders of magnitude longer; the difference is the steady-state
// loop's allocation, which must be (near) zero — only the output stream's
// amortized growth is tolerated.
func TestFastCoreSteadyStateAllocFree(t *testing.T) {
	master := compileWorkload(t, "eqntott")
	sp, err := core.Schedule(prog.Clone(master), machine.Boost7(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pd, err := sim.Predecode(sp)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the fastState pool so per-process one-time costs drop out, and
	// learn the full run length.
	warm, err := pd.Exec(sim.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cycles < 50_000 {
		t.Fatalf("eqntott run too short (%d cycles) to measure steady state", warm.Cycles)
	}

	short := testing.AllocsPerRun(5, func() {
		if _, err := pd.Exec(sim.ExecConfig{MaxCycles: 2000}); err == nil {
			t.Fatal("short run unexpectedly completed; raise the full-run bound")
		}
	})
	full := testing.AllocsPerRun(5, func() {
		if _, err := pd.Exec(sim.ExecConfig{}); err != nil {
			t.Fatal(err)
		}
	})
	// The full run simulates far more cycles than the short run. Anything
	// beyond a handful of amortized appends means the hot loop allocates.
	if full-short > 16 {
		t.Errorf("steady-state loop allocates: short run %.0f allocs, full run %.0f allocs", short, full)
	}
}
