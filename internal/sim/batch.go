package sim

import (
	"fmt"

	"boosting/internal/machine"
	"boosting/internal/memhier"
)

// This file is the lockstep batch front end of the fast core: N
// independent lanes of the same predecoded program, each with its own
// fastState (registers, shadow file, store buffer, memory, memory
// hierarchy), advanced one superblock round per lane per turn. The
// program's dense arrays are shared and stay hot across lanes, so the
// dispatch/icache cost of the schedule is paid once per round instead of
// once per input; every lane still runs exactly the solo code path
// ((*fastState).step), so lane i's result and error are byte-identical to
// pd.Exec(cfgs[i]) by construction — a property the golden batch digests
// and the difftest "/batch" axis enforce.

// ExecBatch runs one lane per config over the same scheduled program in
// one lockstep pass. Legacy-engine lanes cannot share the predecoded
// arrays and run solo via execLegacy — mixed-engine batches are the
// differential-testing axis, not a fast path. results[i]/errs[i] mirror
// what Exec(sp, cfgs[i]) would return, slot for slot.
func ExecBatch(sp *machine.SchedProgram, cfgs []ExecConfig) (results []*ExecResult, errs []error) {
	results = make([]*ExecResult, len(cfgs))
	errs = make([]error, len(cfgs))
	var fastCfgs []ExecConfig
	var fastIdx []int
	for i := range cfgs {
		if cfgs[i].Engine == EngineLegacy {
			results[i], errs[i] = execLegacy(sp, cfgs[i])
		} else {
			fastCfgs = append(fastCfgs, cfgs[i])
			fastIdx = append(fastIdx, i)
		}
	}
	if len(fastCfgs) == 0 {
		return results, errs
	}
	pd, err := Predecode(sp)
	if err != nil {
		for _, i := range fastIdx {
			errs[i] = err
		}
		return results, errs
	}
	fres, ferrs := pd.ExecBatch(fastCfgs)
	for k, i := range fastIdx {
		results[i], errs[i] = fres[k], ferrs[k]
	}
	return results, errs
}

// ExecBatch runs one fast-core lane per config in lockstep. Lane i's
// result and error are exactly those of pd.Exec(cfgs[i]); lanes that fail
// (setup error, fault, cycle budget) retire early while the rest continue.
// Like Exec it is safe to call concurrently on the same Predecoded value;
// the cfgs slice is retained until the call returns. The Engine field is
// ignored, as it is by pd.Exec — engine dispatch happens in the
// package-level ExecBatch.
func (pd *Predecoded) ExecBatch(cfgs []ExecConfig) (results []*ExecResult, errs []error) {
	n := len(cfgs)
	results = make([]*ExecResult, n)
	errs = make([]error, n)
	lanes := make([]*fastState, n)
	curs := make([]int32, n)
	live := 0
	for i := range cfgs {
		var mh *memhier.Hierarchy
		if cfgs[i].Mem != nil {
			var err error
			if mh, err = memhier.New(*cfgs[i].Mem); err != nil {
				// Mirrors Exec: a hierarchy-construction error yields no
				// result at all, not a partial one.
				errs[i] = err
				continue
			}
		}
		fs := getFastState(pd, &cfgs[i])
		fs.mh = mh
		results[i] = fs.res
		if fb := &pd.blocks[pd.entry]; !fb.scheduled {
			errs[i] = fmt.Errorf("sim: no schedule for %s block B%d", fb.proc, fb.id)
			putFastState(fs)
			continue
		}
		lanes[i] = fs
		curs[i] = pd.entry
		live++
	}
	for live > 0 {
		for i, fs := range lanes {
			if fs == nil {
				continue
			}
			next, done, err := fs.step(curs[i])
			if done || err != nil {
				errs[i] = err
				lanes[i] = nil
				putFastState(fs)
				live--
				continue
			}
			curs[i] = next
		}
	}
	return results, errs
}
