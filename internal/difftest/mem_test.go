package difftest

import (
	"strings"
	"testing"

	"boosting/internal/testgen"
)

// TestMemConfigsInMatrix pins the memory-hierarchy axis into the oracle
// matrix: both the quick and full sets carry /mem/ configurations, their
// names round-trip through ConfigByName, and every named hierarchy
// validates.
func TestMemConfigsInMatrix(t *testing.T) {
	for _, mh := range memHierarchies() {
		if err := mh.cfg.Validate(); err != nil {
			t.Errorf("hierarchy %q invalid: %v", mh.name, err)
		}
	}
	for _, full := range []bool{false, true} {
		n := 0
		for _, c := range Configs(full) {
			if c.Mem == nil {
				continue
			}
			n++
			name := c.Name()
			if !strings.Contains(name, "/mem/") {
				t.Errorf("mem config named %q without /mem/ marker", name)
			}
			rt, err := ConfigByName(name)
			if err != nil {
				t.Errorf("ConfigByName(%q): %v", name, err)
				continue
			}
			if rt.Name() != name {
				t.Errorf("ConfigByName(%q) round-trips to %q", name, rt.Name())
			}
		}
		if n == 0 {
			t.Errorf("Configs(full=%v) has no memory-hierarchy configurations", full)
		}
	}
}

// TestMemAxisArchitecturallyClean runs a batch of generated programs
// through the full matrix — including every /mem/ configuration on both
// engines — and requires zero divergences: the hierarchy must be purely
// a timing model.
func TestMemAxisArchitecturallyClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix oracle pass in -short mode")
	}
	cfgs := Configs(true)
	for seed := int64(0); seed < 8; seed++ {
		rec := testgen.Derive(seed, testgen.RandomShape(seed))
		divs, err := CheckRecipe(rec, Options{Configs: cfgs})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, d := range divs {
			t.Errorf("seed %d: %s", seed, d)
		}
	}
}
