package difftest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"boosting/internal/sim"
	"boosting/internal/testgen"
)

// TestCorpusReplay is the tier-1 regression gate: every checked-in corpus
// entry — hand-written adversarial programs and minimized fuzzer findings —
// must pass the full oracle.
func TestCorpusReplay(t *testing.T) {
	entries, err := LoadDir(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("testdata/corpus is empty; the corpus must ship with the repository")
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			divs, err := e.Replay(Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range divs {
				t.Errorf("divergence: %s", d)
			}
		})
	}
}

// TestCorpusEntriesDetectInjectedBug: corpus entries are adversarial by
// construction — at least one must carry a boosted store above a
// mispredicted branch, so the planted squash bug is visible on corpus
// replay alone (the regression suite would catch the regression even
// without a fuzzing campaign).
func TestCorpusEntriesDetectInjectedBug(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the corpus under fault injection")
	}
	entries, err := LoadDir(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	for _, e := range entries {
		divs, err := e.Replay(Options{
			Inject:      sim.FaultInjection{SkipStoreSquash: true},
			SkipDynamic: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(divs) > 0 {
			detected++
		}
	}
	if detected == 0 {
		t.Error("no corpus entry detects the skip-store-squash injection")
	}
}

func TestCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rec := testgen.Derive(triggerSeeds[0], triggerShape)
	entry, err := NewEntry("round-trip", rec, []string{"Boost7/virt", "dynamic"}, "unit test\nsecond line")
	if err != nil {
		t.Fatal(err)
	}
	path, err := WriteEntry(dir, entry)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("loaded %d entries, want 1", len(entries))
	}
	got := entries[0]
	if got.Name != "round-trip" {
		t.Errorf("Name = %q", got.Name)
	}
	if len(got.Configs) != 2 || got.Configs[0] != "Boost7/virt" || got.Configs[1] != "dynamic" {
		t.Errorf("Configs = %v", got.Configs)
	}
	if got.Note != "unit test\nsecond line" {
		t.Errorf("Note = %q", got.Note)
	}
	dec, err := testgen.DecodeRecipe(got.Recipe)
	if err != nil {
		t.Fatalf("recipe in header does not decode: %v", err)
	}
	if dec.Seed != rec.Seed {
		t.Errorf("recipe seed = %d, want %d", dec.Seed, rec.Seed)
	}
	// The assembly must parse back to a program with identical oracle
	// observables as the recipe build.
	pr, err := got.Program()
	if err != nil {
		t.Fatal(err)
	}
	if pr == nil {
		t.Fatal("nil program")
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("corpus file missing: %v", err)
	}
}

func TestWriteEntryRejectsBadNames(t *testing.T) {
	for _, name := range []string{"", "a b", "a/b"} {
		if _, err := WriteEntry(t.TempDir(), Entry{Name: name, Source: "halt"}); err == nil {
			t.Errorf("WriteEntry(%q) accepted", name)
		}
	}
}

func TestLoadDirMissingIsEmpty(t *testing.T) {
	entries, err := LoadDir(filepath.Join(t.TempDir(), "nope"))
	if err != nil || entries != nil {
		t.Errorf("LoadDir(missing) = %v, %v; want nil, nil", entries, err)
	}
}

func TestReplayUnknownConfigFails(t *testing.T) {
	e := Entry{Name: "x", Configs: []string{"NotAConfig/virt"},
		Source: ".proc main\nentry:\n\thalt\n"}
	if _, err := e.Replay(Options{}); err == nil || !strings.Contains(err.Error(), "unknown config") {
		t.Errorf("Replay with unknown config: err = %v", err)
	}
}
