// Package difftest is the differential-testing oracle for the boosting
// compiler and its machine models. It runs one program through the
// reference interpreter (the sequential semantics every schedule must
// preserve) and through every compiled configuration — machine model ×
// register-allocation mode × scheduler ablation — plus the
// dynamically-scheduled comparison machine, and reports every observable
// divergence: outputs, final memory, architectural store streams,
// speculative state leaking past a squash, or a configuration erroring
// where the reference succeeds.
//
// On a divergence, Shrink minimizes the generation recipe with delta
// debugging (drop segments, flatten nesting, shorten loops, reduce the
// register working set) until the failure no longer reproduces, yielding
// a small, parseable assembly reproducer for the corpus.
package difftest

import (
	"fmt"

	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/memhier"
	"boosting/internal/sim"
)

// Config identifies one compiled configuration under test.
type Config struct {
	// Model is the static machine model (nil for Dynamic configurations).
	Model *machine.Model
	// Alloc selects the register-allocated pipeline (false = the paper's
	// infinite-register regime).
	Alloc bool
	// Opts are the scheduler ablation knobs.
	Opts core.Options
	// Ablation names the ablation bundle for reporting ("" = baseline).
	Ablation string
	// Engine selects the machine-simulator core (static configurations
	// only). The zero value is the fast pre-decoded core; EngineLegacy
	// re-runs the configuration on the original interpreter, making
	// fast-vs-legacy equivalence part of the oracle's matrix.
	Engine sim.Engine
	// ViaArtifact round-trips the schedule through the binary artifact
	// codec before execution (static configurations only), making
	// serialize-then-simulate equivalence part of the oracle's matrix.
	ViaArtifact bool
	// Dynamic selects the dynamically-scheduled comparison machine;
	// Renaming enables its register renaming.
	Dynamic  bool
	Renaming bool
	// Mem runs the configuration under a finite memory hierarchy, which
	// must be timing-only: every architectural observable still has to
	// match the perfect-memory reference exactly. MemName labels the
	// hierarchy in Name().
	Mem     *memhier.Config
	MemName string
	// Batch runs the configuration as one lane of a lockstep ExecBatch
	// (static configurations only), flanked by companion lanes on other
	// engines and hierarchies, and additionally asserts the lane is
	// byte-identical to a sequential Exec of the same configuration
	// ("batch-lane" divergences).
	Batch bool
}

// Name renders a stable, human-readable configuration identifier used in
// divergence reports and corpus headers. The default (fast) engine is
// unnamed so existing corpus entries keep their identifiers; legacy-engine
// configurations gain a "/legacy" suffix.
func (c Config) Name() string {
	if c.Dynamic {
		name := "dynamic"
		if c.Renaming {
			name = "dynamic/renaming"
		}
		if c.MemName != "" {
			name += "/mem/" + c.MemName
		}
		return name
	}
	reg := "virt"
	if c.Alloc {
		reg = "alloc"
	}
	name := fmt.Sprintf("%s/%s", c.Model.Name, reg)
	if c.Ablation != "" {
		name += "/" + c.Ablation
	}
	if c.Engine == sim.EngineLegacy {
		name += "/legacy"
	}
	if c.ViaArtifact {
		name += "/artifact"
	}
	if c.MemName != "" {
		name += "/mem/" + c.MemName
	}
	if c.Batch {
		name += "/batch"
	}
	return name
}

// ablation is a named scheduler-ablation bundle.
type ablation struct {
	name string
	opts core.Options
}

// ablations enumerates the scheduler ablation axes. The baseline comes
// first; the rest disable one optimization each, plus the trace-length
// stressor.
func ablations() []ablation {
	return []ablation{
		{"", core.Options{}},
		{"no-equiv", core.Options{DisableEquivalence: true}},
		{"no-disamb", core.Options{NoDisambiguation: true}},
		{"short-traces", core.Options{MaxTraceBlocks: 2}},
		{"local-only", core.Options{LocalOnly: true}},
	}
}

// memHierarchy is a named finite-memory configuration of the oracle's
// timing-only axis.
type memHierarchy struct {
	name string
	cfg  memhier.Config
}

// memHierarchies enumerates the hierarchies the mem axis runs under.
// Caches are tiny so the small generated programs actually miss; the
// variants stress the paths most likely to leak timing into semantics:
// prefetch fills racing demand accesses, a single MSHR forcing merges
// and structural stalls, and a disabled write buffer making store
// misses block.
func memHierarchies() []memHierarchy {
	tiny := memhier.SingleLevel(4, 1, 8, 20)
	stride := memhier.Default()
	stride.L1 = memhier.CacheConfig{Sets: 4, Ways: 2, LineBytes: 8}
	stride.L2 = memhier.CacheConfig{Sets: 16, Ways: 2, LineBytes: 16}
	stride.Prefetch = "stride"
	// SingleLevel already disables the write buffer (store misses block
	// like loads); one MSHR maximizes merges and structural stalls.
	squeeze := memhier.SingleLevel(2, 1, 8, 30)
	squeeze.MSHRs = 1
	squeeze.Prefetch = "stream"
	return []memHierarchy{
		{"tiny", tiny},
		{"stride", stride},
		{"squeeze", squeeze},
	}
}

// Configs enumerates the configurations of one oracle pass.
//
// The quick set (full=false) covers every machine model in both register
// regimes plus the dynamic scheduler — the surface a fuzzing campaign
// iterates millions of times. The full set additionally crosses the
// boosting models with every scheduler ablation and adds the intermediate
// boost levels (the "raising the boost level never changes results"
// metamorphic axis).
func Configs(full bool) []Config {
	models := []*machine.Model{
		machine.NoBoost(), machine.Squashing(), machine.Boost1(),
		machine.MinBoost3(), machine.Boost7(),
	}
	var out []Config
	// The scalar baseline schedules locally only (it is the paper's
	// sequential machine; global motion has nothing to overlap with).
	for _, alloc := range []bool{false, true} {
		out = append(out, Config{
			Model: machine.Scalar(), Alloc: alloc,
			Opts: core.Options{LocalOnly: true}, Ablation: "local-only",
		})
	}
	for _, m := range models {
		for _, alloc := range []bool{false, true} {
			out = append(out, Config{Model: m, Alloc: alloc})
		}
	}
	// The fast/legacy engine axis: every static configuration must behave
	// identically on both simulator cores. The quick set re-runs the
	// allocated regime on the legacy interpreter; the full matrix covers
	// both register regimes.
	for _, m := range append([]*machine.Model{machine.Scalar()}, models...) {
		regimes := []bool{true}
		if full {
			regimes = []bool{false, true}
		}
		for _, alloc := range regimes {
			c := Config{Model: m, Alloc: alloc, Engine: sim.EngineLegacy}
			if m.IssueWidth == 1 {
				c.Opts = core.Options{LocalOnly: true}
				c.Ablation = "local-only"
			}
			out = append(out, c)
		}
	}
	// The artifact-codec axis: encode→decode→simulate must match
	// schedule→simulate exactly. The quick set round-trips the two
	// headline boosting models; the full matrix covers every model in
	// the allocated regime.
	if full {
		for _, m := range models {
			out = append(out, Config{Model: m, Alloc: true, ViaArtifact: true})
		}
	} else {
		out = append(out,
			Config{Model: machine.MinBoost3(), Alloc: true, ViaArtifact: true},
			Config{Model: machine.Boost7(), Alloc: true, ViaArtifact: true},
		)
	}
	if full {
		for _, m := range models {
			for _, alloc := range []bool{false, true} {
				for _, ab := range ablations()[1:] {
					out = append(out, Config{Model: m, Alloc: alloc, Opts: ab.opts, Ablation: ab.name})
				}
			}
		}
		// Intermediate boost depths: results must be invariant in the level.
		for _, n := range []int{2, 4, 5, 6} {
			out = append(out, Config{Model: machine.BoostN(n), Alloc: true})
		}
	}
	// The memory-hierarchy axis: a finite hierarchy is timing-only, so
	// every observable must still match the perfect-memory reference.
	// The quick set runs the deepest-speculation model under every
	// hierarchy on both engines (plus the dynamic machine under one);
	// the full matrix crosses every boosting model with every hierarchy.
	for _, mh := range memHierarchies() {
		mem := mh.cfg
		if full {
			for _, m := range models {
				for _, engine := range []sim.Engine{sim.EngineFast, sim.EngineLegacy} {
					out = append(out, Config{Model: m, Alloc: true, Engine: engine,
						Mem: &mem, MemName: mh.name})
				}
			}
		} else {
			out = append(out,
				Config{Model: machine.Boost7(), Alloc: true, Mem: &mem, MemName: mh.name},
				Config{Model: machine.Boost7(), Alloc: true, Engine: sim.EngineLegacy,
					Mem: &mem, MemName: mh.name},
			)
		}
	}
	// The batch axis: an ExecBatch lane must behave exactly like a solo
	// Exec run. The quick set batches the two headline models (one under
	// a finite hierarchy); the full matrix crosses every boosting model
	// and register regime with every hierarchy, plus a legacy-engine lane
	// exercising the mixed-engine partition.
	batchMem := memHierarchies()[0]
	if full {
		for _, m := range models {
			for _, alloc := range []bool{false, true} {
				out = append(out, Config{Model: m, Alloc: alloc, Batch: true})
			}
			for _, mh := range memHierarchies() {
				mem := mh.cfg
				out = append(out, Config{Model: m, Alloc: true, Batch: true,
					Mem: &mem, MemName: mh.name})
			}
		}
		out = append(out, Config{Model: machine.Boost7(), Alloc: true,
			Engine: sim.EngineLegacy, Batch: true})
	} else {
		mem := batchMem.cfg
		out = append(out,
			Config{Model: machine.MinBoost3(), Alloc: true, Batch: true},
			Config{Model: machine.Boost7(), Alloc: true, Batch: true,
				Mem: &mem, MemName: batchMem.name},
		)
	}
	out = append(out,
		Config{Dynamic: true},
		Config{Dynamic: true, Renaming: true},
		Config{Dynamic: true, Renaming: true,
			Mem: &memHierarchies()[0].cfg, MemName: memHierarchies()[0].name},
	)
	return out
}

// ConfigByName resolves a Name() string back to a configuration, for
// corpus replay of a specific failing config.
func ConfigByName(name string) (Config, error) {
	for _, full := range []bool{false, true} {
		for _, c := range Configs(full) {
			if c.Name() == name {
				return c, nil
			}
		}
	}
	return Config{}, fmt.Errorf("difftest: unknown config %q", name)
}
