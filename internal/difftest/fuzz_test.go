package difftest

import (
	"reflect"
	"testing"

	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/regalloc"
	"boosting/internal/sim"
	"boosting/internal/testgen"
)

// FuzzOracle is the native-fuzzing entry point over campaign seeds: every
// seed derives a random program shape and recipe and must survive the full
// differential oracle. `go test -fuzz=FuzzOracle ./internal/difftest/`
// explores beyond the sequential seeds a campaign visits.
func FuzzOracle(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(42))
	f.Add(int64(999)) // known squash-carried-store shape
	for _, s := range triggerSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rec := testgen.Derive(seed, testgen.RandomShape(seed))
		divs, err := CheckRecipe(rec, Options{})
		if err != nil {
			t.Fatalf("seed %d: oracle infrastructure error: %v", seed, err)
		}
		for _, d := range divs {
			t.Errorf("seed %d: %s", seed, d)
		}
	})
}

// FuzzFastCore is the engine-differential fuzz target: every seed derives
// a random program, and the fast pre-decoded core must be byte-identical
// to the legacy interpreter — the whole ExecResult plus the committed
// store stream — on every static machine model. Unlike FuzzOracle, which
// compares each engine against the sequential reference, this target
// compares the engines against each other, so purely microarchitectural
// counters (cycles, stalls, squashes) are covered too.
func FuzzFastCore(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(42))
	f.Add(int64(999)) // known squash-carried-store shape
	for _, s := range triggerSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rec := testgen.Derive(seed, testgen.RandomShape(seed))
		pr := testgen.Build(rec)
		if _, err := regalloc.Allocate(pr); err != nil {
			t.Fatalf("seed %d: regalloc: %v", seed, err)
		}
		if err := profile.Annotate(pr); err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		models := []*machine.Model{
			machine.Scalar(), machine.NoBoost(), machine.Squashing(),
			machine.Boost1(), machine.MinBoost3(), machine.Boost7(),
		}
		for _, m := range models {
			sp, err := core.Schedule(prog.Clone(pr), m, core.Options{LocalOnly: m.IssueWidth == 1})
			if err != nil {
				t.Fatalf("seed %d on %s: schedule: %v", seed, m.Name, err)
			}
			type run struct {
				res    *sim.ExecResult
				err    string
				stores []storeEvent
			}
			exec := func(e sim.Engine) run {
				var r run
				res, err := sim.Exec(sp, sim.ExecConfig{Engine: e, OnStore: func(addr uint32, size int, val uint32) {
					r.stores = append(r.stores, storeEvent{addr, size, val})
				}})
				r.res = res
				if err != nil {
					r.err = err.Error()
				}
				return r
			}
			fast, legacy := exec(sim.EngineFast), exec(sim.EngineLegacy)
			if fast.err != legacy.err {
				t.Fatalf("seed %d on %s: error mismatch: fast=%q legacy=%q", seed, m.Name, fast.err, legacy.err)
			}
			if !reflect.DeepEqual(fast.res, legacy.res) {
				t.Fatalf("seed %d on %s: ExecResult mismatch:\nfast:   %+v\nlegacy: %+v", seed, m.Name, fast.res, legacy.res)
			}
			if !reflect.DeepEqual(fast.stores, legacy.stores) {
				t.Fatalf("seed %d on %s: store stream mismatch (%d vs %d events)",
					seed, m.Name, len(fast.stores), len(legacy.stores))
			}
		}
	})
}

// FuzzRecipeDecode hammers the recipe decoder with arbitrary JSON: any
// recipe it accepts must build into a verifying program (Build's totality
// contract), and well-formed recipes must round-trip.
func FuzzRecipeDecode(f *testing.F) {
	for _, seed := range []int64{1, 7, 999} {
		enc, err := testgen.EncodeRecipe(testgen.Derive(seed, testgen.RandomShape(seed)))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add(`{"seed":1,"regs":2,"segments":[{"kind":3,"n":4,"body":[{"kind":1,"n":2}]}]}`)
	f.Fuzz(func(t *testing.T, s string) {
		rec, err := testgen.DecodeRecipe(s)
		if err != nil {
			t.Skip()
		}
		pr := testgen.Build(rec)
		if err := prog.VerifyProgram(pr); err != nil {
			t.Fatalf("accepted recipe builds invalid program: %v\nrecipe: %s", err, s)
		}
	})
}
