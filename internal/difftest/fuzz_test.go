package difftest

import (
	"testing"

	"boosting/internal/prog"
	"boosting/internal/testgen"
)

// FuzzOracle is the native-fuzzing entry point over campaign seeds: every
// seed derives a random program shape and recipe and must survive the full
// differential oracle. `go test -fuzz=FuzzOracle ./internal/difftest/`
// explores beyond the sequential seeds a campaign visits.
func FuzzOracle(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(42))
	f.Add(int64(999)) // known squash-carried-store shape
	for _, s := range triggerSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rec := testgen.Derive(seed, testgen.RandomShape(seed))
		divs, err := CheckRecipe(rec, Options{})
		if err != nil {
			t.Fatalf("seed %d: oracle infrastructure error: %v", seed, err)
		}
		for _, d := range divs {
			t.Errorf("seed %d: %s", seed, d)
		}
	})
}

// FuzzRecipeDecode hammers the recipe decoder with arbitrary JSON: any
// recipe it accepts must build into a verifying program (Build's totality
// contract), and well-formed recipes must round-trip.
func FuzzRecipeDecode(f *testing.F) {
	for _, seed := range []int64{1, 7, 999} {
		enc, err := testgen.EncodeRecipe(testgen.Derive(seed, testgen.RandomShape(seed)))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add(`{"seed":1,"regs":2,"segments":[{"kind":3,"n":4,"body":[{"kind":1,"n":2}]}]}`)
	f.Fuzz(func(t *testing.T, s string) {
		rec, err := testgen.DecodeRecipe(s)
		if err != nil {
			t.Skip()
		}
		pr := testgen.Build(rec)
		if err := prog.VerifyProgram(pr); err != nil {
			t.Fatalf("accepted recipe builds invalid program: %v\nrecipe: %s", err, s)
		}
	})
}
