package difftest

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"boosting/internal/prog"
	"boosting/internal/testgen"
)

// Entry is one corpus reproducer: a parseable assembly program with a
// comment header recording where it came from. Campaign findings are
// persisted here after shrinking; the regression suite replays every entry
// through the oracle on each run.
//
// On-disk format (testdata/corpus/NAME.s):
//
//	; name: back-to-back-mispredicts
//	; configs: Boost7/virt, Squashing/alloc     (empty/absent = full quick set)
//	; recipe: {"seed":1367,...}                 (absent for hand-written entries)
//	; note: free-form provenance
//	<assembly accepted by prog.Parse>
//
// Header lines are ordinary `;` comments, so the file is directly usable
// with any tool that reads the assembly dialect.
type Entry struct {
	// Name identifies the entry (the file basename without extension).
	Name string
	// Configs restricts replay to specific configuration names; empty
	// replays the default set.
	Configs []string
	// Recipe is the encoded generation recipe of a fuzzer finding, empty
	// for hand-written entries.
	Recipe string
	// Note records provenance (divergence kind, campaign seed, ...).
	Note string
	// Source is the assembly text.
	Source string
}

// Program parses the entry's assembly.
func (e Entry) Program() (*prog.Program, error) {
	pr, err := prog.Parse(e.Source)
	if err != nil {
		return nil, fmt.Errorf("corpus %s: %w", e.Name, err)
	}
	return pr, nil
}

// Replay runs the entry through the oracle. When the entry names specific
// configurations, only those are checked (opt.Configs is overridden);
// otherwise opt applies as-is.
func (e Entry) Replay(opt Options) ([]Divergence, error) {
	pr, err := e.Program()
	if err != nil {
		return nil, err
	}
	if len(e.Configs) > 0 {
		cfgs := make([]Config, 0, len(e.Configs))
		for _, name := range e.Configs {
			c, err := ConfigByName(name)
			if err != nil {
				return nil, fmt.Errorf("corpus %s: %w", e.Name, err)
			}
			cfgs = append(cfgs, c)
		}
		opt.Configs = cfgs
	}
	return CheckProgram(pr, opt)
}

// NewEntry renders a fuzzer finding as a corpus entry: the recipe is built
// once and formatted as assembly, so the reproducer survives any future
// change to the generator.
func NewEntry(name string, rec testgen.Recipe, configs []string, note string) (Entry, error) {
	enc, err := testgen.EncodeRecipe(rec)
	if err != nil {
		return Entry{}, err
	}
	return Entry{
		Name:    name,
		Configs: configs,
		Recipe:  enc,
		Note:    note,
		Source:  prog.FormatProgram(testgen.Build(rec)),
	}, nil
}

// format renders the on-disk form.
func (e Entry) format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; name: %s\n", e.Name)
	if len(e.Configs) > 0 {
		fmt.Fprintf(&sb, "; configs: %s\n", strings.Join(e.Configs, ", "))
	}
	if e.Recipe != "" {
		fmt.Fprintf(&sb, "; recipe: %s\n", e.Recipe)
	}
	if e.Note != "" {
		for _, line := range strings.Split(e.Note, "\n") {
			fmt.Fprintf(&sb, "; note: %s\n", line)
		}
	}
	sb.WriteString(e.Source)
	if !strings.HasSuffix(e.Source, "\n") {
		sb.WriteByte('\n')
	}
	return sb.String()
}

// WriteEntry persists an entry to dir as NAME.s, creating dir if needed,
// and returns the file path. The entry must replay: a corpus file that
// does not parse back is rejected before anything is written.
func WriteEntry(dir string, e Entry) (string, error) {
	if e.Name == "" || strings.ContainsAny(e.Name, "/\\ ") {
		return "", fmt.Errorf("corpus: invalid entry name %q", e.Name)
	}
	if _, err := e.Program(); err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, e.Name+".s")
	if err := os.WriteFile(path, []byte(e.format()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadDir reads every .s entry in dir, sorted by name. A missing directory
// is an empty corpus, not an error.
func LoadDir(dir string) ([]Entry, error) {
	files, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []Entry
	for _, f := range files {
		if f.IsDir() || !strings.HasSuffix(f.Name(), ".s") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			return nil, err
		}
		e := parseEntry(strings.TrimSuffix(f.Name(), ".s"), string(data))
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries, nil
}

// parseEntry splits the comment header from the assembly. Unknown header
// keys and all non-header comments are left in the source verbatim (the
// parser ignores them).
func parseEntry(name, text string) Entry {
	e := Entry{Name: name, Source: text}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, ";") {
			if line != "" {
				break // header ends at the first code line
			}
			continue
		}
		body := strings.TrimSpace(strings.TrimPrefix(line, ";"))
		key, val, ok := strings.Cut(body, ":")
		if !ok {
			continue
		}
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "name":
			e.Name = val
		case "configs":
			for _, c := range strings.Split(val, ",") {
				if c = strings.TrimSpace(c); c != "" {
					e.Configs = append(e.Configs, c)
				}
			}
		case "recipe":
			e.Recipe = val
		case "note":
			if e.Note != "" {
				e.Note += "\n"
			}
			e.Note += val
		}
	}
	return e
}

// ReplayDir replays a whole corpus and returns the divergences of every
// failing entry, keyed by entry name.
func ReplayDir(dir string, opt Options) (map[string][]Divergence, error) {
	entries, err := LoadDir(dir)
	if err != nil {
		return nil, err
	}
	failures := map[string][]Divergence{}
	for _, e := range entries {
		divs, err := e.Replay(opt)
		if err != nil {
			return nil, err
		}
		if len(divs) > 0 {
			failures[e.Name] = divs
		}
	}
	return failures, nil
}
