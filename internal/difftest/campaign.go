package difftest

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"boosting/internal/sim"
	"boosting/internal/testgen"
)

// CampaignOptions parameterizes a fuzzing campaign.
type CampaignOptions struct {
	// Duration bounds wall-clock time (0 = run until ctx is cancelled or
	// MaxPrograms is reached).
	Duration time.Duration
	// Parallel is the worker count (0 = 1).
	Parallel int
	// Seed is the base campaign seed; worker i's k-th program uses seed
	// Seed + sequential counter, so a campaign is reproducible modulo
	// which worker got which seed (the checked behavior is seed-local).
	Seed int64
	// MaxPrograms bounds the number of programs checked (0 = unbounded).
	MaxPrograms int64
	// Full selects the full configuration matrix (ablations and
	// intermediate boost levels) instead of the quick set.
	Full bool
	// Inject breaks the simulated squash hardware; used to validate that
	// a campaign detects a planted bug end to end.
	Inject sim.FaultInjection
	// ShrinkBudget bounds oracle runs per finding during minimization
	// (0 = 300).
	ShrinkBudget int
	// CorpusDir, when set, persists every minimized finding as a corpus
	// entry for the regression suite.
	CorpusDir string
	// MaxFindings stops the campaign early once this many divergent seeds
	// were collected (0 = 10; shrinking is expensive and findings beyond a
	// handful are almost always duplicates).
	MaxFindings int
	// Log receives progress lines (nil = silent).
	Log func(format string, args ...any)
}

func (o CampaignOptions) parallel() int {
	if o.Parallel < 1 {
		return 1
	}
	return o.Parallel
}

func (o CampaignOptions) shrinkBudget() int {
	if o.ShrinkBudget <= 0 {
		return 300
	}
	return o.ShrinkBudget
}

func (o CampaignOptions) maxFindings() int {
	if o.MaxFindings <= 0 {
		return 10
	}
	return o.MaxFindings
}

func (o CampaignOptions) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Finding is one divergent seed, with its shrunk reproducer.
type Finding struct {
	// Seed and Shape regenerate the original failing recipe.
	Seed  int64          `json:"seed"`
	Shape testgen.Config `json:"shape"`
	// Divergences are the oracle failures of the original program.
	Divergences []Divergence `json:"divergences"`
	// MinimizedDivergences are the oracle failures of the shrunk recipe —
	// shrinking only preserves "some divergence exists", so the failing
	// configurations (and simulator engines) can differ from the
	// original's. The corpus entry records these, not the original's.
	MinimizedDivergences []Divergence `json:"minimizedDivergences,omitempty"`
	// Engines lists the distinct simulator engines ("fast", "legacy")
	// implicated by the minimized reproducer's divergences.
	Engines []string `json:"engines,omitempty"`
	// Recipe and Minimized are the encoded original and shrunk recipes.
	Recipe    string `json:"recipe"`
	Minimized string `json:"minimized"`
	// Segments counts the minimized recipe's tree segments.
	Segments int `json:"segments"`
	// ShrinkAttempts is the number of oracle runs minimization spent.
	ShrinkAttempts int `json:"shrinkAttempts"`
	// CorpusPath is where the reproducer was persisted ("" = not saved).
	CorpusPath string `json:"corpusPath,omitempty"`
}

// CampaignStats summarizes a campaign; it marshals to the JSON the
// boostfuzz CLI emits.
type CampaignStats struct {
	Programs  int64         `json:"programs"`
	Divergent int64         `json:"divergent"`
	Elapsed   time.Duration `json:"elapsedNs"`
	Seconds   float64       `json:"elapsedSeconds"`
	Rate      float64       `json:"programsPerSecond"`
	Findings  []Finding     `json:"findings,omitempty"`
}

// RunCampaign fuzzes until the duration, program budget, finding budget or
// context expires: each seed derives a random program shape and recipe,
// runs the full differential oracle, and shrinks + persists any
// divergence. The returned error reports infrastructure failures
// (generator bugs, unwritable corpus); divergences are data, not errors.
func RunCampaign(ctx context.Context, opt CampaignOptions) (*CampaignStats, error) {
	outer := ctx // shrinking survives the duration deadline, not hard cancel
	if opt.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Duration)
		defer cancel()
	}
	start := time.Now()
	checkOpt := Options{Inject: opt.Inject}
	if opt.Full {
		checkOpt.Configs = Configs(true)
	}

	var (
		next     atomic.Int64 // seed offset counter
		programs atomic.Int64
		mu       sync.Mutex // guards findings and firstErr
		findings []Finding
		firstErr error
		wg       sync.WaitGroup
	)
	done := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil || len(findings) >= opt.maxFindings()
	}

	for w := 0; w < opt.parallel(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil && !done() {
				n := next.Add(1) - 1
				if opt.MaxPrograms > 0 && n >= opt.MaxPrograms {
					return
				}
				seed := opt.Seed + n
				shape := testgen.RandomShape(seed)
				rec := testgen.Derive(seed, shape)
				divs, err := CheckRecipe(rec, checkOpt)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("seed %d: %w", seed, err)
					}
					mu.Unlock()
					return
				}
				programs.Add(1)
				if len(divs) == 0 {
					continue
				}
				f, err := shrinkFinding(outer, seed, shape, rec, divs, checkOpt, opt)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if err == nil {
					findings = append(findings, f)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	stats := &CampaignStats{
		Programs:  programs.Load(),
		Divergent: int64(len(findings)),
		Elapsed:   time.Since(start),
		Findings:  findings,
	}
	stats.Seconds = stats.Elapsed.Seconds()
	if stats.Seconds > 0 {
		stats.Rate = float64(stats.Programs) / stats.Seconds
	}
	return stats, firstErr
}

// shrinkFinding minimizes one divergent seed and optionally persists it.
// Minimization keeps running after the campaign's duration deadline — a
// found bug is worth finishing — but a hard cancellation of the caller's
// context makes every candidate "pass", which stops the shrinker at the
// current (still-failing) recipe.
func shrinkFinding(ctx context.Context, seed int64, shape testgen.Config, rec testgen.Recipe,
	divs []Divergence, checkOpt Options, opt CampaignOptions) (Finding, error) {
	opt.logf("seed %d: %d divergences (first: %s); shrinking", seed, len(divs), divs[0])
	res := Shrink(rec, func(r testgen.Recipe) bool {
		if ctx.Err() != nil {
			return false
		}
		d, err := CheckRecipe(r, checkOpt)
		return err == nil && len(d) > 0
	}, opt.shrinkBudget())

	// Re-run the oracle on the minimized recipe: shrinking only preserves
	// "some divergence exists", so the reproducer must be re-attributed —
	// the failing configurations and engines may have shifted during
	// minimization. Fall back to the original attribution if the re-check
	// cannot run (cancelled context).
	minDivs := divs
	if ctx.Err() == nil {
		if d, err := CheckRecipe(res.Recipe, checkOpt); err == nil && len(d) > 0 {
			minDivs = d
		}
	}

	orig, err := testgen.EncodeRecipe(rec)
	if err != nil {
		return Finding{}, err
	}
	min, err := testgen.EncodeRecipe(res.Recipe)
	if err != nil {
		return Finding{}, err
	}
	f := Finding{
		Seed: seed, Shape: shape, Divergences: divs,
		MinimizedDivergences: minDivs, Engines: engineNames(minDivs),
		Recipe: orig, Minimized: min,
		Segments: res.Segments, ShrinkAttempts: res.Attempts,
	}
	if opt.CorpusDir != "" {
		name := fmt.Sprintf("finding-seed%d", seed)
		note := fmt.Sprintf("boostfuzz finding: %s", minDivs[0])
		entry, err := NewEntry(name, res.Recipe, configNames(minDivs), note)
		if err != nil {
			return Finding{}, err
		}
		path, err := WriteEntry(opt.CorpusDir, entry)
		if err != nil {
			return Finding{}, err
		}
		f.CorpusPath = path
		opt.logf("seed %d: reproducer saved to %s (%d segments, %d oracle runs)",
			seed, path, res.Segments, res.Attempts)
	} else {
		opt.logf("seed %d: shrunk to %d segments in %d oracle runs", seed, res.Segments, res.Attempts)
	}
	return f, nil
}

// configNames collects the distinct failing configuration names of a
// divergence set, preserving first-seen order.
func configNames(divs []Divergence) []string {
	var names []string
	seen := map[string]bool{}
	for _, d := range divs {
		if !seen[d.Config] {
			seen[d.Config] = true
			names = append(names, d.Config)
		}
	}
	return names
}

// engineNames collects the distinct simulator engines implicated by a
// divergence set, preserving first-seen order.
func engineNames(divs []Divergence) []string {
	var names []string
	seen := map[string]bool{}
	for _, d := range divs {
		if d.Engine != "" && !seen[d.Engine] {
			seen[d.Engine] = true
			names = append(names, d.Engine)
		}
	}
	return names
}
