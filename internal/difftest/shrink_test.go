package difftest

import (
	"testing"

	"boosting/internal/sim"
	"boosting/internal/testgen"
)

// triggerShape and triggerSeeds are known to produce squashes that carry
// boosted stores (mispredicted branches with speculative stores above
// them) on the squashing and boosting models. They are stable because
// recipe derivation uses the package's own splitmix64 stream, not
// math/rand.
var triggerShape = testgen.Config{Segments: 10, MaxDepth: 3}

var triggerSeeds = []int64{1367, 1534, 2009, 2641}

// failsUnderInjection runs the static-machine oracle with the
// skip-store-squash fault injected and reports whether any divergence
// appears. This is the shrinker predicate of the acceptance test: the
// "bug" is the injected hardware fault, and a recipe "fails" when the
// oracle detects it.
func failsUnderInjection(t *testing.T, rec testgen.Recipe) bool {
	divs, err := CheckRecipe(rec, Options{
		Inject:      sim.FaultInjection{SkipStoreSquash: true},
		SkipDynamic: true,
	})
	if err != nil {
		t.Fatalf("oracle error on candidate recipe: %v", err)
	}
	return len(divs) > 0
}

// TestInjectedBugCaughtAndShrunk is the oracle's end-to-end self-test: an
// intentionally broken squash path (boosted stores surviving a mispredict)
// must be detected, and the triggering program must shrink to a tiny
// reproducer.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking runs the oracle hundreds of times")
	}
	seed := triggerSeeds[0]
	rec := testgen.Derive(seed, triggerShape)

	// The bug must be visible on the unshrunk program...
	if !failsUnderInjection(t, rec) {
		t.Fatalf("seed %d: injected store-squash bug not detected", seed)
	}
	// ...and invisible without the injection (no false positives).
	divs, err := CheckRecipe(rec, Options{SkipDynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) != 0 {
		t.Fatalf("seed %d: unexpected divergences without injection: %v", seed, divs)
	}

	res := Shrink(rec, func(r testgen.Recipe) bool { return failsUnderInjection(t, r) }, 600)
	t.Logf("shrunk %d -> %d tree segments (%d top-level) in %d attempts",
		rec.NumSegments(), res.Segments, len(res.Recipe.Segments), res.Attempts)
	// The reproducer's segment list must be tiny. (The tree below it cannot
	// shrink past ~5 nodes: a mispredict needs a branch whose direction
	// varies across loop iterations, so a loop wrapping a diamond wrapping
	// the boosted store is the structural floor — verified empirically by
	// scanning 12k small-shape recipes, none of which trigger with <= 4
	// tree segments.)
	if len(res.Recipe.Segments) > 3 {
		t.Errorf("minimized recipe has %d top-level segments, want <= 3", len(res.Recipe.Segments))
	}
	if res.Segments > 7 {
		t.Errorf("minimized recipe has %d tree segments, want <= 7", res.Segments)
	}
	// The minimized recipe must still reproduce.
	if !failsUnderInjection(t, res.Recipe) {
		t.Error("minimized recipe no longer triggers the injected bug")
	}
	// Shrink must not have mutated its input.
	if got := testgen.Derive(seed, triggerShape); rec.NumSegments() != got.NumSegments() {
		t.Error("Shrink mutated the input recipe")
	}
}

// TestInjectionDetectedOnAllTriggerSeeds pins the full set of known
// triggering seeds: each must diverge under injection and be clean
// without it, guarding both the seeds and the injection plumbing.
func TestInjectionDetectedOnAllTriggerSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full oracle on several programs")
	}
	for _, seed := range triggerSeeds {
		rec := testgen.Derive(seed, triggerShape)
		if !failsUnderInjection(t, rec) {
			t.Errorf("seed %d: injected bug not detected", seed)
		}
		divs, err := CheckRecipe(rec, Options{SkipDynamic: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(divs) != 0 {
			t.Errorf("seed %d: divergences without injection: %v", seed, divs)
		}
	}
}

// TestShrinkRespectsBudget bounds predicate evaluations.
func TestShrinkRespectsBudget(t *testing.T) {
	rec := testgen.Derive(1, testgen.Config{Segments: 8, MaxDepth: 2})
	calls := 0
	res := Shrink(rec, func(testgen.Recipe) bool { calls++; return true }, 25)
	if calls > 25 {
		t.Errorf("predicate called %d times, budget 25", calls)
	}
	if res.Attempts != calls {
		t.Errorf("Attempts = %d, predicate saw %d calls", res.Attempts, calls)
	}
}

// TestShrinkAlwaysFailingReachesFloor: with a predicate that accepts
// everything, shrinking must reach the structural floor (no segments, 2
// registers, no calls) — i.e. every pass makes progress.
func TestShrinkAlwaysFailingReachesFloor(t *testing.T) {
	rec := testgen.Derive(7, testgen.Config{Segments: 8, MaxDepth: 3, WithCalls: true, Regs: 8})
	res := Shrink(rec, func(testgen.Recipe) bool { return true }, 2000)
	if res.Segments != 0 {
		t.Errorf("segments = %d, want 0", res.Segments)
	}
	if res.Recipe.Regs != 2 {
		t.Errorf("Regs = %d, want 2", res.Recipe.Regs)
	}
	if res.Recipe.WithCalls {
		t.Error("WithCalls still set after shrinking away all call segments")
	}
	// The floor recipe still builds and passes the oracle.
	divs, err := CheckRecipe(res.Recipe, Options{SkipDynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) != 0 {
		t.Errorf("floor recipe diverges: %v", divs)
	}
}

// TestShrinkNeverSucceedingReturnsInput: a predicate that rejects every
// candidate leaves the recipe untouched.
func TestShrinkNeverSucceedingReturnsInput(t *testing.T) {
	rec := testgen.Derive(3, testgen.Config{Segments: 6, MaxDepth: 2})
	res := Shrink(rec, func(testgen.Recipe) bool { return false }, 500)
	if res.Segments != rec.NumSegments() {
		t.Errorf("segments = %d, want %d (unchanged)", res.Segments, rec.NumSegments())
	}
}
