; name: squash-carried-store
; recipe: {"seed":999,"gen":{"segments":9,"maxDepth":3,"regs":6,"withCalls":true},"regs":6,"withCalls":true,"dataSeed":7535176870234952092,"initSeed":16807308431832371998,"segments":[{"kind":4,"seed":7877886314603936141},{"kind":0,"seed":12864963651508648215,"n":4},{"kind":3,"seed":750971839762293109,"n":3,"body":[{"kind":2,"seed":7835998323356222634,"body":[{"kind":1,"seed":17320135548732422542,"n":1}],"else":[{"kind":0,"seed":1300214412575683635,"n":1}]}]}]}
; note: minimized boostfuzz finding for the skip-store-squash self-test:
; note: a squash that must discard a boosted store
.byte 252 254 255 255 247 0 0 0 139 0 0 0 90 0 0 0
.byte 109 254 255 255 211 1 0 0 247 254 255 255 124 255 255 255
.byte 255 0 0 0 37 255 255 255 48 255 255 255 169 255 255 255
.byte 159 0 0 0 122 0 0 0 254 255 255 255 240 255 255 255
.byte 90 1 0 0 186 0 0 0 73 254 255 255 38 255 255 255
.byte 34 0 0 0 108 254 255 255 233 0 0 0 239 1 0 0
.byte 7 0 0 0 39 255 255 255 234 0 0 0 121 1 0 0
.byte 139 254 255 255 79 255 255 255 154 1 0 0 118 1 0 0
.byte 242 1 0 0 104 0 0 0 229 254 255 255 13 1 0 0
.byte 79 255 255 255 251 0 0 0 238 1 0 0 72 255 255 255
.byte 235 255 255 255 4 1 0 0 29 255 255 255 41 1 0 0
.byte 165 255 255 255 209 1 0 0 234 255 255 255 251 255 255 255
.byte 56 255 255 255 162 0 0 0 47 0 0 0 245 0 0 0
.byte 142 0 0 0 151 1 0 0 102 254 255 255 94 1 0 0
.byte 20 0 0 0 230 0 0 0 233 255 255 255 177 1 0 0
.byte 159 255 255 255 170 1 0 0 187 254 255 255 224 254 255 255
.proc leaf
B0.entry: ;entry
	lui v0, 1
	lw v0, 0(v0)
	add r2, r4, r4
	add r2, r2, v0
	addi r2, r2, 3
	jr r31

.proc main
B0.entry: ;entry
	addi v1, r0, -6
	addi v2, r0, -80
	addi v3, r0, -54
	addi v4, r0, 75
	addi v5, r0, 45
	addi v6, r0, -40
	lui v7, 1
	or r4, v1, r0
	jal leaf -> B1.entry.ret
B1.entry.ret:
	or v1, r2, r0
	srl v3, v3, 24
	ori v4, v1, 25
	andi v6, v5, 62
	mul v2, v1, v1
	addi v8, r0, 3
	;fallthrough -> B2.loop
B2.loop:
	blez v5 ;not-taken ;taken->B4.then fall->B5.else
B3.exit:
	out v1
	out v2
	out v3
	out v4
	out v5
	out v6
	halt
B4.then:
	andi v9, v1, 63
	sll v9, v9, 2
	add v10, v7, v9
	lw v5, 0(v10)
	;fallthrough -> B6.join
B5.else:
	add v5, v6, v1
	j -> B6.join
B6.join:
	addi v8, v8, -1
	bgtz v8 ;not-taken ;taken->B2.loop fall->B3.exit

