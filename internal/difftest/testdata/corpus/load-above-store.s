; name: load-above-store
; note: every iteration stores to a slot and immediately branches on the
; note: stored value, with dependent reloads of that slot under both arms.
; note: boosting a reload above the store exercises shadow-store-buffer
; note: forwarding; the alternating signs make the branch mispredict, so
; note: the boosted state must also squash cleanly.
.word 3
.word -7
.word 12
.word -4
.word 9
.word -1
.word 6
.word -8
.reserve 64

.proc main
entry:
	li v0, 0x10000
	li v1, 8
	li v2, 0
	li v3, 0
	;fallthrough -> loop
loop:
	add v4, v0, v3
	lw v5, 0(v4)
	sw v5, 32(v4)
	blez v5, neg, pos
pos:
	lw v6, 32(v4)
	add v2, v2, v6
	j next
neg:
	lw v7, 32(v4)
	sub v2, v2, v7
	j next
next:
	addi v3, v3, 4
	addi v1, v1, -1
	bgtz v1, loop, done
done:
	out v2
	halt
