; name: deep-branch-ladder
; note: eight data-dependent branches in a row, deeper than any model's
; note: shadow hardware (Boost7 allows level 7, MinBoost3 level 3, Boost1
; note: level 1): the scheduler must clamp boosting to the hardware level
; note: while still filling the trace. Shifting the loaded word left one
; note: bit per rung makes each rung's direction an independent bit of the
; note: data, so predictions are wrong on minority iterations at every
; note: depth.
.word 1797559123
.word -1233988011
.word 574353916
.word -2045263879
.word 1064086577
.word -119900332

.proc main
entry:
	li v0, 0x10000
	li v1, 6
	li v2, 0
	li v3, 0
	;fallthrough -> loop
loop:
	add v4, v0, v3
	lw v5, 0(v4)
	;fallthrough -> r1
r1:
	sll v5, v5, 1
	bltz v5, t1, f1
f1:
	addi v2, v2, 1
	j r2
t1:
	addi v2, v2, 3
	j r2
r2:
	sll v5, v5, 1
	bltz v5, t2, f2
f2:
	addi v2, v2, 1
	j r3
t2:
	addi v2, v2, 3
	j r3
r3:
	sll v5, v5, 1
	bltz v5, t3, f3
f3:
	addi v2, v2, 1
	j r4
t3:
	addi v2, v2, 3
	j r4
r4:
	sll v5, v5, 1
	bltz v5, t4, f4
f4:
	addi v2, v2, 1
	j r5
t4:
	addi v2, v2, 3
	j r5
r5:
	sll v5, v5, 1
	bltz v5, t5, f5
f5:
	addi v2, v2, 1
	j r6
t5:
	addi v2, v2, 3
	j r6
r6:
	sll v5, v5, 1
	bltz v5, t6, f6
f6:
	addi v2, v2, 1
	j r7
t6:
	addi v2, v2, 3
	j r7
r7:
	sll v5, v5, 1
	bltz v5, t7, f7
f7:
	addi v2, v2, 1
	j r8
t7:
	addi v2, v2, 3
	j r8
r8:
	sll v5, v5, 1
	bltz v5, t8, f8
f8:
	addi v2, v2, 1
	j next
t8:
	addi v2, v2, 3
	j next
next:
	addi v3, v3, 4
	addi v1, v1, -1
	bgtz v1, loop, done
done:
	out v2
	halt
