; name: back-to-back-mispredicts
; note: two adjacent data-dependent branches per iteration whose minority
; note: directions coincide on some elements, so both mispredict in the
; note: same cycle window; the minority path of the first branch also
; note: stores, so a consecutive double squash must unwind register and
; note: store state without leaking either.
.word 5
.word 2
.word -6
.word -9
.word 4
.word 7
.word -3
.word 1
.word 8
.word -2
.word 6
.word 3
.reserve 64

.proc main
entry:
	li v0, 0x10000
	li v1, 6
	li v2, 0
	li v3, 0
	;fallthrough -> loop
loop:
	add v4, v0, v3
	lw v5, 0(v4)
	lw v6, 4(v4)
	bltz v5, aneg, apos
apos:
	addi v2, v2, 1
	j bchk
aneg:
	sw v5, 48(v4)
	sub v2, v2, v5
	j bchk
bchk:
	bltz v6, bneg, bpos
bpos:
	addi v2, v2, 2
	j next
bneg:
	sw v6, 52(v4)
	sub v2, v2, v6
	j next
next:
	addi v3, v3, 8
	addi v1, v1, -1
	bgtz v1, loop, done
done:
	out v2
	halt
