package difftest

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"boosting/internal/sim"
)

// TestCampaignCleanOnHealthySimulator: a bounded campaign over the seed
// workloads must find zero divergences — this is the oracle's "the
// implementation is correct" claim in miniature.
func TestCampaignCleanOnHealthySimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a fuzzing campaign")
	}
	stats, err := RunCampaign(context.Background(), CampaignOptions{
		Seed:        42,
		MaxPrograms: 40,
		Parallel:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Programs != 40 {
		t.Errorf("Programs = %d, want 40", stats.Programs)
	}
	if stats.Divergent != 0 {
		t.Fatalf("healthy simulator diverged: %+v", stats.Findings)
	}
}

// TestCampaignDetectsInjectedBug: a campaign over the known trigger seeds
// with the squash bug planted must find, shrink and persist a reproducer,
// and the reproducer must replay as failing.
func TestCampaignDetectsInjectedBug(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a fuzzing campaign plus shrinking")
	}
	dir := t.TempDir()
	// Seed the campaign right below a known trigger (seed 999 is the first
	// RandomShape-derived program whose squash carries a boosted store) so
	// detection does not depend on fuzzing luck.
	stats, err := RunCampaign(context.Background(), CampaignOptions{
		Seed:        980,
		MaxPrograms: 40,
		Parallel:    4,
		MaxFindings: 1,
		Inject:      sim.FaultInjection{SkipStoreSquash: true},
		CorpusDir:   dir,
		Log:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Divergent == 0 {
		t.Fatal("campaign did not detect the injected squash bug in 40 programs")
	}
	f := stats.Findings[0]
	if f.Minimized == "" || f.CorpusPath == "" {
		t.Fatalf("finding not shrunk/persisted: %+v", f)
	}
	// The persisted reproducer fails under injection and passes without.
	entries, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no corpus entry written")
	}
	divs, err := entries[0].Replay(Options{Inject: sim.FaultInjection{SkipStoreSquash: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) == 0 {
		t.Error("persisted reproducer does not reproduce under injection")
	}
	clean, err := entries[0].Replay(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) != 0 {
		t.Errorf("persisted reproducer diverges without injection: %v", clean)
	}
	// Stats must serialize (the CLI's -json path).
	if _, err := json.Marshal(stats); err != nil {
		t.Errorf("stats do not marshal: %v", err)
	}
}

// TestCampaignHonorsDuration: the duration bound stops the campaign.
func TestCampaignHonorsDuration(t *testing.T) {
	start := time.Now()
	stats, err := RunCampaign(context.Background(), CampaignOptions{
		Seed:     7,
		Duration: 300 * time.Millisecond,
		Parallel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("campaign ran %v past a 300ms budget", elapsed)
	}
	if stats.Programs == 0 {
		t.Error("no programs checked within the duration")
	}
}

// TestCampaignHonorsCancel: context cancellation stops the campaign.
func TestCampaignHonorsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := RunCampaign(ctx, CampaignOptions{Seed: 7, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Programs != 0 {
		t.Errorf("cancelled campaign checked %d programs", stats.Programs)
	}
}
