package difftest

import (
	"boosting/internal/testgen"
)

// ShrinkResult reports a minimization outcome.
type ShrinkResult struct {
	// Recipe is the smallest failing recipe found.
	Recipe testgen.Recipe
	// Attempts counts predicate evaluations spent.
	Attempts int
	// Segments is Recipe.NumSegments() — the minimality unit reported to
	// users.
	Segments int
}

// Shrink minimizes a failing recipe with delta debugging over its segment
// tree plus structural reduction passes: drop segments (largest chunks
// first), hoist loop/diamond bodies over their wrapper, shorten loop trip
// counts and straight-line runs, reduce the register working set, and drop
// the callee once no call segments remain.
//
// failing must report whether a candidate recipe still reproduces the
// original failure; it is called at most budget times (0 = 1000). Every
// candidate handed to failing builds a valid, halting program, so the
// predicate can run the oracle directly. The original recipe is returned
// unchanged if no smaller failing recipe is found.
func Shrink(rec testgen.Recipe, failing func(testgen.Recipe) bool, budget int) ShrinkResult {
	if budget <= 0 {
		budget = 1000
	}
	s := &shrinker{failing: failing, budget: budget}
	cur := rec
	cur.Segments = cloneSegs(rec.Segments) // reduction passes edit in place
	for {
		next, improved := s.pass(cur)
		if !improved || s.spent >= s.budget {
			return ShrinkResult{Recipe: next, Attempts: s.spent, Segments: next.NumSegments()}
		}
		cur = next
	}
}

type shrinker struct {
	failing func(testgen.Recipe) bool
	budget  int
	spent   int
}

// try evaluates one candidate against the failure predicate, respecting
// the budget.
func (s *shrinker) try(r testgen.Recipe) bool {
	if s.spent >= s.budget {
		return false
	}
	s.spent++
	return s.failing(r)
}

// pass runs every reduction strategy once; improved reports whether any
// candidate was accepted.
func (s *shrinker) pass(rec testgen.Recipe) (testgen.Recipe, bool) {
	improved := false
	for _, step := range []func(testgen.Recipe) (testgen.Recipe, bool){
		s.dropSegments,
		s.hoistBodies,
		s.shrinkBounds,
		s.reduceRegs,
		s.dropCalls,
	} {
		var ok bool
		rec, ok = step(rec)
		improved = improved || ok
	}
	return rec, improved
}

// cloneSegs deep-copies a segment tree so Shrink never mutates its input.
func cloneSegs(segs []testgen.Segment) []testgen.Segment {
	if segs == nil {
		return nil
	}
	out := append([]testgen.Segment{}, segs...)
	for i := range out {
		out[i].Body = cloneSegs(out[i].Body)
		out[i].Else = cloneSegs(out[i].Else)
	}
	return out
}

// dropSegments removes segments anywhere in the tree, trying large chunks
// first (classic ddmin), then single segments, recursing into surviving
// bodies.
func (s *shrinker) dropSegments(rec testgen.Recipe) (testgen.Recipe, bool) {
	segs, ok := s.minimizeList(rec.Segments, func(l []testgen.Segment) testgen.Recipe {
		r := rec
		r.Segments = l
		return r
	})
	rec.Segments = segs
	return rec, ok
}

// minimizeList shrinks one segment list; wrap embeds a candidate list into
// a full recipe. It recurses into the Body/Else of surviving segments.
func (s *shrinker) minimizeList(segs []testgen.Segment, wrap func([]testgen.Segment) testgen.Recipe) ([]testgen.Segment, bool) {
	improved := false
	// Chunked removal: halves, quarters, ... down to single segments.
	for chunk := (len(segs) + 1) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(segs); {
			cand := make([]testgen.Segment, 0, len(segs)-chunk)
			cand = append(cand, segs[:start]...)
			cand = append(cand, segs[start+chunk:]...)
			if len(cand) != len(segs) && s.try(wrap(cand)) {
				segs = cand
				improved = true
				// Do not advance: the next chunk slid into this position.
			} else {
				start++
			}
		}
	}
	// Recurse into composite segments.
	if s.recurseInto(segs, wrap, s.minimizeList) {
		improved = true
	}
	return segs, improved
}

// recurseInto applies list-shrinking fn to the Body and Else of every
// composite segment in segs, in place. Candidate recipes always embed the
// segment's *current* accepted state (never a stale snapshot), so a Body
// already shrunk is what the Else candidates are tested against.
func (s *shrinker) recurseInto(segs []testgen.Segment, wrap func([]testgen.Segment) testgen.Recipe,
	fn func([]testgen.Segment, func([]testgen.Segment) testgen.Recipe) ([]testgen.Segment, bool)) bool {
	improved := false
	for i := range segs {
		i := i
		embed := func(kids []testgen.Segment, intoElse bool) testgen.Recipe {
			cand := append([]testgen.Segment{}, segs...)
			c := cand[i]
			if intoElse {
				c.Else = kids
			} else {
				c.Body = kids
			}
			cand[i] = c
			return wrap(cand)
		}
		if len(segs[i].Body) > 0 {
			kids, ok := fn(segs[i].Body, func(l []testgen.Segment) testgen.Recipe { return embed(l, false) })
			if ok {
				segs[i].Body = kids
				improved = true
			}
		}
		if len(segs[i].Else) > 0 {
			kids, ok := fn(segs[i].Else, func(l []testgen.Segment) testgen.Recipe { return embed(l, true) })
			if ok {
				segs[i].Else = kids
				improved = true
			}
		}
	}
	return improved
}

// hoistBodies flattens nesting: a loop or diamond is replaced by its
// body (then else-arm) spliced into the parent list.
func (s *shrinker) hoistBodies(rec testgen.Recipe) (testgen.Recipe, bool) {
	segs, ok := s.hoistList(rec.Segments, func(l []testgen.Segment) testgen.Recipe {
		r := rec
		r.Segments = l
		return r
	})
	rec.Segments = segs
	return rec, ok
}

func (s *shrinker) hoistList(segs []testgen.Segment, wrap func([]testgen.Segment) testgen.Recipe) ([]testgen.Segment, bool) {
	improved := false
	for i := 0; i < len(segs); {
		seg := segs[i]
		if len(seg.Body) == 0 && len(seg.Else) == 0 {
			i++
			continue
		}
		cand := make([]testgen.Segment, 0, len(segs)+len(seg.Body)+len(seg.Else)-1)
		cand = append(cand, segs[:i]...)
		cand = append(cand, seg.Body...)
		cand = append(cand, seg.Else...)
		cand = append(cand, segs[i+1:]...)
		if s.try(wrap(cand)) {
			segs = cand
			improved = true
			// Re-examine position i: hoisted children may flatten further.
		} else {
			i++
		}
	}
	// Recurse into remaining composites.
	if s.recurseInto(segs, wrap, s.hoistList) {
		improved = true
	}
	return segs, improved
}

// shrinkBounds reduces loop trip counts and straight-line/memory run
// lengths to 1 (then to half, for runs that resist 1).
func (s *shrinker) shrinkBounds(rec testgen.Recipe) (testgen.Recipe, bool) {
	improved := false
	var walk func(segs []testgen.Segment, wrap func([]testgen.Segment) testgen.Recipe) []testgen.Segment
	walk = func(segs []testgen.Segment, wrap func([]testgen.Segment) testgen.Recipe) []testgen.Segment {
		for i := range segs {
			i := i
			embed := func(c testgen.Segment) testgen.Recipe {
				cand := append([]testgen.Segment{}, segs...)
				cand[i] = c
				return wrap(cand)
			}
			for _, n := range []int{1, segs[i].N / 2} {
				if segs[i].N > 1 && n >= 1 && n < segs[i].N {
					c := segs[i]
					c.N = n
					if s.try(embed(c)) {
						segs[i] = c
						improved = true
						break
					}
				}
			}
			seg := segs[i]
			if len(seg.Body) > 0 {
				segs[i].Body = walk(seg.Body, func(l []testgen.Segment) testgen.Recipe {
					c := segs[i]
					c.Body = l
					return embed(c)
				})
			}
			if len(seg.Else) > 0 {
				segs[i].Else = walk(seg.Else, func(l []testgen.Segment) testgen.Recipe {
					c := segs[i]
					c.Else = l
					return embed(c)
				})
			}
		}
		return segs
	}
	rec.Segments = walk(rec.Segments, func(l []testgen.Segment) testgen.Recipe {
		r := rec
		r.Segments = l
		return r
	})
	return rec, improved
}

// reduceRegs halves the register working set while the failure persists.
func (s *shrinker) reduceRegs(rec testgen.Recipe) (testgen.Recipe, bool) {
	improved := false
	for rec.Regs > 2 {
		cand := rec
		cand.Regs = rec.Regs / 2
		if cand.Regs < 2 {
			cand.Regs = 2
		}
		if !s.try(cand) {
			break
		}
		rec = cand
		improved = true
	}
	return rec, improved
}

// dropCalls removes the leaf callee once no call segments remain.
func (s *shrinker) dropCalls(rec testgen.Recipe) (testgen.Recipe, bool) {
	if !rec.WithCalls || rec.HasCalls() {
		return rec, false
	}
	cand := rec
	cand.WithCalls = false
	if s.try(cand) {
		return cand, true
	}
	return rec, false
}
