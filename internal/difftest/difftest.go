package difftest

import (
	"fmt"

	"boosting/internal/artifact"
	"boosting/internal/core"
	"boosting/internal/dynsched"
	"boosting/internal/machine"
	"boosting/internal/memhier"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/regalloc"
	"boosting/internal/sim"
	"boosting/internal/testgen"
)

// Options parameterizes one oracle pass.
type Options struct {
	// Configs lists the configurations to check (nil = Configs(false)).
	Configs []Config
	// Inject deliberately breaks the boosting hardware of every static
	// configuration; used by the oracle's self-tests to prove divergences
	// are caught. The zero value injects nothing.
	Inject sim.FaultInjection
	// MaxSteps bounds the reference run (0 = 10M instructions — generated
	// programs finish in thousands).
	MaxSteps int64
	// SkipDynamic drops the dynamic-scheduler configurations; the
	// shrinker uses it when minimizing a static-machine failure.
	SkipDynamic bool
}

func (o Options) configs() []Config {
	cfgs := o.Configs
	if cfgs == nil {
		cfgs = Configs(false)
	}
	if !o.SkipDynamic {
		return cfgs
	}
	var out []Config
	for _, c := range cfgs {
		if !c.Dynamic {
			out = append(out, c)
		}
	}
	return out
}

func (o Options) maxSteps() int64 {
	if o.MaxSteps > 0 {
		return o.MaxSteps
	}
	return 10_000_000
}

// Divergence describes one oracle failure: a configuration whose
// observable behavior differs from the sequential reference semantics, or
// whose speculative hardware state violates the precise-exception
// invariants.
type Divergence struct {
	// Config is the Name() of the failing configuration.
	Config string `json:"config"`
	// Kind classifies the failure: "output", "memory", "store-stream",
	// "squash-leak", "halt-leak", "batch-lane" or "error".
	Kind string `json:"kind"`
	// Detail is a human-readable description of the mismatch.
	Detail string `json:"detail"`
	// Engine names the simulator core of the failing configuration
	// ("fast" or "legacy"; empty for non-simulator configs such as the
	// dynamic machine or regalloc itself).
	Engine string `json:"engine,omitempty"`
}

func (d Divergence) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Config, d.Kind, d.Detail)
}

// reference captures the ground-truth observables of one sequential run.
type reference struct {
	out    []uint32
	memh   uint64
	stores []storeEvent
	insts  int64
}

type storeEvent struct {
	addr uint32
	size int
	val  uint32
}

// CheckRecipe builds the recipe's program freshly for every configuration
// (compilation mutates the program) and reports every divergence from the
// sequential reference semantics. The returned error is reserved for an
// invalid program — a reference run that faults or fails to halt — which
// is a generator bug, not a scheduler divergence.
func CheckRecipe(rec testgen.Recipe, opt Options) ([]Divergence, error) {
	return Check(func() *prog.Program { return testgen.Build(rec) }, opt)
}

// CheckProgram checks a fixed program (for example a corpus entry); a
// private clone is compiled per configuration.
func CheckProgram(pr *prog.Program, opt Options) ([]Divergence, error) {
	return Check(func() *prog.Program { return prog.Clone(pr) }, opt)
}

// Check is the oracle core: build() must return a fresh, semantically
// identical program on every call.
//
// Register allocation inserts spill traffic, so the memory image of an
// allocated run legitimately differs from the virtual-register run. The
// oracle therefore keeps one reference per register regime — each the
// sequential interpretation of exactly the program that regime's
// configurations compile — and additionally asserts the regimes agree on
// the observable output stream (allocation must never change results).
func Check(build func() *prog.Program, opt Options) ([]Divergence, error) {
	refVirt, err := runReference(build(), opt.maxSteps())
	if err != nil {
		return nil, err
	}
	var divs []Divergence
	refs := map[bool]*reference{false: refVirt}
	buildAlloc := func() *prog.Program {
		pr := build()
		if _, err := regalloc.Allocate(pr); err != nil {
			// Surfaced once below as a divergence; callers get a stub
			// reference so per-config checks are skipped cleanly.
			return nil
		}
		return pr
	}
	if pr := buildAlloc(); pr != nil {
		refAlloc, err := runReference(pr, opt.maxSteps())
		if err != nil {
			divs = append(divs, Divergence{Config: "regalloc", Kind: "error",
				Detail: fmt.Sprintf("allocated reference run: %v", err)})
		} else {
			refs[true] = refAlloc
			if d := compareOut(refVirt.out, refAlloc.out); d != "" {
				divs = append(divs, Divergence{Config: "regalloc", Kind: "output",
					Detail: "register allocation changed program output: " + d})
			}
		}
	} else {
		divs = append(divs, Divergence{Config: "regalloc", Kind: "error", Detail: "register allocation failed"})
	}
	for _, cfg := range opt.configs() {
		ref := refs[cfg.Alloc || cfg.Dynamic]
		if ref == nil {
			continue
		}
		divs = append(divs, checkConfig(build, cfg, ref, opt)...)
	}
	return divs, nil
}

func runReference(pr *prog.Program, maxSteps int64) (*reference, error) {
	if err := prog.VerifyProgram(pr); err != nil {
		return nil, fmt.Errorf("difftest: invalid program: %w", err)
	}
	ref := &reference{}
	res, err := sim.Run(pr, sim.RefConfig{
		MaxSteps: maxSteps,
		OnStore: func(addr uint32, size int, val uint32) {
			ref.stores = append(ref.stores, storeEvent{addr, size, val})
		},
	})
	if err != nil {
		return nil, fmt.Errorf("difftest: reference run: %w", err)
	}
	if res.Fault != nil {
		return nil, fmt.Errorf("difftest: reference run faults: %v", res.Fault)
	}
	ref.out = res.Out
	ref.memh = res.MemHash
	ref.insts = res.Insts
	return ref, nil
}

// checkConfig compiles and runs one configuration and compares every
// observable against the reference, tagging static-machine divergences
// with the simulator engine that produced them.
func checkConfig(build func() *prog.Program, cfg Config, ref *reference, opt Options) []Divergence {
	if cfg.Dynamic {
		return checkDynamic(build, cfg, ref)
	}
	divs := checkStatic(build, cfg, ref, opt)
	for i := range divs {
		divs[i].Engine = cfg.Engine.String()
	}
	return divs
}

func checkStatic(build func() *prog.Program, cfg Config, ref *reference, opt Options) []Divergence {
	name := cfg.Name()
	pr := build()
	if cfg.Alloc {
		if _, err := regalloc.Allocate(pr); err != nil {
			return []Divergence{{Config: name, Kind: "error", Detail: fmt.Sprintf("regalloc: %v", err)}}
		}
	}
	if err := profile.Annotate(pr); err != nil {
		return []Divergence{{Config: name, Kind: "error", Detail: fmt.Sprintf("profile: %v", err)}}
	}
	sp, err := core.Schedule(pr, cfg.Model, cfg.Opts)
	if err != nil {
		return []Divergence{{Config: name, Kind: "error", Detail: fmt.Sprintf("schedule: %v", err)}}
	}
	if cfg.ViaArtifact {
		// Round-trip the schedule through the binary artifact codec: what
		// executes is what a warm start would decode from disk or a peer.
		data, err := artifact.EncodeSchedProgram(sp)
		if err != nil {
			return []Divergence{{Config: name, Kind: "error", Detail: fmt.Sprintf("artifact encode: %v", err)}}
		}
		if sp, err = artifact.DecodeSchedProgram(data); err != nil {
			return []Divergence{{Config: name, Kind: "error", Detail: fmt.Sprintf("artifact decode: %v", err)}}
		}
	}

	var divs []Divergence
	var stores []storeEvent
	leaks := 0
	ecfg := sim.ExecConfig{
		Engine: cfg.Engine,
		Inject: opt.Inject,
		Mem:    cfg.Mem,
		OnStore: func(addr uint32, size int, val uint32) {
			stores = append(stores, storeEvent{addr, size, val})
		},
		OnSquash: func(info sim.SquashInfo) {
			if info.Leaked > 0 {
				leaks++
				if leaks == 1 { // report the first, count the rest
					divs = append(divs, Divergence{Config: name, Kind: "squash-leak", Detail: fmt.Sprintf(
						"branch %d squash left %d speculative entries outstanding",
						info.BranchID, info.Leaked)})
				}
			}
		},
	}
	var res *sim.ExecResult
	if cfg.Batch {
		var batchDivs []Divergence
		res, err, batchDivs = execBatched(sp, ecfg, name)
		divs = append(divs, batchDivs...)
	} else {
		res, err = sim.Exec(sp, ecfg)
	}
	if err != nil {
		divs = append(divs, Divergence{Config: name, Kind: "error", Detail: fmt.Sprintf("exec: %v", err)})
		return divs
	}
	divs = append(divs, compareRun(name, ref, res.Out, res.MemHash, stores)...)
	return divs
}

// execBatched runs the configuration as lane 0 of a lockstep ExecBatch,
// flanked by companion lanes (perfect memory and a tiny blocking
// hierarchy) so the lockstep loop genuinely interleaves lanes in
// different states, and asserts lane 0 is byte-identical to a
// sequential Exec of the same configuration.
func execBatched(sp *machine.SchedProgram, ecfg sim.ExecConfig, name string) (*sim.ExecResult, error, []Divergence) {
	tiny := memhier.SingleLevel(4, 1, 8, 20)
	batch := []sim.ExecConfig{
		ecfg,
		{Engine: ecfg.Engine, Inject: ecfg.Inject},
		{Engine: ecfg.Engine, Inject: ecfg.Inject, Mem: &tiny},
	}
	results, errs := sim.ExecBatch(sp, batch)
	res, err := results[0], errs[0]
	solo, soloErr := sim.Exec(sp, sim.ExecConfig{Engine: ecfg.Engine, Inject: ecfg.Inject, Mem: ecfg.Mem})

	var divs []Divergence
	switch {
	case (err == nil) != (soloErr == nil):
		divs = append(divs, Divergence{Config: name, Kind: "batch-lane",
			Detail: fmt.Sprintf("batch lane error %v, solo Exec error %v", err, soloErr)})
	case err == nil:
		if d := compareExecResults(res, solo); d != "" {
			divs = append(divs, Divergence{Config: name, Kind: "batch-lane",
				Detail: "batch lane diverges from solo Exec: " + d})
		}
	}
	return res, err, divs
}

// compareExecResults diffs every architectural and timing observable of
// two runs of the same configuration; "" means byte-identical.
func compareExecResults(batch, solo *sim.ExecResult) string {
	if d := compareOut(solo.Out, batch.Out); d != "" {
		return d
	}
	if batch.MemHash != solo.MemHash {
		return "final memory state differs"
	}
	type pair struct {
		name        string
		batch, solo int64
	}
	for _, p := range []pair{
		{"cycles", batch.Cycles, solo.Cycles},
		{"insts", batch.Insts, solo.Insts},
		{"squashed", batch.Squashed, solo.Squashed},
		{"boosted", batch.BoostedExec, solo.BoostedExec},
		{"branches", batch.Branches, solo.Branches},
		{"correct", batch.Correct, solo.Correct},
		{"recoveries", batch.Recoveries, solo.Recoveries},
		{"stalls", batch.Stalls, solo.Stalls},
		{"mem-stalls", batch.MemStalls, solo.MemStalls},
		{"boosted-mem-stalls", batch.BoostedMemStalls, solo.BoostedMemStalls},
		{"squashed-mem-stalls", batch.SquashedMemStalls, solo.SquashedMemStalls},
	} {
		if p.batch != p.solo {
			return fmt.Sprintf("%s = %d, solo %d", p.name, p.batch, p.solo)
		}
	}
	if (batch.Fault == nil) != (solo.Fault == nil) {
		return fmt.Sprintf("fault %v, solo %v", batch.Fault, solo.Fault)
	}
	return ""
}

func checkDynamic(build func() *prog.Program, cfg Config, ref *reference) []Divergence {
	name := cfg.Name()
	pr := build()
	if _, err := regalloc.Allocate(pr); err != nil {
		return []Divergence{{Config: name, Kind: "error", Detail: fmt.Sprintf("regalloc: %v", err)}}
	}
	dc := dynsched.Default()
	dc.Renaming = cfg.Renaming
	dc.Mem = cfg.Mem
	res, err := dynsched.Simulate(pr, dc)
	if err != nil {
		return []Divergence{{Config: name, Kind: "error", Detail: fmt.Sprintf("simulate: %v", err)}}
	}
	// The dynamic machine is trace-driven off the reference interpreter,
	// so its store stream is the reference's by construction; compare the
	// end-to-end observables.
	return compareRun(name, ref, res.Out, res.MemHash, nil)
}

// compareRun checks output, final memory and (when captured) the committed
// architectural store stream against the reference.
func compareRun(name string, ref *reference, out []uint32, memh uint64, stores []storeEvent) []Divergence {
	var divs []Divergence
	if d := compareOut(ref.out, out); d != "" {
		divs = append(divs, Divergence{Config: name, Kind: "output", Detail: d})
	}
	if memh != ref.memh {
		divs = append(divs, Divergence{Config: name, Kind: "memory", Detail: "final memory state differs from reference"})
	}
	if stores != nil {
		if d := compareStores(ref.stores, stores); d != "" {
			divs = append(divs, Divergence{Config: name, Kind: "store-stream", Detail: d})
		}
	}
	return divs
}

func compareOut(want, got []uint32) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%d output values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Sprintf("out[%d] = %d, want %d", i, int32(got[i]), int32(want[i]))
		}
	}
	return ""
}

// compareStores checks that the committed store stream is byte-for-byte
// the reference's program-order store stream. Boosted stores commit in
// buffer (execution) order at branch commit, and the scheduler never
// reorders stores with respect to each other (memory output dependences
// are always honored), so architectural memory writes must occur in
// exactly the sequential order.
func compareStores(want, got []storeEvent) string {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			return fmt.Sprintf("store[%d] = %d bytes @%#x val %#x, want %d bytes @%#x val %#x",
				i, got[i].size, got[i].addr, got[i].val, want[i].size, want[i].addr, want[i].val)
		}
	}
	if len(got) != len(want) {
		return fmt.Sprintf("%d architectural stores, want %d", len(got), len(want))
	}
	return ""
}
