// Package unroll implements a natural-loop unroller, the paper's §4.3.2
// extension experiment: "We have performed some preliminary experiments
// with a loop unroller which unrolls all the loops in a program module.
// Though performance did increase slightly, the improvement was well
// below what we expected."
//
// Unrolling duplicates a loop body and redirects the original body's back
// edges into the copy (and the copy's back edges to the original header),
// so one trip around the rotated structure executes two iterations. Exits
// are preserved exactly: each copy's exit edges target the original exit
// blocks, so iteration counts that are odd simply leave from the middle.
// The transformation is purely structural — no conditions change — and
// therefore preserves semantics by construction.
package unroll

import (
	"boosting/internal/dataflow"
	"boosting/internal/isa"
	"boosting/internal/prog"
)

// Options bounds the transformation.
type Options struct {
	// Factor is the unroll factor (total copies of the body, ≥ 2).
	// Only 2 is currently supported.
	Factor int
	// MaxBodyBlocks skips loops with larger bodies (0 = default 12).
	MaxBodyBlocks int
	// MaxBodyInsts skips loops with more instructions (0 = default 64).
	MaxBodyInsts int
}

// Stats reports what was unrolled.
type Stats struct {
	// LoopsUnrolled counts loops transformed across all procedures.
	LoopsUnrolled int
	// LoopsSkipped counts loops left alone (too big, calls inside,
	// or not innermost).
	LoopsSkipped int
}

// Program unrolls the innermost loops of every procedure in place.
func Program(pr *prog.Program, opts Options) (*Stats, error) {
	if opts.Factor == 0 {
		opts.Factor = 2
	}
	if opts.MaxBodyBlocks == 0 {
		opts.MaxBodyBlocks = 12
	}
	if opts.MaxBodyInsts == 0 {
		opts.MaxBodyInsts = 64
	}
	st := &Stats{}
	for _, p := range pr.ProcList() {
		if err := proc(pr, p, opts, st); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func proc(pr *prog.Program, p *prog.Proc, opts Options, st *Stats) error {
	info := dataflow.Analyze(p)
	loops := dataflow.FindLoops(info)

	// Innermost loops only: loops that contain no other loop's header.
	headers := map[*prog.Block]bool{}
	for _, l := range loops {
		headers[l.Header] = true
	}
	for _, l := range loops {
		if !innermost(l, headers) || !unrollable(l, opts) {
			st.LoopsSkipped++
			continue
		}
		unrollOnce(pr, p, l)
		st.LoopsUnrolled++
	}
	p.RecomputePreds()
	return prog.Verify(p)
}

func innermost(l *dataflow.Loop, headers map[*prog.Block]bool) bool {
	for b := range l.Blocks {
		if b != l.Header && headers[b] {
			return false
		}
	}
	return true
}

func unrollable(l *dataflow.Loop, opts Options) bool {
	if len(l.Blocks) > opts.MaxBodyBlocks {
		return false
	}
	insts := 0
	for b := range l.Blocks {
		insts += len(b.Insts)
		if t := b.Terminator(); t != nil && (t.Op == isa.JAL || t.Op == isa.JR) {
			return false // calls and returns stay un-unrolled
		}
	}
	return insts <= opts.MaxBodyInsts
}

// unrollOnce duplicates the loop body once (factor 2).
func unrollOnce(pr *prog.Program, p *prog.Proc, l *dataflow.Loop) {
	clone := map[*prog.Block]*prog.Block{}
	// Deterministic body order: by block ID.
	var body []*prog.Block
	for b := range l.Blocks {
		body = append(body, b)
	}
	sortByID(body)

	for _, b := range body {
		nb := p.NewBlockAfter(b.Label + ".u2")
		nb.Insts = make([]isa.Inst, len(b.Insts))
		for i := range b.Insts {
			nb.Insts[i] = b.Insts[i]
			// Fresh identities: recovery code and the BTB key on
			// instruction IDs, which must stay unique.
			nb.Insts[i].ID = pr.NextInstID()
		}
		clone[b] = nb
	}

	header := l.Header
	for _, b := range body {
		nb := clone[b]
		nb.Succs = make([]*prog.Block, len(b.Succs))
		for i, s := range b.Succs {
			switch {
			case s == header:
				nb.Succs[i] = header // copy's back edge → original header
			case l.Blocks[s]:
				nb.Succs[i] = clone[s]
			default:
				nb.Succs[i] = s // loop exit
			}
		}
	}
	// Original body's back edges now enter the copy's header.
	for _, b := range body {
		for i, s := range b.Succs {
			if s == header && b != clone[b] {
				b.Succs[i] = clone[header]
			}
		}
	}
}

func sortByID(bs []*prog.Block) {
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && bs[j].ID < bs[j-1].ID; j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}
