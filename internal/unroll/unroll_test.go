package unroll

import (
	"testing"

	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/sim"
	"boosting/internal/testgen"
	"boosting/internal/workloads"
)

func sameOut(t *testing.T, a, b *sim.Result, label string) {
	t.Helper()
	if len(a.Out) != len(b.Out) || a.MemHash != b.MemHash {
		t.Fatalf("%s: behavior differs (lens %d/%d, memhash eq=%v)",
			label, len(a.Out), len(b.Out), a.MemHash == b.MemHash)
	}
	for i := range a.Out {
		if a.Out[i] != b.Out[i] {
			t.Fatalf("%s: out[%d] %d vs %d", label, i, a.Out[i], b.Out[i])
		}
	}
}

func TestUnrollPreservesSemanticsWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		orig, err := sim.Run(w.BuildTest(), sim.RefConfig{})
		if err != nil {
			t.Fatal(err)
		}
		pr := w.BuildTest()
		st, err := Program(pr, Options{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		got, err := sim.Run(pr, sim.RefConfig{})
		if err != nil {
			t.Fatalf("%s after unroll: %v", w.Name, err)
		}
		sameOut(t, orig, got, w.Name)
		if w.Name == "grep" && st.LoopsUnrolled == 0 {
			t.Error("grep's scan loop should be unrollable")
		}
	}
}

func TestUnrollPreservesSemanticsRandom(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		build := func() *prog.Program { return testgen.Random(seed, testgen.Config{}) }
		orig, err := sim.Run(build(), sim.RefConfig{})
		if err != nil {
			t.Fatal(err)
		}
		pr := build()
		if _, err := Program(pr, Options{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := sim.Run(pr, sim.RefConfig{})
		if err != nil {
			t.Fatalf("seed %d after unroll: %v", seed, err)
		}
		sameOut(t, orig, got, "random")
	}
}

func TestUnrollGrowsTheCFG(t *testing.T) {
	w, _ := workloads.ByName("grep")
	pr := w.BuildTest()
	before := len(pr.Main().Blocks)
	st, err := Program(pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.LoopsUnrolled == 0 {
		t.Fatal("nothing unrolled")
	}
	if after := len(pr.Main().Blocks); after <= before {
		t.Errorf("blocks %d → %d; expected growth", before, after)
	}
}

func TestUnrollSkipsCallLoops(t *testing.T) {
	w, _ := workloads.ByName("awk") // per-line loop contains a call
	pr := w.BuildTest()
	st, err := Program(pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.LoopsSkipped == 0 {
		t.Error("awk's call-bearing loop should be skipped")
	}
	// Still correct.
	orig, _ := sim.Run(w.BuildTest(), sim.RefConfig{})
	got, err := sim.Run(pr, sim.RefConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sameOut(t, orig, got, "awk")
}

// TestUnrolledSchedulesStayCorrect: the full pipeline (unroll → profile →
// schedule → boosted execution) remains semantically equivalent on every
// machine model.
func TestUnrolledSchedulesStayCorrect(t *testing.T) {
	models := []*machine.Model{
		machine.Scalar(), machine.NoBoost(), machine.Squashing(),
		machine.Boost1(), machine.MinBoost3(), machine.Boost7(),
	}
	for _, w := range []string{"grep", "espresso", "xlisp"} {
		wl, _ := workloads.ByName(w)
		ref, err := sim.Run(wl.BuildTest(), sim.RefConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range models {
			train := wl.BuildTrain()
			test := wl.BuildTest()
			if _, err := Program(train, Options{}); err != nil {
				t.Fatal(err)
			}
			if _, err := Program(test, Options{}); err != nil {
				t.Fatal(err)
			}
			if err := profile.Annotate(train); err != nil {
				t.Fatal(err)
			}
			if err := profile.Transfer(train, test); err != nil {
				t.Fatalf("%s: unroll must be deterministic for profile transfer: %v", w, err)
			}
			sp, err := core.Schedule(test, m, core.Options{})
			if err != nil {
				t.Fatalf("%s on %s: %v", w, m, err)
			}
			res, err := sim.Exec(sp, sim.ExecConfig{})
			if err != nil {
				t.Fatalf("%s on %s: %v", w, m, err)
			}
			if len(res.Out) != len(ref.Out) || res.MemHash != ref.MemHash {
				t.Fatalf("%s on %s: unrolled schedule diverges", w, m)
			}
		}
	}
}
