// Package hwcost models the hardware cost of boosting support, following
// the paper's §4.3.2 discussion: "The decoder for a Boost1 machine with 32
// sequential registers contains only 33% more transistors than a normal
// decoder for a register file with 64 registers (50% more transistors are
// required for a MinBoost3 implementation)," and the register file access
// path grows by approximately one gate delay.
//
// The model counts decoder transistors for NOR-style address decoders and
// the extra per-register shadow logic of Figure 7 (one counter, one valid
// bit, one "which register is shadow" flip-flop per pair). It is an
// analytic estimate, not a layout: its purpose is to rank configurations
// and reproduce the paper's relative numbers.
package hwcost

import (
	"fmt"
	"math"
)

// Decoder cost model: an N-entry decoder is built from N AND/NOR gates of
// log2(N) inputs each (one per word line); a k-input static CMOS gate
// costs 2k transistors.
func decoderTransistors(words int) int {
	bits := int(math.Ceil(math.Log2(float64(words))))
	return words * 2 * bits
}

// Cost describes one register-file configuration.
type Cost struct {
	Name string
	// Registers is the number of architecturally addressable registers.
	Registers int
	// ShadowPerReg is the number of shadow locations per register.
	ShadowPerReg int
	// DecoderTransistors counts the register file address decoders.
	DecoderTransistors int
	// ShadowLogicTransistors counts counters, valid bits and swap gates.
	ShadowLogicTransistors int
	// ExtraAccessGateDelays is the register read-path penalty in gate
	// delays relative to a plain register file.
	ExtraAccessGateDelays int
}

// Total returns the combined transistor estimate.
func (c Cost) Total() int { return c.DecoderTransistors + c.ShadowLogicTransistors }

const (
	// Per-register shadow bookkeeping in the Figure 7 scheme: a T
	// flip-flop to "pong" the pair (~12 transistors), a valid bit (~6),
	// and an AND/OR gate pair on the commit path (~8).
	swapLogicPerReg = 12 + 6 + 8
	// Each counter bit costs a flip-flop plus decrement logic.
	counterBitPerReg = 12 + 6
)

// PlainFile returns the cost of a conventional file with n registers.
func PlainFile(name string, n int) Cost {
	return Cost{
		Name:               name,
		Registers:          n,
		DecoderTransistors: decoderTransistors(n),
	}
}

// BoostFile returns the cost of a boosted register file with n sequential
// registers and maxLevel levels sharing a single shadow location per
// register (the Option 2 hardware of Figure 7). With maxLevel == 1 the
// counter degenerates to a valid bit and the pong flip-flop (the Boost1
// hardware).
//
// Decoder structure per register pair: a log2(n)-input decode gate drives
// two word lines; each word line is qualified by a select gate combining
// the decode, the instruction's boost/sequential bit and the pair's pong
// flip-flop ("a single gate to the register file access path"), plus
// valid/commit steering. For multi-level counters the select additionally
// matches the counter value. Storage (counter/valid flip-flops) is
// accounted separately in ShadowLogicTransistors.
func BoostFile(name string, n, maxLevel int) Cost {
	bits := int(math.Ceil(math.Log2(float64(n))))
	perPair := 2*bits + // decode gate
		2*6 + // two 3-input word-line select gates
		10 // valid/commit steering
	counterBits := 0
	if maxLevel > 1 {
		counterBits = int(math.Ceil(math.Log2(float64(maxLevel + 1))))
		perPair += 2 * counterBits // counter-match gating on the selects
	}
	return Cost{
		Name:                   name,
		Registers:              n,
		ShadowPerReg:           1,
		DecoderTransistors:     n * perPair,
		ShadowLogicTransistors: n * (swapLogicPerReg + counterBits*counterBitPerReg),
		ExtraAccessGateDelays:  1,
	}
}

// FullShadowFile returns the cost of the general multi-shadow scheme
// (§4.1): maxLevel+1 physical registers per sequential register, each with
// a level counter.
func FullShadowFile(name string, n, maxLevel int) Cost {
	pool := maxLevel + 1
	counterBits := int(math.Ceil(math.Log2(float64(pool))))
	return Cost{
		Name:                   name,
		Registers:              n,
		ShadowPerReg:           maxLevel,
		DecoderTransistors:     decoderTransistors(n*pool) + n*pool*2,
		ShadowLogicTransistors: n * pool * (swapLogicPerReg + counterBits*counterBitPerReg),
		ExtraAccessGateDelays:  2,
	}
}

// Report compares the evaluated configurations the way §4.3.2 does:
// decoder growth is quoted relative to a plain 64-register decoder (the
// natural alternative use of the same storage).
type Report struct {
	Base64 Cost
	Boost1 Cost
	MinB3  Cost
	Boost7 Cost
	// DecoderGrowth1 and DecoderGrowth3 are the fractional decoder
	// transistor increases of Boost1/MinBoost3 over the 64-entry decoder.
	DecoderGrowth1 float64
	DecoderGrowth3 float64
}

// NewReport builds the comparison for 32 sequential registers.
func NewReport() Report {
	base := PlainFile("64-reg file", 64)
	b1 := BoostFile("Boost1", 32, 1)
	b3 := BoostFile("MinBoost3", 32, 3)
	b7 := FullShadowFile("Boost7", 32, 7)
	return Report{
		Base64:         base,
		Boost1:         b1,
		MinB3:          b3,
		Boost7:         b7,
		DecoderGrowth1: growth(b1, base),
		DecoderGrowth3: growth(b3, base),
	}
}

// growth compares decoder transistor counts, the paper's §4.3.2 metric.
func growth(c, base Cost) float64 {
	return float64(c.DecoderTransistors-base.DecoderTransistors) /
		float64(base.DecoderTransistors)
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf(
		"base 64-reg decoder: %d transistors\n"+
			"Boost1:    decoder+shadow %d (+%.0f%% vs 64-reg decoder), +%d gate delay\n"+
			"MinBoost3: decoder+shadow %d (+%.0f%% vs 64-reg decoder), +%d gate delay\n"+
			"Boost7:    decoder+shadow %d (full multi-shadow), +%d gate delays\n",
		r.Base64.DecoderTransistors,
		r.Boost1.Total(), 100*r.DecoderGrowth1, r.Boost1.ExtraAccessGateDelays,
		r.MinB3.Total(), 100*r.DecoderGrowth3, r.MinB3.ExtraAccessGateDelays,
		r.Boost7.Total(), r.Boost7.ExtraAccessGateDelays,
	)
}
