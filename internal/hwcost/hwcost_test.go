package hwcost

import (
	"strings"
	"testing"
)

func TestDecoderScaling(t *testing.T) {
	d32 := decoderTransistors(32)
	d64 := decoderTransistors(64)
	if d32 != 32*2*5 {
		t.Errorf("32-entry decoder = %d, want %d", d32, 32*2*5)
	}
	if d64 != 64*2*6 {
		t.Errorf("64-entry decoder = %d, want %d", d64, 64*2*6)
	}
	if d64 <= d32 {
		t.Error("bigger decoders must cost more")
	}
}

func TestReportShape(t *testing.T) {
	r := NewReport()
	// The paper: Boost1 decoder ≈ +33% over a 64-register decoder,
	// MinBoost3 ≈ +50%. Our analytic model should land in the same
	// neighborhood (between 20% and 60%) and preserve the ordering.
	if r.DecoderGrowth1 < 0.15 || r.DecoderGrowth1 > 0.60 {
		t.Errorf("Boost1 decoder growth %.2f outside the plausible band around the paper's 0.33",
			r.DecoderGrowth1)
	}
	if r.DecoderGrowth3 < r.DecoderGrowth1 {
		t.Error("MinBoost3 must cost more than Boost1")
	}
	if r.DecoderGrowth3 > 0.85 {
		t.Errorf("MinBoost3 decoder growth %.2f far beyond the paper's 0.50", r.DecoderGrowth3)
	}
	// Boost7's full shadow structures must dwarf both (the paper calls
	// this hardware "obviously unreasonable").
	if r.Boost7.Total() < 2*r.MinB3.Total() {
		t.Errorf("Boost7 (%d) should cost far more than MinBoost3 (%d)",
			r.Boost7.Total(), r.MinB3.Total())
	}
	// Access-path penalty: one gate delay for the single-shadow schemes.
	if r.Boost1.ExtraAccessGateDelays != 1 || r.MinB3.ExtraAccessGateDelays != 1 {
		t.Error("single-shadow schemes add exactly one gate to the access path")
	}
	if !strings.Contains(r.String(), "Boost1") {
		t.Error("report rendering broken")
	}
}

func TestCostTotals(t *testing.T) {
	c := BoostFile("x", 32, 3)
	if c.Total() != c.DecoderTransistors+c.ShadowLogicTransistors {
		t.Error("Total mismatch")
	}
	p := PlainFile("p", 32)
	if p.ShadowLogicTransistors != 0 || p.ExtraAccessGateDelays != 0 {
		t.Error("plain file must have no shadow costs")
	}
}
