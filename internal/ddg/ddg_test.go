package ddg

import (
	"testing"

	"boosting/internal/isa"
	"boosting/internal/prog"
)

// buildTrace assembles a single-block trace from instructions.
func buildTrace(insts ...isa.Inst) []*prog.Block {
	pr := prog.New()
	f := prog.NewBuilder(pr, "main")
	for _, in := range insts {
		switch {
		case isa.IsCondBranch(in.Op):
			// not used in these tests
		default:
			f.Cur().Insts = append(f.Cur().Insts, in)
		}
	}
	f.Halt()
	f.Finish()
	return []*prog.Block{pr.Main().Entry}
}

// edge looks up a dependence from node i to node j.
func edge(g *Graph, i, j int) *Edge {
	for _, e := range g.Nodes[i].Succs {
		if e.To == g.Nodes[j] {
			return e
		}
	}
	return nil
}

func TestRegisterDependences(t *testing.T) {
	g := Build(buildTrace(
		isa.Inst{Op: isa.ADDI, Rd: 1, Rs: 0, Imm: 5}, // 0: def r1
		isa.Inst{Op: isa.ADD, Rd: 2, Rs: 1, Rt: 1},   // 1: use r1, def r2
		isa.Inst{Op: isa.ADDI, Rd: 1, Rs: 0, Imm: 9}, // 2: redef r1
		isa.Inst{Op: isa.ADD, Rd: 2, Rs: 2, Rt: 1},   // 3: use r1,r2, redef r2
	), Options{})

	if e := edge(g, 0, 1); e == nil || e.Kind != DepTrue || e.Latency != 1 {
		t.Errorf("true dep 0→1: %+v", e)
	}
	if e := edge(g, 1, 2); e == nil || e.Kind != DepAnti || e.Latency != 0 {
		t.Errorf("anti dep 1→2 (use r1 before redef): %+v", e)
	}
	if e := edge(g, 0, 2); e == nil || e.Kind != DepOutput {
		t.Errorf("output dep 0→2: %+v", e)
	}
	if e := edge(g, 2, 3); e == nil || e.Kind != DepTrue {
		t.Errorf("true dep 2→3 through redefined r1: %+v", e)
	}
	if e := edge(g, 0, 3); e != nil && e.Kind == DepTrue {
		t.Error("stale def 0 must not feed 3 (r1 redefined at 2)")
	}
}

func TestLoadLatency(t *testing.T) {
	g := Build(buildTrace(
		isa.Inst{Op: isa.LW, Rd: 1, Rs: 2, Imm: 0},
		isa.Inst{Op: isa.ADD, Rd: 3, Rs: 1, Rt: 1},
	), Options{})
	if e := edge(g, 0, 1); e == nil || e.Latency != 2 {
		t.Errorf("load consumer latency: %+v", e)
	}
}

func TestMemoryDisambiguation(t *testing.T) {
	// Same base register, non-overlapping offsets: independent.
	g := Build(buildTrace(
		isa.Inst{Op: isa.SW, Rt: 1, Rs: 2, Imm: 0},
		isa.Inst{Op: isa.LW, Rd: 3, Rs: 2, Imm: 8},
	), Options{})
	if e := edge(g, 0, 1); e != nil {
		t.Errorf("disjoint accesses must not depend: %+v", e)
	}

	// Overlapping offsets: RAW memory dependence.
	g = Build(buildTrace(
		isa.Inst{Op: isa.SW, Rt: 1, Rs: 2, Imm: 0},
		isa.Inst{Op: isa.LW, Rd: 3, Rs: 2, Imm: 0},
	), Options{})
	if e := edge(g, 0, 1); e == nil || e.Kind != DepMem {
		t.Errorf("overlapping accesses must depend: %+v", e)
	}

	// Byte store into the middle of a word load: overlap.
	g = Build(buildTrace(
		isa.Inst{Op: isa.SB, Rt: 1, Rs: 2, Imm: 2},
		isa.Inst{Op: isa.LW, Rd: 3, Rs: 2, Imm: 0},
	), Options{})
	if e := edge(g, 0, 1); e == nil {
		t.Error("partially overlapping accesses must depend")
	}

	// Different base registers: conservatively dependent.
	g = Build(buildTrace(
		isa.Inst{Op: isa.SW, Rt: 1, Rs: 2, Imm: 0},
		isa.Inst{Op: isa.LW, Rd: 3, Rs: 4, Imm: 64},
	), Options{})
	if e := edge(g, 0, 1); e == nil {
		t.Error("unknown bases must be conservatively dependent")
	}

	// Base register redefined between the accesses: same base+offset no
	// longer proves independence.
	g = Build(buildTrace(
		isa.Inst{Op: isa.SW, Rt: 1, Rs: 2, Imm: 0},
		isa.Inst{Op: isa.ADDI, Rd: 2, Rs: 2, Imm: 4},
		isa.Inst{Op: isa.LW, Rd: 3, Rs: 2, Imm: 8},
	), Options{})
	if e := edge(g, 0, 2); e == nil {
		t.Error("base redefinition must kill the disambiguation")
	}
}

func TestNoDisambiguationOption(t *testing.T) {
	g := Build(buildTrace(
		isa.Inst{Op: isa.SW, Rt: 1, Rs: 2, Imm: 0},
		isa.Inst{Op: isa.LW, Rd: 3, Rs: 2, Imm: 8},
	), Options{NoDisambiguation: true})
	if e := edge(g, 0, 1); e == nil {
		t.Error("NoDisambiguation must make every load depend on every store")
	}
}

func TestStoreOrdering(t *testing.T) {
	g := Build(buildTrace(
		isa.Inst{Op: isa.LW, Rd: 1, Rs: 2, Imm: 0}, // load
		isa.Inst{Op: isa.SW, Rt: 3, Rs: 2, Imm: 0}, // WAR with load
		isa.Inst{Op: isa.SW, Rt: 4, Rs: 2, Imm: 0}, // WAW with store
	), Options{})
	if e := edge(g, 0, 1); e == nil || e.Kind != DepMem {
		t.Errorf("WAR memory dep: %+v", e)
	}
	if e := edge(g, 1, 2); e == nil || e.Kind != DepMem {
		t.Errorf("WAW memory dep: %+v", e)
	}
}

func TestOutOrdering(t *testing.T) {
	g := Build(buildTrace(
		isa.Inst{Op: isa.OUT, Rs: 1},
		isa.Inst{Op: isa.OUT, Rs: 2},
	), Options{})
	if e := edge(g, 0, 1); e == nil || e.Kind != DepOrder {
		t.Errorf("OUT stream ordering: %+v", e)
	}
}

func TestCallDependences(t *testing.T) {
	pr := prog.New()
	cal := prog.NewBuilder(pr, "leaf")
	cal.Ret()
	cal.Finish()
	f := prog.NewBuilder(pr, "main")
	a := f.Reg()
	f.Imm(isa.ADDI, isa.A0, isa.R0, 1) // 0: def A0
	f.Store(isa.SW, a, isa.SP, 0)      // 1: store
	f.Call("leaf")                     // 2: call
	f.Move(a, isa.RV)                  // 3 (in continuation; not in trace)
	f.Halt()
	f.Finish()
	trace := []*prog.Block{pr.Main().Entry}
	g := Build(trace, Options{})

	// JAL must depend on the argument setup (true dep through A0).
	if e := edge(g, 0, 2); e == nil || e.Kind != DepTrue {
		t.Errorf("call must depend on its argument setup: %+v", e)
	}
	// JAL must be ordered after memory activity.
	if e := edge(g, 1, 2); e == nil {
		t.Error("call must be ordered after stores")
	}
}

func TestTerminatorHelper(t *testing.T) {
	pr := prog.New()
	f := prog.NewBuilder(pr, "main")
	f.Halt()
	f.Finish()
	g := Build([]*prog.Block{pr.Main().Entry}, Options{})
	if g.Terminator(0) == nil || g.Terminator(0).Inst.Op != isa.HALT {
		t.Error("terminator lookup broken")
	}
	if !g.Terminator(0).IsTerm {
		t.Error("IsTerm not set")
	}
}

func TestDepKindStrings(t *testing.T) {
	for k, want := range map[DepKind]string{
		DepTrue: "true", DepAnti: "anti", DepOutput: "output",
		DepMem: "mem", DepOrder: "order",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
