// Package ddg builds the data-dependence graph for a trace of basic
// blocks (paper §3.2.1: "During the construction of the trace, two data
// structures are built. One is a simple data dependence graph of all the
// instructions in the trace...").
//
// The graph covers register true/anti/output dependences, memory
// dependences (with a simple base+offset disambiguator), and ordering
// edges for side-effecting instructions. Control dependences are *not*
// represented — that is the whole point of boosting: "No edges are added
// to our data dependence graph to enforce control dependence constraints."
// Branch order is preserved structurally because branches never move out
// of their blocks.
package ddg

import (
	"fmt"

	"boosting/internal/isa"
	"boosting/internal/prog"
)

// DepKind classifies a dependence edge.
type DepKind uint8

const (
	// DepTrue is a read-after-write register dependence.
	DepTrue DepKind = iota
	// DepAnti is a write-after-read register dependence.
	DepAnti
	// DepOutput is a write-after-write register dependence.
	DepOutput
	// DepMem is a memory dependence (any of RAW/WAR/WAW through memory).
	DepMem
	// DepOrder is an ordering edge for side effects (OUT streams, calls,
	// and everything pinned around a barrier).
	DepOrder
)

// String names the dependence kind.
func (k DepKind) String() string {
	switch k {
	case DepTrue:
		return "true"
	case DepAnti:
		return "anti"
	case DepOutput:
		return "output"
	case DepMem:
		return "mem"
	case DepOrder:
		return "order"
	}
	return "?"
}

// Edge is a dependence from an earlier instruction to a later one.
type Edge struct {
	To      *Node
	From    *Node
	Kind    DepKind
	Latency int
}

// Node is one instruction in the trace.
type Node struct {
	// Inst is the scheduler's working copy of the instruction; Boost is
	// filled in during code motion.
	Inst isa.Inst
	// Block is the block the instruction originally lives in.
	Block *prog.Block
	// BlockIdx is the block's position in the trace (0-based).
	BlockIdx int
	// InstIdx is the instruction's original index within its block.
	InstIdx int
	// Seq is the linearized position in the trace (construction order);
	// it defines "original program order" along the trace.
	Seq int
	// IsTerm marks the block terminator (branch/jump/call/ret/halt).
	IsTerm bool

	// Preds and Succs are incoming and outgoing dependence edges.
	Preds []*Edge
	Succs []*Edge
}

// String renders the node for diagnostics.
func (n *Node) String() string {
	return fmt.Sprintf("[%d B%d.%d %s]", n.Seq, n.Block.ID, n.InstIdx, n.Inst.String())
}

// Graph is the dependence graph of one trace.
type Graph struct {
	Nodes []*Node
	// ByBlock groups nodes by trace block index, in original order.
	ByBlock [][]*Node
}

// Options tunes graph construction.
type Options struct {
	// NoDisambiguation disables the base+offset memory disambiguator,
	// making every load depend on every earlier store (ablation knob;
	// the paper's conclusion calls for "better memory disambiguation").
	NoDisambiguation bool
}

// addEdge links from → to with the given kind and latency, skipping
// duplicates of identical kind.
func addEdge(from, to *Node, kind DepKind, latency int) {
	for _, e := range from.Succs {
		if e.To == to && e.Kind == kind {
			if latency > e.Latency {
				e.Latency = latency
			}
			return
		}
	}
	e := &Edge{From: from, To: to, Kind: kind, Latency: latency}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// memRef describes a memory access for disambiguation: address = base
// register version + constant offset.
type memRef struct {
	baseVer int // version number of the base register at access time
	base    isa.Reg
	off     int32
	size    int32
}

// overlaps conservatively decides whether two references may touch the
// same bytes. Identical base version ⇒ compare offset ranges exactly;
// otherwise assume overlap.
func (a memRef) overlaps(b memRef) bool {
	if a.base == b.base && a.baseVer == b.baseVer {
		return a.off < b.off+b.size && b.off < a.off+a.size
	}
	return true
}

// Build constructs the dependence graph for the trace.
func Build(trace []*prog.Block, opts Options) *Graph {
	g := &Graph{ByBlock: make([][]*Node, len(trace))}

	lastDef := map[isa.Reg]*Node{}
	lastUses := map[isa.Reg][]*Node{}
	regVer := map[isa.Reg]int{}

	var stores []*Node
	var storeRefs []memRef
	var loads []*Node
	var loadRefs []memRef
	var lastOut *Node
	var lastBarrier *Node // JAL: everything is ordered around it

	var uses, defs []isa.Reg
	seq := 0
	for bi, b := range trace {
		for ii := range b.Insts {
			in := b.Insts[ii]
			n := &Node{
				Inst:     in,
				Block:    b,
				BlockIdx: bi,
				InstIdx:  ii,
				Seq:      seq,
				IsTerm:   ii == len(b.Insts)-1 && isa.IsControl(in.Op),
			}
			seq++
			g.Nodes = append(g.Nodes, n)
			g.ByBlock[bi] = append(g.ByBlock[bi], n)

			// Barrier ordering: nothing moves across a call.
			if lastBarrier != nil {
				addEdge(lastBarrier, n, DepOrder, 1)
			}

			// Register dependences. Calls implicitly read the argument
			// registers and the stack pointer and define the linkage
			// registers (the Uses/Defs accessors list only explicit
			// operands).
			uses = n.Inst.Uses(uses[:0])
			if in.Op == isa.JAL {
				uses = append(uses, isa.A0, isa.A1, isa.A2, isa.A3, isa.SP)
			}
			for _, r := range uses {
				if r == isa.R0 {
					continue
				}
				if d := lastDef[r]; d != nil {
					addEdge(d, n, DepTrue, isa.Latency(d.Inst.Op))
				}
				lastUses[r] = append(lastUses[r], n)
			}
			defs = n.Inst.Defs(defs[:0])
			if in.Op == isa.JAL {
				defs = append(defs, isa.RV)
			}
			for _, r := range defs {
				if r == isa.R0 {
					continue
				}
				if d := lastDef[r]; d != nil {
					addEdge(d, n, DepOutput, 1)
				}
				for _, u := range lastUses[r] {
					if u != n {
						addEdge(u, n, DepAnti, 0)
					}
				}
				lastDef[r] = n
				lastUses[r] = lastUses[r][:0]
				regVer[r]++
			}

			// Memory dependences.
			if isa.IsMem(in.Op) {
				size, _ := memSize(in.Op)
				ref := memRef{base: in.Rs, baseVer: regVer[in.Rs], off: in.Imm, size: size}
				if opts.NoDisambiguation {
					ref = memRef{base: -1, baseVer: -1} // always overlaps
				}
				if isa.IsLoad(in.Op) {
					for i, s := range stores {
						if ref.overlaps(storeRefs[i]) || opts.NoDisambiguation {
							addEdge(s, n, DepMem, 1)
						}
					}
					loads = append(loads, n)
					loadRefs = append(loadRefs, ref)
				} else {
					for i, s := range stores {
						if ref.overlaps(storeRefs[i]) || opts.NoDisambiguation {
							addEdge(s, n, DepMem, 1)
						}
					}
					for i, l := range loads {
						if ref.overlaps(loadRefs[i]) || opts.NoDisambiguation {
							addEdge(l, n, DepMem, 1)
						}
					}
					stores = append(stores, n)
					storeRefs = append(storeRefs, ref)
				}
			}

			// Observable output stream stays ordered.
			if in.Op == isa.OUT {
				if lastOut != nil {
					addEdge(lastOut, n, DepOrder, 1)
				}
				lastOut = n
			}

			// Calls and returns barrier everything that follows; they also
			// depend on all prior memory and output activity.
			if in.Op == isa.JAL || in.Op == isa.JR || in.Op == isa.HALT {
				for _, s := range stores {
					addEdge(s, n, DepOrder, 1)
				}
				for _, l := range loads {
					addEdge(l, n, DepOrder, 1)
				}
				if lastOut != nil && lastOut != n {
					addEdge(lastOut, n, DepOrder, 1)
				}
				lastBarrier = n
				// Calls clobber memory: later loads/stores must not move
				// above them; reset tracking so subsequent memory ops
				// depend on the barrier (via the lastBarrier edge).
				stores = stores[:0]
				storeRefs = storeRefs[:0]
				loads = loads[:0]
				loadRefs = loadRefs[:0]
			}
		}
	}
	return g
}

func memSize(op isa.Op) (int32, bool) {
	switch op {
	case isa.LW, isa.SW:
		return 4, true
	case isa.LH, isa.LHU, isa.SH:
		return 2, true
	default:
		return 1, true
	}
}

// Terminator returns the terminator node of trace block bi, or nil.
func (g *Graph) Terminator(bi int) *Node {
	ns := g.ByBlock[bi]
	if len(ns) == 0 {
		return nil
	}
	if last := ns[len(ns)-1]; last.IsTerm {
		return last
	}
	return nil
}
