package dynsched

import (
	"testing"

	"boosting/internal/isa"
	"boosting/internal/memhier"
	"boosting/internal/prog"
	"boosting/internal/sim"
	"boosting/internal/testgen"
)

// buildLoop builds a steady countdown loop with some ILP in the body.
func buildLoop(n int32) *prog.Program {
	pr := prog.New()
	arr := pr.Words(1, 2, 3, 4, 5, 6, 7, 8)
	f := prog.NewBuilder(pr, "main")
	loop := f.Block("loop")
	done := f.Block("done")
	i, sum, base := f.Reg(), f.Reg(), f.Reg()
	a, b, c := f.Reg(), f.Reg(), f.Reg()
	f.Li(i, n)
	f.Li(sum, 0)
	f.La(base, arr)
	f.Goto(loop)
	f.Enter(loop)
	f.Load(isa.LW, a, base, 0)
	f.Load(isa.LW, b, base, 4)
	f.ALU(isa.ADD, c, a, b)
	f.ALU(isa.ADD, sum, sum, c)
	f.Imm(isa.ADDI, i, i, -1)
	f.Branch(isa.BGTZ, i, isa.R0, loop, done)
	f.Enter(done)
	f.Out(sum)
	f.Halt()
	f.Finish()
	return pr
}

func TestSimulateBasics(t *testing.T) {
	pr := buildLoop(200)
	ref, err := sim.Run(buildLoop(200), sim.RefConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(pr, Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts != ref.Insts {
		t.Errorf("dispatched %d instructions, reference executed %d", res.Insts, ref.Insts)
	}
	// Fetch width 2 bounds throughput.
	if res.Cycles < res.Insts/2 {
		t.Errorf("cycles %d below the fetch-width bound %d", res.Cycles, res.Insts/2)
	}
	// An out-of-order 2-wide machine must beat 1 IPC on this loop.
	if res.Cycles >= res.Insts {
		t.Errorf("dynamic scheduler achieves IPC ≤ 1 (%d cycles for %d insts)", res.Cycles, res.Insts)
	}
	if len(res.Out) != 1 || res.Out[0] != 3*200 {
		t.Errorf("functional result wrong: %v", res.Out)
	}
}

func TestBTBLearnsLoop(t *testing.T) {
	pr := buildLoop(500)
	res, err := Simulate(pr, Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Branches < 500 {
		t.Fatalf("branches = %d", res.Branches)
	}
	// The 2-bit counter should mispredict only a handful of times on a
	// steady loop (warm-up and the final exit).
	if res.Mispredicts > 5 {
		t.Errorf("mispredicts = %d on a steady loop, want ≤ 5", res.Mispredicts)
	}
}

func TestRenamingHelps(t *testing.T) {
	// A loop with heavy register reuse: without renaming, WAW stalls.
	pr1 := buildLoop(300)
	pr2 := buildLoop(300)
	noRen, err := Simulate(pr1, Default())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.Renaming = true
	ren, err := Simulate(pr2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ren.Cycles > noRen.Cycles {
		t.Errorf("renaming (%d cycles) slower than no renaming (%d)", ren.Cycles, noRen.Cycles)
	}
}

func TestMispredictsCostCycles(t *testing.T) {
	// An alternating branch defeats the 2-bit counter.
	// Both variants execute identical instruction mixes (symmetric arms);
	// only branch predictability differs.
	build := func(predictable bool) *prog.Program {
		pr := prog.New()
		f := prog.NewBuilder(pr, "main")
		loop := f.Block("loop")
		arm1 := f.Block("arm1")
		arm2 := f.Block("arm2")
		next := f.Block("next")
		done := f.Block("done")
		i, sum, t := f.Reg(), f.Reg(), f.Reg()
		f.Li(i, 400)
		f.Li(sum, 0)
		f.Goto(loop)
		f.Enter(loop)
		if predictable {
			f.Imm(isa.ANDI, t, i, 2048) // always zero: never taken
		} else {
			f.Imm(isa.ANDI, t, i, 1) // alternates
		}
		f.Branch(isa.BGTZ, t, isa.R0, arm1, arm2)
		f.Enter(arm1)
		f.Imm(isa.ADDI, sum, sum, 3)
		f.Jump(next)
		f.Enter(arm2)
		f.Imm(isa.ADDI, sum, sum, 3)
		f.Goto(next)
		f.Enter(next)
		f.Imm(isa.ADDI, i, i, -1)
		f.Branch(isa.BGTZ, i, isa.R0, loop, done)
		f.Enter(done)
		f.Out(sum)
		f.Halt()
		f.Finish()
		return pr
	}
	good, err := Simulate(build(true), Default())
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Simulate(build(false), Default())
	if err != nil {
		t.Fatal(err)
	}
	if bad.Mispredicts <= good.Mispredicts {
		t.Fatalf("alternating branch mispredicts (%d) not worse than steady (%d)",
			bad.Mispredicts, good.Mispredicts)
	}
	// Per-instruction cost must be higher with mispredictions.
	goodCPI := float64(good.Cycles) / float64(good.Insts)
	badCPI := float64(bad.Cycles) / float64(bad.Insts)
	if badCPI <= goodCPI {
		t.Errorf("mispredictions did not cost cycles: CPI %f vs %f", badCPI, goodCPI)
	}
}

// TestSimulatePropertyRandom: the pipeline must terminate and dispatch
// exactly the dynamic instruction count on random programs, with and
// without renaming.
func TestSimulatePropertyRandom(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		build := func() *prog.Program {
			return testgen.Random(seed, testgen.Config{WithCalls: seed%2 == 0})
		}
		ref, err := sim.Run(build(), sim.RefConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for _, ren := range []bool{false, true} {
			cfg := Default()
			cfg.Renaming = ren
			res, err := Simulate(build(), cfg)
			if err != nil {
				t.Fatalf("seed %d ren=%v: %v", seed, ren, err)
			}
			if res.Insts != ref.Insts {
				t.Fatalf("seed %d ren=%v: %d dispatched, want %d", seed, ren, res.Insts, ref.Insts)
			}
			if res.Cycles <= 0 || res.Cycles >= 100*res.Insts+1000 {
				t.Fatalf("seed %d: implausible cycle count %d for %d insts", seed, res.Cycles, res.Insts)
			}
		}
	}
}

func TestBTBUnit(t *testing.T) {
	b := newBTB(4, 2)
	// Unknown branch predicts not-taken.
	if b.predictCond(100) {
		t.Error("cold BTB must predict not-taken")
	}
	// Train taken twice; counter reaches ≥ 2.
	b.updateCond(100, true)
	b.updateCond(100, true)
	if !b.predictCond(100) {
		t.Error("trained branch must predict taken")
	}
	// Hysteresis: one not-taken flips to weakly-taken, still predicts taken.
	b.updateCond(100, false)
	if !b.predictCond(100) {
		t.Error("2-bit counter must not flip after one contrary outcome")
	}
	b.updateCond(100, false)
	if b.predictCond(100) {
		t.Error("counter must flip after two contrary outcomes")
	}
	// Associativity: two PCs in the same set coexist.
	b.updateCond(200, true) // set 0 (200%4==0); 100%4==0 also set 0
	b.updateCond(200, true)
	b.updateCond(100, true)
	b.updateCond(100, true)
	if !b.predictCond(100) || !b.predictCond(200) {
		t.Error("two branches must coexist in a 2-way set")
	}
	// Eviction: a third PC in the set evicts LRU.
	b.updateCond(300, true)
	hits := 0
	for _, pc := range []int{100, 200, 300} {
		if _, _, hit := b.find(pc); hit {
			hits++
		}
	}
	if hits != 2 {
		t.Errorf("after eviction %d entries resident, want 2", hits)
	}
	// Indirect target prediction.
	if _, hit := b.predictTarget(404); hit {
		t.Error("cold target lookup must miss")
	}
	b.updateTarget(404, 17)
	if tgt, hit := b.predictTarget(404); !hit || tgt != 17 {
		t.Error("target prediction lost")
	}
}

func TestDataCacheSlowsTheMachine(t *testing.T) {
	cfgPerfect := Default()
	res1, err := Simulate(buildLoop(300), cfgPerfect)
	if err != nil {
		t.Fatal(err)
	}
	cfgCache := Default()
	mc := memhier.SingleLevel(2, 1, 16, 20)
	cfgCache.Mem = &mc
	res2, err := Simulate(buildLoop(300), cfgCache)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cycles <= res1.Cycles {
		t.Errorf("tiny cache should slow the machine: %d vs %d", res2.Cycles, res1.Cycles)
	}
	if res2.Out[0] != res1.Out[0] {
		t.Error("cache changed semantics")
	}
}

// TestROBSizeMatters: widening the reorder buffer must not slow the
// machine, and shrinking it to 2 entries must hurt a loop with ILP.
func TestROBSizeMatters(t *testing.T) {
	run := func(rob int) int64 {
		cfg := Default()
		cfg.ROBSize = rob
		res, err := Simulate(buildLoop(300), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	tiny, paper, big := run(2), run(16), run(64)
	if tiny <= paper {
		t.Errorf("2-entry ROB (%d cycles) should be slower than 16-entry (%d)", tiny, paper)
	}
	if big > paper {
		t.Errorf("64-entry ROB (%d cycles) should not be slower than 16-entry (%d)", big, paper)
	}
}
