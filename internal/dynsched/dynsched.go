// Package dynsched implements the paper's dynamically-scheduled
// superscalar comparison machine (§4.3.2): a trace-driven timing model of
// an out-of-order processor that is functionally equivalent to the base
// 2-issue superscalar.
//
// Parameters follow the paper: it "fetches and decodes two instructions
// per cycle. It uses a total of 30 reservation station locations and a
// 16-entry reorder buffer to implement out-of-order execution with
// speculation, and it uses a 2048-entry, 4-way set associative branch
// target buffer to predict branches. It has the same number of functional
// units as our statically-scheduled machine, but since the
// dynamically-scheduled machine uses reservation stations, it can issue up
// to 6 instructions per cycle."
//
// The lower/upper bars of Figure 9 correspond to Renaming=false/true:
// without register renaming at most one in-flight producer per
// architectural register is allowed (write-after-write stalls dispatch);
// with renaming, reservation stations carry tags and any number of defs
// may be in flight.
package dynsched

import (
	"fmt"
	"math/bits"

	"boosting/internal/isa"
	"boosting/internal/memhier"
	"boosting/internal/prog"
	"boosting/internal/sim"
)

// Config parameterizes the machine. The zero value is invalid; use
// Default().
type Config struct {
	FetchWidth  int // instructions fetched/decoded/dispatched per cycle
	RetireWidth int // instructions retired per cycle
	NumRS       int // total reservation station entries
	ROBSize     int // reorder buffer entries
	BTBSets     int // branch target buffer sets
	BTBWays     int // branch target buffer associativity
	Renaming    bool
	// MaxCycles bounds the simulation (0 = 2G cycles).
	MaxCycles int64
	// Mem, if non-nil, models a finite memory hierarchy; misses extend
	// memory-operation latency. A fresh hierarchy is built per run.
	Mem *memhier.Config
}

// Default returns the paper's configuration (without renaming).
func Default() Config {
	return Config{
		FetchWidth:  2,
		RetireWidth: 2,
		NumRS:       30,
		ROBSize:     16,
		BTBSets:     512,
		BTBWays:     4,
	}
}

// Result reports the timing outcome.
type Result struct {
	Cycles      int64
	Insts       int64
	Branches    int64
	Mispredicts int64
	// MemStalls counts extra latency cycles charged by the memory
	// hierarchy; Mem holds its counters (nil with perfect memory).
	MemStalls int64
	Mem       *memhier.Stats
	// Out and MemHash come from the functional execution that produced
	// the trace (the timing model does not change semantics).
	Out     []uint32
	MemHash uint64
}

// Simulate runs the program functionally and feeds its dynamic instruction
// stream through the out-of-order timing model.
func Simulate(pr *prog.Program, cfg Config) (*Result, error) {
	if cfg.FetchWidth == 0 {
		return nil, fmt.Errorf("dynsched: zero config; use Default()")
	}
	if cfg.ROBSize > 64 {
		return nil, fmt.Errorf("dynsched: ROBSize %d exceeds the 64-entry scoreboard window", cfg.ROBSize)
	}
	p := newPipeline(cfg)
	if cfg.Mem != nil {
		mh, err := memhier.New(*cfg.Mem)
		if err != nil {
			return nil, fmt.Errorf("dynsched: %w", err)
		}
		p.mh = mh
	}
	ref, err := sim.Run(pr, sim.RefConfig{
		OnInst: func(ev sim.InstEvent) { p.feed(ev) },
	})
	if err != nil {
		return nil, fmt.Errorf("dynsched: functional run: %w", err)
	}
	p.drainAll()
	res := p.result()
	res.Out = ref.Out
	res.MemHash = ref.MemHash
	return res, nil
}

// rec is one dynamic instruction in the pipeline.
type rec struct {
	op      isa.Op
	class   isa.Class
	dst     isa.Reg
	srcs    [2]isa.Reg
	id      int // static instruction ID (the "PC" for the BTB)
	addr    uint32
	size    int
	taken   bool
	nextID  int // dynamic target ID for JR
	isLoad  bool
	isStore bool

	// Pipeline state.
	deps     uint64 // producer mask: ROB positions this entry waits on
	doneAt   int64  // cycle the result is available (issued entries)
	seq      int64  // global sequence number
	mispred  bool
	isBranch bool
}

// pipeline is the out-of-order machine state.
//
// Ready/wakeup tracking is a bitmap scoreboard over ROB positions (bit i
// = p.rob[i], bit 0 = oldest; the window is capped at 64 entries).
// Instead of per-operand producer handles resolved through a results
// map, each entry carries a one-word producer mask (rec.deps) and the
// pipeline keeps one-word occupancy bitmaps; an entry is ready exactly
// when deps &^ done == 0, a producer's completion wakes every dependent
// with a single OR into the done bitmap, and issue selection walks the
// ready bitmap oldest-first with find-first-set. Retirement shifts every
// bitmap right, so positions stay age-ordered and retired producers
// drain out of the masks for free.
type pipeline struct {
	cfg   Config
	cycle int64

	fetchQ []rec // instructions awaiting dispatch (from the trace)
	rob    []rec // dispatched, not yet retired (index 0 = oldest)

	// Scoreboard bitmaps over ROB positions.
	issuedM uint64 // issued (execution started)
	doneM   uint64 // result available (doneAt <= current cycle)
	storeM  uint64 // stores
	memM    uint64 // loads and stores
	muldivM uint64 // multiply/divide entries (non-pipelined unit)

	// regProducer maps a register to the seq of its newest in-flight
	// producer; seqs are consecutive in the ROB, so seq - rob[0].seq is
	// the producer's scoreboard position.
	regProducer map[isa.Reg]int64
	// inflightDefs counts in-flight defs per register (no-renaming check).
	inflightDefs map[isa.Reg]int

	rsUsed    int
	btb       *btb
	mh        *memhier.Hierarchy
	memStalls int64

	// fetchBlockedBy is the seq of an unresolved mispredicted branch
	// (fetch stalls until it resolves), or -1.
	fetchBlockedBy int64

	nextSeq     int64
	insts       int64
	branches    int64
	mispredicts int64
	maxCycles   int64
}

func newPipeline(cfg Config) *pipeline {
	mc := cfg.MaxCycles
	if mc == 0 {
		mc = 2_000_000_000
	}
	return &pipeline{
		cfg:            cfg,
		regProducer:    map[isa.Reg]int64{},
		inflightDefs:   map[isa.Reg]int{},
		btb:            newBTB(cfg.BTBSets, cfg.BTBWays),
		fetchBlockedBy: -1,
		maxCycles:      mc,
	}
}

// feed queues one traced instruction and lets the pipeline advance while
// the queue is saturated, to bound memory.
func (p *pipeline) feed(ev sim.InstEvent) {
	in := ev.Inst
	r := rec{
		op:      in.Op,
		class:   isa.ClassOf(in.Op),
		id:      in.ID,
		addr:    ev.Addr,
		taken:   ev.Taken,
		nextID:  ev.NextID,
		isLoad:  isa.IsLoad(in.Op),
		isStore: isa.IsStore(in.Op),
		dst:     isa.R0,
	}
	var tmp []isa.Reg
	tmp = in.Defs(tmp)
	if len(tmp) > 0 {
		r.dst = tmp[0]
	}
	r.srcs = [2]isa.Reg{isa.R0, isa.R0}
	tmp = in.Uses(tmp[:0])
	for i, u := range tmp {
		if i < 2 {
			r.srcs[i] = u
		}
	}
	r.isBranch = isa.IsCondBranch(in.Op) || in.Op == isa.JR
	size, _ := memSize(in.Op)
	r.size = size
	p.fetchQ = append(p.fetchQ, r)
	for len(p.fetchQ) > 4096 && p.cycle < p.maxCycles {
		p.step()
	}
}

func memSize(op isa.Op) (int, bool) {
	switch op {
	case isa.LW, isa.SW:
		return 4, true
	case isa.LH, isa.LHU, isa.SH:
		return 2, true
	case isa.LB, isa.LBU, isa.SB:
		return 1, true
	}
	return 0, false
}

// drainAll runs the pipeline until empty.
func (p *pipeline) drainAll() {
	for (len(p.fetchQ) > 0 || len(p.rob) > 0) && p.cycle < p.maxCycles {
		p.step()
	}
}

func (p *pipeline) result() *Result {
	r := &Result{
		Cycles:      p.cycle,
		Insts:       p.insts,
		Branches:    p.branches,
		Mispredicts: p.mispredicts,
		MemStalls:   p.memStalls,
	}
	if p.mh != nil {
		stats := p.mh.Stats()
		r.Mem = &stats
	}
	return r
}

// step advances one cycle: retire, issue/execute, dispatch.
func (p *pipeline) step() {
	p.retire()
	p.issue()
	p.dispatch()
	p.cycle++
}

// retire removes completed instructions in order, up to RetireWidth,
// then shifts the scoreboard bitmaps so bit 0 is the new oldest entry.
// Retired producers thereby drain out of every waiter's deps mask.
func (p *pipeline) retire() {
	n := 0
	for n < p.cfg.RetireWidth && n < len(p.rob) {
		head := &p.rob[n]
		if p.doneM>>uint(n)&1 == 0 || head.doneAt > p.cycle {
			break
		}
		if head.dst != isa.R0 {
			p.inflightDefs[head.dst]--
			if p.regProducer[head.dst] == head.seq {
				delete(p.regProducer, head.dst)
			}
		}
		n++
	}
	if n == 0 {
		return
	}
	p.rob = p.rob[n:]
	p.issuedM >>= uint(n)
	p.doneM >>= uint(n)
	p.storeM >>= uint(n)
	p.memM >>= uint(n)
	p.muldivM >>= uint(n)
	for i := range p.rob {
		p.rob[i].deps >>= uint(n)
	}
}

// fuState tracks per-cycle functional unit availability. The FU mix
// matches the static machine: 2 integer ALUs, 1 shifter, 1 multiply/divide
// unit, 1 memory port, 1 branch unit. ALU/shift/mem/branch are pipelined;
// multiply/divide is not.
type fuState struct {
	alu, shift, mem, branch int
}

// issue starts execution of ready reservation-station entries: the
// completion sweep folds finished producers into the done bitmap (one OR
// wakes every dependent), readiness is one AND per unissued entry, and
// selection walks the ready bitmap oldest-first via find-first-set.
func (p *pipeline) issue() {
	// Completion sweep over issued-but-pending entries.
	for m := p.issuedM &^ p.doneM; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		e := &p.rob[i]
		if e.doneAt <= p.cycle {
			p.doneM |= 1 << uint(i)
			if e.mispred && p.fetchBlockedBy == e.seq {
				p.fetchBlockedBy = -1 // redirect complete; fetch resumes
			}
		}
	}
	// Busy horizon of the non-pipelined multiply/divide unit.
	var muldivBusy int64 = -1
	for m := p.muldivM & p.issuedM &^ p.doneM; m != 0; m &= m - 1 {
		if e := &p.rob[bits.TrailingZeros64(m)]; e.doneAt > muldivBusy {
			muldivBusy = e.doneAt
		}
	}
	// Ready = dispatched, unissued, every producer drained from deps
	// (retired producers shifted out at retire, finished ones in doneM).
	var ready uint64
	for m := p.activeM() &^ p.issuedM; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		if p.rob[i].deps&^p.doneM == 0 {
			ready |= 1 << uint(i)
		}
	}
	fu := fuState{}
	for m := ready; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		e := &p.rob[i]
		older := uint64(1)<<uint(i) - 1
		// Memory ordering: a load may not issue before every earlier
		// store has executed (addresses unknown until then); a store may
		// not issue before earlier memory operations to overlapping
		// addresses have issued.
		if e.isLoad && !p.earlierStoresDone(older, e) {
			continue
		}
		if e.isStore && !p.earlierMemIssued(older, e) {
			continue
		}
		// Functional unit availability.
		switch e.class {
		case isa.ClassALU, isa.ClassNone:
			if fu.alu >= 2 {
				continue
			}
			fu.alu++
		case isa.ClassShift:
			if fu.shift >= 1 {
				continue
			}
			fu.shift++
		case isa.ClassMem:
			if fu.mem >= 1 {
				continue
			}
			fu.mem++
		case isa.ClassBranch:
			if fu.branch >= 1 {
				continue
			}
			fu.branch++
		case isa.ClassMulDiv:
			if muldivBusy > p.cycle {
				continue
			}
			muldivBusy = p.cycle + int64(isa.Latency(e.op))
		}
		p.issuedM |= 1 << uint(i)
		e.doneAt = p.cycle + int64(isa.Latency(e.op))
		if (e.isLoad || e.isStore) && p.mh != nil {
			s := p.mh.Access(p.cycle, e.id, e.addr, e.isStore)
			e.doneAt += s
			p.memStalls += s
		}
		p.rsUsed--
	}
}

// activeM is the occupancy bitmap: one bit per current ROB entry.
func (p *pipeline) activeM() uint64 {
	if len(p.rob) >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(len(p.rob)) - 1
}

// earlierStoresDone reports whether all stores in older (a position
// bitmap) have issued and produced their addresses, and forwards
// conservatively: the load must also wait for an overlapping older
// store's completion.
func (p *pipeline) earlierStoresDone(older uint64, e *rec) bool {
	if p.storeM&older&^p.issuedM != 0 {
		return false // an older store has not produced its address
	}
	// Issued-but-pending older stores block only on address overlap.
	for m := p.storeM & older &^ p.doneM; m != 0; m &= m - 1 {
		if overlaps(&p.rob[bits.TrailingZeros64(m)], e) {
			return false
		}
	}
	return true
}

// earlierMemIssued reports whether all older overlapping memory operations
// have issued (write-after-read and write-after-write ordering).
func (p *pipeline) earlierMemIssued(older uint64, e *rec) bool {
	for m := p.memM & older &^ p.issuedM; m != 0; m &= m - 1 {
		if overlaps(&p.rob[bits.TrailingZeros64(m)], e) {
			return false
		}
	}
	return true
}

func overlaps(a, b *rec) bool {
	return a.addr < b.addr+uint32(b.size) && b.addr < a.addr+uint32(a.size)
}

// dispatch moves instructions from the fetch queue into the ROB and
// reservation stations, up to FetchWidth per cycle, respecting structural
// limits, the no-renaming WAW restriction, and mispredict fetch stalls.
func (p *pipeline) dispatch() {
	for n := 0; n < p.cfg.FetchWidth; n++ {
		if len(p.fetchQ) == 0 || p.fetchBlockedBy >= 0 {
			return
		}
		if len(p.rob) >= p.cfg.ROBSize || p.rsUsed >= p.cfg.NumRS {
			return
		}
		e := p.fetchQ[0]
		if !p.cfg.Renaming && e.dst != isa.R0 && p.inflightDefs[e.dst] > 0 {
			return // WAW: wait for the previous def of this register
		}
		p.fetchQ = p.fetchQ[1:]
		e.seq = p.nextSeq
		p.nextSeq++
		p.insts++

		// Source operands: a producer still in flight (regProducer only
		// holds in-ROB seqs, and seqs are consecutive) is one bit in the
		// entry's producer mask; a producer whose result is already
		// available contributes nothing.
		e.deps = 0
		for _, s := range e.srcs {
			if s == isa.R0 {
				continue
			}
			if q, ok := p.regProducer[s]; ok {
				if pos := uint(q - p.rob[0].seq); p.doneM>>pos&1 == 0 {
					e.deps |= 1 << pos
				}
			}
		}
		if e.dst != isa.R0 {
			p.regProducer[e.dst] = e.seq
			p.inflightDefs[e.dst]++
		}

		// Branch prediction.
		if isa.IsCondBranch(e.op) {
			p.branches++
			pred := p.btb.predictCond(e.id)
			p.btb.updateCond(e.id, e.taken)
			if pred != e.taken {
				p.mispredicts++
				e.mispred = true
				p.fetchBlockedBy = e.seq
			}
		} else if e.op == isa.JR {
			target, hit := p.btb.predictTarget(e.id)
			p.btb.updateTarget(e.id, e.nextID)
			if !hit || target != e.nextID {
				p.mispredicts++
				e.mispred = true
				p.fetchBlockedBy = e.seq
			}
		}

		pos := uint(len(p.rob))
		if e.isStore {
			p.storeM |= 1 << pos
		}
		if e.isLoad || e.isStore {
			p.memM |= 1 << pos
		}
		if e.class == isa.ClassMulDiv {
			p.muldivM |= 1 << pos
		}
		p.rob = append(p.rob, e)
		p.rsUsed++
	}
}

// btb is a set-associative branch target buffer with 2-bit counters.
type btb struct {
	sets int
	ways int
	// entries[set][way]
	tags     [][]int
	counters [][]uint8
	targets  [][]int
	lru      [][]int64
	tick     int64
}

func newBTB(sets, ways int) *btb {
	b := &btb{sets: sets, ways: ways}
	b.tags = make([][]int, sets)
	b.counters = make([][]uint8, sets)
	b.targets = make([][]int, sets)
	b.lru = make([][]int64, sets)
	for i := 0; i < sets; i++ {
		b.tags[i] = make([]int, ways)
		b.counters[i] = make([]uint8, ways)
		b.targets[i] = make([]int, ways)
		b.lru[i] = make([]int64, ways)
		for w := 0; w < ways; w++ {
			b.tags[i][w] = -1
		}
	}
	return b
}

func (b *btb) find(pc int) (set, way int, hit bool) {
	set = pc % b.sets
	for w := 0; w < b.ways; w++ {
		if b.tags[set][w] == pc {
			return set, w, true
		}
	}
	return set, -1, false
}

// predictCond predicts a conditional branch: taken iff the 2-bit counter
// is ≥ 2; a miss predicts not-taken.
func (b *btb) predictCond(pc int) bool {
	if set, way, hit := b.find(pc); hit {
		return b.counters[set][way] >= 2
	}
	return false
}

// updateCond trains the counter (allocating on first sight).
func (b *btb) updateCond(pc int, taken bool) {
	set, way := b.allocate(pc)
	c := b.counters[set][way]
	if taken && c < 3 {
		c++
	}
	if !taken && c > 0 {
		c--
	}
	b.counters[set][way] = c
	b.lru[set][way] = b.tick
	b.tick++
}

// predictTarget predicts an indirect target by last-seen target.
func (b *btb) predictTarget(pc int) (int, bool) {
	if set, way, hit := b.find(pc); hit {
		return b.targets[set][way], true
	}
	return 0, false
}

// updateTarget records the latest indirect target.
func (b *btb) updateTarget(pc, target int) {
	set, way := b.allocate(pc)
	b.targets[set][way] = target
	b.lru[set][way] = b.tick
	b.tick++
}

// allocate returns the way for pc, evicting LRU on conflict.
func (b *btb) allocate(pc int) (int, int) {
	set, way, hit := b.find(pc)
	if hit {
		return set, way
	}
	victim := 0
	for w := 1; w < b.ways; w++ {
		if b.lru[set][w] < b.lru[set][victim] {
			victim = w
		}
	}
	b.tags[set][victim] = pc
	b.counters[set][victim] = 1 // weakly not-taken
	b.targets[set][victim] = 0
	b.lru[set][victim] = b.tick
	b.tick++
	return set, victim
}
