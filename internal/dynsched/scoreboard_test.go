package dynsched

import (
	"testing"

	"boosting/internal/isa"
	"boosting/internal/memhier"
	"boosting/internal/sim"
)

// feedInsts pushes a synthetic instruction stream into a fresh pipeline
// without running the functional simulator.
func feedInsts(cfg Config, insts []isa.Inst, addrs []uint32) *pipeline {
	p := newPipeline(cfg)
	for i := range insts {
		insts[i].ID = i
		ev := sim.InstEvent{Inst: &insts[i]}
		if i < len(addrs) {
			ev.Addr = addrs[i]
		}
		p.feed(ev)
	}
	return p
}

// stepUntilEmpty drains the pipeline and returns the cycle count.
func stepUntilEmpty(p *pipeline) int64 {
	p.drainAll()
	return p.cycle
}

// TestScoreboardDependencyChains drives the bitmap scoreboard with
// hand-built instruction sequences and checks the cycle counts implied
// by the dependency, functional-unit, and memory-ordering rules.
func TestScoreboardDependencyChains(t *testing.T) {
	alu := func(d, s, u isa.Reg) isa.Inst { return isa.Inst{Op: isa.ADD, Rd: d, Rs: s, Rt: u} }
	tests := []struct {
		name   string
		insts  []isa.Inst
		addrs  []uint32
		cfg    func() Config
		cycles int64
	}{
		{
			// Four independent ALU ops: fetch width 2, two ALUs — two
			// dispatch rounds, last pair completes one cycle later.
			// Timeline: c0 dispatch {0,1}; c1 issue {0,1}, dispatch {2,3};
			// c2 done {0,1}, issue {2,3}; c3 retire {0,1}, done {2,3};
			// c4 retire {2,3}; c5 ROB observed empty.
			name:   "independent ALU pairs",
			insts:  []isa.Inst{alu(1, 0, 0), alu(2, 0, 0), alu(3, 0, 0), alu(4, 0, 0)},
			cycles: 5,
		},
		{
			// A serial dependency chain through r1..r4: each op waits for
			// the previous result (deps bit cleared by the completion
			// sweep), so issue is one per cycle despite two free ALUs.
			name:   "serial chain",
			insts:  []isa.Inst{alu(1, 0, 0), alu(2, 1, 0), alu(3, 2, 0), alu(4, 3, 0)},
			cycles: 7,
		},
		{
			// Two independent chains interleave perfectly on the two ALUs:
			// six dependent ops finish only two cycles after four
			// independent ones, proving out-of-order wakeup.
			name: "interleaved chains",
			insts: []isa.Inst{
				alu(1, 0, 0), alu(10, 0, 0),
				alu(2, 1, 0), alu(11, 10, 0),
				alu(3, 2, 0), alu(12, 11, 0),
			},
			cycles: 6,
		},
		{
			// Store then load on the single memory port: the load issues
			// the cycle after the store regardless of address (the port
			// serializes them; the store completes in one cycle).
			name: "store then load",
			insts: []isa.Inst{
				{Op: isa.SW, Rs: 0, Rt: 0},
				{Op: isa.LW, Rd: 1, Rs: 0},
			},
			addrs:  []uint32{64, 128},
			cycles: 6,
		},
		{
			// The non-pipelined multiply unit: two MULs serialize on the
			// busy horizon (12 cycles each) even though both are ready.
			name: "muldiv serializes",
			insts: []isa.Inst{
				{Op: isa.MUL, Rd: 1, Rs: 0, Rt: 0},
				{Op: isa.MUL, Rd: 2, Rs: 0, Rt: 0},
			},
			cycles: 27,
		},
		{
			// A 2-entry ROB forces in-order everything: the second pair
			// cannot dispatch until the first retires.
			name: "tiny rob",
			cfg: func() Config {
				c := Default()
				c.ROBSize = 2
				return c
			},
			insts:  []isa.Inst{alu(1, 0, 0), alu(2, 0, 0), alu(3, 0, 0), alu(4, 0, 0)},
			cycles: 7,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Default()
			if tc.cfg != nil {
				cfg = tc.cfg()
			}
			p := feedInsts(cfg, tc.insts, tc.addrs)
			if got := stepUntilEmpty(p); got != tc.cycles {
				t.Errorf("cycles = %d, want %d", got, tc.cycles)
			}
			if p.issuedM != 0 || p.doneM != 0 || p.storeM != 0 || p.memM != 0 || p.muldivM != 0 {
				t.Errorf("scoreboard bitmaps not drained: issued=%b done=%b store=%b mem=%b muldiv=%b",
					p.issuedM, p.doneM, p.storeM, p.memM, p.muldivM)
			}
			if p.insts != int64(len(tc.insts)) {
				t.Errorf("dispatched %d insts, want %d", p.insts, len(tc.insts))
			}
		})
	}
}

// TestScoreboardMemoryOrdering: under a write-through hierarchy whose
// store misses block (no write buffer), a load overlapping an older
// pending store waits for the store's completion, while a disjoint load
// only waits for the store to issue — the conservative-forwarding rule
// the overlap scan in earlierStoresDone implements.
func TestScoreboardMemoryOrdering(t *testing.T) {
	// loadIssueCycle runs store→load and reports the cycle the load
	// (seq 1) starts executing.
	loadIssueCycle := func(loadAddr uint32) int64 {
		cfg := Default()
		mc := memhier.SingleLevel(2, 1, 16, 20)
		cfg.Mem = &mc
		p := newPipeline(cfg)
		mh, err := memhier.New(mc)
		if err != nil {
			t.Fatal(err)
		}
		p.mh = mh
		insts := []isa.Inst{
			{Op: isa.SW, Rs: 0, Rt: 0, ID: 0},
			{Op: isa.LW, Rd: 1, Rs: 0, ID: 1},
		}
		p.feed(sim.InstEvent{Inst: &insts[0], Addr: 64})
		p.feed(sim.InstEvent{Inst: &insts[1], Addr: loadAddr})
		for p.cycle < 1000 {
			if base := int64(1); len(p.rob) > 0 {
				if pos := base - p.rob[0].seq; pos >= 0 && pos < int64(len(p.rob)) &&
					p.issuedM>>uint(pos)&1 == 1 {
					return p.cycle
				}
			}
			if len(p.fetchQ) == 0 && len(p.rob) == 0 {
				break
			}
			p.step()
		}
		t.Fatalf("load never issued (addr %d)", loadAddr)
		return 0
	}
	overlap := loadIssueCycle(64)
	disjoint := loadIssueCycle(256)
	// The store's miss blocks for ~20 cycles with no write buffer; only
	// the overlapping load has to sit through it.
	if overlap < disjoint+10 {
		t.Errorf("overlapping load issued at cycle %d, disjoint at %d; want the overlap held back by the store's miss",
			overlap, disjoint)
	}
}

// TestScoreboardBitmapInvariants single-steps a dependent pair and checks
// the bitmap states cycle by cycle: dispatch sets the producer mask,
// completion folds into the done bitmap, retire shifts every mask right.
func TestScoreboardBitmapInvariants(t *testing.T) {
	p := newPipeline(Default())
	i0 := isa.Inst{Op: isa.ADD, Rd: 1, ID: 0}
	i1 := isa.Inst{Op: isa.ADD, Rd: 2, Rs: 1, ID: 1}
	p.feed(sim.InstEvent{Inst: &i0})
	p.feed(sim.InstEvent{Inst: &i1})

	p.step() // cycle 0: both dispatch
	if len(p.rob) != 2 {
		t.Fatalf("after dispatch: rob=%d", len(p.rob))
	}
	if p.rob[0].deps != 0 {
		t.Errorf("producer has deps %b, want none", p.rob[0].deps)
	}
	if p.rob[1].deps != 1 {
		t.Errorf("consumer deps = %b, want bit 0 (its producer's position)", p.rob[1].deps)
	}

	p.step() // cycle 1: producer issues; consumer blocked on deps
	if p.issuedM != 1 {
		t.Errorf("after cycle 1: issuedM = %b, want only the producer", p.issuedM)
	}

	p.step() // cycle 2: producer completes (done bitmap), consumer issues
	if p.doneM&1 == 0 {
		t.Errorf("after cycle 2: producer not in doneM (%b)", p.doneM)
	}
	if p.issuedM != 3 {
		t.Errorf("after cycle 2: issuedM = %b, want both issued", p.issuedM)
	}

	p.step() // cycle 3: producer retires; masks shift right
	if len(p.rob) != 1 {
		t.Fatalf("after cycle 3: rob=%d, want 1", len(p.rob))
	}
	if p.rob[0].deps != 0 {
		t.Errorf("retired producer still in consumer deps: %b", p.rob[0].deps)
	}
	if p.issuedM != 1 || p.doneM != 1 {
		t.Errorf("masks not shifted: issuedM=%b doneM=%b", p.issuedM, p.doneM)
	}

	p.drainAll()
	if len(p.rob) != 0 || p.issuedM != 0 || p.doneM != 0 {
		t.Errorf("pipeline not drained: rob=%d issuedM=%b doneM=%b", len(p.rob), p.issuedM, p.doneM)
	}
}

// TestScoreboardROBWindowCap: the one-word scoreboard caps the ROB at 64
// entries; larger configurations are rejected up front.
func TestScoreboardROBWindowCap(t *testing.T) {
	cfg := Default()
	cfg.ROBSize = 65
	if _, err := Simulate(nil, cfg); err == nil {
		t.Fatal("ROBSize 65 accepted; the scoreboard window is one 64-bit word")
	}
	// The boundary itself must work (also exercised by TestROBSizeMatters).
	cfg.ROBSize = 64
	p := feedInsts(cfg, []isa.Inst{{Op: isa.ADD, Rd: 1}}, nil)
	if got := stepUntilEmpty(p); got <= 0 {
		t.Fatalf("64-entry ROB run produced %d cycles", got)
	}
}
