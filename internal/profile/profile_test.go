package profile

import (
	"testing"

	"boosting/internal/isa"
	"boosting/internal/prog"
)

// buildBiased builds a loop whose branch is taken n-1 times and falls
// through once.
func buildBiased(n int32) *prog.Program {
	pr := prog.New()
	f := prog.NewBuilder(pr, "main")
	loop := f.Block("loop")
	done := f.Block("done")
	r := f.Reg()
	f.Li(r, n)
	f.Goto(loop)
	f.Enter(loop)
	f.Imm(isa.ADDI, r, r, -1)
	f.Branch(isa.BGTZ, r, isa.R0, loop, done)
	f.Enter(done)
	f.Out(r)
	f.Halt()
	f.Finish()
	return pr
}

func TestAnnotateSetsCountsAndPredictions(t *testing.T) {
	pr := buildBiased(10)
	if err := Annotate(pr); err != nil {
		t.Fatal(err)
	}
	loop := pr.Main().Blocks[1]
	if loop.Count != 10 || loop.TakenCount != 9 {
		t.Errorf("counts %d/%d, want 10/9", loop.Count, loop.TakenCount)
	}
	if !loop.Terminator().Pred {
		t.Error("branch taken 9/10 must predict taken")
	}
	if p := loop.TakenProb(); p < 0.89 || p > 0.91 {
		t.Errorf("taken probability %f", p)
	}
}

func TestAnnotatePredictsNotTakenForMinority(t *testing.T) {
	pr := buildBiased(2) // taken once, fall once → tie → not taken
	if err := Annotate(pr); err != nil {
		t.Fatal(err)
	}
	if pr.Main().Blocks[1].Terminator().Pred {
		t.Error("a 50/50 branch must default to not-taken")
	}
}

func TestAnnotateIsRepeatable(t *testing.T) {
	pr := buildBiased(5)
	if err := Annotate(pr); err != nil {
		t.Fatal(err)
	}
	if err := Annotate(pr); err != nil {
		t.Fatal(err)
	}
	if pr.Main().Blocks[1].Count != 5 {
		t.Errorf("second Annotate must reset counts, got %d", pr.Main().Blocks[1].Count)
	}
}

func TestAccuracyPerfectOnSameInput(t *testing.T) {
	pr := buildBiased(100)
	if err := Annotate(pr); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(pr)
	if err != nil {
		t.Fatal(err)
	}
	// 99 taken + 1 fall with predict-taken → 99%.
	if acc < 0.98 || acc > 1.0 {
		t.Errorf("accuracy %f, want ≈0.99", acc)
	}
}

func TestTransferCopiesPredictions(t *testing.T) {
	train := buildBiased(10)
	test := buildBiased(3)
	if err := Annotate(train); err != nil {
		t.Fatal(err)
	}
	if err := Transfer(train, test); err != nil {
		t.Fatal(err)
	}
	if !test.Main().Blocks[1].Terminator().Pred {
		t.Error("prediction bit not transferred")
	}
	if test.Main().Blocks[1].Count != 10 {
		t.Error("profile counts not transferred")
	}
}

func TestTransferRejectsStructuralMismatch(t *testing.T) {
	train := buildBiased(10)
	if err := Annotate(train); err != nil {
		t.Fatal(err)
	}

	other := prog.New()
	f := prog.NewBuilder(other, "main")
	f.Halt()
	f.Finish()
	if err := Transfer(train, other); err == nil {
		t.Error("mismatched structure must be rejected")
	}

	renamed := prog.New()
	g := prog.NewBuilder(renamed, "other")
	g.Halt()
	g.Finish()
	if err := Transfer(train, renamed); err == nil {
		t.Error("missing procedure must be rejected")
	}
}

func TestAccuracyWithNoBranches(t *testing.T) {
	pr := prog.New()
	f := prog.NewBuilder(pr, "main")
	f.Halt()
	f.Finish()
	acc, err := Accuracy(pr)
	if err != nil || acc != 1 {
		t.Errorf("no-branch accuracy = %f, %v; want 1, nil", acc, err)
	}
}
