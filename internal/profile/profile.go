// Package profile implements branch profiling and profile-driven static
// branch prediction, following the paper's methodology (§4.3): "Our
// scheduler uses a branch profile of the program to generate the static
// branch prediction information needed during scheduling. This branch
// profile is generated from a different input set than is used to
// determine performance."
package profile

import (
	"fmt"

	"boosting/internal/isa"
	"boosting/internal/prog"
	"boosting/internal/sim"
)

// Annotate executes the program to completion with the reference
// interpreter, fills every block's Count/TakenCount profile fields, and
// sets each conditional branch's static prediction bit to its
// most-frequently taken direction. Branches never executed during
// profiling default to predicted not-taken.
func Annotate(pr *prog.Program) error {
	// Reset any previous profile.
	for _, p := range pr.ProcList() {
		for _, b := range p.Blocks {
			b.Count, b.TakenCount = 0, 0
		}
	}
	_, err := sim.Run(pr, sim.RefConfig{
		OnBlock: func(_ *prog.Proc, b *prog.Block) { b.Count++ },
		OnBranch: func(_ *prog.Proc, b *prog.Block, taken bool) {
			if taken {
				b.TakenCount++
			}
		},
	})
	if err != nil {
		return fmt.Errorf("profile: training run failed: %w", err)
	}
	applyPredictions(pr)
	return nil
}

func applyPredictions(pr *prog.Program) {
	for _, p := range pr.ProcList() {
		for _, b := range p.Blocks {
			if t := b.Terminator(); t != nil && isa.IsCondBranch(t.Op) {
				t.Pred = b.Count > 0 && 2*b.TakenCount > b.Count
			}
		}
	}
}

// Transfer copies profile counts and prediction bits from a training
// program to a structurally identical program (same procedures, block IDs
// and instruction layout — the workload builders guarantee this for
// different inputs). It errors if the structures diverge.
func Transfer(train, test *prog.Program) error {
	for _, tp := range train.ProcList() {
		sp, ok := test.Procs[tp.Name]
		if !ok {
			return fmt.Errorf("profile: proc %s missing in test program", tp.Name)
		}
		if len(tp.Blocks) != len(sp.Blocks) {
			return fmt.Errorf("profile: proc %s block count differs (%d vs %d)",
				tp.Name, len(tp.Blocks), len(sp.Blocks))
		}
		for i, tb := range tp.Blocks {
			sb := sp.Blocks[i]
			if tb.ID != sb.ID || len(tb.Insts) != len(sb.Insts) {
				return fmt.Errorf("profile: proc %s block %d structure differs", tp.Name, tb.ID)
			}
			sb.Count, sb.TakenCount = tb.Count, tb.TakenCount
			if t := sb.Terminator(); t != nil && isa.IsCondBranch(t.Op) {
				t.Pred = tb.Terminator().Pred
			}
		}
	}
	return nil
}

// Accuracy executes the program with the reference interpreter and
// measures the static predictor: the fraction of executed conditional
// branches whose outcome matched their prediction bit.
func Accuracy(pr *prog.Program) (float64, error) {
	var total, correct int64
	_, err := sim.Run(pr, sim.RefConfig{
		OnBranch: func(_ *prog.Proc, b *prog.Block, taken bool) {
			total++
			if t := b.Terminator(); t != nil && t.Pred == taken {
				correct++
			}
		},
	})
	if err != nil {
		return 0, err
	}
	if total == 0 {
		return 1, nil
	}
	return float64(correct) / float64(total), nil
}
