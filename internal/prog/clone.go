package prog

import "boosting/internal/isa"

// CloneProc deep-copies a procedure: new Block and instruction storage,
// edges rewired to the copies. Instruction IDs and profile counts are
// preserved so schedulers can be run on a copy without disturbing the
// original.
func CloneProc(p *Proc) *Proc {
	np := &Proc{Name: p.Name}
	m := make(map[*Block]*Block, len(p.Blocks))
	for _, b := range p.Blocks {
		nb := &Block{
			ID:         b.ID,
			Label:      b.Label,
			Insts:      append([]isa.Inst(nil), b.Insts...),
			Count:      b.Count,
			TakenCount: b.TakenCount,
			Recovery:   b.Recovery,
		}
		m[b] = nb
		np.Blocks = append(np.Blocks, nb)
	}
	for _, b := range p.Blocks {
		nb := m[b]
		for _, s := range b.Succs {
			nb.Succs = append(nb.Succs, m[s])
		}
	}
	np.Entry = m[p.Entry]
	np.RecomputePreds()
	return np
}

// Clone deep-copies a whole program (procedures and data image).
func Clone(pr *Program) *Program {
	np := New()
	for _, p := range pr.ProcList() {
		np.AddProc(CloneProc(p))
	}
	np.Data = append([]byte(nil), pr.Data...)
	np.BSS = pr.BSS
	np.nextInstID = pr.nextInstID
	np.numVirtual = pr.numVirtual
	return np
}
