package prog

import (
	"fmt"

	"boosting/internal/isa"
)

// Builder constructs a procedure block by block. Typical use:
//
//	f := prog.NewBuilder(program, "main")
//	loop := f.Block("loop")
//	done := f.Block("done")
//	f.Enter(f.EntryBlock())
//	f.Imm(isa.ADDI, r, isa.R0, 10)
//	f.Jump(loop)
//	f.Enter(loop)
//	...
//	f.Branch(isa.BGTZ, r, 0, loop, done) // taken → loop, fall → done
//	f.Enter(done)
//	f.Halt()
//	f.Finish()
type Builder struct {
	Prog *Program
	P    *Proc
	cur  *Block
}

// NewBuilder creates a procedure named name in pr and returns its builder.
// The entry block is created automatically and is current.
func NewBuilder(pr *Program, name string) *Builder {
	p := &Proc{Name: name}
	entry := p.NewBlockAfter("entry")
	p.Entry = entry
	pr.AddProc(p)
	return &Builder{Prog: pr, P: p, cur: entry}
}

// EntryBlock returns the procedure's entry block.
func (f *Builder) EntryBlock() *Block { return f.P.Entry }

// Block creates (but does not enter) a new labeled block.
func (f *Builder) Block(label string) *Block { return f.P.NewBlockAfter(label) }

// Enter makes b the current block; subsequent emissions append to it.
// Entering a block that already has a terminator panics.
func (f *Builder) Enter(b *Block) {
	if b.Terminator() != nil {
		panic(fmt.Sprintf("prog: block %s already terminated", b))
	}
	f.cur = b
}

// Cur returns the current block.
func (f *Builder) Cur() *Block { return f.cur }

// Reg returns a fresh virtual register.
func (f *Builder) Reg() isa.Reg { return f.Prog.FreshReg() }

func (f *Builder) emit(in isa.Inst) {
	if f.cur == nil {
		panic("prog: no current block")
	}
	if f.cur.Terminator() != nil {
		panic(fmt.Sprintf("prog: emit into terminated block %s", f.cur))
	}
	in.ID = f.Prog.NextInstID()
	f.cur.Insts = append(f.cur.Insts, in)
}

// ALU emits a three-register operation rd = rs op rt.
func (f *Builder) ALU(op isa.Op, rd, rs, rt isa.Reg) {
	f.emit(isa.Inst{Op: op, Rd: rd, Rs: rs, Rt: rt})
}

// Imm emits an immediate operation rd = rs op imm (or rd = imm<<16 for LUI).
func (f *Builder) Imm(op isa.Op, rd, rs isa.Reg, imm int32) {
	f.emit(isa.Inst{Op: op, Rd: rd, Rs: rs, Imm: imm})
}

// Li loads a 32-bit constant into rd (LUI+ORI, or a single ADDI/ORI when it
// fits in 16 bits).
func (f *Builder) Li(rd isa.Reg, v int32) {
	if v >= -32768 && v < 32768 {
		f.Imm(isa.ADDI, rd, isa.R0, v)
		return
	}
	u := uint32(v)
	f.Imm(isa.LUI, rd, isa.R0, int32(u>>16))
	if low := u & 0xFFFF; low != 0 {
		f.Imm(isa.ORI, rd, rd, int32(low))
	}
}

// La loads the address addr into rd.
func (f *Builder) La(rd isa.Reg, addr uint32) { f.Li(rd, int32(addr)) }

// Load emits rd = Mem[base+off].
func (f *Builder) Load(op isa.Op, rd, base isa.Reg, off int32) {
	f.emit(isa.Inst{Op: op, Rd: rd, Rs: base, Imm: off})
}

// Store emits Mem[base+off] = rt.
func (f *Builder) Store(op isa.Op, rt, base isa.Reg, off int32) {
	f.emit(isa.Inst{Op: op, Rt: rt, Rs: base, Imm: off})
}

// Move emits rd = rs.
func (f *Builder) Move(rd, rs isa.Reg) { f.ALU(isa.OR, rd, rs, isa.R0) }

// Out emits the observable-output instruction for rs.
func (f *Builder) Out(rs isa.Reg) { f.emit(isa.Inst{Op: isa.OUT, Rs: rs}) }

// Branch terminates the current block with a conditional branch comparing
// rs (and rt for BEQ/BNE), wiring taken and fall as successors. For the
// single-operand branch forms pass isa.R0 for rt. The prediction bit is
// set later by profiling; it defaults to not-taken. The current block
// becomes nil; Enter the next block explicitly.
func (f *Builder) Branch(op isa.Op, rs, rt isa.Reg, taken, fall *Block) {
	if !isa.IsCondBranch(op) {
		panic("prog: Branch requires a conditional branch op")
	}
	f.emit(isa.Inst{Op: op, Rs: rs, Rt: rt})
	f.cur.Succs = []*Block{fall, taken}
	f.cur = nil
}

// Jump terminates the current block with an unconditional jump to target.
func (f *Builder) Jump(target *Block) {
	f.emit(isa.Inst{Op: isa.J})
	f.cur.Succs = []*Block{target}
	f.cur = nil
}

// Goto wires the current block to fall through into target without a jump
// instruction (used when target is laid out next).
func (f *Builder) Goto(target *Block) {
	f.cur.Succs = []*Block{target}
	f.cur = nil
}

// Call terminates the current block with a JAL to the named procedure and
// continues in a fresh block, which it returns. RA receives the return
// address.
func (f *Builder) Call(name string) *Block {
	f.emit(isa.Inst{Op: isa.JAL, Rd: isa.RA, Sym: name})
	cont := f.Block(f.cur.Label + ".ret")
	f.cur.Succs = []*Block{cont}
	f.cur = cont
	return cont
}

// Ret terminates the current block with a return (JR RA).
func (f *Builder) Ret() {
	f.emit(isa.Inst{Op: isa.JR, Rs: isa.RA})
	f.cur.Succs = nil
	f.cur = nil
}

// Halt terminates the current block (and the program).
func (f *Builder) Halt() {
	f.emit(isa.Inst{Op: isa.HALT})
	f.cur.Succs = nil
	f.cur = nil
}

// Finish recomputes predecessor lists and verifies the procedure.
// It panics if the procedure is malformed (builder misuse).
func (f *Builder) Finish() *Proc {
	f.P.RecomputePreds()
	if err := Verify(f.P); err != nil {
		panic("prog: " + err.Error())
	}
	return f.P
}
