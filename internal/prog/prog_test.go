package prog

import (
	"strings"
	"testing"

	"boosting/internal/isa"
)

// buildCountdown builds: main { r = n; loop: out r; r--; if r>0 goto loop; halt }
func buildCountdown(n int32) *Program {
	pr := New()
	f := NewBuilder(pr, "main")
	loop := f.Block("loop")
	done := f.Block("done")
	r := f.Reg()
	f.Li(r, n)
	f.Goto(loop)
	f.Enter(loop)
	f.Out(r)
	f.Imm(isa.ADDI, r, r, -1)
	f.Branch(isa.BGTZ, r, isa.R0, loop, done)
	f.Enter(done)
	f.Halt()
	f.Finish()
	return pr
}

func TestBuilderBasics(t *testing.T) {
	pr := buildCountdown(3)
	p := pr.Main()
	if p == nil {
		t.Fatal("no main")
	}
	if err := VerifyProgram(pr); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(p.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(p.Blocks))
	}
	loop := p.Blocks[1]
	if loop.TakenSucc() != loop {
		t.Error("loop taken successor should be itself")
	}
	if loop.FallSucc() != p.Blocks[2] {
		t.Error("loop fall successor should be done")
	}
	if got := len(loop.Preds); got != 2 {
		t.Errorf("loop has %d preds, want 2 (entry + itself)", got)
	}
}

func TestTerminatorAndBody(t *testing.T) {
	pr := buildCountdown(3)
	loop := pr.Main().Blocks[1]
	term := loop.Terminator()
	if term == nil || term.Op != isa.BGTZ {
		t.Fatalf("terminator = %v", term)
	}
	if len(loop.Body()) != len(loop.Insts)-1 {
		t.Error("Body must exclude terminator")
	}
	entry := pr.Main().Entry
	if entry.Terminator() != nil {
		t.Error("fall-through entry block must have nil terminator")
	}
	if len(entry.Body()) != len(entry.Insts) {
		t.Error("Body of fall-through block must include everything")
	}
}

func TestPredictedSucc(t *testing.T) {
	pr := buildCountdown(3)
	loop := pr.Main().Blocks[1]
	term := loop.Terminator()
	term.Pred = true
	if loop.PredictedSucc() != loop {
		t.Error("predicted-taken successor wrong")
	}
	term.Pred = false
	if loop.PredictedSucc() != pr.Main().Blocks[2] {
		t.Error("predicted-not-taken successor wrong")
	}
}

func TestInstIDsAssigned(t *testing.T) {
	pr := buildCountdown(3)
	seen := map[int]bool{}
	for _, b := range pr.Main().Blocks {
		for i := range b.Insts {
			id := b.Insts[i].ID
			if id == 0 {
				t.Fatalf("instruction %s has no ID", b.Insts[i].String())
			}
			if seen[id] {
				t.Fatalf("duplicate instruction ID %d", id)
			}
			seen[id] = true
		}
	}
}

func TestVerifyCatchesMidBlockControl(t *testing.T) {
	pr := buildCountdown(3)
	b := pr.Main().Entry
	// Insert a HALT mid-block.
	b.Insts = append([]isa.Inst{{Op: isa.HALT}}, b.Insts...)
	if err := Verify(pr.Main()); err == nil {
		t.Error("verifier must reject mid-block control op")
	}
}

func TestVerifyCatchesBadSuccCount(t *testing.T) {
	pr := buildCountdown(3)
	loop := pr.Main().Blocks[1]
	loop.Succs = loop.Succs[:1]
	if err := Verify(pr.Main()); err == nil {
		t.Error("verifier must reject branch with one successor")
	}
}

func TestVerifyCatchesStalePreds(t *testing.T) {
	pr := buildCountdown(3)
	done := pr.Main().Blocks[2]
	done.Preds = append(done.Preds, done) // bogus pred
	if err := Verify(pr.Main()); err == nil {
		t.Error("verifier must reject stale preds")
	}
}

func TestVerifyProgramCatchesUndefinedCall(t *testing.T) {
	pr := New()
	f := NewBuilder(pr, "main")
	f.Call("nonexistent")
	f.Halt()
	f.Finish()
	if err := VerifyProgram(pr); err == nil {
		t.Error("must reject call to undefined proc")
	}
}

func TestCloneIndependence(t *testing.T) {
	pr := buildCountdown(3)
	cl := Clone(pr)
	if err := VerifyProgram(cl); err != nil {
		t.Fatalf("clone verify: %v", err)
	}
	// Mutating the clone must not touch the original.
	cl.Main().Blocks[0].Insts[0].Imm = 99
	if pr.Main().Blocks[0].Insts[0].Imm == 99 {
		t.Error("clone shares instruction storage with original")
	}
	if cl.Main().Blocks[1].Succs[1] == pr.Main().Blocks[1] {
		t.Error("clone shares block pointers with original")
	}
	// IDs and structure preserved.
	if cl.Main().Blocks[1].ID != pr.Main().Blocks[1].ID {
		t.Error("clone changed block IDs")
	}
}

func TestDataSegment(t *testing.T) {
	pr := New()
	a1 := pr.Word(42)
	if a1 != DataBase {
		t.Errorf("first word at %#x, want %#x", a1, DataBase)
	}
	a2 := pr.Words(1, 2, 3)
	if a2 != DataBase+4 {
		t.Errorf("second alloc at %#x", a2)
	}
	pr.Bytes([]byte{1, 2, 3})
	pr.Align(4)
	if len(pr.Data)%4 != 0 {
		t.Error("align failed")
	}
	bss := pr.Reserve(100)
	if bss < DataBase+uint32(len(pr.Data)) {
		t.Error("BSS overlaps data")
	}
	if pr.BSS != 100 {
		t.Errorf("BSS size %d", pr.BSS)
	}
}

func TestFormatRendersSchedulesAndEdges(t *testing.T) {
	pr := buildCountdown(3)
	s := Format(pr.Main())
	for _, want := range []string{".proc main", "taken->", "fall->", "halt", "out"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format output missing %q:\n%s", want, s)
		}
	}
}

func TestFreshRegMonotonic(t *testing.T) {
	p := New()
	r1 := p.FreshReg()
	r2 := p.FreshReg()
	if r1 == r2 || !r1.IsVirtual() || !r2.IsVirtual() {
		t.Errorf("fresh regs %v %v", r1, r2)
	}
}

func TestMaxReg(t *testing.T) {
	pr := buildCountdown(3)
	if got := pr.Main().MaxReg(); got != isa.FirstVirtual {
		t.Errorf("MaxReg = %v, want %v", got, isa.FirstVirtual)
	}
}
