package prog

import (
	"testing"

	"boosting/internal/isa"
)

// FuzzParse checks the assembly parser never panics and that anything it
// accepts passes the structural verifier.
func FuzzParse(f *testing.F) {
	f.Add(handWritten)
	f.Add(".proc main\n\thalt\n")
	f.Add(".word 1\n.byte 2 3\n.ascii \"hi\"\n.align 4\n.reserve 8\n.proc main\n\thalt\n")
	f.Add(".proc main\nl:\n\taddi v0, r0, 1\n\tbgtz v0, l, e\ne:\n\thalt\n")
	f.Add(".proc main\n\tlw r5, -4(r29)\n\tjal main -> x\nx:\n\thalt\n")
	f.Add(".proc main\n\tbeq r1, r2 ;taken ;taken->a fall->b\na:\n\thalt\nb:\n\thalt\n")

	f.Fuzz(func(t *testing.T, src string) {
		pr, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := VerifyProgram(pr); err != nil {
			t.Fatalf("Parse accepted a program the verifier rejects: %v\nsource:\n%s", err, src)
		}
		// Formatting the accepted program must not panic either.
		_ = FormatProgram(pr)
	})
}

// FuzzFormatRoundTrip: programs built from fuzzed small parameters must
// survive format→parse→format.
func FuzzFormatRoundTrip(f *testing.F) {
	f.Add(int8(3), int8(2), false)
	f.Add(int8(1), int8(7), true)
	f.Fuzz(func(t *testing.T, n, m int8, call bool) {
		pr := New()
		if call {
			leaf := NewBuilder(pr, "leaf")
			leaf.Imm(isa.ADDI, isa.RV, isa.A0, int32(m))
			leaf.Ret()
			leaf.Finish()
		}
		fb := NewBuilder(pr, "main")
		loop := fb.Block("loop")
		done := fb.Block("done")
		r := fb.Reg()
		fb.Li(r, int32(n)%8+1)
		fb.Goto(loop)
		fb.Enter(loop)
		fb.Imm(isa.ADDI, r, r, -1)
		if call {
			fb.Move(isa.A0, r)
			fb.Call("leaf")
		}
		fb.Branch(isa.BGTZ, r, isa.R0, loop, done)
		fb.Enter(done)
		fb.Out(r)
		fb.Halt()
		fb.Finish()

		text := FormatProgram(pr)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, text)
		}
		if again := FormatProgram(back); again != text {
			t.Fatalf("unstable round trip:\n%s\nvs\n%s", text, again)
		}
	})
}
