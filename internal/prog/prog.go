// Package prog defines the compiler's program representation: procedures
// made of basic blocks connected into a control-flow graph, plus a builder
// API used by the workloads, a verifier, a printer and a deep-clone.
//
// Design rules:
//
//   - A basic block contains straight-line instructions and ends with at
//     most one control-transfer instruction (its terminator). Conditional
//     branches have exactly two successors: Succs[0] is the fall-through
//     (not-taken) target and Succs[1] is the taken target.
//   - Calls (JAL) and returns (JR) terminate blocks; a call's single
//     successor is its continuation block. Trace construction stops at
//     them, as in the paper ("the next block is not in the current
//     region (e.g. a call)").
//   - Architectural delay slots are not represented here; they are a
//     property of machine schedules (package machine).
package prog

import (
	"fmt"

	"boosting/internal/isa"
)

// Memory-layout constants shared by the builder, simulator and workloads.
const (
	// DataBase is the virtual address of the first byte of the data
	// segment. Pages below it (in particular page zero) are unmapped, so
	// nil-pointer loads fault.
	DataBase uint32 = 0x0001_0000
	// StackTop is the initial stack pointer. The simulator maps a region
	// of StackSize bytes below it.
	StackTop uint32 = 0x0080_0000
	// StackSize is the size of the mapped stack region.
	StackSize uint32 = 64 * 1024
)

// Block is a basic block.
type Block struct {
	// ID is unique within the procedure and stable across scheduling.
	ID int
	// Label is a human-readable name for listings.
	Label string
	// Insts holds the block's instructions. If the block has a
	// terminator it is the last instruction.
	Insts []isa.Inst
	// Succs lists successor blocks. Layout depends on the terminator:
	// conditional branch → [fallthrough, taken]; J/JAL → [target];
	// no terminator → [fallthrough]; JR/HALT → empty.
	Succs []*Block
	// Preds lists predecessor blocks (maintained by the builder and by
	// CFG edits; RecomputePreds rebuilds them).
	Preds []*Block

	// Profile data filled in by package profile: how many times the block
	// executed and, if it ends in a conditional branch, how many times the
	// branch was taken.
	Count      int64
	TakenCount int64

	// Recovery marks compiler-generated boosted-exception recovery blocks.
	// They are reachable only through the exception mechanism, never
	// through normal CFG edges, and are excluded from scheduling.
	Recovery bool
}

// Terminator returns the block's control-transfer instruction, or nil if
// the block falls through.
func (b *Block) Terminator() *isa.Inst {
	if len(b.Insts) == 0 {
		return nil
	}
	last := &b.Insts[len(b.Insts)-1]
	if isa.IsControl(last.Op) {
		return last
	}
	return nil
}

// Body returns the block's instructions excluding any terminator.
func (b *Block) Body() []isa.Inst {
	if b.Terminator() != nil {
		return b.Insts[:len(b.Insts)-1]
	}
	return b.Insts
}

// FallSucc returns the fall-through successor (nil if none).
func (b *Block) FallSucc() *Block {
	if len(b.Succs) > 0 {
		return b.Succs[0]
	}
	return nil
}

// TakenSucc returns the taken successor of a conditional branch (nil if the
// block does not end in one).
func (b *Block) TakenSucc() *Block {
	if t := b.Terminator(); t != nil && isa.IsCondBranch(t.Op) && len(b.Succs) == 2 {
		return b.Succs[1]
	}
	return nil
}

// PredictedSucc returns the successor the terminating branch predicts, or
// the unique successor for unconditional flow, or nil for JR/HALT.
func (b *Block) PredictedSucc() *Block {
	t := b.Terminator()
	if t != nil && isa.IsCondBranch(t.Op) {
		if t.Pred {
			return b.TakenSucc()
		}
		return b.FallSucc()
	}
	return b.FallSucc()
}

// TakenProb returns the profile-derived probability that the terminating
// conditional branch is taken. Without profile data it returns 0.5.
func (b *Block) TakenProb() float64 {
	if b.Count <= 0 {
		return 0.5
	}
	return float64(b.TakenCount) / float64(b.Count)
}

// String returns "Bid(label)".
func (b *Block) String() string {
	if b.Label != "" {
		return fmt.Sprintf("B%d(%s)", b.ID, b.Label)
	}
	return fmt.Sprintf("B%d", b.ID)
}

// Proc is a procedure: an entry block and the set of blocks reachable from
// it (plus any recovery blocks).
type Proc struct {
	Name   string
	Blocks []*Block
	Entry  *Block

	// gen counts observable IR mutations of this procedure. Cached
	// analyses (dataflow.Manager) key their validity against it: any
	// edit to Insts, Succs or the block set must be followed by a bump —
	// either NoteMutation directly or dataflow.Manager.Invalidate, which
	// bumps and selectively retags the caches it manages.
	gen uint64
}

// Generation returns the procedure's IR mutation counter.
func (p *Proc) Generation() uint64 { return p.gen }

// NoteMutation records that the procedure's IR changed, invalidating any
// analysis cached against the previous generation.
func (p *Proc) NoteMutation() { p.gen++ }

// NewBlockAfter creates an empty block owned by the procedure, appended to
// Blocks. The caller wires up edges.
func (p *Proc) NewBlockAfter(label string) *Block {
	b := &Block{ID: p.nextBlockID(), Label: label}
	p.Blocks = append(p.Blocks, b)
	p.NoteMutation()
	return b
}

func (p *Proc) nextBlockID() int {
	max := -1
	for _, b := range p.Blocks {
		if b.ID > max {
			max = b.ID
		}
	}
	return max + 1
}

// NumInsts returns the static instruction count of the procedure.
func (p *Proc) NumInsts() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Insts)
	}
	return n
}

// RecomputePreds rebuilds every block's Preds list from the Succs lists.
// The order of Preds is deterministic (by block ID then successor slot).
func (p *Proc) RecomputePreds() {
	for _, b := range p.Blocks {
		b.Preds = b.Preds[:0]
	}
	for _, b := range p.Blocks {
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
}

// MaxReg returns the highest register number mentioned in the procedure
// (at least NumArchRegs-1).
func (p *Proc) MaxReg() isa.Reg {
	max := isa.Reg(isa.NumArchRegs - 1)
	var tmp []isa.Reg
	for _, b := range p.Blocks {
		for i := range b.Insts {
			tmp = b.Insts[i].Defs(tmp[:0])
			tmp = b.Insts[i].Uses(tmp)
			for _, r := range tmp {
				if r > max {
					max = r
				}
			}
		}
	}
	return max
}

// Program is a whole program: procedures plus an initial data image.
type Program struct {
	Procs map[string]*Proc
	// Order preserves insertion order of procedures for deterministic
	// iteration and printing.
	Order []string
	// Data is the initial content of the data segment, loaded at DataBase.
	Data []byte
	// BSS is the number of zeroed bytes mapped immediately after Data.
	BSS int
	// nextInstID assigns stable instruction identities.
	nextInstID int
	// numVirtual counts virtual registers handed out. Virtual registers
	// are unique across the whole program so that procedures do not alias
	// each other's temporaries in the (single, flat) register file.
	numVirtual int32
}

// FreshReg returns a new program-unique virtual register.
func (pr *Program) FreshReg() isa.Reg {
	r := isa.FirstVirtual + isa.Reg(pr.numVirtual)
	pr.numVirtual++
	return r
}

// EnsureVirtual advances the fresh-register counter past n virtual
// registers, so that sources mentioning v0..v(n-1) (the assembly parser)
// never collide with later FreshReg allocations.
func (pr *Program) EnsureVirtual(n int32) {
	if n > pr.numVirtual {
		pr.numVirtual = n
	}
}

// New returns an empty program.
func New() *Program {
	return &Program{Procs: map[string]*Proc{}}
}

// Main returns the entry procedure ("main"), or nil.
func (pr *Program) Main() *Proc { return pr.Procs["main"] }

// AddProc registers a procedure. It panics on duplicate names (programs are
// constructed by code, so this is a programming error).
func (pr *Program) AddProc(p *Proc) {
	if _, dup := pr.Procs[p.Name]; dup {
		panic("prog: duplicate procedure " + p.Name)
	}
	pr.Procs[p.Name] = p
	pr.Order = append(pr.Order, p.Name)
}

// ProcList returns the procedures in insertion order.
func (pr *Program) ProcList() []*Proc {
	out := make([]*Proc, 0, len(pr.Order))
	for _, name := range pr.Order {
		out = append(out, pr.Procs[name])
	}
	return out
}

// NumInsts returns the static instruction count of the whole program.
func (pr *Program) NumInsts() int {
	n := 0
	for _, p := range pr.ProcList() {
		n += p.NumInsts()
	}
	return n
}

// NextInstID returns a fresh instruction identity.
func (pr *Program) NextInstID() int {
	pr.nextInstID++
	return pr.nextInstID
}

// Counters returns the instruction-ID and virtual-register allocation
// counters, so a serialized program can be restored without ID collisions.
func (pr *Program) Counters() (nextInstID int, numVirtual int32) {
	return pr.nextInstID, pr.numVirtual
}

// RestoreCounters sets the allocation counters (the inverse of Counters).
func (pr *Program) RestoreCounters(nextInstID int, numVirtual int32) {
	pr.nextInstID = nextInstID
	pr.numVirtual = numVirtual
}

// Word appends a little-endian 32-bit word to the data segment and returns
// its address.
func (pr *Program) Word(v int32) uint32 {
	addr := DataBase + uint32(len(pr.Data))
	u := uint32(v)
	pr.Data = append(pr.Data, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	return addr
}

// Words appends several words and returns the address of the first.
func (pr *Program) Words(vs ...int32) uint32 {
	addr := DataBase + uint32(len(pr.Data))
	for _, v := range vs {
		pr.Word(v)
	}
	return addr
}

// Bytes appends raw bytes to the data segment and returns the address of
// the first.
func (pr *Program) Bytes(bs []byte) uint32 {
	addr := DataBase + uint32(len(pr.Data))
	pr.Data = append(pr.Data, bs...)
	return addr
}

// Align pads the data segment to a multiple of n bytes.
func (pr *Program) Align(n int) {
	for len(pr.Data)%n != 0 {
		pr.Data = append(pr.Data, 0)
	}
}

// Reserve maps sz zeroed bytes after the current data image (BSS) and
// returns the address of the first byte.
func (pr *Program) Reserve(sz int) uint32 {
	pr.Align(4)
	addr := DataBase + uint32(len(pr.Data)) + uint32(pr.BSS)
	pr.BSS += sz
	return addr
}
