package prog

import (
	"fmt"
	"strconv"
	"strings"

	"boosting/internal/isa"
)

// Parse reads the textual assembly form produced by FormatProgram (and a
// slightly friendlier hand-written dialect) back into a Program.
//
// Accepted syntax, line by line:
//
//	.word N              append a data word
//	.byte N N N ...      append data bytes
//	.ascii "text"        append string bytes
//	.align N             align the data segment
//	.reserve N           reserve N zeroed bytes (BSS)
//	.proc NAME           start a procedure (first block is the entry)
//	LABEL:               start a basic block
//	op operands          an instruction (MIPS-like mnemonics)
//
// Branch targets may be written either as explicit operands
// (`beq r1, r2, takenLabel, fallLabel`) or using the annotation comments
// FormatProgram emits (`beq r1, r2 ;taken ;taken->L1 fall->L2`). Jumps
// accept `j label` or `j -> label`; a block without a terminator needs a
// `;fallthrough -> label` annotation or falls through to the next block
// in the file. Comments start with `;` or `#` (annotation comments are
// interpreted, others ignored).
func Parse(text string) (*Program, error) {
	p := &parser{pr: New()}
	for i, line := range strings.Split(text, "\n") {
		if err := p.line(strings.TrimSpace(line)); err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
	}
	if err := p.finishProc(); err != nil {
		return nil, err
	}
	if p.pr.Main() == nil {
		return nil, fmt.Errorf("prog: no .proc main")
	}
	if err := VerifyProgram(p.pr); err != nil {
		return nil, err
	}
	return p.pr, nil
}

type pendingEdge struct {
	block *Block
	slot  int
	label string
	line  string
}

type parser struct {
	pr     *Program
	proc   *Proc
	cur    *Block
	blocks map[string]*Block
	edges  []pendingEdge
	// fallPrev is a block awaiting an implicit fall-through to the next
	// label.
	fallPrev *Block
}

func (p *parser) line(s string) error {
	if s == "" {
		return nil
	}
	// Annotation-only lines: ";fallthrough -> L".
	if strings.HasPrefix(s, ";fallthrough") {
		rest := strings.TrimSpace(strings.TrimPrefix(s, ";fallthrough"))
		rest = strings.TrimSpace(strings.TrimPrefix(rest, "->"))
		if p.cur == nil {
			return fmt.Errorf("fallthrough outside a block")
		}
		p.addEdge(p.cur, 0, rest, s)
		p.cur.Succs = []*Block{nil}
		p.cur = nil
		return nil
	}
	if strings.HasPrefix(s, ";") || strings.HasPrefix(s, "#") {
		return nil
	}

	switch {
	case strings.HasPrefix(s, ".proc "):
		if err := p.finishProc(); err != nil {
			return err
		}
		name := strings.TrimSpace(strings.TrimPrefix(s, ".proc "))
		if name == "" {
			return fmt.Errorf("empty procedure name")
		}
		if _, dup := p.pr.Procs[name]; dup {
			return fmt.Errorf("duplicate procedure %q", name)
		}
		p.proc = &Proc{Name: name}
		p.pr.AddProc(p.proc)
		p.blocks = map[string]*Block{}
		p.cur = nil
		return nil
	case strings.HasPrefix(s, ".word "):
		v, err := parseInt(strings.TrimSpace(strings.TrimPrefix(s, ".word ")))
		if err != nil {
			return err
		}
		p.pr.Word(int32(v))
		return nil
	case strings.HasPrefix(s, ".byte "):
		for _, f := range strings.Fields(strings.TrimPrefix(s, ".byte ")) {
			v, err := parseInt(f)
			if err != nil {
				return err
			}
			p.pr.Bytes([]byte{byte(v)})
		}
		return nil
	case strings.HasPrefix(s, ".ascii "):
		q := strings.TrimSpace(strings.TrimPrefix(s, ".ascii "))
		str, err := strconv.Unquote(q)
		if err != nil {
			return fmt.Errorf("bad .ascii string: %w", err)
		}
		p.pr.Bytes([]byte(str))
		return nil
	case strings.HasPrefix(s, ".align "):
		v, err := parseInt(strings.TrimSpace(strings.TrimPrefix(s, ".align ")))
		if err != nil {
			return err
		}
		if v < 1 || v > 4096 {
			return fmt.Errorf("bad alignment %d", v)
		}
		p.pr.Align(int(v))
		return nil
	case strings.HasPrefix(s, ".reserve "):
		v, err := parseInt(strings.TrimSpace(strings.TrimPrefix(s, ".reserve ")))
		if err != nil {
			return err
		}
		if v < 0 || v > 1<<26 {
			return fmt.Errorf("bad reserve size %d", v)
		}
		p.pr.Reserve(int(v))
		return nil
	}

	// Block label?
	if body, ok := cutLabel(s); ok {
		if p.proc == nil {
			return fmt.Errorf("label outside .proc")
		}
		b := p.block(body)
		if len(b.Insts) > 0 || b == p.cur {
			return fmt.Errorf("duplicate block label %q", body)
		}
		if p.fallPrev != nil {
			p.fallPrev.Succs = []*Block{b}
			p.fallPrev = nil
		}
		if p.proc.Entry == nil {
			p.proc.Entry = b
		}
		p.cur = b
		return nil
	}

	if p.cur == nil {
		if p.proc == nil {
			return fmt.Errorf("instruction outside .proc: %q", s)
		}
		if p.fallPrev != nil {
			return fmt.Errorf("block %s has no terminator or fall-through target", p.fallPrev)
		}
		// Instructions before any label go into an implicit entry block,
		// created at most once: reaching here again means the previous
		// block ended without a new label.
		if _, used := p.blocks["entry"]; used {
			return fmt.Errorf("instruction after block end without a label: %q", s)
		}
		b := p.block("entry")
		if p.proc.Entry == nil {
			p.proc.Entry = b
		}
		p.cur = b
	}
	return p.inst(s)
}

// cutLabel recognizes "LABEL:" with optional trailing comment.
func cutLabel(s string) (string, bool) {
	if i := strings.IndexByte(s, ';'); i >= 0 {
		s = strings.TrimSpace(s[:i])
	}
	if strings.HasSuffix(s, ":") && !strings.ContainsAny(s[:len(s)-1], " \t,()") {
		return s[:len(s)-1], true
	}
	return "", false
}

func (p *parser) block(label string) *Block {
	if b, ok := p.blocks[label]; ok {
		return b
	}
	b := p.proc.NewBlockAfter(displayLabel(label))
	p.blocks[label] = b
	return b
}

// displayLabel strips the "B<id>." prefix FormatProgram adds, so labels
// stay stable across format/parse round trips.
func displayLabel(label string) string {
	if len(label) > 1 && label[0] == 'B' {
		i := 1
		for i < len(label) && label[i] >= '0' && label[i] <= '9' {
			i++
		}
		if i > 1 && i < len(label) && label[i] == '.' {
			return label[i+1:]
		}
	}
	return label
}

func (p *parser) addEdge(b *Block, slot int, label, line string) {
	p.edges = append(p.edges, pendingEdge{b, slot, label, line})
}

// finishProc resolves pending edges and verifies the procedure.
func (p *parser) finishProc() error {
	if p.proc == nil {
		return nil
	}
	if p.fallPrev != nil {
		return fmt.Errorf("block %s has no terminator or fall-through target", p.fallPrev)
	}
	for _, e := range p.edges {
		t, ok := p.blocks[e.label]
		if !ok {
			return fmt.Errorf("undefined label %q in %q", e.label, e.line)
		}
		e.block.Succs[e.slot] = t
	}
	p.edges = nil
	p.proc.RecomputePreds()
	if err := Verify(p.proc); err != nil {
		return err
	}
	p.proc = nil
	return nil
}

// emit appends an instruction to the current block.
func (p *parser) emit(in isa.Inst) {
	in.ID = p.pr.NextInstID()
	p.cur.Insts = append(p.cur.Insts, in)
}

// annotations extracts ";taken->L fall->L", "-> L" and ";taken" markers.
type annot struct {
	taken, fall, next string
	pred              bool
}

func splitAnnot(s string) (string, annot) {
	var a annot
	// "-> L" direct form before any comment.
	semi := strings.IndexByte(s, ';')
	if i := strings.Index(s, "->"); i >= 0 && (semi < 0 || i < semi) {
		rest := s[i+2:]
		if semi >= 0 {
			rest = s[i+2 : semi]
		}
		a.next = strings.TrimSpace(rest)
		if semi >= 0 {
			s = strings.TrimSpace(s[:i]) + " ;" + s[semi+1:]
			semi = strings.IndexByte(s, ';')
		} else {
			s = strings.TrimSpace(s[:i])
			semi = -1
		}
	}
	if semi < 0 {
		return strings.TrimSpace(s), a
	}
	tags := strings.ReplaceAll(s[semi+1:], ";", " ")
	s = strings.TrimSpace(s[:semi])
	for _, f := range strings.Fields(tags) {
		switch {
		case strings.HasPrefix(f, "taken->"):
			a.taken = strings.TrimPrefix(f, "taken->")
		case strings.HasPrefix(f, "fall->"):
			a.fall = strings.TrimPrefix(f, "fall->")
		case f == "taken":
			a.pred = true
		case f == "not-taken":
			a.pred = false
		case strings.HasPrefix(f, "->"):
			a.next = strings.TrimPrefix(f, "->")
		}
	}
	return s, a
}

var opByName = func() map[string]isa.Op {
	m := map[string]isa.Op{}
	for op := isa.NOP; op < isa.Op(255); op++ {
		name := op.String()
		if strings.HasPrefix(name, "op(") {
			break
		}
		m[name] = op
	}
	return m
}()

// inst parses one instruction line.
func (p *parser) inst(s string) error {
	s, a := splitAnnot(s)
	fields := strings.Fields(s)
	if len(fields) == 0 {
		if a.next != "" { // bare "-> L" after annotations stripped
			p.addEdge(p.cur, 0, a.next, s)
			p.cur.Succs = []*Block{nil}
			p.cur = nil
			return nil
		}
		return nil
	}
	mn := strings.ToLower(fields[0])
	rest := strings.TrimSpace(s[len(fields[0]):])
	ops := splitOperands(rest)

	// Pseudo-instructions.
	switch mn {
	case "li", "la":
		if len(ops) != 2 {
			return fmt.Errorf("%s needs rd, imm", mn)
		}
		rd, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		v, err := parseInt(ops[1])
		if err != nil {
			return err
		}
		u := uint32(int32(v))
		if int32(v) >= -32768 && int32(v) < 32768 {
			p.emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs: isa.R0, Imm: int32(v)})
		} else {
			p.emit(isa.Inst{Op: isa.LUI, Rd: rd, Imm: int32(u >> 16)})
			if low := u & 0xFFFF; low != 0 {
				p.emit(isa.Inst{Op: isa.ORI, Rd: rd, Rs: rd, Imm: int32(low)})
			}
		}
		return nil
	case "move":
		if len(ops) != 2 {
			return fmt.Errorf("move needs rd, rs")
		}
		rd, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		rs, err := p.reg(ops[1])
		if err != nil {
			return err
		}
		p.emit(isa.Inst{Op: isa.OR, Rd: rd, Rs: rs, Rt: isa.R0})
		return nil
	}

	op, ok := opByName[mn]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mn)
	}

	switch {
	case op == isa.NOP:
		p.emit(isa.Inst{Op: isa.NOP})
		return nil
	case op == isa.HALT:
		p.emit(isa.Inst{Op: isa.HALT})
		p.cur.Succs = nil
		p.cur = nil
		return nil
	case op == isa.OUT:
		if len(ops) != 1 {
			return fmt.Errorf("out needs a register")
		}
		rs, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		p.emit(isa.Inst{Op: isa.OUT, Rs: rs})
		return nil
	case op == isa.J:
		target := a.next
		if target == "" && len(ops) == 1 {
			target = ops[0]
		}
		if target == "" {
			return fmt.Errorf("jump needs a target")
		}
		p.emit(isa.Inst{Op: isa.J})
		p.cur.Succs = []*Block{nil}
		p.addEdge(p.cur, 0, target, s)
		p.cur = nil
		return nil
	case op == isa.JAL:
		if len(ops) != 1 {
			return fmt.Errorf("jal needs a procedure name")
		}
		p.emit(isa.Inst{Op: isa.JAL, Rd: isa.RA, Sym: ops[0]})
		cont := a.next
		p.cur.Succs = []*Block{nil}
		if cont != "" {
			p.addEdge(p.cur, 0, cont, s)
			p.cur = nil
		} else {
			p.fallPrev = p.cur
			p.cur = nil
			// Implicit continuation: next label.
			p.fallPrev.Succs = []*Block{nil}
			// fallPrev handling resolves on next label; mark via slot 0.
			last := p.fallPrev
			p.fallPrev = last
		}
		return nil
	case op == isa.JR:
		if len(ops) != 1 {
			return fmt.Errorf("jr needs a register")
		}
		rs, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		p.emit(isa.Inst{Op: isa.JR, Rs: rs})
		p.cur.Succs = nil
		p.cur = nil
		return nil
	case isa.IsCondBranch(op):
		var rs, rt isa.Reg
		var taken, fall string
		var err error
		regOps := ops
		if op == isa.BEQ || op == isa.BNE {
			if len(regOps) < 2 {
				return fmt.Errorf("%s needs two registers", mn)
			}
			if rs, err = p.reg(regOps[0]); err != nil {
				return err
			}
			if rt, err = p.reg(regOps[1]); err != nil {
				return err
			}
			regOps = regOps[2:]
		} else {
			if len(regOps) < 1 {
				return fmt.Errorf("%s needs a register", mn)
			}
			if rs, err = p.reg(regOps[0]); err != nil {
				return err
			}
			regOps = regOps[1:]
		}
		switch {
		case a.taken != "" && a.fall != "":
			taken, fall = a.taken, a.fall
		case len(regOps) == 2:
			taken, fall = regOps[0], regOps[1]
		default:
			return fmt.Errorf("branch needs taken and fall targets")
		}
		p.emit(isa.Inst{Op: op, Rs: rs, Rt: rt, Pred: a.pred})
		p.cur.Succs = []*Block{nil, nil}
		p.addEdge(p.cur, 0, fall, s)
		p.addEdge(p.cur, 1, taken, s)
		p.cur = nil
		return nil
	case isa.IsLoad(op):
		if len(ops) != 2 {
			return fmt.Errorf("%s needs rd, off(base)", mn)
		}
		rd, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		base, off, err := p.memOperand(ops[1])
		if err != nil {
			return err
		}
		p.emit(isa.Inst{Op: op, Rd: rd, Rs: base, Imm: off})
		return nil
	case isa.IsStore(op):
		if len(ops) != 2 {
			return fmt.Errorf("%s needs rt, off(base)", mn)
		}
		rt, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		base, off, err := p.memOperand(ops[1])
		if err != nil {
			return err
		}
		p.emit(isa.Inst{Op: op, Rt: rt, Rs: base, Imm: off})
		return nil
	case op == isa.LUI:
		if len(ops) < 2 {
			return fmt.Errorf("lui needs rd, imm")
		}
		rd, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		v, err := parseInt(ops[len(ops)-1])
		if err != nil {
			return err
		}
		p.emit(isa.Inst{Op: op, Rd: rd, Imm: int32(v)})
		return nil
	default:
		// Three-operand ALU/shift forms: rd, rs, (rt | imm).
		if len(ops) != 3 {
			return fmt.Errorf("%s needs 3 operands", mn)
		}
		rd, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		rs, err := p.reg(ops[1])
		if err != nil {
			return err
		}
		in := isa.Inst{Op: op, Rd: rd, Rs: rs}
		if rt, err := p.reg(ops[2]); err == nil {
			in.Rt = rt
			// Immediate-form ops never take a third register.
			if isImmOp(op) {
				return fmt.Errorf("%s takes an immediate", mn)
			}
		} else {
			v, err := parseInt(ops[2])
			if err != nil {
				return err
			}
			in.Imm = int32(v)
			if !isImmOp(op) {
				return fmt.Errorf("%s takes a register", mn)
			}
		}
		p.emit(in)
		return nil
	}
}

func isImmOp(op isa.Op) bool {
	switch op {
	case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLTI, isa.SLTIU,
		isa.SLL, isa.SRL, isa.SRA:
		return true
	}
	return false
}

// reg parses "r12", "v3", or a boost-suffixed form like "r4.B2" (the
// suffix is rejected: parsed programs are pre-scheduling).
func (p *parser) reg(s string) (isa.Reg, error) {
	s = strings.TrimSpace(s)
	if strings.Contains(s, ".B") {
		return 0, fmt.Errorf("boost suffix not allowed in source: %q", s)
	}
	if len(s) < 2 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	switch s[0] {
	case 'r':
		if n >= isa.NumArchRegs {
			return 0, fmt.Errorf("architectural register out of range: %q", s)
		}
		return isa.Reg(n), nil
	case 'v':
		p.pr.EnsureVirtual(int32(n) + 1)
		return isa.FirstVirtual + isa.Reg(n), nil
	}
	return 0, fmt.Errorf("bad register %q", s)
}

// memOperand parses "off(base)".
func (p *parser) memOperand(s string) (isa.Reg, int32, error) {
	i := strings.IndexByte(s, '(')
	j := strings.IndexByte(s, ')')
	if i < 0 || j < i {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	off := int64(0)
	if strings.TrimSpace(s[:i]) != "" {
		var err error
		off, err = parseInt(strings.TrimSpace(s[:i]))
		if err != nil {
			return 0, 0, err
		}
	}
	base, err := p.reg(strings.TrimSpace(s[i+1 : j]))
	if err != nil {
		return 0, 0, err
	}
	return base, int32(off), nil
}

func splitOperands(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	return strconv.ParseInt(s, 0, 64)
}
