package prog

import (
	"fmt"

	"boosting/internal/isa"
)

// Verify checks structural invariants of a procedure:
//
//   - every block has a terminator or a single fall-through successor;
//   - successor counts match the terminator kind;
//   - Preds lists are consistent with Succs lists;
//   - control-transfer instructions appear only as terminators;
//   - the entry block belongs to the procedure;
//   - all successors belong to the procedure;
//   - recovery blocks have no CFG predecessors.
func Verify(p *Proc) error {
	if p.Entry == nil {
		return fmt.Errorf("proc %s: nil entry", p.Name)
	}
	inProc := make(map[*Block]bool, len(p.Blocks))
	for _, b := range p.Blocks {
		inProc[b] = true
	}
	if !inProc[p.Entry] {
		return fmt.Errorf("proc %s: entry block not in Blocks", p.Name)
	}

	for _, b := range p.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if isa.IsControl(in.Op) && i != len(b.Insts)-1 {
				return fmt.Errorf("proc %s: %s has control op %s mid-block (pos %d)",
					p.Name, b, in.Op, i)
			}
		}
		t := b.Terminator()
		switch {
		case t == nil:
			if len(b.Succs) != 1 {
				return fmt.Errorf("proc %s: fall-through block %s has %d successors",
					p.Name, b, len(b.Succs))
			}
		case isa.IsCondBranch(t.Op):
			if len(b.Succs) != 2 {
				return fmt.Errorf("proc %s: branch block %s has %d successors",
					p.Name, b, len(b.Succs))
			}
			if b.Succs[0] == nil || b.Succs[1] == nil {
				return fmt.Errorf("proc %s: branch block %s has nil successor", p.Name, b)
			}
		case t.Op == isa.J || t.Op == isa.JAL:
			if len(b.Succs) != 1 {
				return fmt.Errorf("proc %s: jump block %s has %d successors",
					p.Name, b, len(b.Succs))
			}
		case t.Op == isa.JR || t.Op == isa.HALT:
			if len(b.Succs) != 0 {
				return fmt.Errorf("proc %s: exit block %s has %d successors",
					p.Name, b, len(b.Succs))
			}
		}
		for _, s := range b.Succs {
			if !inProc[s] {
				return fmt.Errorf("proc %s: %s has successor outside proc", p.Name, b)
			}
			if s.Recovery {
				return fmt.Errorf("proc %s: %s targets recovery block %s", p.Name, b, s)
			}
		}
	}

	// Preds consistency.
	want := map[*Block]map[*Block]int{}
	for _, b := range p.Blocks {
		for _, s := range b.Succs {
			if want[s] == nil {
				want[s] = map[*Block]int{}
			}
			want[s][b]++
		}
	}
	for _, b := range p.Blocks {
		got := map[*Block]int{}
		for _, pb := range b.Preds {
			got[pb]++
		}
		for pb, n := range want[b] {
			if got[pb] != n {
				return fmt.Errorf("proc %s: %s preds inconsistent (want %d edges from %s, have %d)",
					p.Name, b, n, pb, got[pb])
			}
		}
		for pb, n := range got {
			if want[b][pb] != n {
				return fmt.Errorf("proc %s: %s has stale pred %s", p.Name, b, pb)
			}
		}
	}
	return nil
}

// VerifyProgram verifies every procedure and that every JAL target exists.
func VerifyProgram(pr *Program) error {
	if pr.Main() == nil {
		return fmt.Errorf("program has no main")
	}
	for _, p := range pr.ProcList() {
		if err := Verify(p); err != nil {
			return err
		}
		for _, b := range p.Blocks {
			for i := range b.Insts {
				in := &b.Insts[i]
				if in.Op == isa.JAL {
					if _, ok := pr.Procs[in.Sym]; !ok {
						return fmt.Errorf("proc %s: call to undefined proc %q", p.Name, in.Sym)
					}
				}
			}
		}
	}
	return nil
}
