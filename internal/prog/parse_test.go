package prog

import (
	"strings"
	"testing"

	"boosting/internal/isa"
)

const handWritten = `
; a hand-written source in the friendly dialect
.word 7
.word 35

.proc double
	add r2, r4, r4
	jr r31

.proc main
start:
	li v0, 0x10000
	lw v1, 0(v0)
	lw v2, 4(v0)
	move r4, v1
	jal double
after:
	add v3, r2, v2
	out v3
	blez v3, neg, pos
neg:
	out r0
	j end
pos:
	out v3
	; implicit fallthrough is not allowed; use the annotation
	;fallthrough -> end
end:
	halt
`

func TestParseHandWritten(t *testing.T) {
	pr, err := Parse(handWritten)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyProgram(pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Data) != 8 {
		t.Fatalf("data length %d", len(pr.Data))
	}
	main := pr.Main()
	if main == nil || len(main.Blocks) != 5 {
		t.Fatalf("main blocks: %v", main)
	}
	// Branch wiring: taken→neg, fall→pos (the branch lives in "after").
	var after *Block
	for _, b := range main.Blocks {
		if b.Label == "after" {
			after = b
		}
	}
	if after == nil {
		t.Fatal("block 'after' missing")
	}
	if after.TakenSucc() == nil || after.TakenSucc().Label != "neg" {
		t.Errorf("taken successor wrong: %v", after.TakenSucc())
	}
	if after.FallSucc().Label != "pos" {
		t.Errorf("fall successor wrong: %v", after.FallSucc())
	}
	// The call block falls through to its continuation.
	if main.Entry.FallSucc() != after {
		t.Errorf("call continuation wrong: %v", main.Entry.FallSucc())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no main", ".proc foo\n\thalt\n"},
		{"bad mnemonic", ".proc main\n\tfrobnicate r1, r2, r3\n\thalt\n"},
		{"bad register", ".proc main\n\tadd r99, r1, r2\n\thalt\n"},
		{"undefined label", ".proc main\n\tj nowhere\n"},
		{"boost suffix", ".proc main\n\tadd r1.B2, r2, r3\n\thalt\n"},
		{"imm on reg op", ".proc main\n\tadd r1, r2, 5\n\thalt\n"},
		{"reg on imm op", ".proc main\n\taddi r1, r2, r3\n\thalt\n"},
		{"branch without targets", ".proc main\n\tbeq r1, r2\n\thalt\n"},
		{"dangling fallthrough", ".proc main\nstart:\n\tadd r1, r1, r1\n"},
		{"duplicate label", ".proc main\nx:\n\tadd r1, r1, r1\nx:\n\thalt\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseMemOperands(t *testing.T) {
	pr, err := Parse(".proc main\n\tlw r5, -8(r29)\n\tsw r5, (r29)\n\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	insts := pr.Main().Entry.Insts
	if insts[0].Imm != -8 || insts[0].Rs != isa.SP {
		t.Errorf("lw parsed as %+v", insts[0])
	}
	if insts[1].Imm != 0 || insts[1].Rt != isa.Reg(5) {
		t.Errorf("sw parsed as %+v", insts[1])
	}
}

// TestFormatParseRoundTrip: FormatProgram output re-parses into a program
// with identical observable behavior.
func TestFormatParseRoundTrip(t *testing.T) {
	pr := New()
	arr := pr.Words(5, 10, 15)
	pr.Reserve(8)
	f := NewBuilder(pr, "main")
	loop := f.Block("loop")
	done := f.Block("done")
	i, sum, base, v := f.Reg(), f.Reg(), f.Reg(), f.Reg()
	f.Li(i, 3)
	f.Li(sum, 0)
	f.La(base, arr)
	f.Goto(loop)
	f.Enter(loop)
	f.Load(isa.LW, v, base, 0)
	f.ALU(isa.ADD, sum, sum, v)
	f.Imm(isa.ADDI, base, base, 4)
	f.Imm(isa.ADDI, i, i, -1)
	f.Branch(isa.BGTZ, i, isa.R0, loop, done)
	f.Enter(done)
	f.Out(sum)
	f.Halt()
	f.Finish()

	text := FormatProgram(pr)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("round trip parse failed: %v\nsource:\n%s", err, text)
	}
	if err := VerifyProgram(back); err != nil {
		t.Fatal(err)
	}
	if len(back.Data) != len(pr.Data) || back.BSS != pr.BSS {
		t.Errorf("data segment differs: %d/%d vs %d/%d",
			len(back.Data), back.BSS, len(pr.Data), pr.BSS)
	}
	if back.Main().NumInsts() != pr.Main().NumInsts() {
		t.Errorf("instruction count differs: %d vs %d",
			back.Main().NumInsts(), pr.Main().NumInsts())
	}
	// Re-format should be stable (idempotent after one round).
	if again := FormatProgram(back); again != text {
		t.Errorf("re-format not stable:\n--- first\n%s\n--- second\n%s", text, again)
	}
}

func TestParsePredictionAnnotations(t *testing.T) {
	src := `.proc main
a:
	addi v0, r0, 1
	bgtz v0 ;taken ;taken->a fall->b
b:
	halt
`
	pr, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	term := pr.Main().Entry.Terminator()
	if term == nil || !term.Pred {
		t.Error("prediction bit not parsed")
	}
	if !strings.Contains(Format(pr.Main()), ";taken") {
		t.Error("prediction bit not printed")
	}
}
