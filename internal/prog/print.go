package prog

import (
	"fmt"
	"strings"

	"boosting/internal/isa"
)

// Format renders the procedure as readable assembly with block labels,
// successor annotations and profile counts. It is the inverse-ish of the
// parser in parse.go (Format output round-trips through Parse).
func Format(p *Proc) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ".proc %s\n", p.Name)
	for _, b := range p.Blocks {
		tag := ""
		if b == p.Entry {
			tag = " ;entry"
		}
		if b.Recovery {
			tag += " ;recovery"
		}
		fmt.Fprintf(&sb, "%s:%s\n", blockName(b), tag)
		for i := range b.Insts {
			in := &b.Insts[i]
			fmt.Fprintf(&sb, "\t%s", in.String())
			if i == len(b.Insts)-1 {
				sb.WriteString(succAnnotation(b))
			}
			sb.WriteByte('\n')
		}
		if b.Terminator() == nil {
			fmt.Fprintf(&sb, "\t;fallthrough -> %s\n", blockName(b.Succs[0]))
		}
	}
	return sb.String()
}

func blockName(b *Block) string {
	if b.Label != "" {
		return fmt.Sprintf("B%d.%s", b.ID, sanitize(b.Label))
	}
	return fmt.Sprintf("B%d", b.ID)
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_':
			return r
		}
		return '_'
	}, s)
}

func succAnnotation(b *Block) string {
	t := b.Terminator()
	switch {
	case t == nil:
		return "" // the ";fallthrough -> L" line carries the edge
	case isa.IsCondBranch(t.Op):
		return fmt.Sprintf(" ;taken->%s fall->%s", blockName(b.Succs[1]), blockName(b.Succs[0]))
	case len(b.Succs) == 1:
		return fmt.Sprintf(" -> %s", blockName(b.Succs[0]))
	}
	return ""
}

// FormatProgram renders the data segment and every procedure. The output
// parses back with Parse (round trip), except that scheduled programs with
// boosting labels are not re-parseable sources.
func FormatProgram(pr *Program) string {
	var sb strings.Builder
	for i := 0; i < len(pr.Data); i += 16 {
		sb.WriteString(".byte")
		for j := i; j < i+16 && j < len(pr.Data); j++ {
			fmt.Fprintf(&sb, " %d", pr.Data[j])
		}
		sb.WriteByte('\n')
	}
	if pr.BSS > 0 {
		fmt.Fprintf(&sb, ".reserve %d\n", pr.BSS)
	}
	for _, p := range pr.ProcList() {
		sb.WriteString(Format(p))
		sb.WriteByte('\n')
	}
	return sb.String()
}
