package cache

import (
	"testing"
	"testing/quick"
)

func TestValidation(t *testing.T) {
	if _, err := New(Config{Sets: 0, Ways: 1, LineBytes: 16}); err == nil {
		t.Error("zero sets accepted")
	}
	if _, err := New(Config{Sets: 3, Ways: 1, LineBytes: 16}); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := New(Config{Sets: 4, Ways: 1, LineBytes: 12}); err == nil {
		t.Error("non-power-of-two line accepted")
	}
	if _, err := New(DefaultData()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestHitMissBasics(t *testing.T) {
	c, err := New(Config{Sets: 4, Ways: 1, LineBytes: 16, MissPenalty: 10})
	if err != nil {
		t.Fatal(err)
	}
	if p := c.Access(0x100); p != 10 {
		t.Errorf("cold access penalty %d", p)
	}
	if p := c.Access(0x104); p != 0 {
		t.Errorf("same-line access penalty %d", p)
	}
	if p := c.Access(0x100 + 4*16); p != 10 {
		t.Errorf("conflicting line penalty %d (direct-mapped, same set)", p)
	}
	if p := c.Access(0x100); p != 10 {
		t.Errorf("evicted line must miss, penalty %d", p)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 3 {
		t.Errorf("stats %d/%d", hits, misses)
	}
	if r := c.HitRate(); r != 0.25 {
		t.Errorf("hit rate %f", r)
	}
}

func TestAssociativityAvoidsConflict(t *testing.T) {
	c, err := New(Config{Sets: 4, Ways: 2, LineBytes: 16, MissPenalty: 10})
	if err != nil {
		t.Fatal(err)
	}
	a, b := uint32(0x100), uint32(0x100+4*16) // same set, different tags
	c.Access(a)
	c.Access(b)
	if p := c.Access(a); p != 0 {
		t.Error("2-way cache must hold both lines")
	}
	if p := c.Access(b); p != 0 {
		t.Error("2-way cache must hold both lines")
	}
	// A third tag evicts the LRU (a was used more recently than b? order:
	// a,b,a,b → LRU is a).
	c.Access(0x100 + 8*16)
	if p := c.Access(b); p != 0 {
		t.Error("most-recently-used line evicted")
	}
}

func TestEmptyHitRate(t *testing.T) {
	c, _ := New(DefaultData())
	if c.HitRate() != 1 {
		t.Error("no accesses should report rate 1")
	}
}

// Property: a second access to the same address immediately after the
// first always hits.
func TestTemporalLocalityProperty(t *testing.T) {
	c, _ := New(DefaultData())
	f := func(addr uint32) bool {
		c.Access(addr)
		return c.Access(addr) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
