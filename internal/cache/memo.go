// Package cache provides Memo, a concurrency-safe memoization table with
// singleflight deduplication. (The data-cache timing model that used to
// share this package lives in internal/memhier.)
package cache

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Memo is a concurrency-safe memoization table with singleflight
// deduplication: however many goroutines ask for the same key
// concurrently, the compute function runs exactly once and every caller
// shares the result. It backs the experiment harness's artifact store,
// where grid cells running in parallel must never rebuild the same
// compiled program, reference run or measurement.
//
// Successful results (and non-context errors) are memoized forever.
// Results that fail with context.Canceled or context.DeadlineExceeded are
// forgotten so a later call under a live context can retry.
type Memo[V any] struct {
	mu      sync.Mutex
	entries map[string]*memoEntry[V]

	hits, misses atomic.Int64
}

type memoEntry[V any] struct {
	done chan struct{} // closed when val/err are final
	val  V
	err  error
}

// NewMemo returns an empty memo table.
func NewMemo[V any]() *Memo[V] {
	return &Memo[V]{entries: map[string]*memoEntry[V]{}}
}

// Do returns the value for key, computing it with fn if no flight for the
// key has completed yet. Concurrent callers for the same key block until
// the single in-flight computation finishes (or until their own ctx is
// cancelled, in which case they return ctx's error without disturbing the
// flight). fn itself is responsible for honoring ctx.
//
// If fn panics, the panic propagates to the caller that ran it, the key
// is forgotten, and every waiter receives an error instead of blocking
// forever — a must for servers that recover panics per request.
func (m *Memo[V]) Do(ctx context.Context, key string, fn func() (V, error)) (V, error) {
	var zero V
	if err := ctx.Err(); err != nil {
		return zero, err
	}

	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		m.mu.Unlock()
		m.hits.Add(1)
		select {
		case <-e.done:
			return e.val, e.err
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
	e := &memoEntry[V]{done: make(chan struct{})}
	m.entries[key] = e
	m.mu.Unlock()
	m.misses.Add(1)

	defer func() {
		if r := recover(); r != nil {
			e.err = fmt.Errorf("cache: computing %q panicked: %v", key, r)
			m.forget(key)
			close(e.done)
			panic(r)
		}
	}()
	e.val, e.err = fn()
	if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
		// Do not poison the key with a cancellation: drop the entry so a
		// later call (under a fresh context) recomputes it.
		m.forget(key)
	}
	close(e.done)
	return e.val, e.err
}

func (m *Memo[V]) forget(key string) {
	m.mu.Lock()
	delete(m.entries, key)
	m.mu.Unlock()
}

// Forget drops the memoized entry for key, if any. Callers use it to
// un-cache results that must not outlive the conditions that produced
// them — for example a server's admission-queue rejection, which says
// nothing about the request itself.
func (m *Memo[V]) Forget(key string) { m.forget(key) }

// Stats returns the number of lookups served from the table and the
// number that ran the compute function.
func (m *Memo[V]) Stats() (hits, misses int64) {
	return m.hits.Load(), m.misses.Load()
}

// Len returns the number of memoized entries.
func (m *Memo[V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Keys returns every memoized key (including keys whose computation is
// still in flight) in sorted order.
func (m *Memo[V]) Keys() []string {
	m.mu.Lock()
	keys := make([]string, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	m.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// EvictIf drops every completed entry whose key satisfies pred and
// returns the number evicted. In-flight entries are skipped: evicting a
// computation that waiters are blocked on would detach them from its
// result, and its key will still be present for a later sweep.
func (m *Memo[V]) EvictIf(pred func(key string) bool) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for k, e := range m.entries {
		select {
		case <-e.done:
		default:
			continue // in flight
		}
		if pred(k) {
			delete(m.entries, k)
			n++
		}
	}
	return n
}
