// Package cache models instruction and data caches, an extension beyond
// the paper's evaluation. The paper assumes a perfect memory system and
// notes (§4.3): "The true speedup of our superscalar processor over a
// scalar processor is dependent upon the effectiveness of the memory
// system. The more effective the memory system, the closer these CPU
// speedups represent the speedups of the entire system." This package
// quantifies that caveat: plugging a finite data cache into the timing
// models shows how much of the boosting gain survives realistic memory.
//
// The model is a set-associative, write-through/no-allocate... rather:
// write-back is irrelevant for timing here — only hit/miss cycles matter,
// so the model tracks tags with LRU replacement and charges a fixed miss
// penalty per miss. Boosted (speculative) accesses touch the cache like
// real accesses, as the paper's hardware would.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	// Sets and Ways give the organization; LineBytes the block size.
	Sets, Ways, LineBytes int
	// MissPenalty is the added cycles per miss.
	MissPenalty int64
}

// DefaultData returns a cache typical of the paper's era (R2000-class
// systems): 8 KiB direct-mapped with 16-byte lines and a ~12-cycle miss.
func DefaultData() Config {
	return Config{Sets: 512, Ways: 1, LineBytes: 16, MissPenalty: 12}
}

// Cache is a set-associative tag store with LRU replacement.
type Cache struct {
	cfg  Config
	tags [][]uint32
	lru  [][]int64
	tick int64

	hits, misses int64
}

// New builds a cache; it validates the configuration.
func New(cfg Config) (*Cache, error) {
	if cfg.Sets <= 0 || cfg.Ways <= 0 || cfg.LineBytes <= 0 {
		return nil, fmt.Errorf("cache: bad config %+v", cfg)
	}
	if cfg.Sets&(cfg.Sets-1) != 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: sets and line size must be powers of two")
	}
	c := &Cache{cfg: cfg}
	c.tags = make([][]uint32, cfg.Sets)
	c.lru = make([][]int64, cfg.Sets)
	for i := range c.tags {
		c.tags[i] = make([]uint32, cfg.Ways)
		c.lru[i] = make([]int64, cfg.Ways)
		for w := range c.tags[i] {
			c.tags[i][w] = ^uint32(0) // invalid
		}
	}
	return c, nil
}

// Access touches addr and returns the added penalty cycles (0 on hit).
func (c *Cache) Access(addr uint32) int64 {
	line := addr / uint32(c.cfg.LineBytes)
	set := int(line) & (c.cfg.Sets - 1)
	tag := line / uint32(c.cfg.Sets)
	c.tick++
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[set][w] == tag {
			c.lru[set][w] = c.tick
			c.hits++
			return 0
		}
	}
	// Miss: fill the LRU way.
	victim := 0
	for w := 1; w < c.cfg.Ways; w++ {
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	c.tags[set][victim] = tag
	c.lru[set][victim] = c.tick
	c.misses++
	return c.cfg.MissPenalty
}

// Stats returns hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) { return c.hits, c.misses }

// HitRate returns hits/(hits+misses), or 1 with no accesses.
func (c *Cache) HitRate() float64 {
	if c.hits+c.misses == 0 {
		return 1
	}
	return float64(c.hits) / float64(c.hits+c.misses)
}
