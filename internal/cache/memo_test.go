package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMemoSingleflight(t *testing.T) {
	m := NewMemo[int]()
	var calls atomic.Int64
	var wg sync.WaitGroup
	const goroutines = 32
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.Do(context.Background(), "k", func() (int, error) {
				calls.Add(1)
				time.Sleep(5 * time.Millisecond)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if c := calls.Load(); c != 1 {
		t.Errorf("compute ran %d times, want 1", c)
	}
	hits, misses := m.Stats()
	if misses != 1 || hits != goroutines-1 {
		t.Errorf("stats hits=%d misses=%d, want %d/1", hits, misses, goroutines-1)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestMemoDistinctKeys(t *testing.T) {
	m := NewMemo[string]()
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		v, err := m.Do(context.Background(), key, func() (string, error) { return key + "!", nil })
		if err != nil || v != key+"!" {
			t.Fatalf("Do(%s) = %q, %v", key, v, err)
		}
	}
	if m.Len() != 10 {
		t.Errorf("Len = %d, want 10", m.Len())
	}
}

func TestMemoErrorsAreMemoized(t *testing.T) {
	m := NewMemo[int]()
	boom := errors.New("boom")
	var calls int
	for i := 0; i < 3; i++ {
		_, err := m.Do(context.Background(), "k", func() (int, error) {
			calls++
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 1 {
		t.Errorf("failing compute ran %d times, want 1", calls)
	}
}

func TestMemoCancellationNotMemoized(t *testing.T) {
	m := NewMemo[int]()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Do(ctx, "k", func() (int, error) { return 0, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err = %v", err)
	}
	// A flight that itself fails with Canceled must not poison the key.
	if _, err := m.Do(context.Background(), "k", func() (int, error) {
		return 0, fmt.Errorf("wrapped: %w", context.Canceled)
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	v, err := m.Do(context.Background(), "k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry after cancellation: %d, %v", v, err)
	}
}

func TestMemoWaiterCancellation(t *testing.T) {
	m := NewMemo[int]()
	release := make(chan struct{})
	go m.Do(context.Background(), "slow", func() (int, error) {
		<-release
		return 1, nil
	})
	// Give the flight time to take ownership of the key.
	for i := 0; ; i++ {
		if _, misses := m.Stats(); misses == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("flight never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Do(ctx, "slow", func() (int, error) { return 2, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter should observe its own cancellation, got %v", err)
	}
	close(release)
	v, err := m.Do(context.Background(), "slow", func() (int, error) { return 3, nil })
	if err != nil || v != 1 {
		t.Fatalf("flight result lost: %d, %v", v, err)
	}
}

// TestMemoPanicSafety: a panicking compute function must propagate the
// panic to its own caller, hand every concurrent waiter an error instead
// of a hang, and forget the key so the next call can retry cleanly.
func TestMemoPanicSafety(t *testing.T) {
	m := NewMemo[int]()
	started := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan any, 1)
	go func() {
		defer func() { leaderDone <- recover() }()
		m.Do(context.Background(), "boom", func() (int, error) {
			close(started)
			<-release
			panic("kaboom")
		})
	}()
	<-started

	// Waiters join the in-flight computation; any straggler that arrives
	// after the key is forgotten recomputes and hits errRecompute instead.
	errRecompute := errors.New("recomputed")
	const waiters = 8
	errs := make(chan error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := m.Do(context.Background(), "boom", func() (int, error) { return 0, errRecompute })
			errs <- err
		}()
	}
	// Give the waiters a moment to join the flight, then let it blow up.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if r := <-leaderDone; r == nil {
		t.Fatal("panic did not propagate to the computing caller")
	}
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("waiter got nil error from panicked flight")
		}
	}
	// The key must be retryable after the panic (a straggler waiter may
	// have recomputed and memoized errRecompute; forget it first so this
	// checks the panicked flight specifically was not cached).
	m.forget("boom")
	v, err := m.Do(context.Background(), "boom", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry after panic = %d, %v", v, err)
	}
}

func TestMemoKeys(t *testing.T) {
	m := NewMemo[int]()
	ctx := context.Background()
	for _, k := range []string{"c", "a", "b"} {
		if _, err := m.Do(ctx, k, func() (int, error) { return 1, nil }); err != nil {
			t.Fatal(err)
		}
	}
	got := m.Keys()
	want := []string{"a", "b", "c"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
}

func TestMemoEvictIf(t *testing.T) {
	m := NewMemo[int]()
	ctx := context.Background()
	for _, k := range []string{"keep-1", "drop-1", "drop-2", "keep-2"} {
		if _, err := m.Do(ctx, k, func() (int, error) { return 1, nil }); err != nil {
			t.Fatal(err)
		}
	}
	var calls atomic.Int64
	recount := func(k string) (int, error) { calls.Add(1); return 2, nil }

	n := m.EvictIf(func(key string) bool { return key[:4] == "drop" })
	if n != 2 {
		t.Fatalf("EvictIf evicted %d entries, want 2", n)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d after eviction, want 2", m.Len())
	}
	// Evicted keys recompute; surviving keys stay memoized.
	for _, k := range []string{"drop-1", "drop-2", "keep-1", "keep-2"} {
		if _, err := m.Do(ctx, k, func() (int, error) { return recount(k) }); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("recomputed %d entries, want 2", calls.Load())
	}
}

func TestMemoEvictIfSkipsInFlight(t *testing.T) {
	m := NewMemo[int]()
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Do(context.Background(), "inflight", func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	// The in-flight entry must survive even when the predicate matches it.
	if n := m.EvictIf(func(string) bool { return true }); n != 0 {
		t.Fatalf("EvictIf evicted %d in-flight entries, want 0", n)
	}
	close(release)
	<-done
	if n := m.EvictIf(func(string) bool { return true }); n != 1 {
		t.Fatalf("EvictIf after completion evicted %d, want 1", n)
	}
}
