package artifact

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestStorePutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	want := []byte("artifact payload bytes")
	s.Put("k1", want)
	s.Flush()
	got, ok := s.Get("k1")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, want)
	}
	if keys := s.Keys(); len(keys) != 1 || keys[0] != "k1" {
		t.Errorf("Keys = %v, want [k1]", keys)
	}
	if n, err := s.Close(); err != nil || n != 1 {
		t.Fatalf("Close = %d, %v; want 1, nil", n, err)
	}
	// A fresh process must see the durable entry.
	s2, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got, ok = s2.Get("k1")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("after reopen: Get = %q, %v; want %q, true", got, ok, want)
	}
}

func TestStoreOverwrite(t *testing.T) {
	s, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	s.Put("k", []byte("old"))
	s.Put("k", []byte("new"))
	s.Flush()
	if got, ok := s.Get("k"); !ok || string(got) != "new" {
		t.Fatalf("Get = %q, %v; want \"new\", true", got, ok)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestStoreCorruptEntryDropped(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	s.Put("k", []byte("payload"))
	s.Flush()
	path := s.storePath("k")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read entry file: %v", err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("write corrupted entry: %v", err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("Get returned a corrupt entry")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry file was not deleted")
	}
}

func TestOpenStoreSweepsStrays(t *testing.T) {
	dir := t.TempDir()
	stray := filepath.Join(dir, "leftover.tmp")
	torn := filepath.Join(dir, "deadbeef.art")
	if err := os.WriteFile(stray, []byte("tmp"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, []byte("BSTS torn entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
	for _, p := range []string{stray, torn} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("%s survived the open sweep", filepath.Base(p))
		}
	}
}

func TestStoreEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	payload := bytes.Repeat([]byte{0x5A}, 1000)
	for i := 0; i < 4; i++ {
		s.Put(fmt.Sprintf("k%d", i), payload)
	}
	s.Flush()
	if _, err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Age the entries deterministically: k0 oldest, k3 newest.
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 4; i++ {
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.storePath(fmt.Sprintf("k%d", i)), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen with room for only two entries: the two oldest must go.
	s2, err := OpenStore(dir, 2000)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	for i, want := range []bool{false, false, true, true} {
		if _, ok := s2.Get(fmt.Sprintf("k%d", i)); ok != want {
			t.Errorf("k%d present = %v, want %v", i, ok, want)
		}
	}
}

func TestStorePutAfterCloseIsNoop(t *testing.T) {
	s, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s.Put("k", []byte("late")) // must not panic or deadlock
	s.Flush()
	if n, err := s.Close(); n != 0 || err != nil {
		t.Errorf("second Close = %d, %v; want 0, nil", n, err)
	}
}
