// Package artifact defines the serializable compile-artifact format of
// the boosting toolchain: a versioned, checksummed binary encoding of a
// compiled workload — the master program after register allocation and
// profile transfer, its reference-run observables, the per-pass compile
// report, and any number of scheduled variants (one per machine model ×
// scheduler-option combination, each with its compensation-rewritten
// program image and boosted-exception recovery code).
//
// The package also provides the places artifacts live: a content-addressed
// disk store with fsync'd atomic writes, LRU size capping and
// corruption-detecting checksums (store.go), an HTTP peer client with
// per-peer timeouts and circuit breaking (peer.go), and the tiered
// disk→peer cache the pipeline consults on compile misses (tiered.go).
// See docs/ARTIFACTS.md for the wire layout and compatibility policy.
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"sort"

	"boosting/internal/core"
	"boosting/internal/isa"
	"boosting/internal/machine"
	"boosting/internal/passes"
	"boosting/internal/prog"
	"boosting/internal/sim"
)

// Version is the current artifact encoding version. Decode rejects every
// other version with ErrVersion: the format carries semantic compiler
// output, so cross-version compatibility shims are never worth a wrong
// schedule.
const Version = 1

// magic identifies an encoded Artifact; magicSched identifies a
// standalone scheduled program (EncodeSchedProgram).
const (
	magic      = "BSTA"
	magicSched = "BSTV"
)

// crcTable is the checksum polynomial (ECMA-182, the usual Go choice for
// content integrity).
var crcTable = crc64.MakeTable(crc64.ECMA)

// RefResult is the reference interpreter's observables, embedded so a
// warm process can verify simulations without re-running the reference.
type RefResult struct {
	Out      []uint32
	Insts    int64
	Branches int64
	Taken    int64
	MemHash  uint64
}

// Variant is one scheduled form of the compiled program: the machine
// schedule (cycles × issue slots, recovery code) produced for one machine
// model under one scheduler-option set, carrying its own program image
// because scheduling rewrites the CFG (compensation blocks).
type Variant struct {
	// Key identifies the variant: VariantKey(model, options) — a
	// structural model fingerprint crossed with the scheduler options, so
	// lookup never depends on model display names.
	Key string
	// Sched is the scheduled program (Sched.Model is the machine model it
	// was scheduled for).
	Sched *machine.SchedProgram
	// Stats is the schedule pass report (nil if not recorded).
	Stats *passes.CompileStats
}

// Artifact is a serializable compiled workload. It carries everything a
// fresh process needs to simulate without compiling: the master program,
// the reference observables the simulators verify against, the compile
// report, the memoized scalar baseline, and scheduled variants.
type Artifact struct {
	// Workload names the workload this artifact was compiled from.
	Workload string
	// InfiniteRegisters records whether register allocation was skipped.
	InfiniteRegisters bool
	// Program is the master compiled test program (post-regalloc,
	// post-profile-transfer, unscheduled).
	Program *prog.Program
	// Ref holds the reference interpreter's observables for Program.
	Ref RefResult
	// Accuracy is the static branch predictor's accuracy on the test
	// input.
	Accuracy float64
	// ScalarCycles is the memoized R2000 baseline cycle count (0 if not
	// yet measured).
	ScalarCycles int64
	// Stats is the per-pass report of the build that produced Program.
	Stats *passes.CompileStats
	// Variants lists scheduled forms, sorted by Key.
	Variants []*Variant
}

// ISAFingerprint digests the instruction-set definition the encoder was
// built against: every opcode's name, functional-unit class, latency and
// exception behavior, plus the architectural register count. Two builds
// with different tables must never exchange artifacts — a schedule is
// only correct for the latencies it was scheduled against.
func ISAFingerprint() uint64 {
	h := sha256.New()
	fmt.Fprintf(h, "archregs=%d;classes=%d;", isa.NumArchRegs, isa.NumClasses)
	for op := isa.Op(0); op < isa.Op(isa.NumOps); op++ {
		fmt.Fprintf(h, "%d=%s/%s/%d/%v/%v;", uint8(op), op, isa.ClassOf(op),
			isa.Latency(op), isa.CanExcept(op), isa.HasDelaySlot(op))
	}
	sum := h.Sum(nil)
	return binary.LittleEndian.Uint64(sum[:8])
}

// ModelFingerprint renders a machine model's structural identity: issue
// width, slot classes, boosting hardware and exception overhead — but not
// the display name, so models that schedule identically share variants
// and name collisions (two Wide4 configurations) stay distinct.
func ModelFingerprint(m *machine.Model) string {
	return fmt.Sprintf("iw=%d;slots=%v;boost=%d/%v/%d/%v/%v;exc=%d",
		m.IssueWidth, m.Slots, m.Boost.MaxLevel, m.Boost.StoreBuffer,
		m.Boost.StoreBufferSize, m.Boost.MultiShadow, m.Boost.SquashOnly,
		m.ExceptionOverhead)
}

// OptsKey renders the scheduler options that shape a schedule.
func OptsKey(o core.Options) string {
	return fmt.Sprintf("local=%v;noeq=%v;nodis=%v;nobl=%v;trace=%d",
		o.LocalOnly, o.DisableEquivalence, o.NoDisambiguation,
		o.NoBoostedLoads, o.MaxTraceBlocks)
}

// VariantKey identifies a scheduled variant: the structural model
// fingerprint crossed with the scheduler options.
func VariantKey(m *machine.Model, o core.Options) string {
	return ModelFingerprint(m) + "|" + OptsKey(o)
}

// AddVariant records a scheduled form of the artifact's program, replacing
// any variant with the same key. Variants stay sorted by key so encoding
// is deterministic.
func (a *Artifact) AddVariant(sp *machine.SchedProgram, opts core.Options, stats *passes.CompileStats) {
	key := VariantKey(sp.Model, opts)
	v := &Variant{Key: key, Sched: sp, Stats: stats}
	for i, old := range a.Variants {
		if old.Key == key {
			a.Variants[i] = v
			return
		}
	}
	a.Variants = append(a.Variants, v)
	sort.Slice(a.Variants, func(i, j int) bool { return a.Variants[i].Key < a.Variants[j].Key })
}

// FindVariant returns the scheduled variant for (model, options), or nil.
func (a *Artifact) FindVariant(m *machine.Model, o core.Options) *Variant {
	key := VariantKey(m, o)
	for _, v := range a.Variants {
		if v.Key == key {
			return v
		}
	}
	return nil
}

// Encode serializes the artifact:
//
//	magic "BSTA" | uvarint version | u64 ISA fingerprint | payload | u64 crc64
//
// The trailing checksum covers everything before it, so any bit flip —
// including in the magic or version — surfaces as ErrCorrupt before any
// field is interpreted. Encoding is deterministic: encoding a decoded
// artifact reproduces the bytes exactly.
func (a *Artifact) Encode() ([]byte, error) {
	if a.Program == nil {
		return nil, fmt.Errorf("artifact: encode: nil program")
	}
	w := &writer{}
	w.buf = append(w.buf, magic...)
	w.uvarint(Version)
	w.u64(ISAFingerprint())

	w.str(a.Workload)
	w.bool(a.InfiniteRegisters)
	if err := encodeProgram(w, a.Program); err != nil {
		return nil, err
	}
	w.uvarint(uint64(len(a.Ref.Out)))
	for _, v := range a.Ref.Out {
		w.uvarint(uint64(v))
	}
	w.varint(a.Ref.Insts)
	w.varint(a.Ref.Branches)
	w.varint(a.Ref.Taken)
	w.u64(a.Ref.MemHash)
	w.f64(a.Accuracy)
	w.varint(a.ScalarCycles)
	if err := encodeStats(w, a.Stats); err != nil {
		return nil, err
	}
	w.uvarint(uint64(len(a.Variants)))
	for _, v := range a.Variants {
		w.str(v.Key)
		if err := encodeVariantBody(w, v.Sched, v.Stats); err != nil {
			return nil, err
		}
	}

	w.u64(crc64.Checksum(w.buf, crcTable))
	return w.bytes(), nil
}

// Decode deserializes an artifact, rejecting damaged input (ErrCorrupt),
// other encoding versions (ErrVersion) and artifacts built against a
// different instruction set (ErrISA). Decoded programs are verified
// structurally — the program verifier on the master, the schedule
// verifier on every variant — so a decode that succeeds yields a program
// the simulators can trust as much as a freshly compiled one.
func Decode(data []byte) (*Artifact, error) {
	if err := checkFrame(data, magic); err != nil {
		return nil, err
	}
	r := newReader(data[:len(data)-8])
	r.off = len(magic)
	if v := r.uvarint(); r.err == nil && v != Version {
		return nil, fmt.Errorf("%w: got version %d, want %d", ErrVersion, v, Version)
	}
	if fp := r.u64(); r.err == nil && fp != ISAFingerprint() {
		return nil, fmt.Errorf("%w: artifact %016x, this build %016x", ErrISA, fp, ISAFingerprint())
	}

	a := &Artifact{}
	a.Workload = r.str()
	a.InfiniteRegisters = r.bool()
	a.Program = decodeProgram(r)
	nOut := r.length("output stream", 1)
	a.Ref.Out = make([]uint32, 0, nOut)
	for i := 0; i < nOut && r.err == nil; i++ {
		v := r.uvarint()
		if v > 0xFFFF_FFFF {
			r.fail("output value out of u32 range")
			break
		}
		a.Ref.Out = append(a.Ref.Out, uint32(v))
	}
	a.Ref.Insts = r.count64("ref insts")
	a.Ref.Branches = r.count64("ref branches")
	a.Ref.Taken = r.count64("ref taken")
	a.Ref.MemHash = r.u64()
	a.Accuracy = r.f64()
	a.ScalarCycles = r.count64("scalar cycles")
	a.Stats = decodeStats(r)
	nVar := r.length("variants", 4)
	for i := 0; i < nVar && r.err == nil; i++ {
		key := r.str()
		sp, stats := decodeVariantBody(r)
		if r.err != nil {
			break
		}
		a.Variants = append(a.Variants, &Variant{Key: key, Sched: sp, Stats: stats})
	}
	if r.err != nil {
		return nil, r.err
	}
	if !r.done() {
		return nil, fmt.Errorf("%w: %d trailing bytes after payload", ErrCorrupt, r.remaining())
	}

	if err := prog.VerifyProgram(a.Program); err != nil {
		return nil, fmt.Errorf("%w: decoded program fails verification: %v", ErrCorrupt, err)
	}
	for _, v := range a.Variants {
		if err := v.Sched.Verify(); err != nil {
			return nil, fmt.Errorf("%w: decoded schedule %q fails verification: %v", ErrCorrupt, v.Key, err)
		}
	}
	return a, nil
}

// Predecode lowers a decoded variant for the fast execution core,
// re-deriving the dense arrays from the schedule. The lowering is
// deterministic and cheap relative to scheduling, so the encoding ships
// the schedule once instead of the schedule plus a redundant (and
// skew-prone) copy of its lowered form; see docs/ARTIFACTS.md.
func (v *Variant) Predecode() (*sim.Predecoded, error) {
	return sim.Predecode(v.Sched)
}

// checkFrame validates the outer frame shared by every encoding: minimum
// length, magic, and the trailing crc64 over everything before it.
func checkFrame(data []byte, wantMagic string) error {
	if len(data) < len(wantMagic)+1+8+8 {
		return fmt.Errorf("%w: input too short (%d bytes)", ErrCorrupt, len(data))
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	if got := crc64.Checksum(body, crcTable); got != sum {
		return fmt.Errorf("%w: checksum mismatch (stored %016x, computed %016x)", ErrCorrupt, sum, got)
	}
	if string(data[:len(wantMagic)]) != wantMagic {
		return fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:len(wantMagic)])
	}
	return nil
}

// encodeStats embeds a compile report as JSON: the report is a stats
// payload, not a hot decode path, and Go's JSON keeps map keys sorted so
// the encoding stays deterministic.
func encodeStats(w *writer, cs *passes.CompileStats) error {
	if cs == nil {
		w.blob(nil)
		return nil
	}
	b, err := json.Marshal(cs)
	if err != nil {
		return fmt.Errorf("artifact: encode stats: %w", err)
	}
	w.blob(b)
	return nil
}

func decodeStats(r *reader) *passes.CompileStats {
	b := r.blob()
	if r.err != nil || len(b) == 0 {
		return nil
	}
	cs := &passes.CompileStats{}
	if err := json.Unmarshal(b, cs); err != nil {
		r.fail("stats payload: %v", err)
		return nil
	}
	return cs
}

// EncodeSchedProgram serializes a standalone scheduled program (its
// program image, model and schedule) with the same framing as a full
// artifact. The differential-testing oracle uses it to run every
// configuration through an encode→decode round trip.
func EncodeSchedProgram(sp *machine.SchedProgram) ([]byte, error) {
	w := &writer{}
	w.buf = append(w.buf, magicSched...)
	w.uvarint(Version)
	w.u64(ISAFingerprint())
	if err := encodeVariantBody(w, sp, nil); err != nil {
		return nil, err
	}
	w.u64(crc64.Checksum(w.buf, crcTable))
	return w.bytes(), nil
}

// DecodeSchedProgram is the inverse of EncodeSchedProgram, with the same
// rejection classes as Decode and the schedule verifier run on the
// result.
func DecodeSchedProgram(data []byte) (*machine.SchedProgram, error) {
	if err := checkFrame(data, magicSched); err != nil {
		return nil, err
	}
	r := newReader(data[:len(data)-8])
	r.off = len(magicSched)
	if v := r.uvarint(); r.err == nil && v != Version {
		return nil, fmt.Errorf("%w: got version %d, want %d", ErrVersion, v, Version)
	}
	if fp := r.u64(); r.err == nil && fp != ISAFingerprint() {
		return nil, fmt.Errorf("%w: artifact %016x, this build %016x", ErrISA, fp, ISAFingerprint())
	}
	sp, _ := decodeVariantBody(r)
	if r.err != nil {
		return nil, r.err
	}
	if !r.done() {
		return nil, fmt.Errorf("%w: %d trailing bytes after payload", ErrCorrupt, r.remaining())
	}
	if err := sp.Verify(); err != nil {
		return nil, fmt.Errorf("%w: decoded schedule fails verification: %v", ErrCorrupt, err)
	}
	return sp, nil
}
