package artifact

import (
	"bytes"
	"testing"

	"boosting/internal/core"
	"boosting/internal/machine"
)

// FuzzArtifactDecode throws arbitrary bytes at both public decoders.
// The invariants: never panic, never allocate unboundedly, and anything
// that decodes successfully must re-encode to the exact input bytes (the
// encoding is canonical). Seeds cover the valid encodings and their
// common corruptions so the fuzzer starts at the interesting frontier.
func FuzzArtifactDecode(f *testing.F) {
	a := testArtifact(f)
	enc, err := a.Encode()
	if err != nil {
		f.Fatalf("encode: %v", err)
	}
	sp := testSched(f, testProgram(f), machine.MinBoost3(), core.Options{})
	spEnc, err := EncodeSchedProgram(sp)
	if err != nil {
		f.Fatalf("encode sched: %v", err)
	}
	f.Add(enc)
	f.Add(spEnc)
	f.Add([]byte{})
	f.Add([]byte("BSTA"))
	f.Add([]byte("BSTV"))
	truncated := enc[:len(enc)/2]
	f.Add(truncated)
	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)/3] ^= 0x01
	f.Add(flipped)
	resealed := append([]byte(nil), enc...)
	resealed[len(magic)]++ // wrong version
	reseal(resealed)
	f.Add(resealed)

	f.Fuzz(func(t *testing.T, data []byte) {
		if a, err := Decode(data); err == nil {
			out, err := a.Encode()
			if err != nil {
				t.Fatalf("decoded artifact fails to re-encode: %v", err)
			}
			if !bytes.Equal(out, data) {
				t.Fatal("accepted input is not the canonical encoding of its own decode")
			}
		}
		if sp, err := DecodeSchedProgram(data); err == nil {
			out, err := EncodeSchedProgram(sp)
			if err != nil {
				t.Fatalf("decoded schedule fails to re-encode: %v", err)
			}
			if !bytes.Equal(out, data) {
				t.Fatal("accepted schedule input is not the canonical encoding of its own decode")
			}
		}
	})
}
