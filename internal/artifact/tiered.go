package artifact

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync/atomic"
)

// hashKey is the content address of a cache key: hex SHA-256, safe as a
// filename regardless of what the key contains.
func hashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// Cache is the tiered artifact cache the pipeline consults on compile
// misses: disk first, then peers, then give up and compile. Artifacts
// adopted from a peer are written through to disk so the next process on
// this node hits locally. Decode failures at any tier are treated as
// misses (and corrupt disk entries deleted) — a damaged cache must never
// be worse than an empty one.
type Cache struct {
	store *Store
	peers *PeerClient

	diskHits  atomic.Int64
	peerHits  atomic.Int64
	misses    atomic.Int64
	puts      atomic.Int64
	badDecode atomic.Int64
}

// CacheStats is a snapshot of tiered-cache traffic.
type CacheStats struct {
	DiskHits  int64
	PeerHits  int64
	Misses    int64
	Puts      int64
	BadDecode int64
	Persisted int64
}

// NewCache builds a tiered cache over a disk store and an optional peer
// client (nil = no peer tier).
func NewCache(store *Store, peers *PeerClient) *Cache {
	return &Cache{store: store, peers: peers}
}

// Get looks key up through the tiers. On a hit it returns the decoded
// artifact and the tier that served it ("disk" or "peer"); on a miss it
// returns (nil, "", nil). Decode failures never propagate as errors —
// the compile path is always a safe fallback.
func (c *Cache) Get(ctx context.Context, key string) (*Artifact, string, error) {
	if data, ok := c.store.Get(key); ok {
		if a, err := Decode(data); err == nil {
			c.diskHits.Add(1)
			return a, "disk", nil
		}
		c.badDecode.Add(1)
		c.store.drop(key)
	}
	if c.peers.NumPeers() > 0 {
		if data, ok := c.peers.Fetch(ctx, key); ok {
			if a, err := Decode(data); err == nil {
				c.peerHits.Add(1)
				c.store.Put(key, data)
				return a, "peer", nil
			}
			c.badDecode.Add(1)
		}
	}
	c.misses.Add(1)
	return nil, "", nil
}

// Put encodes the artifact and schedules it for durable storage under
// key.
func (c *Cache) Put(ctx context.Context, key string, a *Artifact) error {
	data, err := a.Encode()
	if err != nil {
		return err
	}
	c.store.Put(key, data)
	c.puts.Add(1)
	return nil
}

// GetRaw returns the encoded bytes stored under key, for serving to
// peers. It consults the disk tier only — peer requests must never
// cascade to other peers (fetch loops).
func (c *Cache) GetRaw(key string) ([]byte, bool) {
	return c.store.Get(key)
}

// Flush blocks until all scheduled writes are durable.
func (c *Cache) Flush() { c.store.Flush() }

// Close flushes and closes the underlying store, returning the number of
// artifacts this process persisted.
func (c *Cache) Close() (persisted int64, err error) {
	return c.store.Close()
}

// Stats returns a snapshot of cache traffic.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		DiskHits:  c.diskHits.Load(),
		PeerHits:  c.peerHits.Load(),
		Misses:    c.misses.Load(),
		Puts:      c.puts.Load(),
		BadDecode: c.badDecode.Load(),
		Persisted: c.store.Persisted(),
	}
}
