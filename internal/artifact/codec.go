package artifact

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// The binary codec underneath artifact encoding: a little-endian,
// varint-based writer/reader pair. The writer cannot fail; the reader is
// defensive to the last byte — every read is bounds-checked, every length
// prefix is validated against the bytes that remain, and malformed input
// surfaces as an error wrapping ErrCorrupt, never a panic or an
// attacker-sized allocation. Decode paths (disk cache, peer fetch, fuzz
// targets) all funnel through it.

// writer accumulates an encoded payload.
type writer struct {
	buf []byte
}

func (w *writer) bytes() []byte { return w.buf }

func (w *writer) u8(v uint8) { w.buf = append(w.buf, v) }

func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

func (w *writer) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *writer) varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *writer) blob(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// reader consumes an encoded payload. The first malformed read latches
// err; subsequent reads return zero values, so decode functions can read
// a whole section and check r.err once.
type reader struct {
	data []byte
	off  int
	err  error
}

func newReader(data []byte) *reader { return &reader{data: data} }

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s (offset %d)", ErrCorrupt, fmt.Sprintf(format, args...), r.off)
	}
}

func (r *reader) remaining() int { return len(r.data) - r.off }

// done reports whether the reader consumed the payload exactly.
func (r *reader) done() bool { return r.err == nil && r.off == len(r.data) }

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 1 {
		r.fail("unexpected end of input reading byte")
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *reader) bool() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("invalid boolean byte")
		return false
	}
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 8 {
		r.fail("unexpected end of input reading u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("malformed uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("malformed varint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

// length reads a length prefix and validates it against the remaining
// input, with at least minBytesPerItem bytes required per counted item.
// This caps every slice allocation at the size of the input itself.
func (r *reader) length(what string, minBytesPerItem int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if minBytesPerItem < 1 {
		minBytesPerItem = 1
	}
	if v > uint64(r.remaining()/minBytesPerItem) {
		r.fail("%s count %d exceeds remaining input", what, v)
		return 0
	}
	return int(v)
}

func (r *reader) blob() []byte {
	n := r.length("blob", 1)
	if r.err != nil {
		return nil
	}
	b := make([]byte, n)
	copy(b, r.data[r.off:r.off+n])
	r.off += n
	return b
}

func (r *reader) str() string {
	n := r.length("string", 1)
	if r.err != nil {
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}

// int32v reads a varint constrained to the int32 range (register numbers,
// immediates, block IDs).
func (r *reader) int32v(what string) int32 {
	v := r.varint()
	if r.err == nil && (v < math.MinInt32 || v > math.MaxInt32) {
		r.fail("%s %d out of int32 range", what, v)
	}
	return int32(v)
}

// count64 reads a non-negative varint (profile counts, cycle totals).
func (r *reader) count64(what string) int64 {
	v := r.varint()
	if r.err == nil && v < 0 {
		r.fail("%s must be non-negative, got %d", what, v)
	}
	return v
}

// Typed decode failures. Decode classifies every rejection as exactly one
// of these so callers (disk store, peer client, tests) can distinguish
// damaged bytes from honest version or architecture skew.
var (
	// ErrCorrupt marks input whose checksum, framing or structure is
	// damaged.
	ErrCorrupt = errors.New("artifact: corrupt input")
	// ErrVersion marks an artifact written by an incompatible encoding
	// version.
	ErrVersion = errors.New("artifact: unsupported version")
	// ErrISA marks an artifact built against a different instruction-set
	// definition (op table, latencies, classes).
	ErrISA = errors.New("artifact: ISA fingerprint mismatch")
)
