package artifact

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Store is a content-addressed disk cache of encoded artifacts. Each
// entry is one file named by the SHA-256 of its cache key, framed as
//
//	magic "BSTS" | uvarint key length | key | payload | u64 crc64
//
// so the store can enumerate keys and detect torn or bit-rotted files
// without understanding artifact semantics. Writes are asynchronous
// (Put returns immediately) but durable once flushed: a single writer
// goroutine writes each entry to a temp file, fsyncs it, renames it into
// place and fsyncs the directory, so a crash never leaves a torn entry
// visible — at worst a stray .tmp file the next Open sweeps away. When
// the store grows past its byte budget the least-recently-used entries
// (by file mtime, bumped on every Get hit) are evicted.
type Store struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	index map[string]*storeEntry // key → entry
	size  int64                  // sum of entry sizes

	reqs      chan putReq
	writerWG  sync.WaitGroup
	closed    bool
	persisted int64 // entries durably written this process
	writeErr  error // first write failure, reported by Close
}

type storeEntry struct {
	path  string
	size  int64
	mtime time.Time
}

type putReq struct {
	key  string
	data []byte
	done chan struct{} // non-nil for flush markers (data == nil)
}

const storeMagic = "BSTS"

// storePath names the entry file for a key.
func (s *Store) storePath(key string) string {
	return filepath.Join(s.dir, hashKey(key)+".art")
}

// OpenStore opens (creating if needed) a disk store rooted at dir with
// the given byte budget (0 = unbounded). Existing entries are indexed;
// corrupt or torn files — wrong magic, bad checksum, stray temp files —
// are deleted on sight.
func OpenStore(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact store: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		index:    map[string]*storeEntry{},
		reqs:     make(chan putReq, 64),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("artifact store: %w", err)
	}
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		path := filepath.Join(dir, de.Name())
		if filepath.Ext(path) != ".art" {
			os.Remove(path) // stray temp file from a crashed writer
			continue
		}
		key, data, err := readEntry(path)
		if err != nil {
			os.Remove(path)
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		s.index[key] = &storeEntry{path: path, size: int64(len(data)), mtime: info.ModTime()}
		s.size += int64(len(data))
	}
	s.evictLocked()
	s.writerWG.Add(1)
	go s.writer()
	return s, nil
}

// Get returns the encoded artifact stored under key, or (nil, false). A
// hit bumps the entry's recency; a corrupt entry is deleted and reported
// as a miss.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	e, ok := s.index[key]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	gotKey, data, err := readEntry(e.path)
	if err != nil || gotKey != key {
		s.drop(key)
		return nil, false
	}
	now := time.Now()
	os.Chtimes(e.path, now, now)
	s.mu.Lock()
	if cur, ok := s.index[key]; ok {
		cur.mtime = now
	}
	s.mu.Unlock()
	return data, true
}

// Put schedules data to be stored under key. It returns immediately; the
// write becomes durable by the next Flush (or Close). A Put after Close
// is a silent no-op.
func (s *Store) Put(key string, data []byte) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return
	}
	s.reqs <- putReq{key: key, data: data}
}

// Flush blocks until every Put issued before it has been written and
// synced.
func (s *Store) Flush() {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return
	}
	done := make(chan struct{})
	s.reqs <- putReq{done: done}
	<-done
}

// Close flushes pending writes and stops the writer. It returns the
// number of artifacts durably persisted by this process and the first
// write error, if any. Close is idempotent.
func (s *Store) Close() (persisted int64, err error) {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.reqs)
	}
	s.mu.Unlock()
	s.writerWG.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persisted, s.writeErr
}

// Keys returns the stored keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of stored entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Persisted returns the number of artifacts durably written so far.
func (s *Store) Persisted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persisted
}

// writer is the single goroutine that performs disk writes.
func (s *Store) writer() {
	defer s.writerWG.Done()
	for req := range s.reqs {
		if req.done != nil {
			close(req.done)
			continue
		}
		if err := s.write(req.key, req.data); err != nil {
			s.mu.Lock()
			if s.writeErr == nil {
				s.writeErr = err
			}
			s.mu.Unlock()
			continue
		}
		s.mu.Lock()
		s.persisted++
		if old, ok := s.index[req.key]; ok {
			s.size -= old.size
		}
		s.index[req.key] = &storeEntry{
			path:  s.storePath(req.key),
			size:  int64(len(req.data)),
			mtime: time.Now(),
		}
		s.size += int64(len(req.data))
		s.evictLocked()
		s.mu.Unlock()
	}
}

// write performs one durable entry write: temp file, fsync, rename,
// directory fsync.
func (s *Store) write(key string, data []byte) error {
	framed := frameEntry(key, data)
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("artifact store: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(framed); err != nil {
		cleanup()
		return fmt.Errorf("artifact store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("artifact store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("artifact store: %w", err)
	}
	if err := os.Rename(tmpName, s.storePath(key)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("artifact store: %w", err)
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync() // best effort: make the rename itself durable
		d.Close()
	}
	return nil
}

// drop removes an entry from the index and disk.
func (s *Store) drop(key string) {
	s.mu.Lock()
	if e, ok := s.index[key]; ok {
		delete(s.index, key)
		s.size -= e.size
		os.Remove(e.path)
	}
	s.mu.Unlock()
}

// evictLocked deletes least-recently-used entries until the store fits
// its byte budget. Caller holds s.mu.
func (s *Store) evictLocked() {
	if s.maxBytes <= 0 || s.size <= s.maxBytes {
		return
	}
	type cand struct {
		key string
		e   *storeEntry
	}
	cands := make([]cand, 0, len(s.index))
	for k, e := range s.index {
		cands = append(cands, cand{k, e})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].e.mtime.Before(cands[j].e.mtime) })
	for _, c := range cands {
		if s.size <= s.maxBytes {
			break
		}
		delete(s.index, c.key)
		s.size -= c.e.size
		os.Remove(c.e.path)
	}
}

// frameEntry wraps a payload in the store's on-disk frame.
func frameEntry(key string, data []byte) []byte {
	w := &writer{}
	w.buf = append(w.buf, storeMagic...)
	w.str(key)
	w.blob(data)
	w.u64(crc64.Checksum(w.buf, crcTable))
	return w.bytes()
}

// readEntry reads and validates one entry file, returning its key and
// payload.
func readEntry(path string) (key string, data []byte, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	if len(raw) < len(storeMagic)+1+1+8 {
		return "", nil, fmt.Errorf("%w: store entry too short", ErrCorrupt)
	}
	body, sum := raw[:len(raw)-8], binary.LittleEndian.Uint64(raw[len(raw)-8:])
	if crc64.Checksum(body, crcTable) != sum {
		return "", nil, fmt.Errorf("%w: store entry checksum mismatch", ErrCorrupt)
	}
	if string(raw[:len(storeMagic)]) != storeMagic {
		return "", nil, fmt.Errorf("%w: bad store entry magic", ErrCorrupt)
	}
	r := newReader(body)
	r.off = len(storeMagic)
	key = r.str()
	data = r.blob()
	if r.err != nil {
		return "", nil, r.err
	}
	if !r.done() {
		return "", nil, fmt.Errorf("%w: trailing bytes in store entry", ErrCorrupt)
	}
	return key, data, nil
}
