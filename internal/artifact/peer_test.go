package artifact

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// peerServer serves a fixed key→payload map over the boostd artifact
// wire protocol and counts requests.
func peerServer(t *testing.T, entries map[string][]byte) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		key, err := url.PathUnescape(strings.TrimPrefix(r.URL.EscapedPath(), "/v1/artifact/"))
		if err != nil {
			http.Error(w, "bad key", http.StatusBadRequest)
			return
		}
		data, ok := entries[key]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(data)
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func TestPeerFetchHit(t *testing.T) {
	want := []byte("peer payload")
	ts, _ := peerServer(t, map[string][]byte{"compile|grep|alloc=true": want})
	pc := NewPeerClient([]string{ts.URL}, time.Second)
	got, ok := pc.Fetch(context.Background(), "compile|grep|alloc=true")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Fetch = %q, %v; want %q, true", got, ok, want)
	}
}

func TestPeerFetchMiss(t *testing.T) {
	ts, hits := peerServer(t, nil)
	pc := NewPeerClient([]string{ts.URL}, time.Second)
	for i := 0; i < breakerThreshold+2; i++ {
		if _, ok := pc.Fetch(context.Background(), "absent"); ok {
			t.Fatal("Fetch reported a hit for an absent key")
		}
	}
	// Clean 404 misses must not trip the circuit breaker.
	if got := hits.Load(); got != int64(breakerThreshold+2) {
		t.Errorf("peer saw %d requests, want %d (404s must not open the breaker)", got, breakerThreshold+2)
	}
}

func TestPeerBreakerOpensOnFailures(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(ts.Close)
	pc := NewPeerClient([]string{ts.URL}, time.Second)
	for i := 0; i < breakerThreshold+5; i++ {
		if _, ok := pc.Fetch(context.Background(), "k"); ok {
			t.Fatal("Fetch succeeded against a failing peer")
		}
	}
	if got := hits.Load(); got != int64(breakerThreshold) {
		t.Errorf("failing peer saw %d requests, want %d (breaker must open)", got, breakerThreshold)
	}
}

func TestPeerSecondPeerServes(t *testing.T) {
	want := []byte("from the second peer")
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	t.Cleanup(down.Close)
	up, _ := peerServer(t, map[string][]byte{"k": want})
	pc := NewPeerClient([]string{down.URL, up.URL}, time.Second)
	got, ok := pc.Fetch(context.Background(), "k")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Fetch = %q, %v; want %q, true", got, ok, want)
	}
}

func TestPeerNilClient(t *testing.T) {
	var pc *PeerClient
	if pc.NumPeers() != 0 {
		t.Error("nil client reports peers")
	}
	pc = NewPeerClient(nil, 0)
	if _, ok := pc.Fetch(context.Background(), "k"); ok {
		t.Error("peerless client reported a hit")
	}
}

func TestTieredCacheDiskAndPeer(t *testing.T) {
	ctx := context.Background()
	a := testArtifact(t)
	enc, err := a.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	const key = "compile|codec-test|alloc=true"
	up, _ := peerServer(t, map[string][]byte{key: enc})

	store, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	c := NewCache(store, NewPeerClient([]string{up.URL}, time.Second))
	defer c.Close()

	// Cold: no disk entry, peer serves, the cache adopts it.
	got, source, err := c.Get(ctx, key)
	if err != nil || got == nil || source != "peer" {
		t.Fatalf("Get = %v, %q, %v; want artifact, \"peer\", nil", got, source, err)
	}
	if got.Workload != a.Workload {
		t.Errorf("peer artifact workload = %q, want %q", got.Workload, a.Workload)
	}

	// Warm: the adopted entry now serves from disk.
	c.Flush()
	if _, source, _ = c.Get(ctx, key); source != "disk" {
		t.Fatalf("second Get source = %q, want \"disk\"", source)
	}
	if raw, ok := c.GetRaw(key); !ok || !bytes.Equal(raw, enc) {
		t.Error("GetRaw does not serve the adopted bytes")
	}

	// Missing everywhere: a clean miss, not an error.
	if got, source, err := c.Get(ctx, "absent"); got != nil || source != "" || err != nil {
		t.Fatalf("miss Get = %v, %q, %v; want nil, \"\", nil", got, source, err)
	}

	// A corrupt disk entry falls through (and is dropped), not served.
	c.Put(ctx, "bad", a)
	c.Flush()
	store.Put("bad", []byte("garbage, not an artifact"))
	c.Flush()
	if got, _, _ := c.Get(ctx, "bad"); got != nil {
		t.Fatal("Get decoded a corrupt disk entry")
	}

	st := c.Stats()
	if st.PeerHits != 1 || st.DiskHits != 1 || st.Misses < 1 || st.BadDecode != 1 {
		t.Errorf("Stats = %+v; want PeerHits=1 DiskHits=1 Misses>=1 BadDecode=1", st)
	}
}
