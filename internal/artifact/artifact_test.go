package artifact

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc64"
	"sort"
	"strings"
	"testing"

	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/passes"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/regalloc"
)

// testAsmSrc is a small self-contained program with data-dependent
// branches, loads and stores, so schedules carry boosted instructions,
// compensation code and recovery sites — every feature the codec must
// round-trip.
const testAsmSrc = `; artifact codec test program
.word 3
.word -1
.word 4
.word -1
.word 5
.word -9
.reserve 64

.proc main
entry:
	li v0, 0x10000
	li v1, 6
	li v2, 0
	li v3, 0
	;fallthrough -> loop
loop:
	add v4, v0, v3
	lw v5, 0(v4)
	bltz v5, neg, pos
pos:
	add v2, v2, v5
	j next
neg:
	sub v2, v2, v5
	sw v2, 24(v4)
	j next
next:
	addi v3, v3, 4
	addi v1, v1, -1
	bgtz v1, loop, done
done:
	out v2
	halt
`

// testProgram parses, register-allocates and profiles the test source.
func testProgram(t testing.TB) *prog.Program {
	t.Helper()
	pr, err := prog.Parse(testAsmSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := regalloc.Allocate(pr); err != nil {
		t.Fatalf("regalloc: %v", err)
	}
	if err := profile.Annotate(pr); err != nil {
		t.Fatalf("profile: %v", err)
	}
	return pr
}

// testSched schedules a clone of pr (scheduling rewrites the CFG).
func testSched(t testing.TB, pr *prog.Program, m *machine.Model, o core.Options) *machine.SchedProgram {
	t.Helper()
	sp, err := core.Schedule(prog.Clone(pr), m, o)
	if err != nil {
		t.Fatalf("schedule %s: %v", m, err)
	}
	return sp
}

// testArtifact builds a fully populated artifact: master program,
// reference observables, and one recorded schedule.
func testArtifact(t testing.TB) *Artifact {
	t.Helper()
	pr := testProgram(t)
	a := &Artifact{
		Workload: "codec-test",
		Program:  pr,
		Ref: RefResult{
			Out:      []uint32{7, 0xFFFF_FFF9, 12},
			Insts:    421,
			Branches: 77,
			Taken:    41,
			MemHash:  0xDEAD_BEEF_F00D_CAFE,
		},
		Accuracy:     0.875,
		ScalarCycles: 513,
		Stats:        &passes.CompileStats{},
	}
	a.AddVariant(testSched(t, pr, machine.MinBoost3(), core.Options{}), core.Options{}, nil)
	return a
}

// formatSched renders a schedule (including recovery code) the way the
// boostcc driver prints it, giving a byte-comparable listing.
func formatSched(sp *machine.SchedProgram) string {
	var b strings.Builder
	for _, name := range sp.Prog.Order {
		proc := sp.Procs[name]
		b.WriteString(proc.Format())
		ids := make([]int, 0, len(proc.Recovery))
		for id := range proc.Recovery {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			fmt.Fprintf(&b, ".recovery %d:\n", id)
			for _, inst := range proc.Recovery[id] {
				fmt.Fprintf(&b, "\t%s\n", inst.String())
			}
		}
	}
	return b.String()
}

func TestArtifactRoundTrip(t *testing.T) {
	a := testArtifact(t)
	data, err := a.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Workload != a.Workload || got.InfiniteRegisters != a.InfiniteRegisters {
		t.Errorf("identity mismatch: got %q/%v", got.Workload, got.InfiniteRegisters)
	}
	if fmt.Sprint(got.Ref) != fmt.Sprint(a.Ref) {
		t.Errorf("ref mismatch:\n got %v\nwant %v", got.Ref, a.Ref)
	}
	if got.Accuracy != a.Accuracy || got.ScalarCycles != a.ScalarCycles {
		t.Errorf("accuracy/scalar mismatch: %v/%d", got.Accuracy, got.ScalarCycles)
	}
	if want, have := prog.FormatProgram(a.Program), prog.FormatProgram(got.Program); want != have {
		t.Errorf("program listing differs after round trip:\n%s\n-- vs --\n%s", have, want)
	}
	if len(got.Variants) != len(a.Variants) {
		t.Fatalf("got %d variants, want %d", len(got.Variants), len(a.Variants))
	}
	for i := range a.Variants {
		if got.Variants[i].Key != a.Variants[i].Key {
			t.Errorf("variant %d key = %q, want %q", i, got.Variants[i].Key, a.Variants[i].Key)
		}
		if want, have := formatSched(a.Variants[i].Sched), formatSched(got.Variants[i].Sched); want != have {
			t.Errorf("variant %d schedule differs after round trip", i)
		}
	}
	// The decoded artifact must re-encode byte-identically: the encoding
	// is canonical, so content-addressing is stable across processes.
	data2, err := got.Encode()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("re-encoding a decoded artifact changed the bytes")
	}
}

func TestSchedProgramRoundTrip(t *testing.T) {
	pr := testProgram(t)
	for _, m := range []*machine.Model{machine.Boost1(), machine.MinBoost3(), machine.Boost7()} {
		sp := testSched(t, pr, m, core.Options{})
		data, err := EncodeSchedProgram(sp)
		if err != nil {
			t.Fatalf("%s: encode: %v", m, err)
		}
		got, err := DecodeSchedProgram(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", m, err)
		}
		if want, have := formatSched(sp), formatSched(got); want != have {
			t.Errorf("%s: schedule listing differs after round trip:\n%s\n-- vs --\n%s", m, have, want)
		}
		data2, err := EncodeSchedProgram(got)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", m, err)
		}
		if !bytes.Equal(data, data2) {
			t.Errorf("%s: re-encoding changed the bytes", m)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	data, err := testArtifact(t).Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for i := 0; i < len(data); i++ {
		if _, err := Decode(data[:i]); err == nil {
			t.Fatalf("Decode accepted a %d/%d-byte truncation", i, len(data))
		}
	}
}

func TestDecodeBitFlip(t *testing.T) {
	data, err := testArtifact(t).Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for i := 0; i < len(data); i += 31 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := Decode(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at byte %d: err = %v, want ErrCorrupt", i, err)
		}
	}
}

// reseal recomputes the checksum trailer after a deliberate header edit,
// so decode failures are attributable to the edit, not the checksum.
func reseal(data []byte) {
	crc := crc64.Checksum(data[:len(data)-8], crcTable)
	for i := 0; i < 8; i++ {
		data[len(data)-8+i] = byte(crc >> (8 * i))
	}
}

func TestDecodeWrongVersion(t *testing.T) {
	data, err := testArtifact(t).Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	data[len(magic)]++ // the version uvarint sits right after the magic
	reseal(data)
	if _, err := Decode(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestDecodeWrongISA(t *testing.T) {
	data, err := testArtifact(t).Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	data[len(magic)+1] ^= 0xFF // first ISA-fingerprint byte
	reseal(data)
	if _, err := Decode(data); !errors.Is(err, ErrISA) {
		t.Fatalf("err = %v, want ErrISA", err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("BSTA"),
		[]byte("not an artifact at all"),
		bytes.Repeat([]byte{0xA5}, 4096),
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: Decode accepted garbage", i)
		}
		if _, err := DecodeSchedProgram(c); err == nil {
			t.Errorf("case %d: DecodeSchedProgram accepted garbage", i)
		}
	}
}

func TestVariantKeys(t *testing.T) {
	keys := map[string]bool{}
	for _, m := range []*machine.Model{machine.Scalar(), machine.NoBoost(), machine.Squashing(),
		machine.Boost1(), machine.MinBoost3(), machine.Boost7(),
		machine.Wide4(machine.BoostConfig{MaxLevel: 3, StoreBuffer: true})} {
		for _, o := range []core.Options{{}, {LocalOnly: true}, {DisableEquivalence: true}} {
			k := VariantKey(m, o)
			if keys[k] {
				t.Errorf("duplicate variant key %q", k)
			}
			keys[k] = true
		}
	}
}

func TestAddVariantReplaces(t *testing.T) {
	pr := testProgram(t)
	a := &Artifact{Workload: "w", Program: pr}
	sp1 := testSched(t, pr, machine.MinBoost3(), core.Options{})
	sp2 := testSched(t, pr, machine.MinBoost3(), core.Options{})
	a.AddVariant(sp1, core.Options{}, nil)
	a.AddVariant(sp2, core.Options{}, nil)
	if len(a.Variants) != 1 {
		t.Fatalf("got %d variants, want 1 (same key must replace)", len(a.Variants))
	}
	if v := a.FindVariant(machine.MinBoost3(), core.Options{}); v == nil || v.Sched != sp2 {
		t.Error("FindVariant did not return the replacement")
	}
	if v := a.FindVariant(machine.Boost7(), core.Options{}); v != nil {
		t.Error("FindVariant matched a model that was never added")
	}
}
