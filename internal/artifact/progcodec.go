package artifact

import (
	"sort"

	"boosting/internal/isa"
	"boosting/internal/machine"
	"boosting/internal/passes"
	"boosting/internal/prog"
)

// Codecs for the compiler IR: instructions, whole programs, machine
// models and machine schedules. Programs serialize procedures in Order;
// within a procedure, CFG edges and the entry block are encoded as
// indices into the procedure's block list and re-wired to pointers on
// decode. Schedules serialize against their own program image (scheduling
// rewrites the CFG), referencing blocks by index the same way. All
// map-shaped state (scheduled blocks, recovery sites) is encoded in
// sorted key order so encoding is deterministic.

func encodeInst(w *writer, in *isa.Inst) {
	w.u8(uint8(in.Op))
	w.varint(int64(in.Rd))
	w.varint(int64(in.Rs))
	w.varint(int64(in.Rt))
	w.varint(int64(in.Imm))
	w.str(in.Sym)
	w.bool(in.Pred)
	w.varint(int64(in.Boost))
	w.uvarint(uint64(len(in.Dirs)))
	for _, d := range in.Dirs {
		w.u8(uint8(d))
	}
	w.varint(int64(in.ID))
}

func decodeInst(r *reader) isa.Inst {
	var in isa.Inst
	op := r.u8()
	if r.err == nil && int(op) >= isa.NumOps {
		r.fail("opcode %d out of range", op)
		return in
	}
	in.Op = isa.Op(op)
	in.Rd = isa.Reg(r.int32v("register"))
	in.Rs = isa.Reg(r.int32v("register"))
	in.Rt = isa.Reg(r.int32v("register"))
	in.Imm = r.int32v("immediate")
	in.Sym = r.str()
	in.Pred = r.bool()
	in.Boost = int(r.count64("boost level"))
	nDirs := r.length("branch dirs", 1)
	for i := 0; i < nDirs && r.err == nil; i++ {
		d := r.u8()
		if r.err == nil && d > uint8(isa.DirX) {
			r.fail("branch direction %d out of range", d)
			break
		}
		in.Dirs = append(in.Dirs, isa.BranchDir(d))
	}
	in.ID = int(r.varint())
	return in
}

func encodeProgram(w *writer, pr *prog.Program) error {
	w.uvarint(uint64(len(pr.Order)))
	for _, name := range pr.Order {
		p := pr.Procs[name]
		w.str(name)
		if err := encodeProc(w, p); err != nil {
			return err
		}
	}
	w.blob(pr.Data)
	w.varint(int64(pr.BSS))
	nextID, numVirt := pr.Counters()
	w.varint(int64(nextID))
	w.varint(int64(numVirt))
	return nil
}

func encodeProc(w *writer, p *prog.Proc) error {
	index := make(map[*prog.Block]int, len(p.Blocks))
	for i, b := range p.Blocks {
		index[b] = i
	}
	w.uvarint(uint64(len(p.Blocks)))
	for _, b := range p.Blocks {
		w.varint(int64(b.ID))
		w.str(b.Label)
		w.bool(b.Recovery)
		w.varint(b.Count)
		w.varint(b.TakenCount)
		w.uvarint(uint64(len(b.Insts)))
		for i := range b.Insts {
			encodeInst(w, &b.Insts[i])
		}
		w.uvarint(uint64(len(b.Succs)))
		for _, s := range b.Succs {
			w.uvarint(uint64(index[s]))
		}
	}
	w.uvarint(uint64(index[p.Entry]))
	return nil
}

func decodeProgram(r *reader) *prog.Program {
	pr := prog.New()
	nProcs := r.length("procedures", 2)
	for i := 0; i < nProcs && r.err == nil; i++ {
		name := r.str()
		p := decodeProc(r, name)
		if r.err != nil {
			break
		}
		if _, dup := pr.Procs[name]; dup {
			r.fail("duplicate procedure %q", name)
			break
		}
		pr.AddProc(p)
	}
	pr.Data = r.blob()
	pr.BSS = int(r.count64("bss size"))
	nextID := r.count64("inst id counter")
	numVirt := r.int32v("virtual reg counter")
	if r.err == nil && numVirt < 0 {
		r.fail("virtual reg counter must be non-negative, got %d", numVirt)
	}
	pr.RestoreCounters(int(nextID), numVirt)
	return pr
}

func decodeProc(r *reader, name string) *prog.Proc {
	p := &prog.Proc{Name: name}
	nBlocks := r.length("blocks", 6)
	// succIdx[i] holds block i's successor indices, wired to pointers
	// after all blocks exist.
	succIdx := make([][]int, nBlocks)
	seenID := make(map[int]bool, nBlocks)
	for i := 0; i < nBlocks && r.err == nil; i++ {
		b := &prog.Block{}
		b.ID = int(r.count64("block id"))
		if r.err == nil && seenID[b.ID] {
			r.fail("duplicate block id %d in proc %q", b.ID, name)
			break
		}
		seenID[b.ID] = true
		b.Label = r.str()
		b.Recovery = r.bool()
		b.Count = r.count64("block count")
		b.TakenCount = r.count64("taken count")
		nInsts := r.length("instructions", 8)
		b.Insts = make([]isa.Inst, 0, nInsts)
		for j := 0; j < nInsts && r.err == nil; j++ {
			b.Insts = append(b.Insts, decodeInst(r))
		}
		nSuccs := r.length("successors", 1)
		for j := 0; j < nSuccs && r.err == nil; j++ {
			idx := r.uvarint()
			if r.err == nil && idx >= uint64(nBlocks) {
				r.fail("successor index %d out of range", idx)
				break
			}
			succIdx[i] = append(succIdx[i], int(idx))
		}
		p.Blocks = append(p.Blocks, b)
	}
	entry := r.uvarint()
	if r.err != nil {
		return p
	}
	if entry >= uint64(len(p.Blocks)) {
		r.fail("entry index %d out of range", entry)
		return p
	}
	p.Entry = p.Blocks[entry]
	for i, b := range p.Blocks {
		for _, si := range succIdx[i] {
			b.Succs = append(b.Succs, p.Blocks[si])
		}
	}
	p.RecomputePreds()
	return p
}

func encodeModel(w *writer, m *machine.Model) {
	w.str(m.Name)
	w.varint(int64(m.IssueWidth))
	w.uvarint(uint64(len(m.Slots)))
	for _, s := range m.Slots {
		w.uvarint(uint64(s))
	}
	w.varint(int64(m.Boost.MaxLevel))
	w.bool(m.Boost.StoreBuffer)
	w.varint(int64(m.Boost.StoreBufferSize))
	w.bool(m.Boost.MultiShadow)
	w.bool(m.Boost.SquashOnly)
	w.varint(int64(m.ExceptionOverhead))
}

func decodeModel(r *reader) *machine.Model {
	m := &machine.Model{}
	m.Name = r.str()
	m.IssueWidth = int(r.count64("issue width"))
	nSlots := r.length("slots", 1)
	for i := 0; i < nSlots && r.err == nil; i++ {
		s := r.uvarint()
		if r.err == nil && s > 0xFFFF {
			r.fail("slot class set %d out of u16 range", s)
			break
		}
		m.Slots = append(m.Slots, machine.ClassSet(s))
	}
	if r.err == nil && m.IssueWidth != len(m.Slots) {
		r.fail("issue width %d does not match %d slots", m.IssueWidth, len(m.Slots))
	}
	m.Boost.MaxLevel = int(r.count64("max boost level"))
	m.Boost.StoreBuffer = r.bool()
	m.Boost.StoreBufferSize = int(r.count64("store buffer size"))
	m.Boost.MultiShadow = r.bool()
	m.Boost.SquashOnly = r.bool()
	m.ExceptionOverhead = int(r.count64("exception overhead"))
	return m
}

// encodeVariantBody serializes a scheduled program — its own program
// image, its machine model, and per-procedure schedules — plus an
// optional schedule-pass report.
func encodeVariantBody(w *writer, sp *machine.SchedProgram, stats *passes.CompileStats) error {
	if err := encodeProgram(w, sp.Prog); err != nil {
		return err
	}
	encodeModel(w, sp.Model)
	w.uvarint(uint64(len(sp.Prog.Order)))
	for _, name := range sp.Prog.Order {
		w.str(name)
		if err := encodeSchedProc(w, sp.Prog.Procs[name], sp.Procs[name]); err != nil {
			return err
		}
	}
	return encodeStats(w, stats)
}

func encodeSchedProc(w *writer, p *prog.Proc, sc *machine.SchedProc) error {
	index := make(map[int]int, len(p.Blocks)) // block ID → index in p.Blocks
	for i, b := range p.Blocks {
		index[b.ID] = i
	}
	ids := make([]int, 0, len(sc.Blocks))
	for id := range sc.Blocks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	w.uvarint(uint64(len(ids)))
	for _, id := range ids {
		sb := sc.Blocks[id]
		w.uvarint(uint64(index[sb.Block.ID]))
		w.uvarint(uint64(len(sb.Cycles)))
		for ci := range sb.Cycles {
			slots := sb.Cycles[ci].Slots
			w.uvarint(uint64(len(slots)))
			for _, in := range slots {
				if in == nil {
					w.bool(false)
					continue
				}
				w.bool(true)
				encodeInst(w, in)
			}
		}
	}
	sites := make([]int, 0, len(sc.Recovery))
	for id := range sc.Recovery {
		sites = append(sites, id)
	}
	sort.Ints(sites)
	w.uvarint(uint64(len(sites)))
	for _, id := range sites {
		w.varint(int64(id))
		rec := sc.Recovery[id]
		w.uvarint(uint64(len(rec)))
		for i := range rec {
			encodeInst(w, &rec[i])
		}
	}
	return nil
}

func decodeVariantBody(r *reader) (*machine.SchedProgram, *passes.CompileStats) {
	pr := decodeProgram(r)
	model := decodeModel(r)
	sp := &machine.SchedProgram{Prog: pr, Model: model, Procs: map[string]*machine.SchedProc{}}
	nProcs := r.length("scheduled procedures", 2)
	for i := 0; i < nProcs && r.err == nil; i++ {
		name := r.str()
		if r.err != nil {
			break
		}
		p, ok := pr.Procs[name]
		if !ok {
			r.fail("schedule references unknown procedure %q", name)
			break
		}
		if _, dup := sp.Procs[name]; dup {
			r.fail("duplicate schedule for procedure %q", name)
			break
		}
		sp.Procs[name] = decodeSchedProc(r, p)
	}
	stats := decodeStats(r)
	if r.err != nil {
		return nil, nil
	}
	return sp, stats
}

func decodeSchedProc(r *reader, p *prog.Proc) *machine.SchedProc {
	sc := &machine.SchedProc{
		Proc:     p,
		Blocks:   map[int]*machine.SchedBlock{},
		Recovery: map[int][]isa.Inst{},
	}
	nBlocks := r.length("scheduled blocks", 2)
	for i := 0; i < nBlocks && r.err == nil; i++ {
		idx := r.uvarint()
		if r.err != nil {
			break
		}
		if idx >= uint64(len(p.Blocks)) {
			r.fail("scheduled block index %d out of range", idx)
			break
		}
		b := p.Blocks[idx]
		if _, dup := sc.Blocks[b.ID]; dup {
			r.fail("duplicate schedule for block %d", b.ID)
			break
		}
		sb := &machine.SchedBlock{Block: b}
		nCycles := r.length("cycles", 1)
		for ci := 0; ci < nCycles && r.err == nil; ci++ {
			nSlots := r.length("slots", 1)
			cy := machine.Cycle{Slots: make([]*isa.Inst, 0, nSlots)}
			for si := 0; si < nSlots && r.err == nil; si++ {
				if !r.bool() {
					cy.Slots = append(cy.Slots, nil)
					continue
				}
				in := decodeInst(r)
				cy.Slots = append(cy.Slots, &in)
			}
			sb.Cycles = append(sb.Cycles, cy)
		}
		sc.Blocks[b.ID] = sb
	}
	nSites := r.length("recovery sites", 2)
	for i := 0; i < nSites && r.err == nil; i++ {
		id := int(r.varint())
		if _, dup := sc.Recovery[id]; r.err == nil && dup {
			r.fail("duplicate recovery site %d", id)
			break
		}
		nInsts := r.length("recovery instructions", 8)
		rec := make([]isa.Inst, 0, nInsts)
		for j := 0; j < nInsts && r.err == nil; j++ {
			rec = append(rec, decodeInst(r))
		}
		sc.Recovery[id] = rec
	}
	return sc
}
