package artifact

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// PeerClient fetches encoded artifacts from sibling boostd nodes. Each
// peer gets its own request timeout and a small circuit breaker: after
// breakerThreshold consecutive transport failures the peer is skipped
// for breakerCooldown before being probed again, so one dead sibling
// costs one timeout per cooldown window instead of one per miss. A 404
// is an honest miss, not a failure.
type PeerClient struct {
	peers   []*peerState
	timeout time.Duration
	client  *http.Client
	// maxBody bounds how many bytes a peer response may carry; a peer
	// (even a trusted one) must not be able to balloon our memory.
	maxBody int64
}

type peerState struct {
	base string

	mu       sync.Mutex
	failures int
	downTil  time.Time
}

const (
	breakerThreshold = 3
	breakerCooldown  = 30 * time.Second
	defaultPeerBody  = 64 << 20
)

// NewPeerClient builds a client over the given peer base URLs (e.g.
// "http://host:8080"); empty entries are dropped. timeout bounds each
// individual peer request (0 = 5s).
func NewPeerClient(peers []string, timeout time.Duration) *PeerClient {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	pc := &PeerClient{
		timeout: timeout,
		client:  &http.Client{},
		maxBody: defaultPeerBody,
	}
	for _, p := range peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" {
			continue
		}
		pc.peers = append(pc.peers, &peerState{base: p})
	}
	return pc
}

// NumPeers returns the number of configured peers.
func (pc *PeerClient) NumPeers() int {
	if pc == nil {
		return 0
	}
	return len(pc.peers)
}

// Fetch asks each available peer in order for the artifact stored under
// key, returning the first hit. It returns (nil, false) when every peer
// misses, is down, or is cooling off.
func (pc *PeerClient) Fetch(ctx context.Context, key string) ([]byte, bool) {
	if pc == nil {
		return nil, false
	}
	for _, p := range pc.peers {
		if !p.available() {
			continue
		}
		data, err := pc.fetchOne(ctx, p, key)
		switch {
		case err == nil && data != nil:
			p.succeed()
			return data, true
		case err == nil: // clean miss
			p.succeed()
		default:
			p.fail()
		}
		if ctx.Err() != nil {
			return nil, false
		}
	}
	return nil, false
}

// fetchOne performs one peer request. It returns (nil, nil) for a miss
// and a non-nil error only for transport-level failures that should
// count against the breaker.
func (pc *PeerClient) fetchOne(ctx context.Context, p *peerState, key string) ([]byte, error) {
	rctx, cancel := context.WithTimeout(ctx, pc.timeout)
	defer cancel()
	u := p.base + "/v1/artifact/" + url.PathEscape(key)
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := pc.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, pc.maxBody+1))
		if err != nil {
			return nil, err
		}
		if int64(len(data)) > pc.maxBody {
			return nil, fmt.Errorf("peer response exceeds %d bytes", pc.maxBody)
		}
		return data, nil
	case http.StatusNotFound:
		return nil, nil
	default:
		return nil, fmt.Errorf("peer returned %s", resp.Status)
	}
}

func (p *peerState) available() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return time.Now().After(p.downTil)
}

func (p *peerState) succeed() {
	p.mu.Lock()
	p.failures = 0
	p.mu.Unlock()
}

func (p *peerState) fail() {
	p.mu.Lock()
	p.failures++
	if p.failures >= breakerThreshold {
		p.downTil = time.Now().Add(breakerCooldown)
		p.failures = 0
	}
	p.mu.Unlock()
}
