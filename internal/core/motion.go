package core

import (
	"fmt"

	"boosting/internal/dataflow"
	"boosting/internal/ddg"
	"boosting/internal/isa"
	"boosting/internal/prog"
)

// motionPlan describes how a foreign instruction reaches its placement
// block: the boosting level required (0 for safe-and-legal plain motion or
// an equivalence move), the committing branch's trace index, and the
// off-trace edges that need compensation copies.
type motionPlan struct {
	level    int
	endIdx   int
	dupEdges []dupEdge
}

// dupEdge names a CFG edge (from.Succs[slot] == to) that must receive a
// compensation copy.
type dupEdge struct {
	from *prog.Block
	slot int
	to   *prog.Block
}

// planMotion decides whether node n (living in trace block n.BlockIdx) may
// move up to trace block bi, and with what bookkeeping. It returns a nil
// plan and a Reject* bucket name if the motion is not allowed under the
// current machine model. shadowZone reports whether the candidate slot
// lies in the branch-issue or delay cycle of block bi (the Squashing
// model's only boosting positions).
//
// This is the paper's Figure 5 algorithm, evaluated for the whole path at
// once: equivalence pairs move without compensation; motion out of the top
// of a join block duplicates onto the off-trace edges; motion into the
// bottom of a block with multiple successors boosts when the speculation
// is unsafe (the op can fault, or is a store or an OUT) or illegal (the
// destination is live into the non-predicted successor).
func (s *scheduler) planMotion(st *traceState, n *ddg.Node, bi int, shadowZone bool) (*motionPlan, string) {
	oi := n.BlockIdx
	op := n.Inst.Op
	trace := st.trace
	dest, hasDest := n.Inst.Dest()
	lv := s.am.Liveness()

	branches := 0
	needBoost := false
	degenerate := false
	endIdx := -1
	for k := bi; k < oi; k++ {
		t := trace[k].Terminator()
		switch {
		case t == nil || t.Op == isa.J:
			continue // unconditional flow: not a speculation boundary
		case isa.IsCondBranch(t.Op):
			branches++
			endIdx = k
			next := trace[k+1]
			if trace[k].Succs[0] == next && trace[k].Succs[1] == next {
				// Both branch targets reach the next trace block: the
				// motion is never speculative with respect to this branch,
				// but boosting across it is impossible (a "misprediction"
				// would squash state the continuing path still needs).
				degenerate = true
				continue
			}
			var off *prog.Block
			if t.Pred {
				off = trace[k].Succs[0]
			} else {
				off = trace[k].Succs[1]
			}
			if isa.CanExcept(op) || isa.IsStore(op) || op == isa.OUT {
				needBoost = true // unsafe speculative movement
			}
			if hasDest && dest != isa.R0 && lv.In[off.ID].Has(int(dest)) {
				needBoost = true // illegal speculative movement
			}
		default:
			return nil, RejectCallBoundary // calls/returns/halts are never crossed
		}
	}

	// The control/data-equivalence shortcut: the motion is not speculative
	// at all, needs no boosting and no duplication (paper Figure 5's
	// "move I to bottom of pair").
	if branches > 0 && !s.opts.DisableEquivalence &&
		s.am.CFG().ControlEquivalent(trace[bi], trace[oi]) &&
		s.dataEquivalent(st, n, bi, oi) {
		if s.shadowVisible(st, n, bi, 0) && s.flattenSafe(st, n, bi) {
			return &motionPlan{level: 0, endIdx: -1}, ""
		}
		// Otherwise fall through: the motion may still be possible as a
		// boosted motion below.
	}

	if branches > 0 && op == isa.OUT {
		return nil, RejectObservableOut // observable output is never speculated
	}

	// boostAllowed checks the machine model's constraints for boosting
	// this instruction across the crossed branches, reporting the first
	// violated constraint's rejection bucket.
	boostAllowed := func() (bool, string) {
		b := s.model.Boost
		if degenerate || branches > b.MaxLevel {
			return false, RejectShadowLimit
		}
		if s.opts.NoBoostedLoads && isa.IsLoad(op) {
			return false, RejectBoostedLoad // ablation: loads stay below branches
		}
		if isa.IsStore(op) && !b.StoreBuffer {
			return false, RejectStoreBuffer // Option 1: no shadow store buffer
		}
		if b.SquashOnly {
			// Option 3: only into the shadow of this block's own branch.
			tbi := trace[bi].Terminator()
			if !shadowZone || branches != 1 || tbi == nil || !isa.IsCondBranch(tbi.Op) {
				return false, RejectSquashZone
			}
		}
		if !b.MultiShadow && hasDest && dest != isa.R0 {
			// Option 2: one shadow location per register — reject a second
			// in-flight boosted value of the same register with a
			// different commit point (Figure 6c's output-like dependence).
			for _, br := range st.boosted {
				if br.dest == dest && br.endIdx != endIdx &&
					bi <= br.endIdx && br.startIdx <= endIdx {
					return false, RejectShadowConflict
				}
			}
		}
		return true, ""
	}
	if needBoost {
		if ok, why := boostAllowed(); !ok {
			return nil, why
		}
	}

	// Compensation: every crossed join block needs copies on its
	// off-trace entry edges. A copy placed at a join executes on every
	// path through that join, so it is only correct when the remaining
	// journey from the join to the instruction's origin block crosses no
	// further conditional branch — otherwise the copy would need to be
	// boosted itself (the paper boosts such copies; we reject the motion
	// instead, trading a little scheduling freedom for simplicity).
	var dups []dupEdge
	for k := bi + 1; k <= oi; k++ {
		b := trace[k]
		onPred := trace[k-1]
		var onCount, offCount int64
		var edges []dupEdge
		for _, x := range b.Preds {
			if x == onPred {
				onCount += x.Count
				continue
			}
			offCount += x.Count
			for slot, succ := range x.Succs {
				if succ == b {
					edges = append(edges, dupEdge{from: x, slot: slot, to: b})
				}
			}
		}
		if len(edges) == 0 {
			continue
		}
		if countCondBranches(trace[k:oi]) > 0 {
			// The copy would execute on paths that bypass the origin.
			return nil, RejectCompBoost
		}
		// Conscientious-scheduling gate (paper §3.2: "the scheduler is
		// aware of the compensation costs of each code motion"). Copies
		// appended into an existing predecessor block usually fill slack
		// and are nearly free; copies that force an edge split add a
		// block (and cycles) to the off-trace path, so they must be paid
		// for by a much hotter trace.
		needSplit := false
		for _, e := range edges {
			if !s.appendable(e.from) {
				needSplit = true
			}
		}
		if needSplit {
			if 4*offCount > onCount {
				return nil, RejectCompCost
			}
		} else if offCount > onCount {
			return nil, RejectCompCost
		}
		dups = append(dups, edges...)
	}

	level := 0
	if needBoost {
		level = branches
	}

	if level == 0 && !s.flattenSafe(st, n, bi) {
		// Upgrade to a boosted motion (shadow writes leave the branch's
		// sequential operands untouched and the linearization keeps the
		// label), or give up.
		if branches == 0 {
			return nil, RejectTermOperand
		}
		if ok, why := boostAllowed(); !ok {
			return nil, why
		}
		level = branches
	}

	if !s.shadowVisible(st, n, bi, level) {
		// A plain motion may be blocked only because a producer's value is
		// still speculative here; boosting the consumer to the crossed
		// branch count always restores visibility (its level is then at
		// least any producer's remaining level), and boosting a safe and
		// legal motion is always semantically sound.
		if level > 0 || branches == 0 {
			return nil, RejectShadowVisibility
		}
		if ok, why := boostAllowed(); !ok {
			return nil, why
		}
		level = branches
		if !s.shadowVisible(st, n, bi, level) {
			return nil, RejectShadowVisibility
		}
	}

	return &motionPlan{level: level, endIdx: endIdx, dupEdges: dups}, ""
}

// flattenSafe reports whether a sequential (level-0) placement of n in
// block bi keeps the block's linearized instruction list semantically
// faithful: n must not define a register read by bi's terminator. The
// machine would read the branch operands before n's same-cycle write, but
// Block.Insts keeps the terminator last, so the write would precede the
// read sequentially.
func (s *scheduler) flattenSafe(st *traceState, n *ddg.Node, bi int) bool {
	t := st.trace[bi].Terminator()
	if t == nil {
		return true
	}
	dest, hasDest := n.Inst.Dest()
	if !hasDest || dest == isa.R0 {
		return true
	}
	for _, u := range t.Uses(nil) {
		if u == dest {
			return false
		}
	}
	return true
}

// shadowVisible enforces the shadow-level compatibility constraints
// between an instruction placed at block bi with the given boosting level
// and its already-placed boosted dependence predecessors. With remaining =
// the predecessor's uncommitted level at bi:
//
//   - a consumer (true dependence, or a load after a buffered store) can
//     only see the speculative value if level ≥ remaining — sequential
//     instructions read only sequential state and a level-k instruction
//     reads shadow entries of level ≤ k;
//   - a redefinition (output dependence, or a store after a buffered store
//     to the same location) must not become architectural before the
//     predecessor commits, or the commit would stomp the newer value —
//     again level ≥ remaining.
//
// Placements violating either are rejected.
func (s *scheduler) shadowVisible(st *traceState, n *ddg.Node, bi, level int) bool {
	for _, e := range n.Preds {
		affected := false
		switch e.Kind {
		case ddg.DepTrue, ddg.DepOutput:
			affected = true
		case ddg.DepMem:
			// RAW forwarding and WAW stomp both matter; WAR (store after
			// load) does not, since the load read its value at execution.
			affected = isa.IsStore(e.From.Inst.Op)
		}
		if !affected {
			continue
		}
		p := st.placed[e.From]
		if p == nil || p.level == 0 {
			continue
		}
		remaining := p.level - countCondBranches(st.trace[p.blockIdx:bi])
		if remaining > level {
			return false
		}
	}
	return true
}

// dataEquivalent implements the paper's data-equivalence test for a
// control-equivalent block pair: the moving instruction must be free of
// data dependence with any instruction along any *off-trace* path between
// the pair (on-trace dependences are already enforced by the DDG and the
// absolute schedule order).
func (s *scheduler) dataEquivalent(st *traceState, n *ddg.Node, bi, oi int) bool {
	a, d := st.trace[bi], st.trace[oi]
	onTrace := map[*prog.Block]bool{}
	for k := bi; k <= oi; k++ {
		onTrace[st.trace[k]] = true
	}

	// Blocks on some path a → d, excluding a, d and the trace spine.
	fwd := reachAvoiding(a, d, false)
	bwd := reachAvoiding(d, a, true)
	uses := n.Inst.Uses(nil)
	dest, hasDest := n.Inst.Dest()

	for x := range fwd {
		if x == a || x == d || onTrace[x] || !bwd[x] {
			continue
		}
		if blockConflicts(x, n, uses, dest, hasDest) {
			return false
		}
	}
	return true
}

// reachAvoiding returns blocks reachable from start (exclusive of paths
// passing through avoid) following successors, or predecessors when
// backward is true. start itself is included.
func reachAvoiding(start, avoid *prog.Block, backward bool) map[*prog.Block]bool {
	seen := map[*prog.Block]bool{start: true}
	stack := []*prog.Block{start}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		next := b.Succs
		if backward {
			next = b.Preds
		}
		for _, s := range next {
			if s == avoid || seen[s] {
				continue
			}
			seen[s] = true
			stack = append(stack, s)
		}
	}
	return seen
}

// blockConflicts reports whether any instruction of x conflicts with the
// moving instruction n.
func blockConflicts(x *prog.Block, n *ddg.Node, uses []isa.Reg, dest isa.Reg, hasDest bool) bool {
	var tmp []isa.Reg
	nIsLoad := isa.IsLoad(n.Inst.Op)
	nIsStore := isa.IsStore(n.Inst.Op)
	nIsOut := n.Inst.Op == isa.OUT
	for i := range x.Insts {
		in := &x.Insts[i]
		if in.Op == isa.JAL {
			// Calls clobber memory, output and the linkage registers.
			if nIsLoad || nIsStore || nIsOut {
				return true
			}
			tmp = append(tmp[:0], isa.RV, isa.RA)
		} else {
			tmp = in.Defs(tmp[:0])
		}
		for _, r := range tmp {
			if r == isa.R0 {
				continue
			}
			if hasDest && r == dest {
				return true
			}
			for _, u := range uses {
				if r == u {
					return true
				}
			}
		}
		if hasDest && dest != isa.R0 {
			tmp = in.Uses(tmp[:0])
			for _, r := range tmp {
				if r == dest {
					return true
				}
			}
		}
		if (nIsLoad && isa.IsStore(in.Op)) || (nIsStore && isa.IsMem(in.Op)) ||
			(nIsOut && in.Op == isa.OUT) {
			return true
		}
	}
	return false
}

// duplicate places compensation copies of n on the given off-trace edges
// and declares the mutation to the analysis manager: appending into an
// existing block only perturbs liveness on the off-trace paths, while a
// fresh edge split changes the CFG itself and clobbers everything.
func (s *scheduler) duplicate(n *ddg.Node, edges []dupEdge) {
	split := false
	for _, e := range edges {
		target, didSplit := s.compTarget(e)
		if didSplit {
			split = true
			s.stats.EdgeSplits++
		}
		in := n.Inst
		in.Boost = 0
		target.Insts = insertBeforeTerminator(target.Insts, in)
		s.stats.CompensationCopies++
	}
	if split {
		s.am.Invalidate(dataflow.KindAll)
	} else {
		s.am.Invalidate(dataflow.KindLiveness)
	}
}

// appendable reports whether a compensation copy may be appended directly
// to the end of block x (paper: "a copy of the instruction [is placed] at
// the end of each preceding basic block"): x must be unscheduled, have a
// single successor, not end in a call, and not belong to the trace being
// scheduled (its dependence graph is already built).
func (s *scheduler) appendable(x *prog.Block) bool {
	t := x.Terminator()
	return !s.scheduled[x.ID] && len(x.Succs) == 1 &&
		(t == nil || t.Op == isa.J) && !s.inCurrentTrace(x)
}

// compTarget returns the block that receives a compensation copy for the
// edge: the predecessor itself when the copy may live at its end,
// otherwise a block freshly split into the edge (split reports the latter
// case, a structural CFG edit).
func (s *scheduler) compTarget(e dupEdge) (target *prog.Block, split bool) {
	x := e.from
	if s.appendable(x) {
		return x, false
	}
	key := splitKey{x.ID, e.slot, e.to.ID}
	if nb := s.splits[key]; nb != nil && !s.scheduled[nb.ID] {
		return nb, false
	}
	nb := s.p.NewBlockAfter(fmt.Sprintf("comp.%d.%d", x.ID, e.to.ID))
	nb.Succs = []*prog.Block{e.to}
	x.Succs[e.slot] = nb
	s.splits[key] = nb
	if s.region != nil {
		s.region.Blocks[nb] = true
	}
	return nb, true
}

// inCurrentTrace reports whether b is part of the trace being scheduled.
// Compensation copies must not be appended to unscheduled trace blocks
// (their dependence graphs are already built), so such edges are split.
func (s *scheduler) inCurrentTrace(b *prog.Block) bool {
	return s.curTrace[b.ID]
}

// insertBeforeTerminator appends in, keeping any terminator last.
func insertBeforeTerminator(insts []isa.Inst, in isa.Inst) []isa.Inst {
	n := len(insts)
	if n > 0 && isa.IsControl(insts[n-1].Op) {
		insts = append(insts, insts[n-1])
		insts[n-1] = in
		return insts
	}
	return append(insts, in)
}

// emitRecovery generates, for every conditional branch of the trace, the
// boosted-exception recovery code (paper §2.3): all boosted instructions
// in flight across that branch, in original program order, with boosting
// levels decremented by the number of branches passed (level 0 copies are
// sequential and re-raise the fault precisely).
func (s *scheduler) emitRecovery(st *traceState) {
	if len(st.boosted) == 0 {
		return
	}
	for k, b := range st.trace {
		t := b.Terminator()
		if t == nil || !isa.IsCondBranch(t.Op) {
			continue
		}
		var rec []isa.Inst
		for _, br := range sortedBySeq(st.boosted) {
			if br.startIdx > k || k > br.endIdx {
				continue
			}
			passed := countCondBranches(st.trace[br.startIdx : k+1])
			in := br.node.Inst
			in.Boost = br.level - passed
			if in.Boost < 0 {
				in.Boost = 0
			}
			rec = append(rec, in)
		}
		if len(rec) > 0 {
			s.sp.Recovery[t.ID] = rec
			s.stats.RecoverySites++
			s.stats.RecoveryInsts += int64(len(rec))
		}
	}
}

func sortedBySeq(recs []boostRec) []boostRec {
	out := append([]boostRec(nil), recs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].node.Seq < out[j-1].node.Seq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func countCondBranches(blocks []*prog.Block) int {
	n := 0
	for _, b := range blocks {
		if t := b.Terminator(); t != nil && isa.IsCondBranch(t.Op) {
			n++
		}
	}
	return n
}
