package core

import (
	"fmt"
	"sort"

	"boosting/internal/dataflow"
	"boosting/internal/ddg"
	"boosting/internal/isa"
	"boosting/internal/machine"
	"boosting/internal/prog"
)

// splitKey identifies a CFG edge by source block, successor slot and
// destination; compensation blocks are shared across motions on the same
// edge.
type splitKey struct {
	fromID, slot, toID int
}

// scheduler carries per-procedure scheduling state.
type scheduler struct {
	pr    *prog.Program
	p     *prog.Proc
	model *machine.Model
	opts  Options
	sp    *machine.SchedProc
	stats *Stats

	// am memoizes dominance, liveness and regions for p, keyed by the
	// procedure's IR generation; the scheduler declares its mutations
	// through am.Invalidate instead of recomputing per trace.
	am *dataflow.Manager

	scheduled map[int]bool
	splits    map[splitKey]*prog.Block
	region    *dataflow.Region
	curTrace  map[int]bool
}

// placement records where a DDG node landed.
type placement struct {
	blockIdx int // trace block index
	cycle    int // cycle within the block schedule
	abs      int // absolute cycle along the trace
	level    int // boosting level (0 = sequential)
}

// boostRec tracks an in-flight boosted value for single-shadow conflict
// checking and recovery-code generation.
type boostRec struct {
	node     *ddg.Node
	dest     isa.Reg
	startIdx int // trace block index where placed
	level    int
	endIdx   int // trace block index of the committing branch
}

// traceState is the working state for one trace.
type traceState struct {
	trace   []*prog.Block
	g       *ddg.Graph
	height  map[*ddg.Node]int
	placed  map[*ddg.Node]*placement
	sblocks []*machine.SchedBlock
	nextAbs int
	boosted []boostRec
	// instSeq maps each emitted instruction to its original trace
	// sequence number, for the sequential linearization of
	// rewriteTraceInsts.
	instSeq map[*isa.Inst]int
}

// scheduleTrace list-schedules every block of the trace top-down, filling
// holes through upward code motion, then emits recovery code and rewrites
// the trace blocks' instruction lists to match the executed code.
func (s *scheduler) scheduleTrace(trace []*prog.Block) error {
	if debugLog {
		ids := make([]int, len(trace))
		for i, b := range trace {
			ids[i] = b.ID
		}
		fmt.Printf("TRACE %v\n", ids)
	}
	s.stats.TracesFormed++
	s.stats.TraceBlocks += int64(len(trace))
	s.curTrace = map[int]bool{}
	for _, b := range trace {
		s.curTrace[b.ID] = true
	}
	stop := stageTimer(&s.stats.DDGBuildSeconds)
	g := ddg.Build(trace, ddg.Options{NoDisambiguation: s.opts.NoDisambiguation})
	stop()
	st := &traceState{
		trace:   trace,
		g:       g,
		height:  computeHeights(g),
		placed:  map[*ddg.Node]*placement{},
		instSeq: map[*isa.Inst]int{},
	}
	stop = stageTimer(&s.stats.ListScheduleSeconds)
	for bi := range trace {
		if err := s.scheduleBlock(st, bi); err != nil {
			stop()
			return err
		}
	}
	stop()
	stop = stageTimer(&s.stats.RecoveryEmitSeconds)
	s.emitRecovery(st)
	stop()
	for bi, b := range trace {
		s.sp.Blocks[b.ID] = st.sblocks[bi]
		s.scheduled[b.ID] = true
	}
	stop = stageTimer(&s.stats.ListScheduleSeconds)
	rewriteTraceInsts(st)
	stop()
	// The rewrite replaces the trace blocks' instruction lists with the
	// scheduled code; edges are untouched, so only liveness goes stale.
	s.am.Invalidate(dataflow.KindLiveness)
	return nil
}

// computeHeights returns each node's critical-path height (latency-weighted
// longest path to a DDG leaf), the primary list-scheduling priority.
func computeHeights(g *ddg.Graph) map[*ddg.Node]int {
	h := make(map[*ddg.Node]int, len(g.Nodes))
	for i := len(g.Nodes) - 1; i >= 0; i-- {
		n := g.Nodes[i]
		best := 0
		for _, e := range n.Succs {
			if v := e.Latency + h[e.To]; v > best {
				best = v
			}
		}
		h[n] = best
	}
	return h
}

// ready reports whether node n may issue at absolute cycle abs: every
// dependence predecessor is placed and its latency satisfied.
func (st *traceState) ready(n *ddg.Node, abs int) bool {
	for _, e := range n.Preds {
		p := st.placed[e.From]
		if p == nil || p.abs+e.Latency > abs {
			return false
		}
	}
	return true
}

// notReadyReason buckets a failed ready() check: memory-dep if any
// unsatisfied edge is a memory dependence, plain dependence otherwise.
func (st *traceState) notReadyReason(n *ddg.Node, abs int) string {
	for _, e := range n.Preds {
		p := st.placed[e.From]
		if (p == nil || p.abs+e.Latency > abs) && e.Kind == ddg.DepMem {
			return RejectMemoryDep
		}
	}
	return RejectDependence
}

// scheduleBlock emits the machine schedule for trace block bi.
func (s *scheduler) scheduleBlock(st *traceState, bi int) error {
	b := st.trace[bi]
	sb := &machine.SchedBlock{Block: b}
	st.sblocks = append(st.sblocks, sb)
	width := s.model.IssueWidth

	// Natives of this block that are still unplaced, terminator separate.
	var natives []*ddg.Node
	var term *ddg.Node
	for _, n := range st.g.ByBlock[bi] {
		if st.placed[n] != nil {
			continue
		}
		if n.IsTerm {
			term = n
		} else {
			natives = append(natives, n)
		}
	}
	byPriority(natives, st.height)

	absBase := st.nextAbs
	cycle := 0
	finished := false
	for !finished {
		if cycle > 100000 {
			return fmt.Errorf("block B%d: scheduler did not converge (dependence cycle?)", b.ID)
		}
		abs := absBase + cycle
		cy := machine.Cycle{Slots: make([]*isa.Inst, width)}
		free := make([]bool, width)
		for i := range free {
			free[i] = true
		}

		remaining := unplacedOf(st, natives)

		// Try to finish the block: place the terminator here if its
		// dependences allow and every remaining native provably fits into
		// this cycle's leftover slots or the delay cycle.
		if term != nil && st.ready(term, abs) {
			if done, err := s.tryFinish(st, bi, sb, &cy, free, remaining, term, cycle, abs); err != nil {
				return err
			} else if done {
				finished = true
				continue
			}
		}
		if term == nil && len(remaining) == 0 {
			break // fall-through block complete
		}

		// Fill with ready natives by priority. Memory operations go first:
		// the base superscalar has a single memory port, so an ALU
		// instruction placed into the memory-capable slot can crowd out a
		// critical load.
		for _, memFirst := range []bool{true, false} {
			for _, n := range remaining {
				if st.placed[n] != nil || isa.ClassOf(n.Inst.Op) == isa.ClassMem != memFirst {
					continue
				}
				if !st.ready(n, abs) {
					continue
				}
				slot := s.model.SlotFor(isa.ClassOf(n.Inst.Op), free)
				if slot < 0 {
					continue
				}
				s.place(st, n, bi, sb, &cy, slot, cycle, abs, 0)
				free[slot] = false
			}
		}

		// Fill remaining holes with foreign instructions from later trace
		// blocks (global code motion).
		s.fillForeign(st, bi, sb, &cy, free, cycle, abs, false)

		sb.Cycles = append(sb.Cycles, cy)
		cycle++
	}

	st.nextAbs = absBase + len(sb.Cycles)
	return nil
}

// unplacedOf filters the still-unplaced nodes, preserving priority order.
func unplacedOf(st *traceState, nodes []*ddg.Node) []*ddg.Node {
	out := nodes[:0:0]
	for _, n := range nodes {
		if st.placed[n] == nil {
			out = append(out, n)
		}
	}
	return out
}

// byPriority sorts nodes by descending critical-path height, then original
// order.
func byPriority(nodes []*ddg.Node, height map[*ddg.Node]int) {
	sort.SliceStable(nodes, func(i, j int) bool {
		hi, hj := height[nodes[i]], height[nodes[j]]
		if hi != hj {
			return hi > hj
		}
		return nodes[i].Seq < nodes[j].Seq
	})
}

// tryFinish attempts to place the terminator in the current cycle, packing
// all remaining natives into the leftover slots of this cycle and the
// delay cycle. On success it appends the final cycle(s), fills leftover
// slots with foreign instructions (the Squashing model's shadow zone), and
// returns done=true. On failure nothing is mutated.
func (s *scheduler) tryFinish(st *traceState, bi int, sb *machine.SchedBlock,
	cy *machine.Cycle, free []bool, remaining []*ddg.Node, term *ddg.Node,
	cycle, abs int) (bool, error) {

	width := s.model.IssueWidth
	// The terminator needs a slot in the current cycle.
	termSlot := s.model.SlotFor(isa.ClassOf(term.Inst.Op), free)
	if termSlot < 0 {
		return false, nil
	}
	hasDelay := isa.HasDelaySlot(term.Inst.Op)

	// Tentatively pack remaining natives: current-cycle leftovers first
	// (must be ready now), then delay-cycle slots (ready next cycle).
	curFree := append([]bool(nil), free...)
	curFree[termSlot] = false
	delayFree := make([]bool, width)
	for i := range delayFree {
		delayFree[i] = hasDelay
	}
	type packing struct {
		n       *ddg.Node
		inDelay bool
		slot    int
	}
	var packs []packing
	for _, n := range remaining {
		c := isa.ClassOf(n.Inst.Op)
		if st.ready(n, abs) {
			if slot := s.model.SlotFor(c, curFree); slot >= 0 {
				curFree[slot] = false
				packs = append(packs, packing{n, false, slot})
				continue
			}
		}
		if hasDelay && st.ready(n, abs+1) {
			if slot := s.model.SlotFor(c, delayFree); slot >= 0 {
				delayFree[slot] = false
				packs = append(packs, packing{n, true, slot})
				continue
			}
		}
		return false, nil // cannot finish this cycle
	}

	// Commit: terminator, then packed natives.
	s.place(st, term, bi, sb, cy, termSlot, cycle, abs, 0)
	var delay machine.Cycle
	if hasDelay {
		delay = machine.Cycle{Slots: make([]*isa.Inst, width)}
	}
	freeNow := append([]bool(nil), free...)
	freeNow[termSlot] = false
	freeDelay := make([]bool, width)
	for i := range freeDelay {
		freeDelay[i] = hasDelay
	}
	for _, pk := range packs {
		if pk.inDelay {
			s.place(st, pk.n, bi, sb, &delay, pk.slot, cycle+1, abs+1, 0)
			freeDelay[pk.slot] = false
		} else {
			s.place(st, pk.n, bi, sb, cy, pk.slot, cycle, abs, 0)
			freeNow[pk.slot] = false
		}
	}

	// The branch-issue cycle and the delay cycle are the Squashing
	// model's shadow zone: fill leftovers with foreign instructions.
	s.fillForeign(st, bi, sb, cy, freeNow, cycle, abs, true)
	sb.Cycles = append(sb.Cycles, *cy)
	if hasDelay {
		s.fillForeign(st, bi, sb, &delay, freeDelay, cycle+1, abs+1, true)
		sb.Cycles = append(sb.Cycles, delay)
	}
	return true, nil
}

// place records node n at (blockIdx bi, cycle) in slot slot with the given
// boosting level and writes the instruction into the cycle.
func (s *scheduler) place(st *traceState, n *ddg.Node, bi int,
	sb *machine.SchedBlock, cy *machine.Cycle, slot, cycle, abs, level int) {
	in := n.Inst // copy
	in.Boost = level
	cy.Slots[slot] = &in
	st.instSeq[&in] = n.Seq
	st.placed[n] = &placement{blockIdx: bi, cycle: cycle, abs: abs, level: level}
	_ = sb
}

// fillForeign fills the free slots of cy with instructions moved up from
// later trace blocks. shadowZone marks the branch-issue and delay cycles
// (the only positions the Squashing model may boost into).
func (s *scheduler) fillForeign(st *traceState, bi int, sb *machine.SchedBlock,
	cy *machine.Cycle, free []bool, cycle, abs int, shadowZone bool) {

	if s.opts.LocalOnly {
		return
	}
	for slot := 0; slot < len(free); slot++ {
		if !free[slot] {
			continue
		}
		best := s.bestForeign(st, bi, slot, abs, shadowZone)
		if best == nil {
			continue
		}
		plan := best.plan
		n := best.node
		// Perform bookkeeping: duplication on off-trace edges of crossed
		// joins (unless the move is between control/data-equivalent
		// blocks).
		if len(plan.dupEdges) > 0 {
			s.duplicate(n, plan.dupEdges)
		}
		if debugLog {
			fmt.Printf("  MOTION %s: B%d <- B%d level=%d dups=%d\n",
				n.Inst.String(), st.trace[bi].ID, n.Block.ID, plan.level, len(plan.dupEdges))
		}
		s.place(st, n, bi, sb, cy, slot, cycle, abs, plan.level)
		free[slot] = false
		s.stats.placed(plan.level)
		if plan.level > 0 {
			st.boosted = append(st.boosted, boostRec{
				node:     n,
				dest:     destOf(&n.Inst),
				startIdx: bi,
				level:    plan.level,
				endIdx:   plan.endIdx,
			})
		}
	}
}

// candidate pairs a movable node with its motion plan.
type candidate struct {
	node *ddg.Node
	plan *motionPlan
}

// bestForeign returns the best foreign node that is ready,
// class-compatible with the slot, and legally movable to block bi.
//
// Priority is critical-path height minus a boosting-level penalty: a
// deeply boosted instruction commits only if several predictions hold
// (mostly wasted work under imperfect prediction) and its uncommitted
// shadow level constrains where its consumers may be placed, so between
// candidates of similar height the shallower motion wins. When the slot
// can execute memory operations — the machine's single memory port —
// memory candidates are preferred over anything else, since an ALU
// instruction can issue from the other side but a load cannot.
func (s *scheduler) bestForeign(st *traceState, bi, slot, abs int, shadowZone bool) *candidate {
	var best *candidate
	bestScore := -1 << 30
	bestMem := false
	memSlot := s.model.Slots[slot].Has(isa.ClassMem)
	for _, n := range st.g.Nodes {
		if n.BlockIdx <= bi || st.placed[n] != nil || n.IsTerm {
			continue
		}
		c := isa.ClassOf(n.Inst.Op)
		if c != isa.ClassNone && !s.model.Slots[slot].Has(c) {
			s.stats.reject(RejectSlotLegality)
			continue
		}
		isMem := c == isa.ClassMem
		if memSlot && bestMem && !isMem {
			continue // never displace a memory candidate from the memory port
		}
		if !st.ready(n, abs) {
			s.stats.reject(st.notReadyReason(n, abs))
			continue
		}
		s.stats.MotionsAttempted++
		plan, why := s.planMotion(st, n, bi, shadowZone)
		if plan == nil {
			s.stats.reject(why)
			continue
		}
		score := st.height[n] - 3*plan.level
		if best != nil && bestMem == isMem && score <= bestScore {
			continue
		}
		if best == nil || (memSlot && isMem && !bestMem) || (bestMem == isMem && score > bestScore) {
			best = &candidate{node: n, plan: plan}
			bestScore = score
			bestMem = isMem
		}
	}
	return best
}

func destOf(in *isa.Inst) isa.Reg {
	if d, ok := in.Dest(); ok {
		return d
	}
	return isa.R0
}

// rewriteTraceInsts rebuilds each trace block's instruction list from its
// final schedule so that later analyses (liveness, equivalence checks for
// later traces) see the executed code, and so that a schedule without
// boosting labels remains a valid *sequential* program (used by the
// dynamic-scheduler prescheduling experiment). Instructions appear in
// schedule order with their boosting labels; within one issue cycle they
// are ordered by original program sequence — the hardware reads all
// operands before any same-cycle write, so a same-cycle anti-dependent
// pair is only sequentially faithful with the reader first. The
// terminator moves to the end (delay-slot instructions execute before the
// transfer, so this linearization is semantically faithful).
func rewriteTraceInsts(st *traceState) {
	for bi, b := range st.trace {
		sb := st.sblocks[bi]
		var insts []isa.Inst
		var term *isa.Inst
		for ci := range sb.Cycles {
			slots := make([]*isa.Inst, 0, len(sb.Cycles[ci].Slots))
			for _, in := range sb.Cycles[ci].Slots {
				if in != nil && in.Op != isa.NOP {
					slots = append(slots, in)
				}
			}
			sort.SliceStable(slots, func(i, j int) bool {
				return st.instSeq[slots[i]] < st.instSeq[slots[j]]
			})
			for _, in := range slots {
				if isa.IsControl(in.Op) {
					term = in
					continue
				}
				insts = append(insts, *in)
			}
		}
		if term != nil {
			insts = append(insts, *term)
		}
		b.Insts = insts
	}
}
