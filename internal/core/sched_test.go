package core

import (
	"testing"

	"boosting/internal/isa"
	"boosting/internal/machine"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/sim"
	"boosting/internal/testgen"
)

// allModels are the processor configurations under test.
func allModels() []*machine.Model {
	return []*machine.Model{
		machine.Scalar(), machine.NoBoost(), machine.Squashing(),
		machine.Boost1(), machine.MinBoost3(), machine.Boost7(),
	}
}

// compile profiles, optionally register-allocates, and schedules a copy of
// the program for the model.
func compile(t *testing.T, build func() *prog.Program, model *machine.Model, opts Options) *machine.SchedProgram {
	t.Helper()
	pr := build()
	if err := profile.Annotate(pr); err != nil {
		t.Fatalf("profile: %v", err)
	}
	sp, err := Schedule(pr, model, opts)
	if err != nil {
		t.Fatalf("schedule for %s: %v", model, err)
	}
	return sp
}

// checkEquivalent runs the scheduled program and compares observables with
// the reference execution of a fresh original.
func checkEquivalent(t *testing.T, build func() *prog.Program, sp *machine.SchedProgram) *sim.ExecResult {
	t.Helper()
	ref, err := sim.Run(build(), sim.RefConfig{})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	got, err := sim.Exec(sp, sim.ExecConfig{})
	if err != nil {
		t.Fatalf("scheduled run on %s: %v", sp.Model, err)
	}
	if len(got.Out) != len(ref.Out) {
		t.Fatalf("%s: output length %d, want %d", sp.Model, len(got.Out), len(ref.Out))
	}
	for i := range ref.Out {
		if got.Out[i] != ref.Out[i] {
			t.Fatalf("%s: out[%d] = %d, want %d", sp.Model, i, int32(got.Out[i]), int32(ref.Out[i]))
		}
	}
	if got.MemHash != ref.MemHash {
		t.Fatalf("%s: final memory differs from reference", sp.Model)
	}
	return got
}

// buildBoostable builds the canonical boosting opportunity: a loop that
// dereferences mostly-non-null pointers behind a null guard. The guarded
// load is *unsafe* to speculate (it can fault) and its operand is ready
// before the guard, so only boosting models can hoist it above the branch.
func buildBoostable() *prog.Program {
	pr := prog.New()
	const n = 64
	// values[i] at vals; pointer table at ptrs, every 8th entry null.
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = pr.Word(int32(i*7 - 20))
	}
	var ptrs uint32
	for i := 0; i < n; i++ {
		p := int32(vals[i])
		if i%8 == 3 {
			p = 0
		}
		a := pr.Word(p)
		if i == 0 {
			ptrs = a
		}
	}

	f := prog.NewBuilder(pr, "main")
	loop := f.Block("loop")
	deref := f.Block("deref")
	next := f.Block("next")
	done := f.Block("done")

	i, sum, base, limit := f.Reg(), f.Reg(), f.Reg(), f.Reg()
	f.Li(i, 0)
	f.Li(sum, 0)
	f.La(base, ptrs)
	f.Li(limit, n)
	f.Goto(loop)

	f.Enter(loop) // p = ptrs[i]; if p == 0 goto next
	off, p := f.Reg(), f.Reg()
	f.Imm(isa.SLL, off, i, 2)
	f.ALU(isa.ADD, off, base, off)
	f.Load(isa.LW, p, off, 0)
	f.Branch(isa.BEQ, p, isa.R0, next, deref)

	f.Enter(deref) // sum += *p
	v := f.Reg()
	f.Load(isa.LW, v, p, 0)
	f.ALU(isa.ADD, sum, sum, v)
	f.Goto(next)

	f.Enter(next) // if ++i < limit goto loop
	cmp := f.Reg()
	f.Imm(isa.ADDI, i, i, 1)
	f.ALU(isa.SLT, cmp, i, limit)
	f.Branch(isa.BNE, cmp, isa.R0, loop, done)

	f.Enter(done)
	f.Out(sum)
	f.Halt()
	f.Finish()
	return pr
}

func TestScheduleCorrectAllModels(t *testing.T) {
	for _, m := range allModels() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			sp := compile(t, buildBoostable, m, Options{})
			checkEquivalent(t, buildBoostable, sp)
		})
	}
}

func TestScheduleLocalOnlyCorrect(t *testing.T) {
	for _, m := range []*machine.Model{machine.Scalar(), machine.NoBoost()} {
		sp := compile(t, buildBoostable, m, Options{LocalOnly: true})
		checkEquivalent(t, buildBoostable, sp)
	}
}

// TestBoostingHappens verifies that boosting models actually emit boosted
// instructions on the canonical pattern and that the non-boosting model
// does not.
func TestBoostingHappens(t *testing.T) {
	spNo := compile(t, buildBoostable, machine.NoBoost(), Options{})
	spB1 := compile(t, buildBoostable, machine.Boost1(), Options{})
	if countBoosted(spNo) != 0 {
		t.Error("NoBoost schedule contains boosted instructions")
	}
	if countBoosted(spB1) == 0 {
		t.Error("Boost1 schedule contains no boosted instructions; the guarded load should be hoisted")
	}
}

func countBoosted(sp *machine.SchedProgram) int {
	n := 0
	for _, p := range sp.Procs {
		for _, sb := range p.Blocks {
			for ci := range sb.Cycles {
				for _, in := range sb.Cycles[ci].Slots {
					if in != nil && in.IsBoosted() {
						n++
					}
				}
			}
		}
	}
	return n
}

// TestBoostingHelpsCycles: boosted machines must not be slower than the
// base global-scheduling machine, and the scalar must be slowest.
func TestBoostingHelpsCycles(t *testing.T) {
	cycles := map[string]int64{}
	for _, m := range allModels() {
		sp := compile(t, buildBoostable, m, Options{})
		res := checkEquivalent(t, buildBoostable, sp)
		cycles[m.Name] = res.Cycles
	}
	if cycles["NoBoost"] >= cycles["R2000"] {
		t.Errorf("2-issue NoBoost (%d) not faster than scalar (%d)", cycles["NoBoost"], cycles["R2000"])
	}
	if cycles["Boost1"] > cycles["NoBoost"] {
		t.Errorf("Boost1 (%d) slower than NoBoost (%d)", cycles["Boost1"], cycles["NoBoost"])
	}
	if cycles["Boost7"] > cycles["Squashing"] {
		t.Errorf("Boost7 (%d) slower than Squashing (%d)", cycles["Boost7"], cycles["Squashing"])
	}
}

// TestRecoveryGenerated: boosted schedules must carry recovery code for
// branches that commit unsafe speculative instructions.
func TestRecoveryGenerated(t *testing.T) {
	sp := compile(t, buildBoostable, machine.MinBoost3(), Options{})
	total := 0
	for _, p := range sp.Procs {
		total += len(p.Recovery)
	}
	if total == 0 {
		t.Error("no recovery code generated for a schedule with boosted loads")
	}
}

// TestSchedulePropertyRandom is the main semantic property test: random
// programs behave identically under every machine model.
func TestSchedulePropertyRandom(t *testing.T) {
	models := allModels()
	for seed := int64(1); seed <= 60; seed++ {
		cfg := testgen.Config{WithCalls: seed%3 == 0}
		build := func() *prog.Program { return testgen.Random(seed, cfg) }
		for _, m := range models {
			sp := compile(t, build, m, Options{})
			checkEquivalent(t, build, sp)
		}
	}
}

// TestSchedulePropertyRandomAblation exercises the ablation knobs.
func TestSchedulePropertyRandomAblation(t *testing.T) {
	for seed := int64(100); seed <= 120; seed++ {
		build := func() *prog.Program { return testgen.Random(seed, testgen.Config{}) }
		for _, opts := range []Options{
			{DisableEquivalence: true},
			{NoDisambiguation: true},
			{MaxTraceBlocks: 2},
		} {
			sp := compile(t, build, machine.Boost7(), opts)
			checkEquivalent(t, build, sp)
		}
	}
}

// TestScheduleVerifies: the emitted schedule passes structural checks for
// every model (Verify is also called inside Schedule; this documents it).
func TestScheduleVerifies(t *testing.T) {
	sp := compile(t, buildBoostable, machine.Squashing(), Options{})
	if err := sp.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulePropertyRandomLong is the deep semantic sweep (run in full
// mode only): hundreds of random programs across every machine model and
// both register regimes.
func TestSchedulePropertyRandomLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long property sweep skipped in -short mode")
	}
	models := allModels()
	for seed := int64(1000); seed <= 1250; seed++ {
		cfg := testgen.Config{
			WithCalls: seed%3 == 0,
			Segments:  4 + int(seed%8),
			MaxDepth:  2 + int(seed%2),
		}
		build := func() *prog.Program { return testgen.Random(seed, cfg) }
		for _, m := range models {
			sp := compile(t, build, m, Options{})
			checkEquivalent(t, build, sp)
		}
	}
}

// TestScheduleDeterministic: scheduling the same program twice yields
// byte-identical schedules (required for reproducibility and for the
// train/test profile-transfer methodology).
func TestScheduleDeterministic(t *testing.T) {
	for _, m := range []*machine.Model{machine.NoBoost(), machine.MinBoost3()} {
		render := func() string {
			pr := testgen.Random(31415, testgen.Config{WithCalls: true})
			if err := profile.Annotate(pr); err != nil {
				t.Fatal(err)
			}
			sp, err := Schedule(pr, m, Options{})
			if err != nil {
				t.Fatal(err)
			}
			out := ""
			for _, name := range pr.Order {
				out += sp.Procs[name].Format()
			}
			return out
		}
		if render() != render() {
			t.Errorf("%s: nondeterministic schedule", m)
		}
	}
}
