package core

import (
	"testing"

	"boosting/internal/machine"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/regalloc"
	"boosting/internal/testgen"
)

// TestFullPipelineWithRegalloc runs the paper's actual compilation order —
// register allocation before instruction scheduling — and checks semantic
// equivalence for every model on random programs.
func TestFullPipelineWithRegalloc(t *testing.T) {
	models := allModels()
	for seed := int64(500); seed <= 540; seed++ {
		cfg := testgen.Config{WithCalls: seed%4 == 0}
		build := func() *prog.Program {
			pr := testgen.Random(seed, cfg)
			if _, err := regalloc.Allocate(pr); err != nil {
				t.Fatalf("seed %d: regalloc: %v", seed, err)
			}
			return pr
		}
		for _, m := range models {
			sp := compile(t, build, m, Options{})
			checkEquivalent(t, build, sp)
		}
	}
}

// TestInfiniteVsAllocatedCycles documents the paper's stacked bars: the
// infinite-register schedule is never slower than the allocated one
// (allocation only adds anti/output dependences and spill code).
func TestInfiniteVsAllocatedCycles(t *testing.T) {
	seed := int64(4242)
	buildInf := func() *prog.Program { return testgen.Random(seed, testgen.Config{Segments: 10}) }
	buildAlloc := func() *prog.Program {
		pr := testgen.Random(seed, testgen.Config{Segments: 10})
		if _, err := regalloc.Allocate(pr); err != nil {
			t.Fatal(err)
		}
		return pr
	}
	m := machine.MinBoost3()
	spInf := compile(t, buildInf, m, Options{})
	spAlloc := compile(t, buildAlloc, m, Options{})
	resInf := checkEquivalent(t, buildInf, spInf)
	resAlloc := checkEquivalent(t, buildAlloc, spAlloc)
	if resInf.Cycles > resAlloc.Cycles {
		t.Errorf("infinite-register cycles %d exceed allocated cycles %d",
			resInf.Cycles, resAlloc.Cycles)
	}
}

// TestProfileTransferPipeline mirrors the paper's train-vs-test input
// methodology end to end.
func TestProfileTransferPipeline(t *testing.T) {
	train := testgen.Random(777, testgen.Config{})
	test := testgen.Random(777, testgen.Config{})
	if err := profile.Annotate(train); err != nil {
		t.Fatal(err)
	}
	if err := profile.Transfer(train, test); err != nil {
		t.Fatal(err)
	}
	acc, err := profile.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy out of range: %f", acc)
	}
	sp, err := Schedule(test, machine.Boost7(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	build := func() *prog.Program { return testgen.Random(777, testgen.Config{}) }
	checkEquivalent(t, build, sp)
}
