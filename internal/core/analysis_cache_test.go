package core

// Counter-based proof that the dataflow.Manager turns per-trace analysis
// recomputation into per-mutation recomputation, and that the cache never
// changes the schedule.

import (
	"testing"

	"boosting/internal/machine"
	"boosting/internal/prog"
	"boosting/internal/workloads"
)

// TestAnalysisCacheRecomputeCounts schedules a trace-heavy workload with
// the analysis cache on and off and compares the manager's counters:
// uncached scheduling recomputes the CFG for every trace selection
// (O(traces)), cached scheduling recomputes it only after structural
// mutations (O(edge splits)), and liveness recomputes are bounded by
// declared invalidations rather than trace count.
func TestAnalysisCacheRecomputeCounts(t *testing.T) {
	w, err := workloads.ByName("awk")
	if err != nil {
		t.Fatal(err)
	}
	master := benchMaster(t, w)
	model := machine.MinBoost3()

	_, cached, err := ScheduleWithStats(prog.Clone(master), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, uncached, err := ScheduleWithStats(prog.Clone(master), model, Options{uncachedAnalyses: true})
	if err != nil {
		t.Fatal(err)
	}
	procs := int64(len(master.ProcList()))

	if uncached.TracesFormed < 4 {
		t.Fatalf("workload too small to be meaningful: %d traces", uncached.TracesFormed)
	}
	// Uncached restores the old behavior: every trace selection starts
	// with Invalidate(KindAll), so dominators are rebuilt per trace.
	if uncached.Analysis.CFGComputes < uncached.TracesFormed {
		t.Errorf("uncached CFG computes = %d, want >= traces formed (%d)",
			uncached.Analysis.CFGComputes, uncached.TracesFormed)
	}
	// Cached: one initial build per proc plus one rebuild per structural
	// mutation batch — edge splits are the only structural edits.
	if max := procs + cached.EdgeSplits; cached.Analysis.CFGComputes > max {
		t.Errorf("cached CFG computes = %d, want <= procs+edge splits (%d+%d)",
			cached.Analysis.CFGComputes, procs, cached.EdgeSplits)
	}
	if cached.Analysis.CFGComputes >= uncached.Analysis.CFGComputes {
		t.Errorf("cached CFG computes = %d, not below uncached %d",
			cached.Analysis.CFGComputes, uncached.Analysis.CFGComputes)
	}
	// Every liveness recompute must be preceded by a declared mutation:
	// recomputations track mutating passes, not traces.
	if max := procs + cached.Analysis.Invalidations; cached.Analysis.LivenessComputes > max {
		t.Errorf("cached liveness computes = %d, want <= procs+invalidations (%d+%d)",
			cached.Analysis.LivenessComputes, procs, cached.Analysis.Invalidations)
	}
	if cached.Analysis.Hits == 0 {
		t.Error("cached scheduling recorded no analysis cache hits")
	}
	t.Logf("traces=%d cached: cfg=%d live=%d hits=%d inval=%d | uncached: cfg=%d live=%d",
		cached.TracesFormed, cached.Analysis.CFGComputes, cached.Analysis.LivenessComputes,
		cached.Analysis.Hits, cached.Analysis.Invalidations,
		uncached.Analysis.CFGComputes, uncached.Analysis.LivenessComputes)
}

// TestAnalysisCacheScheduleIdentity asserts byte-identical schedules with
// the cache on and off for every workload on a boosting and a
// non-boosting model: the analyses are pure functions of the IR, so
// serving them from cache must not change a single placement.
func TestAnalysisCacheScheduleIdentity(t *testing.T) {
	models := []*machine.Model{machine.NoBoost(), machine.Boost7()}
	for _, w := range workloads.All() {
		master := benchMaster(t, w)
		for _, model := range models {
			spc, err := Schedule(prog.Clone(master), model, Options{})
			if err != nil {
				t.Fatalf("%s/%s cached: %v", w.Name, model, err)
			}
			spu, err := Schedule(prog.Clone(master), model, Options{uncachedAnalyses: true})
			if err != nil {
				t.Fatalf("%s/%s uncached: %v", w.Name, model, err)
			}
			for name, pc := range spc.Procs {
				pu := spu.Procs[name]
				if pu == nil {
					t.Fatalf("%s/%s: uncached schedule lacks proc %s", w.Name, model, name)
					continue
				}
				if got, want := pc.Format(), pu.Format(); got != want {
					t.Errorf("%s/%s proc %s: cached and uncached schedules differ",
						w.Name, model, name)
				}
			}
		}
	}
}
