package core

import (
	"strings"
	"testing"

	"boosting/internal/isa"
	"boosting/internal/machine"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/sim"
)

// This file reproduces the paper's worked examples as executable tests.

// TestPaperFigure2 reconstructs the shape of Figure 2: a load whose
// address is computed by another boosted instruction gets hoisted above
// *two* conditional branches (the paper's "i2 is boosted two levels",
// r4.BRR = load 4(r1.BR)), with the producer boosted above one.
func TestPaperFigure2(t *testing.T) {
	build := func() *prog.Program {
		pr := prog.New()
		pr.Word(77) // the loaded cell
		f := prog.NewBuilder(pr, "main")
		b1 := f.Block("b1")
		b2 := f.Block("b2")
		off1 := f.Block("off1")
		off2 := f.Block("off2")
		tail := f.Block("tail")

		// Entry computes the guards early so the branches are ready and
		// the blocks have empty slots for boosted work.
		g1, g2, r2, r3 := f.Reg(), f.Reg(), f.Reg(), f.Reg()
		f.Li(g1, 1)
		f.Li(g2, 1)
		f.Li(r2, int32(prog.DataBase)-4) // r2 & r3 = address - 4
		f.Li(r3, -1)                     // AND identity mask
		// A multiply chain keeps the entry block open for many cycles, so
		// the scheduler has room to hoist i1 and then the dependent load
		// two levels up — the Figure 2 shape.
		m, m2 := f.Reg(), f.Reg()
		f.ALU(isa.MUL, m, r2, r2)
		f.ALU(isa.ADD, m2, m, m)
		f.Out(m2)
		f.Branch(isa.BGTZ, g1, isa.R0, b1, off1)

		f.Enter(off1)
		f.Out(g1)
		f.Halt()

		f.Enter(b1) // CAT: the first predicted branch
		f.Branch(isa.BGTZ, g2, isa.R0, b2, off2)

		f.Enter(off2)
		f.Out(g2)
		f.Halt()

		f.Enter(b2) // DOG/BIRD region: i1 and i2 live here originally
		r1, r4 := f.Reg(), f.Reg()
		f.ALU(isa.AND, r1, r2, r3) // i1: r1 = r2 & r3
		f.Load(isa.LW, r4, r1, 4)  // i2: r4 = load 4(r1)
		f.Out(r4)
		f.Goto(tail)

		f.Enter(tail)
		f.Halt()
		f.Finish()
		return pr
	}
	sp := compile(t, build, machine.MinBoost3(), Options{})
	checkEquivalent(t, build, sp)

	// The load must appear boosted at level 2 somewhere above its origin,
	// fed by a level-≥1 producer — the Figure 2 pattern.
	listing := sp.Procs["main"].Format()
	if !strings.Contains(listing, "lw") || !strings.Contains(listing, ".B2") {
		t.Errorf("expected a two-level boosted load in the schedule:\n%s", listing)
	}
}

// TestPaperFigure3 reconstructs Figure 3's availability example: blocks A
// and D are control equivalent (diamond A→{B,C}→D). An instruction in D
// that conflicts with B's code needs compensation to move; one that is
// data equivalent moves with no compensation at all.
func TestPaperFigure3(t *testing.T) {
	build := func() *prog.Program {
		pr := prog.New()
		f := prog.NewBuilder(pr, "main")
		bB := f.Block("B")
		bC := f.Block("C")
		bD := f.Block("D")

		// A: guard mostly takes the C path (the paper's "path ACD is
		// executed more frequently").
		g, x, y, z := f.Reg(), f.Reg(), f.Reg(), f.Reg()
		f.Li(g, 1)
		f.Li(x, 10)
		f.Li(y, 20)
		f.Branch(isa.BGTZ, g, isa.R0, bC, bB)

		f.Enter(bB) // i3: x = 3 — conflicts with i4 below
		f.Li(x, 3)
		f.Goto(bD)

		f.Enter(bC)
		f.Jump(bD)

		f.Enter(bD)
		i4 := f.Reg()
		f.ALU(isa.ADD, i4, x, x) // i4: reads x (B redefines x → not data equivalent)
		f.ALU(isa.ADD, z, y, y)  // i5: reads y only (data equivalent pair A–D)
		f.Out(i4)
		f.Out(z)
		f.Halt()
		f.Finish()
		return pr
	}
	sp := compile(t, build, machine.MinBoost3(), Options{})
	checkEquivalent(t, build, sp)

	// i5 (add z, y, y) moved to A without any compensation: the B block's
	// schedule must not contain a copy of it.
	p := sp.Procs["main"]
	var bSched, aSched string
	for id, sb := range p.Blocks {
		txt := ""
		for ci := range sb.Cycles {
			for _, in := range sb.Cycles[ci].Slots {
				if in != nil {
					txt += in.String() + "\n"
				}
			}
		}
		switch sb.Block.Label {
		case "B":
			bSched = txt
		case "entry":
			aSched = txt
		}
		_ = id
	}
	if !strings.Contains(aSched, "add") {
		t.Errorf("the data-equivalent add should move up to A:\n%s", aSched)
	}
	if strings.Count(bSched, "add") > 0 && strings.Contains(bSched, ", r") {
		// i5 must not be duplicated into B. (i4-related compensation is
		// allowed; it reads x which B redefines, so if it moved at all it
		// needed copies.)
		for _, line := range strings.Split(bSched, "\n") {
			if strings.Contains(line, "add") && strings.Contains(line, "y") {
				t.Errorf("data-equivalent move must not leave a copy in B:\n%s", bSched)
			}
		}
	}
}

// TestPaperFigure6c verifies the Option-2 constraint the paper draws in
// Figure 6: with a single shadow register file, overlapping boosted
// definitions of the same register must be serialized by the scheduler —
// and the executed program still matches the reference semantics.
func TestPaperFigure6c(t *testing.T) {
	build := func() *prog.Program {
		pr := prog.New()
		f := prog.NewBuilder(pr, "main")
		b1 := f.Block("b1")
		b2 := f.Block("b2")
		offA := f.Block("offA")
		offB := f.Block("offB")

		g1, g2, r3, r4 := f.Reg(), f.Reg(), f.Reg(), f.Reg()
		f.Li(g1, 1)
		f.Li(g2, 1)
		f.Li(r3, 1) // r3 = 1
		f.Branch(isa.BGTZ, g1, isa.R0, b1, offA)

		f.Enter(offA)
		f.Out(r3)
		f.Halt()

		f.Enter(b1)
		f.Li(r3, 2) // r3 = 2
		f.Branch(isa.BGTZ, g2, isa.R0, b2, offB)

		f.Enter(offB)
		f.Out(r3)
		f.Halt()

		f.Enter(b2)
		f.Li(r3, 3) // r3 = 3
		f.Move(r4, r3)
		f.Out(r4)
		f.Halt()
		f.Finish()
		return pr
	}
	// Both the single-shadow and multi-shadow machines must execute this
	// correctly; the property of interest (no overlapping same-register
	// levels on MinBoost3) is enforced by the simulator's hardware check,
	// so plain successful execution is the assertion.
	for _, m := range []*machine.Model{machine.MinBoost3(), machine.Boost7()} {
		sp := compile(t, build, m, Options{})
		checkEquivalent(t, build, sp)
	}
}

// TestPredictedDirectionCommit pins the commit semantics the paper defines
// in §2.3: a boosted instruction's effects reach the sequential state iff
// the *predicted* direction is taken — tested both ways with a hand-set
// prediction bit.
func TestPredictedDirectionCommit(t *testing.T) {
	build := func(bias int32) func() *prog.Program {
		return func() *prog.Program {
			pr := prog.New()
			pr.Word(55)
			f := prog.NewBuilder(pr, "main")
			hot := f.Block("hot")
			cold := f.Block("cold")
			g, v, base := f.Reg(), f.Reg(), f.Reg()
			f.La(base, prog.DataBase)
			f.Li(g, bias)
			f.Branch(isa.BGTZ, g, isa.R0, hot, cold)
			f.Enter(cold)
			f.Out(g)
			f.Halt()
			f.Enter(hot)
			f.Load(isa.LW, v, base, 0)
			f.Out(v)
			f.Halt()
			f.Finish()
			return pr
		}
	}
	// Trained with the branch taken: the load is boosted above it.
	sp := compile(t, build(1), machine.Boost1(), Options{})
	if countBoosted(sp) == 0 {
		t.Fatal("premise: the guarded load should be boosted")
	}
	res := checkEquivalent(t, build(1), sp)
	if res.Squashed != 0 {
		t.Errorf("correct prediction must commit, not squash (%d)", res.Squashed)
	}

	// Same schedule shape, but the test input goes the other way: the
	// speculative load must be squashed and never observed.
	train := build(1)()
	if err := profile.Annotate(train); err != nil {
		t.Fatal(err)
	}
	test := build(-1)()
	if err := profile.Transfer(train, test); err != nil {
		t.Fatal(err)
	}
	sp2, err := Schedule(test, machine.Boost1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sim.Exec(sp2, sim.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Squashed == 0 {
		t.Error("mispredicted path must squash the boosted load")
	}
	if len(res2.Out) != 1 || int32(res2.Out[0]) != -1 {
		t.Errorf("out = %v, want the cold path's value", res2.Out)
	}
}
