package core

import (
	"testing"

	"boosting/internal/isa"
	"boosting/internal/machine"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/sim"
)

// buildGuardedDeref builds:
//
//	p = mem[slot]; if p == 0 goto skip; v = *p; out v; skip: out 42; halt
//
// with the pointer slot initialized to ptr. The training run (via
// profile.Annotate) establishes the prediction; the test run may use a
// different pointer value, exercising squash and recovery paths.
func buildGuardedDeref(ptr uint32) *prog.Program {
	pr := prog.New()
	val := pr.Word(1234)
	slot := pr.Word(int32(ptr))
	_ = val

	f := prog.NewBuilder(pr, "main")
	deref := f.Block("deref")
	skip := f.Block("skip")

	base, p := f.Reg(), f.Reg()
	f.La(base, slot)
	f.Load(isa.LW, p, base, 0)
	f.Branch(isa.BEQ, p, isa.R0, skip, deref)

	f.Enter(deref)
	v := f.Reg()
	f.Load(isa.LW, v, p, 0)
	f.Out(v)
	f.Goto(skip)

	f.Enter(skip)
	c := f.Reg()
	f.Li(c, 42)
	f.Out(c)
	f.Halt()
	f.Finish()
	return pr
}

// valAddr returns the address of the first data word (the value cell).
const valAddr = prog.DataBase

// compileGuarded trains on a healthy pointer, then retargets the test
// program's pointer slot to testPtr before scheduling, so prediction says
// "pointer non-null" while the dynamic data may disagree.
func compileGuarded(t *testing.T, model *machine.Model, testPtr uint32) *machine.SchedProgram {
	t.Helper()
	train := buildGuardedDeref(valAddr)
	if err := profile.Annotate(train); err != nil {
		t.Fatal(err)
	}
	test := buildGuardedDeref(testPtr)
	if err := profile.Transfer(train, test); err != nil {
		t.Fatal(err)
	}
	sp, err := Schedule(test, model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestBoostedFaultSquashedOnMisprediction: a null pointer takes the branch
// the other way; the boosted load's fault must vanish with the squash.
func TestBoostedFaultSquashedOnMisprediction(t *testing.T) {
	sp := compileGuarded(t, machine.MinBoost3(), 0)
	if countBoosted(sp) == 0 {
		t.Fatal("test premise: the guarded load must be boosted")
	}
	res, err := sim.Exec(sp, sim.ExecConfig{})
	if err != nil {
		t.Fatalf("squashed boosted fault leaked: %v", err)
	}
	if res.Recoveries != 0 {
		t.Errorf("recoveries = %d, want 0 (fault was on the squashed path)", res.Recoveries)
	}
	if res.Squashed == 0 {
		t.Error("expected speculative state to be squashed")
	}
	if len(res.Out) != 1 || res.Out[0] != 42 {
		t.Errorf("out = %v, want [42]", res.Out)
	}
}

// TestBoostedFaultRecoversPrecisely: a non-null pointer to an unmapped
// page; prediction is correct, so the postponed exception surfaces at the
// commit, recovery code re-executes the load sequentially and the fault is
// delivered precisely to the handler, which maps the page and resumes.
func TestBoostedFaultRecoversPrecisely(t *testing.T) {
	const wild = 0x0030_0000 // unmapped but non-null
	sp := compileGuarded(t, machine.MinBoost3(), wild)
	if countBoosted(sp) == 0 {
		t.Fatal("test premise: the guarded load must be boosted")
	}

	var faults []sim.Fault
	res, err := sim.Exec(sp, sim.ExecConfig{
		OnFault: func(m *sim.Memory, f *sim.Fault) bool {
			faults = append(faults, *f)
			m.Map(f.Addr, 4)
			return true
		},
	})
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	if res.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", res.Recoveries)
	}
	if len(faults) != 1 {
		t.Fatalf("handler saw %d faults, want 1 precise fault", len(faults))
	}
	if faults[0].Kind != sim.FaultLoad || faults[0].Addr != wild {
		t.Errorf("precise fault = %+v", faults[0])
	}
	if faults[0].Boosted {
		t.Error("the re-raised fault must be sequential (precise), not boosted")
	}
	// After demand paging, the load returns 0 and execution continues.
	if len(res.Out) != 2 || res.Out[0] != 0 || res.Out[1] != 42 {
		t.Errorf("out = %v, want [0 42]", res.Out)
	}
}

// TestRecoveryChargesHandlerOverhead: a recovery costs the documented
// ~10-cycle handler entry on top of re-execution.
func TestRecoveryChargesHandlerOverhead(t *testing.T) {
	healthy := compileGuarded(t, machine.MinBoost3(), valAddr)
	resH, err := sim.Exec(healthy, sim.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}

	const wild = 0x0030_0000
	faulty := compileGuarded(t, machine.MinBoost3(), wild)
	resF, err := sim.Exec(faulty, sim.ExecConfig{
		OnFault: func(m *sim.Memory, f *sim.Fault) bool { m.Map(f.Addr, 4); return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	extra := resF.Cycles - resH.Cycles
	if extra < int64(faulty.Model.ExceptionOverhead) {
		t.Errorf("recovery added %d cycles, want at least the %d-cycle handler overhead",
			extra, faulty.Model.ExceptionOverhead)
	}
}

// TestUnhandledPreciseFaultTerminates: without a handler, the re-raised
// sequential fault stops execution and is reported.
func TestUnhandledPreciseFaultTerminates(t *testing.T) {
	const wild = 0x0030_0000
	sp := compileGuarded(t, machine.MinBoost3(), wild)
	res, err := sim.Exec(sp, sim.ExecConfig{})
	if err == nil {
		t.Fatal("expected a fault error")
	}
	f, ok := err.(*sim.Fault)
	if !ok || f.Kind != sim.FaultLoad {
		t.Fatalf("err = %v, want load fault", err)
	}
	if res.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", res.Recoveries)
	}
}

// TestObjectGrowthUnderTwo: recovery code and compensation must keep the
// scheduled object below the paper's two-times growth bound on the
// canonical boostable program.
func TestObjectGrowthUnderTwo(t *testing.T) {
	for _, m := range allModels() {
		sp := compile(t, buildBoostable, m, Options{})
		if g := sp.ObjectGrowth(); g >= 2.0 {
			t.Errorf("%s: object growth %.2f, want < 2.0", m, g)
		}
	}
}
