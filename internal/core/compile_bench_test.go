package core

// Compile-time benchmarks for the trace scheduler, plus the
// BENCH_compile.json writer and the committed-baseline regression gate
// that CI runs. In-package so the writer can flip Options.uncachedAnalyses
// and measure what the analysis cache saves.
//
//	go test -bench BenchmarkCompile -benchmem ./internal/core/   ad-hoc numbers
//	make bench-compile                                           rewrite BENCH_compile.json
//	make bench-compile-check                                     fail on >15% compile regression

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"boosting/internal/machine"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/regalloc"
	"boosting/internal/workloads"
)

// compileBenchModels are the configurations the benchmark schedules for:
// no speculation, the minimal boosting machine, and the deepest one.
func compileBenchModels() []*machine.Model {
	return []*machine.Model{machine.NoBoost(), machine.MinBoost3(), machine.Boost7()}
}

// benchMasters memoizes built (allocated, profiled) test programs per
// workload; every measurement schedules a fresh clone of the master.
var benchMasters sync.Map

func benchMaster(tb testing.TB, w *workloads.Workload) *prog.Program {
	tb.Helper()
	if m, ok := benchMasters.Load(w.Name); ok {
		return m.(*prog.Program)
	}
	train := w.BuildTrain()
	test := w.BuildTest()
	if _, err := regalloc.Allocate(train); err != nil {
		tb.Fatal(err)
	}
	if _, err := regalloc.Allocate(test); err != nil {
		tb.Fatal(err)
	}
	if err := profile.Annotate(train); err != nil {
		tb.Fatal(err)
	}
	if err := profile.Transfer(train, test); err != nil {
		tb.Fatal(err)
	}
	benchMasters.Store(w.Name, test)
	return test
}

// BenchmarkCompile measures end-to-end Schedule time for every workload
// on the three benchmark models.
func BenchmarkCompile(b *testing.B) {
	for _, w := range workloads.All() {
		master := benchMaster(b, w)
		for _, model := range compileBenchModels() {
			b.Run(w.Name+"/"+model.Name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					test := prog.Clone(master)
					b.StartTimer()
					if _, err := Schedule(test, model, Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// measureCompile times reps Schedule calls on fresh clones, cloning
// outside the timed span, and returns the fastest observation. Minimum-
// of-reps is the standard noise-robust estimator for sub-millisecond
// code: scheduler work is deterministic, so every excess over the
// minimum is scheduler-external jitter (GC, preemption). uncached
// restores the pre-pass-manager invalidate-everything-per-trace
// behavior.
func measureCompile(tb testing.TB, master *prog.Program, model *machine.Model, uncached bool, reps int) float64 {
	tb.Helper()
	opts := Options{uncachedAnalyses: uncached}
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		test := prog.Clone(master)
		start := time.Now()
		if _, err := Schedule(test, model, opts); err != nil {
			tb.Fatal(err)
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds())
}

// compileCell is one workload × model measurement in BENCH_compile.json.
type compileCell struct {
	CachedNsPerOp   float64 `json:"cached_ns_per_op"`
	UncachedNsPerOp float64 `json:"uncached_ns_per_op"`
	// Speedup is uncached/cached: what the analysis cache saves.
	Speedup float64 `json:"speedup"`
}

type compileBenchFile struct {
	GeneratedBy string                 `json:"generated_by"`
	Cells       map[string]compileCell `json:"cells"`
	// AggregateSpeedup compares total compile time across all cells.
	AggregateSpeedup float64 `json:"aggregate_speedup"`
}

// TestWriteCompileBenchJSON measures every workload × benchmark model
// with the analysis cache on and off and writes BENCH_compile.json (path
// in COMPILE_BENCH_JSON; skipped when unset so `go test ./...` stays
// quiet). It fails outright if caching does not improve aggregate compile
// time, so a baseline that lost the optimization cannot be committed.
func TestWriteCompileBenchJSON(t *testing.T) {
	out := os.Getenv("COMPILE_BENCH_JSON")
	if out == "" {
		t.Skip("set COMPILE_BENCH_JSON=path to write the compile benchmark file")
	}
	const reps = 40
	file := compileBenchFile{
		GeneratedBy: "go test -run TestWriteCompileBenchJSON ./internal/core/ (make bench-compile)",
		Cells:       map[string]compileCell{},
	}
	var cachedTotal, uncachedTotal float64
	for _, w := range workloads.All() {
		master := benchMaster(t, w)
		for _, model := range compileBenchModels() {
			// Warm build caches before the timed reps.
			measureCompile(t, master, model, false, 1)
			cell := compileCell{
				CachedNsPerOp:   measureCompile(t, master, model, false, reps),
				UncachedNsPerOp: measureCompile(t, master, model, true, reps),
			}
			cell.Speedup = cell.UncachedNsPerOp / cell.CachedNsPerOp
			cachedTotal += cell.CachedNsPerOp
			uncachedTotal += cell.UncachedNsPerOp
			key := w.Name + "/" + model.Name
			file.Cells[key] = cell
			t.Logf("%s: cached %.3fms, uncached %.3fms (%.2fx)",
				key, cell.CachedNsPerOp/1e6, cell.UncachedNsPerOp/1e6, cell.Speedup)
		}
	}
	file.AggregateSpeedup = uncachedTotal / cachedTotal
	t.Logf("aggregate: cached %.2fms, uncached %.2fms (%.2fx)",
		cachedTotal/1e6, uncachedTotal/1e6, file.AggregateSpeedup)
	if file.AggregateSpeedup <= 1 {
		t.Errorf("analysis caching does not pay: aggregate speedup %.3fx, want > 1x", file.AggregateSpeedup)
	}
	b, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCompileBenchRegression re-measures cached compile time and fails if
// it runs >15% slower than the committed BENCH_compile.json baseline
// (path in COMPILE_BENCH_BASELINE; skipped when unset). The comparison is
// aggregate across all cells, so single-cell timer noise on the small
// kernels cannot trip it; run on hardware comparable to what produced the
// baseline — regenerate with `make bench-compile` when it moves for a
// justified reason.
func TestCompileBenchRegression(t *testing.T) {
	base := os.Getenv("COMPILE_BENCH_BASELINE")
	if base == "" {
		t.Skip("set COMPILE_BENCH_BASELINE=path to compare against a committed baseline")
	}
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var want compileBenchFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	const tolerance = 1.15
	const reps = 40
	var gotTotal, wantTotal float64
	for _, w := range workloads.All() {
		master := benchMaster(t, w)
		for _, model := range compileBenchModels() {
			key := w.Name + "/" + model.Name
			cell, ok := want.Cells[key]
			if !ok {
				t.Errorf("baseline %s lacks cell %s; regenerate with make bench-compile", base, key)
				continue
			}
			measureCompile(t, master, model, false, 1) // warm
			got := measureCompile(t, master, model, false, reps)
			gotTotal += got
			wantTotal += cell.CachedNsPerOp
			t.Logf("%s: %.3fms vs baseline %.3fms", key, got/1e6, cell.CachedNsPerOp/1e6)
		}
	}
	if wantTotal <= 0 {
		t.Fatalf("baseline %s has no usable cells", base)
	}
	ratio := gotTotal / wantTotal
	t.Logf("aggregate: %.2fms vs baseline %.2fms (%.2fx)", gotTotal/1e6, wantTotal/1e6, ratio)
	if ratio > tolerance {
		t.Errorf("compile regressed to %.2fx the committed baseline (tolerance %.2fx): %s",
			ratio, tolerance, fmt.Sprintf("%.2fms vs %.2fms", gotTotal/1e6, wantTotal/1e6))
	}
}
