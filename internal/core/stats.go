package core

import (
	"time"

	"boosting/internal/dataflow"
)

// Motion-rejection reasons. Every way planMotion/bestForeign can turn a
// candidate down is bucketed under one of these names in Stats.Rejections
// (RejectReasons lists them all; the per-reason test table in
// stats_test.go triggers each one).
const (
	// RejectSlotLegality: the candidate's instruction class cannot issue
	// from the free slot under consideration (e.g. memory op in a
	// non-memory slot of the 2-issue machine).
	RejectSlotLegality = "slot-legality"
	// RejectMemoryDep: an unsatisfied memory dependence (load/store
	// ordering) keeps the candidate from issuing this cycle.
	RejectMemoryDep = "memory-dep"
	// RejectDependence: an unsatisfied register dependence or latency
	// keeps the candidate from issuing this cycle.
	RejectDependence = "dependence"
	// RejectCallBoundary: the motion would cross a call, return or halt.
	RejectCallBoundary = "call-boundary"
	// RejectObservableOut: observable output (OUT) is never speculated
	// across a conditional branch.
	RejectObservableOut = "observable-out"
	// RejectShadowLimit: the motion needs more boosting levels than the
	// machine's shadow structures provide (or the crossed branch is
	// degenerate — both targets rejoin the trace — so boosting across it
	// is impossible).
	RejectShadowLimit = "shadow-limit"
	// RejectStoreBuffer: a speculative store needs a shadow store buffer
	// the machine does not have.
	RejectStoreBuffer = "store-buffer"
	// RejectSquashZone: squash-only hardware boosts solely into the
	// shadow of the placement block's own branch; this candidate is
	// outside that zone.
	RejectSquashZone = "squash-zone"
	// RejectShadowConflict: single-shadow hardware already has an
	// in-flight boosted value of the same register with a different
	// commit point.
	RejectShadowConflict = "shadow-conflict"
	// RejectCompBoost: a compensation copy at a crossed join would need
	// to be boosted itself (further conditional branches remain between
	// the join and the origin block); the scheduler rejects instead.
	RejectCompBoost = "compensation-needs-boost"
	// RejectCompCost: the conscientious-scheduling gate — compensation
	// on the off-trace edges costs more than the trace is worth.
	RejectCompCost = "compensation-cost"
	// RejectTermOperand: a plain motion would define a register the
	// placement block's terminator reads, which the sequential
	// linearization cannot express, and no boost upgrade is possible.
	RejectTermOperand = "terminator-operand"
	// RejectShadowVisibility: the candidate depends on a still-
	// speculative producer whose remaining shadow level exceeds what
	// this placement could see.
	RejectShadowVisibility = "shadow-visibility"
	// RejectBoostedLoad: Options.NoBoostedLoads forbids hoisting loads
	// above branches (the memory-hierarchy ablation).
	RejectBoostedLoad = "boosted-load"
)

// RejectReasons lists every motion-rejection bucket.
func RejectReasons() []string {
	return []string{
		RejectSlotLegality, RejectMemoryDep, RejectDependence,
		RejectCallBoundary, RejectObservableOut, RejectShadowLimit,
		RejectStoreBuffer, RejectSquashZone, RejectShadowConflict,
		RejectCompBoost, RejectCompCost, RejectTermOperand,
		RejectShadowVisibility, RejectBoostedLoad,
	}
}

// Stats aggregates scheduler activity across one Schedule call: per-stage
// wall time, trace formation, code-motion outcomes bucketed by rejection
// reason, boosting depth, compensation and recovery volume, and the
// analysis manager's recompute/hit counters. Counters are observational
// only — collecting them never changes scheduling decisions, so schedules
// are byte-identical with or without a consumer reading them.
type Stats struct {
	// TracesFormed counts scheduled traces (including the single-block
	// traces of the unreachable-code escape path); TraceBlocks is the
	// total number of basic blocks they covered.
	TracesFormed int64 `json:"traces_formed"`
	TraceBlocks  int64 `json:"trace_blocks"`

	// MotionsAttempted counts motion plans evaluated (planMotion calls);
	// MotionsPlaced counts foreign instructions actually moved up.
	MotionsAttempted int64 `json:"motions_attempted"`
	MotionsPlaced    int64 `json:"motions_placed"`

	// Rejections buckets every turned-down candidate by reason (see the
	// Reject* constants).
	Rejections map[string]int64 `json:"rejections,omitempty"`

	// BoostedByLevel[l] counts placed foreign motions with boosting
	// level l; index 0 is plain (non-speculative) global motion.
	BoostedByLevel []int64 `json:"boosted_by_level,omitempty"`

	// CompensationCopies counts duplicated instructions on off-trace
	// edges; EdgeSplits counts compensation blocks freshly split into an
	// edge for them.
	CompensationCopies int64 `json:"compensation_copies"`
	EdgeSplits         int64 `json:"edge_splits"`

	// RecoverySites counts conditional branches that received recovery
	// code; RecoveryInsts the total recovery instructions emitted.
	RecoverySites int64 `json:"recovery_sites"`
	RecoveryInsts int64 `json:"recovery_insts"`

	// Per-stage wall time, in seconds, across all procedures.
	TraceSelectSeconds  float64 `json:"trace_select_seconds"`
	DDGBuildSeconds     float64 `json:"ddg_build_seconds"`
	ListScheduleSeconds float64 `json:"list_schedule_seconds"`
	RecoveryEmitSeconds float64 `json:"recovery_emit_seconds"`

	// Analysis aggregates the per-procedure analysis managers' cache
	// activity: recomputations scale with IR mutations, not traces.
	Analysis dataflow.ManagerStats `json:"analysis"`
}

// NewStats returns an empty Stats with the rejection map allocated.
func NewStats() *Stats {
	return &Stats{Rejections: map[string]int64{}}
}

// reject buckets one turned-down motion candidate.
func (st *Stats) reject(reason string) { st.Rejections[reason]++ }

// placed records one foreign motion landing with the given boost level.
func (st *Stats) placed(level int) {
	st.MotionsPlaced++
	for len(st.BoostedByLevel) <= level {
		st.BoostedByLevel = append(st.BoostedByLevel, 0)
	}
	st.BoostedByLevel[level]++
}

// Merge accumulates other's counters and stage times into st
// (aggregation across compiles).
func (st *Stats) Merge(other *Stats) {
	if other == nil {
		return
	}
	st.TracesFormed += other.TracesFormed
	st.TraceBlocks += other.TraceBlocks
	st.MotionsAttempted += other.MotionsAttempted
	st.MotionsPlaced += other.MotionsPlaced
	if st.Rejections == nil {
		st.Rejections = map[string]int64{}
	}
	for k, v := range other.Rejections {
		st.Rejections[k] += v
	}
	for l, c := range other.BoostedByLevel {
		for len(st.BoostedByLevel) <= l {
			st.BoostedByLevel = append(st.BoostedByLevel, 0)
		}
		st.BoostedByLevel[l] += c
	}
	st.CompensationCopies += other.CompensationCopies
	st.EdgeSplits += other.EdgeSplits
	st.RecoverySites += other.RecoverySites
	st.RecoveryInsts += other.RecoveryInsts
	st.TraceSelectSeconds += other.TraceSelectSeconds
	st.DDGBuildSeconds += other.DDGBuildSeconds
	st.ListScheduleSeconds += other.ListScheduleSeconds
	st.RecoveryEmitSeconds += other.RecoveryEmitSeconds
	st.Analysis.Add(other.Analysis)
}

// BoostedPlaced sums placed motions with level >= 1.
func (st *Stats) BoostedPlaced() int64 {
	var n int64
	for l, c := range st.BoostedByLevel {
		if l > 0 {
			n += c
		}
	}
	return n
}

// stage is a tiny wall-clock accumulator: defer stats.stageTimer(&sec)()
// adds the elapsed time to the bound field.
func stageTimer(acc *float64) func() {
	start := time.Now()
	return func() { *acc += time.Since(start).Seconds() }
}
