// Package core implements the paper's primary contribution: a trace-based
// global instruction scheduler with boosting (Smith, Horowitz, Lam,
// "Efficient Superscalar Performance Through Boosting", ASPLOS 1992, §3).
//
// The top-level structure follows the paper's Figure 4:
//
//	foreach PROCEDURE {
//	    generate CFG and compute global data-flow info;
//	    foreach REGION (innermost loop out to procedure level) {
//	        while (exists unscheduled TRACE) {
//	            select next best TRACE;
//	            foreach BB in TRACE {
//	                list schedule BB;
//	                fill in the holes through upward code motion;
//	            }
//	        }
//	        collapse REGION;
//	    }
//	}
//
// Boosting augments upward code motion: a speculative motion that is
// unsafe (the instruction can raise an exception) or illegal (its
// destination is live into a non-predicted successor of a crossed branch)
// is performed anyway by labelling the instruction with a boosting level
// equal to the number of conditional branches it crossed. Compensation
// for crossed join blocks is inserted by splitting the off-trace edges
// ("on-demand creation of basic blocks to hold duplicated instructions",
// §3.2.2), and control/data-equivalent block pairs move instructions
// without any compensation at all.
//
// All data-dependence edges (including anti and output) are honored in
// absolute schedule order; boosting removes only control-dependence
// constraints. This matches the paper's dependence-graph construction and
// also guarantees that sequential compensation copies on off-trace edges
// can never be observed out of order.
package core

import (
	"fmt"
	"os"

	"boosting/internal/dataflow"
	"boosting/internal/isa"
	"boosting/internal/machine"
	"boosting/internal/prog"
)

// debugLog enables scheduler tracing via BOOSTDEBUG=1 (development aid).
var debugLog = os.Getenv("BOOSTDEBUG") != ""

// Options tunes the scheduler; the zero value is the paper's full
// configuration for whatever model is passed.
type Options struct {
	// LocalOnly restricts scheduling to single basic blocks (no global
	// code motion); used for the paper's "basic block scheduling" bars
	// and for the scalar baseline.
	LocalOnly bool
	// DisableEquivalence turns off the control/data-equivalence shortcut,
	// forcing duplication-based bookkeeping everywhere (ablation).
	DisableEquivalence bool
	// NoDisambiguation builds maximally conservative memory dependences
	// (ablation).
	NoDisambiguation bool
	// NoBoostedLoads forbids boosting loads above branches (stores and
	// ALU ops still boost). On a finite memory hierarchy a speculative
	// load can stall the machine on a miss whose work is later squashed;
	// this knob isolates that cost (the memhier ablation).
	NoBoostedLoads bool
	// MaxTraceBlocks bounds trace length (0 = default 32).
	MaxTraceBlocks int

	// uncachedAnalyses restores the pre-pass-manager behavior of
	// invalidating every analysis before each trace, forcing full
	// recomputation. Schedules are identical either way (the analyses
	// are deterministic); the compile benchmark flips this to measure
	// what the caching saves.
	uncachedAnalyses bool
}

// Schedule compiles a program for the given machine model. The program is
// modified in place (compensation blocks are added to its CFG); callers
// who need the original should prog.Clone first. Branch prediction bits
// must already be set (package profile).
func Schedule(pr *prog.Program, model *machine.Model, opts Options) (*machine.SchedProgram, error) {
	sprog, _, err := ScheduleWithStats(pr, model, opts)
	return sprog, err
}

// ScheduleWithStats is Schedule plus the scheduler's observability
// counters: per-stage wall time, motion attempts/placements/rejections,
// boosting depth and analysis-cache activity. Collecting them never
// changes scheduling decisions.
func ScheduleWithStats(pr *prog.Program, model *machine.Model, opts Options) (*machine.SchedProgram, *Stats, error) {
	if opts.MaxTraceBlocks == 0 {
		opts.MaxTraceBlocks = 32
	}
	stats := NewStats()
	sprog := &machine.SchedProgram{
		Prog:  pr,
		Model: model,
		Procs: map[string]*machine.SchedProc{},
	}
	for _, p := range pr.ProcList() {
		sp, err := scheduleProc(pr, p, model, opts, stats)
		if err != nil {
			return nil, nil, fmt.Errorf("core: scheduling %s: %w", p.Name, err)
		}
		sprog.Procs[p.Name] = sp
	}
	if err := sprog.Verify(); err != nil {
		return nil, nil, fmt.Errorf("core: schedule verification: %w", err)
	}
	return sprog, stats, nil
}

// scheduleProc runs region-by-region trace scheduling over one procedure.
// All dataflow analyses go through a dataflow.Manager: computed lazily,
// served from cache while the IR generation is unchanged, and invalidated
// at the scheduler's two mutation points (compensation bookkeeping and
// the trace rewrite) instead of recomputed before every trace.
func scheduleProc(pr *prog.Program, p *prog.Proc, model *machine.Model, opts Options, stats *Stats) (*machine.SchedProc, error) {
	sp := &machine.SchedProc{
		Proc:     p,
		Blocks:   map[int]*machine.SchedBlock{},
		Recovery: map[int][]isa.Inst{},
	}
	s := &scheduler{
		pr:        pr,
		p:         p,
		model:     model,
		opts:      opts,
		sp:        sp,
		stats:     stats,
		am:        dataflow.NewManager(p),
		scheduled: map[int]bool{},
		splits:    map[splitKey]*prog.Block{},
	}

	regions := s.am.Regions()
	for _, reg := range regions {
		if err := s.scheduleRegion(reg); err != nil {
			return nil, err
		}
	}
	// Any block not covered (unreachable code) gets a local schedule so
	// the SchedProgram is total.
	for _, b := range p.Blocks {
		if b.Recovery || s.scheduled[b.ID] {
			continue
		}
		if err := s.scheduleTrace([]*prog.Block{b}); err != nil {
			return nil, err
		}
	}
	stats.Analysis.Add(s.am.Stats())
	return sp, nil
}

// scheduleRegion selects and schedules traces until every block of the
// region is scheduled (paper: "while (exists unscheduled TRACE)").
// Compensation blocks created inside the region join it and are scheduled
// too.
func (s *scheduler) scheduleRegion(reg *dataflow.Region) error {
	s.region = reg
	for {
		if s.opts.uncachedAnalyses {
			s.am.Invalidate(dataflow.KindAll)
		}
		stop := stageTimer(&s.stats.TraceSelectSeconds)
		trace := s.selectTrace(reg)
		stop()
		if trace == nil {
			return nil
		}
		if err := s.scheduleTrace(trace); err != nil {
			return err
		}
	}
}

// selectTrace picks the next unscheduled block in reverse postorder as the
// seed and grows the trace along predicted successors (paper §3.2.1),
// stopping at: a block outside the region or ending in a call/return/halt,
// a block already in the trace (loop edge), or an already-scheduled block.
func (s *scheduler) selectTrace(reg *dataflow.Region) []*prog.Block {
	var seed *prog.Block
	for _, b := range s.am.CFG().RPO {
		if !b.Recovery && !s.scheduled[b.ID] && s.inRegion(reg, b) {
			seed = b
			break
		}
	}
	if seed == nil {
		return nil
	}
	trace := []*prog.Block{seed}
	if s.opts.LocalOnly {
		return trace
	}
	inTrace := map[int]bool{seed.ID: true}
	for len(trace) < s.opts.MaxTraceBlocks {
		cur := trace[len(trace)-1]
		t := cur.Terminator()
		if t != nil && (t.Op == isa.JAL || t.Op == isa.JR || t.Op == isa.HALT) {
			break // calls, returns and halts end traces
		}
		next := cur.PredictedSucc()
		if next == nil || next.Recovery {
			break
		}
		if inTrace[next.ID] || s.scheduled[next.ID] || !s.inRegion(reg, next) {
			break
		}
		trace = append(trace, next)
		inTrace[next.ID] = true
	}
	return trace
}

// inRegion reports whether b belongs to the region. Blocks created after
// region formation (compensation blocks) belong to the innermost region
// still being scheduled, which is exactly the region whose edges spawned
// them; we approximate by set membership plus "new block" detection.
func (s *scheduler) inRegion(reg *dataflow.Region, b *prog.Block) bool {
	if reg.Blocks[b] {
		return true
	}
	// Compensation blocks are added to the region set on creation, so a
	// miss here is authoritative except for the procedure-body region,
	// which owns everything.
	return reg.Loop == nil
}
