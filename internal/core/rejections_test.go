package core

// Every motion-rejection bucket in RejectReasons() is exercised here, so
// a rejection path can never silently stop reporting. Ten buckets are
// reachable through Schedule on real inputs (workloads, or small crafted
// kernels for the two that need a specific CFG shape); the remaining
// three guard conditions the trace selector already rules out, so they
// are hit by calling planMotion directly on hand-built trace states.
// TestRejectionBucketsComplete cross-checks that the union of both tests
// covers the full RejectReasons() list.

import (
	"testing"

	"boosting/internal/dataflow"
	"boosting/internal/ddg"
	"boosting/internal/isa"
	"boosting/internal/machine"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/workloads"
)

// programBuckets maps each scheduler-reachable rejection reason to one
// deterministic (program, model, options) cell known to hit it.
var programBuckets = []struct {
	reason   string
	workload string // built via benchMaster; empty when asm is set
	asm      string // parsed + self-profiled; empty when workload is set
	model    *machine.Model
	opts     Options
}{
	{reason: RejectSlotLegality, workload: "awk", model: machine.NoBoost()},
	{reason: RejectDependence, workload: "awk", model: machine.NoBoost()},
	{reason: RejectMemoryDep, workload: "awk", model: machine.NoBoost()},
	{reason: RejectShadowLimit, workload: "awk", model: machine.NoBoost()},
	{reason: RejectSquashZone, workload: "awk", model: machine.Squashing()},
	{reason: RejectStoreBuffer, workload: "awk", model: machine.MinBoost3(),
		opts: Options{MaxTraceBlocks: 2}},
	{reason: RejectCompCost, workload: "compress", model: machine.NoBoost()},
	{reason: RejectCompBoost, workload: "grep", model: machine.MinBoost3()},
	{reason: RejectBoostedLoad, workload: "awk", model: machine.MinBoost3(),
		opts: Options{NoBoostedLoads: true}},

	// OUT is ready and slot-legal for the hole in entry's branch cycle,
	// but sits below a conditional branch: observable output is never
	// speculated.
	{reason: RejectObservableOut, model: machine.MinBoost3(), asm: `
.proc main
entry:
	li v1, 1
	bgtz v1, hot, cold
hot:
	out v1
	j done
cold:
	j done
done:
	halt
`},
	// Two loads of v3 boosted toward entry with different committing
	// branches: on single-shadow hardware (MinBoost3) the second in-flight
	// v3 conflicts with the first (Figure 6c). The add chain keeps entry's
	// memory slots empty so both motions are attempted.
	{reason: RejectShadowConflict, model: machine.MinBoost3(), asm: `
.word 5
.word 6
.proc main
entry:
	li v1, 0x10000
	li v2, 1
	add v9, v2, v2
	add v10, v9, v9
	bgtz v2, a, c1
a:
	lw v3, 0(v1)
	bgtz v2, b, c2
b:
	lw v3, 4(v1)
	out v3
	j done
c1:
	j done
c2:
	j done
done:
	halt
`},
}

// TestRejectionBuckets schedules each cell and asserts its bucket
// increments in the reported stats. Scheduling is deterministic, so a
// cell that stops producing its reason signals a behavior change.
func TestRejectionBuckets(t *testing.T) {
	for _, tc := range programBuckets {
		name := tc.reason
		t.Run(name, func(t *testing.T) {
			var pr *prog.Program
			if tc.workload != "" {
				w, err := workloads.ByName(tc.workload)
				if err != nil {
					t.Fatal(err)
				}
				pr = prog.Clone(benchMaster(t, w))
			} else {
				var err error
				pr, err = prog.Parse(tc.asm)
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				if err := profile.Annotate(pr); err != nil {
					t.Fatalf("profile: %v", err)
				}
			}
			_, st, err := ScheduleWithStats(pr, tc.model, tc.opts)
			if err != nil {
				t.Fatalf("schedule: %v", err)
			}
			if st.Rejections[tc.reason] == 0 {
				t.Errorf("Rejections[%s] = 0, want > 0 (got %v)", tc.reason, st.Rejections)
			}
		})
	}
}

// parseTrace parses asm, computes its profile, and returns a synthetic
// trace over main's blocks at the given indices plus a planMotion-ready
// scheduler and trace state. Used to reach the defensive rejection paths
// the trace selector never produces.
func parseTrace(t *testing.T, asm string, model *machine.Model, blockIdx ...int) (*scheduler, *traceState) {
	t.Helper()
	pr, err := prog.Parse(asm)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p := pr.ProcList()[0]
	trace := make([]*prog.Block, len(blockIdx))
	for i, bi := range blockIdx {
		trace[i] = p.Blocks[bi]
	}
	s := &scheduler{
		pr:        pr,
		p:         p,
		model:     model,
		opts:      Options{},
		stats:     NewStats(),
		am:        dataflow.NewManager(p),
		scheduled: map[int]bool{},
		splits:    map[splitKey]*prog.Block{},
	}
	st := &traceState{
		trace:   trace,
		g:       ddg.Build(trace, ddg.Options{}),
		placed:  map[*ddg.Node]*placement{},
		instSeq: map[*isa.Inst]int{},
	}
	return s, st
}

// nodeAt returns the graph node for instruction ii of trace block bi.
func nodeAt(t *testing.T, st *traceState, bi, ii int) *ddg.Node {
	t.Helper()
	k := 0
	for _, n := range st.g.Nodes {
		if n.BlockIdx != bi {
			continue
		}
		if k == ii {
			return n
		}
		k++
	}
	t.Fatalf("no node %d in trace block %d", ii, bi)
	return nil
}

// TestRejectionDefensiveBuckets drives planMotion directly on trace
// states the selector cannot produce, pinning the three guard buckets:
//
//   - call-boundary: selectTrace ends every trace AT a call/return/halt
//     block, so no trace ever has one interior; the guard still rejects a
//     synthetic trace that crosses one.
//   - terminator-operand: via bestForeign the mover always sits below the
//     branch that would read its destination, making branches >= 1 and
//     routing the conflict to the boosted-upgrade path instead; only a
//     same-block (bi == oi) motion reaches the branches == 0 reject.
//   - shadow-visibility: in-trace producers are never left with more
//     uncommitted shadow levels than a consumer boosted across the same
//     branches can see, so the reject needs a hand-planted deep-level
//     producer placement.
func TestRejectionDefensiveBuckets(t *testing.T) {
	t.Run(RejectCallBoundary, func(t *testing.T) {
		s, st := parseTrace(t, `
.proc main
entry:
	li v1, 1
	halt
after:
	add v2, v1, v1
	halt
`, machine.MinBoost3(), 0, 1)
		n := nodeAt(t, st, 1, 0) // the add, below entry's halt
		plan, why := s.planMotion(st, n, 0, false)
		if plan != nil || why != RejectCallBoundary {
			t.Fatalf("planMotion = (%v, %q), want (nil, %q)", plan, why, RejectCallBoundary)
		}
	})

	t.Run(RejectTermOperand, func(t *testing.T) {
		s, st := parseTrace(t, `
.proc main
entry:
	li v1, 1
	bgtz v1, a, b
a:
	j done
b:
	j done
done:
	halt
`, machine.MinBoost3(), 0)
		n := nodeAt(t, st, 0, 0) // li v1: defines the branch operand
		plan, why := s.planMotion(st, n, 0, false)
		if plan != nil || why != RejectTermOperand {
			t.Fatalf("planMotion = (%v, %q), want (nil, %q)", plan, why, RejectTermOperand)
		}
	})

	t.Run(RejectShadowVisibility, func(t *testing.T) {
		s, st := parseTrace(t, `
.word 7
.proc main
entry:
	li v1, 0x10000
	li v2, 1
	bgtz v2, a, off
a:
	lw v3, 0(v1)
	lw v5, 0(v3)
	add v6, v3, v3
	j done
off:
	j done
done:
	halt
`, machine.MinBoost3(), 0, 1)
		// Plant the producing load in entry with three uncommitted shadow
		// levels; any consumer boosted across entry's single branch sees
		// at most level 1 < 3.
		producer := nodeAt(t, st, 1, 0)
		st.placed[producer] = &placement{blockIdx: 0, level: 3}

		load := nodeAt(t, st, 1, 1) // lw v5, 0(v3): needs boosting itself
		plan, why := s.planMotion(st, load, 0, false)
		if plan != nil || why != RejectShadowVisibility {
			t.Fatalf("boosted consumer: planMotion = (%v, %q), want (nil, %q)",
				plan, why, RejectShadowVisibility)
		}

		add := nodeAt(t, st, 1, 2) // add v6, v3, v3: safe, upgrade path
		plan, why = s.planMotion(st, add, 0, false)
		if plan != nil || why != RejectShadowVisibility {
			t.Fatalf("upgraded consumer: planMotion = (%v, %q), want (nil, %q)",
				plan, why, RejectShadowVisibility)
		}
	})
}

// TestRejectionBucketsComplete asserts the two tests above jointly cover
// every bucket RejectReasons() knows about, so adding a bucket without a
// test fails here.
func TestRejectionBucketsComplete(t *testing.T) {
	covered := map[string]bool{
		RejectCallBoundary:     true, // TestRejectionDefensiveBuckets
		RejectTermOperand:      true, // TestRejectionDefensiveBuckets
		RejectShadowVisibility: true, // TestRejectionDefensiveBuckets
	}
	for _, tc := range programBuckets {
		covered[tc.reason] = true
	}
	for _, r := range RejectReasons() {
		if !covered[r] {
			t.Errorf("rejection bucket %q has no test exercising it", r)
		}
	}
	if got, want := len(covered), len(RejectReasons()); got != want {
		t.Errorf("tests cover %d buckets, RejectReasons() has %d", got, want)
	}
}
