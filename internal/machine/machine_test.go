package machine

import (
	"strings"
	"testing"

	"boosting/internal/isa"
	"boosting/internal/prog"
)

func TestModelDefinitions(t *testing.T) {
	s := Scalar()
	if s.IssueWidth != 1 || len(s.Slots) != 1 {
		t.Error("scalar must be single-issue")
	}
	for _, c := range []isa.Class{isa.ClassALU, isa.ClassShift, isa.ClassMulDiv, isa.ClassMem, isa.ClassBranch} {
		if !s.Slots[0].Has(c) {
			t.Errorf("scalar slot must accept %s", c)
		}
	}

	b := NoBoost()
	if b.IssueWidth != 2 {
		t.Error("base superscalar is 2-issue")
	}
	// Paper §4.3.1: "we can perform two integer ALU operations in
	// parallel, but not a branch and a shift operation in parallel".
	if !b.Slots[0].Has(isa.ClassALU) || !b.Slots[1].Has(isa.ClassALU) {
		t.Error("both sides need an integer ALU")
	}
	if !b.Slots[0].Has(isa.ClassBranch) || b.Slots[1].Has(isa.ClassBranch) {
		t.Error("only side 0 has the branch unit")
	}
	if !b.Slots[0].Has(isa.ClassShift) || b.Slots[1].Has(isa.ClassShift) {
		t.Error("only side 0 has the shifter")
	}
	if b.Slots[0].Has(isa.ClassMem) || !b.Slots[1].Has(isa.ClassMem) {
		t.Error("only side 1 has the memory port")
	}
}

func TestBoostConfigs(t *testing.T) {
	if NoBoost().Boost.Enabled() {
		t.Error("NoBoost must have no boosting")
	}
	sq := Squashing()
	if !sq.Boost.SquashOnly || sq.Boost.MaxLevel != 1 || !sq.Boost.StoreBuffer {
		t.Errorf("squashing config wrong: %+v", sq.Boost)
	}
	b1 := Boost1()
	if b1.Boost.MaxLevel != 1 || !b1.Boost.StoreBuffer || b1.Boost.MultiShadow || b1.Boost.SquashOnly {
		t.Errorf("boost1 config wrong: %+v", b1.Boost)
	}
	m3 := MinBoost3()
	if m3.Boost.MaxLevel != 3 || m3.Boost.StoreBuffer || m3.Boost.MultiShadow {
		t.Errorf("minboost3 config wrong: %+v", m3.Boost)
	}
	b7 := Boost7()
	if b7.Boost.MaxLevel != 7 || !b7.Boost.StoreBuffer || !b7.Boost.MultiShadow {
		t.Errorf("boost7 config wrong: %+v", b7.Boost)
	}
	if n := BoostN(5); n.Boost.MaxLevel != 5 || n.Name != "Boost5" {
		t.Errorf("BoostN wrong: %+v", n)
	}
	if len(AllEvaluated()) != 4 {
		t.Error("AllEvaluated must list the four Table 2 models")
	}
}

func TestSlotFor(t *testing.T) {
	m := NoBoost()
	free := []bool{true, true}
	if got := m.SlotFor(isa.ClassMem, free); got != 1 {
		t.Errorf("mem slot = %d, want 1", got)
	}
	if got := m.SlotFor(isa.ClassBranch, free); got != 0 {
		t.Errorf("branch slot = %d, want 0", got)
	}
	if got := m.SlotFor(isa.ClassALU, []bool{false, true}); got != 1 {
		t.Errorf("alu with slot0 busy = %d, want 1", got)
	}
	if got := m.SlotFor(isa.ClassShift, []bool{false, true}); got != -1 {
		t.Errorf("shift with slot0 busy = %d, want -1", got)
	}
	if got := m.SlotFor(isa.ClassNone, []bool{false, true}); got != 1 {
		t.Errorf("none-class = %d, want any free slot", got)
	}
}

// tiny schedule fixture: one block, [add|lw], [beq|-], [nop delay].
func fixture(t *testing.T) (*SchedProgram, *SchedBlock) {
	t.Helper()
	pr := prog.New()
	f := prog.NewBuilder(pr, "main")
	loop := f.Block("loop")
	done := f.Block("done")
	f.Goto(loop)
	f.Enter(loop)
	r := f.Reg()
	f.Imm(isa.ADDI, r, r, 1)
	f.Branch(isa.BGTZ, r, isa.R0, loop, done)
	f.Enter(done)
	f.Halt()
	f.Finish()

	loopB := pr.Main().Blocks[1]
	add := &loopB.Insts[0]
	beq := &loopB.Insts[1]
	sb := &SchedBlock{
		Block: loopB,
		Cycles: []Cycle{
			{Slots: []*isa.Inst{beq, add}},
			{Slots: []*isa.Inst{nil, nil}},
		},
	}
	sp := &SchedProgram{
		Prog:  pr,
		Model: NoBoost(),
		Procs: map[string]*SchedProc{
			"main": {
				Proc: pr.Main(),
				Blocks: map[int]*SchedBlock{
					0: {Block: pr.Main().Blocks[0], Cycles: nil},
					1: sb,
					2: {Block: pr.Main().Blocks[2], Cycles: []Cycle{
						{Slots: []*isa.Inst{&pr.Main().Blocks[2].Insts[0], nil}},
					}},
				},
				Recovery: map[int][]isa.Inst{},
			},
		},
	}
	return sp, sb
}

func TestScheduleCounting(t *testing.T) {
	sp, sb := fixture(t)
	if sb.NumInsts() != 2 || sb.NumUseful() != 2 {
		t.Errorf("counts: %d/%d", sb.NumInsts(), sb.NumUseful())
	}
	nop := &isa.Inst{Op: isa.NOP}
	sb.Cycles[1].Slots[0] = nop
	if sb.NumInsts() != 3 || sb.NumUseful() != 2 {
		t.Errorf("with nop: %d/%d", sb.NumInsts(), sb.NumUseful())
	}
	if n := len(sb.Cycles[0].Insts()); n != 2 {
		t.Errorf("cycle insts = %d", n)
	}
	if sp.NumInsts() == 0 || sp.ObjectGrowth() <= 0 {
		t.Error("program counting broken")
	}
}

func TestVerifyAcceptsGoodSchedule(t *testing.T) {
	sp, _ := fixture(t)
	if err := sp.Verify(); err != nil {
		t.Fatalf("good schedule rejected: %v", err)
	}
}

func TestVerifyRejections(t *testing.T) {
	// Wrong slot class: branch in slot 1.
	sp, sb := fixture(t)
	sb.Cycles[0].Slots[0], sb.Cycles[0].Slots[1] = sb.Cycles[0].Slots[1], sb.Cycles[0].Slots[0]
	if err := sp.Verify(); err == nil || !strings.Contains(err.Error(), "class") {
		t.Errorf("want class error, got %v", err)
	}

	// Missing delay cycle: terminator in the last cycle.
	sp, sb = fixture(t)
	sb.Cycles = sb.Cycles[:1]
	if err := sp.Verify(); err == nil {
		t.Error("want terminator-position error")
	}

	// Boost level beyond the model.
	sp, sb = fixture(t)
	boosted := *sb.Cycles[0].Slots[1]
	boosted.Boost = 1
	sb.Cycles[0].Slots[1] = &boosted
	if err := sp.Verify(); err == nil || !strings.Contains(err.Error(), "boost level") {
		t.Errorf("want boost-level error, got %v", err)
	}

	// Boosted store without a store buffer.
	sp, sb = fixture(t)
	sp.Model = MinBoost3()
	st := &isa.Inst{Op: isa.SW, Rt: 1, Rs: 2, Boost: 1}
	sb.Cycles[0].Slots[1] = st
	if err := sp.Verify(); err == nil || !strings.Contains(err.Error(), "store") {
		t.Errorf("want store-buffer error, got %v", err)
	}

	// Squashing: boosted instruction outside the shadow zone.
	sp, sb = fixture(t)
	sp.Model = Squashing()
	early := &isa.Inst{Op: isa.ADDI, Rd: 3, Rs: 3, Imm: 1, Boost: 1}
	sb.Cycles = append([]Cycle{{Slots: []*isa.Inst{early, nil}}}, sb.Cycles...)
	if err := sp.Verify(); err == nil || !strings.Contains(err.Error(), "shadow") {
		t.Errorf("want shadow-zone error, got %v", err)
	}

	// Missing block schedule.
	sp, _ = fixture(t)
	delete(sp.Procs["main"].Blocks, 2)
	if err := sp.Verify(); err == nil {
		t.Error("want missing-schedule error")
	}
}

// TestVerifySlotLegality is the table-driven slot-legality matrix for the
// base superscalar: every functional-unit class against both issue slots.
// Side 0 owns the branch unit, the shifter and the multiplier; side 1 owns
// the memory port; simple ALU operations issue on either side (paper
// §4.3.1). Each case drops one instruction into the fixture's delay cycle
// and checks Verify's verdict.
func TestVerifySlotLegality(t *testing.T) {
	cases := []struct {
		name string
		op   isa.Op
		slot int
		ok   bool
	}{
		{"alu-slot0", isa.ADDI, 0, true},
		{"alu-slot1", isa.ADDI, 1, true},
		{"shift-slot0", isa.SLL, 0, true},
		{"shift-slot1", isa.SLL, 1, false},
		{"muldiv-slot0", isa.MUL, 0, true},
		{"muldiv-slot1", isa.MUL, 1, false},
		{"load-slot0", isa.LW, 0, false},
		{"load-slot1", isa.LW, 1, true},
		{"store-slot0", isa.SW, 0, false},
		{"store-slot1", isa.SW, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp, sb := fixture(t)
			sb.Cycles[1].Slots[tc.slot] = &isa.Inst{Op: tc.op, Rd: 3, Rs: 3}
			err := sp.Verify()
			if tc.ok && err != nil {
				t.Fatalf("legal placement rejected: %v", err)
			}
			if !tc.ok && (err == nil || !strings.Contains(err.Error(), "class")) {
				t.Fatalf("want class-legality error, got %v", err)
			}
		})
	}

	// The branch unit lives on side 0 only: the fixture's terminator moved
	// into slot 1 must be rejected as a class violation (not merely a
	// terminator-placement complaint).
	t.Run("branch-slot1", func(t *testing.T) {
		sp, sb := fixture(t)
		sb.Cycles[0].Slots[0], sb.Cycles[0].Slots[1] = sb.Cycles[0].Slots[1], sb.Cycles[0].Slots[0]
		if err := sp.Verify(); err == nil || !strings.Contains(err.Error(), "class") {
			t.Fatalf("want class-legality error, got %v", err)
		}
	})
}

func TestFormatSchedule(t *testing.T) {
	sp, _ := fixture(t)
	out := sp.Procs["main"].Format()
	for _, want := range []string{".sched main", "bgtz", "addi", " | "} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}
