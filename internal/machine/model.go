// Package machine describes the processor models of the paper's evaluation
// and the machine-level schedule representation produced by the schedulers
// and consumed by the simulators.
//
// The base superscalar (paper §4.3.1) is a 2-issue machine with restricted
// issue: side 0 holds an integer ALU, the branch unit, a shifter and the
// integer multiply/divide unit; side 1 holds an integer ALU and the single
// memory port. There is no swap logic: the scheduler is responsible for
// placing each instruction in a slot whose functional units can execute it.
// Loads and branches have a single delay slot, as on the MIPS R2000.
//
// The speculative-execution variants (paper §4.2–4.3) differ only in their
// boosting hardware:
//
//	NoBoost    – no speculation hardware; only safe+legal motions.
//	Squashing  – squashing pipeline only: boosted instructions may sit in
//	             the branch-issue cycle or the delay-slot cycle (Option 3).
//	Boost1     – one shadow register file and one shadow store buffer;
//	             boosting past a single branch.
//	MinBoost3  – single shadow register file handling up to 3 levels
//	             (Option 2) but no shadow store buffer (Option 1).
//	Boost7     – full shadow structures for 7 levels of boosting.
package machine

import (
	"fmt"

	"boosting/internal/isa"
)

// ClassSet is a bitmask of functional-unit classes a slot accepts.
type ClassSet uint16

// Has reports whether the set accepts class c.
func (s ClassSet) Has(c isa.Class) bool { return s&(1<<uint(c)) != 0 }

// classSetOf builds a ClassSet from classes.
func classSetOf(cs ...isa.Class) ClassSet {
	var s ClassSet
	for _, c := range cs {
		s |= 1 << uint(c)
	}
	return s
}

// BoostConfig describes the boosting hardware of a model.
type BoostConfig struct {
	// MaxLevel is the deepest supported boosting level (0 = no boosting).
	MaxLevel int
	// StoreBuffer reports whether a shadow store buffer exists, i.e.
	// whether stores may be boosted (paper Option 1 removes it).
	StoreBuffer bool
	// StoreBufferSize bounds the shadow store buffer's entry count
	// (0 = unbounded, the paper's idealization). A finite buffer reports
	// a hardware-conflict error when a boosted store would overflow it,
	// the same checked-model treatment as single-shadow conflicts.
	StoreBufferSize int
	// MultiShadow reports whether each register has a distinct shadow
	// location per boosting level (the full scheme of §4.1). When false
	// (Option 2) a register has a single shadow location shared by all
	// levels, so at most one uncommitted boosted value per register may
	// be outstanding, and the scheduler must honor the resulting
	// output-like dependence (Figure 6c).
	MultiShadow bool
	// SquashOnly restricts boosted instructions to the branch-issue cycle
	// and the branch-delay cycle of the block ending in their dependent
	// branch (Option 3, the Squashing model).
	SquashOnly bool
}

// Enabled reports whether any boosting is available.
func (c BoostConfig) Enabled() bool { return c.MaxLevel > 0 }

// Model is a processor configuration.
type Model struct {
	// Name identifies the model in output tables.
	Name string
	// IssueWidth is the number of instructions issued per cycle.
	IssueWidth int
	// Slots[i] is the set of instruction classes slot i accepts.
	Slots []ClassSet
	// Boost is the boosting hardware configuration.
	Boost BoostConfig
	// ExceptionOverhead is the cycle cost of entering the boosted
	// exception handler (paper §2.3: "approximate 10-cycle overhead").
	ExceptionOverhead int
}

// SlotFor returns the lowest-numbered free slot that can execute class c,
// or -1. free[i] reports whether slot i is still empty.
func (m *Model) SlotFor(c isa.Class, free []bool) int {
	for i, s := range m.Slots {
		if free[i] && (s.Has(c) || c == isa.ClassNone) {
			return i
		}
	}
	return -1
}

// String returns the model name.
func (m *Model) String() string { return m.Name }

// anySlot accepts every class (scalar machine).
var anySlot = classSetOf(isa.ClassALU, isa.ClassShift, isa.ClassMulDiv,
	isa.ClassMem, isa.ClassBranch, isa.ClassNone)

// side0 and side1 are the base superscalar's two issue slots.
var (
	side0 = classSetOf(isa.ClassALU, isa.ClassBranch, isa.ClassShift,
		isa.ClassMulDiv, isa.ClassNone)
	side1 = classSetOf(isa.ClassALU, isa.ClassMem, isa.ClassNone)
)

// newSuper returns a 2-issue base superscalar with the given boosting
// hardware.
func newSuper(name string, b BoostConfig) *Model {
	return &Model{
		Name:              name,
		IssueWidth:        2,
		Slots:             []ClassSet{side0, side1},
		Boost:             b,
		ExceptionOverhead: 10,
	}
}

// Scalar returns the single-issue MIPS R2000 base machine.
func Scalar() *Model {
	return &Model{Name: "R2000", IssueWidth: 1, Slots: []ClassSet{anySlot}}
}

// NoBoost returns the base superscalar with no speculation hardware.
func NoBoost() *Model { return newSuper("NoBoost", BoostConfig{}) }

// Squashing returns the superscalar whose only speculation support is a
// squashing pipeline (Option 3).
func Squashing() *Model {
	return newSuper("Squashing", BoostConfig{
		MaxLevel: 1, StoreBuffer: true, SquashOnly: true,
	})
}

// Boost1 returns the superscalar with a single shadow register file and a
// shadow store buffer supporting one level of boosting.
func Boost1() *Model {
	return newSuper("Boost1", BoostConfig{MaxLevel: 1, StoreBuffer: true})
}

// MinBoost3 returns the superscalar with a single multi-level shadow
// register file (3 levels) and no shadow store buffer (Options 1+2).
func MinBoost3() *Model {
	return newSuper("MinBoost3", BoostConfig{MaxLevel: 3})
}

// Boost7 returns the superscalar with full shadow structures for 7 levels.
func Boost7() *Model {
	return newSuper("Boost7", BoostConfig{
		MaxLevel: 7, StoreBuffer: true, MultiShadow: true,
	})
}

// Wide4 returns a 4-issue machine (two copies of each side of the base
// superscalar) with the given boosting hardware — an extension beyond the
// paper's 2-issue evaluation, used to study how boosting gains scale with
// issue width.
func Wide4(b BoostConfig) *Model {
	return &Model{
		Name:              "Wide4",
		IssueWidth:        4,
		Slots:             []ClassSet{side0, side1, side0, side1},
		Boost:             b,
		ExceptionOverhead: 10,
	}
}

// BoostN returns a superscalar with full (multi-shadow, store-buffered)
// boosting to an arbitrary level; used by ablation studies.
func BoostN(n int) *Model {
	return newSuper(fmt.Sprintf("Boost%d", n), BoostConfig{
		MaxLevel: n, StoreBuffer: true, MultiShadow: true,
	})
}

// AllEvaluated returns the boosting models of Table 2 in paper order.
func AllEvaluated() []*Model {
	return []*Model{Squashing(), Boost1(), MinBoost3(), Boost7()}
}
