package machine

import (
	"fmt"
	"strings"

	"boosting/internal/isa"
	"boosting/internal/prog"
)

// Cycle is one issue cycle of a schedule: up to IssueWidth instructions,
// one per slot (nil = empty slot, which the hardware treats as a NOP).
type Cycle struct {
	Slots []*isa.Inst
}

// Insts returns the non-nil instructions of the cycle in slot order.
func (c *Cycle) Insts() []*isa.Inst {
	out := make([]*isa.Inst, 0, len(c.Slots))
	for _, in := range c.Slots {
		if in != nil {
			out = append(out, in)
		}
	}
	return out
}

// SchedBlock is the machine schedule of one basic block. If the block ends
// in a branch or jump, the final cycle of the schedule is the architectural
// delay-slot cycle and the terminator sits in the cycle before it.
type SchedBlock struct {
	Block  *prog.Block
	Cycles []Cycle
}

// NumInsts counts the instructions (excluding empty slots) in the schedule.
func (sb *SchedBlock) NumInsts() int {
	n := 0
	for i := range sb.Cycles {
		for _, in := range sb.Cycles[i].Slots {
			if in != nil {
				n++
			}
		}
	}
	return n
}

// NumUseful counts instructions excluding explicit NOPs.
func (sb *SchedBlock) NumUseful() int {
	n := 0
	for i := range sb.Cycles {
		for _, in := range sb.Cycles[i].Slots {
			if in != nil && in.Op != isa.NOP {
				n++
			}
		}
	}
	return n
}

// SchedProc is the machine schedule of one procedure.
type SchedProc struct {
	Proc *prog.Proc
	// Blocks maps block ID to its schedule. Every non-recovery block
	// reachable from the entry has an entry here.
	Blocks map[int]*SchedBlock
	// Recovery maps the instruction ID of a committing conditional branch
	// to the boosted-exception recovery code for that branch: the
	// outstanding boosted instructions in original program order with
	// boosting levels decremented by one (level 1 becomes sequential).
	// The recovery sequence implicitly ends with a jump to the branch's
	// predicted target.
	Recovery map[int][]isa.Inst
}

// NumInsts returns the procedure's scheduled static size including
// recovery code (the paper's object-file-growth metric counts both).
func (sp *SchedProc) NumInsts() int {
	n := 0
	for _, sb := range sp.Blocks {
		n += sb.NumInsts()
	}
	for _, rec := range sp.Recovery {
		n += len(rec) + 1 // +1 for the terminating jump
	}
	return n
}

// SchedProgram is a fully scheduled program for one machine model.
type SchedProgram struct {
	Prog  *prog.Program
	Model *Model
	Procs map[string]*SchedProc
}

// NumInsts returns the whole program's scheduled static size.
func (s *SchedProgram) NumInsts() int {
	n := 0
	for _, sp := range s.Procs {
		n += sp.NumInsts()
	}
	return n
}

// ObjectGrowth returns scheduled size / original size (paper §2.3 reports
// "less than a two-times growth" including recovery code).
func (s *SchedProgram) ObjectGrowth() float64 {
	orig := s.Prog.NumInsts()
	if orig == 0 {
		return 1
	}
	return float64(s.NumInsts()) / float64(orig)
}

// Format renders a procedure schedule for inspection: one line per cycle,
// slots separated by " | ".
func (sp *SchedProc) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ".sched %s\n", sp.Proc.Name)
	for _, b := range sp.Proc.Blocks {
		blk := sp.Blocks[b.ID]
		if blk == nil {
			continue
		}
		fmt.Fprintf(&sb, "B%d.%s:\n", b.ID, b.Label)
		for ci := range blk.Cycles {
			parts := make([]string, 0, len(blk.Cycles[ci].Slots))
			for _, in := range blk.Cycles[ci].Slots {
				if in == nil {
					parts = append(parts, "-")
				} else {
					parts = append(parts, in.String())
				}
			}
			fmt.Fprintf(&sb, "  %2d: %s\n", ci, strings.Join(parts, " | "))
		}
	}
	if len(sp.Recovery) > 0 {
		fmt.Fprintf(&sb, ".recovery (%d sites)\n", len(sp.Recovery))
	}
	return sb.String()
}

// Verify checks structural schedule invariants against the model:
// slot class legality, exactly one terminator placed in the second-to-last
// cycle (followed by its delay cycle) when the block has one, boosting
// levels within the model's limit, boosted stores only with a store
// buffer, and Squashing placement limits.
func (s *SchedProgram) Verify() error {
	for name, sp := range s.Procs {
		for _, b := range sp.Proc.Blocks {
			if b.Recovery {
				continue
			}
			sb := sp.Blocks[b.ID]
			if sb == nil {
				return fmt.Errorf("%s: block B%d has no schedule", name, b.ID)
			}
			if err := s.verifyBlock(name, sb); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *SchedProgram) verifyBlock(proc string, sb *SchedBlock) error {
	m := s.Model
	b := sb.Block
	termCycle := -1
	for ci := range sb.Cycles {
		cy := &sb.Cycles[ci]
		if len(cy.Slots) != m.IssueWidth {
			return fmt.Errorf("%s B%d cycle %d: %d slots, want %d",
				proc, b.ID, ci, len(cy.Slots), m.IssueWidth)
		}
		for si, in := range cy.Slots {
			if in == nil {
				continue
			}
			c := isa.ClassOf(in.Op)
			if c != isa.ClassNone && !m.Slots[si].Has(c) {
				return fmt.Errorf("%s B%d cycle %d slot %d: class %s not executable",
					proc, b.ID, ci, si, c)
			}
			if isa.IsControl(in.Op) {
				if termCycle >= 0 {
					return fmt.Errorf("%s B%d: two control instructions", proc, b.ID)
				}
				termCycle = ci
			}
			if in.Boost > m.Boost.MaxLevel {
				return fmt.Errorf("%s B%d: boost level %d exceeds model max %d",
					proc, b.ID, in.Boost, m.Boost.MaxLevel)
			}
			if in.Boost > 0 && isa.IsStore(in.Op) && !m.Boost.StoreBuffer {
				return fmt.Errorf("%s B%d: boosted store without shadow store buffer",
					proc, b.ID)
			}
			if in.Boost > 0 && m.Boost.SquashOnly {
				// Boosted instructions may only occupy the branch cycle or
				// the delay cycle (the last two cycles of the block).
				if ci < len(sb.Cycles)-2 {
					return fmt.Errorf("%s B%d cycle %d: boosted instruction outside branch shadow",
						proc, b.ID, ci)
				}
			}
		}
	}
	t := b.Terminator()
	if t != nil && t.Op != isa.HALT {
		// Branch/jump must be in the second-to-last cycle; the last cycle
		// is its delay slot.
		if termCycle != len(sb.Cycles)-2 {
			return fmt.Errorf("%s B%d: terminator in cycle %d of %d (want len-2)",
				proc, b.ID, termCycle, len(sb.Cycles))
		}
	}
	if t == nil && termCycle >= 0 {
		return fmt.Errorf("%s B%d: unexpected control instruction", proc, b.ID)
	}
	return nil
}
