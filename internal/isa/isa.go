// Package isa defines the instruction set architecture used throughout the
// boosting reproduction: a load/store RISC machine closely modeled on the
// MIPS R2000 (the paper's base architecture), extended with the boosting
// labels of Smith, Horowitz and Lam (ASPLOS 1992).
//
// An instruction may carry a boosting level n > 0, meaning it is control
// dependent upon the next n conditional branches each taking its predicted
// direction (the paper's trace-based ".Bn" labelling). Conditional branches
// carry their static prediction bit.
package isa

import "fmt"

// Reg names an architectural or virtual register. Registers 0..31 are the
// architectural set (R0 is hardwired to zero, as on the R2000). Registers
// >= 32 are virtual registers used by the infinite-register scheduling model
// and by workloads before register allocation.
type Reg int32

// NumArchRegs is the number of architectural integer registers.
const NumArchRegs = 32

// Conventional register assignments (a small subset of the MIPS o32 ABI,
// enough for our workloads and register allocator).
const (
	// R0 always reads as zero; writes are discarded.
	R0 Reg = 0
	// RV holds a procedure's return value (MIPS $v0).
	RV Reg = 2
	// A0..A3 hold procedure arguments (MIPS $a0..$a3).
	A0 Reg = 4
	A1 Reg = 5
	A2 Reg = 6
	A3 Reg = 7
	// SP is the stack pointer (MIPS $sp).
	SP Reg = 29
	// RA holds the return address written by JAL (MIPS $ra).
	RA Reg = 31
	// FirstVirtual is the first virtual (non-architectural) register.
	FirstVirtual Reg = 32
)

// IsArch reports whether r is one of the 32 architectural registers.
func (r Reg) IsArch() bool { return r >= 0 && r < NumArchRegs }

// IsVirtual reports whether r is a virtual register (>= FirstVirtual).
func (r Reg) IsVirtual() bool { return r >= FirstVirtual }

// String renders architectural registers as "r4" and virtual ones as "v7".
func (r Reg) String() string {
	if r.IsVirtual() {
		return fmt.Sprintf("v%d", int32(r-FirstVirtual))
	}
	return fmt.Sprintf("r%d", int32(r))
}

// Op enumerates the machine operations.
type Op uint8

const (
	// NOP does nothing for one cycle (delay-slot filler).
	NOP Op = iota

	// Three-register ALU operations: Rd = Rs op Rt.
	ADD // add (traps on signed overflow on a real R2000; we wrap)
	SUB
	AND
	OR
	XOR
	NOR
	SLT  // set Rd=1 if Rs < Rt (signed) else 0
	SLTU // unsigned compare

	// Immediate ALU operations: Rd = Rs op Imm.
	ADDI
	ANDI
	ORI
	XORI
	SLTI
	SLTIU
	LUI // Rd = Imm << 16

	// Shifts: Rd = Rs shifted by Imm (SLL/SRL/SRA) or by Rt (SLLV/SRLV/SRAV).
	SLL
	SRL
	SRA
	SLLV
	SRLV
	SRAV

	// Multiply/divide. Unlike the R2000's HI/LO scheme these write Rd
	// directly, but they keep the R2000's multi-cycle latencies.
	MUL  // Rd = Rs * Rt (low 32 bits)
	DIV  // Rd = Rs / Rt (signed; traps on divide by zero)
	REM  // Rd = Rs % Rt (signed; traps on divide by zero)
	DIVU // Rd = Rs / Rt (unsigned; traps on divide by zero)

	// Loads: Rd = Mem[Rs + Imm]. A load has one architectural delay slot.
	LW
	LB
	LBU
	LH
	LHU

	// Stores: Mem[Rs + Imm] = Rt.
	SW
	SB
	SH

	// Conditional branches. Branches compare and jump relative to the
	// block structure (targets are CFG edges, not addresses, in the IR).
	// Each branch has one architectural delay slot.
	BEQ  // taken if Rs == Rt
	BNE  // taken if Rs != Rt
	BLEZ // taken if Rs <= 0
	BGTZ // taken if Rs > 0
	BLTZ // taken if Rs < 0
	BGEZ // taken if Rs >= 0

	// Unconditional control transfer.
	J    // jump (block-to-block; also one delay slot)
	JAL  // jump and link: RA = return point, call procedure named Sym
	JR   // jump register: return (Rs == RA) or indirect jump
	HALT // stop the machine (end of program)

	// OUT appends the low byte... no: OUT appends the 32-bit value in Rs
	// to the program's output stream. It is the observable side effect used
	// to compare original and scheduled programs.
	OUT

	numOps // sentinel; keep last
)

// NumOps is the number of defined operations. Decoders use it to validate
// opcode bytes read from external input.
const NumOps = int(numOps)

var opNames = [numOps]string{
	NOP: "nop", ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	NOR: "nor", SLT: "slt", SLTU: "sltu", ADDI: "addi", ANDI: "andi",
	ORI: "ori", XORI: "xori", SLTI: "slti", SLTIU: "sltiu", LUI: "lui",
	SLL: "sll", SRL: "srl", SRA: "sra", SLLV: "sllv", SRLV: "srlv",
	SRAV: "srav", MUL: "mul", DIV: "div", REM: "rem", DIVU: "divu",
	LW: "lw", LB: "lb", LBU: "lbu", LH: "lh", LHU: "lhu",
	SW: "sw", SB: "sb", SH: "sh",
	BEQ: "beq", BNE: "bne", BLEZ: "blez", BGTZ: "bgtz", BLTZ: "bltz",
	BGEZ: "bgez", J: "j", JAL: "jal", JR: "jr", HALT: "halt", OUT: "out",
}

// String returns the assembler mnemonic for the op.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class groups operations by the functional unit that executes them. The
// 2-issue superscalar distributes units between its two sides exactly as in
// the paper: side 0 has an integer ALU, the branch unit, the shifter, the
// integer multiply/divide unit and the FPU; side 1 has an integer ALU and
// the single memory port.
type Class uint8

const (
	// ClassALU covers simple integer operations (either side).
	ClassALU Class = iota
	// ClassShift covers shift operations (side 0 only).
	ClassShift
	// ClassMulDiv covers multiply/divide (side 0 only).
	ClassMulDiv
	// ClassMem covers loads and stores (side 1 only).
	ClassMem
	// ClassBranch covers branches and jumps (side 0 only).
	ClassBranch
	// ClassNone covers NOP and HALT, which any slot may hold.
	ClassNone
	// NumClasses is the number of functional-unit classes.
	NumClasses
)

// String returns a short name for the class.
func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassShift:
		return "shift"
	case ClassMulDiv:
		return "muldiv"
	case ClassMem:
		return "mem"
	case ClassBranch:
		return "branch"
	case ClassNone:
		return "none"
	}
	return "?"
}

// ClassOf returns the functional-unit class of op.
func ClassOf(op Op) Class {
	switch op {
	case ADD, SUB, AND, OR, XOR, NOR, SLT, SLTU,
		ADDI, ANDI, ORI, XORI, SLTI, SLTIU, LUI, OUT:
		return ClassALU
	case SLL, SRL, SRA, SLLV, SRLV, SRAV:
		return ClassShift
	case MUL, DIV, REM, DIVU:
		return ClassMulDiv
	case LW, LB, LBU, LH, LHU, SW, SB, SH:
		return ClassMem
	case BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ, J, JAL, JR:
		return ClassBranch
	default:
		return ClassNone
	}
}

// Latency returns the number of cycles between issue of op and availability
// of its result to a dependent instruction. These follow the MIPS R2000:
// single-cycle ALU ops, loads with one delay slot (latency 2), and
// multi-cycle multiply/divide.
func Latency(op Op) int {
	switch ClassOf(op) {
	case ClassMem:
		if IsLoad(op) {
			return 2 // one load delay slot
		}
		return 1
	case ClassMulDiv:
		if op == MUL {
			return 12
		}
		return 35 // div/rem/divu
	default:
		return 1
	}
}

// IsLoad reports whether op reads memory into a register.
func IsLoad(op Op) bool {
	switch op {
	case LW, LB, LBU, LH, LHU:
		return true
	}
	return false
}

// IsStore reports whether op writes memory.
func IsStore(op Op) bool {
	switch op {
	case SW, SB, SH:
		return true
	}
	return false
}

// IsMem reports whether op accesses memory.
func IsMem(op Op) bool { return IsLoad(op) || IsStore(op) }

// IsCondBranch reports whether op is a conditional branch.
func IsCondBranch(op Op) bool {
	switch op {
	case BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ:
		return true
	}
	return false
}

// IsJump reports whether op is an unconditional control transfer.
func IsJump(op Op) bool {
	switch op {
	case J, JAL, JR:
		return true
	}
	return false
}

// IsControl reports whether op transfers control (branch, jump, or halt).
func IsControl(op Op) bool { return IsCondBranch(op) || IsJump(op) || op == HALT }

// CanExcept reports whether executing op may raise an exception: memory
// operations can fault on unmapped addresses and divides trap on a zero
// divisor. An instruction for which CanExcept is true is an *unsafe*
// speculative movement in the paper's taxonomy (Figure 1c) and must be
// boosted when moved above a control-dependent branch.
func CanExcept(op Op) bool {
	switch op {
	case LW, LB, LBU, LH, LHU, SW, SB, SH, DIV, REM, DIVU:
		return true
	}
	return false
}

// HasDelaySlot reports whether op has one architectural delay slot
// (branches and jumps, following the R2000; loads expose their delay as
// latency instead).
func HasDelaySlot(op Op) bool { return IsCondBranch(op) || IsJump(op) }
