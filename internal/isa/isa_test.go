package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{R0, "r0"}, {RA, "r31"}, {FirstVirtual, "v0"}, {FirstVirtual + 7, "v7"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegClassification(t *testing.T) {
	if !R0.IsArch() || R0.IsVirtual() {
		t.Error("R0 must be architectural")
	}
	if FirstVirtual.IsArch() || !FirstVirtual.IsVirtual() {
		t.Error("FirstVirtual must be virtual")
	}
	if Reg(31).IsVirtual() || !Reg(31).IsArch() {
		t.Error("r31 must be architectural")
	}
}

func TestClassOfCoversAllOps(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		c := ClassOf(op)
		switch op {
		case NOP, HALT:
			if c != ClassNone {
				t.Errorf("%s: class %s, want none", op, c)
			}
		case LW, LB, LBU, LH, LHU, SW, SB, SH:
			if c != ClassMem {
				t.Errorf("%s: class %s, want mem", op, c)
			}
		case BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ, J, JAL, JR:
			if c != ClassBranch {
				t.Errorf("%s: class %s, want branch", op, c)
			}
		case MUL, DIV, REM, DIVU:
			if c != ClassMulDiv {
				t.Errorf("%s: class %s, want muldiv", op, c)
			}
		case SLL, SRL, SRA, SLLV, SRLV, SRAV:
			if c != ClassShift {
				t.Errorf("%s: class %s, want shift", op, c)
			}
		default:
			if c != ClassALU {
				t.Errorf("%s: class %s, want alu", op, c)
			}
		}
	}
}

func TestLatencies(t *testing.T) {
	if Latency(LW) != 2 {
		t.Errorf("LW latency %d, want 2 (one delay slot)", Latency(LW))
	}
	if Latency(SW) != 1 {
		t.Errorf("SW latency %d, want 1", Latency(SW))
	}
	if Latency(ADD) != 1 {
		t.Errorf("ADD latency %d, want 1", Latency(ADD))
	}
	if Latency(MUL) <= 1 || Latency(DIV) <= Latency(MUL) {
		t.Error("multiply/divide latencies must be multi-cycle and div > mul")
	}
}

func TestPredicates(t *testing.T) {
	if !IsLoad(LBU) || IsLoad(SB) || !IsStore(SH) || IsStore(LW) {
		t.Error("load/store predicates wrong")
	}
	if !IsMem(LW) || !IsMem(SB) || IsMem(ADD) {
		t.Error("IsMem wrong")
	}
	if !IsCondBranch(BGEZ) || IsCondBranch(J) || !IsJump(JAL) || IsJump(BEQ) {
		t.Error("branch predicates wrong")
	}
	if !IsControl(HALT) || IsControl(OUT) {
		t.Error("IsControl wrong")
	}
	if !CanExcept(DIV) || !CanExcept(LW) || !CanExcept(SW) || CanExcept(ADD) || CanExcept(MUL) {
		t.Error("CanExcept wrong")
	}
	if !HasDelaySlot(BEQ) || !HasDelaySlot(J) || HasDelaySlot(HALT) || HasDelaySlot(LW) {
		t.Error("HasDelaySlot wrong")
	}
}

func TestDefsUses(t *testing.T) {
	cases := []struct {
		in   Inst
		defs []Reg
		uses []Reg
	}{
		{Inst{Op: ADD, Rd: 3, Rs: 1, Rt: 2}, []Reg{3}, []Reg{1, 2}},
		{Inst{Op: ADDI, Rd: 3, Rs: 1, Imm: 4}, []Reg{3}, []Reg{1}},
		{Inst{Op: LW, Rd: 5, Rs: 6, Imm: 8}, []Reg{5}, []Reg{6}},
		{Inst{Op: SW, Rt: 5, Rs: 6, Imm: 8}, nil, []Reg{6, 5}},
		{Inst{Op: BEQ, Rs: 1, Rt: 2}, nil, []Reg{1, 2}},
		{Inst{Op: BLTZ, Rs: 1}, nil, []Reg{1}},
		{Inst{Op: J}, nil, nil},
		{Inst{Op: JAL, Rd: RA}, []Reg{RA}, nil},
		{Inst{Op: JR, Rs: RA}, nil, []Reg{RA}},
		{Inst{Op: OUT, Rs: 9}, nil, []Reg{9}},
		{Inst{Op: NOP}, nil, nil},
		{Inst{Op: HALT}, nil, nil},
		{Inst{Op: LUI, Rd: 7, Imm: 1}, []Reg{7}, nil},
	}
	for _, c := range cases {
		gotD := c.in.Defs(nil)
		gotU := c.in.Uses(nil)
		if !regsEqual(gotD, c.defs) {
			t.Errorf("%s: defs %v, want %v", c.in.String(), gotD, c.defs)
		}
		if !regsEqual(gotU, c.uses) {
			t.Errorf("%s: uses %v, want %v", c.in.String(), gotU, c.uses)
		}
	}
}

func regsEqual(a, b []Reg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInstString(t *testing.T) {
	in := Inst{Op: LW, Rd: 4, Rs: 1, Imm: 4, Boost: 2}
	if got := in.String(); got != "lw r4.B2, 4(r1)" {
		t.Errorf("boosted load renders %q", got)
	}
	in2 := Inst{Op: BNE, Rs: 1, Rt: 2, Pred: true}
	if got := in2.String(); !strings.Contains(got, "taken") {
		t.Errorf("branch string %q should carry prediction", got)
	}
	in3 := Inst{Op: AND, Rd: 1, Rs: 2, Rt: 3, Boost: 2, Dirs: []BranchDir{DirR, DirL}}
	if got := in3.String(); !strings.Contains(got, ".BRL") {
		t.Errorf("explicit-direction label renders %q, want .BRL suffix", got)
	}
}

// Property: every op's defs and uses never include more than 2 registers
// and never panic, for all register assignments.
func TestDefsUsesTotal(t *testing.T) {
	f := func(op uint8, rd, rs, rt int16) bool {
		in := Inst{Op: Op(op % uint8(numOps)), Rd: Reg(rd), Rs: Reg(rs), Rt: Reg(rt)}
		d := in.Defs(nil)
		u := in.Uses(nil)
		return len(d) <= 1 && len(u) <= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: String never returns an empty string.
func TestStringTotal(t *testing.T) {
	f := func(op uint8, boost uint8) bool {
		in := Inst{Op: Op(op % uint8(numOps)), Rd: 1, Rs: 2, Rt: 3, Boost: int(boost % 8)}
		return in.String() != ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
