package isa

import (
	"fmt"
	"strings"
)

// BranchDir is a predicted direction for one conditional branch in a general
// (non-trace-based) boosting label, matching the paper's ".BRR"-style
// suffixes: R (predicted right/taken path in our rendering), L (left/not
// taken), or X (don't care — the branch is independent).
type BranchDir uint8

const (
	// DirR marks dependence on the branch going its predicted direction.
	DirR BranchDir = iota
	// DirL marks dependence on the branch going against its prediction.
	DirL
	// DirX marks independence from the branch (don't care).
	DirX
)

// String returns "R", "L" or "X".
func (d BranchDir) String() string {
	switch d {
	case DirR:
		return "R"
	case DirL:
		return "L"
	default:
		return "X"
	}
}

// Inst is one machine instruction. The zero value is a NOP.
//
// Register fields follow MIPS conventions loosely:
//
//	ALU/shift/muldiv: Rd = Rs op Rt (or op Imm for immediate forms)
//	loads:            Rd = Mem[Rs+Imm]
//	stores:           Mem[Rs+Imm] = Rt
//	branches:         compare Rs (and Rt for BEQ/BNE); Pred gives the
//	                  statically predicted outcome; targets live on the
//	                  enclosing basic block's CFG edges
//	JAL:              Sym names the callee; Rd receives the return address
//	JR:               jumps to the address in Rs (procedure return)
//	OUT:              appends the value of Rs to the program output
//
// Boost is the trace-based boosting level: 0 means sequential, n > 0 means
// the instruction's effects are speculative until the next n conditional
// branches each resolve in their predicted direction (paper §2.3). Dirs, if
// non-nil, carries the general per-branch labelling used by the ".BRR"
// examples; the trace-based schedulers leave it nil.
type Inst struct {
	Op   Op
	Rd   Reg
	Rs   Reg
	Rt   Reg
	Imm  int32
	Sym  string // callee name for JAL; optional annotation elsewhere
	Pred bool   // for conditional branches: statically predicted taken?

	Boost int
	Dirs  []BranchDir

	// ID is a stable identity assigned by the program builder; it survives
	// scheduling, duplication and boosting so that tests can trace an
	// instruction's journey. Duplicates share the original's ID.
	ID int
}

// Defs appends the registers written by the instruction to dst and returns
// it. R0 writes are included (the simulator discards them); callers that
// care filter them.
func (in *Inst) Defs(dst []Reg) []Reg {
	switch {
	case in.Op == NOP || in.Op == HALT || in.Op == OUT:
		return dst
	case IsStore(in.Op) || IsCondBranch(in.Op) || in.Op == J:
		return dst
	case in.Op == JAL:
		return append(dst, in.Rd)
	case in.Op == JR:
		return dst
	default:
		return append(dst, in.Rd)
	}
}

// Uses appends the registers read by the instruction to dst and returns it.
func (in *Inst) Uses(dst []Reg) []Reg {
	switch in.Op {
	case NOP, HALT, J, JAL, LUI:
		return dst
	case ADD, SUB, AND, OR, XOR, NOR, SLT, SLTU, SLLV, SRLV, SRAV,
		MUL, DIV, REM, DIVU:
		return append(dst, in.Rs, in.Rt)
	case ADDI, ANDI, ORI, XORI, SLTI, SLTIU, SLL, SRL, SRA:
		return append(dst, in.Rs)
	case LW, LB, LBU, LH, LHU:
		return append(dst, in.Rs)
	case SW, SB, SH:
		return append(dst, in.Rs, in.Rt)
	case BEQ, BNE:
		return append(dst, in.Rs, in.Rt)
	case BLEZ, BGTZ, BLTZ, BGEZ:
		return append(dst, in.Rs)
	case JR:
		return append(dst, in.Rs)
	case OUT:
		return append(dst, in.Rs)
	}
	return dst
}

// Dest returns the destination register and true if the instruction writes
// a register.
func (in *Inst) Dest() (Reg, bool) {
	d := in.Defs(nil)
	if len(d) == 0 {
		return 0, false
	}
	return d[0], true
}

// IsBoosted reports whether the instruction carries a boosting label.
func (in *Inst) IsBoosted() bool { return in.Boost > 0 }

// boostSuffix renders the boosting label: ".B2" for trace-based labels or
// ".BRL" style when explicit directions are present.
func (in *Inst) boostSuffix() string {
	if in.Boost <= 0 {
		return ""
	}
	if len(in.Dirs) > 0 {
		var b strings.Builder
		b.WriteString(".B")
		for _, d := range in.Dirs {
			b.WriteString(d.String())
		}
		return b.String()
	}
	return fmt.Sprintf(".B%d", in.Boost)
}

// String renders the instruction in assembler-like syntax, including any
// boosting suffix on the destination and the prediction bit on branches.
func (in *Inst) String() string {
	bs := in.boostSuffix()
	switch in.Op {
	case NOP, HALT:
		return in.Op.String() + bs
	case ADD, SUB, AND, OR, XOR, NOR, SLT, SLTU, SLLV, SRLV, SRAV, MUL, DIV, REM, DIVU:
		return fmt.Sprintf("%s %s%s, %s, %s", in.Op, in.Rd, bs, in.Rs, in.Rt)
	case ADDI, ANDI, ORI, XORI, SLTI, SLTIU, SLL, SRL, SRA:
		return fmt.Sprintf("%s %s%s, %s, %d", in.Op, in.Rd, bs, in.Rs, in.Imm)
	case LUI:
		return fmt.Sprintf("%s %s%s, %d", in.Op, in.Rd, bs, in.Imm)
	case LW, LB, LBU, LH, LHU:
		return fmt.Sprintf("%s %s%s, %d(%s)", in.Op, in.Rd, bs, in.Imm, in.Rs)
	case SW, SB, SH:
		return fmt.Sprintf("%s %s%s, %d(%s)", in.Op, in.Rt, bs, in.Imm, in.Rs)
	case BEQ, BNE:
		return fmt.Sprintf("%s%s %s, %s%s", in.Op, bs, in.Rs, in.Rt, predSuffix(in.Pred))
	case BLEZ, BGTZ, BLTZ, BGEZ:
		return fmt.Sprintf("%s%s %s%s", in.Op, bs, in.Rs, predSuffix(in.Pred))
	case J:
		return "j" + bs
	case JAL:
		return fmt.Sprintf("jal%s %s", bs, in.Sym)
	case JR:
		return fmt.Sprintf("jr%s %s", bs, in.Rs)
	case OUT:
		return fmt.Sprintf("out%s %s", bs, in.Rs)
	}
	return fmt.Sprintf("%s?", in.Op)
}

func predSuffix(taken bool) string {
	if taken {
		return " ;taken"
	}
	return " ;not-taken"
}
