package workloads

import (
	"testing"

	"boosting/internal/profile"
	"boosting/internal/sim"
)

func TestAllWorkloadsRun(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, in := range []Input{w.Train, w.Test} {
				pr := w.Build(in)
				res, err := sim.Run(pr, sim.RefConfig{})
				if err != nil {
					t.Fatalf("input %+v: %v", in, err)
				}
				if len(res.Out) == 0 {
					t.Fatalf("input %+v: no output", in)
				}
				if res.Insts < 10_000 {
					t.Errorf("input %+v: only %d instructions; workloads should be substantial", in, res.Insts)
				}
				if res.Insts > 20_000_000 {
					t.Errorf("input %+v: %d instructions; too slow for the experiment suite", in, res.Insts)
				}
				if res.Branches == 0 {
					t.Errorf("input %+v: no conditional branches executed", in)
				}
			}
		})
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, w := range All() {
		r1, err := sim.Run(w.BuildTest(), sim.RefConfig{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := sim.Run(w.BuildTest(), sim.RefConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Out) != len(r2.Out) || r1.MemHash != r2.MemHash {
			t.Errorf("%s: non-deterministic", w.Name)
		}
		for i := range r1.Out {
			if r1.Out[i] != r2.Out[i] {
				t.Errorf("%s: out[%d] differs across identical builds", w.Name, i)
			}
		}
	}
}

func TestTrainAndTestInputsDiffer(t *testing.T) {
	for _, w := range All() {
		tr, err := sim.Run(w.BuildTrain(), sim.RefConfig{})
		if err != nil {
			t.Fatal(err)
		}
		te, err := sim.Run(w.BuildTest(), sim.RefConfig{})
		if err != nil {
			t.Fatal(err)
		}
		same := len(tr.Out) == len(te.Out)
		if same {
			for i := range tr.Out {
				if tr.Out[i] != te.Out[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: train and test inputs produce identical output; they must differ", w.Name)
		}
	}
}

// TestProfileTransferAcrossInputs checks the paper's methodology is
// mechanically possible: identical structure, transferable predictions.
func TestProfileTransferAcrossInputs(t *testing.T) {
	for _, w := range All() {
		train := w.BuildTrain()
		test := w.BuildTest()
		if err := profile.Annotate(train); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if err := profile.Transfer(train, test); err != nil {
			t.Fatalf("%s: structure differs between inputs: %v", w.Name, err)
		}
		acc, err := profile.Accuracy(test)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		// All the paper's benchmarks predict above 70%; sanity-check ours.
		if acc < 0.60 {
			t.Errorf("%s: prediction accuracy %.3f unrealistically low", w.Name, acc)
		}
	}
}

// TestAccuracyOrdering: the *shape* of Table 1 — grep and nroff are the
// most predictable benchmarks, eqntott the least.
func TestAccuracyOrdering(t *testing.T) {
	acc := map[string]float64{}
	for _, w := range All() {
		train := w.BuildTrain()
		test := w.BuildTest()
		if err := profile.Annotate(train); err != nil {
			t.Fatal(err)
		}
		if err := profile.Transfer(train, test); err != nil {
			t.Fatal(err)
		}
		a, err := profile.Accuracy(test)
		if err != nil {
			t.Fatal(err)
		}
		acc[w.Name] = a
		t.Logf("%-9s accuracy %.3f", w.Name, a)
	}
	if acc["eqntott"] >= acc["grep"] {
		t.Errorf("eqntott (%.3f) should predict worse than grep (%.3f)", acc["eqntott"], acc["grep"])
	}
	if acc["eqntott"] >= acc["nroff"] {
		t.Errorf("eqntott (%.3f) should predict worse than nroff (%.3f)", acc["eqntott"], acc["nroff"])
	}
	if acc["grep"] < 0.9 {
		t.Errorf("grep accuracy %.3f; the scanning loop should be highly predictable", acc["grep"])
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("grep")
	if err != nil || w.Name != "grep" {
		t.Fatalf("ByName(grep) = %v, %v", w, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName must reject unknown names")
	}
}
