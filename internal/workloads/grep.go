package workloads

import (
	"boosting/internal/isa"
	"boosting/internal/prog"
)

// Grep returns the pattern-scanning workload. Like the UNIX grep the paper
// measures, the time goes into a per-character matcher loop: classify the
// character through a ctype-style table, case-fold if needed, and advance
// a KMP-style match state against the pattern. The loop body is a chain of
// highly biased guards over table loads — grep is the most predictable
// program in the paper's Table 1 (97.9%) — and those loads are exactly
// what a boosting scheduler hoists above the guards.
//
// Outputs: match count and a checksum of match positions.
func Grep() *Workload {
	return &Workload{
		Name:  "grep",
		Build: buildGrep,
		Train: Input{Seed: 11, Size: 9000},
		Test:  Input{Seed: 47, Size: 12000},
	}
}

var grepPattern = []byte("boost")

func buildGrep(in Input) *prog.Program {
	pr := prog.New()
	rng := newLCG(in.Seed)

	// Synthetic text: mostly lowercase letters, occasional uppercase
	// (case-folded by the matcher) and spaces; the pattern is planted at
	// random intervals.
	text := make([]byte, in.Size)
	for i := range text {
		switch {
		case rng.intn(28) < 2:
			text[i] = ' '
		case rng.intn(25) == 0:
			text[i] = byte('A' + rng.intn(26)) // rare uppercase
		default:
			text[i] = byte('a' + rng.intn(26))
		}
	}
	for i := 40; i+len(grepPattern) < len(text); i += 250 + rng.intn(250) {
		copy(text[i:], grepPattern)
	}
	textAddr := pr.Bytes(text)
	pr.Align(4)
	patAddr := pr.Bytes(grepPattern)
	pr.Align(4)
	// ctype table: bit 0 = uppercase letter.
	ctype := make([]byte, 256)
	for c := 'A'; c <= 'Z'; c++ {
		ctype[c] = 1
	}
	ctypeAddr := pr.Bytes(ctype)
	pr.Align(4)

	f := prog.NewBuilder(pr, "main")
	loop := f.Block("loop")
	classify := f.Block("classify")
	fold := f.Block("fold")
	step := f.Block("step")
	jzero := f.Block("jzero")
	reset := f.Block("reset")
	adv := f.Block("adv")
	found := f.Block("found")
	next := f.Block("next")
	done := f.Block("done")

	pos, size := f.Reg(), f.Reg()
	tbase, pbase, cbase := f.Reg(), f.Reg(), f.Reg()
	j, m := f.Reg(), f.Reg()
	count, chk := f.Reg(), f.Reg()
	f.La(tbase, textAddr)
	f.La(pbase, patAddr)
	f.La(cbase, ctypeAddr)
	f.Li(pos, 0)
	f.Li(size, int32(in.Size))
	f.Li(j, 0)
	f.Li(m, int32(len(grepPattern)))
	f.Li(count, 0)
	f.Li(chk, 0)
	f.Goto(loop)

	// loop: c = text[pos]
	f.Enter(loop)
	ta, ch := f.Reg(), f.Reg()
	f.ALU(isa.ADD, ta, tbase, pos)
	f.Load(isa.LBU, ch, ta, 0)
	f.Goto(classify)

	// classify: w = ctype[c]; if w != 0 goto fold (rare)
	f.Enter(classify)
	ca, w := f.Reg(), f.Reg()
	f.ALU(isa.ADD, ca, cbase, ch)
	f.Load(isa.LBU, w, ca, 0)
	f.Branch(isa.BNE, w, isa.R0, fold, step)

	// fold: c += 'a'-'A'
	f.Enter(fold)
	f.Imm(isa.ADDI, ch, ch, 'a'-'A')
	f.Goto(step)

	// step: pc = pat[j]; if c == pc goto adv (uncommon)
	f.Enter(step)
	pa, pc := f.Reg(), f.Reg()
	f.ALU(isa.ADD, pa, pbase, j)
	f.Load(isa.LBU, pc, pa, 0)
	f.Branch(isa.BEQ, ch, pc, adv, jzero)

	// jzero: mismatch — if j > 0 restart the prefix (uncommon)
	f.Enter(jzero)
	f.Branch(isa.BGTZ, j, isa.R0, reset, next)

	f.Enter(reset)
	f.Li(j, 0)
	f.Goto(next)

	// adv: j++; if j == m goto found
	f.Enter(adv)
	f.Imm(isa.ADDI, j, j, 1)
	f.Branch(isa.BEQ, j, m, found, next)

	// found: count++; chk ^= pos; j = 0
	f.Enter(found)
	f.Imm(isa.ADDI, count, count, 1)
	f.ALU(isa.XOR, chk, chk, pos)
	f.Li(j, 0)
	f.Goto(next)

	// next: pos++; if pos < size goto loop
	f.Enter(next)
	lc := f.Reg()
	f.Imm(isa.ADDI, pos, pos, 1)
	f.ALU(isa.SLT, lc, pos, size)
	f.Branch(isa.BGTZ, lc, isa.R0, loop, done)

	f.Enter(done)
	f.Out(count)
	f.Out(chk)
	f.Halt()
	f.Finish()
	return pr
}
