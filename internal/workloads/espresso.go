package workloads

import (
	"boosting/internal/isa"
	"boosting/internal/prog"
)

// Espresso returns the two-level logic-minimization workload. SPEC
// espresso manipulates cubes (product terms) represented as bit vectors;
// its hot loops are macro-expanded per-word set operations — AND/compare
// chains with data-dependent early exits (the paper reports 75.7%
// prediction accuracy for espresso).
//
// The kernel performs a containment census: for every ordered pair of
// cubes it tests whether cube j is contained in cube i (i AND j == j),
// with the word-by-word test fully unrolled the way espresso's set.h
// macros unroll set operations. Word densities are tuned so each guard
// passes roughly three times in four, so the unrolled chain is the hot
// path and its loads are prime boosting candidates. It outputs the census
// and a signature.
func Espresso() *Workload {
	return &Workload{
		Name:  "espresso",
		Build: buildEspresso,
		Train: Input{Seed: 31, Size: 120},
		Test:  Input{Seed: 131, Size: 160},
	}
}

const cubeWords = 4

func buildEspresso(in Input) *prog.Program {
	pr := prog.New()
	rng := newLCG(in.Seed)
	n := in.Size

	// Container cubes (even i) are dense — about one zero bit per word;
	// candidate cubes (odd i) carry ~8 one-bits per word. A word guard
	// (i AND j == j) then passes with probability ≈ (1-8/32)^1 ≈ 0.75.
	var cubesAddr uint32
	for i := 0; i < n; i++ {
		for w := 0; w < cubeWords; w++ {
			var v uint32
			if i%2 == 0 {
				v = ^uint32(0)
				zeros := rng.intn(3) // 0..2 zero bits
				for z := 0; z < zeros; z++ {
					v &^= 1 << uint(rng.intn(32))
				}
			} else {
				for b := 0; b < 8+rng.intn(3); b++ {
					v |= 1 << uint(rng.intn(32))
				}
			}
			a := pr.Word(int32(v))
			if i == 0 && w == 0 {
				cubesAddr = a
			}
		}
	}

	f := prog.NewBuilder(pr, "main")
	iloop := f.Block("iloop")
	jloop := f.Block("jloop")
	jbody := f.Block("jbody")
	w0 := f.Block("w0")
	contained := f.Block("contained")
	jnext := f.Block("jnext")
	inext := f.Block("inext")
	done := f.Block("done")

	cubes := f.Reg()
	i, j, nn := f.Reg(), f.Reg(), f.Reg()
	total, sig := f.Reg(), f.Reg()
	f.La(cubes, cubesAddr)
	f.Li(i, 0)
	f.Li(nn, int32(n))
	f.Li(total, 0)
	f.Li(sig, 0)
	f.Goto(iloop)

	// iloop: if i >= n goto done; j = 0
	f.Enter(iloop)
	c := f.Reg()
	f.ALU(isa.SLT, c, i, nn)
	f.Li(j, 0)
	f.Branch(isa.BEQ, c, isa.R0, done, jloop)

	// jloop: if j >= n goto inext; if j == i goto jnext
	f.Enter(jloop)
	cj := f.Reg()
	f.ALU(isa.SLT, cj, j, nn)
	f.Branch(isa.BEQ, cj, isa.R0, inext, jbody)
	f.Enter(jbody)
	ia, ja := f.Reg(), f.Reg()
	f.Imm(isa.SLL, ia, i, 4) // cubeWords*4 bytes per cube
	f.ALU(isa.ADD, ia, cubes, ia)
	f.Imm(isa.SLL, ja, j, 4)
	f.ALU(isa.ADD, ja, cubes, ja)
	f.Branch(isa.BEQ, i, j, jnext, w0)

	// The unrolled word-guard chain: stage w fails out to jnext when
	// cube_j[w] is not contained in cube_i[w].
	stages := []*prog.Block{w0}
	for w := 1; w < cubeWords; w++ {
		stages = append(stages, f.Block("w"+string(rune('0'+w))))
	}
	for w := 0; w < cubeWords; w++ {
		f.Enter(stages[w])
		vi, vj, anded := f.Reg(), f.Reg(), f.Reg()
		f.Load(isa.LW, vi, ia, int32(4*w))
		f.Load(isa.LW, vj, ja, int32(4*w))
		f.ALU(isa.AND, anded, vi, vj)
		succ := contained
		if w < cubeWords-1 {
			succ = stages[w+1]
		}
		f.Branch(isa.BNE, anded, vj, jnext, succ)
	}

	// contained: total++; sig = sig*2 ^ (i ^ j)
	f.Enter(contained)
	x := f.Reg()
	f.Imm(isa.ADDI, total, total, 1)
	f.ALU(isa.XOR, x, i, j)
	f.Imm(isa.SLL, sig, sig, 1)
	f.ALU(isa.XOR, sig, sig, x)
	f.Goto(jnext)

	// jnext: j++
	f.Enter(jnext)
	f.Imm(isa.ADDI, j, j, 1)
	f.Jump(jloop)

	// inext: i++
	f.Enter(inext)
	f.Imm(isa.ADDI, i, i, 1)
	f.Jump(iloop)

	f.Enter(done)
	f.Out(total)
	f.Out(sig)
	f.Halt()
	f.Finish()
	return pr
}
