package workloads

import (
	"boosting/internal/isa"
	"boosting/internal/prog"
)

// Compress returns the LZW-style compression workload. Like the UNIX
// compress utility, its hot loop hashes a (previous-code, next-byte) pair
// into an open-addressed table, probing until it finds the pair or a free
// slot — a mix of data-dependent hit/miss branches and hash-table memory
// traffic (the paper measures 82.7% prediction accuracy for compress).
//
// The kernel compresses a synthetic byte stream and outputs the number of
// codes emitted and a rolling checksum of the code stream.
func Compress() *Workload {
	return &Workload{
		Name:  "compress",
		Build: buildCompress,
		Train: Input{Seed: 5, Size: 6000},
		Test:  Input{Seed: 93, Size: 9000},
	}
}

const (
	czTableSize = 1 << 12 // hash table entries (power of two)
	czMaxCode   = 4096
)

func buildCompress(in Input) *prog.Program {
	pr := prog.New()
	rng := newLCG(in.Seed)

	// Input stream: skewed byte distribution with repeated phrases, so
	// the dictionary actually gets hits.
	data := make([]byte, in.Size)
	phrase := []byte("the boosted superscalar ")
	for i := 0; i < len(data); {
		if rng.intn(4) == 0 && i+len(phrase) < len(data) {
			copy(data[i:], phrase)
			i += len(phrase)
		} else {
			data[i] = byte('a' + rng.intn(8))
			i++
		}
	}
	dataAddr := pr.Bytes(data)
	pr.Align(4)
	// Hash table: keys and codes, zero-initialized (0 = empty; keys are
	// biased by +1 so key 0 never collides with "empty").
	keysAddr := pr.Reserve(czTableSize * 4)
	codesAddr := pr.Reserve(czTableSize * 4)

	f := prog.NewBuilder(pr, "main")
	loop := f.Block("loop")
	probe := f.Block("probe")
	slotCheck := f.Block("slotCheck")
	hit := f.Block("hit")
	miss := f.Block("miss")
	reprobe := f.Block("reprobe")
	emit := f.Block("emit")
	done := f.Block("done")

	pos, size := f.Reg(), f.Reg()
	base, keys, codes := f.Reg(), f.Reg(), f.Reg()
	prev := f.Reg()     // previous code
	nextCode := f.Reg() // next code to assign
	emitted := f.Reg()  // codes emitted
	chk := f.Reg()      // checksum
	mask := f.Reg()

	f.La(base, dataAddr)
	f.La(keys, keysAddr)
	f.La(codes, codesAddr)
	f.Li(pos, 0)
	f.Li(size, int32(in.Size))
	f.Li(prev, 0)
	f.Li(nextCode, 256)
	f.Li(emitted, 0)
	f.Li(chk, 0)
	f.Li(mask, czTableSize-1)
	f.Goto(loop)

	// loop: if pos >= size goto done; ch = data[pos]; key = (prev<<8|ch)+1
	f.Enter(loop)
	cmp, ch, key, h := f.Reg(), f.Reg(), f.Reg(), f.Reg()
	addr := f.Reg()
	f.ALU(isa.SLT, cmp, pos, size)
	f.Branch(isa.BEQ, cmp, isa.R0, done, probe)

	f.Enter(probe)
	f.ALU(isa.ADD, addr, base, pos)
	f.Load(isa.LBU, ch, addr, 0)
	f.Imm(isa.SLL, key, prev, 8)
	f.ALU(isa.OR, key, key, ch)
	f.Imm(isa.ADDI, key, key, 1)
	// h = (key*31) & mask
	t := f.Reg()
	f.Imm(isa.SLL, t, key, 5)
	f.ALU(isa.SUB, t, t, key)
	f.ALU(isa.AND, h, t, mask)
	f.Goto(slotCheck)

	// slotCheck: k = keys[h]; if k == key goto hit; if k == 0 goto miss;
	// else reprobe
	f.Enter(slotCheck)
	slotK, slotA := f.Reg(), f.Reg()
	f.Imm(isa.SLL, slotA, h, 2)
	f.ALU(isa.ADD, slotA, keys, slotA)
	f.Load(isa.LW, slotK, slotA, 0)
	inner := f.Block("probeHitCheck")
	f.Branch(isa.BEQ, slotK, key, hit, inner)
	f.Enter(inner)
	f.Branch(isa.BEQ, slotK, isa.R0, miss, reprobe)

	// reprobe: h = (h+1) & mask
	f.Enter(reprobe)
	f.Imm(isa.ADDI, h, h, 1)
	f.ALU(isa.AND, h, h, mask)
	f.Jump(slotCheck)

	// hit: prev = codes[h]; pos++
	f.Enter(hit)
	ca := f.Reg()
	f.Imm(isa.SLL, ca, h, 2)
	f.ALU(isa.ADD, ca, codes, ca)
	f.Load(isa.LW, prev, ca, 0)
	f.Imm(isa.ADDI, pos, pos, 1)
	f.Jump(loop)

	// miss: keys[h] = key; codes[h] = nextCode++ (if room); emit prev
	f.Enter(miss)
	ca2 := f.Reg()
	full := f.Reg()
	f.Store(isa.SW, key, slotA, 0)
	f.Imm(isa.SLL, ca2, h, 2)
	f.ALU(isa.ADD, ca2, codes, ca2)
	f.Store(isa.SW, nextCode, ca2, 0)
	f.Imm(isa.SLTI, full, nextCode, czMaxCode)
	nc := f.Block("bumpCode")
	f.Branch(isa.BEQ, full, isa.R0, emit, nc)
	f.Enter(nc)
	f.Imm(isa.ADDI, nextCode, nextCode, 1)
	f.Goto(emit)

	// emit: chk = chk*33 + prev (mod 2^32); emitted++; prev = ch; pos++
	f.Enter(emit)
	c33 := f.Reg()
	f.Imm(isa.SLL, c33, chk, 5)
	f.ALU(isa.ADD, chk, c33, chk)
	f.ALU(isa.ADD, chk, chk, prev)
	f.Imm(isa.ADDI, emitted, emitted, 1)
	f.Move(prev, ch)
	f.Imm(isa.ADDI, pos, pos, 1)
	f.Jump(loop)

	f.Enter(done)
	f.Out(emitted)
	f.Out(chk)
	f.Out(nextCode)
	f.Halt()
	f.Finish()
	return pr
}
