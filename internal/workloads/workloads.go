// Package workloads provides the benchmark programs of the reproduction.
//
// The paper evaluates seven non-numerical C programs — three SPEC
// benchmarks (eqntott, espresso, xlisp) and four UNIX utilities (awk,
// compress, grep, nroff) — compiled by the SUIF compiler and the MIPS
// toolchain. Neither those binaries nor their inputs are available here,
// so each workload is a hand-written IR kernel that reproduces the same
// *kind* of computation and, crucially, the same kind of control and
// memory behavior that drives the paper's experiments: basic blocks of a
// few instructions, profile-predictable branches spanning a wide accuracy
// range, and pointer/array traffic. Every workload has a training input
// and a separate test input (paper §4.3: "This branch profile is generated
// from a different input set than is used to determine performance").
//
// What each kernel computes:
//
//	awk      – field splitting and associative accumulation over text
//	compress – LZW-style hash-table compression of a byte stream
//	eqntott  – quicksort of truth-table rows with multi-key comparison
//	espresso – cube containment/covering over bit-vector logic terms
//	grep     – substring search over text
//	nroff    – greedy line filling/justification of word streams
//	xlisp    – evaluation of tagged expression trees (interpreter)
package workloads

import (
	"fmt"

	"boosting/internal/prog"
)

// Input selects a dataset for a workload build.
type Input struct {
	// Seed drives deterministic synthetic data generation.
	Seed int64
	// Size scales the dataset (workload-specific units).
	Size int
}

// Workload couples a named builder with its train and test inputs.
type Workload struct {
	Name string
	// Build constructs a fresh program for the input. Builds with
	// different inputs have identical code structure (only the data
	// segment differs), so profiles transfer between them.
	Build func(in Input) *prog.Program
	Train Input
	Test  Input
}

// BuildTrain builds the training-input variant.
func (w *Workload) BuildTrain() *prog.Program { return w.Build(w.Train) }

// BuildTest builds the test-input variant.
func (w *Workload) BuildTest() *prog.Program { return w.Build(w.Test) }

// All returns the benchmark set in the paper's table order.
func All() []*Workload {
	return []*Workload{
		AWK(), Compress(), Eqntott(), Espresso(), Grep(), Nroff(), XLisp(),
	}
}

// ByName returns the named workload.
func ByName(name string) (*Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// lcg is a deterministic 64-bit linear congruential generator used by all
// data-set builders (host side only; the generated data lands in the
// program's data segment).
type lcg struct{ s uint64 }

func newLCG(seed int64) *lcg { return &lcg{s: uint64(seed)*2862933555777941757 + 3037000493} }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 16
}

// intn returns a value in [0, n).
func (l *lcg) intn(n int) int { return int(l.next() % uint64(n)) }
