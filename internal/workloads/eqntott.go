package workloads

import (
	"boosting/internal/isa"
	"boosting/internal/prog"
)

// Eqntott returns the truth-table sorting workload. SPEC eqntott spends
// most of its time in cmppt(), a word-by-word lexicographic comparison of
// truth-table rows called from qsort; its data-dependent comparison
// branches make eqntott the least predictable program in the paper's
// Table 1 (72.1%).
//
// The kernel quicksorts an array of four-word rows with an explicit stack
// (Lomuto partitioning). The comparison is the unrolled cmppt chain: the
// leading words are drawn from a tiny alphabet so ties are common and the
// chain regularly runs several words deep — each stage's loads are
// boosting candidates above the previous stage's branches.
func Eqntott() *Workload {
	return &Workload{
		Name:  "eqntott",
		Build: buildEqntott,
		Train: Input{Seed: 21, Size: 420},
		Test:  Input{Seed: 77, Size: 600},
	}
}

// eqRowWords is the row size in words (like a truth table over ~64
// bit-pair inputs).
const eqRowWords = 4

func buildEqntott(in Input) *prog.Program {
	pr := prog.New()
	rng := newLCG(in.Seed)
	n := in.Size

	// Rows: leading words from a tiny alphabet (many ties), final word
	// nearly unique.
	var rowsAddr uint32
	for i := 0; i < n; i++ {
		for w := 0; w < eqRowWords; w++ {
			var v int32
			if w < eqRowWords-1 {
				v = int32(rng.intn(3))
			} else {
				v = int32(rng.next() & 0x7FFFFFFF)
			}
			a := pr.Word(v)
			if i == 0 && w == 0 {
				rowsAddr = a
			}
		}
	}
	stackAddr := pr.Reserve((n + 16) * 8)

	f := prog.NewBuilder(pr, "main")
	pop := f.Block("pop")
	partition := f.Block("partition")
	pinit := f.Block("pinit")
	ploop := f.Block("ploop")
	pbody := f.Block("pbody")
	doSwap := f.Block("doSwap")
	pnext := f.Block("pnext")
	pdone := f.Block("pdone")
	push := f.Block("push")
	pushL := f.Block("pushL")
	skipRight := f.Block("skipRight")
	pushR := f.Block("pushR")
	sum := f.Block("sum")
	sloop := f.Block("sloop")
	sbody := f.Block("sbody")
	done := f.Block("done")

	rows, stack, sp := f.Reg(), f.Reg(), f.Reg()
	lo, hi := f.Reg(), f.Reg()
	f.La(rows, rowsAddr)
	f.La(stack, stackAddr)
	f.Li(sp, 8)
	z := f.Reg()
	f.Li(z, 0)
	f.Store(isa.SW, z, stack, 0)
	f.Li(z, int32(n-1))
	f.Store(isa.SW, z, stack, 4)
	f.Goto(pop)

	// pop: if sp == 0 goto sum; sp -= 8; (lo, hi) = stack[sp]
	f.Enter(pop)
	sa := f.Reg()
	f.Branch(isa.BLEZ, sp, isa.R0, sum, partition)
	f.Enter(partition)
	c := f.Reg()
	f.Imm(isa.ADDI, sp, sp, -8)
	f.ALU(isa.ADD, sa, stack, sp)
	f.Load(isa.LW, lo, sa, 0)
	f.Load(isa.LW, hi, sa, 4)
	f.ALU(isa.SLT, c, lo, hi)
	f.Branch(isa.BEQ, c, isa.R0, pop, pinit)

	// pinit: load the pivot row (rows[hi]) into registers; i = lo-1; j = lo
	f.Enter(pinit)
	pa := f.Reg()
	piv := make([]isa.Reg, eqRowWords)
	i, j := f.Reg(), f.Reg()
	f.Imm(isa.SLL, pa, hi, 4)
	f.ALU(isa.ADD, pa, rows, pa)
	for w := 0; w < eqRowWords; w++ {
		piv[w] = f.Reg()
		f.Load(isa.LW, piv[w], pa, int32(4*w))
	}
	f.Imm(isa.ADDI, i, lo, -1)
	f.Move(j, lo)
	f.Goto(ploop)

	// ploop: if j >= hi goto pdone
	f.Enter(ploop)
	cl := f.Reg()
	f.ALU(isa.SLT, cl, j, hi)
	f.Branch(isa.BEQ, cl, isa.R0, pdone, pbody)

	// pbody computes ja = &rows[j]; the unrolled cmppt chain follows:
	// per word: less → doSwap, greater → pnext, equal → next word. A row
	// equal to the pivot on every word counts as "less or equal" and is
	// swapped into the left side.
	f.Enter(pbody)
	ja := f.Reg()
	f.Imm(isa.SLL, ja, j, 4)
	f.ALU(isa.ADD, ja, rows, ja)
	stage0 := f.Block("cmp0")
	f.Goto(stage0)
	stages := []*prog.Block{stage0}
	for w := 1; w < eqRowWords; w++ {
		stages = append(stages, f.Block("cmp"+string(rune('0'+w))))
	}
	for w := 0; w < eqRowWords; w++ {
		f.Enter(stages[w])
		kv, lt := f.Reg(), f.Reg()
		f.Load(isa.LW, kv, ja, int32(4*w))
		f.ALU(isa.SLT, lt, kv, piv[w])
		ge := f.Block("ge" + string(rune('0'+w)))
		f.Branch(isa.BGTZ, lt, isa.R0, doSwap, ge)
		f.Enter(ge)
		gt := f.Reg()
		f.ALU(isa.SLT, gt, piv[w], kv)
		if w < eqRowWords-1 {
			f.Branch(isa.BGTZ, gt, isa.R0, pnext, stages[w+1])
		} else {
			f.Branch(isa.BGTZ, gt, isa.R0, pnext, doSwap)
		}
	}

	// doSwap: i++; swap the four-word rows rows[i] and rows[j]
	f.Enter(doSwap)
	ia := f.Reg()
	f.Imm(isa.ADDI, i, i, 1)
	f.Imm(isa.SLL, ia, i, 4)
	f.ALU(isa.ADD, ia, rows, ia)
	for w := 0; w < eqRowWords; w++ {
		t1, t2 := f.Reg(), f.Reg()
		f.Load(isa.LW, t1, ia, int32(4*w))
		f.Load(isa.LW, t2, ja, int32(4*w))
		f.Store(isa.SW, t2, ia, int32(4*w))
		f.Store(isa.SW, t1, ja, int32(4*w))
	}
	f.Goto(pnext)

	// pnext: j++
	f.Enter(pnext)
	f.Imm(isa.ADDI, j, j, 1)
	f.Jump(ploop)

	// pdone: swap pivot into place at i+1
	f.Enter(pdone)
	p1 := f.Reg()
	f.Imm(isa.ADDI, i, i, 1)
	f.Imm(isa.SLL, p1, i, 4)
	f.ALU(isa.ADD, p1, rows, p1)
	for w := 0; w < eqRowWords; w++ {
		q1, q2 := f.Reg(), f.Reg()
		f.Load(isa.LW, q1, p1, int32(4*w))
		f.Load(isa.LW, q2, pa, int32(4*w))
		f.Store(isa.SW, q2, p1, int32(4*w))
		f.Store(isa.SW, q1, pa, int32(4*w))
	}
	f.Goto(push)

	// push: push (lo, i-1) and (i+1, hi) when non-trivial
	f.Enter(push)
	e1, sb := f.Reg(), f.Reg()
	f.Imm(isa.ADDI, e1, i, -1)
	f.ALU(isa.SLT, c, lo, e1)
	f.Branch(isa.BEQ, c, isa.R0, skipRight, pushL)
	f.Enter(pushL)
	f.ALU(isa.ADD, sb, stack, sp)
	f.Store(isa.SW, lo, sb, 0)
	f.Store(isa.SW, e1, sb, 4)
	f.Imm(isa.ADDI, sp, sp, 8)
	f.Goto(skipRight)

	f.Enter(skipRight)
	e2 := f.Reg()
	f.Imm(isa.ADDI, e2, i, 1)
	f.ALU(isa.SLT, c, e2, hi)
	f.Branch(isa.BEQ, c, isa.R0, pop, pushR)
	f.Enter(pushR)
	f.ALU(isa.ADD, sb, stack, sp)
	f.Store(isa.SW, e2, sb, 0)
	f.Store(isa.SW, hi, sb, 4)
	f.Imm(isa.ADDI, sp, sp, 8)
	f.Jump(pop)

	// sum: verify order with a checksum walk over the leading words.
	f.Enter(sum)
	k, acc, tot := f.Reg(), f.Reg(), f.Reg()
	f.Li(k, 0)
	f.Li(acc, 0)
	f.Li(tot, 0)
	f.Goto(sloop)
	f.Enter(sloop)
	cs := f.Reg()
	f.Imm(isa.SLTI, cs, k, int32(n))
	f.Branch(isa.BEQ, cs, isa.R0, done, sbody)
	f.Enter(sbody)
	ca2, va, vb := f.Reg(), f.Reg(), f.Reg()
	f.Imm(isa.SLL, ca2, k, 4)
	f.ALU(isa.ADD, ca2, rows, ca2)
	f.Load(isa.LW, va, ca2, 0)
	f.Load(isa.LW, vb, ca2, 12)
	f.Imm(isa.SLL, acc, acc, 1)
	f.ALU(isa.ADD, acc, acc, va)
	f.ALU(isa.XOR, tot, tot, vb)
	f.Imm(isa.ADDI, k, k, 1)
	f.Jump(sloop)

	f.Enter(done)
	f.Out(acc)
	f.Out(tot)
	f.Halt()
	f.Finish()
	return pr
}
