package workloads

import (
	"boosting/internal/isa"
	"boosting/internal/prog"
)

// Nroff returns the text-formatting workload. Like nroff filling and
// justifying output lines, it measures words and greedily packs them into
// 65-column lines; the character-scanning loops are extremely biased
// (the paper reports 96.7% accuracy for nroff).
//
// It outputs the number of lines produced, the total padding inserted and
// a checksum of line lengths.
func Nroff() *Workload {
	return &Workload{
		Name:  "nroff",
		Build: buildNroff,
		Train: Input{Seed: 13, Size: 9000},
		Test:  Input{Seed: 101, Size: 13000},
	}
}

const nroffWidth = 65 * 9 // line width in machine units (~65 glyphs)

func buildNroff(in Input) *prog.Program {
	pr := prog.New()
	rng := newLCG(in.Seed)

	// Text: words of 2..16 letters separated by single spaces, NUL
	// terminated. A rare 'q' plays the role of an nroff control
	// character that needs special handling.
	var text []byte
	for len(text) < in.Size {
		wl := 2 + rng.intn(15)
		for k := 0; k < wl; k++ {
			text = append(text, byte('a'+rng.intn(16))) // a..p, no q
		}
		if rng.intn(40) == 0 {
			text = append(text, 'q')
		}
		text = append(text, ' ')
	}
	text = append(text, 0)
	textAddr := pr.Bytes(text)
	pr.Align(4)
	// Per-character width table (nroff uses device width tables to fill
	// lines in machine units; widths vary per glyph).
	widths := make([]byte, 256)
	for c := 0; c < 256; c++ {
		widths[c] = byte(8 + (c*7)%5)
	}
	widthAddr := pr.Bytes(widths)
	pr.Align(4)

	f := prog.NewBuilder(pr, "main")
	word := f.Block("word")
	measure := f.Block("measure")
	mbody := f.Block("mbody")
	place := f.Block("place")
	flush := f.Block("flush")
	append_ := f.Block("append")
	skipSpace := f.Block("skipSpace")
	done := f.Block("done")

	pos, base, wbase := f.Reg(), f.Reg(), f.Reg()
	lineLen, lines, pad, chk := f.Reg(), f.Reg(), f.Reg(), f.Reg()
	f.La(base, textAddr)
	f.La(wbase, widthAddr)
	f.Li(pos, 0)
	f.Li(lineLen, 0)
	f.Li(lines, 0)
	f.Li(pad, 0)
	f.Li(chk, 0)
	f.Goto(word)

	// word: ch = text[pos]; if ch == 0 goto done; wl = 0; wwidth = 0
	f.Enter(word)
	a, ch, wl, wwidth := f.Reg(), f.Reg(), f.Reg(), f.Reg()
	f.ALU(isa.ADD, a, base, pos)
	f.Load(isa.LBU, ch, a, 0)
	f.Li(wl, 0)
	f.Li(wwidth, 0)
	f.Branch(isa.BEQ, ch, isa.R0, done, measure)

	// measure: scan to the next space or NUL, counting letters.
	f.Enter(measure)
	ma, mc := f.Reg(), f.Reg()
	f.ALU(isa.ADD, ma, base, pos)
	f.ALU(isa.ADD, ma, ma, wl)
	f.Load(isa.LBU, mc, ma, 0)
	spc := f.Reg()
	f.Imm(isa.SLTI, spc, mc, '!') // space or NUL (anything < '!')
	f.Branch(isa.BGTZ, spc, isa.R0, place, mbody)
	// mbody: accumulate the glyph width from the device table, then the
	// rare control-character check ('q' plays nroff's escape character).
	f.Enter(mbody)
	esc, wa, wv := f.Reg(), f.Reg(), f.Reg()
	mplain := f.Block("mplain")
	mesc := f.Block("mesc")
	f.ALU(isa.ADD, wa, wbase, mc)
	f.Load(isa.LBU, wv, wa, 0)
	f.ALU(isa.ADD, wwidth, wwidth, wv)
	f.Imm(isa.XORI, esc, mc, 'q')
	f.Branch(isa.BEQ, esc, isa.R0, mesc, mplain)
	f.Enter(mesc)
	f.ALU(isa.XOR, chk, chk, wl)
	f.Goto(mplain)
	f.Enter(mplain)
	f.Imm(isa.ADDI, wl, wl, 1)
	f.Jump(measure)

	// place: if lineLen + wordWidth + spaceWidth > width: flush first.
	f.Enter(place)
	need, over := f.Reg(), f.Reg()
	f.ALU(isa.ADD, need, lineLen, wwidth)
	f.Imm(isa.ADDI, need, need, 8)
	f.Imm(isa.SLTI, over, need, nroffWidth+1)
	f.Branch(isa.BEQ, over, isa.R0, flush, append_)

	// flush: justify — pad = width - lineLen; lines++; chk ^= lineLen.
	f.Enter(flush)
	gap := f.Reg()
	f.Li(gap, nroffWidth)
	f.ALU(isa.SUB, gap, gap, lineLen)
	f.ALU(isa.ADD, pad, pad, gap)
	f.Imm(isa.ADDI, lines, lines, 1)
	f.ALU(isa.XOR, chk, chk, lineLen)
	f.Li(lineLen, 0)
	f.Goto(append_)

	// append: lineLen += wordWidth + spaceWidth; pos += wl
	f.Enter(append_)
	f.ALU(isa.ADD, lineLen, lineLen, wwidth)
	f.Imm(isa.ADDI, lineLen, lineLen, 8)
	f.ALU(isa.ADD, pos, pos, wl)
	f.Goto(skipSpace)

	// skipSpace: pos++ past the separator
	f.Enter(skipSpace)
	f.Imm(isa.ADDI, pos, pos, 1)
	f.Jump(word)

	f.Enter(done)
	f.Out(lines)
	f.Out(pad)
	f.Out(chk)
	f.Halt()
	f.Finish()
	return pr
}
