package workloads

import (
	"boosting/internal/isa"
	"boosting/internal/prog"
)

// AWK returns the field-splitting/aggregation workload. Like awk running a
// typical "sum field 2 by field 1" program, it scans text lines, splits
// fields on whitespace, converts digit strings to integers, and
// accumulates per-key totals through a hashing helper procedure (awk's
// interpreter is call-heavy; the paper reports 82.0% accuracy).
//
// Input lines look like "<key-letter> <digits>\n".
func AWK() *Workload {
	return &Workload{
		Name:  "awk",
		Build: buildAWK,
		Train: Input{Seed: 3, Size: 700},
		Test:  Input{Seed: 59, Size: 1000},
	}
}

const awkBuckets = 8

func buildAWK(in Input) *prog.Program {
	pr := prog.New()
	rng := newLCG(in.Seed)

	// Text: Size lines of "k nnn\n".
	var text []byte
	for i := 0; i < in.Size; i++ {
		text = append(text, byte('a'+rng.intn(awkBuckets)))
		text = append(text, ' ')
		v := 1 + rng.intn(997)
		var digits []byte
		for v > 0 {
			digits = append([]byte{byte('0' + v%10)}, digits...)
			v /= 10
		}
		text = append(text, digits...)
		text = append(text, '\n')
	}
	text = append(text, 0) // NUL terminator
	textAddr := pr.Bytes(text)
	pr.Align(4)
	tableAddr := pr.Reserve(awkBuckets * 4)
	// ctype table, as awk's lexer uses: bit 0 = digit.
	ctype := make([]byte, 256)
	for c := '0'; c <= '9'; c++ {
		ctype[c] = 1
	}
	ctypeAddr := pr.Bytes(ctype)
	pr.Align(4)

	// hash(A0) = (A0*7 + 3) mod awkBuckets — the call-heavy helper.
	h := prog.NewBuilder(pr, "hash")
	t := h.Reg()
	h.Imm(isa.SLL, t, isa.A0, 3)
	h.ALU(isa.SUB, t, t, isa.A0)
	h.Imm(isa.ADDI, t, t, 3)
	h.Imm(isa.ANDI, isa.RV, t, awkBuckets-1)
	h.Ret()
	h.Finish()

	f := prog.NewBuilder(pr, "main")
	line := f.Block("line")
	keyed := f.Block("keyed")
	digits := f.Block("digits")
	dbody := f.Block("dbody")
	store := f.Block("store")
	skipNL := f.Block("skipNL")
	report := f.Block("report")
	rloop := f.Block("rloop")
	done := f.Block("done")

	pos, base, table, cbase := f.Reg(), f.Reg(), f.Reg(), f.Reg()
	f.La(base, textAddr)
	f.La(table, tableAddr)
	f.La(cbase, ctypeAddr)
	f.Li(pos, 0)
	f.Goto(line)

	// line: ch = text[pos]; if ch == 0 goto report
	f.Enter(line)
	a, ch := f.Reg(), f.Reg()
	f.ALU(isa.ADD, a, base, pos)
	f.Load(isa.LBU, ch, a, 0)
	f.Branch(isa.BEQ, ch, isa.R0, report, keyed)

	// keyed: bucket = hash(ch - 'a'); skip "k "
	f.Enter(keyed)
	f.Imm(isa.ADDI, isa.A0, ch, -'a')
	f.Call("hash")
	// After the call: RV holds the bucket. pos += 2 (key char + space).
	bslot := f.Reg()
	f.Imm(isa.SLL, bslot, isa.RV, 2)
	f.ALU(isa.ADD, bslot, table, bslot)
	f.Imm(isa.ADDI, pos, pos, 2)
	val := f.Reg()
	f.Li(val, 0)
	f.Goto(digits)

	// digits: ch = text[pos]; if !isdigit(ch) (ctype lookup) goto store
	f.Enter(digits)
	da, dch, cta, ctv := f.Reg(), f.Reg(), f.Reg(), f.Reg()
	f.ALU(isa.ADD, da, base, pos)
	f.Load(isa.LBU, dch, da, 0)
	f.ALU(isa.ADD, cta, cbase, dch)
	f.Load(isa.LBU, ctv, cta, 0)
	f.Branch(isa.BEQ, ctv, isa.R0, store, dbody)

	// dbody: val = val*10 + (ch - '0'); pos++
	f.Enter(dbody)
	v8, v2 := f.Reg(), f.Reg()
	f.Imm(isa.SLL, v8, val, 3)
	f.Imm(isa.SLL, v2, val, 1)
	f.ALU(isa.ADD, val, v8, v2)
	f.Imm(isa.ADDI, val, val, -'0')
	f.ALU(isa.ADD, val, val, dch)
	f.Imm(isa.ADDI, pos, pos, 1)
	f.Jump(digits)

	// store: table[bucket] += val
	f.Enter(store)
	cur := f.Reg()
	f.Load(isa.LW, cur, bslot, 0)
	f.ALU(isa.ADD, cur, cur, val)
	f.Store(isa.SW, cur, bslot, 0)
	f.Goto(skipNL)

	// skipNL: pos++ (past '\n'); next line
	f.Enter(skipNL)
	f.Imm(isa.ADDI, pos, pos, 1)
	f.Jump(line)

	// report: output the 8 bucket totals.
	f.Enter(report)
	k := f.Reg()
	f.Li(k, 0)
	f.Goto(rloop)
	f.Enter(rloop)
	ra, rv, rc := f.Reg(), f.Reg(), f.Reg()
	f.Imm(isa.SLTI, rc, k, awkBuckets)
	rbody := f.Block("rbody")
	f.Branch(isa.BEQ, rc, isa.R0, done, rbody)
	f.Enter(rbody)
	f.Imm(isa.SLL, ra, k, 2)
	f.ALU(isa.ADD, ra, table, ra)
	f.Load(isa.LW, rv, ra, 0)
	f.Out(rv)
	f.Imm(isa.ADDI, k, k, 1)
	f.Jump(rloop)

	f.Enter(done)
	f.Halt()
	f.Finish()
	return pr
}
