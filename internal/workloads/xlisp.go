package workloads

import (
	"boosting/internal/isa"
	"boosting/internal/prog"
)

// XLisp returns the interpreter workload. SPEC xlisp is a Lisp interpreter
// whose eval loop dispatches on node tags and chases cons-cell pointers;
// the kernel here evaluates a stream of expression trees compiled to
// postfix (push/add/sub/and/max) over an explicit operand stack in memory,
// which reproduces the dispatch-branch and stack-traffic behavior of an
// interpreter inner loop (the paper reports 83.5% accuracy for xlisp).
//
// Each expression's value folds into a checksum that is printed at the
// end together with the operation count.
func XLisp() *Workload {
	return &Workload{
		Name:  "xlisp",
		Build: buildXLisp,
		Train: Input{Seed: 17, Size: 260},
		Test:  Input{Seed: 139, Size: 380},
	}
}

// xlisp opcodes.
const (
	xlPush = iota
	xlAdd
	xlSub
	xlAnd
	xlMax
	xlEnd // end of one expression
	xlHalt
)

// xlExpr emits a random expression in postfix form, returning the number
// of stack slots it needs.
func xlExpr(rng *lcg, depth int, emitOp func(op, val int32)) int {
	if depth <= 0 || rng.intn(3) == 0 {
		emitOp(xlPush, int32(rng.intn(2000)-1000))
		return 1
	}
	l := xlExpr(rng, depth-1, emitOp)
	r := xlExpr(rng, depth-1, emitOp)
	// Real interpreters see heavily skewed opcode mixes; bias toward add.
	ops := []int32{xlAdd, xlAdd, xlAdd, xlAdd, xlAdd, xlSub, xlSub, xlAnd, xlMax}
	emitOp(ops[rng.intn(len(ops))], 0)
	if r+1 > l {
		return r + 1
	}
	return l
}

func buildXLisp(in Input) *prog.Program {
	pr := prog.New()
	rng := newLCG(in.Seed)

	// Program: Size expressions of depth ≤ 6, each a sequence of
	// (op, val) pairs terminated by xlEnd, the whole stream by xlHalt.
	var codeAddr uint32
	first := true
	emit := func(op, val int32) {
		a := pr.Words(op, val)
		if first {
			codeAddr = a
			first = false
		}
	}
	for e := 0; e < in.Size; e++ {
		xlExpr(rng, 2+rng.intn(5), emit)
		emit(xlEnd, 0)
	}
	emit(xlHalt, 0)
	stackAddr := pr.Reserve(4 * 128)

	f := prog.NewBuilder(pr, "main")
	fetch := f.Block("fetch")
	isPush := f.Block("isPush")
	notPush := f.Block("notPush")
	isAdd := f.Block("isAdd")
	notAdd := f.Block("notAdd")
	isSub := f.Block("isSub")
	notSub := f.Block("notSub")
	isAnd := f.Block("isAnd")
	notAnd := f.Block("notAnd")
	isMax := f.Block("isMax")
	maxTake := f.Block("maxTake")
	maxKeep := f.Block("maxKeep")
	notMax := f.Block("notMax")
	isEnd := f.Block("isEnd")
	binCommon := f.Block("binCommon")
	advance := f.Block("advance")
	done := f.Block("done")

	pc, code, stack, sp := f.Reg(), f.Reg(), f.Reg(), f.Reg()
	chk, count := f.Reg(), f.Reg()
	f.La(code, codeAddr)
	f.La(stack, stackAddr)
	f.Li(pc, 0)
	f.Li(sp, 0)
	f.Li(chk, 0)
	f.Li(count, 0)
	f.Goto(fetch)

	// fetch: op = code[pc]; val = code[pc+4]; interpreter bookkeeping —
	// a stack-overflow guard that, like xlisp's cons-space check, almost
	// never fires.
	f.Enter(fetch)
	a, op, val := f.Reg(), f.Reg(), f.Reg()
	guard := f.Reg()
	ovfl := f.Block("stackOverflow")
	fetch2 := f.Block("fetch2")
	f.Imm(isa.SLTI, guard, sp, 4*120)
	f.Branch(isa.BEQ, guard, isa.R0, ovfl, fetch2)
	f.Enter(ovfl)
	f.Li(guard, -1)
	f.Out(guard)
	f.Halt()
	f.Enter(fetch2)
	f.ALU(isa.ADD, a, code, pc)
	f.Load(isa.LW, op, a, 0)
	f.Load(isa.LW, val, a, 4)
	f.Branch(isa.BEQ, op, isa.R0, isPush, notPush)

	// isPush: stack[sp] = val; sp += 4
	f.Enter(isPush)
	sa := f.Reg()
	f.ALU(isa.ADD, sa, stack, sp)
	f.Store(isa.SW, val, sa, 0)
	f.Imm(isa.ADDI, sp, sp, 4)
	f.Goto(advance)

	// Binary operators pop two (x=NOS, y=TOS) and push the result.
	x, y, r := f.Reg(), f.Reg(), f.Reg()
	tagger := func(b *prog.Block, tag int32, hit, miss *prog.Block) {
		f.Enter(b)
		t := f.Reg()
		f.Imm(isa.XORI, t, op, tag)
		f.Branch(isa.BEQ, t, isa.R0, hit, miss)
	}
	pop2 := func(b *prog.Block) {
		f.Enter(b)
		xa := f.Reg()
		f.Imm(isa.ADDI, sp, sp, -8)
		f.ALU(isa.ADD, xa, stack, sp)
		f.Load(isa.LW, x, xa, 0)
		f.Load(isa.LW, y, xa, 4)
	}

	tagger(notPush, xlAdd, isAdd, notAdd)
	pop2(isAdd)
	f.ALU(isa.ADD, r, x, y)
	f.Goto(binCommon)

	tagger(notAdd, xlSub, isSub, notSub)
	pop2(isSub)
	f.ALU(isa.SUB, r, x, y)
	f.Goto(binCommon)

	tagger(notSub, xlAnd, isAnd, notAnd)
	pop2(isAnd)
	f.ALU(isa.AND, r, x, y)
	f.Goto(binCommon)

	tagger(notAnd, xlMax, isMax, notMax)
	pop2(isMax)
	lt := f.Reg()
	f.ALU(isa.SLT, lt, x, y)
	f.Branch(isa.BGTZ, lt, isa.R0, maxTake, maxKeep)
	f.Enter(maxTake)
	f.Move(r, y)
	f.Jump(binCommon)
	f.Enter(maxKeep)
	f.Move(r, x)
	f.Goto(binCommon)

	// binCommon: overflow-tag check (xlisp boxes fixnums; large results
	// would need bignums — essentially never on this data), then push.
	f.Enter(binCommon)
	ba, big := f.Reg(), f.Reg()
	bignum := f.Block("bignum")
	binPush := f.Block("binPush")
	f.Imm(isa.SRA, big, r, 24)
	f.Branch(isa.BGTZ, big, isa.R0, bignum, binPush)
	f.Enter(bignum)
	f.Imm(isa.ANDI, r, r, 0xFFFF)
	f.Goto(binPush)
	f.Enter(binPush)
	f.ALU(isa.ADD, ba, stack, sp)
	f.Store(isa.SW, r, ba, 0)
	f.Imm(isa.ADDI, sp, sp, 4)
	f.Imm(isa.ADDI, count, count, 1)
	f.Goto(advance)

	// notMax: xlEnd pops the result into the checksum; anything else halts.
	tagger(notMax, xlEnd, isEnd, done)
	f.Enter(isEnd)
	ea, ev := f.Reg(), f.Reg()
	f.Imm(isa.ADDI, sp, sp, -4)
	f.ALU(isa.ADD, ea, stack, sp)
	f.Load(isa.LW, ev, ea, 0)
	rot := f.Reg()
	f.Imm(isa.SLL, rot, chk, 1)
	f.ALU(isa.XOR, chk, rot, ev)
	f.Goto(advance)

	// advance: pc += 8
	f.Enter(advance)
	f.Imm(isa.ADDI, pc, pc, 8)
	f.Jump(fetch)

	f.Enter(done)
	f.Out(chk)
	f.Out(count)
	f.Halt()
	f.Finish()
	return pr
}
