package experiments

import (
	"context"
	"fmt"
	"strings"

	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/workloads"
)

// Figure9Row is one group of bars from Figure 9: speedups over the scalar
// machine for the MinBoost3 static machine (register allocated / infinite
// registers) and the dynamically-scheduled machine (without / with
// register renaming).
type Figure9Row struct {
	Name string
	// MinBoost3 and MinBoost3Inf are the static machine's lower and upper
	// bar portions.
	MinBoost3    float64
	MinBoost3Inf float64
	// Dynamic and DynamicRenamed are the dynamic scheduler's lower and
	// upper bar portions.
	Dynamic        float64
	DynamicRenamed float64
}

// Figure9 reproduces Figure 9.
func (s *Suite) Figure9(ctx context.Context) ([]Figure9Row, float64, float64, error) {
	var cells []Cell
	for _, w := range s.Workloads {
		cells = append(cells,
			scalarCell(w),
			Cell{Workload: w, Model: machine.MinBoost3(), Alloc: true},
			Cell{Workload: w, Model: machine.MinBoost3(), Alloc: false},
			Cell{Workload: w, Dynamic: true},
			Cell{Workload: w, Dynamic: true, Renaming: true},
		)
	}
	if err := s.prefetch(ctx, cells); err != nil {
		return nil, 0, 0, err
	}

	var rows []Figure9Row
	var mb3s, dyns []float64
	for _, w := range s.Workloads {
		scalar, err := s.scalarCycles(ctx, w)
		if err != nil {
			return nil, 0, 0, err
		}
		mb3, err := s.measure(ctx, w, machine.MinBoost3(), core.Options{}, true)
		if err != nil {
			return nil, 0, 0, err
		}
		mb3inf, err := s.measure(ctx, w, machine.MinBoost3(), core.Options{}, false)
		if err != nil {
			return nil, 0, 0, err
		}
		dyn, err := s.dynCycles(ctx, w, false)
		if err != nil {
			return nil, 0, 0, err
		}
		dynRen, err := s.dynCycles(ctx, w, true)
		if err != nil {
			return nil, 0, 0, err
		}
		row := Figure9Row{
			Name:           w.Name,
			MinBoost3:      float64(scalar) / float64(mb3),
			MinBoost3Inf:   float64(scalar) / float64(mb3inf),
			Dynamic:        float64(scalar) / float64(dyn),
			DynamicRenamed: float64(scalar) / float64(dynRen),
		}
		rows = append(rows, row)
		mb3s = append(mb3s, row.MinBoost3)
		dyns = append(dyns, row.Dynamic)
	}
	return rows, GeoMean(mb3s), GeoMean(dyns), nil
}

// dynCycles measures the dynamically-scheduled machine on the
// register-allocated test program (cached). The dynamic machine does its
// own prediction with a BTB, so the static profile is irrelevant to it,
// but the input program is the same one the static machines compile.
func (s *Suite) dynCycles(ctx context.Context, w *workloads.Workload, renaming bool) (int64, error) {
	return s.Store.dynMeasure(ctx, w, renaming, false)
}

// FormatFigure9 renders the figure's series.
func FormatFigure9(rows []Figure9Row, gmMB3, gmDyn float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %14s %10s %14s\n",
		"", "MinBoost3", "MinBoost3(inf)", "Dynamic", "Dynamic(ren)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %9.2fx %13.2fx %9.2fx %13.2fx\n",
			r.Name, r.MinBoost3, r.MinBoost3Inf, r.Dynamic, r.DynamicRenamed)
	}
	fmt.Fprintf(&b, "%-10s %9.2fx %27.2fx\n", "G.M.", gmMB3, gmDyn)
	return b.String()
}

// ExceptionCosts quantifies §2.3's prose claims on the benchmark set:
// object-file growth (scheduled + recovery code vs original, "less than a
// two-times growth") and the boosted exception handler overhead in cycles.
type ExceptionCosts struct {
	// Growth maps workload name to object growth under MinBoost3.
	Growth map[string]float64
	// HandlerOverhead is the modeled handler entry cost in cycles.
	HandlerOverhead int
}

// ExceptionCostsReport computes the exception-cost table.
func (s *Suite) ExceptionCostsReport(ctx context.Context) (*ExceptionCosts, error) {
	out := &ExceptionCosts{
		Growth:          map[string]float64{},
		HandlerOverhead: machine.MinBoost3().ExceptionOverhead,
	}
	growths := make([]float64, len(s.Workloads))
	if err := ForEachLimited(ctx, len(s.Workloads), s.Runner.workers(), func(ctx context.Context, i int) error {
		g, err := s.Store.objectGrowth(ctx, s.Workloads[i], machine.MinBoost3(), core.Options{})
		if err != nil {
			return err
		}
		growths[i] = g
		return nil
	}); err != nil {
		return nil, err
	}
	for i, w := range s.Workloads {
		out.Growth[w.Name] = growths[i]
	}
	return out, nil
}

// SpeedupSummary bundles the headline comparison used by the README and
// the examples: geometric-mean speedups over the scalar machine for every
// configuration in the paper.
type SpeedupSummary struct {
	BasicBlock float64
	Global     float64
	Squashing  float64
	Boost1     float64
	MinBoost3  float64
	Boost7     float64
	Dynamic    float64
}

// Summary computes the headline geometric means.
func (s *Suite) Summary(ctx context.Context) (*SpeedupSummary, error) {
	staticModels := []struct {
		model *machine.Model
		opts  core.Options
	}{
		{machine.NoBoost(), core.Options{LocalOnly: true}},
		{machine.NoBoost(), core.Options{}},
		{machine.Squashing(), core.Options{}},
		{machine.Boost1(), core.Options{}},
		{machine.MinBoost3(), core.Options{}},
		{machine.Boost7(), core.Options{}},
	}
	var cells []Cell
	for _, w := range s.Workloads {
		cells = append(cells, scalarCell(w))
		for _, sm := range staticModels {
			cells = append(cells, Cell{Workload: w, Model: sm.model, Opts: sm.opts, Alloc: true})
		}
		cells = append(cells, Cell{Workload: w, Dynamic: true})
	}
	if err := s.prefetch(ctx, cells); err != nil {
		return nil, err
	}

	sum := &SpeedupSummary{}
	collect := func(model *machine.Model, opts core.Options) (float64, error) {
		var vs []float64
		for _, w := range s.Workloads {
			scalar, err := s.scalarCycles(ctx, w)
			if err != nil {
				return 0, err
			}
			c, err := s.measure(ctx, w, model, opts, true)
			if err != nil {
				return 0, err
			}
			vs = append(vs, float64(scalar)/float64(c))
		}
		return GeoMean(vs), nil
	}
	var err error
	if sum.BasicBlock, err = collect(machine.NoBoost(), core.Options{LocalOnly: true}); err != nil {
		return nil, err
	}
	if sum.Global, err = collect(machine.NoBoost(), core.Options{}); err != nil {
		return nil, err
	}
	if sum.Squashing, err = collect(machine.Squashing(), core.Options{}); err != nil {
		return nil, err
	}
	if sum.Boost1, err = collect(machine.Boost1(), core.Options{}); err != nil {
		return nil, err
	}
	if sum.MinBoost3, err = collect(machine.MinBoost3(), core.Options{}); err != nil {
		return nil, err
	}
	if sum.Boost7, err = collect(machine.Boost7(), core.Options{}); err != nil {
		return nil, err
	}
	var dyn []float64
	for _, w := range s.Workloads {
		scalar, err := s.scalarCycles(ctx, w)
		if err != nil {
			return nil, err
		}
		c, err := s.dynCycles(ctx, w, false)
		if err != nil {
			return nil, err
		}
		dyn = append(dyn, float64(scalar)/float64(c))
	}
	sum.Dynamic = GeoMean(dyn)
	return sum, nil
}
