package experiments

import (
	"fmt"
	"strings"
)

// BarChart renders a horizontal stacked bar chart in plain text, in the
// style of the paper's Figures 8 and 9: one row per benchmark, a solid
// lower bar and a lighter upper extension (e.g. infinite-register or
// renaming headroom). Values are speedups; the axis starts at 1.0 (no
// speedup) like the figures'.
func BarChart(labels []string, lower, upper []float64, unit string) string {
	const width = 48 // character cells for the value range
	maxV := 1.0
	for i := range lower {
		if lower[i] > maxV {
			maxV = lower[i]
		}
		if i < len(upper) && upper[i] > maxV {
			maxV = upper[i]
		}
	}
	scale := float64(width) / (maxV - 1.0)
	var b strings.Builder
	for i, name := range labels {
		lo := lower[i]
		hi := lo
		if i < len(upper) && upper[i] > lo {
			hi = upper[i]
		}
		nLo := int((lo - 1.0) * scale)
		nHi := int((hi - 1.0) * scale)
		if nLo < 0 {
			nLo = 0
		}
		if nHi < nLo {
			nHi = nLo
		}
		bar := strings.Repeat("#", nLo) + strings.Repeat("+", nHi-nLo)
		if hi > lo {
			fmt.Fprintf(&b, "%-13s|%-*s %.2f%s (%.2f%s)\n", name, width, bar, lo, unit, hi, unit)
		} else {
			fmt.Fprintf(&b, "%-13s|%-*s %.2f%s\n", name, width, bar, lo, unit)
		}
	}
	fmt.Fprintf(&b, "%-13s|%s>\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%-13s1.0%s%.2f\n", "", strings.Repeat(" ", width-4), maxV)
	return b.String()
}

// Figure8Chart renders Figure 8 as the paper draws it: bars of the global
// scheduling speedup with the infinite-register upper portion stacked.
func Figure8Chart(rows []Figure8Row) string {
	var labels []string
	var lo, hi []float64
	for _, r := range rows {
		labels = append(labels, r.Name)
		lo = append(lo, r.Global)
		hi = append(hi, r.GlobalInf)
	}
	return "speedup over R2000 — global scheduling (# = allocated, + = infinite registers)\n" +
		BarChart(labels, lo, hi, "x")
}

// Figure9Chart renders Figure 9's two bar groups side by side: MinBoost3
// and the dynamic scheduler.
func Figure9Chart(rows []Figure9Row) string {
	var labels []string
	var lo, hi []float64
	for _, r := range rows {
		labels = append(labels, r.Name+"/mb3")
		lo = append(lo, r.MinBoost3)
		hi = append(hi, r.MinBoost3Inf)
		labels = append(labels, r.Name+"/dyn")
		lo = append(lo, r.Dynamic)
		hi = append(hi, r.DynamicRenamed)
	}
	return "speedup over R2000 (# = base, + = infinite regs / renaming)\n" +
		BarChart(labels, lo, hi, "x")
}
