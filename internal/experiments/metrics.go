package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"boosting/internal/core"
)

// Metrics aggregates per-stage counters for one Store. Every field is
// updated atomically, so concurrent grid cells can record into the same
// Metrics without coordination; read a consistent view with Snapshot.
type Metrics struct {
	builds  atomic.Int64 // workload builds (regalloc + profile transfer)
	buildNS atomic.Int64

	schedules  atomic.Int64 // core.Schedule invocations
	scheduleNS atomic.Int64

	// Scheduler stage breakdown, accumulated from core.ScheduleWithStats:
	// where inside the schedule pass the compile time actually went.
	traceSelectNS atomic.Int64
	ddgBuildNS    atomic.Int64
	listSchedNS   atomic.Int64
	recoveryNS    atomic.Int64

	sims      atomic.Int64 // machine-simulator runs
	simNS     atomic.Int64
	simCycles atomic.Int64 // total simulated machine cycles

	refRuns atomic.Int64 // reference-interpreter runs
	refNS   atomic.Int64

	boosted  atomic.Int64 // speculative activity observed across all runs
	squashed atomic.Int64
}

func (m *Metrics) recordBuild(d time.Duration) {
	m.builds.Add(1)
	m.buildNS.Add(int64(d))
}

// recordSchedule counts one schedule pass; st, when non-nil, attributes
// the pass's time to the scheduler's internal stages.
func (m *Metrics) recordSchedule(d time.Duration, st *core.Stats) {
	m.schedules.Add(1)
	m.scheduleNS.Add(int64(d))
	if st != nil {
		m.traceSelectNS.Add(int64(st.TraceSelectSeconds * float64(time.Second)))
		m.ddgBuildNS.Add(int64(st.DDGBuildSeconds * float64(time.Second)))
		m.listSchedNS.Add(int64(st.ListScheduleSeconds * float64(time.Second)))
		m.recoveryNS.Add(int64(st.RecoveryEmitSeconds * float64(time.Second)))
	}
}

func (m *Metrics) recordSim(d time.Duration, cycles, boosted, squashed int64) {
	m.sims.Add(1)
	m.simNS.Add(int64(d))
	m.simCycles.Add(cycles)
	m.boosted.Add(boosted)
	m.squashed.Add(squashed)
}

func (m *Metrics) recordRef(d time.Duration) {
	m.refRuns.Add(1)
	m.refNS.Add(int64(d))
}

// Snapshot is a consistent copy of the counters, with the artifact-cache
// hit/miss totals folded in. It marshals to JSON for machine consumption
// (cmd/experiments -metrics-json).
type Snapshot struct {
	// Builds counts workload compilations (build + register allocation +
	// profile transfer). With the memoizing store this equals the number
	// of unique (workload, regalloc-mode) pairs ever requested.
	Builds    int64         `json:"builds"`
	BuildTime time.Duration `json:"build_time_ns"`
	Schedules int64         `json:"schedules"`
	SchedTime time.Duration `json:"schedule_time_ns"`
	// Scheduler stage breakdown of SchedTime (sub-spans of the schedule
	// pass, not additional time).
	TraceSelectTime time.Duration `json:"trace_select_time_ns"`
	DDGBuildTime    time.Duration `json:"ddg_build_time_ns"`
	ListSchedTime   time.Duration `json:"list_schedule_time_ns"`
	RecoveryTime    time.Duration `json:"recovery_emit_time_ns"`
	Simulations     int64         `json:"simulations"`
	SimTime         time.Duration `json:"simulate_time_ns"`
	SimCycles       int64         `json:"simulated_cycles"`
	RefRuns         int64         `json:"reference_runs"`
	RefTime         time.Duration `json:"reference_time_ns"`
	BoostedExec     int64         `json:"boosted_executed"`
	Squashed        int64         `json:"squashed"`
	CacheHits       int64         `json:"cache_hits"`
	CacheMisses     int64         `json:"cache_misses"`
}

func (m *Metrics) snapshot() Snapshot {
	return Snapshot{
		Builds:          m.builds.Load(),
		BuildTime:       time.Duration(m.buildNS.Load()),
		Schedules:       m.schedules.Load(),
		SchedTime:       time.Duration(m.scheduleNS.Load()),
		TraceSelectTime: time.Duration(m.traceSelectNS.Load()),
		DDGBuildTime:    time.Duration(m.ddgBuildNS.Load()),
		ListSchedTime:   time.Duration(m.listSchedNS.Load()),
		RecoveryTime:    time.Duration(m.recoveryNS.Load()),
		Simulations:     m.sims.Load(),
		SimTime:         time.Duration(m.simNS.Load()),
		SimCycles:       m.simCycles.Load(),
		RefRuns:         m.refRuns.Load(),
		RefTime:         time.Duration(m.refNS.Load()),
		BoostedExec:     m.boosted.Load(),
		Squashed:        m.squashed.Load(),
	}
}

// CyclesPerSec is the aggregate simulation throughput: simulated machine
// cycles per wall-clock second spent inside the simulators.
func (s Snapshot) CyclesPerSec() float64 {
	if s.SimTime <= 0 {
		return 0
	}
	return float64(s.SimCycles) / s.SimTime.Seconds()
}

// HitRate is cache hits over total artifact lookups (1 when idle).
func (s Snapshot) HitRate() float64 {
	if s.CacheHits+s.CacheMisses == 0 {
		return 1
	}
	return float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
}

// String renders the snapshot as a summary table.
func (s Snapshot) String() string {
	var b strings.Builder
	row := func(stage string, n int64, d time.Duration) {
		fmt.Fprintf(&b, "%-10s %8d runs %12s total", stage, n, d.Round(time.Microsecond))
		if n > 0 {
			fmt.Fprintf(&b, " %12s/run", (d / time.Duration(n)).Round(time.Microsecond))
		}
		b.WriteByte('\n')
	}
	row("build", s.Builds, s.BuildTime)
	row("schedule", s.Schedules, s.SchedTime)
	stage := func(name string, d time.Duration) {
		fmt.Fprintf(&b, "  %-8s %21s total\n", name, d.Round(time.Microsecond))
	}
	stage("select", s.TraceSelectTime)
	stage("ddg", s.DDGBuildTime)
	stage("list", s.ListSchedTime)
	stage("recovery", s.RecoveryTime)
	row("simulate", s.Simulations, s.SimTime)
	row("reference", s.RefRuns, s.RefTime)
	fmt.Fprintf(&b, "%-10s %8d cycles (%.3g cycles/sec)\n", "simulated", s.SimCycles, s.CyclesPerSec())
	fmt.Fprintf(&b, "%-10s %8d boosted, %d squashed\n", "speculation", s.BoostedExec, s.Squashed)
	fmt.Fprintf(&b, "%-10s %8d hits, %d misses (%.1f%% hit rate)\n",
		"cache", s.CacheHits, s.CacheMisses, 100*s.HitRate())
	return b.String()
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() (string, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}
