package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/prog"
	"boosting/internal/workloads"
)

// fullGrid is the complete static+dynamic evaluation grid of the paper:
// every workload on every machine configuration used by Tables 1–2 and
// Figures 8–9.
func fullGrid(s *Suite) []Cell {
	var cells []Cell
	for _, w := range s.Workloads {
		cells = append(cells,
			scalarCell(w),
			Cell{Workload: w, Model: machine.NoBoost(), Opts: core.Options{LocalOnly: true}, Alloc: true},
			Cell{Workload: w, Model: machine.NoBoost(), Alloc: true},
			Cell{Workload: w, Model: machine.NoBoost(), Alloc: false},
			Cell{Workload: w, Model: machine.Squashing(), Alloc: true},
			Cell{Workload: w, Model: machine.Boost1(), Alloc: true},
			Cell{Workload: w, Model: machine.MinBoost3(), Alloc: true},
			Cell{Workload: w, Model: machine.MinBoost3(), Alloc: false},
			Cell{Workload: w, Model: machine.Boost7(), Alloc: true},
			Cell{Workload: w, Dynamic: true},
			Cell{Workload: w, Dynamic: true, Renaming: true},
		)
	}
	return cells
}

// TestRunnerParallelMatchesSerial is the engine's determinism contract:
// the full grid, run at parallelism 1 and at high parallelism (under the
// race detector in `make test-race`), must produce identical results cell
// for cell.
func TestRunnerParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("two full grids in -short mode")
	}
	ctx := context.Background()

	serial := NewSuite()
	serial.Runner.Parallelism = 1
	want, err := serial.Runner.Run(ctx, fullGrid(serial))
	if err != nil {
		t.Fatal(err)
	}

	parallel := NewSuite()
	parallel.Runner.Parallelism = 8
	got, err := parallel.Runner.Run(ctx, fullGrid(parallel))
	if err != nil {
		t.Fatal(err)
	}

	if len(got) != len(want) {
		t.Fatalf("result count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Cycles != want[i].Cycles {
			t.Errorf("%s: parallel %d cycles, serial %d", want[i].Cell, got[i].Cycles, want[i].Cycles)
		}
	}
}

// TestParallelOutputByteIdentical regenerates Table 1/2 and Figure 8/9
// through the parallel runner and asserts the formatted output is
// byte-identical to a serial (parallelism 1) run, and that the shared
// artifact store issued each unique (workload, regalloc-mode) build
// exactly once.
func TestParallelOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("three full grids in -short mode")
	}
	ctx := context.Background()
	render := func(s *Suite) (string, error) {
		var b strings.Builder
		t1, err := s.Table1(ctx)
		if err != nil {
			return "", err
		}
		b.WriteString(FormatTable1(t1))
		f8, gmBB, gmGl, err := s.Figure8(ctx)
		if err != nil {
			return "", err
		}
		b.WriteString(FormatFigure8(f8, gmBB, gmGl))
		t2, geo, err := s.Table2(ctx)
		if err != nil {
			return "", err
		}
		b.WriteString(FormatTable2(t2, geo))
		f9, gmMB3, gmDyn, err := s.Figure9(ctx)
		if err != nil {
			return "", err
		}
		b.WriteString(FormatFigure9(f9, gmMB3, gmDyn))
		return b.String(), nil
	}

	serial := NewSuite()
	serial.Runner.Parallelism = 1
	want, err := render(serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := NewSuite()
	parallel.Runner.Parallelism = 8
	got, err := render(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("parallel output differs from serial output:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}

	// Tables 1–2 and Figures 8–9 touch every workload register-allocated
	// and (via the infinite-register bars) unallocated: 7 × 2 unique
	// builds, each issued exactly once no matter how many grid cells
	// share it.
	snap := parallel.Metrics()
	wantBuilds := int64(2 * len(parallel.Workloads))
	if snap.Builds != wantBuilds {
		t.Errorf("store issued %d builds, want exactly %d (one per workload × regalloc mode)",
			snap.Builds, wantBuilds)
	}
	if snap.CacheHits == 0 {
		t.Error("no cache hits across the full evaluation — memoization broken")
	}
	if snap.Simulations == 0 || snap.SimCycles == 0 {
		t.Errorf("metrics missing simulator activity: %+v", snap)
	}
	if snap.BoostedExec == 0 || snap.Squashed == 0 {
		t.Errorf("metrics missing speculation activity: %+v", snap)
	}
}

// TestRunnerCancellation: a context cancelled mid-grid aborts promptly
// with an error wrapping context.Canceled.
func TestRunnerCancellation(t *testing.T) {
	s := NewSuite()
	s.Runner.Parallelism = 2
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel shortly after the grid starts; the workers must notice at
	// the next stage boundary.
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := s.Runner.Run(ctx, fullGrid(s))
	if err == nil {
		t.Fatal("cancelled grid returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	// "Promptly": well under the many seconds the full grid would take.
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancelled grid took %s to return", d)
	}

	// An already-cancelled context never starts work.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := s.Runner.Run(done, fullGrid(s)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled grid: err = %v", err)
	}
}

// TestRunnerCellError: a failing cell aborts the grid with that cell's
// error, not a knock-on cancellation. The broken workload builds
// structurally different train/test programs, so profile transfer fails.
func TestRunnerCellError(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid with an injected failure in -short mode")
	}
	s := NewSuite()
	s.Runner.Parallelism = 4
	bad := &workloads.Workload{
		Name: "broken",
		Build: func(in workloads.Input) *prog.Program {
			pr := prog.New()
			f := prog.NewBuilder(pr, "main")
			r := f.Reg()
			f.Li(r, 1)
			if in.Size > 1 {
				f.Li(r, 2)
			}
			f.Out(r)
			f.Halt()
			f.Finish()
			return pr
		},
		Train: workloads.Input{Size: 1},
		Test:  workloads.Input{Size: 2},
	}
	cells := append(fullGrid(s), Cell{Workload: bad, Model: machine.MinBoost3(), Alloc: true})
	_, err := s.Runner.Run(context.Background(), cells)
	if err == nil {
		t.Fatal("broken workload cell must fail the grid")
	}
	if errors.Is(err, context.Canceled) {
		t.Errorf("grid error should surface the cell failure, got %v", err)
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("error %q does not name the failing cell", err)
	}
}

// TestCacheKeysIncludeAblations: ablation runs must not collide with
// default-run cache entries when requested through the same Suite (the
// historical bug: keys ignored DisableEquivalence/NoDisambiguation).
func TestCacheKeysIncludeAblations(t *testing.T) {
	s := NewSuite()
	ctx := context.Background()
	w := s.Workloads[4] // grep
	base, err := s.measure(ctx, w, machine.MinBoost3(), core.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	type variant struct {
		name string
		opts core.Options
	}
	variants := []variant{
		{"DisableEquivalence", core.Options{DisableEquivalence: true}},
		{"NoDisambiguation", core.Options{NoDisambiguation: true}},
		{"MaxTraceBlocks=1", core.Options{MaxTraceBlocks: 1}},
	}
	distinct := false
	for _, v := range variants {
		c, err := s.measure(ctx, w, machine.MinBoost3(), v.opts, true)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if c != base {
			distinct = true
		}
		// Re-measuring the default must still return the default cycles.
		again, err := s.measure(ctx, w, machine.MinBoost3(), core.Options{}, true)
		if err != nil {
			t.Fatal(err)
		}
		if again != base {
			t.Errorf("after %s run, default measurement changed: %d vs %d", v.name, again, base)
		}
	}
	if !distinct {
		t.Error("no ablation changed the cycle count; key-collision test has no teeth")
	}

	// Same point for the two dynamic variants sharing the cycles table.
	plain, err := s.DynCycles(ctx, w, false)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := s.DynPrescheduled(ctx, w, false)
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.DynCycles(ctx, w, false)
	if err != nil {
		t.Fatal(err)
	}
	if again != plain {
		t.Errorf("prescheduled run clobbered the plain dynamic entry: %d vs %d", again, plain)
	}
	_ = pre
}

// TestCellString covers the grid-cell formatter used in error paths.
func TestCellString(t *testing.T) {
	s := NewSuite()
	w := s.Workloads[0]
	static := Cell{Workload: w, Model: machine.MinBoost3(), Alloc: true}
	if got := static.String(); !strings.Contains(got, "awk/MinBoost3") {
		t.Errorf("static cell = %q", got)
	}
	dyn := Cell{Workload: w, Dynamic: true, Renaming: true}
	if got := dyn.String(); !strings.Contains(got, "dynamic(renaming=true)") {
		t.Errorf("dynamic cell = %q", got)
	}
}

// TestMetricsSnapshotFormat sanity-checks the metrics renderers.
func TestMetricsSnapshotFormat(t *testing.T) {
	s := NewSuite()
	ctx := context.Background()
	if _, err := s.ScalarCycles(ctx, s.Workloads[4]); err != nil {
		t.Fatal(err)
	}
	snap := s.Metrics()
	text := snap.String()
	for _, want := range []string{"build", "schedule", "simulate", "cache"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics table missing %q:\n%s", want, text)
		}
	}
	js, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"builds"`, `"cache_hits"`, `"simulated_cycles"`} {
		if !strings.Contains(js, want) {
			t.Errorf("metrics JSON missing %s:\n%s", want, js)
		}
	}
	if snap.CyclesPerSec() <= 0 {
		t.Errorf("cycles/sec = %f", snap.CyclesPerSec())
	}
	if fmt.Sprintf("%.3f", Snapshot{}.HitRate()) != "1.000" {
		t.Error("idle hit rate should be 1")
	}
}
