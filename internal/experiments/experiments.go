// Package experiments regenerates every table and figure of the paper's
// evaluation (§4.3):
//
//	Table 1  – benchmark simulation information (cycles, IPC, accuracy)
//	Figure 8 – base superscalar speedups: basic-block vs global scheduling,
//	           register-allocated vs infinite-register (stacked)
//	Table 2  – % improvement over global scheduling for Squashing, Boost1,
//	           MinBoost3 and Boost7
//	Figure 9 – MinBoost3 vs the dynamically-scheduled superscalar
//
// plus the quantitative claims made in prose: boosted-exception handling
// costs (§2.3) and shadow register file hardware costs (§4.3.2).
//
// Methodology mirrors the paper: workloads are compiled (register
// allocation first, then scheduling), branch predictions come from a
// profile on the training input, performance is measured on the test
// input, and speedup is total R2000 cycles divided by total cycles of the
// machine under test. Every simulated run is verified against the
// reference interpreter's output and final memory before its cycle count
// is used.
//
// The harness is concurrent: a worker-pool Runner executes the
// (workload, model, ablation) grid in parallel over a singleflight
// artifact Store, so no two grid cells ever rebuild the same compiled
// pair, reference run or measurement, and results are bit-identical to a
// serial run regardless of parallelism. Every entry point takes a
// context.Context and aborts promptly when it is cancelled.
package experiments

import (
	"context"
	"fmt"
	"math"

	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/sim"
	"boosting/internal/workloads"
)

// Suite runs experiments over the benchmark set. All artifacts (compiled
// programs, reference runs, cycle counts) are memoized in the Store and
// shared between the table/figure functions; the Runner executes
// measurement grids in parallel.
type Suite struct {
	Workloads []*workloads.Workload
	// Store memoizes every pipeline artifact (concurrency-safe).
	Store *Store
	// Runner executes measurement grids; set Runner.Parallelism to bound
	// concurrency (defaults to GOMAXPROCS).
	Runner *Runner
}

// NewSuite returns a Suite over the full benchmark set, running grids at
// GOMAXPROCS parallelism.
func NewSuite() *Suite {
	st := NewStore()
	return &Suite{
		Workloads: workloads.All(),
		Store:     st,
		Runner:    &Runner{Store: st},
	}
}

// Metrics returns the per-stage counters accumulated so far (build,
// schedule and simulate wall time, simulated cycles, cache hits/misses,
// speculation activity).
func (s *Suite) Metrics() Snapshot { return s.Store.Metrics() }

// reference returns (cached) reference results for the test input.
func (s *Suite) reference(ctx context.Context, w *workloads.Workload, alloc bool) (*sim.Result, error) {
	return s.Store.reference(ctx, w, alloc)
}

// measure compiles the workload for the model/options and returns verified
// cycle counts.
func (s *Suite) measure(ctx context.Context, w *workloads.Workload, model *machine.Model, opts core.Options, alloc bool) (int64, error) {
	return s.Store.measure(ctx, w, model, opts, alloc)
}

// verify compares observable behavior with the reference run.
func verify(ref *sim.Result, out []uint32, memHash uint64) error {
	if len(out) != len(ref.Out) {
		return fmt.Errorf("verification failed: %d outputs, want %d", len(out), len(ref.Out))
	}
	for i := range out {
		if out[i] != ref.Out[i] {
			return fmt.Errorf("verification failed: out[%d] = %d, want %d", i, out[i], ref.Out[i])
		}
	}
	if memHash != ref.MemHash {
		return fmt.Errorf("verification failed: final memory differs")
	}
	return nil
}

// scalarCycles measures the R2000 baseline (locally scheduled, register
// allocated — the "commercial MIPS assembler" role).
func (s *Suite) scalarCycles(ctx context.Context, w *workloads.Workload) (int64, error) {
	return s.measure(ctx, w, machine.Scalar(), core.Options{LocalOnly: true}, true)
}

// scalarCell is the grid cell for the R2000 baseline measurement.
func scalarCell(w *workloads.Workload) Cell {
	return Cell{Workload: w, Model: machine.Scalar(), Opts: core.Options{LocalOnly: true}, Alloc: true}
}

// prefetch warms the store for the given cells in parallel. The
// subsequent serial assembly loops then read memoized artifacts only,
// keeping output byte-identical to a fully serial run.
func (s *Suite) prefetch(ctx context.Context, cells []Cell) error {
	_, err := s.Runner.Run(ctx, cells)
	return err
}

// GeoMean returns the geometric mean of vs.
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}
