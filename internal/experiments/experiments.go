// Package experiments regenerates every table and figure of the paper's
// evaluation (§4.3):
//
//	Table 1  – benchmark simulation information (cycles, IPC, accuracy)
//	Figure 8 – base superscalar speedups: basic-block vs global scheduling,
//	           register-allocated vs infinite-register (stacked)
//	Table 2  – % improvement over global scheduling for Squashing, Boost1,
//	           MinBoost3 and Boost7
//	Figure 9 – MinBoost3 vs the dynamically-scheduled superscalar
//
// plus the quantitative claims made in prose: boosted-exception handling
// costs (§2.3) and shadow register file hardware costs (§4.3.2).
//
// Methodology mirrors the paper: workloads are compiled (register
// allocation first, then scheduling), branch predictions come from a
// profile on the training input, performance is measured on the test
// input, and speedup is total R2000 cycles divided by total cycles of the
// machine under test. Every simulated run is verified against the
// reference interpreter's output and final memory before its cycle count
// is used.
package experiments

import (
	"fmt"
	"math"

	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/regalloc"
	"boosting/internal/sim"
	"boosting/internal/workloads"
)

// Suite runs experiments over the benchmark set, caching compiled
// programs and cycle counts so the table/figure functions can share work.
type Suite struct {
	Workloads []*workloads.Workload
	// cycles caches measured cycle counts by cache key.
	cycles map[string]int64
	// refs caches reference results for verification, keyed by
	// workload+regalloc mode.
	refs map[string]*sim.Result
	// accuracy and refInsts cache Table 1 inputs.
	accuracy map[string]float64
}

// NewSuite returns a Suite over the full benchmark set.
func NewSuite() *Suite {
	return &Suite{
		Workloads: workloads.All(),
		cycles:    map[string]int64{},
		refs:      map[string]*sim.Result{},
		accuracy:  map[string]float64{},
	}
}

// buildPair builds (train, test) programs for a workload, optionally
// register-allocated, with predictions transferred from the training
// profile.
func (s *Suite) buildPair(w *workloads.Workload, alloc bool) (*prog.Program, error) {
	train := w.BuildTrain()
	test := w.BuildTest()
	if alloc {
		if _, err := regalloc.Allocate(train); err != nil {
			return nil, fmt.Errorf("%s: regalloc train: %w", w.Name, err)
		}
		if _, err := regalloc.Allocate(test); err != nil {
			return nil, fmt.Errorf("%s: regalloc test: %w", w.Name, err)
		}
	}
	if err := profile.Annotate(train); err != nil {
		return nil, fmt.Errorf("%s: profile: %w", w.Name, err)
	}
	if err := profile.Transfer(train, test); err != nil {
		return nil, fmt.Errorf("%s: transfer: %w", w.Name, err)
	}
	return test, nil
}

// reference returns (cached) reference results for the test input.
func (s *Suite) reference(w *workloads.Workload, alloc bool) (*sim.Result, error) {
	key := fmt.Sprintf("%s/alloc=%v", w.Name, alloc)
	if r, ok := s.refs[key]; ok {
		return r, nil
	}
	test, err := s.buildPair(w, alloc)
	if err != nil {
		return nil, err
	}
	r, err := sim.Run(test, sim.RefConfig{})
	if err != nil {
		return nil, fmt.Errorf("%s: reference: %w", w.Name, err)
	}
	s.refs[key] = r
	return r, nil
}

// measure compiles the workload for the model/options and returns verified
// cycle counts.
func (s *Suite) measure(w *workloads.Workload, model *machine.Model, opts core.Options, alloc bool) (int64, error) {
	key := fmt.Sprintf("%s/%s/local=%v/alloc=%v", w.Name, model.Name, opts.LocalOnly, alloc)
	if c, ok := s.cycles[key]; ok {
		return c, nil
	}
	ref, err := s.reference(w, alloc)
	if err != nil {
		return 0, err
	}
	test, err := s.buildPair(w, alloc)
	if err != nil {
		return 0, err
	}
	sp, err := core.Schedule(test, model, opts)
	if err != nil {
		return 0, fmt.Errorf("%s on %s: %w", w.Name, model.Name, err)
	}
	res, err := sim.Exec(sp, sim.ExecConfig{})
	if err != nil {
		return 0, fmt.Errorf("%s on %s: exec: %w", w.Name, model.Name, err)
	}
	if err := verify(ref, res.Out, res.MemHash); err != nil {
		return 0, fmt.Errorf("%s on %s: %w", w.Name, model.Name, err)
	}
	s.cycles[key] = res.Cycles
	return res.Cycles, nil
}

// verify compares observable behavior with the reference run.
func verify(ref *sim.Result, out []uint32, memHash uint64) error {
	if len(out) != len(ref.Out) {
		return fmt.Errorf("verification failed: %d outputs, want %d", len(out), len(ref.Out))
	}
	for i := range out {
		if out[i] != ref.Out[i] {
			return fmt.Errorf("verification failed: out[%d] = %d, want %d", i, out[i], ref.Out[i])
		}
	}
	if memHash != ref.MemHash {
		return fmt.Errorf("verification failed: final memory differs")
	}
	return nil
}

// scalarCycles measures the R2000 baseline (locally scheduled, register
// allocated — the "commercial MIPS assembler" role).
func (s *Suite) scalarCycles(w *workloads.Workload) (int64, error) {
	return s.measure(w, machine.Scalar(), core.Options{LocalOnly: true}, true)
}

// GeoMean returns the geometric mean of vs.
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}
