package experiments

import (
	"context"
	"fmt"
	"strings"

	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/workloads"
)

// Table1Row is one row of the paper's Table 1: "Benchmark programs and
// their simulation information".
type Table1Row struct {
	Name string
	// Cycles is total R2000 cycles on the test input.
	Cycles int64
	// IPC is average R2000 instructions per cycle (useful instructions
	// divided by cycles; delay-slot NOPs and stalls push it below 1).
	IPC float64
	// Accuracy is the profile-driven static branch prediction accuracy
	// measured on the test input.
	Accuracy float64
}

// Table1 reproduces Table 1.
func (s *Suite) Table1(ctx context.Context) ([]Table1Row, error) {
	var cells []Cell
	for _, w := range s.Workloads {
		cells = append(cells, scalarCell(w))
	}
	if err := s.prefetch(ctx, cells); err != nil {
		return nil, err
	}
	// Warm the reference runs and accuracies concurrently too.
	if err := ForEachLimited(ctx, len(s.Workloads), s.Runner.workers(), func(ctx context.Context, i int) error {
		if _, err := s.reference(ctx, s.Workloads[i], true); err != nil {
			return err
		}
		_, err := s.predictionAccuracy(ctx, s.Workloads[i])
		return err
	}); err != nil {
		return nil, err
	}

	var rows []Table1Row
	for _, w := range s.Workloads {
		cycles, err := s.scalarCycles(ctx, w)
		if err != nil {
			return nil, err
		}
		ref, err := s.reference(ctx, w, true)
		if err != nil {
			return nil, err
		}
		acc, err := s.predictionAccuracy(ctx, w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Name:     w.Name,
			Cycles:   cycles,
			IPC:      float64(ref.Insts) / float64(cycles),
			Accuracy: acc,
		})
	}
	return rows, nil
}

// predictionAccuracy measures the static predictor on the test input
// (cached).
func (s *Suite) predictionAccuracy(ctx context.Context, w *workloads.Workload) (float64, error) {
	return s.Store.accuracyOf(ctx, w)
}

// FormatTable1 renders the rows like the paper's table.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %12s %22s\n", "", "Total R2000", "Avg. R2000", "Branch Prediction")
	fmt.Fprintf(&b, "%-10s %14s %12s %22s\n", "", "Cycles", "IPC", "Accuracy")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %14d %12.2f %21.1f%%\n", r.Name, r.Cycles, r.IPC, 100*r.Accuracy)
	}
	return b.String()
}

// Figure8Row is one group of bars from Figure 8: speedup of the base
// 2-issue superscalar (no speculation hardware) over the scalar machine.
type Figure8Row struct {
	Name string
	// BasicBlock is the speedup with scheduling confined to basic blocks.
	BasicBlock float64
	// Global is the speedup with global scheduling (safe speculation
	// only), register allocation before scheduling.
	Global float64
	// GlobalInf is global scheduling with the infinite register model
	// (the upper stacked portion of each bar).
	GlobalInf float64
}

// Figure8 reproduces Figure 8.
func (s *Suite) Figure8(ctx context.Context) ([]Figure8Row, float64, float64, error) {
	var cells []Cell
	for _, w := range s.Workloads {
		cells = append(cells,
			scalarCell(w),
			Cell{Workload: w, Model: machine.NoBoost(), Opts: core.Options{LocalOnly: true}, Alloc: true},
			Cell{Workload: w, Model: machine.NoBoost(), Alloc: true},
			Cell{Workload: w, Model: machine.NoBoost(), Alloc: false},
		)
	}
	if err := s.prefetch(ctx, cells); err != nil {
		return nil, 0, 0, err
	}

	var rows []Figure8Row
	var bbs, gls []float64
	for _, w := range s.Workloads {
		scalar, err := s.scalarCycles(ctx, w)
		if err != nil {
			return nil, 0, 0, err
		}
		bb, err := s.measure(ctx, w, machine.NoBoost(), core.Options{LocalOnly: true}, true)
		if err != nil {
			return nil, 0, 0, err
		}
		gl, err := s.measure(ctx, w, machine.NoBoost(), core.Options{}, true)
		if err != nil {
			return nil, 0, 0, err
		}
		inf, err := s.measure(ctx, w, machine.NoBoost(), core.Options{}, false)
		if err != nil {
			return nil, 0, 0, err
		}
		row := Figure8Row{
			Name:       w.Name,
			BasicBlock: float64(scalar) / float64(bb),
			Global:     float64(scalar) / float64(gl),
			GlobalInf:  float64(scalar) / float64(inf),
		}
		rows = append(rows, row)
		bbs = append(bbs, row.BasicBlock)
		gls = append(gls, row.Global)
	}
	return rows, GeoMean(bbs), GeoMean(gls), nil
}

// FormatFigure8 renders the series the figure plots.
func FormatFigure8(rows []Figure8Row, gmBB, gmGl float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %12s %14s\n", "", "basic block", "global", "global (inf)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %11.2fx %11.2fx %13.2fx\n", r.Name, r.BasicBlock, r.Global, r.GlobalInf)
	}
	fmt.Fprintf(&b, "%-10s %11.2fx %11.2fx\n", "G.M.", gmBB, gmGl)
	return b.String()
}

// Table2Row is one row of Table 2: percentage cycle-count improvement over
// global scheduling (NoBoost, register allocated) for each boosting model.
type Table2Row struct {
	Name        string
	Improvement map[string]float64 // model name → fractional improvement
}

// Table2Models lists the evaluated models in column order.
var Table2Models = []string{"Squashing", "Boost1", "MinBoost3", "Boost7"}

// Table2 reproduces Table 2. The returned geo map holds the geometric
// means of (1 + improvement), minus 1, matching the paper's G.M. row.
func (s *Suite) Table2(ctx context.Context) ([]Table2Row, map[string]float64, error) {
	models := map[string]*machine.Model{
		"Squashing": machine.Squashing(),
		"Boost1":    machine.Boost1(),
		"MinBoost3": machine.MinBoost3(),
		"Boost7":    machine.Boost7(),
	}
	var cells []Cell
	for _, w := range s.Workloads {
		cells = append(cells, Cell{Workload: w, Model: machine.NoBoost(), Alloc: true})
		for _, name := range Table2Models {
			cells = append(cells, Cell{Workload: w, Model: models[name], Alloc: true})
		}
	}
	if err := s.prefetch(ctx, cells); err != nil {
		return nil, nil, err
	}

	ratios := map[string][]float64{}
	var rows []Table2Row
	for _, w := range s.Workloads {
		base, err := s.measure(ctx, w, machine.NoBoost(), core.Options{}, true)
		if err != nil {
			return nil, nil, err
		}
		row := Table2Row{Name: w.Name, Improvement: map[string]float64{}}
		for _, name := range Table2Models {
			c, err := s.measure(ctx, w, models[name], core.Options{}, true)
			if err != nil {
				return nil, nil, err
			}
			ratio := float64(base) / float64(c)
			row.Improvement[name] = ratio - 1
			ratios[name] = append(ratios[name], ratio)
		}
		rows = append(rows, row)
	}
	geo := map[string]float64{}
	for _, name := range Table2Models {
		geo[name] = GeoMean(ratios[name]) - 1
	}
	return rows, geo, nil
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row, geo map[string]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "")
	for _, m := range Table2Models {
		fmt.Fprintf(&b, " %10s", m)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s", r.Name)
		for _, m := range Table2Models {
			fmt.Fprintf(&b, " %9.1f%%", 100*r.Improvement[m])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-10s", "G.M.")
	for _, m := range Table2Models {
		fmt.Fprintf(&b, " %9.1f%%", 100*geo[m])
	}
	b.WriteByte('\n')
	return b.String()
}
