package experiments

import (
	"context"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"boosting/internal/sim"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean(nil); g != 0 {
		t.Errorf("empty = %f", g)
	}
	if g := GeoMean([]float64{4}); math.Abs(g-4) > 1e-12 {
		t.Errorf("single = %f", g)
	}
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GM(1,4) = %f, want 2", g)
	}
	if g := GeoMean([]float64{2, 2, 2}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GM(2,2,2) = %f", g)
	}
}

// Property: the geometric mean lies between min and max.
func TestGeoMeanBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		var vs []float64
		for _, r := range raw {
			vs = append(vs, 0.5+float64(r)/32)
		}
		if len(vs) == 0 {
			return true
		}
		g := GeoMean(vs)
		min, max := vs[0], vs[0]
		for _, v := range vs {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return g >= min-1e-9 && g <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatters(t *testing.T) {
	t1 := FormatTable1([]Table1Row{{Name: "x", Cycles: 123, IPC: 0.5, Accuracy: 0.75}})
	for _, want := range []string{"x", "123", "0.50", "75.0%"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %q:\n%s", want, t1)
		}
	}
	f8 := FormatFigure8([]Figure8Row{{Name: "x", BasicBlock: 1.1, Global: 1.2, GlobalInf: 1.3}}, 1.1, 1.2)
	for _, want := range []string{"1.10x", "1.20x", "1.30x", "G.M."} {
		if !strings.Contains(f8, want) {
			t.Errorf("Figure8 missing %q:\n%s", want, f8)
		}
	}
	t2 := FormatTable2(
		[]Table2Row{{Name: "x", Improvement: map[string]float64{
			"Squashing": 0.10, "Boost1": 0.17, "MinBoost3": 0.19, "Boost7": 0.20,
		}}},
		map[string]float64{"Squashing": 0.10, "Boost1": 0.17, "MinBoost3": 0.19, "Boost7": 0.20},
	)
	for _, want := range []string{"10.0%", "17.0%", "19.0%", "20.0%", "Squashing"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 missing %q:\n%s", want, t2)
		}
	}
	f9 := FormatFigure9([]Figure9Row{{Name: "x", MinBoost3: 1.5, MinBoost3Inf: 1.6, Dynamic: 1.4, DynamicRenamed: 1.9}}, 1.5, 1.4)
	for _, want := range []string{"1.50x", "1.40x", "1.90x"} {
		if !strings.Contains(f9, want) {
			t.Errorf("Figure9 missing %q:\n%s", want, f9)
		}
	}
}

// TestSuiteCaching: repeated measurements hit the cache (same pointer-free
// result, no recompilation blowup).
func TestSuiteCaching(t *testing.T) {
	s := NewSuite()
	ctx := context.Background()
	w := s.Workloads[4] // grep
	c1, err := s.scalarCycles(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.scalarCycles(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("cache returned different cycles: %d vs %d", c1, c2)
	}
	snap := s.Metrics()
	if snap.CacheMisses == 0 {
		t.Error("cache empty after measurement")
	}
	if snap.CacheHits == 0 {
		t.Error("repeated measurement did not hit the cache")
	}
}

// TestVerifyHelper exercises the verification failure paths.
func TestVerifyHelper(t *testing.T) {
	ref := refResultForTest([]uint32{1, 2}, 42)
	if err := verify(ref, []uint32{1, 2}, 42); err != nil {
		t.Errorf("matching run rejected: %v", err)
	}
	if err := verify(ref, []uint32{1}, 42); err == nil {
		t.Error("short output accepted")
	}
	if err := verify(ref, []uint32{1, 3}, 42); err == nil {
		t.Error("wrong output accepted")
	}
	if err := verify(ref, []uint32{1, 2}, 43); err == nil {
		t.Error("wrong memory accepted")
	}
}

// refResultForTest builds a minimal reference result.
func refResultForTest(out []uint32, memHash uint64) *sim.Result {
	return &sim.Result{Out: out, MemHash: memHash}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]string{"a", "b"}, []float64{1.5, 1.0}, []float64{2.0, 1.0}, "x")
	if !strings.Contains(out, "a") || !strings.Contains(out, "#") || !strings.Contains(out, "+") {
		t.Errorf("chart missing elements:\n%s", out)
	}
	if !strings.Contains(out, "1.50x (2.00x)") {
		t.Errorf("stacked annotation missing:\n%s", out)
	}
	// A bar at exactly 1.0 draws nothing but still labels.
	if !strings.Contains(out, "1.00x") {
		t.Errorf("flat bar missing:\n%s", out)
	}
	f8 := Figure8Chart([]Figure8Row{{Name: "x", Global: 1.2, GlobalInf: 1.4}})
	if !strings.Contains(f8, "x ") && !strings.Contains(f8, "x") {
		t.Errorf("figure 8 chart broken:\n%s", f8)
	}
	f9 := Figure9Chart([]Figure9Row{{Name: "x", MinBoost3: 1.3, MinBoost3Inf: 1.3, Dynamic: 1.1, DynamicRenamed: 1.8}})
	if !strings.Contains(f9, "x/mb3") || !strings.Contains(f9, "x/dyn") {
		t.Errorf("figure 9 chart broken:\n%s", f9)
	}
}

func TestWriteCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("full CSV grid in -short mode")
	}
	s := NewSuite()
	var buf strings.Builder
	if err := s.WriteCSV(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"experiment,benchmark,series,value",
		"table1,grep,accuracy,",
		"figure8,xlisp,global,",
		"table2,espresso,MinBoost3,",
		"figure9,awk,dynamic_renamed,",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("csv missing %q", want)
		}
	}
	lines := strings.Count(out, "\n")
	// 7 benchmarks × (3 + 3 + 4 + 4) series + header = 99.
	if lines != 99 {
		t.Errorf("csv has %d lines, want 99", lines)
	}
}
