package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits every experiment's rows as CSV for external plotting:
// one record per (experiment, benchmark, series) triple with a numeric
// value. The format is deliberately long/tidy so spreadsheet pivoting and
// plotting tools can consume it directly.
func (s *Suite) WriteCSV(ctx context.Context, w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"experiment", "benchmark", "series", "value"}); err != nil {
		return err
	}
	emit := func(exp, bench, series string, v float64) error {
		return cw.Write([]string{exp, bench, series, strconv.FormatFloat(v, 'g', 8, 64)})
	}

	t1, err := s.Table1(ctx)
	if err != nil {
		return err
	}
	for _, r := range t1 {
		if err := emit("table1", r.Name, "cycles", float64(r.Cycles)); err != nil {
			return err
		}
		if err := emit("table1", r.Name, "ipc", r.IPC); err != nil {
			return err
		}
		if err := emit("table1", r.Name, "accuracy", r.Accuracy); err != nil {
			return err
		}
	}

	f8, _, _, err := s.Figure8(ctx)
	if err != nil {
		return err
	}
	for _, r := range f8 {
		for _, sv := range []struct {
			series string
			v      float64
		}{
			{"basicblock", r.BasicBlock}, {"global", r.Global}, {"global_inf", r.GlobalInf},
		} {
			if err := emit("figure8", r.Name, sv.series, sv.v); err != nil {
				return err
			}
		}
	}

	t2, _, err := s.Table2(ctx)
	if err != nil {
		return err
	}
	for _, r := range t2 {
		for _, m := range Table2Models {
			if err := emit("table2", r.Name, m, r.Improvement[m]); err != nil {
				return err
			}
		}
	}

	f9, _, _, err := s.Figure9(ctx)
	if err != nil {
		return err
	}
	for _, r := range f9 {
		for _, sv := range []struct {
			series string
			v      float64
		}{
			{"minboost3", r.MinBoost3}, {"minboost3_inf", r.MinBoost3Inf},
			{"dynamic", r.Dynamic}, {"dynamic_renamed", r.DynamicRenamed},
		} {
			if err := emit("figure9", r.Name, sv.series, sv.v); err != nil {
				return err
			}
		}
	}

	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiments: csv: %w", err)
	}
	return nil
}
