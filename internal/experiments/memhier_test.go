package experiments

import (
	"context"
	"testing"

	"boosting/internal/workloads"
)

// TestMemHierAblation runs the memory-hierarchy ablation on a one-
// workload suite (awk — its schedules boost loads on every model) and
// checks the structural claims the full table makes: forbidding boosted
// loads eliminates squashed speculative load stalls, prefetching cuts
// MPKI and reports its accuracy, and every configuration still beats
// the scalar machine under the same hierarchy.
func TestMemHierAblation(t *testing.T) {
	ctx := context.Background()
	s := NewSuite()
	awk, err := workloads.ByName("awk")
	if err != nil {
		t.Fatal(err)
	}
	s.Workloads = []*workloads.Workload{awk}

	rows, err := s.MemHierAblation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 {
		t.Fatalf("got %d rows, want 18 (3 models × 2 load modes × 3 prefetchers)", len(rows))
	}

	byKey := map[[3]string]MemHierRow{}
	for _, r := range rows {
		loads := "boost"
		if !r.BoostLoads {
			loads = "no"
		}
		byKey[[3]string{r.Model, loads, r.Prefetch}] = r
	}
	for _, model := range []string{"Boost1", "MinBoost3", "Boost7"} {
		for _, pref := range memHierPrefetchers {
			boost, ok1 := byKey[[3]string{model, "boost", pref}]
			nobl, ok2 := byKey[[3]string{model, "no", pref}]
			if !ok1 || !ok2 {
				t.Fatalf("missing rows for %s/%s", model, pref)
			}
			if boost.Speedup <= 1 || nobl.Speedup <= 1 {
				t.Errorf("%s/%s: speedups %.2f/%.2f must beat scalar", model, pref, boost.Speedup, nobl.Speedup)
			}
			if boost.SquashedStalls == 0 {
				t.Errorf("%s/%s: boosted loads produced no squashed stalls", model, pref)
			}
			if nobl.SquashedStalls >= boost.SquashedStalls {
				t.Errorf("%s/%s: forbidding boosted loads did not cut squashed stalls: %d vs %d",
					model, pref, nobl.SquashedStalls, boost.SquashedStalls)
			}
			none := byKey[[3]string{model, "boost", "none"}]
			if pref != "none" {
				if boost.PrefAccuracy <= 0 {
					t.Errorf("%s/%s: prefetcher reports zero accuracy", model, pref)
				}
				if boost.MPKI >= none.MPKI {
					t.Errorf("%s/%s: prefetching did not cut MPKI: %.2f vs %.2f",
						model, pref, boost.MPKI, none.MPKI)
				}
			} else if boost.PrefAccuracy != 0 {
				t.Errorf("%s/none reports prefetch accuracy %.2f", model, boost.PrefAccuracy)
			}
			if boost.L1MissRate <= 0 || boost.L2MissRate <= 0 {
				t.Errorf("%s/%s: degenerate miss rates %+v", model, pref, boost)
			}
		}
	}

	out := FormatMemHier(rows)
	if len(out) == 0 {
		t.Error("FormatMemHier returned nothing")
	}
}
