package experiments

import (
	"context"
	"fmt"
	"strings"

	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/memhier"
)

// The memory-hierarchy ablation quantifies the caveat the paper leaves
// open in §4.3: boosting's speedups assume perfect memory, but boosting
// loads above branches also moves their cache misses above branches —
// a mispredicted path can stall the machine on a miss whose result is
// thrown away. The ablation crosses boost level (Boost1 / MinBoost3 /
// Boost7) with boosted loads allowed or forbidden
// (core.Options.NoBoostedLoads) and with the hardware prefetcher
// (none / stride / stream), all over one finite hierarchy, and reports
// speedup over the scalar machine *under the same hierarchy*, MPKI,
// per-level miss rates, prefetch accuracy, and the cycles lost to
// speculative misses that were later squashed.

// AblationMemConfig is the hierarchy the ablation runs on: the stock
// configuration with the L1 shrunk to 1 KiB direct-mapped so the
// benchmark kernels' working sets actually miss (on the 8 KiB default
// every boosted load of the suite hits).
func AblationMemConfig(prefetch string) memhier.Config {
	cfg := memhier.Default()
	cfg.L1 = memhier.CacheConfig{Sets: 64, Ways: 1, LineBytes: 16}
	cfg.Prefetch = prefetch
	return cfg
}

// MemHierRow is one configuration of the memory-hierarchy ablation,
// aggregated over the benchmark set: speedup is the geometric mean over
// workloads, the counters are summed before the ratios are taken.
type MemHierRow struct {
	Model      string // Boost1, MinBoost3, Boost7
	BoostLoads bool   // false = scheduled with NoBoostedLoads
	Prefetch   string // none, stride, stream

	// Speedup is the geomean speedup over the scalar machine with the
	// identical hierarchy in front of it.
	Speedup float64
	// MPKI is L1 misses per thousand executed instructions.
	MPKI float64
	// L1MissRate and L2MissRate are per-level miss ratios.
	L1MissRate float64
	L2MissRate float64
	// PrefAccuracy is useful prefetches over issued (0 with Prefetch
	// "none").
	PrefAccuracy float64
	// SquashedStalls is the total cycles the machines spent stalled on
	// speculative misses whose work was later squashed — pure loss, the
	// cost forbidding boosted loads eliminates by construction.
	SquashedStalls int64
}

// memHierPrefetchers lists the prefetcher axis of the ablation.
var memHierPrefetchers = []string{"none", "stride", "stream"}

// memHierModels lists the boost-level axis.
func memHierModels() []*machine.Model {
	return []*machine.Model{machine.Boost1(), machine.MinBoost3(), machine.Boost7()}
}

// MemHierAblation measures the full (model × boosted-loads × prefetcher)
// grid over the benchmark set. Rows come back model-major, boosted
// loads before forbidden, prefetchers in none/stride/stream order.
func (s *Suite) MemHierAblation(ctx context.Context) ([]MemHierRow, error) {
	models := memHierModels()

	// Warm the store in parallel. The prefetcher axis only varies the
	// execution-side memory hierarchy, so each (model, nobl, workload) cell
	// schedules once and runs all prefetchers as lockstep batch lanes; the
	// scalar baseline per workload batches the same way.
	type job struct {
		model *machine.Model
		opts  core.Options
	}
	jobs := []job{{machine.Scalar(), core.Options{LocalOnly: true}}}
	for _, m := range models {
		jobs = append(jobs, job{m, core.Options{}})
		jobs = append(jobs, job{m, core.Options{NoBoostedLoads: true}})
	}
	mcfgs := make([]memhier.Config, len(memHierPrefetchers))
	for i, pref := range memHierPrefetchers {
		mcfgs[i] = AblationMemConfig(pref)
	}
	nw := len(s.Workloads)
	if err := ForEachLimited(ctx, len(jobs)*nw, s.Runner.workers(), func(ctx context.Context, i int) error {
		j, w := jobs[i/nw], s.Workloads[i%nw]
		_, err := s.Store.measureMemBatch(ctx, w, j.model, j.opts, mcfgs)
		return err
	}); err != nil {
		return nil, err
	}

	var rows []MemHierRow
	for _, m := range models {
		for _, boostLoads := range []bool{true, false} {
			opts := core.Options{NoBoostedLoads: !boostLoads}
			for _, pref := range memHierPrefetchers {
				mcfg := AblationMemConfig(pref)
				row := MemHierRow{Model: m.Name, BoostLoads: boostLoads, Prefetch: pref}
				var speedups []float64
				agg := memhier.Stats{}
				var insts int64
				for _, w := range s.Workloads {
					scalar, err := s.Store.measureMem(ctx, w, machine.Scalar(),
						core.Options{LocalOnly: true}, mcfg)
					if err != nil {
						return nil, err
					}
					res, err := s.Store.measureMem(ctx, w, m, opts, mcfg)
					if err != nil {
						return nil, err
					}
					speedups = append(speedups, float64(scalar.Cycles)/float64(res.Cycles))
					agg.L1Misses += res.Mem.L1Misses
					agg.Accesses += res.Mem.Accesses
					agg.L2Hits += res.Mem.L2Hits
					agg.L2Misses += res.Mem.L2Misses
					agg.PrefIssued += res.Mem.PrefIssued
					agg.PrefUseful += res.Mem.PrefUseful
					insts += res.Insts
					row.SquashedStalls += res.SquashedMemStalls
				}
				row.Speedup = GeoMean(speedups)
				row.MPKI = 1000 * float64(agg.L1Misses) / float64(insts)
				row.L1MissRate = float64(agg.L1Misses) / float64(agg.Accesses)
				if l2 := agg.L2Hits + agg.L2Misses; l2 > 0 {
					row.L2MissRate = float64(agg.L2Misses) / float64(l2)
				}
				row.PrefAccuracy = agg.PrefetchAccuracy()
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// FormatMemHier renders the ablation grid.
func FormatMemHier(rows []MemHierRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-7s %-7s %8s %7s %7s %7s %8s %10s\n",
		"", "loads", "pref", "speedup", "MPKI", "L1miss", "L2miss", "prefacc", "squashed")
	for _, r := range rows {
		loads := "boost"
		if !r.BoostLoads {
			loads = "no"
		}
		fmt.Fprintf(&b, "%-10s %-7s %-7s %7.2fx %7.2f %6.1f%% %6.1f%% %7.2f %10d\n",
			r.Model, loads, r.Prefetch, r.Speedup, r.MPKI,
			100*r.L1MissRate, 100*r.L2MissRate, r.PrefAccuracy, r.SquashedStalls)
	}
	return b.String()
}
