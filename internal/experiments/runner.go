package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/workloads"
)

// Cell is one point of the evaluation grid: a workload on a machine
// configuration. Static cells name a machine model plus scheduler
// options; dynamic cells run the dynamically-scheduled comparison machine
// instead (Model and Opts are ignored for those).
type Cell struct {
	Workload *workloads.Workload
	Model    *machine.Model
	Opts     core.Options
	// Alloc selects the register-allocated pipeline (false = the paper's
	// infinite-register model). Dynamic runs always use allocated code.
	Alloc bool
	// Dynamic selects the dynamically-scheduled machine; Renaming enables
	// its register renaming.
	Dynamic  bool
	Renaming bool
}

// String renders the cell for logs and error messages.
func (c Cell) String() string {
	if c.Dynamic {
		return fmt.Sprintf("%s/dynamic(renaming=%v)", c.Workload.Name, c.Renaming)
	}
	return fmt.Sprintf("%s/%s(%s;alloc=%v)", c.Workload.Name, c.Model.Name, okey(c.Opts), c.Alloc)
}

// CellResult pairs a grid cell with its verified cycle count.
type CellResult struct {
	Cell   Cell
	Cycles int64
}

// Runner executes evaluation grids concurrently over a shared Store.
// Results are deterministic: every artifact is memoized with singleflight
// semantics and each cell's measurement is independent of scheduling
// order, so a grid run at Parallelism 1 and at Parallelism N return
// identical results.
type Runner struct {
	Store *Store
	// Parallelism bounds concurrent cells; <= 0 means GOMAXPROCS.
	Parallelism int
}

func (r *Runner) workers() int {
	if r.Parallelism > 0 {
		return r.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Run measures every cell of the grid, in parallel up to the runner's
// parallelism, and returns the results in cell order. The first cell
// error cancels the remaining work; a cancelled or expired ctx aborts
// promptly with an error wrapping the context's error.
func (r *Runner) Run(ctx context.Context, cells []Cell) ([]CellResult, error) {
	results := make([]CellResult, len(cells))
	err := ForEachLimited(ctx, len(cells), r.workers(), func(ctx context.Context, i int) error {
		cycles, err := r.measureCell(ctx, cells[i])
		if err != nil {
			return fmt.Errorf("%s: %w", cells[i], err)
		}
		results[i] = CellResult{Cell: cells[i], Cycles: cycles}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

func (r *Runner) measureCell(ctx context.Context, c Cell) (int64, error) {
	if c.Dynamic {
		return r.Store.dynMeasure(ctx, c.Workload, c.Renaming, false)
	}
	return r.Store.measure(ctx, c.Workload, c.Model, c.Opts, c.Alloc)
}

// ForEachLimited runs fn(ctx, i) for i in [0, n) on up to parallelism
// worker goroutines — the experiment harness's worker pool, exported so
// other grid-shaped consumers (the boostd service's /v1/grid fan-out)
// reuse one scheduling policy. On the first error the remaining work is
// cancelled and the error of the lowest-indexed failing task is returned
// (so errors are as deterministic as the tasks themselves); if ctx was
// cancelled from outside, the returned error wraps the context error.
func ForEachLimited(ctx context.Context, n, parallelism int, fn func(ctx context.Context, i int) error) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism < 1 {
		parallelism = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				if err := fn(ctx, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		// Prefer a real failure over knock-on cancellations.
		if !errors.Is(first, context.Canceled) && !errors.Is(first, context.DeadlineExceeded) {
			break
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			first = err
			break
		}
	}
	if first == nil {
		return nil
	}
	if errors.Is(first, context.Canceled) || errors.Is(first, context.DeadlineExceeded) {
		return fmt.Errorf("experiments: grid aborted: %w", first)
	}
	return first
}
