package experiments

import (
	"context"

	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/memhier"
	"boosting/internal/workloads"
)

// DynPrescheduled measures the paper's §4.3.2 suggestion: "We believe
// that we can improve the performance of the dynamic scheduler by using
// our global scheduling algorithm (without boosting) to preschedule the
// code." It feeds the dynamic machine the instruction order produced by
// the NoBoost global scheduler (whose output is plain, sequentially
// executable code) instead of the original program order.
func (s *Suite) DynPrescheduled(ctx context.Context, w *workloads.Workload, renaming bool) (int64, error) {
	return s.Store.dynMeasure(ctx, w, renaming, true)
}

// UnrolledCycles measures MinBoost3 on workloads whose innermost loops
// were unrolled ×2 before compilation (the paper's loop-unroller
// experiment).
func (s *Suite) UnrolledCycles(ctx context.Context, w *workloads.Workload) (int64, error) {
	return s.Store.unrolled(ctx, w)
}

// MeasureModel runs the standard pipeline (register allocation before
// scheduling) for one workload on one model and returns verified cycles.
func (s *Suite) MeasureModel(ctx context.Context, w *workloads.Workload, model *machine.Model) (int64, error) {
	return s.measure(ctx, w, model, core.Options{}, true)
}

// DynCycles exposes the dynamic-scheduler measurement used by Figure 9.
func (s *Suite) DynCycles(ctx context.Context, w *workloads.Workload, renaming bool) (int64, error) {
	return s.dynCycles(ctx, w, renaming)
}

// ScalarCycles exposes the R2000 baseline measurement.
func (s *Suite) ScalarCycles(ctx context.Context, w *workloads.Workload) (int64, error) {
	return s.scalarCycles(ctx, w)
}

// CacheSpeedups measures the memory-system caveat the paper states in
// §4.3 ("the true speedup ... is dependent upon the effectiveness of the
// memory system"): speedups of MinBoost3 over the scalar machine with a
// finite data cache on both, versus the paper's perfect memory.
func (s *Suite) CacheSpeedups(ctx context.Context, w *workloads.Workload) (perfect, cached float64, err error) {
	scalarPerfect, err := s.scalarCycles(ctx, w)
	if err != nil {
		return 0, 0, err
	}
	boostPerfect, err := s.measure(ctx, w, machine.MinBoost3(), core.Options{}, true)
	if err != nil {
		return 0, 0, err
	}
	// The historical single-level extension cache: 8KiB direct-mapped,
	// 16-byte lines, 12-cycle blocking miss (memhier.SingleLevel
	// reproduces its timing exactly).
	mcfg := memhier.SingleLevel(512, 1, 16, 12)
	scalarCached, err := s.Store.measureMem(ctx, w, machine.Scalar(), core.Options{LocalOnly: true}, mcfg)
	if err != nil {
		return 0, 0, err
	}
	boostCached, err := s.Store.measureMem(ctx, w, machine.MinBoost3(), core.Options{}, mcfg)
	if err != nil {
		return 0, 0, err
	}
	return float64(scalarPerfect) / float64(boostPerfect),
		float64(scalarCached.Cycles) / float64(boostCached.Cycles), nil
}
