package experiments

import (
	"fmt"

	"boosting/internal/cache"
	"boosting/internal/core"
	"boosting/internal/dynsched"
	"boosting/internal/machine"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/regalloc"
	"boosting/internal/sim"
	"boosting/internal/unroll"
	"boosting/internal/workloads"
)

// DynPrescheduled measures the paper's §4.3.2 suggestion: "We believe
// that we can improve the performance of the dynamic scheduler by using
// our global scheduling algorithm (without boosting) to preschedule the
// code." It feeds the dynamic machine the instruction order produced by
// the NoBoost global scheduler (whose output is plain, sequentially
// executable code) instead of the original program order.
func (s *Suite) DynPrescheduled(w *workloads.Workload, renaming bool) (int64, error) {
	key := fmt.Sprintf("%s/dynpre/ren=%v", w.Name, renaming)
	if c, ok := s.cycles[key]; ok {
		return c, nil
	}
	test, err := s.buildPair(w, true)
	if err != nil {
		return 0, err
	}
	// Global scheduling without boosting rewrites every block's
	// instruction list into schedule order and adds compensation blocks;
	// the result is an ordinary sequential program.
	if _, err := core.Schedule(test, machine.NoBoost(), core.Options{}); err != nil {
		return 0, err
	}
	cfg := dynsched.Default()
	cfg.Renaming = renaming
	res, err := dynsched.Simulate(test, cfg)
	if err != nil {
		return 0, err
	}
	ref, err := s.reference(w, true)
	if err != nil {
		return 0, err
	}
	if err := verify(ref, res.Out, res.MemHash); err != nil {
		return 0, fmt.Errorf("%s prescheduled dynamic: %w", w.Name, err)
	}
	s.cycles[key] = res.Cycles
	return res.Cycles, nil
}

// UnrolledCycles measures MinBoost3 on workloads whose innermost loops
// were unrolled ×2 before compilation (the paper's loop-unroller
// experiment).
func (s *Suite) UnrolledCycles(w *workloads.Workload) (int64, error) {
	key := w.Name + "/unrolled"
	if c, ok := s.cycles[key]; ok {
		return c, nil
	}
	train := w.BuildTrain()
	test := w.BuildTest()
	if _, err := unroll.Program(train, unroll.Options{}); err != nil {
		return 0, err
	}
	if _, err := unroll.Program(test, unroll.Options{}); err != nil {
		return 0, err
	}
	c, err := s.measurePrepared(w, train, test, machine.MinBoost3())
	if err != nil {
		return 0, err
	}
	s.cycles[key] = c
	return c, nil
}

// MeasureModel runs the standard pipeline (register allocation before
// scheduling) for one workload on one model and returns verified cycles.
func (s *Suite) MeasureModel(w *workloads.Workload, model *machine.Model) (int64, error) {
	return s.measure(w, model, core.Options{}, true)
}

// DynCycles exposes the dynamic-scheduler measurement used by Figure 9.
func (s *Suite) DynCycles(w *workloads.Workload, renaming bool) (int64, error) {
	return s.dynCycles(w, renaming)
}

// ScalarCycles exposes the R2000 baseline measurement.
func (s *Suite) ScalarCycles(w *workloads.Workload) (int64, error) {
	return s.scalarCycles(w)
}

// measurePrepared finishes the pipeline (register allocation, profiling,
// scheduling, verified execution) on already-transformed train/test
// programs.
func (s *Suite) measurePrepared(w *workloads.Workload, train, test *prog.Program, model *machine.Model) (int64, error) {
	if _, err := regalloc.Allocate(train); err != nil {
		return 0, err
	}
	if _, err := regalloc.Allocate(test); err != nil {
		return 0, err
	}
	if err := profile.Annotate(train); err != nil {
		return 0, err
	}
	if err := profile.Transfer(train, test); err != nil {
		return 0, err
	}
	sp, err := core.Schedule(test, model, core.Options{})
	if err != nil {
		return 0, err
	}
	res, err := sim.Exec(sp, sim.ExecConfig{})
	if err != nil {
		return 0, err
	}
	ref, err := s.reference(w, true)
	if err != nil {
		return 0, err
	}
	if err := verify(ref, res.Out, res.MemHash); err != nil {
		return 0, fmt.Errorf("%s unrolled: %w", w.Name, err)
	}
	return res.Cycles, nil
}

// CacheSpeedups measures the memory-system caveat the paper states in
// §4.3 ("the true speedup ... is dependent upon the effectiveness of the
// memory system"): speedups of MinBoost3 over the scalar machine with a
// finite data cache on both, versus the paper's perfect memory.
func (s *Suite) CacheSpeedups(w *workloads.Workload) (perfect, cached float64, err error) {
	scalarPerfect, err := s.scalarCycles(w)
	if err != nil {
		return 0, 0, err
	}
	boostPerfect, err := s.measure(w, machine.MinBoost3(), core.Options{}, true)
	if err != nil {
		return 0, 0, err
	}

	run := func(model *machine.Model, opts core.Options) (int64, error) {
		test, err := s.buildPair(w, true)
		if err != nil {
			return 0, err
		}
		sp, err := core.Schedule(test, model, opts)
		if err != nil {
			return 0, err
		}
		dc, err := cache.New(cache.DefaultData())
		if err != nil {
			return 0, err
		}
		res, err := sim.Exec(sp, sim.ExecConfig{DataCache: dc})
		if err != nil {
			return 0, err
		}
		ref, err := s.reference(w, true)
		if err != nil {
			return 0, err
		}
		if err := verify(ref, res.Out, res.MemHash); err != nil {
			return 0, fmt.Errorf("%s with cache: %w", w.Name, err)
		}
		return res.Cycles, nil
	}
	scalarCached, err := run(machine.Scalar(), core.Options{LocalOnly: true})
	if err != nil {
		return 0, 0, err
	}
	boostCached, err := run(machine.MinBoost3(), core.Options{})
	if err != nil {
		return 0, 0, err
	}
	return float64(scalarPerfect) / float64(boostPerfect),
		float64(scalarCached) / float64(boostCached), nil
}
