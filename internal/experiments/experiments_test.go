package experiments

import (
	"context"
	"testing"
)

// TestReproduceAll regenerates every table and figure and checks the
// paper's qualitative findings (the "shape" criteria from DESIGN.md).
func TestReproduceAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment grid in -short mode")
	}
	s := NewSuite()
	ctx := context.Background()

	// ---- Table 1 ----
	t1, err := s.Table1(ctx)
	if err != nil {
		t.Fatalf("Table 1: %v", err)
	}
	t.Logf("Table 1:\n%s", FormatTable1(t1))
	for _, r := range t1 {
		if r.IPC <= 0.5 || r.IPC > 1.0 {
			t.Errorf("Table 1 %s: scalar IPC %.2f outside the R2000 band (0.5, 1.0]", r.Name, r.IPC)
		}
		if r.Accuracy < 0.6 || r.Accuracy > 1.0 {
			t.Errorf("Table 1 %s: accuracy %.3f implausible", r.Name, r.Accuracy)
		}
	}

	// ---- Figure 8 ----
	f8, gmBB, gmGl, err := s.Figure8(ctx)
	if err != nil {
		t.Fatalf("Figure 8: %v", err)
	}
	t.Logf("Figure 8:\n%s", FormatFigure8(f8, gmBB, gmGl))
	if gmGl <= gmBB {
		t.Errorf("Figure 8: global scheduling (%.3f) must beat basic-block scheduling (%.3f)", gmGl, gmBB)
	}
	if gmBB < 1.0 {
		t.Errorf("Figure 8: basic-block speedup %.3f below 1; dual issue should never lose", gmBB)
	}
	var infRatios []float64
	for _, r := range f8 {
		if r.GlobalInf+1e-9 < r.Global {
			t.Errorf("Figure 8 %s: infinite-register bar (%.3f) below allocated bar (%.3f)",
				r.Name, r.GlobalInf, r.Global)
		}
		infRatios = append(infRatios, r.GlobalInf/r.Global)
	}
	infGain := GeoMean(infRatios) - 1

	// ---- Table 2 ----
	t2, geo, err := s.Table2(ctx)
	if err != nil {
		t.Fatalf("Table 2: %v", err)
	}
	t.Logf("Table 2:\n%s", FormatTable2(t2, geo))
	if geo["Squashing"] <= 0 {
		t.Errorf("Table 2: Squashing improvement %.3f should be positive", geo["Squashing"])
	}
	if geo["Boost1"] < geo["Squashing"] {
		t.Errorf("Table 2: Boost1 (%.3f) must beat Squashing (%.3f)", geo["Boost1"], geo["Squashing"])
	}
	if geo["MinBoost3"] < geo["Boost1"]-0.02 {
		t.Errorf("Table 2: MinBoost3 (%.3f) far below Boost1 (%.3f)", geo["MinBoost3"], geo["Boost1"])
	}
	if geo["Boost7"]+1e-9 < geo["MinBoost3"] {
		t.Errorf("Table 2: Boost7 (%.3f) must not lose to MinBoost3 (%.3f)", geo["Boost7"], geo["MinBoost3"])
	}
	// The paper's §4.3.2 software-vs-hardware claim: "hardware support for
	// unsafe speculative code motions improves machine performance beyond
	// the best performance of the pure software schemes" — the
	// infinite-register gain must be smaller than Boost1's gain.
	if infGain >= geo["Boost1"] {
		t.Errorf("infinite registers (+%.3f) should gain less than Boost1 (+%.3f)",
			infGain, geo["Boost1"])
	}

	// Diminishing returns at the deep end: the paper's conclusion is that
	// Boost7's "amount of extra hardware does little to improve
	// performance" over the minimal schemes — its increment over
	// MinBoost3 must be small compared with the gains the cheap schemes
	// already deliver.
	if geo["Boost7"]-geo["MinBoost3"] > 0.5*geo["MinBoost3"] {
		t.Errorf("Table 2: Boost7's step over MinBoost3 (%.3f) is not marginal (MinBoost3 %.3f)",
			geo["Boost7"]-geo["MinBoost3"], geo["MinBoost3"])
	}

	// ---- Figure 9 ----
	f9, gmMB3, gmDyn, err := s.Figure9(ctx)
	if err != nil {
		t.Fatalf("Figure 9: %v", err)
	}
	t.Logf("Figure 9:\n%s", FormatFigure9(f9, gmMB3, gmDyn))
	// The paper's headline: the minimal static machine reaches the
	// performance of the much more complex dynamic machine (both ≈1.5x).
	if gmMB3 < 0.9*gmDyn {
		t.Errorf("Figure 9: MinBoost3 (%.3fx) falls well short of the dynamic scheduler (%.3fx)",
			gmMB3, gmDyn)
	}

	// ---- Exception costs (§2.3) ----
	ec, err := s.ExceptionCostsReport(ctx)
	if err != nil {
		t.Fatalf("exception costs: %v", err)
	}
	for name, g := range ec.Growth {
		if g >= 2.0 {
			t.Errorf("object growth for %s is %.2f; paper promises < 2x", name, g)
		}
	}
	t.Logf("object growth under MinBoost3: %v (handler overhead %d cycles)", ec.Growth, ec.HandlerOverhead)
}
