package experiments

import (
	"context"
	"testing"

	"boosting/internal/machine"
	"boosting/internal/workloads"
)

// TestExtensionsSmoke exercises the extension measurements end to end on
// one workload each (the full-set versions run as benchmarks).
func TestExtensionsSmoke(t *testing.T) {
	s := NewSuite()
	ctx := context.Background()
	grep := s.Workloads[4]
	if grep.Name != "grep" {
		t.Fatal("workload order changed")
	}

	plain, err := s.DynCycles(ctx, grep, false)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := s.DynPrescheduled(ctx, grep, false)
	if err != nil {
		t.Fatal(err)
	}
	if pre <= 0 || plain <= 0 {
		t.Fatalf("cycles %d/%d", plain, pre)
	}
	// Prescheduling reorders but never changes semantics (verified inside)
	// and should not catastrophically hurt.
	if float64(pre) > 1.5*float64(plain) {
		t.Errorf("prescheduled dynamic run implausibly slow: %d vs %d", pre, plain)
	}

	unrolled, err := s.UnrolledCycles(ctx, grep)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.MeasureModel(ctx, grep, machine.MinBoost3())
	if err != nil {
		t.Fatal(err)
	}
	if unrolled <= 0 || unrolled > base {
		t.Errorf("unrolling grep should not slow it down: %d vs %d", unrolled, base)
	}

	perfect, cached, err := s.CacheSpeedups(ctx, grep)
	if err != nil {
		t.Fatal(err)
	}
	if cached > perfect {
		t.Errorf("a finite cache cannot improve the speedup ratio here: %.3f vs %.3f", cached, perfect)
	}
	if perfect <= 1 {
		t.Errorf("MinBoost3 must beat scalar on grep: %.3f", perfect)
	}

	// Cached results must be stable.
	again, err := s.DynPrescheduled(ctx, grep, false)
	if err != nil || again != pre {
		t.Errorf("cache instability: %d vs %d (%v)", again, pre, err)
	}
}

// TestConclusionStableAcrossInputs re-runs the central comparison (boosted
// vs base superscalar) on a different-seed/different-size input pair for
// one workload, checking the paper's conclusions are not artifacts of the
// particular dataset.
func TestConclusionStableAcrossInputs(t *testing.T) {
	for _, in := range []workloads.Input{
		{Seed: 1234, Size: 6000},
		{Seed: 9876, Size: 18000},
	} {
		w := &workloads.Workload{
			Name:  "grep",
			Build: workloads.Grep().Build,
			Train: workloads.Input{Seed: in.Seed + 1, Size: in.Size / 2},
			Test:  in,
		}
		ctx := context.Background()
		s := NewSuite()
		s.Workloads = []*workloads.Workload{w}
		base, err := s.MeasureModel(ctx, w, machine.NoBoost())
		if err != nil {
			t.Fatal(err)
		}
		boosted, err := s.MeasureModel(ctx, w, machine.MinBoost3())
		if err != nil {
			t.Fatal(err)
		}
		if boosted >= base {
			t.Errorf("input %+v: boosting (%d) failed to beat global scheduling (%d)",
				in, boosted, base)
		}
	}
}
