package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"boosting/internal/cache"
	"boosting/internal/core"
	"boosting/internal/dynsched"
	"boosting/internal/machine"
	"boosting/internal/memhier"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/regalloc"
	"boosting/internal/sim"
	"boosting/internal/unroll"
	"boosting/internal/workloads"
)

// Store is the concurrency-safe artifact store behind the experiment
// harness. Every expensive pipeline product — built train/test program
// pairs, reference-interpreter runs, prediction accuracies, machine
// schedules' measurements — is memoized with singleflight deduplication,
// so grid cells running in parallel never rebuild the same artifact and
// repeated table/figure generation reuses all shared work.
//
// Keying scheme (see docs/PIPELINE.md): artifacts are keyed by the full
// identity of everything that can change their value — workload name plus
// train/test inputs, register-allocation mode, machine-model name, and
// every scheduler ablation flag (LocalOnly, DisableEquivalence,
// NoDisambiguation, MaxTraceBlocks). Machine-model names are assumed to
// identify their configuration, as they do for every model constructor in
// internal/machine.
//
// Programs returned by pair are canonical master copies: they are shared
// between callers and must never be mutated. The scheduler mutates its
// input, so every schedule runs on a prog.Clone of the master (verified
// to produce bit-identical schedules to a fresh build).
type Store struct {
	// Engine selects the machine-simulator core for every measurement
	// (default sim.EngineFast). The engines are verified byte-identical,
	// so it is deliberately absent from the memo keys: a store configured
	// for one engine produces the same numbers as the other.
	Engine sim.Engine

	pairs  *cache.Memo[*prog.Program]
	refs   *cache.Memo[*sim.Result]
	acc    *cache.Memo[float64]
	cycles *cache.Memo[int64]
	execs  *cache.Memo[*sim.ExecResult]
	growth *cache.Memo[float64]

	metrics Metrics
}

// NewStore returns an empty artifact store.
func NewStore() *Store {
	return &Store{
		pairs:  cache.NewMemo[*prog.Program](),
		refs:   cache.NewMemo[*sim.Result](),
		acc:    cache.NewMemo[float64](),
		cycles: cache.NewMemo[int64](),
		execs:  cache.NewMemo[*sim.ExecResult](),
		growth: cache.NewMemo[float64](),
	}
}

// Metrics returns a snapshot of the per-stage counters with the artifact
// cache hit/miss totals folded in.
func (st *Store) Metrics() Snapshot {
	s := st.metrics.snapshot()
	for _, m := range []interface{ Stats() (int64, int64) }{
		st.pairs, st.refs, st.acc, st.cycles, st.execs, st.growth,
	} {
		h, miss := m.Stats()
		s.CacheHits += h
		s.CacheMisses += miss
	}
	return s
}

// wkey identifies a workload by name and by its train/test inputs, so
// custom workloads reusing a builder under the same name (different
// seeds/sizes) never collide in one store.
func wkey(w *workloads.Workload) string {
	return fmt.Sprintf("%s;train=%d:%d;test=%d:%d",
		w.Name, w.Train.Seed, w.Train.Size, w.Test.Seed, w.Test.Size)
}

// okey spells out every ablation flag of a scheduler configuration.
func okey(opts core.Options) string {
	return fmt.Sprintf("local=%v;noeq=%v;nodis=%v;nobl=%v;trace=%d",
		opts.LocalOnly, opts.DisableEquivalence, opts.NoDisambiguation,
		opts.NoBoostedLoads, opts.MaxTraceBlocks)
}

// pair returns the memoized built test program for the workload: train
// and test built, optionally register-allocated, predictions transferred
// from the training profile. The returned program is shared — clone
// before mutating.
func (st *Store) pair(ctx context.Context, w *workloads.Workload, alloc bool) (*prog.Program, error) {
	key := fmt.Sprintf("pair|%s|alloc=%v", wkey(w), alloc)
	return st.pairs.Do(ctx, key, func() (*prog.Program, error) {
		start := time.Now()
		train := w.BuildTrain()
		test := w.BuildTest()
		if alloc {
			if _, err := regalloc.Allocate(train); err != nil {
				return nil, fmt.Errorf("%s: regalloc train: %w", w.Name, err)
			}
			if _, err := regalloc.Allocate(test); err != nil {
				return nil, fmt.Errorf("%s: regalloc test: %w", w.Name, err)
			}
		}
		if err := profile.Annotate(train); err != nil {
			return nil, fmt.Errorf("%s: profile: %w", w.Name, err)
		}
		if err := profile.Transfer(train, test); err != nil {
			return nil, fmt.Errorf("%s: transfer: %w", w.Name, err)
		}
		st.metrics.recordBuild(time.Since(start))
		return test, nil
	})
}

// checkout returns a private, mutation-safe clone of the built pair.
func (st *Store) checkout(ctx context.Context, w *workloads.Workload, alloc bool) (*prog.Program, error) {
	master, err := st.pair(ctx, w, alloc)
	if err != nil {
		return nil, err
	}
	return prog.Clone(master), nil
}

// reference returns (cached) reference-interpreter results for the test
// input.
func (st *Store) reference(ctx context.Context, w *workloads.Workload, alloc bool) (*sim.Result, error) {
	key := fmt.Sprintf("ref|%s|alloc=%v", wkey(w), alloc)
	return st.refs.Do(ctx, key, func() (*sim.Result, error) {
		test, err := st.pair(ctx, w, alloc)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		r, err := sim.Run(test, sim.RefConfig{})
		if err != nil {
			return nil, fmt.Errorf("%s: reference: %w", w.Name, err)
		}
		st.metrics.recordRef(time.Since(start))
		return r, nil
	})
}

// accuracy measures the static predictor on the test input (cached).
func (st *Store) accuracyOf(ctx context.Context, w *workloads.Workload) (float64, error) {
	key := "acc|" + wkey(w)
	return st.acc.Do(ctx, key, func() (float64, error) {
		test, err := st.pair(ctx, w, true)
		if err != nil {
			return 0, err
		}
		return profile.Accuracy(test)
	})
}

// scheduleAndExec clones the built pair, schedules it for the model and
// executes it on the machine simulator, verifying against the reference
// run before returning. mem, when non-nil, plugs a finite memory
// hierarchy into the timing model.
func (st *Store) scheduleAndExec(ctx context.Context, w *workloads.Workload, model *machine.Model,
	opts core.Options, alloc bool, mem *memhier.Config) (*sim.ExecResult, error) {
	ref, err := st.reference(ctx, w, alloc)
	if err != nil {
		return nil, err
	}
	test, err := st.checkout(ctx, w, alloc)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	sp, cst, err := core.ScheduleWithStats(test, model, opts)
	if err != nil {
		return nil, fmt.Errorf("%s on %s: %w", w.Name, model.Name, err)
	}
	st.metrics.recordSchedule(time.Since(start), cst)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := sim.ExecConfig{Engine: st.Engine, Mem: mem}
	start = time.Now()
	res, err := sim.Exec(sp, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s on %s: exec: %w", w.Name, model.Name, err)
	}
	st.metrics.recordSim(time.Since(start), res.Cycles, res.BoostedExec, res.Squashed)
	if err := verify(ref, res.Out, res.MemHash); err != nil {
		return nil, fmt.Errorf("%s on %s: %w", w.Name, model.Name, err)
	}
	return res, nil
}

// measure compiles the workload for the model/options and returns
// verified cycle counts (cached under the full ablation key).
func (st *Store) measure(ctx context.Context, w *workloads.Workload, model *machine.Model,
	opts core.Options, alloc bool) (int64, error) {
	key := fmt.Sprintf("cyc|%s|model=%s|%s|alloc=%v", wkey(w), model.Name, okey(opts), alloc)
	return st.cycles.Do(ctx, key, func() (int64, error) {
		res, err := st.scheduleAndExec(ctx, w, model, opts, alloc, nil)
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	})
}

// measureMem is measure with a finite memory hierarchy in the timing
// model; it returns the full execution result so callers can read miss
// rates, prefetch counters and squashed-stall accounting. The returned
// result is shared — callers must not mutate it.
func (st *Store) measureMem(ctx context.Context, w *workloads.Workload, model *machine.Model,
	opts core.Options, mcfg memhier.Config) (*sim.ExecResult, error) {
	key := fmt.Sprintf("mem|%s|model=%s|%s|alloc=true|mem=%s",
		wkey(w), model.Name, okey(opts), mcfg.Key())
	return st.execs.Do(ctx, key, func() (*sim.ExecResult, error) {
		return st.scheduleAndExec(ctx, w, model, opts, true, &mcfg)
	})
}

// measureMemBatch measures one (workload, model, options) schedule under
// several memory hierarchies in a single lockstep pass: the program is
// scheduled and predecoded once and every hierarchy runs as one
// sim.ExecBatch lane. Each lane's verified result enters the memo under
// the same key measureMem uses, so mixed batch/solo access patterns share
// one measurement. The returned results are shared — do not mutate.
func (st *Store) measureMemBatch(ctx context.Context, w *workloads.Workload, model *machine.Model,
	opts core.Options, mcfgs []memhier.Config) ([]*sim.ExecResult, error) {
	keys := make([]string, len(mcfgs))
	for i, mcfg := range mcfgs {
		keys[i] = fmt.Sprintf("mem|%s|model=%s|%s|alloc=true|mem=%s",
			wkey(w), model.Name, okey(opts), mcfg.Key())
	}
	// The batch body runs at most once, on the first memo miss; lanes whose
	// keys are already cached are answered from the memo without executing.
	var (
		once     sync.Once
		batch    []*sim.ExecResult
		batchErr []error
	)
	run := func() {
		batchErr = make([]error, len(mcfgs))
		ref, err := st.reference(ctx, w, true)
		if err == nil && ctx.Err() != nil {
			err = ctx.Err()
		}
		var sp *machine.SchedProgram
		if err == nil {
			var test *prog.Program
			if test, err = st.checkout(ctx, w, true); err == nil {
				start := time.Now()
				var cst *core.Stats
				sp, cst, err = core.ScheduleWithStats(test, model, opts)
				if err != nil {
					err = fmt.Errorf("%s on %s: %w", w.Name, model.Name, err)
				} else {
					st.metrics.recordSchedule(time.Since(start), cst)
				}
			}
		}
		if err != nil {
			for i := range batchErr {
				batchErr[i] = err
			}
			return
		}
		cfgs := make([]sim.ExecConfig, len(mcfgs))
		for i := range mcfgs {
			cfgs[i] = sim.ExecConfig{Engine: st.Engine, Mem: &mcfgs[i]}
		}
		start := time.Now()
		results, errs := sim.ExecBatch(sp, cfgs)
		batch = results
		for i, res := range results {
			if errs[i] != nil {
				batchErr[i] = fmt.Errorf("%s on %s: exec: %w", w.Name, model.Name, errs[i])
				continue
			}
			st.metrics.recordSim(time.Since(start), res.Cycles, res.BoostedExec, res.Squashed)
			if verr := verify(ref, res.Out, res.MemHash); verr != nil {
				batchErr[i] = fmt.Errorf("%s on %s: %w", w.Name, model.Name, verr)
			}
		}
	}
	out := make([]*sim.ExecResult, len(mcfgs))
	for i := range mcfgs {
		i := i
		res, err := st.execs.Do(ctx, keys[i], func() (*sim.ExecResult, error) {
			once.Do(run)
			if batchErr[i] != nil {
				return nil, batchErr[i]
			}
			return batch[i], nil
		})
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// objectGrowth returns the scheduled-size-over-original ratio for the
// workload under the model (cached).
func (st *Store) objectGrowth(ctx context.Context, w *workloads.Workload, model *machine.Model,
	opts core.Options) (float64, error) {
	key := fmt.Sprintf("growth|%s|model=%s|%s", wkey(w), model.Name, okey(opts))
	return st.growth.Do(ctx, key, func() (float64, error) {
		test, err := st.checkout(ctx, w, true)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		sp, cst, err := core.ScheduleWithStats(test, model, opts)
		if err != nil {
			return 0, err
		}
		st.metrics.recordSchedule(time.Since(start), cst)
		return sp.ObjectGrowth(), nil
	})
}

// dynMeasure runs the dynamically-scheduled machine on the (cloned)
// register-allocated test program, optionally prescheduled by the NoBoost
// global scheduler first (the §4.3.2 experiment).
func (st *Store) dynMeasure(ctx context.Context, w *workloads.Workload, renaming, presched bool) (int64, error) {
	key := fmt.Sprintf("dyn|%s|ren=%v|presched=%v", wkey(w), renaming, presched)
	return st.cycles.Do(ctx, key, func() (int64, error) {
		test, err := st.checkout(ctx, w, true)
		if err != nil {
			return 0, err
		}
		if presched {
			// Global scheduling without boosting rewrites every block's
			// instruction list into schedule order and adds compensation
			// blocks; the result is an ordinary sequential program.
			start := time.Now()
			_, cst, err := core.ScheduleWithStats(test, machine.NoBoost(), core.Options{})
			if err != nil {
				return 0, err
			}
			st.metrics.recordSchedule(time.Since(start), cst)
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		cfg := dynsched.Default()
		cfg.Renaming = renaming
		start := time.Now()
		res, err := dynsched.Simulate(test, cfg)
		if err != nil {
			return 0, err
		}
		st.metrics.recordSim(time.Since(start), res.Cycles, 0, 0)
		ref, err := st.reference(ctx, w, true)
		if err != nil {
			return 0, err
		}
		if err := verify(ref, res.Out, res.MemHash); err != nil {
			return 0, fmt.Errorf("%s dynamic: %w", w.Name, err)
		}
		return res.Cycles, nil
	})
}

// unrolled measures MinBoost3 on the workload with its innermost loops
// unrolled ×2 before the standard pipeline (cached).
func (st *Store) unrolled(ctx context.Context, w *workloads.Workload) (int64, error) {
	key := "unroll|" + wkey(w)
	return st.cycles.Do(ctx, key, func() (int64, error) {
		start := time.Now()
		train := w.BuildTrain()
		test := w.BuildTest()
		if _, err := unroll.Program(train, unroll.Options{}); err != nil {
			return 0, err
		}
		if _, err := unroll.Program(test, unroll.Options{}); err != nil {
			return 0, err
		}
		if _, err := regalloc.Allocate(train); err != nil {
			return 0, err
		}
		if _, err := regalloc.Allocate(test); err != nil {
			return 0, err
		}
		if err := profile.Annotate(train); err != nil {
			return 0, err
		}
		if err := profile.Transfer(train, test); err != nil {
			return 0, err
		}
		st.metrics.recordBuild(time.Since(start))
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		start = time.Now()
		sp, cst, err := core.ScheduleWithStats(test, machine.MinBoost3(), core.Options{})
		if err != nil {
			return 0, err
		}
		st.metrics.recordSchedule(time.Since(start), cst)
		start = time.Now()
		res, err := sim.Exec(sp, sim.ExecConfig{Engine: st.Engine})
		if err != nil {
			return 0, err
		}
		st.metrics.recordSim(time.Since(start), res.Cycles, res.BoostedExec, res.Squashed)
		ref, err := st.reference(ctx, w, true)
		if err != nil {
			return 0, err
		}
		if err := verify(ref, res.Out, res.MemHash); err != nil {
			return 0, fmt.Errorf("%s unrolled: %w", w.Name, err)
		}
		return res.Cycles, nil
	})
}
