package dataflow

import (
	"boosting/internal/prog"
)

// CFGInfo bundles orderings and dominance information for one procedure.
// Recovery blocks are excluded from all analyses (they are reachable only
// through the exception mechanism).
type CFGInfo struct {
	Proc *prog.Proc
	// RPO is the blocks in reverse postorder from the entry.
	RPO []*prog.Block
	// RPONum maps block ID to its reverse-postorder index (-1 if
	// unreachable or a recovery block).
	RPONum []int
	// IDom maps block ID to its immediate dominator (nil for entry and
	// unreachable blocks).
	IDom []*prog.Block
	// IPDom maps block ID to its immediate postdominator (nil for exit
	// blocks and blocks that cannot reach an exit).
	IPDom []*prog.Block
}

// Analyze computes orderings and dominance for p.
func Analyze(p *prog.Proc) *CFGInfo {
	n := maxBlockID(p) + 1
	info := &CFGInfo{
		Proc:   p,
		RPONum: make([]int, n),
		IDom:   make([]*prog.Block, n),
		IPDom:  make([]*prog.Block, n),
	}
	for i := range info.RPONum {
		info.RPONum[i] = -1
	}

	// Depth-first postorder, then reverse.
	seen := make([]bool, n)
	var post []*prog.Block
	var dfs func(b *prog.Block)
	dfs = func(b *prog.Block) {
		seen[b.ID] = true
		for _, s := range b.Succs {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(p.Entry)
	info.RPO = make([]*prog.Block, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		info.RPO = append(info.RPO, post[i])
	}
	for i, b := range info.RPO {
		info.RPONum[b.ID] = i
	}

	info.computeDominators()
	info.computePostdominators()
	return info
}

func maxBlockID(p *prog.Proc) int {
	max := 0
	for _, b := range p.Blocks {
		if b.ID > max {
			max = b.ID
		}
	}
	return max
}

// computeDominators implements the Cooper/Harvey/Kennedy iterative
// algorithm over reverse postorder.
func (info *CFGInfo) computeDominators() {
	entry := info.Proc.Entry
	info.IDom[entry.ID] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range info.RPO {
			if b == entry {
				continue
			}
			var newIDom *prog.Block
			for _, pred := range b.Preds {
				if info.IDom[pred.ID] == nil {
					continue // unprocessed or unreachable
				}
				if newIDom == nil {
					newIDom = pred
				} else {
					newIDom = info.intersect(pred, newIDom)
				}
			}
			if newIDom != nil && info.IDom[b.ID] != newIDom {
				info.IDom[b.ID] = newIDom
				changed = true
			}
		}
	}
	info.IDom[entry.ID] = nil // conventional: entry has no idom
}

func (info *CFGInfo) intersect(a, b *prog.Block) *prog.Block {
	for a != b {
		for info.RPONum[a.ID] > info.RPONum[b.ID] {
			a = info.IDom[a.ID]
			if a == nil {
				return b
			}
		}
		for info.RPONum[b.ID] > info.RPONum[a.ID] {
			b = info.IDom[b.ID]
			if b == nil {
				return a
			}
		}
	}
	return a
}

// computePostdominators computes dominators of the reversed CFG rooted at a
// virtual exit node whose reverse-successors are all real exit blocks
// (JR/HALT). Blocks that cannot reach any exit keep a nil IPDom.
func (info *CFGInfo) computePostdominators() {
	n := len(info.RPONum)
	const virtualExit = -1 // sentinel index in parent arrays

	// Reverse-graph RPO from the virtual exit: DFS over predecessors.
	seen := make([]bool, n)
	var post []*prog.Block
	var dfs func(b *prog.Block)
	dfs = func(b *prog.Block) {
		seen[b.ID] = true
		for _, p := range b.Preds {
			if !seen[p.ID] {
				dfs(p)
			}
		}
		post = append(post, b)
	}
	for _, b := range info.RPO {
		if len(b.Succs) == 0 && !seen[b.ID] {
			dfs(b)
		}
	}
	order := make([]*prog.Block, 0, len(post)) // reverse postorder
	for i := len(post) - 1; i >= 0; i-- {
		order = append(order, post[i])
	}
	num := make([]int, n)
	for i := range num {
		num[i] = -2 // unreachable from exit
	}
	for i, b := range order {
		num[b.ID] = i
	}

	// parent[b] = immediate postdominator; virtualExit for exit blocks.
	parent := make([]int, n) // stores block IDs, or virtualExit, or -2 unset
	for i := range parent {
		parent[i] = -2
	}
	byNum := order // byNum[i] has num i

	intersect := func(a, b int) int { // a, b are nums or virtualExit
		for a != b {
			if a == virtualExit || b == virtualExit {
				return virtualExit
			}
			for a > b {
				p := parent[byNum[a].ID]
				if p < 0 {
					return virtualExit
				}
				a = num[p]
			}
			for b > a {
				p := parent[byNum[b].ID]
				if p < 0 {
					return virtualExit
				}
				b = num[p]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range order {
			var newParent int
			hasCand := false
			if len(b.Succs) == 0 {
				newParent = virtualExit
				hasCand = true
			} else {
				cand := -2
				for _, s := range b.Succs {
					if num[s.ID] < 0 || (parent[s.ID] == -2 && len(s.Succs) != 0) {
						continue // successor not yet processed or dead
					}
					sn := num[s.ID]
					if cand == -2 {
						cand = sn
					} else {
						cand = intersect(cand, sn)
					}
				}
				if cand != -2 {
					hasCand = true
					if cand == virtualExit {
						newParent = virtualExit
					} else {
						newParent = byNum[cand].ID
					}
				}
			}
			if hasCand {
				var cur int
				if len(b.Succs) == 0 {
					cur = parent[b.ID]
					if cur != virtualExit {
						parent[b.ID] = virtualExit
						changed = true
					}
					continue
				}
				cur = parent[b.ID]
				// newParent here encodes: virtualExit or a block ID; but for
				// intersect we stored nums — normalize comparisons via IDs.
				if cur != newParent {
					parent[b.ID] = newParent
					changed = true
				}
			}
		}
	}

	for _, b := range order {
		p := parent[b.ID]
		if p >= 0 {
			info.IPDom[b.ID] = info.blockByID(p)
		} else {
			info.IPDom[b.ID] = nil // virtual exit or unreachable
		}
	}
}

func (info *CFGInfo) blockByID(id int) *prog.Block {
	for _, b := range info.Proc.Blocks {
		if b.ID == id {
			return b
		}
	}
	return nil
}

// Dominates reports whether a dominates b (reflexive).
func (info *CFGInfo) Dominates(a, b *prog.Block) bool {
	for b != nil {
		if a == b {
			return true
		}
		b = info.IDom[b.ID]
	}
	return false
}

// PostDominates reports whether a postdominates b (reflexive).
func (info *CFGInfo) PostDominates(a, b *prog.Block) bool {
	seen := 0
	for b != nil && seen <= len(info.RPO)+1 {
		if a == b {
			return true
		}
		b = info.IPDom[b.ID]
		seen++
	}
	return false
}

// ControlEquivalent reports whether executing a implies executing b and
// vice versa: a dominates b and b postdominates a (paper §3.2.2's
// "control equivalence", the conditional-pair/equivalent-blocks notion).
// It is only meaningful when a appears before b on a path; callers pass
// (earlier, later).
func (info *CFGInfo) ControlEquivalent(earlier, later *prog.Block) bool {
	return info.Dominates(earlier, later) && info.PostDominates(later, earlier)
}
