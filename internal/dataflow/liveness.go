package dataflow

import (
	"boosting/internal/isa"
	"boosting/internal/prog"
)

// Liveness holds per-block live-variable sets over registers. Register r is
// live at a point if some path from that point uses r before redefining it.
// The scheduler consults live-IN sets of non-predicted successors to decide
// whether a speculative code motion is *illegal* (paper §3.2.2: "By
// checking the live-IN sets of the non-predicted successor blocks against
// the destination register of the current instruction, an algorithm can
// determine when a speculative movement is illegal").
type Liveness struct {
	// NumRegs is the size of each set (max register index + 1).
	NumRegs int
	// In[b.ID] and Out[b.ID] are live-IN and live-OUT of the block.
	In  []BitSet
	Out []BitSet
	// Use and Def are the per-block gen/kill sets.
	Use []BitSet
	Def []BitSet
}

// callerVisible lists registers treated as live across calls and at
// returns: the ABI registers our convention exposes. A JAL additionally
// defines RA and may define RV.
var callerVisible = []isa.Reg{isa.RV, isa.A0, isa.A1, isa.A2, isa.A3, isa.SP, isa.RA}

// ComputeLiveness runs iterative backward live-variable analysis on p.
// Recovery blocks are skipped. At procedure exits (JR/HALT) the
// caller-visible ABI registers are live-out, which conservatively keeps
// return values alive.
func ComputeLiveness(p *prog.Proc) *Liveness {
	nBlocks := maxBlockID(p) + 1
	nRegs := int(p.MaxReg()) + 1
	lv := &Liveness{
		NumRegs: nRegs,
		In:      make([]BitSet, nBlocks),
		Out:     make([]BitSet, nBlocks),
		Use:     make([]BitSet, nBlocks),
		Def:     make([]BitSet, nBlocks),
	}
	for _, b := range p.Blocks {
		lv.In[b.ID] = NewBitSet(nRegs)
		lv.Out[b.ID] = NewBitSet(nRegs)
		lv.Use[b.ID] = NewBitSet(nRegs)
		lv.Def[b.ID] = NewBitSet(nRegs)
		lv.localSets(b)
	}

	// Iterate to fixpoint, visiting blocks in reverse order for speed.
	blocks := p.Blocks
	var tmp = NewBitSet(nRegs)
	for changed := true; changed; {
		changed = false
		for i := len(blocks) - 1; i >= 0; i-- {
			b := blocks[i]
			if b.Recovery {
				continue
			}
			out := lv.Out[b.ID]
			if len(b.Succs) == 0 {
				for _, r := range callerVisible {
					if int(r) < nRegs {
						out.Set(int(r))
					}
				}
			}
			for _, s := range b.Succs {
				if out.Union(lv.In[s.ID]) {
					changed = true
				}
			}
			// in = use ∪ (out − def)
			tmp.Copy(out)
			tmp.Subtract(lv.Def[b.ID])
			tmp.Union(lv.Use[b.ID])
			if !tmp.Equal(lv.In[b.ID]) {
				lv.In[b.ID].Copy(tmp)
				changed = true
			}
		}
	}
	return lv
}

// localSets fills Use (upward-exposed uses) and Def for block b.
func (lv *Liveness) localSets(b *prog.Block) {
	use, def := lv.Use[b.ID], lv.Def[b.ID]
	var regs []isa.Reg
	for i := range b.Insts {
		in := &b.Insts[i]
		regs = in.Uses(regs[:0])
		for _, r := range regs {
			if !def.Has(int(r)) {
				use.Set(int(r))
			}
		}
		if in.Op == isa.JAL {
			// Calls use the argument registers and SP.
			for _, r := range []isa.Reg{isa.A0, isa.A1, isa.A2, isa.A3, isa.SP} {
				if !def.Has(int(r)) {
					use.Set(int(r))
				}
			}
			// And define RV and RA (clobbered by callee/linkage).
			def.Set(int(isa.RV))
			def.Set(int(isa.RA))
			continue
		}
		if in.Boost > 0 {
			// A boosted def's sequential effect happens at a later
			// block's commit; treating it as a kill here would
			// understate liveness for blocks entered mid-trace.
			continue
		}
		regs = in.Defs(regs[:0])
		for _, r := range regs {
			if r != isa.R0 {
				def.Set(int(r))
			}
		}
	}
}

// LiveIntoEdge returns the set of registers live on entry to succ. It is
// the legality test set for boosting: a speculative def of r moved above
// b's terminating branch is illegal iff r is live into the non-predicted
// successor.
func (lv *Liveness) LiveIntoEdge(succ *prog.Block) BitSet { return lv.In[succ.ID] }

// LiveAt computes the registers live immediately before instruction index
// idx within block b (0 = block start). It walks backward from the block's
// live-out; cost is O(block length) so callers should batch queries.
func (lv *Liveness) LiveAt(b *prog.Block, idx int) BitSet {
	live := lv.Out[b.ID].CloneSet()
	var regs []isa.Reg
	for i := len(b.Insts) - 1; i >= idx; i-- {
		in := &b.Insts[i]
		if in.Boost == 0 {
			regs = in.Defs(regs[:0])
			for _, r := range regs {
				if r != isa.R0 {
					live.Clear(int(r))
				}
			}
		}
		regs = in.Uses(regs[:0])
		for _, r := range regs {
			live.Set(int(r))
		}
		if in.Op == isa.JAL {
			for _, r := range []isa.Reg{isa.A0, isa.A1, isa.A2, isa.A3, isa.SP} {
				live.Set(int(r))
			}
		}
	}
	return live
}
