package dataflow

import (
	"math/rand"
	"testing"

	"boosting/internal/isa"
	"boosting/internal/prog"
)

// --- brute-force oracles ---

// reachableAvoiding returns the set of blocks reachable from start without
// passing through avoid (avoid == nil disables).
func reachableAvoiding(start, avoid *prog.Block) map[*prog.Block]bool {
	seen := map[*prog.Block]bool{}
	if start == avoid {
		return seen
	}
	var dfs func(b *prog.Block)
	dfs = func(b *prog.Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if s != avoid && !seen[s] {
				dfs(s)
			}
		}
	}
	dfs(start)
	return seen
}

// bruteDominates: a dom b iff b unreachable from entry when a removed.
func bruteDominates(p *prog.Proc, a, b *prog.Block) bool {
	if a == b {
		return true
	}
	return !reachableAvoiding(p.Entry, a)[b]
}

// brutePostDominates: a pdom b iff no exit reachable from b when a removed.
func brutePostDominates(p *prog.Proc, a, b *prog.Block) bool {
	if a == b {
		return true
	}
	seen := reachableAvoiding(b, a)
	for blk := range seen {
		if len(blk.Succs) == 0 {
			return false
		}
	}
	return true
}

func checkDominance(t *testing.T, p *prog.Proc) {
	t.Helper()
	info := Analyze(p)
	reach := reachableAvoiding(p.Entry, nil)
	for _, a := range p.Blocks {
		if !reach[a] {
			continue
		}
		for _, b := range p.Blocks {
			if !reach[b] {
				continue
			}
			if got, want := info.Dominates(a, b), bruteDominates(p, a, b); got != want {
				t.Errorf("Dominates(%s,%s) = %v, brute force says %v", a, b, got, want)
			}
			// Postdominance only meaningful for blocks that reach an exit.
			if canReachExit(a) && canReachExit(b) {
				if got, want := info.PostDominates(a, b), brutePostDominates(p, a, b); got != want {
					t.Errorf("PostDominates(%s,%s) = %v, brute force says %v", a, b, got, want)
				}
			}
		}
	}
}

func canReachExit(b *prog.Block) bool {
	for blk := range reachableAvoiding(b, nil) {
		if len(blk.Succs) == 0 {
			return true
		}
	}
	return false
}

// --- structured cases ---

func buildDiamond() *prog.Program {
	pr := prog.New()
	f := prog.NewBuilder(pr, "main")
	thenB := f.Block("then")
	elseB := f.Block("else")
	join := f.Block("join")
	r := f.Reg()
	f.Li(r, 1)
	f.Branch(isa.BGTZ, r, isa.R0, thenB, elseB)
	f.Enter(thenB)
	f.Imm(isa.ADDI, r, r, 1)
	f.Jump(join)
	f.Enter(elseB)
	f.Imm(isa.ADDI, r, r, 2)
	f.Goto(join)
	f.Enter(join)
	f.Out(r)
	f.Halt()
	f.Finish()
	return pr
}

func TestDominatorsDiamond(t *testing.T) {
	pr := buildDiamond()
	p := pr.Main()
	checkDominance(t, p)

	info := Analyze(p)
	entry, thenB, elseB, join := p.Blocks[0], p.Blocks[1], p.Blocks[2], p.Blocks[3]
	if !info.Dominates(entry, join) || info.Dominates(thenB, join) || info.Dominates(elseB, join) {
		t.Error("diamond dominance wrong")
	}
	if !info.PostDominates(join, entry) || !info.PostDominates(join, thenB) {
		t.Error("diamond postdominance wrong")
	}
	if !info.ControlEquivalent(entry, join) {
		t.Error("entry and join must be control equivalent")
	}
	if info.ControlEquivalent(entry, thenB) {
		t.Error("entry and then must not be control equivalent")
	}
}

func buildNestedLoop() *prog.Program {
	pr := prog.New()
	f := prog.NewBuilder(pr, "main")
	outer := f.Block("outer")
	inner := f.Block("inner")
	innerEnd := f.Block("innerEnd")
	done := f.Block("done")
	i, j := f.Reg(), f.Reg()
	f.Li(i, 3)
	f.Goto(outer)
	f.Enter(outer)
	f.Li(j, 2)
	f.Goto(inner)
	f.Enter(inner)
	f.Imm(isa.ADDI, j, j, -1)
	f.Branch(isa.BGTZ, j, isa.R0, inner, innerEnd)
	f.Enter(innerEnd)
	f.Imm(isa.ADDI, i, i, -1)
	f.Branch(isa.BGTZ, i, isa.R0, outer, done)
	f.Enter(done)
	f.Halt()
	f.Finish()
	return pr
}

func TestDominatorsNestedLoop(t *testing.T) {
	pr := buildNestedLoop()
	checkDominance(t, pr.Main())
}

func TestLoopsNested(t *testing.T) {
	pr := buildNestedLoop()
	p := pr.Main()
	info := Analyze(p)
	loops := FindLoops(info)
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	var innerL, outerL *Loop
	for _, l := range loops {
		if l.Header.Label == "inner" {
			innerL = l
		}
		if l.Header.Label == "outer" {
			outerL = l
		}
	}
	if innerL == nil || outerL == nil {
		t.Fatalf("loop headers not found: %v", loops)
	}
	if innerL.Parent != outerL {
		t.Error("inner loop's parent must be outer loop")
	}
	if innerL.Depth != 2 || outerL.Depth != 1 {
		t.Errorf("depths inner=%d outer=%d", innerL.Depth, outerL.Depth)
	}
	if !outerL.Blocks[innerL.Header] {
		t.Error("outer loop must contain inner header")
	}
	if innerL.Blocks[outerL.Header] {
		t.Error("inner loop must not contain outer header")
	}
}

func TestRegionsOrderedInnermostFirst(t *testing.T) {
	pr := buildNestedLoop()
	info := Analyze(pr.Main())
	regions := Regions(info)
	if len(regions) != 3 {
		t.Fatalf("got %d regions, want 3 (two loops + body)", len(regions))
	}
	if regions[0].Depth < regions[1].Depth || regions[1].Depth < regions[2].Depth {
		t.Error("regions must be ordered innermost first")
	}
	if regions[len(regions)-1].Loop != nil {
		t.Error("last region must be the procedure body")
	}
}

// --- liveness ---

func TestLivenessDiamond(t *testing.T) {
	pr := prog.New()
	f := prog.NewBuilder(pr, "main")
	thenB := f.Block("then")
	elseB := f.Block("else")
	join := f.Block("join")
	a, b, c := f.Reg(), f.Reg(), f.Reg()
	f.Li(a, 1)
	f.Li(b, 2)
	f.Branch(isa.BGTZ, a, isa.R0, thenB, elseB)
	f.Enter(thenB)
	f.ALU(isa.ADD, c, a, b) // uses a, b
	f.Jump(join)
	f.Enter(elseB)
	f.Li(c, 0) // kills c, doesn't use b
	f.Goto(join)
	f.Enter(join)
	f.Out(c)
	f.Halt()
	p := f.Finish()

	lv := ComputeLiveness(p)
	entry, then_, else_, join_ := p.Blocks[0], p.Blocks[1], p.Blocks[2], p.Blocks[3]
	if !lv.Out[entry.ID].Has(int(b)) {
		t.Error("b must be live out of entry (used in then)")
	}
	if !lv.In[then_.ID].Has(int(a)) || !lv.In[then_.ID].Has(int(b)) {
		t.Error("a and b must be live into then")
	}
	if lv.In[else_.ID].Has(int(b)) {
		t.Error("b must not be live into else")
	}
	if lv.In[else_.ID].Has(int(c)) {
		t.Error("c must not be live into else (killed before use)")
	}
	if !lv.In[join_.ID].Has(int(c)) {
		t.Error("c must be live into join")
	}
	if lv.Out[join_.ID].Has(int(c)) {
		t.Error("c must not be live out of the exit block (virtual regs die)")
	}
}

func TestLivenessLoop(t *testing.T) {
	pr := buildCountdownDF(5)
	p := pr.Main()
	lv := ComputeLiveness(p)
	loop := p.Blocks[1]
	// The counter is used at loop top, so it is live around the back edge.
	r := isa.FirstVirtual
	if !lv.In[loop.ID].Has(int(r)) || !lv.Out[loop.ID].Has(int(r)) {
		t.Error("loop counter must be live in and out of loop block")
	}
}

func buildCountdownDF(n int32) *prog.Program {
	pr := prog.New()
	f := prog.NewBuilder(pr, "main")
	loop := f.Block("loop")
	done := f.Block("done")
	r := f.Reg()
	f.Li(r, n)
	f.Goto(loop)
	f.Enter(loop)
	f.Out(r)
	f.Imm(isa.ADDI, r, r, -1)
	f.Branch(isa.BGTZ, r, isa.R0, loop, done)
	f.Enter(done)
	f.Halt()
	f.Finish()
	return pr
}

func TestLiveAt(t *testing.T) {
	pr := buildCountdownDF(5)
	p := pr.Main()
	lv := ComputeLiveness(p)
	loop := p.Blocks[1]
	r := int(isa.FirstVirtual)
	// Before the OUT (index 0) the counter is live.
	if !lv.LiveAt(loop, 0).Has(r) {
		t.Error("counter live before OUT")
	}
}

// --- randomized CFG property test ---

// genRandomCFG builds a random but well-formed procedure with nb blocks.
func genRandomCFG(rng *rand.Rand, nb int) *prog.Program {
	pr := prog.New()
	f := prog.NewBuilder(pr, "main")
	blocks := []*prog.Block{f.EntryBlock()}
	for i := 1; i < nb; i++ {
		blocks = append(blocks, f.Block("b"))
	}
	r := f.Reg()
	for i, b := range blocks {
		if i > 0 {
			f.Enter(b)
		}
		f.Imm(isa.ADDI, r, r, 1)
		// Choose a terminator shape.
		switch rng.Intn(4) {
		case 0: // halt
			f.Halt()
		case 1: // jump
			f.Jump(blocks[rng.Intn(nb)])
		case 2: // fallthrough
			f.Goto(blocks[rng.Intn(nb)])
		default: // branch
			f.Branch(isa.BGTZ, r, isa.R0, blocks[rng.Intn(nb)], blocks[rng.Intn(nb)])
		}
	}
	f.P.RecomputePreds()
	return pr
}

func TestDominancePropertyRandomCFGs(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 200; trial++ {
		nb := 2 + rng.Intn(8)
		pr := genRandomCFG(rng, nb)
		if err := prog.Verify(pr.Main()); err != nil {
			t.Fatalf("trial %d: invalid CFG: %v", trial, err)
		}
		checkDominance(t, pr.Main())
		if t.Failed() {
			t.Fatalf("trial %d failed; CFG:\n%s", trial, prog.Format(pr.Main()))
		}
	}
}

// --- bitset ---

func TestBitSetOps(t *testing.T) {
	s := NewBitSet(130)
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if !s.Has(0) || !s.Has(64) || !s.Has(129) || s.Has(1) {
		t.Error("set/has wrong")
	}
	if s.Count() != 3 {
		t.Errorf("count = %d", s.Count())
	}
	u := NewBitSet(130)
	u.Set(1)
	if !u.Union(s) {
		t.Error("union must report change")
	}
	if u.Union(s) {
		t.Error("second union must report no change")
	}
	if u.Count() != 4 {
		t.Errorf("after union count = %d", u.Count())
	}
	u.Subtract(s)
	if u.Count() != 1 || !u.Has(1) {
		t.Error("subtract wrong")
	}
	c := s.CloneSet()
	if !c.Equal(s) {
		t.Error("clone not equal")
	}
	c.Clear(64)
	if c.Equal(s) || s.Has(64) == false {
		t.Error("clone not independent")
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != 3 || got[0] != 0 || got[1] != 64 || got[2] != 129 {
		t.Errorf("ForEach order %v", got)
	}
	s.Intersect(c)
	if s.Has(64) {
		t.Error("intersect wrong")
	}
	s.Reset()
	if s.Count() != 0 {
		t.Error("reset wrong")
	}
}
