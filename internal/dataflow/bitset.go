// Package dataflow implements the global analyses the scheduler depends on:
// reverse-postorder, dominators and postdominators (for control
// equivalence), live-variable analysis (for legality of speculative code
// motion, paper §3.2.2), and natural-loop/region detection (for the
// region-at-a-time scheduling of paper §3.2.1).
package dataflow

import "math/bits"

// BitSet is a dense bit vector used for register sets and block sets.
type BitSet []uint64

// NewBitSet returns a bitset able to hold n elements.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set adds i to the set.
func (s BitSet) Set(i int) { s[i/64] |= 1 << (uint(i) % 64) }

// Clear removes i from the set.
func (s BitSet) Clear(i int) { s[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether i is in the set.
func (s BitSet) Has(i int) bool {
	w := i / 64
	return w < len(s) && s[w]&(1<<(uint(i)%64)) != 0
}

// Union adds every element of t, reporting whether s changed.
func (s BitSet) Union(t BitSet) bool {
	changed := false
	for i, w := range t {
		if nw := s[i] | w; nw != s[i] {
			s[i] = nw
			changed = true
		}
	}
	return changed
}

// Subtract removes every element of t from s.
func (s BitSet) Subtract(t BitSet) {
	for i, w := range t {
		s[i] &^= w
	}
}

// Intersect keeps only elements also in t.
func (s BitSet) Intersect(t BitSet) {
	for i := range s {
		if i < len(t) {
			s[i] &= t[i]
		} else {
			s[i] = 0
		}
	}
}

// Copy overwrites s with t (same length required).
func (s BitSet) Copy(t BitSet) { copy(s, t) }

// Equal reports whether the two sets are identical.
func (s BitSet) Equal(t BitSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Count returns the number of elements in the set.
func (s BitSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Reset empties the set.
func (s BitSet) Reset() {
	for i := range s {
		s[i] = 0
	}
}

// CloneSet returns an independent copy.
func (s BitSet) CloneSet() BitSet {
	c := make(BitSet, len(s))
	copy(c, s)
	return c
}

// ForEach calls fn for every element in ascending order.
func (s BitSet) ForEach(fn func(i int)) {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &^= 1 << uint(b)
		}
	}
}
