package dataflow

import (
	"boosting/internal/prog"
)

// AnalysisKind names one cached analysis product managed by Manager.
// Kinds combine as bit sets for Invalidate's clobber declarations.
type AnalysisKind uint8

const (
	// KindCFG covers orderings and dominance (Analyze): RPO, dominators,
	// postdominators. It depends only on the CFG edge structure.
	KindCFG AnalysisKind = 1 << iota
	// KindLiveness covers live-variable sets (ComputeLiveness). It
	// depends on instruction contents and the CFG edge structure.
	KindLiveness
	// KindLoops covers natural loops and scheduling regions (Regions).
	// It depends on the CFG edge structure via dominance.
	KindLoops

	// KindAll is every analysis the manager caches.
	KindAll = KindCFG | KindLiveness | KindLoops
	// KindStructural is every analysis derived from the CFG edge
	// structure; an edit that adds blocks or rewires Succs clobbers it
	// (and, because liveness flows along edges, KindLiveness too — use
	// KindAll for such edits).
	KindStructural = KindCFG | KindLoops
)

// ManagerStats counts what a Manager computed versus served from cache.
// The scheduler's regression tests pin these: recomputations must scale
// with IR mutations, not with the number of traces scheduled.
type ManagerStats struct {
	// CFGComputes, LivenessComputes and LoopComputes count full
	// recomputations of the respective analysis.
	CFGComputes      int64 `json:"cfg_computes"`
	LivenessComputes int64 `json:"liveness_computes"`
	LoopComputes     int64 `json:"loop_computes"`
	// Hits counts queries answered from a generation-valid cache.
	Hits int64 `json:"hits"`
	// Invalidations counts Invalidate calls (declared IR mutations).
	Invalidations int64 `json:"invalidations"`
}

// Add accumulates other into s (aggregation across procedures).
func (s *ManagerStats) Add(other ManagerStats) {
	s.CFGComputes += other.CFGComputes
	s.LivenessComputes += other.LivenessComputes
	s.LoopComputes += other.LoopComputes
	s.Hits += other.Hits
	s.Invalidations += other.Invalidations
}

// cached pairs an analysis value with the IR generation it was computed
// at (valid reports whether it may be served when generations match).
type cached[T any] struct {
	value T
	gen   uint64
	valid bool
}

func (c *cached[T]) get(gen uint64) (T, bool) {
	if c.valid && c.gen == gen {
		return c.value, true
	}
	var zero T
	return zero, false
}

func (c *cached[T]) put(v T, gen uint64) {
	c.value, c.gen, c.valid = v, gen, true
}

// retag extends a currently-valid entry's validity from generation old
// to generation now (a mutation declared not to clobber it).
func (c *cached[T]) retag(old, now uint64) {
	if c.valid && c.gen == old {
		c.gen = now
	}
}

// Manager memoizes the per-procedure dataflow analyses — dominance
// (CFG), liveness and natural loops/regions — keyed by the procedure's
// IR generation counter. It replaces the schedulers' recompute-
// everything-per-trace refresh: analyses are computed lazily on first
// query, served from cache while the IR is unchanged, and selectively
// invalidated when a pass declares what it clobbered.
//
// Contract: every IR mutation (editing Insts, rewiring Succs, adding
// blocks) must be followed by Invalidate with the clobbered kinds
// before the next query. Mutations the manager cannot see are otherwise
// only caught if something else bumped the generation; Invalidate is
// the single choke point passes must use. Preds are maintained here
// too: a structural invalidation recomputes them before any analysis
// runs, so direct Preds consumers stay consistent with the caches.
type Manager struct {
	proc *prog.Proc

	info    cached[*CFGInfo]
	live    cached[*Liveness]
	regions cached[[]*Region]

	stats ManagerStats
}

// NewManager returns a manager for p with empty caches. It normalizes
// Preds once so both the analyses and direct Preds consumers start from
// a consistent CFG (the scheduler previously did this in its first
// refresh).
func NewManager(p *prog.Proc) *Manager {
	p.RecomputePreds()
	return &Manager{proc: p}
}

// Proc returns the managed procedure.
func (m *Manager) Proc() *prog.Proc { return m.proc }

// Stats returns a snapshot of the recompute/hit counters.
func (m *Manager) Stats() ManagerStats { return m.stats }

// CFG returns orderings and dominance for the current IR, computing
// them only if no generation-valid cache exists.
func (m *Manager) CFG() *CFGInfo {
	gen := m.proc.Generation()
	if v, ok := m.info.get(gen); ok {
		m.stats.Hits++
		return v
	}
	v := Analyze(m.proc)
	m.info.put(v, gen)
	m.stats.CFGComputes++
	return v
}

// Liveness returns live-variable sets for the current IR, computing
// them only if no generation-valid cache exists.
func (m *Manager) Liveness() *Liveness {
	gen := m.proc.Generation()
	if v, ok := m.live.get(gen); ok {
		m.stats.Hits++
		return v
	}
	v := ComputeLiveness(m.proc)
	m.live.put(v, gen)
	m.stats.LivenessComputes++
	return v
}

// Regions returns the scheduling regions (innermost loops first, then
// the procedure body) for the current IR, computing them only if no
// generation-valid cache exists.
func (m *Manager) Regions() []*Region {
	gen := m.proc.Generation()
	if v, ok := m.regions.get(gen); ok {
		m.stats.Hits++
		return v
	}
	v := Regions(m.CFG())
	m.regions.put(v, gen)
	m.stats.LoopComputes++
	return v
}

// Invalidate declares an IR mutation: the procedure's generation is
// bumped, analyses in clobbered go stale, and every other currently-
// valid cache is retagged to the new generation (the mutation was
// declared not to affect it). A structural clobber (any kind in
// KindStructural) also recomputes Preds immediately, since dominance,
// loops and the schedulers' own edge walks all read them.
func (m *Manager) Invalidate(clobbered AnalysisKind) {
	old := m.proc.Generation()
	m.proc.NoteMutation()
	now := m.proc.Generation()
	m.stats.Invalidations++

	if clobbered&KindCFG != 0 {
		m.info.valid = false
	} else {
		m.info.retag(old, now)
	}
	if clobbered&KindLiveness != 0 {
		m.live.valid = false
	} else {
		m.live.retag(old, now)
	}
	if clobbered&KindLoops != 0 {
		m.regions.valid = false
	} else {
		m.regions.retag(old, now)
	}

	if clobbered&KindStructural != 0 {
		m.proc.RecomputePreds()
	}
}
