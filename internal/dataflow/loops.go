package dataflow

import (
	"sort"

	"boosting/internal/prog"
)

// Loop is a natural loop: a header block and the set of blocks in the loop
// body (including the header).
type Loop struct {
	Header *prog.Block
	Blocks map[*prog.Block]bool
	// Parent is the innermost enclosing loop, nil for outermost loops.
	Parent *Loop
	// Depth is 1 for outermost loops, increasing inward.
	Depth int
}

// Region is a unit of scheduling (paper §3.2.1): either a loop body or the
// whole procedure body. Regions are scheduled innermost-first and traces
// never cross a region boundary.
type Region struct {
	// Loop is nil for the procedure-body region.
	Loop *Loop
	// Blocks is the set of blocks owned by this region, excluding blocks
	// of nested inner regions' *bodies*? No — a region contains all its
	// blocks; trace selection simply skips blocks already scheduled as
	// part of an inner region.
	Blocks map[*prog.Block]bool
	// Depth orders regions: larger depth is scheduled first.
	Depth int
}

// FindLoops detects natural loops from back edges (edge tail→head where
// head dominates tail). Loops sharing a header are merged, as usual.
func FindLoops(info *CFGInfo) []*Loop {
	byHeader := map[*prog.Block]*Loop{}
	for _, b := range info.RPO {
		for _, s := range b.Succs {
			if info.Dominates(s, b) {
				// b→s is a back edge with header s.
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[*prog.Block]bool{s: true}}
					byHeader[s] = l
				}
				collectLoopBody(l, b)
			}
		}
	}
	loops := make([]*Loop, 0, len(byHeader))
	for _, l := range byHeader {
		loops = append(loops, l)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Header.ID < loops[j].Header.ID })

	// Nesting: loop A is inside loop B if B contains A's header and A != B.
	for _, a := range loops {
		for _, b := range loops {
			if a == b || !b.Blocks[a.Header] {
				continue
			}
			// b encloses a; keep the smallest enclosing loop as parent.
			if a.Parent == nil || len(b.Blocks) < len(a.Parent.Blocks) {
				a.Parent = b
			}
		}
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	return loops
}

// collectLoopBody adds all blocks that reach tail without passing through
// the header (the standard natural-loop body computation).
func collectLoopBody(l *Loop, tail *prog.Block) {
	var stack []*prog.Block
	if !l.Blocks[tail] {
		l.Blocks[tail] = true
		stack = append(stack, tail)
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range b.Preds {
			if !l.Blocks[p] {
				l.Blocks[p] = true
				stack = append(stack, p)
			}
		}
	}
}

// Regions returns the scheduling regions of the procedure ordered
// innermost-first: one region per natural loop, then the procedure body.
// Every region's block set includes nested blocks; the scheduler relies on
// "already scheduled" marks to avoid rescheduling inner-region blocks, so
// inner regions collapse naturally (paper: "collapse REGION").
func Regions(info *CFGInfo) []*Region {
	loops := FindLoops(info)
	sort.SliceStable(loops, func(i, j int) bool { return loops[i].Depth > loops[j].Depth })
	regions := make([]*Region, 0, len(loops)+1)
	for _, l := range loops {
		regions = append(regions, &Region{Loop: l, Blocks: l.Blocks, Depth: l.Depth})
	}
	body := map[*prog.Block]bool{}
	for _, b := range info.RPO {
		body[b] = true
	}
	regions = append(regions, &Region{Blocks: body, Depth: 0})
	return regions
}
