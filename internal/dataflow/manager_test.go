package dataflow

import (
	"testing"

	"boosting/internal/isa"
	"boosting/internal/prog"
)

// TestManagerLazyComputeAndHits checks the memoization contract: each
// analysis is computed once on first query and served from cache (same
// pointer, hit counted) while the IR generation is unchanged.
func TestManagerLazyComputeAndHits(t *testing.T) {
	p := buildDiamond().Main()
	m := NewManager(p)
	if m.Proc() != p {
		t.Fatal("Proc() does not return the managed procedure")
	}
	if s := m.Stats(); s != (ManagerStats{}) {
		t.Fatalf("fresh manager has nonzero stats: %+v", s)
	}

	cfg := m.CFG()
	if cfg2 := m.CFG(); cfg2 != cfg {
		t.Error("second CFG() returned a different object")
	}
	lv := m.Liveness()
	if lv2 := m.Liveness(); lv2 != lv {
		t.Error("second Liveness() returned a different object")
	}
	regs := m.Regions()
	if len(regs) == 0 {
		t.Fatal("Regions() returned no regions")
	}
	m.Regions()

	s := m.Stats()
	if s.CFGComputes != 1 || s.LivenessComputes != 1 || s.LoopComputes != 1 {
		t.Errorf("computes = cfg:%d live:%d loops:%d, want 1 each",
			s.CFGComputes, s.LivenessComputes, s.LoopComputes)
	}
	// Hits: one repeat query per analysis, plus Regions' two internal
	// CFG() queries (both after the initial compute).
	if s.Hits < 4 {
		t.Errorf("hits = %d, want >= 4", s.Hits)
	}
	if s.Invalidations != 0 {
		t.Errorf("invalidations = %d, want 0", s.Invalidations)
	}

	// LiveIntoEdge is the edge-level liveness view used by planMotion:
	// the join block reads r, so r is live into it.
	join := p.Blocks[3]
	r := p.Blocks[0].Insts[0].Rd
	if !lv.LiveIntoEdge(join).Has(int(r)) {
		t.Errorf("r%d not live into %s", r, join)
	}
}

// TestManagerInvalidateLivenessRetags checks the selective-invalidation
// semantics: declaring a liveness-only clobber recomputes liveness but
// retags the CFG and region caches to the new generation, so they keep
// serving hits without recomputation.
func TestManagerInvalidateLivenessRetags(t *testing.T) {
	p := buildDiamond().Main()
	m := NewManager(p)
	cfg, lv := m.CFG(), m.Liveness()
	regs := m.Regions()
	before := m.Stats()
	gen := p.Generation()

	// An Insts-only edit (no CFG rewiring) followed by its declaration.
	join := p.Blocks[3]
	join.Insts = append([]isa.Inst{{Op: isa.ADDI, Rd: 9, Rs: 9}}, join.Insts...)
	m.Invalidate(KindLiveness)

	if p.Generation() != gen+1 {
		t.Errorf("generation = %d, want %d", p.Generation(), gen+1)
	}
	if m.CFG() != cfg {
		t.Error("CFG cache was not retagged across a liveness-only clobber")
	}
	if got := m.Regions(); len(got) != len(regs) || got[0] != regs[0] {
		t.Error("regions cache was not retagged across a liveness-only clobber")
	}
	if m.Liveness() == lv {
		t.Error("liveness served stale cache after being clobbered")
	}

	after := m.Stats()
	if after.CFGComputes != before.CFGComputes || after.LoopComputes != before.LoopComputes {
		t.Errorf("structural analyses recomputed on a liveness-only clobber: %+v -> %+v",
			before, after)
	}
	if after.LivenessComputes != before.LivenessComputes+1 {
		t.Errorf("liveness computes = %d, want %d", after.LivenessComputes, before.LivenessComputes+1)
	}
	if after.Invalidations != before.Invalidations+1 {
		t.Errorf("invalidations = %d, want %d", after.Invalidations, before.Invalidations+1)
	}
}

// TestManagerInvalidateStructural checks the KindAll path: a CFG edit
// clobbers every cache and Preds are recomputed immediately, before any
// analysis is queried.
func TestManagerInvalidateStructural(t *testing.T) {
	pr := buildDiamond()
	p := pr.Main()
	m := NewManager(p)
	cfg, lv := m.CFG(), m.Liveness()
	m.Regions()
	before := m.Stats()

	// Splice a new block into the then -> join edge.
	thenB, join := p.Blocks[1], p.Blocks[3]
	nb := p.NewBlockAfter("split")
	nb.Succs = []*prog.Block{join}
	thenB.Succs[0] = nb
	m.Invalidate(KindAll)

	found := false
	for _, x := range nb.Preds {
		if x == thenB {
			found = true
		}
	}
	if !found {
		t.Error("Preds not recomputed by the structural invalidation")
	}
	for _, x := range join.Preds {
		if x == thenB {
			t.Error("stale pred edge survived the structural invalidation")
		}
	}

	ncfg, nlv := m.CFG(), m.Liveness()
	if ncfg == cfg || nlv == lv {
		t.Error("analysis served stale cache after KindAll")
	}
	if !ncfg.Dominates(thenB, nb) {
		t.Error("recomputed dominance does not see the new block")
	}
	m.Regions()
	after := m.Stats()
	if after.CFGComputes != before.CFGComputes+1 ||
		after.LivenessComputes != before.LivenessComputes+1 ||
		after.LoopComputes != before.LoopComputes+1 {
		t.Errorf("want one recompute of each analysis after KindAll: %+v -> %+v", before, after)
	}
}

// TestManagerForeignGenerationBump checks that a generation bump the
// manager did not itself perform (another Manager, or NoteMutation called
// directly) still misses the cache: validity is keyed by generation, not
// by Invalidate bookkeeping.
func TestManagerForeignGenerationBump(t *testing.T) {
	p := buildDiamond().Main()
	m := NewManager(p)
	cfg := m.CFG()
	p.NoteMutation()
	if m.CFG() == cfg {
		t.Error("cache served across an unannounced generation bump")
	}
	if s := m.Stats(); s.CFGComputes != 2 {
		t.Errorf("CFG computes = %d, want 2", s.CFGComputes)
	}
}

// TestManagerStatsAdd checks the per-procedure aggregation used by
// core.Stats.
func TestManagerStatsAdd(t *testing.T) {
	a := ManagerStats{CFGComputes: 1, LivenessComputes: 2, LoopComputes: 3, Hits: 4, Invalidations: 5}
	b := ManagerStats{CFGComputes: 10, LivenessComputes: 20, LoopComputes: 30, Hits: 40, Invalidations: 50}
	a.Add(b)
	want := ManagerStats{CFGComputes: 11, LivenessComputes: 22, LoopComputes: 33, Hits: 44, Invalidations: 55}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
}
