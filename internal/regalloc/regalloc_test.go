package regalloc

import (
	"math/rand"
	"testing"

	"boosting/internal/isa"
	"boosting/internal/prog"
	"boosting/internal/sim"
)

// noVirtualsLeft asserts allocation is complete.
func noVirtualsLeft(t *testing.T, pr *prog.Program) {
	t.Helper()
	var tmp []isa.Reg
	for _, p := range pr.ProcList() {
		for _, b := range p.Blocks {
			for i := range b.Insts {
				tmp = b.Insts[i].Defs(tmp[:0])
				tmp = b.Insts[i].Uses(tmp)
				for _, r := range tmp {
					if r.IsVirtual() {
						t.Fatalf("proc %s: virtual %s remains in %s",
							p.Name, r, b.Insts[i].String())
					}
				}
			}
		}
	}
}

// sameBehavior runs both programs and compares observable results.
func sameBehavior(t *testing.T, orig, alloc *prog.Program) {
	t.Helper()
	r1, err := sim.Run(orig, sim.RefConfig{})
	if err != nil {
		t.Fatalf("original: %v", err)
	}
	r2, err := sim.Run(alloc, sim.RefConfig{})
	if err != nil {
		t.Fatalf("allocated: %v", err)
	}
	if len(r1.Out) != len(r2.Out) {
		t.Fatalf("output length differs: %d vs %d", len(r1.Out), len(r2.Out))
	}
	for i := range r1.Out {
		if r1.Out[i] != r2.Out[i] {
			t.Fatalf("out[%d]: %d vs %d", i, r1.Out[i], r2.Out[i])
		}
	}
}

func TestAllocateSimpleLoop(t *testing.T) {
	build := func() *prog.Program {
		pr := prog.New()
		f := prog.NewBuilder(pr, "main")
		loop := f.Block("loop")
		done := f.Block("done")
		i, sum := f.Reg(), f.Reg()
		f.Li(i, 10)
		f.Li(sum, 0)
		f.Goto(loop)
		f.Enter(loop)
		f.ALU(isa.ADD, sum, sum, i)
		f.Imm(isa.ADDI, i, i, -1)
		f.Branch(isa.BGTZ, i, isa.R0, loop, done)
		f.Enter(done)
		f.Out(sum)
		f.Halt()
		f.Finish()
		return pr
	}
	orig := build()
	alloc := build()
	stats, err := Allocate(alloc)
	if err != nil {
		t.Fatal(err)
	}
	noVirtualsLeft(t, alloc)
	sameBehavior(t, orig, alloc)
	if stats["main"].Spilled != 0 {
		t.Errorf("simple loop should not spill, spilled %d", stats["main"].Spilled)
	}
}

func TestAllocateHighPressureSpills(t *testing.T) {
	build := func() *prog.Program {
		pr := prog.New()
		f := prog.NewBuilder(pr, "main")
		// More simultaneously live values than the pool holds.
		n := len(Pool) + 8
		regs := make([]isa.Reg, n)
		for i := range regs {
			regs[i] = f.Reg()
			f.Li(regs[i], int32(i+1))
		}
		sum := f.Reg()
		f.Li(sum, 0)
		for i := range regs {
			f.ALU(isa.ADD, sum, sum, regs[i])
		}
		f.Out(sum)
		f.Halt()
		f.Finish()
		return pr
	}
	orig := build()
	alloc := build()
	stats, err := Allocate(alloc)
	if err != nil {
		t.Fatal(err)
	}
	noVirtualsLeft(t, alloc)
	sameBehavior(t, orig, alloc)
	if stats["main"].Spilled == 0 {
		t.Error("high-pressure program must spill")
	}
}

func TestAllocateCallCrossing(t *testing.T) {
	build := func() *prog.Program {
		pr := prog.New()
		leaf := prog.NewBuilder(pr, "leaf")
		// The leaf clobbers a pool register deliberately.
		tv := leaf.Reg()
		leaf.Li(tv, 1234)
		leaf.Imm(isa.ADDI, isa.RV, isa.A0, 1)
		leaf.Ret()
		leaf.Finish()

		f := prog.NewBuilder(pr, "main")
		x := f.Reg()
		f.Li(x, 41) // x must survive the call
		f.Li(isa.A0, 1)
		f.Call("leaf")
		f.ALU(isa.ADD, x, x, isa.RV)
		f.Out(x) // 43
		f.Halt()
		f.Finish()
		return pr
	}
	orig := build()
	alloc := build()
	stats, err := Allocate(alloc)
	if err != nil {
		t.Fatal(err)
	}
	noVirtualsLeft(t, alloc)
	sameBehavior(t, orig, alloc)
	if stats["main"].Spilled == 0 {
		t.Error("call-crossing virtual must be spilled")
	}
}

// Random straight-line + branching programs must behave identically after
// allocation (property test).
func TestAllocatePropertyRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		seed := rng.Int63()
		build := func() *prog.Program { return randomProgram(seed) }
		orig := build()
		alloc := build()
		if _, err := Allocate(alloc); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		noVirtualsLeft(t, alloc)
		sameBehavior(t, orig, alloc)
	}
}

// randomProgram builds a deterministic random program from a seed: a few
// blocks of arithmetic over a pool of virtuals with a bounded loop and a
// conditional, ending by printing everything.
func randomProgram(seed int64) *prog.Program {
	rng := rand.New(rand.NewSource(seed))
	pr := prog.New()
	f := prog.NewBuilder(pr, "main")
	n := 4 + rng.Intn(12)
	regs := make([]isa.Reg, n)
	for i := range regs {
		regs[i] = f.Reg()
		f.Li(regs[i], int32(rng.Intn(100)))
	}
	ops := []isa.Op{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SLT, isa.MUL}
	body := f.Block("body")
	done := f.Block("done")
	ctr := f.Reg()
	f.Li(ctr, int32(2+rng.Intn(5)))
	f.Goto(body)
	f.Enter(body)
	for k := 0; k < 8+rng.Intn(16); k++ {
		op := ops[rng.Intn(len(ops))]
		f.ALU(op, regs[rng.Intn(n)], regs[rng.Intn(n)], regs[rng.Intn(n)])
	}
	f.Imm(isa.ADDI, ctr, ctr, -1)
	f.Branch(isa.BGTZ, ctr, isa.R0, body, done)
	f.Enter(done)
	for i := range regs {
		f.Out(regs[i])
	}
	f.Halt()
	f.Finish()
	return pr
}
