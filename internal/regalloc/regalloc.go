// Package regalloc implements the paper's register allocation scheme:
// instruction scheduling is performed *after* register allocation, and the
// allocator is round-robin "to minimize these [anti- and output-]
// dependences" (paper §3.2.1).
//
// Workloads are written against unbounded virtual registers; Allocate maps
// every virtual register onto the 32 architectural registers. Virtual
// registers that do not fit (or that live across calls, which clobber the
// caller's registers under our all-caller-saved convention) are spilled to
// statically allocated memory slots. Static spill slots make spilled
// procedures non-reentrant; the workloads use explicit memory stacks for
// recursion, as non-numerical C codes of the era commonly compiled to
// caller-managed frames anyway.
package regalloc

import (
	"fmt"
	"sort"

	"boosting/internal/dataflow"
	"boosting/internal/isa"
	"boosting/internal/prog"
)

// Pool is the set of architectural registers available for allocation.
// It excludes R0 (zero), RV/A0..A3 (linkage values), SP and RA.
var Pool = []isa.Reg{
	1, 3, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21,
	22, 23, 24, 25, 26, 27, 28, 30,
}

// Stats reports what the allocator did.
type Stats struct {
	// Assigned counts virtual registers given architectural registers.
	Assigned int
	// Spilled counts virtual registers demoted to memory slots.
	Spilled int
	// SpillBytes is the static memory consumed by spill slots.
	SpillBytes int
}

// Allocate rewrites the program in place so that no virtual registers
// remain. It returns per-procedure statistics keyed by name.
func Allocate(pr *prog.Program) (map[string]*Stats, error) {
	out := map[string]*Stats{}
	for _, p := range pr.ProcList() {
		st, err := allocateProc(pr, p)
		if err != nil {
			return nil, fmt.Errorf("regalloc %s: %w", p.Name, err)
		}
		out[p.Name] = st
	}
	return out, nil
}

type allocator struct {
	pr *prog.Program
	p  *prog.Proc
	st *Stats
	// spillSlot maps a spilled virtual register to its memory address.
	spillSlot map[isa.Reg]uint32
	// temp marks virtuals created by spilling; they are short-lived and
	// must never themselves be chosen for spilling (that would not reduce
	// register pressure and the allocation would not converge).
	temp map[isa.Reg]bool
}

func allocateProc(pr *prog.Program, p *prog.Proc) (*Stats, error) {
	a := &allocator{pr: pr, p: p, st: &Stats{}, spillSlot: map[isa.Reg]uint32{}, temp: map[isa.Reg]bool{}}

	// Step 1: spill every virtual live across a call (our convention is
	// all-caller-saved, and spilling is the caller's save).
	a.spillCallCrossing()

	// Step 2: iterate coloring; on failure spill the worst offender.
	for round := 0; ; round++ {
		if round > 256 {
			return nil, fmt.Errorf("did not converge after %d spill rounds", round)
		}
		failed, err := a.color()
		if err != nil {
			return nil, err
		}
		if failed == 0 {
			break
		}
		if a.temp[failed] {
			return nil, fmt.Errorf("register pressure from spill temporaries alone exceeds the pool")
		}
		a.spill(failed)
	}
	return a.st, nil
}

// virtuals returns the virtual registers mentioned in the proc, in first-
// appearance order.
func (a *allocator) virtuals() []isa.Reg {
	var order []isa.Reg
	seen := map[isa.Reg]bool{}
	var tmp []isa.Reg
	for _, b := range a.p.Blocks {
		for i := range b.Insts {
			tmp = b.Insts[i].Defs(tmp[:0])
			tmp = b.Insts[i].Uses(tmp)
			for _, r := range tmp {
				if r.IsVirtual() && !seen[r] {
					seen[r] = true
					order = append(order, r)
				}
			}
		}
	}
	return order
}

// spillCallCrossing finds virtuals live across JAL instructions and spills
// them.
func (a *allocator) spillCallCrossing() {
	lv := dataflow.ComputeLiveness(a.p)
	crossing := map[isa.Reg]bool{}
	for _, b := range a.p.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Op != isa.JAL {
				continue
			}
			// JAL terminates the block; everything live out of the block
			// except values produced by the call itself crosses the call.
			live := lv.Out[b.ID]
			live.ForEach(func(r int) {
				if isa.Reg(r).IsVirtual() {
					crossing[isa.Reg(r)] = true
				}
			})
		}
	}
	var list []isa.Reg
	for r := range crossing {
		list = append(list, r)
	}
	sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	for _, r := range list {
		a.spill(r)
	}
}

// spill rewrites every def of v into a store to a static slot and every
// use into a load through a fresh short-lived virtual.
func (a *allocator) spill(v isa.Reg) {
	slot, ok := a.spillSlot[v]
	if !ok {
		slot = a.pr.Reserve(4)
		a.spillSlot[v] = slot
		a.st.Spilled++
		a.st.SpillBytes += 4
	}
	for _, b := range a.p.Blocks {
		var out []isa.Inst
		var tmp []isa.Reg
		for i := range b.Insts {
			in := b.Insts[i]
			usesV := false
			tmp = in.Uses(tmp[:0])
			for _, r := range tmp {
				if r == v {
					usesV = true
				}
			}
			defsV := false
			tmp = in.Defs(tmp[:0])
			for _, r := range tmp {
				if r == v {
					defsV = true
				}
			}
			if !usesV && !defsV {
				out = append(out, in)
				continue
			}
			t := a.pr.FreshReg()
			a.temp[t] = true
			if usesV {
				// addr = slot; load t, 0(addr) — use ADDI from R0 trick via
				// LUI/ORI materialization would cost registers; instead
				// address the slot directly through R0 when it fits, else
				// through a second temp.
				out = append(out, a.loadSlot(t, slot)...)
			}
			rewriteReg(&in, v, t)
			if usesV && !defsV {
				out = append(out, in)
				continue
			}
			out = append(out, in)
			out = append(out, a.storeSlot(t, slot)...)
		}
		b.Insts = out
	}
}

// loadSlot emits instructions loading the slot into t.
func (a *allocator) loadSlot(t isa.Reg, slot uint32) []isa.Inst {
	if slot < 0x8000 {
		return []isa.Inst{{Op: isa.LW, Rd: t, Rs: isa.R0, Imm: int32(slot), ID: a.pr.NextInstID()}}
	}
	addr := a.pr.FreshReg()
	a.temp[addr] = true
	return []isa.Inst{
		{Op: isa.LUI, Rd: addr, Imm: int32(slot >> 16), ID: a.pr.NextInstID()},
		{Op: isa.ORI, Rd: addr, Rs: addr, Imm: int32(slot & 0xFFFF), ID: a.pr.NextInstID()},
		{Op: isa.LW, Rd: t, Rs: addr, Imm: 0, ID: a.pr.NextInstID()},
	}
}

// storeSlot emits instructions storing t to the slot.
func (a *allocator) storeSlot(t isa.Reg, slot uint32) []isa.Inst {
	if slot < 0x8000 {
		return []isa.Inst{{Op: isa.SW, Rt: t, Rs: isa.R0, Imm: int32(slot), ID: a.pr.NextInstID()}}
	}
	addr := a.pr.FreshReg()
	a.temp[addr] = true
	return []isa.Inst{
		{Op: isa.LUI, Rd: addr, Imm: int32(slot >> 16), ID: a.pr.NextInstID()},
		{Op: isa.ORI, Rd: addr, Rs: addr, Imm: int32(slot & 0xFFFF), ID: a.pr.NextInstID()},
		{Op: isa.SW, Rt: t, Rs: addr, Imm: 0, ID: a.pr.NextInstID()},
	}
}

// rewriteReg substitutes register old with new in the instruction's
// operand fields.
func rewriteReg(in *isa.Inst, old, new isa.Reg) {
	if in.Rd == old {
		in.Rd = new
	}
	if in.Rs == old {
		in.Rs = new
	}
	if in.Rt == old {
		in.Rt = new
	}
}

// color attempts a full round-robin assignment. It returns 0 on success or
// the virtual register chosen for spilling on failure.
func (a *allocator) color() (isa.Reg, error) {
	lv := dataflow.ComputeLiveness(a.p)
	order := a.virtuals()
	if len(order) == 0 {
		return 0, nil
	}

	// Build the interference graph: at every definition point, the
	// defined register interferes with everything live after it. Also
	// interferes among simultaneously live-in registers at block entries
	// (covers parameters and loop-carried values).
	interf := map[isa.Reg]map[isa.Reg]bool{}
	addI := func(x, y isa.Reg) {
		if x == y || !x.IsVirtual() || !y.IsVirtual() {
			return
		}
		if interf[x] == nil {
			interf[x] = map[isa.Reg]bool{}
		}
		if interf[y] == nil {
			interf[y] = map[isa.Reg]bool{}
		}
		interf[x][y] = true
		interf[y][x] = true
	}
	var tmp []isa.Reg
	for _, b := range a.p.Blocks {
		live := lv.Out[b.ID].CloneSet()
		for i := len(b.Insts) - 1; i >= 0; i-- {
			in := &b.Insts[i]
			tmp = in.Defs(tmp[:0])
			for _, d := range tmp {
				live.ForEach(func(r int) { addI(d, isa.Reg(r)) })
				// Two defs in the same instruction would interfere, but
				// our ISA has single defs.
			}
			for _, d := range tmp {
				if d != isa.R0 {
					live.Clear(int(d))
				}
			}
			tmp = in.Uses(tmp[:0])
			for _, u := range tmp {
				live.Set(int(u))
			}
		}
		// Mutual interference among block live-ins.
		var ins []isa.Reg
		live.ForEach(func(r int) {
			if isa.Reg(r).IsVirtual() {
				ins = append(ins, isa.Reg(r))
			}
		})
		for i := 0; i < len(ins); i++ {
			for j := i + 1; j < len(ins); j++ {
				addI(ins[i], ins[j])
			}
		}
	}

	assign := map[isa.Reg]isa.Reg{}
	rr := 0
	for _, v := range order {
		found := false
		for k := 0; k < len(Pool); k++ {
			cand := Pool[(rr+k)%len(Pool)]
			ok := true
			for n := range interf[v] {
				if assign[n] == cand {
					ok = false
					break
				}
			}
			if ok {
				assign[v] = cand
				rr = (rr + k + 1) % len(Pool)
				found = true
				break
			}
		}
		if !found {
			// Spill the non-temporary virtual with the most interference
			// (temporaries are already minimal live ranges).
			var worst isa.Reg
			for _, w := range order {
				if a.temp[w] || assign[w] != 0 {
					continue
				}
				if worst == 0 || len(interf[w]) > len(interf[worst]) {
					worst = w
				}
			}
			if worst == 0 {
				// Every remaining unassigned virtual is a temporary; the
				// pool is exhausted by long-lived neighbors, so spill the
				// heaviest non-temporary neighbor of the failing temp.
				for n := range interf[v] {
					if a.temp[n] {
						continue
					}
					if worst == 0 || len(interf[n]) > len(interf[worst]) ||
						(len(interf[n]) == len(interf[worst]) && n < worst) {
						worst = n
					}
				}
			}
			if worst == 0 {
				worst = v // only temporaries anywhere; caller reports the error
			}
			return worst, nil
		}
	}

	// Apply the assignment.
	for _, b := range a.p.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if phys, ok := assign[in.Rd]; ok {
				in.Rd = phys
			}
			if phys, ok := assign[in.Rs]; ok {
				in.Rs = phys
			}
			if phys, ok := assign[in.Rt]; ok {
				in.Rt = phys
			}
		}
	}
	a.st.Assigned += len(assign)
	return 0, nil
}
