package memhier

// prefetcher observes the demand access stream and issues background
// fills through Hierarchy.prefetchLine. miss reports an L1 demand miss;
// prefHit reports that the access was served by a prefetch (a hit on a
// prefetched line, or a merge with an in-flight prefetch) — the feedback
// that keeps a stream running once its prefetches start hitting.
// Implementations must be deterministic: the same observation sequence
// always issues the same prefetch sequence.
type prefetcher interface {
	observe(h *Hierarchy, now int64, pc int, addr uint32, miss, prefHit bool)
}

// strideEntry is one row of the per-instruction stride table.
type strideEntry struct {
	pc       int
	lastAddr uint32
	stride   int32
	conf     int8
	valid    bool
}

// stridePrefetcher is a classic reference-prediction table: per static
// memory instruction it tracks the last address and the last observed
// stride, and once the same stride repeats (confidence ≥ 2) it prefetches
// degree strides ahead. It trains on every access, hit or miss, so up-,
// down- and large-strided streams are all detected.
type stridePrefetcher struct {
	table  []strideEntry // direct-mapped by pc
	degree int
}

const strideTableSize = 64

func newStridePrefetcher(degree int) *stridePrefetcher {
	return &stridePrefetcher{table: make([]strideEntry, strideTableSize), degree: degree}
}

func (p *stridePrefetcher) observe(h *Hierarchy, now int64, pc int, addr uint32, miss, prefHit bool) {
	e := &p.table[pc&(strideTableSize-1)]
	if !e.valid || e.pc != pc {
		*e = strideEntry{pc: pc, lastAddr: addr, valid: true}
		return
	}
	stride := int32(addr - e.lastAddr)
	e.lastAddr = addr
	switch {
	case stride == 0:
		return // same address; nothing to learn
	case stride == e.stride:
		if e.conf < 4 {
			e.conf++
		}
	default:
		e.stride = stride
		e.conf = 1
		return
	}
	if e.conf < 2 {
		return
	}
	for k := 1; k <= p.degree; k++ {
		h.prefetchLine(now, addr+uint32(stride*int32(k)))
	}
}

// stream is one detected sequential stream.
type stream struct {
	nextLine uint32 // the line a continuing stream touches next
	dir      int32  // +1 ascending, -1 descending
	valid    bool
}

// streamPrefetcher detects sequential line streams (the classic
// stream-buffer scheme): two misses on adjacent lines confirm a stream,
// which then runs degree lines ahead of the demand accesses. Hits on
// prefetched lines advance the stream, so a confirmed stream keeps
// prefetching as long as the program keeps walking it. A small set of
// concurrent streams is held, replaced round-robin.
type streamPrefetcher struct {
	streams []stream
	next    int // round-robin allocation cursor
	degree  int
}

const streamCount = 4

func newStreamPrefetcher(degree int) *streamPrefetcher {
	return &streamPrefetcher{streams: make([]stream, streamCount), degree: degree}
}

func (p *streamPrefetcher) observe(h *Hierarchy, now int64, pc int, addr uint32, miss, prefHit bool) {
	if !miss && !prefHit {
		return // plain hits carry no stream signal
	}
	line := h.l1.lineOf(addr)
	lineBytes := uint32(h.cfg.L1.LineBytes)
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid || s.nextLine != line {
			continue
		}
		// Continuation: run degree lines ahead and advance.
		for k := 1; k <= p.degree; k++ {
			h.prefetchLine(now, (line+uint32(s.dir*int32(k)))*lineBytes)
		}
		s.nextLine = line + uint32(s.dir)
		return
	}
	if !miss {
		return // prefetch hit from a stream we no longer track
	}
	// A candidate expecting line+1 was allocated by a miss on line+1: this
	// miss one line below it reveals a descending stream.
	for i := range p.streams {
		s := &p.streams[i]
		if s.valid && s.dir > 0 && s.nextLine == line+2 {
			s.dir = -1
			s.nextLine = line - 1
			for k := 1; k <= p.degree; k++ {
				h.prefetchLine(now, (line-uint32(k))*lineBytes)
			}
			return
		}
	}
	p.streams[p.next] = stream{nextLine: line + 1, dir: +1, valid: true}
	p.next = (p.next + 1) % len(p.streams)
}
