package memhier

import (
	"strings"
	"testing"
)

// access is one scripted demand access.
type access struct {
	now   int64
	addr  uint32
	store bool
	stall int64 // expected return value
}

// runScript drives a hierarchy through the script, asserting each stall.
func runScript(t *testing.T, h *Hierarchy, script []access) {
	t.Helper()
	for i, a := range script {
		if got := h.Access(a.now, i, a.addr, a.store); got != a.stall {
			t.Fatalf("access %d (@%#x now=%d store=%v): stall = %d, want %d",
				i, a.addr, a.now, a.store, got, a.stall)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string // substring of the error ("" = valid)
	}{
		{"default", func(c *Config) {}, ""},
		{"single-level", func(c *Config) { *c = SingleLevel(512, 1, 16, 12) }, ""},
		{"zero-l1", func(c *Config) { c.L1.Sets = 0 }, "bad L1"},
		{"npot-sets", func(c *Config) { c.L1.Sets = 3 }, "powers of two"},
		{"npot-line", func(c *Config) { c.L2.LineBytes = 24 }, "powers of two"},
		{"bad-policy", func(c *Config) { c.L1.Policy = "mru" }, "replacement policy"},
		{"bad-prefetcher", func(c *Config) { c.Prefetch = "markov" }, "prefetcher"},
		{"negative-latency", func(c *Config) { c.MemLatency = -1 }, "negative latency"},
		{"negative-mshrs", func(c *Config) { c.MSHRs = -1 }, "negative structure"},
		{"valid-stride", func(c *Config) { c.Prefetch = "stride" }, ""},
		{"valid-stream", func(c *Config) { c.Prefetch = "stream" }, ""},
		{"valid-fifo", func(c *Config) { c.L1.Policy = PolicyFIFO }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Default()
			tc.mut(&cfg)
			_, err := New(cfg)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestReplacementPolicies pins the eviction order of each policy on a
// 1-set 2-way cache: fill A and B, re-touch A, then fill C and observe
// which of A/B survived.
func TestReplacementPolicies(t *testing.T) {
	// Lines A, B, C map to the same (only) set.
	const A, B, C = 0x1000, 0x2000, 0x3000
	const miss = 10
	cases := []struct {
		policy         Policy
		aStall, bStall int64 // stall of the final A and B probes
	}{
		// LRU: touching A makes B least-recent; C evicts B.
		{PolicyLRU, 0, miss},
		// FIFO: A was filled first regardless of the touch; C evicts A.
		// Refilling A then evicts B (next-oldest), so B misses too.
		{PolicyFIFO, miss, miss},
	}
	for _, tc := range cases {
		t.Run(string(tc.policy), func(t *testing.T) {
			cfg := SingleLevel(1, 2, 16, miss)
			cfg.L1.Policy = tc.policy
			h, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			runScript(t, h, []access{
				{now: 0, addr: A, stall: miss},
				{now: 100, addr: B, stall: miss},
				{now: 200, addr: A, stall: 0}, // recency touch
				{now: 300, addr: C, stall: miss},
				{now: 400, addr: A, stall: tc.aStall},
				{now: 500, addr: B, stall: tc.bStall},
			})
		})
	}
}

// TestRandomPolicyDeterministic runs the same access sequence through two
// independently built random-policy hierarchies and requires identical
// stalls and stats: determinism is what keeps the two simulator engines
// cycle-identical.
func TestRandomPolicyDeterministic(t *testing.T) {
	mk := func() *Hierarchy {
		cfg := SingleLevel(2, 4, 16, 7)
		cfg.L1.Policy = PolicyRandom
		h, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	h1, h2 := mk(), mk()
	var now int64
	for i := 0; i < 500; i++ {
		addr := uint32((i * 7919) % 16 * 16) // 16 hot lines over 8 cache lines
		s1 := h1.Access(now, i%13, addr, i%3 == 0)
		s2 := h2.Access(now, i%13, addr, i%3 == 0)
		if s1 != s2 {
			t.Fatalf("access %d: stalls diverge (%d vs %d)", i, s1, s2)
		}
		now += 1 + s1
	}
	if h1.Stats() != h2.Stats() {
		t.Fatalf("stats diverge:\n%+v\n%+v", h1.Stats(), h2.Stats())
	}
	if h1.Stats().L1Misses == 0 || h1.Stats().L1Hits == 0 {
		t.Fatalf("degenerate workload: %+v", h1.Stats())
	}
}

// TestMSHRMerge pins miss merging: a load to a line whose fill is already
// in flight (started by a buffered store) stalls only for the remaining
// fill time, not the full latency.
func TestMSHRMerge(t *testing.T) {
	cfg := SingleLevel(16, 1, 16, 20)
	cfg.WriteBuffer = 2
	cfg.MSHRs = 4
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, h, []access{
		// Store miss retires into the write buffer: line in flight, ready
		// at cycle 20, no stall.
		{now: 0, addr: 0x1000, store: true, stall: 0},
		// Load to the same line 5 cycles later merges: waits 20-5 = 15.
		{now: 5, addr: 0x1004, stall: 15},
		// Same line again after the fill landed: plain hit.
		{now: 30, addr: 0x1008, stall: 0},
	})
	st := h.Stats()
	if st.MSHRMerges != 1 {
		t.Errorf("MSHRMerges = %d, want 1", st.MSHRMerges)
	}
	if st.L1Misses != 2 || st.L1Hits != 1 {
		t.Errorf("L1 hits/misses = %d/%d, want 1/2", st.L1Hits, st.L1Misses)
	}
}

// TestMSHRFullStall pins the finite-MSHR structural hazard: with a single
// MSHR, a second outstanding fill must wait for the first to complete.
func TestMSHRFullStall(t *testing.T) {
	cfg := SingleLevel(16, 1, 16, 20)
	cfg.WriteBuffer = 2
	cfg.MSHRs = 1
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, h, []access{
		{now: 0, addr: 0x1000, store: true, stall: 0}, // occupies the MSHR until 20
		// A different line needs a second MSHR: wait 20-1 = 19 cycles for
		// the first fill, then retire into the write buffer.
		{now: 1, addr: 0x2000, store: true, stall: 19},
	})
	st := h.Stats()
	if st.MSHRFullStalls != 19 {
		t.Errorf("MSHRFullStalls = %d, want 19", st.MSHRFullStalls)
	}
}

// TestWriteBufferDrain pins buffered-store behavior: stores fill the
// buffer without stalling, a store past capacity waits for the earliest
// drain, and drained lines land in L1 (later probes hit).
func TestWriteBufferDrain(t *testing.T) {
	cfg := SingleLevel(16, 4, 16, 20) // 4-way: the two lines can coexist
	cfg.WriteBuffer = 1
	cfg.MSHRs = 4
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, h, []access{
		{now: 0, addr: 0x1000, store: true, stall: 0},  // buffered; drains at 20
		{now: 1, addr: 0x2000, store: true, stall: 19}, // buffer full: waits for the drain
		// Both lines were installed when their fills completed.
		{now: 100, addr: 0x1000, stall: 0},
		{now: 101, addr: 0x2000, stall: 0},
	})
	st := h.Stats()
	if st.WriteBufferStalls != 19 {
		t.Errorf("WriteBufferStalls = %d, want 19", st.WriteBufferStalls)
	}
	if st.L1Hits != 2 {
		t.Errorf("L1Hits = %d, want 2 (drained lines must be installed)", st.L1Hits)
	}
}

// TestBlockingStores pins the WriteBuffer=0 regime: store misses block
// for the full latency exactly like loads (the original single-level
// extension's behavior).
func TestBlockingStores(t *testing.T) {
	h, err := New(SingleLevel(16, 1, 16, 12))
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, h, []access{
		{now: 0, addr: 0x1000, store: true, stall: 12},
		{now: 20, addr: 0x1000, store: true, stall: 0},
		{now: 40, addr: 0x2000, stall: 12},
	})
}

// strideCase drives one synthetic address stream through the stride
// prefetcher and asserts it locks on: after a warmup the stream's misses
// are absorbed by prefetches.
func TestStridePrefetcher(t *testing.T) {
	cases := []struct {
		name   string
		stride int32
	}{
		{"ascending-lines", 16}, // one line per access
		{"descending-lines", -16},
		{"strided-64", 64}, // skips lines
		{"strided-48", 48}, // line-misaligned stride
		{"descending-64", -64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := SingleLevel(512, 1, 16, 30)
			cfg.Prefetch = "stride"
			cfg.PrefetchDegree = 4
			cfg.MSHRs = 8
			h, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			const n = 64
			base := uint32(0x100000)
			now := int64(0)
			var tail int64 // stalls over the second half of the stream
			for i := 0; i < n; i++ {
				addr := base + uint32(tc.stride*int32(i))
				s := h.Access(now, 1, addr, false)
				if i >= n/2 {
					tail += s
				}
				now += 10 + s // 10 work cycles between accesses
			}
			st := h.Stats()
			if st.PrefIssued == 0 {
				t.Fatalf("prefetcher never issued: %+v", st)
			}
			if st.PrefUseful == 0 {
				t.Fatalf("no useful prefetches: %+v", st)
			}
			if tail != 0 {
				t.Errorf("locked-on stream still stalls %d cycles in its second half: %+v", tail, st)
			}
			if acc := st.PrefetchAccuracy(); acc < 0.5 {
				t.Errorf("accuracy = %.2f, want >= 0.5 (%+v)", acc, st)
			}
		})
	}
}

// TestStreamPrefetcher drives sequential line walks (both directions)
// through the stream prefetcher.
func TestStreamPrefetcher(t *testing.T) {
	for _, dir := range []int32{+1, -1} {
		name := "ascending"
		if dir < 0 {
			name = "descending"
		}
		t.Run(name, func(t *testing.T) {
			cfg := SingleLevel(512, 1, 16, 30)
			cfg.Prefetch = "stream"
			cfg.PrefetchDegree = 4
			cfg.MSHRs = 8
			h, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			const n = 64
			base := uint32(0x100000)
			now := int64(0)
			var tail int64
			for i := 0; i < n; i++ {
				// Walk every word of every line so the stream sees hits too.
				for w := uint32(0); w < 4; w++ {
					addr := base + uint32(dir*int32(i))*16 + w*4
					s := h.Access(now, 2, addr, false)
					if i >= n/2 {
						tail += s
					}
					now += 3 + s
				}
			}
			st := h.Stats()
			if st.PrefIssued == 0 || st.PrefUseful == 0 {
				t.Fatalf("stream never locked on: %+v", st)
			}
			if tail != 0 {
				t.Errorf("locked-on stream still stalls %d cycles in its second half: %+v", tail, st)
			}
			if cov := st.PrefetchCoverage(); cov < 0.5 {
				t.Errorf("coverage = %.2f, want >= 0.5 (%+v)", cov, st)
			}
		})
	}
}

// TestPrefetchTimeliness pins the late-prefetch counter: a demand access
// arriving while its prefetch is still in flight merges, counts useful,
// and counts late.
func TestPrefetchTimeliness(t *testing.T) {
	cfg := SingleLevel(512, 1, 16, 100) // slow memory: prefetches are late
	cfg.Prefetch = "stride"
	cfg.MSHRs = 8
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	for i := 0; i < 16; i++ {
		s := h.Access(now, 3, uint32(0x100000+16*i), false)
		now += 1 + s // back-to-back accesses: no time to hide 100 cycles
	}
	st := h.Stats()
	if st.PrefLate == 0 {
		t.Fatalf("no late prefetches counted: %+v", st)
	}
	if st.PrefLate > st.PrefUseful {
		t.Fatalf("late (%d) > useful (%d)", st.PrefLate, st.PrefUseful)
	}
}

// TestTwoLevel pins the L2 path: an L1 miss that hits L2 pays only
// L2Latency; a miss in both pays L2Latency+MemLatency; L1 evictions
// re-fill from L2 cheaply.
func TestTwoLevel(t *testing.T) {
	cfg := Config{
		L1:         CacheConfig{Sets: 1, Ways: 1, LineBytes: 16},
		L2:         CacheConfig{Sets: 64, Ways: 4, LineBytes: 32},
		L2Latency:  6,
		MemLatency: 24,
	}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, h, []access{
		{now: 0, addr: 0x1000, stall: 30},   // cold: L2 miss, 6+24
		{now: 100, addr: 0x2000, stall: 30}, // evicts 0x1000 from the 1-line L1
		{now: 200, addr: 0x1000, stall: 6},  // back: L2 still holds it
	})
	st := h.Stats()
	if st.L2Hits != 1 || st.L2Misses != 2 {
		t.Errorf("L2 hits/misses = %d/%d, want 1/2", st.L2Hits, st.L2Misses)
	}
}

// TestStatsRatios covers the derived-ratio helpers, including their
// zero-denominator guards.
func TestStatsRatios(t *testing.T) {
	var z Stats
	if z.L1MissRate() != 0 || z.L2MissRate() != 0 || z.PrefetchAccuracy() != 0 || z.PrefetchCoverage() != 0 {
		t.Fatalf("zero stats must yield zero ratios")
	}
	s := Stats{Accesses: 10, L1Misses: 2, L2Hits: 1, L2Misses: 3,
		PrefIssued: 4, PrefUseful: 2, DemandFills: 2}
	if got := s.L1MissRate(); got != 0.2 {
		t.Errorf("L1MissRate = %v", got)
	}
	if got := s.L2MissRate(); got != 0.75 {
		t.Errorf("L2MissRate = %v", got)
	}
	if got := s.PrefetchAccuracy(); got != 0.5 {
		t.Errorf("PrefetchAccuracy = %v", got)
	}
	if got := s.PrefetchCoverage(); got != 0.5 {
		t.Errorf("PrefetchCoverage = %v", got)
	}
}

// TestConfigKeyDistinguishes asserts every knob shows up in the memo key.
func TestConfigKeyDistinguishes(t *testing.T) {
	base := Default()
	muts := []func(*Config){
		func(c *Config) { c.L1.Sets = 256 },
		func(c *Config) { c.L1.Policy = PolicyFIFO },
		func(c *Config) { c.L2 = CacheConfig{} },
		func(c *Config) { c.L2Latency = 9 },
		func(c *Config) { c.MemLatency = 99 },
		func(c *Config) { c.MSHRs = 8 },
		func(c *Config) { c.WriteBuffer = 0 },
		func(c *Config) { c.Prefetch = "stride" },
		func(c *Config) { c.Prefetch = "stream"; c.PrefetchDegree = 8 },
	}
	seen := map[string]bool{base.Key(): true}
	for i, mut := range muts {
		cfg := base
		mut(&cfg)
		k := cfg.Key()
		if seen[k] {
			t.Errorf("mutation %d collides with an earlier key: %s", i, k)
		}
		seen[k] = true
	}
	// Defaulted fields must key like their explicit values.
	a, b := Default(), Default()
	b.MSHRs = 4
	b.PrefetchDegree = 2
	if a.Key() != b.Key() {
		t.Errorf("default and explicit-default keys differ:\n%s\n%s", a.Key(), b.Key())
	}
}

// TestPoliciesAndBytes covers the small introspection helpers.
func TestPoliciesAndBytes(t *testing.T) {
	if len(Policies()) != 3 {
		t.Errorf("Policies() = %v", Policies())
	}
	if got := Default().L1.Bytes(); got != 8192 {
		t.Errorf("default L1 = %d bytes, want 8192", got)
	}
	if !Default().HasL2() || SingleLevel(4, 1, 16, 1).HasL2() {
		t.Errorf("HasL2 misreports")
	}
	h, _ := New(Default())
	if h.Config().Key() != Default().Key() {
		t.Errorf("Config() does not round-trip")
	}
}

// TestPrefetchDropsWhenMSHRsFull: prefetches never stall and are dropped
// when no MSHR is free.
func TestPrefetchDropsWhenMSHRsFull(t *testing.T) {
	cfg := SingleLevel(512, 1, 16, 50)
	cfg.Prefetch = "stride"
	cfg.PrefetchDegree = 4
	cfg.MSHRs = 1
	cfg.WriteBuffer = 1
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	for i := 0; i < 8; i++ {
		s := h.Access(now, 4, uint32(0x100000+16*i), true)
		now += 1 + s
	}
	st := h.Stats()
	// With one MSHR shared by demand fills, at most a trickle of
	// prefetches can ever be outstanding; the machine must still be
	// making progress and nothing may deadlock.
	if st.Accesses != 8 {
		t.Fatalf("stats lost accesses: %+v", st)
	}
}
