package memhier

import "fmt"

// Policy names a cache replacement policy. All policies are fully
// deterministic — PolicyRandom draws from a fixed-seed xorshift stream —
// so two runs of the same access sequence always evict the same lines.
type Policy string

const (
	// PolicyLRU evicts the least-recently-used way (the default).
	PolicyLRU Policy = "lru"
	// PolicyFIFO evicts the way that was filled earliest, ignoring hits.
	PolicyFIFO Policy = "fifo"
	// PolicyRandom evicts a deterministically pseudo-random way.
	PolicyRandom Policy = "random"
)

// Policies lists the supported replacement policies.
func Policies() []Policy { return []Policy{PolicyLRU, PolicyFIFO, PolicyRandom} }

// CacheConfig describes one cache level.
type CacheConfig struct {
	// Sets and Ways give the organization; LineBytes the block size.
	// Sets and LineBytes must be powers of two.
	Sets, Ways, LineBytes int
	// Policy selects the replacement policy ("" = LRU).
	Policy Policy
}

// Bytes returns the total capacity of the level.
func (c CacheConfig) Bytes() int { return c.Sets * c.Ways * c.LineBytes }

func (c CacheConfig) validate(level string) error {
	if c.Sets <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("memhier: bad %s config %+v", level, c)
	}
	if c.Sets&(c.Sets-1) != 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("memhier: %s sets and line size must be powers of two", level)
	}
	switch c.Policy {
	case "", PolicyLRU, PolicyFIFO, PolicyRandom:
		return nil
	}
	return fmt.Errorf("memhier: unknown replacement policy %q (want lru, fifo or random)", c.Policy)
}

// invalidTag marks an empty way.
const invalidTag = ^uint32(0)

// cache is a set-associative tag store: the L1/L2 building block of the
// hierarchy. It holds no data — the timing-only contract means only the
// presence of an address matters — and it separates probe (lookup, update
// recency) from fill (install, evict) so the hierarchy can install lines
// when an outstanding fill completes rather than when it was requested.
type cache struct {
	cfg    CacheConfig
	tags   []uint32 // sets × ways, flattened
	meta   []int64  // recency (LRU) or fill order (FIFO) per way
	pref   []bool   // line was filled by a prefetch and not yet demanded
	tick   int64
	rng    uint64 // xorshift state for PolicyRandom (fixed seed)
	hits   int64
	misses int64
}

func newCache(cfg CacheConfig) *cache {
	n := cfg.Sets * cfg.Ways
	c := &cache{cfg: cfg, tags: make([]uint32, n), meta: make([]int64, n),
		pref: make([]bool, n), rng: 0x9e3779b97f4a7c15}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c
}

// lineOf maps an address to its line number in this cache's geometry.
func (c *cache) lineOf(addr uint32) uint32 { return addr / uint32(c.cfg.LineBytes) }

func (c *cache) slot(line uint32) (base int, tag uint32) {
	set := int(line) & (c.cfg.Sets - 1)
	return set * c.cfg.Ways, line / uint32(c.cfg.Sets)
}

// probe looks the line up, updating recency on a hit. wasPrefetch reports
// (and clears) the line's prefetched-not-yet-demanded bit, so the first
// demand hit on a prefetched line is countable exactly once.
func (c *cache) probe(line uint32) (hit, wasPrefetch bool) {
	base, tag := c.slot(line)
	c.tick++
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == tag {
			if c.cfg.Policy != PolicyFIFO {
				c.meta[base+w] = c.tick
			}
			wasPrefetch = c.pref[base+w]
			c.pref[base+w] = false
			c.hits++
			return true, wasPrefetch
		}
	}
	c.misses++
	return false, false
}

// contains reports presence without touching recency or statistics (used
// by the prefetchers to filter redundant requests).
func (c *cache) contains(line uint32) bool {
	base, tag := c.slot(line)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// fill installs the line, evicting per the replacement policy. prefetched
// marks the line for usefulness accounting. Filling a line that is already
// present only refreshes its metadata.
func (c *cache) fill(line uint32, prefetched bool) {
	base, tag := c.slot(line)
	c.tick++
	victim := -1
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == tag {
			victim = w // already present (racing fills); refresh
			break
		}
		if c.tags[base+w] == invalidTag && victim < 0 {
			victim = w
		}
	}
	if victim < 0 {
		switch c.cfg.Policy {
		case PolicyRandom:
			// xorshift64*: deterministic, seeded at construction.
			c.rng ^= c.rng >> 12
			c.rng ^= c.rng << 25
			c.rng ^= c.rng >> 27
			victim = int((c.rng * 0x2545f4914f6cdd1d) >> 33 % uint64(c.cfg.Ways))
		default: // LRU and FIFO both evict the smallest meta
			victim = 0
			for w := 1; w < c.cfg.Ways; w++ {
				if c.meta[base+w] < c.meta[base+victim] {
					victim = w
				}
			}
		}
	}
	c.tags[base+victim] = tag
	c.meta[base+victim] = c.tick
	c.pref[base+victim] = prefetched
}
