// Package memhier models a configurable memory hierarchy: a two-level
// set-associative cache with miss-status holding registers (MSHRs), a
// store/write buffer, and pluggable hardware prefetchers. It extends the
// paper's evaluation, which assumes a perfect memory system and notes
// (§4.3): "The true speedup of our superscalar processor over a scalar
// processor is dependent upon the effectiveness of the memory system."
// Plugging a hierarchy into the timing models quantifies that caveat —
// and exposes the interaction the paper could not study: boosting hoists
// loads above branches, so speculative misses fetch lines (and charge
// stall cycles) for work that may be squashed.
//
// The model is strictly timing-only. Access takes an address, a static
// instruction ID and the current cycle, and returns stall cycles; it
// never reads or writes data, so architectural outputs, store streams and
// squash semantics are byte-identical with the hierarchy on or off — an
// invariant the golden-trace suite and the difftest mem axis enforce.
// Every component is deterministic (PolicyRandom uses a fixed-seed
// xorshift), so the same access sequence always produces the same stall
// sequence, which keeps the two simulator engines cycle-identical.
//
// Timing semantics, in the order Access applies them:
//
//   - Completed fills drain: every outstanding line whose fill time has
//     passed is installed into L1 (and its MSHR freed) before the access
//     is serviced.
//   - L1 hit: no stall.
//   - Miss on an in-flight line (MSHR merge): the access stalls only
//     until that fill completes — the mechanism that makes prefetching
//     and the write buffer overlap memory latency with execution.
//   - Miss needing a new MSHR when all are busy: a structural stall until
//     the earliest outstanding fill frees its register.
//   - Demand load miss: blocks for the full fill latency (L2 hit latency,
//     plus main-memory latency on an L2 miss) — the machine is in-order.
//   - Store miss with a write buffer: the store retires into the buffer
//     without stalling (unless the buffer is full) and its line fills in
//     the background, occupying an MSHR until done.
//
// Prefetchers issue background fills into free MSHRs and never stall the
// machine; their accuracy (useful/issued), coverage (useful over demand
// misses) and timeliness (late arrivals) are counted in Stats.
package memhier

import (
	"fmt"
	"strings"
)

// Config describes the full hierarchy. The zero value is invalid; start
// from Default or SingleLevel.
type Config struct {
	// L1 is the first-level cache, probed on every access.
	L1 CacheConfig
	// L2 is the optional second level; Sets == 0 disables it (L1 misses
	// then pay MemLatency directly).
	L2 CacheConfig
	// L2Latency is the added stall for an L1 miss that hits in L2;
	// MemLatency is the further cost of filling from main memory.
	L2Latency, MemLatency int64
	// MSHRs bounds outstanding line fills (misses, write-buffer drains
	// and prefetches). 0 means the default of 4.
	MSHRs int
	// WriteBuffer is the store/write buffer depth: store misses retire
	// into it without stalling while their lines fill in the background.
	// 0 disables it (store misses block like loads).
	WriteBuffer int
	// Prefetch selects the hardware prefetcher: "" or "none", "stride"
	// (per-instruction stride table) or "stream" (sequential stream
	// detector).
	Prefetch string
	// PrefetchDegree is how many lines ahead the prefetcher runs
	// (0 = default of 2).
	PrefetchDegree int
}

// Default returns a hierarchy typical of the paper's era (R2000-class
// systems): an 8 KiB direct-mapped L1 with 16-byte lines backed by a
// 32 KiB 4-way L2, a 6-cycle L2 hit, a 24-cycle memory fill, 4 MSHRs and
// a 4-entry write buffer, no prefetching.
func Default() Config {
	return Config{
		L1:          CacheConfig{Sets: 512, Ways: 1, LineBytes: 16},
		L2:          CacheConfig{Sets: 256, Ways: 4, LineBytes: 32},
		L2Latency:   6,
		MemLatency:  24,
		MSHRs:       4,
		WriteBuffer: 4,
	}
}

// SingleLevel returns a one-level blocking configuration equivalent to
// the original data-cache extension that predated this package: every
// miss (load or store) stalls for missPenalty cycles, no second level,
// no write buffer, no prefetching.
func SingleLevel(sets, ways, lineBytes int, missPenalty int64) Config {
	return Config{
		L1:         CacheConfig{Sets: sets, Ways: ways, LineBytes: lineBytes},
		MemLatency: missPenalty,
	}
}

// Validate checks the configuration without building a hierarchy.
func (c Config) Validate() error {
	if err := c.L1.validate("L1"); err != nil {
		return err
	}
	if c.HasL2() {
		if err := c.L2.validate("L2"); err != nil {
			return err
		}
	}
	if c.L2Latency < 0 || c.MemLatency < 0 {
		return fmt.Errorf("memhier: negative latency in %+v", c)
	}
	if c.MSHRs < 0 || c.WriteBuffer < 0 || c.PrefetchDegree < 0 {
		return fmt.Errorf("memhier: negative structure size in %+v", c)
	}
	switch c.Prefetch {
	case "", "none", "stride", "stream":
	default:
		return fmt.Errorf("memhier: unknown prefetcher %q (want none, stride or stream)", c.Prefetch)
	}
	return nil
}

// HasL2 reports whether a second level is configured.
func (c Config) HasL2() bool { return c.L2.Sets > 0 }

func (c Config) mshrs() int {
	if c.MSHRs == 0 {
		return 4
	}
	return c.MSHRs
}

func (c Config) prefetchDegree() int {
	if c.PrefetchDegree == 0 {
		return 2
	}
	return c.PrefetchDegree
}

// Key renders the configuration as a canonical cache-key fragment: every
// field that changes timing appears, so two distinct configurations never
// collide in a memo or response cache.
func (c Config) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "l1=%d.%d.%d.%s", c.L1.Sets, c.L1.Ways, c.L1.LineBytes, c.L1.policyName())
	if c.HasL2() {
		fmt.Fprintf(&sb, ";l2=%d.%d.%d.%s", c.L2.Sets, c.L2.Ways, c.L2.LineBytes, c.L2.policyName())
	}
	fmt.Fprintf(&sb, ";lat=%d.%d;mshr=%d;wb=%d;pf=%s.%d",
		c.L2Latency, c.MemLatency, c.mshrs(), c.WriteBuffer, c.prefetchName(), c.prefetchDegree())
	return sb.String()
}

func (cc CacheConfig) policyName() Policy {
	if cc.Policy == "" {
		return PolicyLRU
	}
	return cc.Policy
}

func (c Config) prefetchName() string {
	if c.Prefetch == "" {
		return "none"
	}
	return c.Prefetch
}

// Stats counts the hierarchy's activity. All counters are monotonically
// increasing over one Hierarchy's lifetime.
type Stats struct {
	// Accesses, Loads and Stores count demand accesses.
	Accesses, Loads, Stores int64
	// L1Hits/L1Misses count demand L1 probes; L2Hits/L2Misses count L2
	// probes (demand fills and prefetch fills alike).
	L1Hits, L1Misses int64
	L2Hits, L2Misses int64
	// DemandFills counts demand misses that had to start their own fill
	// (not merged into an in-flight line).
	DemandFills int64
	// MSHRMerges counts demand misses that merged into an outstanding
	// fill (a prefetch or a write-buffer drain already in flight).
	MSHRMerges int64
	// MSHRFullStalls and WriteBufferStalls count cycles lost waiting for
	// a free MSHR or write-buffer slot (structural hazards).
	MSHRFullStalls, WriteBufferStalls int64
	// StallCycles is the total stall cycles this hierarchy charged.
	StallCycles int64
	// PrefIssued counts prefetch fills started; PrefUseful those whose
	// line served a later demand access (in flight or after install);
	// PrefLate the useful ones that arrived too late to hide the full
	// latency (the demand access still stalled).
	PrefIssued, PrefUseful, PrefLate int64
}

// L1MissRate returns L1 misses over demand accesses (0 with no accesses).
func (s *Stats) L1MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(s.Accesses)
}

// L2MissRate returns L2 misses over L2 probes (0 with no probes).
func (s *Stats) L2MissRate() float64 {
	if s.L2Hits+s.L2Misses == 0 {
		return 0
	}
	return float64(s.L2Misses) / float64(s.L2Hits+s.L2Misses)
}

// PrefetchAccuracy returns useful prefetches over issued (0 with none
// issued).
func (s *Stats) PrefetchAccuracy() float64 {
	if s.PrefIssued == 0 {
		return 0
	}
	return float64(s.PrefUseful) / float64(s.PrefIssued)
}

// PrefetchCoverage returns the fraction of misses the prefetcher served:
// useful prefetches over useful plus demand-started fills.
func (s *Stats) PrefetchCoverage() float64 {
	if s.PrefUseful+s.DemandFills == 0 {
		return 0
	}
	return float64(s.PrefUseful) / float64(s.PrefUseful+s.DemandFills)
}

// fill is one outstanding line fill: an MSHR entry, optionally doubling
// as a write-buffer entry (store) or carrying a prefetch tag.
type fill struct {
	line     uint32
	readyAt  int64
	prefetch bool
	store    bool
}

// Hierarchy is the runtime state of one configured memory hierarchy. It
// is deterministic and not safe for concurrent use; build one per
// simulated execution.
type Hierarchy struct {
	cfg   Config
	l1    *cache
	l2    *cache
	fills []fill // outstanding MSHRs, unordered
	pf    prefetcher
	stats Stats
}

// New builds a hierarchy, validating the configuration.
func New(cfg Config) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg, l1: newCache(cfg.L1)}
	if cfg.HasL2() {
		h.l2 = newCache(cfg.L2)
	}
	switch cfg.Prefetch {
	case "stride":
		h.pf = newStridePrefetcher(cfg.prefetchDegree())
	case "stream":
		h.pf = newStreamPrefetcher(cfg.prefetchDegree())
	}
	return h, nil
}

// Config returns the configuration the hierarchy was built from.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a snapshot of the activity counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// Access services one demand access at cycle now from the static
// instruction pc and returns the stall cycles to charge. now must be
// non-decreasing across calls.
func (h *Hierarchy) Access(now int64, pc int, addr uint32, store bool) int64 {
	h.stats.Accesses++
	if store {
		h.stats.Stores++
	} else {
		h.stats.Loads++
	}
	h.drain(now)
	line := h.l1.lineOf(addr)
	if hit, wasPref := h.l1.probe(line); hit {
		h.stats.L1Hits++
		if wasPref {
			h.stats.PrefUseful++
		}
		h.prefetchAfter(now, pc, addr, false, wasPref)
		return 0
	}
	h.stats.L1Misses++
	var stall int64
	prefServed := false
	if f := h.inflight(line); f != nil {
		// MSHR merge: stall only until the in-flight fill completes.
		h.stats.MSHRMerges++
		if f.prefetch {
			h.stats.PrefUseful++
			if f.readyAt > now {
				h.stats.PrefLate++
			}
			f.prefetch = false // count each prefetch at most once
			prefServed = true
		}
		if wait := f.readyAt - now; wait > 0 {
			stall += wait
			now += wait
		}
		h.drain(now)
	} else {
		stall += h.startDemandFill(&now, line, store)
	}
	h.prefetchAfter(now, pc, addr, true, prefServed)
	h.stats.StallCycles += stall
	return stall
}

// startDemandFill allocates an MSHR (stalling if none is free), computes
// the fill latency through L2, and either blocks for it (loads, or stores
// without a write buffer) or retires the store into the write buffer.
func (h *Hierarchy) startDemandFill(now *int64, line uint32, store bool) int64 {
	var stall int64
	h.stats.DemandFills++
	if wait := h.freeMSHR(*now); wait > 0 {
		h.stats.MSHRFullStalls += wait
		stall += wait
		*now += wait
		h.drain(*now)
	}
	if store && h.cfg.WriteBuffer > 0 {
		if wait := h.freeWriteBuffer(*now); wait > 0 {
			h.stats.WriteBufferStalls += wait
			stall += wait
			*now += wait
			h.drain(*now)
		}
		lat := h.fillLatency(line)
		h.fills = append(h.fills, fill{line: line, readyAt: *now + lat, store: true})
		return stall
	}
	// Blocking demand fill: the in-order machine waits for the line.
	lat := h.fillLatency(line)
	stall += lat
	*now += lat
	h.l1.fill(line, false)
	return stall
}

// drain installs every completed outstanding fill into L1 and frees its
// MSHR.
func (h *Hierarchy) drain(now int64) {
	for i := 0; i < len(h.fills); {
		if h.fills[i].readyAt <= now {
			h.l1.fill(h.fills[i].line, h.fills[i].prefetch)
			h.fills[i] = h.fills[len(h.fills)-1]
			h.fills = h.fills[:len(h.fills)-1]
		} else {
			i++
		}
	}
}

// inflight returns the outstanding fill for the line, if any.
func (h *Hierarchy) inflight(line uint32) *fill {
	for i := range h.fills {
		if h.fills[i].line == line {
			return &h.fills[i]
		}
	}
	return nil
}

// freeMSHR returns the cycles to wait until an MSHR is free (0 if one is
// free now).
func (h *Hierarchy) freeMSHR(now int64) int64 {
	if len(h.fills) < h.cfg.mshrs() {
		return 0
	}
	return h.earliest(false) - now
}

// freeWriteBuffer returns the cycles to wait until a write-buffer slot is
// free.
func (h *Hierarchy) freeWriteBuffer(now int64) int64 {
	n := 0
	for i := range h.fills {
		if h.fills[i].store {
			n++
		}
	}
	if n < h.cfg.WriteBuffer {
		return 0
	}
	return h.earliest(true) - now
}

// earliest returns the smallest readyAt among outstanding fills
// (storesOnly restricts to write-buffer entries). Callers only invoke it
// when at least one qualifying fill exists.
func (h *Hierarchy) earliest(storesOnly bool) int64 {
	var best int64 = -1
	for i := range h.fills {
		if storesOnly && !h.fills[i].store {
			continue
		}
		if best < 0 || h.fills[i].readyAt < best {
			best = h.fills[i].readyAt
		}
	}
	return best
}

// fillLatency probes (and on a miss, fills) L2 and returns the latency of
// bringing the L1 line in.
func (h *Hierarchy) fillLatency(l1Line uint32) int64 {
	if h.l2 == nil {
		return h.cfg.MemLatency
	}
	addr := l1Line * uint32(h.cfg.L1.LineBytes)
	l2Line := h.l2.lineOf(addr)
	if hit, _ := h.l2.probe(l2Line); hit {
		h.stats.L2Hits++
		return h.cfg.L2Latency
	}
	h.stats.L2Misses++
	h.l2.fill(l2Line, false)
	return h.cfg.L2Latency + h.cfg.MemLatency
}

// prefetchAfter trains the prefetcher on the access it just observed and
// lets it issue background fills.
func (h *Hierarchy) prefetchAfter(now int64, pc int, addr uint32, miss, prefHit bool) {
	if h.pf != nil {
		h.pf.observe(h, now, pc, addr, miss, prefHit)
	}
}

// prefetchLine issues one background fill for the L1 line containing
// addr, if it is not already present or in flight and an MSHR is free.
// Prefetches never stall the machine: with no free MSHR the request is
// dropped.
func (h *Hierarchy) prefetchLine(now int64, addr uint32) {
	line := h.l1.lineOf(addr)
	if h.l1.contains(line) || h.inflight(line) != nil {
		return
	}
	if len(h.fills) >= h.cfg.mshrs() {
		return
	}
	lat := h.fillLatency(line)
	h.fills = append(h.fills, fill{line: line, readyAt: now + lat, prefetch: true})
	h.stats.PrefIssued++
}
