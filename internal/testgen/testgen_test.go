package testgen

import (
	"testing"

	"boosting/internal/prog"
	"boosting/internal/sim"
)

func TestDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a, err := sim.Run(Random(seed, Config{}), sim.RefConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := sim.Run(Random(seed, Config{}), sim.RefConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if a.MemHash != b.MemHash || len(a.Out) != len(b.Out) {
			t.Fatalf("seed %d: generator not deterministic", seed)
		}
	}
}

func TestHaltingAndFaultFree(t *testing.T) {
	for seed := int64(100); seed <= 200; seed++ {
		pr := Random(seed, Config{WithCalls: seed%2 == 0, MaxDepth: 3, Segments: 8})
		if err := prog.VerifyProgram(pr); err != nil {
			t.Fatalf("seed %d: invalid program: %v", seed, err)
		}
		res, err := sim.Run(pr, sim.RefConfig{MaxSteps: 5_000_000})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Fault != nil {
			t.Fatalf("seed %d: generated program faults: %v", seed, res.Fault)
		}
		if len(res.Out) == 0 {
			t.Fatalf("seed %d: no observable output", seed)
		}
	}
}

func TestConfigKnobs(t *testing.T) {
	small := Random(1, Config{Segments: 2, Regs: 4})
	big := Random(1, Config{Segments: 14, Regs: 16})
	if big.Main().NumInsts() <= small.Main().NumInsts() {
		t.Error("more segments should generate more code")
	}
	withCalls := Random(3, Config{WithCalls: true})
	if _, ok := withCalls.Procs["leaf"]; !ok {
		t.Error("WithCalls must add the leaf procedure")
	}
	if _, ok := Random(3, Config{}).Procs["leaf"]; ok {
		t.Error("leaf must be absent without WithCalls")
	}
}
