// Package testgen generates random, deterministic, halting, fault-free
// programs for property testing. The generated CFGs mix straight-line
// arithmetic, if/else diamonds, nested bounded loops, in-bounds memory
// traffic and observable output, which exercises every scheduler path:
// speculation legality, boosting at multiple levels, join duplication,
// equivalence moves and store buffering.
//
// Generation is split into two pure phases. Derive expands a seed and a
// Config into a Recipe — a serializable structure tree in which every
// segment carries a private sub-seed — and Build materializes a Recipe
// into a program. The split gives the differential-testing shrinker a
// handle: recipes can be edited (segments dropped, loops shortened,
// nesting flattened) and rebuilt without perturbing unrelated code, and a
// persisted recipe replays identically on every Go version because the
// package uses its own splitmix64 stream, not math/rand.
package testgen

import (
	"boosting/internal/isa"
	"boosting/internal/prog"
)

// Config bounds program generation.
type Config struct {
	// Segments is the number of top-level code segments (default 6).
	Segments int `json:"segments,omitempty"`
	// MaxDepth bounds nested control structure (default 2).
	MaxDepth int `json:"maxDepth,omitempty"`
	// Regs is the size of the virtual register working set (default 8).
	Regs int `json:"regs,omitempty"`
	// WithCalls adds a small callee and call segments.
	WithCalls bool `json:"withCalls,omitempty"`
}

// builder materializes one recipe.
type builder struct {
	pr   *prog.Program
	f    *prog.Builder
	regs []isa.Reg
	base isa.Reg // pointer to a scratch array
	has  bool    // leaf callee present
}

// arrayWords is the scratch array length in words; addresses are masked
// into range so memory ops never fault.
const arrayWords = 64

// Random builds a random program from the seed; it is shorthand for
// Build(Derive(seed, cfg)).
func Random(seed int64, cfg Config) *prog.Program {
	return Build(Derive(seed, cfg))
}

// Build materializes a recipe into a program. It is pure and total for
// recipes produced by Derive or edited by the shrinker: the result always
// verifies, halts and never faults (loops are bounded, addresses masked).
func Build(rec Recipe) *prog.Program {
	pr := prog.New()

	data := newRNG(rec.DataSeed)
	var arr uint32
	for i := 0; i < arrayWords; i++ {
		a := pr.Word(int32(data.intn(1000) - 500))
		if i == 0 {
			arr = a
		}
	}

	if rec.WithCalls {
		buildCallee(pr, arr)
	}

	f := prog.NewBuilder(pr, "main")
	b := &builder{pr: pr, f: f, has: rec.WithCalls}
	regs := rec.Regs
	if regs < 2 {
		regs = 2
	}
	init := newRNG(rec.InitSeed)
	b.regs = make([]isa.Reg, regs)
	for i := range b.regs {
		b.regs[i] = f.Reg()
		f.Li(b.regs[i], int32(init.intn(200)-100))
	}
	b.base = f.Reg()
	f.La(b.base, arr)

	b.segments(rec.Segments)
	for _, r := range b.regs {
		f.Out(r)
	}
	f.Halt()
	f.Finish()
	return pr
}

// buildCallee adds a leaf procedure: RV = A0*2 + mem[arr] + 3.
func buildCallee(pr *prog.Program, arr uint32) {
	f := prog.NewBuilder(pr, "leaf")
	t := f.Reg()
	f.La(t, arr)
	f.Load(isa.LW, t, t, 0)
	f.ALU(isa.ADD, isa.RV, isa.A0, isa.A0)
	f.ALU(isa.ADD, isa.RV, isa.RV, t)
	f.Imm(isa.ADDI, isa.RV, isa.RV, 3)
	f.Ret()
	f.Finish()
}

func (b *builder) reg(r *rng) isa.Reg { return b.regs[r.intn(len(b.regs))] }

func (b *builder) segments(segs []Segment) {
	for i := range segs {
		b.segment(&segs[i])
	}
}

// segment emits one recipe node. All instruction-level choices come from
// the segment's private stream.
func (b *builder) segment(s *Segment) {
	r := newRNG(s.Seed)
	switch s.Kind {
	case SegStraight:
		b.straightLine(r, s.N)
	case SegMemory:
		b.memoryOps(r, s.N)
	case SegDiamond:
		b.diamond(r, s)
	case SegLoop:
		b.loop(r, s)
	case SegCall:
		if b.has {
			b.call(r)
		} else {
			// A shrunk recipe may orphan a call segment after WithCalls is
			// dropped; degrade to straight-line code so Build stays total.
			b.straightLine(r, 2)
		}
	default:
		b.straightLine(r, 2)
	}
}

var arithOps = []isa.Op{
	isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.NOR,
	isa.SLT, isa.SLTU, isa.MUL,
}
var immOps = []isa.Op{isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLTI}
var shiftOps = []isa.Op{isa.SLL, isa.SRL, isa.SRA}

func (b *builder) straightLine(r *rng, n int) {
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		switch r.intn(4) {
		case 0:
			b.f.ALU(arithOps[r.intn(len(arithOps))], b.reg(r), b.reg(r), b.reg(r))
		case 1:
			b.f.Imm(immOps[r.intn(len(immOps))], b.reg(r), b.reg(r), int32(r.intn(64)))
		case 2:
			b.f.Imm(shiftOps[r.intn(len(shiftOps))], b.reg(r), b.reg(r), int32(r.intn(31)))
		case 3:
			if r.intn(3) == 0 {
				b.f.Out(b.reg(r))
			} else {
				b.f.ALU(arithOps[r.intn(len(arithOps))], b.reg(r), b.reg(r), b.reg(r))
			}
		}
	}
}

// memoryOps emits loads and stores at in-bounds masked addresses.
func (b *builder) memoryOps(r *rng, n int) {
	if n < 1 {
		n = 1
	}
	idx := b.f.Reg()
	addr := b.f.Reg()
	for i := 0; i < n; i++ {
		// addr = base + (reg & (arrayWords-1))*4
		b.f.Imm(isa.ANDI, idx, b.reg(r), arrayWords-1)
		b.f.Imm(isa.SLL, idx, idx, 2)
		b.f.ALU(isa.ADD, addr, b.base, idx)
		if r.intn(2) == 0 {
			b.f.Load(isa.LW, b.reg(r), addr, 0)
		} else {
			b.f.Store(isa.SW, b.reg(r), addr, 0)
		}
	}
}

// diamond emits if/else; an empty Else arm is an if-without-else.
func (b *builder) diamond(r *rng, s *Segment) {
	thenB := b.f.Block("then")
	elseB := b.f.Block("else")
	join := b.f.Block("join")
	cond := b.reg(r)
	ops := []isa.Op{isa.BGTZ, isa.BLEZ, isa.BLTZ, isa.BGEZ, isa.BNE, isa.BEQ}
	op := ops[r.intn(len(ops))]
	rt := isa.R0
	if op == isa.BNE || op == isa.BEQ {
		rt = b.reg(r)
	}
	b.f.Branch(op, cond, rt, thenB, elseB)

	b.f.Enter(elseB)
	b.segments(s.Else)
	b.f.Jump(join)

	b.f.Enter(thenB)
	b.segments(s.Body)
	b.f.Goto(join)

	b.f.Enter(join)
}

// loop emits a bounded countdown loop over the body segments.
func (b *builder) loop(r *rng, s *Segment) {
	_ = r
	body := b.f.Block("loop")
	exit := b.f.Block("exit")
	trips := s.N
	if trips < 1 {
		trips = 1
	}
	ctr := b.f.Reg()
	b.f.Li(ctr, int32(trips))
	b.f.Goto(body)
	b.f.Enter(body)
	b.segments(s.Body)
	b.f.Imm(isa.ADDI, ctr, ctr, -1)
	b.f.Branch(isa.BGTZ, ctr, isa.R0, body, exit)
	b.f.Enter(exit)
}

// call emits a call to the leaf with a random argument.
func (b *builder) call(r *rng) {
	b.f.Move(isa.A0, b.reg(r))
	b.f.Call("leaf")
	b.f.Move(b.reg(r), isa.RV)
}
