// Package testgen generates random, deterministic, halting, fault-free
// programs for property testing. The generated CFGs mix straight-line
// arithmetic, if/else diamonds, nested bounded loops, in-bounds memory
// traffic and observable output, which exercises every scheduler path:
// speculation legality, boosting at multiple levels, join duplication,
// equivalence moves and store buffering.
package testgen

import (
	"math/rand"

	"boosting/internal/isa"
	"boosting/internal/prog"
)

// Config bounds program generation.
type Config struct {
	// Segments is the number of top-level code segments (default 6).
	Segments int
	// MaxDepth bounds nested control structure (default 2).
	MaxDepth int
	// Regs is the size of the virtual register working set (default 8).
	Regs int
	// WithCalls adds a small callee and call segments.
	WithCalls bool
}

type gen struct {
	rng  *rand.Rand
	pr   *prog.Program
	f    *prog.Builder
	regs []isa.Reg
	base isa.Reg // pointer to a scratch array
	cfg  Config
}

// arrayWords is the scratch array length in words; addresses are masked
// into range so memory ops never fault.
const arrayWords = 64

// Random builds a random program from the seed.
func Random(seed int64, cfg Config) *prog.Program {
	if cfg.Segments == 0 {
		cfg.Segments = 6
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 2
	}
	if cfg.Regs == 0 {
		cfg.Regs = 8
	}
	rng := rand.New(rand.NewSource(seed))
	pr := prog.New()

	var arr uint32
	for i := 0; i < arrayWords; i++ {
		a := pr.Word(int32(rng.Intn(1000) - 500))
		if i == 0 {
			arr = a
		}
	}

	if cfg.WithCalls {
		buildCallee(pr, arr)
	}

	f := prog.NewBuilder(pr, "main")
	g := &gen{rng: rng, pr: pr, f: f, cfg: cfg}
	g.regs = make([]isa.Reg, cfg.Regs)
	for i := range g.regs {
		g.regs[i] = f.Reg()
		f.Li(g.regs[i], int32(rng.Intn(200)-100))
	}
	g.base = f.Reg()
	f.La(g.base, arr)

	for i := 0; i < cfg.Segments; i++ {
		g.segment(cfg.MaxDepth)
	}
	for _, r := range g.regs {
		f.Out(r)
	}
	f.Halt()
	f.Finish()
	return pr
}

// buildCallee adds a leaf procedure: RV = A0*2 + mem[arr] + 3.
func buildCallee(pr *prog.Program, arr uint32) {
	f := prog.NewBuilder(pr, "leaf")
	t := f.Reg()
	f.La(t, arr)
	f.Load(isa.LW, t, t, 0)
	f.ALU(isa.ADD, isa.RV, isa.A0, isa.A0)
	f.ALU(isa.ADD, isa.RV, isa.RV, t)
	f.Imm(isa.ADDI, isa.RV, isa.RV, 3)
	f.Ret()
	f.Finish()
}

func (g *gen) reg() isa.Reg { return g.regs[g.rng.Intn(len(g.regs))] }

// segment emits one random construct.
func (g *gen) segment(depth int) {
	choice := g.rng.Intn(10)
	switch {
	case choice < 3:
		g.straightLine()
	case choice < 5 && depth > 0:
		g.diamond(depth)
	case choice < 7 && depth > 0:
		g.loop(depth)
	case choice < 8:
		g.memoryOps()
	case choice < 9 && g.cfg.WithCalls:
		g.call()
	default:
		g.straightLine()
	}
}

var arithOps = []isa.Op{
	isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.NOR,
	isa.SLT, isa.SLTU, isa.MUL,
}
var immOps = []isa.Op{isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLTI}
var shiftOps = []isa.Op{isa.SLL, isa.SRL, isa.SRA}

func (g *gen) straightLine() {
	for i := 0; i < 2+g.rng.Intn(6); i++ {
		switch g.rng.Intn(4) {
		case 0:
			g.f.ALU(arithOps[g.rng.Intn(len(arithOps))], g.reg(), g.reg(), g.reg())
		case 1:
			g.f.Imm(immOps[g.rng.Intn(len(immOps))], g.reg(), g.reg(), int32(g.rng.Intn(64)))
		case 2:
			g.f.Imm(shiftOps[g.rng.Intn(len(shiftOps))], g.reg(), g.reg(), int32(g.rng.Intn(31)))
		case 3:
			if g.rng.Intn(3) == 0 {
				g.f.Out(g.reg())
			} else {
				g.f.ALU(arithOps[g.rng.Intn(len(arithOps))], g.reg(), g.reg(), g.reg())
			}
		}
	}
}

// memoryOps emits loads and stores at in-bounds masked addresses.
func (g *gen) memoryOps() {
	idx := g.f.Reg()
	addr := g.f.Reg()
	for i := 0; i < 1+g.rng.Intn(3); i++ {
		// addr = base + (reg & (arrayWords-1))*4
		g.f.Imm(isa.ANDI, idx, g.reg(), arrayWords-1)
		g.f.Imm(isa.SLL, idx, idx, 2)
		g.f.ALU(isa.ADD, addr, g.base, idx)
		if g.rng.Intn(2) == 0 {
			g.f.Load(isa.LW, g.reg(), addr, 0)
		} else {
			g.f.Store(isa.SW, g.reg(), addr, 0)
		}
	}
}

// diamond emits if/else with random bodies; occasionally if-without-else.
func (g *gen) diamond(depth int) {
	thenB := g.f.Block("then")
	elseB := g.f.Block("else")
	join := g.f.Block("join")
	cond := g.reg()
	ops := []isa.Op{isa.BGTZ, isa.BLEZ, isa.BLTZ, isa.BGEZ, isa.BNE, isa.BEQ}
	op := ops[g.rng.Intn(len(ops))]
	rt := isa.R0
	if op == isa.BNE || op == isa.BEQ {
		rt = g.reg()
	}
	g.f.Branch(op, cond, rt, thenB, elseB)

	g.f.Enter(elseB)
	if g.rng.Intn(3) > 0 {
		g.segment(depth - 1)
	}
	g.f.Jump(join)

	g.f.Enter(thenB)
	g.segment(depth - 1)
	g.f.Goto(join)

	g.f.Enter(join)
}

// loop emits a bounded countdown loop with a random body.
func (g *gen) loop(depth int) {
	body := g.f.Block("loop")
	exit := g.f.Block("exit")
	ctr := g.f.Reg()
	g.f.Li(ctr, int32(1+g.rng.Intn(6)))
	g.f.Goto(body)
	g.f.Enter(body)
	g.segment(depth - 1)
	g.f.Imm(isa.ADDI, ctr, ctr, -1)
	g.f.Branch(isa.BGTZ, ctr, isa.R0, body, exit)
	g.f.Enter(exit)
}

// call emits a call to the leaf with a random argument.
func (g *gen) call() {
	g.f.Move(isa.A0, g.reg())
	g.f.Call("leaf")
	g.f.Move(g.reg(), isa.RV)
}
