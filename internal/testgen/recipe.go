package testgen

import (
	"encoding/json"
	"fmt"
)

// SegKind names the structural kind of one generated code segment.
type SegKind uint8

const (
	// SegStraight is a run of straight-line arithmetic (N instructions).
	SegStraight SegKind = iota
	// SegMemory is a run of in-bounds loads and stores (N memory ops).
	SegMemory
	// SegDiamond is an if/else: Body is the then-arm, Else the else-arm
	// (an empty Else is an if-without-else).
	SegDiamond
	// SegLoop is a bounded countdown loop: N trips over Body.
	SegLoop
	// SegCall is a call to the leaf procedure.
	SegCall
)

// String names the kind for logs and corpus headers.
func (k SegKind) String() string {
	switch k {
	case SegStraight:
		return "straight"
	case SegMemory:
		return "memory"
	case SegDiamond:
		return "diamond"
	case SegLoop:
		return "loop"
	case SegCall:
		return "call"
	}
	return fmt.Sprintf("SegKind(%d)", uint8(k))
}

// Segment is one node of a generation recipe's structure tree. Every
// instruction-level choice inside the segment (opcodes, register picks,
// immediates) is drawn from a private stream seeded by Seed, so editing or
// removing a sibling never perturbs this segment's code — the locality the
// delta-debugging shrinker depends on.
type Segment struct {
	Kind SegKind `json:"kind"`
	// Seed drives the segment's private instruction-choice stream.
	Seed uint64 `json:"seed"`
	// N is the instruction count (SegStraight), memory-op count
	// (SegMemory) or trip count (SegLoop).
	N int `json:"n,omitempty"`
	// Body is the loop body or the diamond's then-arm.
	Body []Segment `json:"body,omitempty"`
	// Else is the diamond's else-arm (empty = if-without-else).
	Else []Segment `json:"else,omitempty"`
}

// Recipe is the deterministic, serializable description of one generated
// program: Build(r) always constructs the same program, on every Go
// version, because all randomness flows through the package-private
// splitmix64 generator rather than math/rand's stream internals.
//
// Seed and Gen record provenance: Derive(Seed, Gen) reproduces Segments
// exactly. Shrunk recipes keep the original Seed/Gen but edited Segments.
type Recipe struct {
	// Seed is the campaign seed this recipe was derived from.
	Seed int64 `json:"seed"`
	// Gen is the generator configuration used by Derive.
	Gen Config `json:"gen"`
	// Regs is the virtual register working-set size.
	Regs int `json:"regs"`
	// WithCalls adds the leaf callee procedure (required by SegCall).
	WithCalls bool `json:"withCalls,omitempty"`
	// DataSeed and InitSeed drive the scratch-array contents and the
	// initial register values.
	DataSeed uint64 `json:"dataSeed"`
	InitSeed uint64 `json:"initSeed"`
	// Segments is the top-level structure list.
	Segments []Segment `json:"segments"`
}

// rng is a splitmix64 generator. Unlike math/rand, its output is defined
// by this file alone, so recipes replay identically across Go releases.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n). The modulo bias is irrelevant for test
// generation.
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Derive expands a campaign seed and generator configuration into a full
// recipe. It is pure: the same (seed, cfg) always yields the same recipe.
func Derive(seed int64, cfg Config) Recipe {
	cfg = cfg.withDefaults()
	r := newRNG(uint64(seed))
	rec := Recipe{
		Seed:      seed,
		Gen:       cfg,
		Regs:      cfg.Regs,
		WithCalls: cfg.WithCalls,
		DataSeed:  r.next(),
		InitSeed:  r.next(),
	}
	for i := 0; i < cfg.Segments; i++ {
		rec.Segments = append(rec.Segments, deriveSegment(r, cfg.MaxDepth, cfg.WithCalls))
	}
	return rec
}

// deriveSegment mirrors the historical kind distribution: 40% straight
// line, 20% diamond and 20% loop (when depth remains), 10% memory traffic
// and 10% calls (when enabled).
func deriveSegment(r *rng, depth int, calls bool) Segment {
	choice := r.intn(10)
	switch {
	case choice < 3:
		return Segment{Kind: SegStraight, Seed: r.next(), N: 2 + r.intn(6)}
	case choice < 5 && depth > 0:
		s := Segment{Kind: SegDiamond, Seed: r.next()}
		// Else first to mirror emission order: an empty else-arm (1 in 3)
		// makes an if-without-else.
		if r.intn(3) > 0 {
			s.Else = []Segment{deriveSegment(r, depth-1, calls)}
		}
		s.Body = []Segment{deriveSegment(r, depth-1, calls)}
		return s
	case choice < 7 && depth > 0:
		return Segment{
			Kind: SegLoop, Seed: r.next(), N: 1 + r.intn(6),
			Body: []Segment{deriveSegment(r, depth-1, calls)},
		}
	case choice < 8:
		return Segment{Kind: SegMemory, Seed: r.next(), N: 1 + r.intn(3)}
	case choice < 9 && calls:
		return Segment{Kind: SegCall, Seed: r.next()}
	default:
		return Segment{Kind: SegStraight, Seed: r.next(), N: 2 + r.intn(6)}
	}
}

// RandomShape derives a generator configuration from a campaign seed, so
// a fuzzing campaign varies program shape (segment count, nesting depth,
// register pressure, calls) across seeds instead of exploring one corner
// of the space. Like Derive, it depends only on the in-package generator.
func RandomShape(seed int64) Config {
	r := newRNG(uint64(seed) * 0x9E3779B97F4A7C15)
	r.next() // decorrelate from Derive's first draws
	return Config{
		Segments:  4 + r.intn(9),         // 4..12
		MaxDepth:  1 + r.intn(3),         // 1..3
		Regs:      []int{4, 6, 8, 12}[r.intn(4)],
		WithCalls: r.intn(4) == 0,
	}
}

// withDefaults fills the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.Segments == 0 {
		c.Segments = 6
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 2
	}
	if c.Regs == 0 {
		c.Regs = 8
	}
	return c
}

// NumSegments counts every segment in the tree, not just the top level;
// the shrinker reports minimality in these units.
func (r Recipe) NumSegments() int { return countSegments(r.Segments) }

func countSegments(segs []Segment) int {
	n := 0
	for _, s := range segs {
		n += 1 + countSegments(s.Body) + countSegments(s.Else)
	}
	return n
}

// HasCalls reports whether any segment in the tree is a SegCall.
func (r Recipe) HasCalls() bool { return hasCall(r.Segments) }

func hasCall(segs []Segment) bool {
	for _, s := range segs {
		if s.Kind == SegCall || hasCall(s.Body) || hasCall(s.Else) {
			return true
		}
	}
	return false
}

// MarshalJSON/UnmarshalJSON use the plain struct encoding; these named
// helpers exist so corpus files and CLI output agree on one compact form.

// EncodeRecipe renders the recipe as a single-line JSON document.
func EncodeRecipe(r Recipe) (string, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return "", fmt.Errorf("testgen: encode recipe: %w", err)
	}
	return string(b), nil
}

// DecodeRecipe parses a recipe from its JSON form and bounds it so that
// Build stays total on adversarial input: a hand-edited (or fuzzed) recipe
// with an enormous segment tree or instruction count is rejected here, not
// materialized.
func DecodeRecipe(s string) (Recipe, error) {
	var r Recipe
	if err := json.Unmarshal([]byte(s), &r); err != nil {
		return Recipe{}, fmt.Errorf("testgen: decode recipe: %w", err)
	}
	if r.Regs < 2 {
		return Recipe{}, fmt.Errorf("testgen: decode recipe: register working set %d too small", r.Regs)
	}
	if r.Regs > 64 {
		return Recipe{}, fmt.Errorf("testgen: decode recipe: register working set %d too large", r.Regs)
	}
	if n := r.NumSegments(); n > 10_000 {
		return Recipe{}, fmt.Errorf("testgen: decode recipe: %d segments", n)
	}
	if err := checkBounds(r.Segments); err != nil {
		return Recipe{}, fmt.Errorf("testgen: decode recipe: %w", err)
	}
	return r, nil
}

func checkBounds(segs []Segment) error {
	for _, s := range segs {
		if s.N < 0 || s.N > 10_000 {
			return fmt.Errorf("segment count/trip bound %d out of range", s.N)
		}
		if err := checkBounds(s.Body); err != nil {
			return err
		}
		if err := checkBounds(s.Else); err != nil {
			return err
		}
	}
	return nil
}
