package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"boosting"
	"boosting/internal/core"
	"boosting/internal/memhier"
	"boosting/internal/sim"
)

// SchemaVersion is the wire-schema version stamped on every /v1/* JSON
// response (success and error alike). It is bumped when a field changes
// meaning or disappears; purely additive fields do not bump it. See
// docs/SERVICE.md for the compatibility policy.
//
// Version 2: a mem block on /v1/simulate and /v1/grid plugs a finite
// memory hierarchy into the timing model. When it is present, cycles,
// scalar_cycles and speedup are measured under that hierarchy (the
// scalar baseline suffers it too), which changes the meaning of those
// fields relative to version 1's perfect-memory numbers.
const SchemaVersion = 2

// EngineName is the typed wire enum for the simulator engine: "fast"
// (default, also selected by the empty string) or "legacy". It replaces
// the earlier loose engine string: an unknown name is now rejected while
// decoding the request body, with a 400 naming the valid values.
type EngineName string

// UnmarshalJSON validates the engine name at decode time so a typo'd
// request fails immediately with the list of valid values.
func (e *EngineName) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("options.engine must be a string: %w", err)
	}
	if _, err := sim.ParseEngine(s); err != nil {
		return fmt.Errorf("options.engine: %q is not a valid engine (valid values: %s)",
			s, strings.Join(engineNames(), ", "))
	}
	*e = EngineName(s)
	return nil
}

func engineNames() []string {
	var names []string
	for _, e := range sim.Engines() {
		names = append(names, `"`+e.String()+`"`)
	}
	return names
}

// OptionsRequest is the wire form of the pipeline's functional options.
// Field names mirror the Option constructors in the boosting package.
type OptionsRequest struct {
	LocalOnly         bool `json:"local_only,omitempty"`
	InfiniteRegisters bool `json:"infinite_registers,omitempty"`
	NoEquivalence     bool `json:"no_equivalence,omitempty"`
	NoDisambiguation  bool `json:"no_disambiguation,omitempty"`
	// NoBoostedLoads forbids the scheduler from boosting loads above
	// branches (the memory-hierarchy ablation knob).
	NoBoostedLoads bool `json:"no_boosted_loads,omitempty"`
	MaxTraceBlocks int  `json:"max_trace_blocks,omitempty"`
	// Engine selects the simulator core: "fast" (default) or "legacy".
	// The engines are verified byte-identical; the knob exists for
	// differential testing and as an escape hatch.
	Engine EngineName `json:"engine,omitempty"`
}

func (o OptionsRequest) opts() []boosting.Option {
	var opts []boosting.Option
	if o.LocalOnly {
		opts = append(opts, boosting.WithLocalOnly())
	}
	if o.InfiniteRegisters {
		opts = append(opts, boosting.WithInfiniteRegisters())
	}
	if o.NoEquivalence {
		opts = append(opts, boosting.WithoutEquivalence())
	}
	if o.NoDisambiguation {
		opts = append(opts, boosting.WithoutDisambiguation())
	}
	if o.NoBoostedLoads {
		opts = append(opts, boosting.WithoutBoostedLoads())
	}
	if o.MaxTraceBlocks > 0 {
		opts = append(opts, boosting.WithMaxTraceBlocks(o.MaxTraceBlocks))
	}
	if e := o.engine(); e != sim.EngineFast {
		opts = append(opts, boosting.WithEngine(e))
	}
	return opts
}

// engine resolves the wire name to a sim.Engine; decode and validate
// have already rejected unknown names, so parse failures cannot reach
// here.
func (o OptionsRequest) engine() sim.Engine {
	e, _ := sim.ParseEngine(string(o.Engine))
	return e
}

func (o OptionsRequest) coreOptions() core.Options {
	return core.Options{
		LocalOnly:          o.LocalOnly,
		DisableEquivalence: o.NoEquivalence,
		NoDisambiguation:   o.NoDisambiguation,
		NoBoostedLoads:     o.NoBoostedLoads,
		MaxTraceBlocks:     o.MaxTraceBlocks,
	}
}

// key spells out every field so the response cache never conflates two
// distinct configurations.
func (o OptionsRequest) key() string {
	// The engine is keyed by its normalized name, so "" and "fast" — which
	// are the same configuration — share a cache entry.
	return fmt.Sprintf("local=%v;inf=%v;noeq=%v;nodis=%v;nobl=%v;trace=%d;engine=%s",
		o.LocalOnly, o.InfiniteRegisters, o.NoEquivalence, o.NoDisambiguation,
		o.NoBoostedLoads, o.MaxTraceBlocks, o.engine())
}

func (o OptionsRequest) validate() error {
	if o.MaxTraceBlocks < 0 {
		return fmt.Errorf("max_trace_blocks must be >= 0, got %d", o.MaxTraceBlocks)
	}
	// Decode already validated the engine enum; re-check defensively for
	// requests constructed in Go code rather than from JSON.
	if _, err := sim.ParseEngine(string(o.Engine)); err != nil {
		return err
	}
	return nil
}

// MemRequest is the wire form of a memory-hierarchy configuration
// (boosting.MemConfig). An absent mem block means the paper's perfect
// memory. When present, fields left at zero take the stock defaults of
// boosting.DefaultMemConfig (8 KiB direct-mapped L1, 32 KiB 4-way L2,
// 6/24-cycle latencies, 4 MSHRs, 4-entry write buffer, no prefetch);
// structure sizes that are meaningfully zero use -1 as the "disabled"
// sentinel (l2_sets: -1 removes the L2, write_buffer: -1 makes store
// misses block like loads).
type MemRequest struct {
	L1Sets      int    `json:"l1_sets,omitempty"`
	L1Ways      int    `json:"l1_ways,omitempty"`
	L1LineBytes int    `json:"l1_line_bytes,omitempty"`
	L1Policy    string `json:"l1_policy,omitempty"` // lru (default), fifo, random
	L2Sets      int    `json:"l2_sets,omitempty"`   // -1 disables the L2
	L2Ways      int    `json:"l2_ways,omitempty"`
	L2LineBytes int    `json:"l2_line_bytes,omitempty"`
	L2Policy    string `json:"l2_policy,omitempty"`
	L2Latency   int64  `json:"l2_latency,omitempty"`
	MemLatency  int64  `json:"mem_latency,omitempty"`
	MSHRs       int    `json:"mshrs,omitempty"`
	WriteBuffer int    `json:"write_buffer,omitempty"` // -1 disables it
	Prefetch    string `json:"prefetch,omitempty"`     // none (default), stride, stream
	PrefetchDegree int `json:"prefetch_degree,omitempty"`
}

// config resolves the wire block to a validated-shape MemConfig: stock
// defaults overlaid with every explicitly set field.
func (m *MemRequest) config() memhier.Config {
	cfg := memhier.Default()
	set := func(dst *int, v int) {
		if v != 0 {
			*dst = v
		}
	}
	set(&cfg.L1.Sets, m.L1Sets)
	set(&cfg.L1.Ways, m.L1Ways)
	set(&cfg.L1.LineBytes, m.L1LineBytes)
	if m.L1Policy != "" {
		cfg.L1.Policy = memhier.Policy(m.L1Policy)
	}
	if m.L2Sets < 0 {
		cfg.L2 = memhier.CacheConfig{}
	} else {
		set(&cfg.L2.Sets, m.L2Sets)
		set(&cfg.L2.Ways, m.L2Ways)
		set(&cfg.L2.LineBytes, m.L2LineBytes)
		if m.L2Policy != "" {
			cfg.L2.Policy = memhier.Policy(m.L2Policy)
		}
	}
	if m.L2Latency != 0 {
		cfg.L2Latency = m.L2Latency
	}
	if m.MemLatency != 0 {
		cfg.MemLatency = m.MemLatency
	}
	set(&cfg.MSHRs, m.MSHRs)
	if m.WriteBuffer < 0 {
		cfg.WriteBuffer = 0
	} else {
		set(&cfg.WriteBuffer, m.WriteBuffer)
	}
	if m.Prefetch != "" {
		cfg.Prefetch = m.Prefetch
	}
	set(&cfg.PrefetchDegree, m.PrefetchDegree)
	return cfg
}

func (m *MemRequest) validate() error {
	if m == nil {
		return nil
	}
	return m.config().Validate()
}

// key renders the resolved configuration canonically, so wire blocks
// that resolve to the same hierarchy share a cache entry.
func (m *MemRequest) key() string {
	if m == nil {
		return "mem=perfect"
	}
	return "mem=" + m.config().Key()
}

// MemStatsResponse reports one run's memory-hierarchy activity.
type MemStatsResponse struct {
	Accesses   int64   `json:"accesses"`
	L1Misses   int64   `json:"l1_misses"`
	L1MissRate float64 `json:"l1_miss_rate"`
	L2MissRate float64 `json:"l2_miss_rate,omitempty"`
	// MSHRMerges counts misses that merged into an in-flight fill;
	// MSHRFullStalls and WriteBufferStalls count structural-hazard
	// cycles.
	MSHRMerges        int64 `json:"mshr_merges,omitempty"`
	MSHRFullStalls    int64 `json:"mshr_full_stalls,omitempty"`
	WriteBufferStalls int64 `json:"write_buffer_stalls,omitempty"`
	// MemStalls is the total stall cycles charged; BoostedMemStalls the
	// share from speculative accesses; SquashedMemStalls the share spent
	// on speculative misses whose work was later squashed.
	MemStalls         int64 `json:"mem_stalls"`
	BoostedMemStalls  int64 `json:"boosted_mem_stalls,omitempty"`
	SquashedMemStalls int64 `json:"squashed_mem_stalls,omitempty"`
	// Prefetcher counters (zero without a prefetcher).
	PrefIssued       int64   `json:"pref_issued,omitempty"`
	PrefUseful       int64   `json:"pref_useful,omitempty"`
	PrefLate         int64   `json:"pref_late,omitempty"`
	PrefetchAccuracy float64 `json:"prefetch_accuracy,omitempty"`
	PrefetchCoverage float64 `json:"prefetch_coverage,omitempty"`
}

// memStatsResponse flattens hierarchy counters and the simulator's
// speculative-stall attribution into the wire form.
func memStatsResponse(mem *memhier.Stats, memStalls, boosted, squashed int64) *MemStatsResponse {
	if mem == nil {
		return nil
	}
	return &MemStatsResponse{
		Accesses:          mem.Accesses,
		L1Misses:          mem.L1Misses,
		L1MissRate:        mem.L1MissRate(),
		L2MissRate:        mem.L2MissRate(),
		MSHRMerges:        mem.MSHRMerges,
		MSHRFullStalls:    mem.MSHRFullStalls,
		WriteBufferStalls: mem.WriteBufferStalls,
		MemStalls:         memStalls,
		BoostedMemStalls:  boosted,
		SquashedMemStalls: squashed,
		PrefIssued:        mem.PrefIssued,
		PrefUseful:        mem.PrefUseful,
		PrefLate:          mem.PrefLate,
		PrefetchAccuracy:  mem.PrefetchAccuracy(),
		PrefetchCoverage:  mem.PrefetchCoverage(),
	}
}

// CompileRequest asks /v1/compile to schedule an assembly program for a
// machine model and return the machine-schedule listing plus stats.
type CompileRequest struct {
	// Asm is the program in the textual assembly dialect of
	// internal/prog (the format cmd/boostcc consumes).
	Asm     string         `json:"asm"`
	Model   string         `json:"model"`
	Options OptionsRequest `json:"options"`
}

func (r CompileRequest) validate() error {
	if strings.TrimSpace(r.Asm) == "" {
		return fmt.Errorf("asm is required")
	}
	if r.Model == "" {
		return fmt.Errorf("model is required")
	}
	if _, err := boosting.ModelByName(r.Model); err != nil {
		return err
	}
	return r.Options.validate()
}

func (r CompileRequest) cacheKey() string {
	return requestKey("compile", "asm:"+hashText(r.Asm), "model="+strings.ToLower(r.Model), r.Options.key())
}

// CompileResponse reports the scheduled program.
type CompileResponse struct {
	// SchemaVersion is the wire-schema version (currently 2).
	SchemaVersion int    `json:"schema_version"`
	Model         string `json:"model"`
	// Listing is the formatted machine schedule (cycles × issue slots,
	// boosting labels, recovery sites) for every procedure.
	Listing string `json:"listing"`
	// Insts counts scheduled instruction slots (NOP padding excluded).
	Insts int `json:"insts"`
	// Procs is the number of scheduled procedures.
	Procs int `json:"procs"`
	// ObjectGrowth is scheduled size (with recovery code) over original.
	ObjectGrowth float64 `json:"object_growth"`
	// PassStats is the per-pass compile report: parse, regalloc,
	// reference-run and profile rows, then the scheduler's stage rows and
	// the "schedule" row with the full scheduler counter set. Timings are
	// measured on the compile that actually ran; a cached response repeats
	// the original measurement byte-for-byte.
	PassStats *boosting.CompileStats `json:"pass_stats,omitempty"`
}

// SimulateRequest asks /v1/simulate to compile and execute either a named
// benchmark workload or a raw assembly program. Exactly one of Workload
// and Asm must be set. Dynamic selects the dynamically-scheduled
// comparison machine (Model is then ignored); otherwise Model names one
// of the paper's statically-scheduled configurations.
type SimulateRequest struct {
	Workload string         `json:"workload,omitempty"`
	Asm      string         `json:"asm,omitempty"`
	Model    string         `json:"model,omitempty"`
	Dynamic  bool           `json:"dynamic,omitempty"`
	Renaming bool           `json:"renaming,omitempty"`
	Options  OptionsRequest `json:"options"`
	// Mem plugs a finite memory hierarchy into the timing model (absent
	// = perfect memory). Architectural results are unchanged; cycles,
	// the scalar baseline and speedup are measured under the hierarchy.
	Mem *MemRequest `json:"mem,omitempty"`
}

func (r SimulateRequest) validate() error {
	hasW, hasA := r.Workload != "", strings.TrimSpace(r.Asm) != ""
	switch {
	case hasW && hasA:
		return fmt.Errorf("workload and asm are mutually exclusive")
	case !hasW && !hasA:
		return fmt.Errorf("one of workload or asm is required")
	}
	if hasW && !knownWorkload(r.Workload) {
		return fmt.Errorf("unknown workload %q (want one of %s)", r.Workload, strings.Join(boosting.Workloads(), ", "))
	}
	if r.Dynamic {
		if r.Model != "" {
			return fmt.Errorf("model and dynamic are mutually exclusive")
		}
	} else {
		if r.Model == "" {
			return fmt.Errorf("model is required (or set dynamic)")
		}
		if _, err := boosting.ModelByName(r.Model); err != nil {
			return err
		}
		if r.Renaming {
			return fmt.Errorf("renaming applies to the dynamic machine only")
		}
	}
	if err := r.Mem.validate(); err != nil {
		return err
	}
	return r.Options.validate()
}

// programID identifies the simulated program for cache keying: the
// workload name, or a content hash of the assembly text.
func (r SimulateRequest) programID() string {
	if r.Workload != "" {
		return "workload:" + r.Workload
	}
	return "asm:" + hashText(r.Asm)
}

func (r SimulateRequest) cacheKey() string {
	return requestKey("simulate", r.programID(),
		fmt.Sprintf("model=%s;dynamic=%v;renaming=%v", strings.ToLower(r.Model), r.Dynamic, r.Renaming),
		r.Options.key(), r.Mem.key())
}

// SimulateResponse reports a verified run. All fields are deterministic
// functions of the request, so identical requests always serialize to
// byte-identical bodies.
type SimulateResponse struct {
	// SchemaVersion is the wire-schema version (currently 2).
	SchemaVersion int    `json:"schema_version"`
	Workload      string `json:"workload,omitempty"`
	Machine       string `json:"machine"`
	// Engine names the simulator core that ran the program ("fast" or
	// "legacy"); empty for the dynamic machine, which has its own
	// simulator.
	Engine string `json:"engine,omitempty"`
	Cycles int64  `json:"cycles"`
	// ScalarCycles is the single-issue R2000 baseline on the same
	// program and input; Speedup is ScalarCycles/Cycles.
	ScalarCycles int64   `json:"scalar_cycles"`
	Speedup      float64 `json:"speedup"`
	Insts        int64   `json:"insts"`
	IPC          float64 `json:"ipc"`
	// BoostedExec and Squashed count speculative activity (static
	// machines only).
	BoostedExec int64 `json:"boosted_exec"`
	Squashed    int64 `json:"squashed"`
	// Mispredicts counts BTB mispredictions (dynamic machine only).
	Mispredicts        int64   `json:"mispredicts,omitempty"`
	PredictionAccuracy float64 `json:"prediction_accuracy,omitempty"`
	ObjectGrowth       float64 `json:"object_growth,omitempty"`
	// Mem reports memory-hierarchy activity; present exactly when the
	// request carried a mem block.
	Mem *MemStatsResponse `json:"mem,omitempty"`
	// OutLen is the length of the observable output stream, which was
	// verified against the reference interpreter before this response
	// was produced.
	OutLen int `json:"out_len"`
}

// GridRequest asks /v1/grid for an ablation sweep: every requested
// workload × model × ablation cell, fanned out over the experiment
// harness's worker pool. Empty lists default to the full set.
type GridRequest struct {
	Workloads []string `json:"workloads,omitempty"`
	Models    []string `json:"models,omitempty"`
	// Ablations filters boosting.Ablations() by name ("baseline",
	// "no-equiv", "no-disamb", "short-traces", "local-only").
	Ablations []string `json:"ablations,omitempty"`
	// Parallelism bounds the per-request worker pool; it is capped by
	// the server's configured grid parallelism.
	Parallelism int `json:"parallelism,omitempty"`
	// Mem plugs a finite memory hierarchy into every cell of the sweep
	// (absent = perfect memory). The scalar baselines behind each cell's
	// speedup are re-measured under the same hierarchy.
	Mem *MemRequest `json:"mem,omitempty"`
	// MemSweep fans every cell out over several memory hierarchies at
	// once: the cell's program is scheduled once and all hierarchies run
	// as lockstep lanes of one batched execution, one response row per
	// (cell, hierarchy). Mutually exclusive with Mem.
	MemSweep []*MemRequest `json:"mem_sweep,omitempty"`
}

func (r GridRequest) validate() error {
	for _, w := range r.Workloads {
		if !knownWorkload(w) {
			return fmt.Errorf("unknown workload %q", w)
		}
	}
	for _, m := range r.Models {
		if _, err := boosting.ModelByName(m); err != nil {
			return err
		}
	}
	for _, a := range r.Ablations {
		if !knownAblation(a) {
			return fmt.Errorf("unknown ablation %q (want one of %s)", a, strings.Join(ablationNames(), ", "))
		}
	}
	if r.Parallelism < 0 {
		return fmt.Errorf("parallelism must be >= 0, got %d", r.Parallelism)
	}
	if len(r.MemSweep) > 0 {
		if r.Mem != nil {
			return fmt.Errorf("mem and mem_sweep are mutually exclusive")
		}
		for i, m := range r.MemSweep {
			if m == nil {
				return fmt.Errorf("mem_sweep[%d] is null", i)
			}
			if err := m.validate(); err != nil {
				return fmt.Errorf("mem_sweep[%d]: %w", i, err)
			}
		}
	}
	return r.Mem.validate()
}

// cacheKey ignores Parallelism: results are deterministic at any worker
// count, so the same sweep at a different parallelism is the same sweep.
func (r GridRequest) cacheKey() string {
	sweep := make([]string, len(r.MemSweep))
	for i, m := range r.MemSweep {
		sweep[i] = m.key()
	}
	return requestKey("grid",
		"workloads="+strings.Join(r.Workloads, ","),
		"models="+strings.Join(lowerAll(r.Models), ","),
		"ablations="+strings.Join(r.Ablations, ","),
		r.Mem.key(),
		"sweep="+strings.Join(sweep, ";"))
}

// GridRow is one cell of the sweep. Exactly one of (Cycles, Speedup) and
// Error is meaningful.
type GridRow struct {
	Workload string `json:"workload"`
	Model    string `json:"model"`
	Ablation string `json:"ablation"`
	// Mem names the memory hierarchy of this row's lane (canonical config
	// key); present exactly when the request carried a mem_sweep.
	Mem     string  `json:"mem,omitempty"`
	Cycles  int64   `json:"cycles,omitempty"`
	Speedup float64 `json:"speedup,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// GridResponse lists every cell in deterministic (workload, model,
// ablation) order.
type GridResponse struct {
	// SchemaVersion is the wire-schema version (currently 2).
	SchemaVersion int       `json:"schema_version"`
	Cells         int       `json:"cells"`
	Rows          []GridRow `json:"rows"`
}

// errorResponse is the body of every non-2xx JSON response. Construction
// sites pass just the message; the schema_version field every /v1/*
// response carries is injected at marshal time.
type errorResponse struct {
	Error string `json:"error"`
}

// MarshalJSON stamps the wire-schema version onto every error body.
func (e errorResponse) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		SchemaVersion int    `json:"schema_version"`
		Error         string `json:"error"`
	}{SchemaVersion, e.Error})
}

func knownWorkload(name string) bool {
	for _, w := range boosting.Workloads() {
		if w == name {
			return true
		}
	}
	return false
}

func knownAblation(name string) bool {
	for _, ab := range boosting.Ablations() {
		if ab.Name == name {
			return true
		}
	}
	return false
}

func ablationNames() []string {
	var names []string
	for _, ab := range boosting.Ablations() {
		names = append(names, ab.Name)
	}
	return names
}

func lowerAll(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = strings.ToLower(s)
	}
	return out
}

func hashText(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// requestKey builds the canonical cache key for a request: the endpoint
// plus every field that can change the response (callers pass them in a
// fixed order), hashed so keys stay bounded regardless of program size.
func requestKey(endpoint string, parts ...string) string {
	return endpoint + "|" + hashText(endpoint+"|"+strings.Join(parts, "|"))
}
