package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQueueSaturates(t *testing.T) {
	q := newAdmitQueue(1, 1)
	ctx := context.Background()
	if err := q.Acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// Second caller fits in the queue; park it in a goroutine.
	admitted := make(chan struct{})
	go func() {
		if err := q.Acquire(ctx); err != nil {
			t.Errorf("queued acquire: %v", err)
		}
		close(admitted)
	}()
	waitFor(t, "waiter queued", func() bool { return q.Depth() == 1 })

	// Third caller is rejected immediately, without blocking.
	start := time.Now()
	if err := q.Acquire(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third acquire = %v, want ErrSaturated", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("saturated acquire blocked for %v", d)
	}

	q.Release()
	<-admitted
	q.Release()
	if q.Depth() != 0 || q.InFlight() != 0 {
		t.Errorf("after drain: depth=%d inflight=%d, want 0/0", q.Depth(), q.InFlight())
	}
}

func TestQueueCancelledWaiterReleasesTicket(t *testing.T) {
	q := newAdmitQueue(1, 1)
	if err := q.Acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- q.Acquire(ctx) }()
	waitFor(t, "waiter queued", func() bool { return q.Depth() == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	// The abandoned ticket is free again: a new waiter fits in the queue.
	errc2 := make(chan error, 1)
	go func() { errc2 <- q.Acquire(context.Background()) }()
	waitFor(t, "new waiter queued", func() bool { return q.Depth() == 1 })
	q.Release()
	if err := <-errc2; err != nil {
		t.Fatalf("post-cancel acquire: %v", err)
	}
	q.Release()
}

// TestQueueBoundsConcurrency hammers the queue from many goroutines and
// checks the execution-slot invariant holds throughout.
func TestQueueBoundsConcurrency(t *testing.T) {
	const maxInFlight, workers = 3, 32
	q := newAdmitQueue(maxInFlight, workers)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := q.Acquire(context.Background()); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				cur.Add(-1)
				q.Release()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > maxInFlight {
		t.Errorf("observed %d concurrent holders, cap is %d", p, maxInFlight)
	}
	if q.Depth() != 0 || q.InFlight() != 0 {
		t.Errorf("after drain: depth=%d inflight=%d", q.Depth(), q.InFlight())
	}
}
