package service

import (
	"bytes"
	"strings"
	"testing"
)

func TestHistogramCumulativeBuckets(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	h.Observe(0.005) // bucket le=0.01
	h.Observe(0.05)  // bucket le=0.1
	h.Observe(0.05)
	h.Observe(5) // +Inf only
	cum, sum, total := h.snapshot()
	want := []int64{1, 3, 3, 4}
	for i, c := range cum {
		if c != want[i] {
			t.Errorf("cum[%d] = %d, want %d", i, c, want[i])
		}
	}
	if total != 4 {
		t.Errorf("total = %d, want 4", total)
	}
	if sum < 5.1 || sum > 5.2 {
		t.Errorf("sum = %v, want ~5.105", sum)
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	// Prometheus buckets are le (less-or-equal): an observation exactly on
	// a bound belongs to that bound's bucket.
	h := newHistogram([]float64{0.01, 0.1})
	h.Observe(0.01)
	cum, _, _ := h.snapshot()
	if cum[0] != 1 {
		t.Errorf("observation at bound landed in cum=%v, want first bucket", cum)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	m := newMetricsRegistry([]string{"/a", "/b"})
	m.endpoint("/a").record(200, 0.002)
	m.endpoint("/a").record(500, 0.3)
	m.endpoint("/b").record(200, 0.004)
	m.panics.Add(2)
	m.queueDepth = func() int64 { return 7 }
	m.respCache = func() (int64, int64) { return 10, 3 }

	var b1, b2 bytes.Buffer
	m.WritePrometheus(&b1)
	m.WritePrometheus(&b2)
	if b1.String() != b2.String() {
		t.Fatal("two scrapes of an idle registry differ")
	}
	out := b1.String()
	for _, want := range []string{
		`boostd_request_seconds_bucket{endpoint="/a",le="0.005"} 1`,
		`boostd_request_seconds_bucket{endpoint="/a",le="+Inf"} 2`,
		`boostd_request_seconds_count{endpoint="/a"} 2`,
		`boostd_requests_total{endpoint="/a",code="200"} 1`,
		`boostd_requests_total{endpoint="/a",code="500"} 1`,
		`boostd_requests_total{endpoint="/b",code="200"} 1`,
		"boostd_queue_depth 7",
		"boostd_cache_hits_total 10",
		"boostd_cache_misses_total 3",
		"boostd_panics_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Endpoints render in registration order.
	if strings.Index(out, `endpoint="/a"`) > strings.Index(out, `endpoint="/b"`) {
		t.Error("endpoint order not deterministic registration order")
	}
	// Every metric family is announced with HELP and TYPE.
	for _, family := range []string{
		"boostd_request_seconds", "boostd_requests_total", "boostd_rejected_total",
		"boostd_queue_depth", "boostd_in_flight", "boostd_cache_hits_total",
		"boostd_cache_misses_total", "boostd_pipeline_cache_hits_total",
		"boostd_pipeline_cache_misses_total", "boostd_panics_total",
	} {
		if !strings.Contains(out, "# HELP "+family+" ") || !strings.Contains(out, "# TYPE "+family+" ") {
			t.Errorf("family %s missing HELP/TYPE", family)
		}
	}
}
