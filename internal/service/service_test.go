package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testAsm builds a small self-contained program in the internal/prog
// dialect: a six-element signed-sum loop with data-dependent branches, so
// every machine model does real speculation work. The seed parameterizes
// the first data word, giving tests distinct programs (and therefore
// distinct cache keys) on demand.
func testAsm(seed int) string {
	return fmt.Sprintf(`; service test program
.word %d
.word -1
.word 4
.word -1
.word 5
.word -9
.reserve 64

.proc main
entry:
	li v0, 0x10000
	li v1, 6
	li v2, 0
	li v3, 0
	;fallthrough -> loop
loop:
	add v4, v0, v3
	lw v5, 0(v4)
	bltz v5, neg, pos
pos:
	add v2, v2, v5
	j next
neg:
	sub v2, v2, v5
	sw v2, 24(v4)
	j next
next:
	addi v3, v3, 4
	addi v1, v1, -1
	bgtz v1, loop, done
done:
	out v2
	halt
`, seed)
}

func simBody(seed int, model string) string {
	b, _ := json.Marshal(SimulateRequest{Asm: testAsm(seed), Model: model})
	return string(b)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", path, err)
	}
	return resp, b
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp, b
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"ok"`) {
		t.Errorf("healthz body = %s", body)
	}
}

func TestCompileEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(CompileRequest{Asm: testAsm(3), Model: "Boost7"})

	resp, b1 := post(t, ts, "/v1/compile", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile = %d: %s", resp.StatusCode, b1)
	}
	if got := resp.Header.Get("X-Boostd-Cache"); got != "miss" {
		t.Errorf("first compile cache header = %q, want miss", got)
	}
	var cr CompileResponse
	if err := json.Unmarshal(b1, &cr); err != nil {
		t.Fatalf("decoding compile response: %v", err)
	}
	if cr.Listing == "" || cr.Insts <= 0 || cr.Procs != 1 {
		t.Errorf("suspicious compile response: insts=%d procs=%d listing=%d bytes",
			cr.Insts, cr.Procs, len(cr.Listing))
	}
	if cr.PassStats == nil {
		t.Fatal("compile response missing pass_stats")
	}
	for _, pass := range []string{"parse", "regalloc", "reference-run", "profile", "schedule"} {
		if cr.PassStats.Find(pass) == nil {
			t.Errorf("pass_stats missing %q row", pass)
		}
	}
	if st := cr.PassStats.Sched(); st == nil {
		t.Error("pass_stats schedule row missing scheduler counters")
	} else if st.TracesFormed <= 0 {
		t.Errorf("scheduler counters report %d traces formed", st.TracesFormed)
	}

	resp, b2 := post(t, ts, "/v1/compile", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second compile = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Boostd-Cache"); got != "hit" {
		t.Errorf("second compile cache header = %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("cached compile response differs from original")
	}

	// The cached second request must not re-record pass metrics: one
	// compile ran, so every pass counter reads exactly 1.
	_, mb := get(t, ts, "/metrics")
	for _, want := range []string{
		`boostd_compile_pass_seconds_count{pass="parse"} 1`,
		`boostd_compile_pass_seconds_count{pass="schedule"} 1`,
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestSimulateAsm(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, b := post(t, ts, "/v1/simulate", simBody(3, "MinBoost3"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate = %d: %s", resp.StatusCode, b)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatalf("decoding simulate response: %v", err)
	}
	if sr.Cycles <= 0 || sr.ScalarCycles <= 0 || sr.Speedup <= 0 {
		t.Errorf("suspicious cycle counts: %+v", sr)
	}
	if sr.OutLen != 1 {
		t.Errorf("out_len = %d, want 1 (single out instruction)", sr.OutLen)
	}
	if sr.Machine == "" {
		t.Errorf("machine name empty")
	}
}

func TestSimulateWorkloadAndDynamic(t *testing.T) {
	if testing.Short() {
		t.Skip("workload simulation in -short mode")
	}
	_, ts := newTestServer(t, Config{})

	resp, b := post(t, ts, "/v1/simulate", `{"workload": "grep", "model": "MinBoost3"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("workload simulate = %d: %s", resp.StatusCode, b)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if sr.Workload != "grep" || sr.Cycles <= 0 || sr.Speedup <= 0 {
		t.Errorf("suspicious workload result: %+v", sr)
	}

	resp, b = post(t, ts, "/v1/simulate", `{"workload": "grep", "dynamic": true, "renaming": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dynamic simulate = %d: %s", resp.StatusCode, b)
	}
	var dr SimulateResponse
	if err := json.Unmarshal(b, &dr); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if dr.Machine != "dynamic(renaming=true)" || dr.Cycles <= 0 {
		t.Errorf("suspicious dynamic result: %+v", dr)
	}
}

// TestConcurrentDedup is the acceptance test for result deduplication: 64
// concurrent identical simulate requests must produce byte-identical
// responses from exactly one pipeline execution, with the cache counters
// showing 63 hits and 1 miss.
func TestConcurrentDedup(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 2, QueueDepth: 4})
	var execs atomic.Int64
	s.computeHook = func(string, keyedRequest) { execs.Add(1) }

	const n = 64
	body := simBody(11, "MinBoost3")
	type result struct {
		status int
		header string
		body   []byte
	}
	results := make([]result, n)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			results[i] = result{resp.StatusCode, resp.Header.Get("X-Boostd-Cache"), b}
		}(i)
	}
	start.Done()
	done.Wait()

	misses := 0
	for i, r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, r.status, r.body)
		}
		if !bytes.Equal(r.body, results[0].body) {
			t.Fatalf("request %d body differs from request 0:\n%s\nvs\n%s", i, r.body, results[0].body)
		}
		if r.header == "miss" {
			misses++
		}
	}
	if got := execs.Load(); got != 1 {
		t.Errorf("pipeline executions = %d, want exactly 1", got)
	}
	if misses != 1 {
		t.Errorf("cache-miss responses = %d, want exactly 1", misses)
	}
	if hits, miss := s.responses.Stats(); hits != n-1 || miss != 1 {
		t.Errorf("response cache stats = (%d hits, %d misses), want (%d, 1)", hits, miss, n-1)
	}

	_, mb := get(t, ts, "/metrics")
	for _, want := range []string{
		fmt.Sprintf("boostd_cache_hits_total %d", n-1),
		"boostd_cache_misses_total 1",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSaturationAndRecovery is the acceptance test for backpressure: with
// one execution slot and one queue slot both occupied, a third distinct
// request gets an immediate 429 with Retry-After; once the queue drains,
// the same request succeeds.
func TestSaturationAndRecovery(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	block := make(chan struct{})
	var blocking atomic.Bool
	blocking.Store(true)
	s.computeHook = func(string, keyedRequest) {
		if blocking.Load() {
			<-block
		}
	}

	type outcome struct {
		status int
		body   []byte
	}
	results := make(chan outcome, 2)
	for _, seed := range []int{101, 102} {
		go func(seed int) {
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(simBody(seed, "NoBoost")))
			if err != nil {
				t.Errorf("blocked request: %v", err)
				results <- outcome{0, nil}
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			results <- outcome{resp.StatusCode, b}
		}(seed)
	}
	// Wait until one request holds the execution slot and one waits.
	waitFor(t, "slot + queue occupied", func() bool {
		return s.queue.InFlight() == 1 && s.queue.Depth() == 1
	})

	resp, body := post(t, ts, "/v1/simulate", simBody(103, "NoBoost"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request = %d, want 429: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	if !strings.Contains(string(body), "saturated") {
		t.Errorf("429 body = %s", body)
	}

	// Drain and verify full recovery: the blocked pair completes and the
	// previously rejected request now succeeds.
	blocking.Store(false)
	close(block)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("blocked request finished with %d: %s", r.status, r.body)
		}
	}
	resp, body = post(t, ts, "/v1/simulate", simBody(103, "NoBoost"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery request = %d, want 200: %s", resp.StatusCode, body)
	}

	_, mb := get(t, ts, "/metrics")
	if !strings.Contains(string(mb), `boostd_rejected_total{endpoint="/v1/simulate"} 1`) {
		t.Errorf("/metrics missing rejected counter:\n%s", mb)
	}
}

// TestCancelledWaiterReleasesQueueSlot ensures a waiter that gives up
// frees its queue slot for later arrivals.
func TestCancelledWaiterReleasesQueueSlot(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: 1})
	block := make(chan struct{})
	var blocking atomic.Bool
	blocking.Store(true)
	s.computeHook = func(string, keyedRequest) {
		if blocking.Load() {
			<-block
		}
	}

	first := make(chan outcomeStatus, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(simBody(201, "NoBoost")))
		if err != nil {
			first <- outcomeStatus{err: err}
			return
		}
		resp.Body.Close()
		first <- outcomeStatus{code: resp.StatusCode}
	}()
	waitFor(t, "leader holds slot", func() bool { return s.queue.InFlight() == 1 })

	// Second request waits in the queue, then its client gives up.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/simulate",
		strings.NewReader(simBody(202, "NoBoost")))
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	waitFor(t, "waiter queued", func() bool { return s.queue.Depth() == 1 })
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled request returned a response, want error")
	}
	waitFor(t, "queue slot released", func() bool { return s.queue.Depth() == 0 })

	// The freed slot admits a new request.
	blocking.Store(false)
	third := make(chan outcomeStatus, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(simBody(203, "NoBoost")))
		if err != nil {
			third <- outcomeStatus{err: err}
			return
		}
		resp.Body.Close()
		third <- outcomeStatus{code: resp.StatusCode}
	}()
	close(block)
	for name, c := range map[string]chan outcomeStatus{"first": first, "third": third} {
		r := <-c
		if r.err != nil {
			t.Fatalf("%s request: %v", name, r.err)
		}
		if r.code != http.StatusOK {
			t.Fatalf("%s request = %d, want 200", name, r.code)
		}
	}
}

type outcomeStatus struct {
	code int
	err  error
}

// TestPanicIsolation verifies a panicking computation turns into a 500
// for that request only: the daemon keeps serving, the panic counter
// increments, and the key is not poisoned.
func TestPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var doPanic atomic.Bool
	s.computeHook = func(string, keyedRequest) {
		if doPanic.Load() {
			panic("injected test panic")
		}
	}

	doPanic.Store(true)
	resp, body := post(t, ts, "/v1/simulate", simBody(301, "NoBoost"))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request = %d, want 500: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "internal panic") {
		t.Errorf("500 body = %s", body)
	}

	// Daemon survives and the same request now succeeds.
	doPanic.Store(false)
	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic = %d", resp.StatusCode)
	}
	resp, body = post(t, ts, "/v1/simulate", simBody(301, "NoBoost"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after panic = %d, want 200: %s", resp.StatusCode, body)
	}
	if s.metrics.panics.Load() != 1 {
		t.Errorf("panics counter = %d, want 1", s.metrics.panics.Load())
	}
	_, mb := get(t, ts, "/metrics")
	if !strings.Contains(string(mb), "boostd_panics_total 1") {
		t.Errorf("/metrics missing panic counter")
	}
}

// TestRequestDeadline verifies a computation that outlives the
// per-request deadline maps to 503 and does not poison the cache.
func TestRequestDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestTimeout: 50 * time.Millisecond})
	var slow atomic.Bool
	slow.Store(true)
	s.computeHook = func(string, keyedRequest) {
		if slow.Load() {
			time.Sleep(200 * time.Millisecond)
		}
	}

	resp, body := post(t, ts, "/v1/simulate", simBody(401, "NoBoost"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("slow request = %d, want 503: %s", resp.StatusCode, body)
	}
	slow.Store(false)
	resp, body = post(t, ts, "/v1/simulate", simBody(401, "NoBoost"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast retry = %d, want 200: %s", resp.StatusCode, body)
	}
}

func TestBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 128})
	big := `{"asm": "` + strings.Repeat("x", 1024) + `", "model": "NoBoost"}`
	resp, body := post(t, ts, "/v1/simulate", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413: %s", resp.StatusCode, body)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, _ := get(t, ts, "/v1/simulate")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET simulate = %d, want 405", resp.StatusCode)
	}
	if resp.Header.Get("Allow") != http.MethodPost {
		t.Errorf("Allow header = %q", resp.Header.Get("Allow"))
	}

	cases := []struct {
		name, path, body string
	}{
		{"invalid json", "/v1/simulate", `{"asm": `},
		{"unknown field", "/v1/simulate", `{"asm": "x", "model": "NoBoost", "bogus": 1}`},
		{"workload and asm", "/v1/simulate", `{"workload": "grep", "asm": "x", "model": "NoBoost"}`},
		{"neither workload nor asm", "/v1/simulate", `{"model": "NoBoost"}`},
		{"unknown workload", "/v1/simulate", `{"workload": "doom", "model": "NoBoost"}`},
		{"missing model", "/v1/simulate", `{"workload": "grep"}`},
		{"model with dynamic", "/v1/simulate", `{"workload": "grep", "model": "NoBoost", "dynamic": true}`},
		{"renaming without dynamic", "/v1/simulate", `{"workload": "grep", "model": "NoBoost", "renaming": true}`},
		{"unknown model", "/v1/compile", `{"asm": "x", "model": "Pentium"}`},
		{"missing asm", "/v1/compile", `{"model": "NoBoost"}`},
		{"unparsable asm", "/v1/compile", `{"asm": "not assembly at all", "model": "NoBoost"}`},
		{"unknown grid workload", "/v1/grid", `{"workloads": ["doom"]}`},
		{"unknown grid ablation", "/v1/grid", `{"ablations": ["yes-bugs"]}`},
	}
	for _, tc := range cases {
		resp, body := post(t, ts, tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body: %s)", tc.name, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), `"error"`) {
			t.Errorf("%s: body missing error field: %s", tc.name, body)
		}
	}
}

func TestGridEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep in -short mode")
	}
	_, ts := newTestServer(t, Config{})
	req := `{"workloads": ["grep"], "models": ["MinBoost3"], "ablations": ["baseline", "no-disamb"]}`

	resp, b1 := post(t, ts, "/v1/grid", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid = %d: %s", resp.StatusCode, b1)
	}
	var gr GridResponse
	if err := json.Unmarshal(b1, &gr); err != nil {
		t.Fatalf("decoding grid response: %v", err)
	}
	if gr.Cells != 2 || len(gr.Rows) != 2 {
		t.Fatalf("grid cells = %d rows = %d, want 2/2", gr.Cells, len(gr.Rows))
	}
	for _, row := range gr.Rows {
		if row.Error != "" || row.Cycles <= 0 || row.Speedup <= 0 {
			t.Errorf("bad grid row: %+v", row)
		}
	}

	resp, b2 := post(t, ts, "/v1/grid", req)
	if got := resp.Header.Get("X-Boostd-Cache"); got != "hit" {
		t.Errorf("second grid cache header = %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("cached grid response differs")
	}
}

func TestGridCellCap(t *testing.T) {
	_, ts := newTestServer(t, Config{GridCellCap: 3})
	resp, body := post(t, ts, "/v1/grid", `{}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-cap grid = %d, want 400: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "cap is 3") {
		t.Errorf("cap error body = %s", body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts, "/v1/simulate", simBody(501, "NoBoost"))
	get(t, ts, "/healthz")

	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("metrics content-type = %q", ct)
	}
	for _, want := range []string{
		`boostd_request_seconds_bucket{endpoint="/v1/simulate",le="0.001"}`,
		`boostd_request_seconds_bucket{endpoint="/v1/simulate",le="+Inf"}`,
		`boostd_request_seconds_count{endpoint="/v1/simulate"} 1`,
		`boostd_requests_total{endpoint="/v1/simulate",code="200"} 1`,
		`boostd_requests_total{endpoint="/healthz",code="200"} 1`,
		"boostd_queue_depth 0",
		"boostd_in_flight 0",
		"boostd_cache_misses_total 1",
		`boostd_compile_pass_seconds_count{pass="schedule"} 0`,
		"boostd_panics_total 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
