// Package service implements boostd's simulation-as-a-service layer: an
// HTTP/JSON API (stdlib net/http only) that exposes the staged
// boosting.Pipeline as long-lived endpoints.
//
//	POST /v1/compile   assembly in → scheduled assembly + schedule stats
//	POST /v1/simulate  workload or assembly + machine config in →
//	                   verified cycle counts + speculation stats
//	POST /v1/grid      ablation sweep fanned out over the experiment
//	                   harness's worker pool
//	GET  /healthz      liveness
//	GET  /metrics      Prometheus text format (hand-rolled)
//
// Robustness model: a bounded admission queue applies backpressure (429 +
// Retry-After when full) instead of queueing unboundedly; every request
// runs under a deadline with context cancellation threaded into the
// pipeline; request bodies are size-limited; panics are isolated per
// request and converted to 500 without killing the daemon.
//
// Hot-path model: responses are keyed by (program hash, full config) in
// an internal/cache.Memo singleflight store, so identical requests —
// including concurrent identical requests — compute once and replay as
// byte-identical bodies. Deduplicated waiters do not consume admission
// slots; only the computing leader does. See docs/SERVICE.md.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"time"

	"boosting"
	"boosting/internal/artifact"
	"boosting/internal/cache"
)

// Config parameterizes the server. The zero value is usable: every field
// falls back to the documented default.
type Config struct {
	// MaxInFlight bounds concurrently executing requests
	// (default GOMAXPROCS).
	MaxInFlight int
	// QueueDepth bounds requests waiting for an execution slot
	// (default 64). Beyond MaxInFlight+QueueDepth waiting/running
	// requests, new work is rejected with 429.
	QueueDepth int
	// RequestTimeout is the per-request deadline (default 60s).
	RequestTimeout time.Duration
	// MaxBodyBytes limits request bodies (default 1 MiB).
	MaxBodyBytes int64
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// GridParallelism bounds one grid request's internal worker pool
	// (default GOMAXPROCS); a request may ask for less but not more.
	GridParallelism int
	// GridCellCap rejects grid sweeps larger than this many cells
	// (default 1024).
	GridCellCap int
	// MaxRefSteps bounds the reference interpreter on assembly inputs,
	// so a non-terminating program cannot pin an execution slot for its
	// full deadline (default 20M steps).
	MaxRefSteps int64
	// ArtifactDir, when non-empty, enables the persistent compile-artifact
	// cache: a content-addressed disk store rooted there, consulted before
	// compiling and written through after, plus the GET /v1/artifact/{key}
	// endpoint that serves entries to peer nodes.
	ArtifactDir string
	// ArtifactMaxBytes caps the disk store; least-recently-used entries
	// are evicted beyond it (default 256 MiB).
	ArtifactMaxBytes int64
	// Peers lists sibling boostd base URLs; on an artifact-cache miss the
	// server asks each peer before compiling locally. Only meaningful with
	// ArtifactDir set.
	Peers []string
	// PeerTimeout bounds each individual peer fetch (default 5s).
	PeerTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.GridParallelism <= 0 {
		c.GridParallelism = runtime.GOMAXPROCS(0)
	}
	if c.GridCellCap <= 0 {
		c.GridCellCap = 1024
	}
	if c.MaxRefSteps <= 0 {
		c.MaxRefSteps = 20_000_000
	}
	if c.ArtifactMaxBytes <= 0 {
		c.ArtifactMaxBytes = 256 << 20
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 5 * time.Second
	}
	return c
}

// cachedResponse is a fully rendered response: replaying it is a header
// write plus a body copy, which is what makes deduplicated responses
// byte-identical by construction.
type cachedResponse struct {
	status int
	body   []byte
	// artifactSource records where the compiled program came from
	// ("compile", "disk", "peer"); replayed as the X-Boostd-Artifact
	// header. Empty when the endpoint did not touch the pipeline.
	artifactSource string
}

// Server is the boostd HTTP service. Create with New, mount via Handler.
type Server struct {
	cfg       Config
	pipe      *boosting.Pipeline
	responses *cache.Memo[*cachedResponse]
	queue     *admitQueue
	metrics   *metricsRegistry
	mux       *http.ServeMux

	// artifacts is the persistent artifact cache (nil when ArtifactDir is
	// unset).
	artifacts *artifact.Cache

	// computeHook, when non-nil, runs inside the admission slot right
	// before a cache-miss computation. Tests use it to hold slots open,
	// count real executions, and inject panics.
	computeHook func(endpoint string, req keyedRequest)
}

var heavyEndpoints = []string{"/v1/compile", "/v1/simulate", "/v1/grid"}

// New builds a Server around a fresh boosting.Pipeline. It fails only
// when the configured artifact store cannot be opened.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	var (
		ac       *artifact.Cache
		pipeOpts []boosting.Option
	)
	if cfg.ArtifactDir != "" {
		store, err := artifact.OpenStore(cfg.ArtifactDir, cfg.ArtifactMaxBytes)
		if err != nil {
			return nil, err
		}
		ac = artifact.NewCache(store, artifact.NewPeerClient(cfg.Peers, cfg.PeerTimeout))
		pipeOpts = append(pipeOpts, boosting.WithArtifactCache(ac))
	}
	s := &Server{
		cfg:       cfg,
		pipe:      boosting.NewPipeline(pipeOpts...),
		responses: cache.NewMemo[*cachedResponse](),
		queue:     newAdmitQueue(cfg.MaxInFlight, cfg.QueueDepth),
		metrics:   newMetricsRegistry(append(heavyEndpoints, "/v1/artifact", "/healthz", "/metrics")),
		mux:       http.NewServeMux(),
		artifacts: ac,
	}
	s.metrics.queueDepth = s.queue.Depth
	s.metrics.inFlight = s.queue.InFlight
	s.metrics.respCache = s.responses.Stats
	s.metrics.pipeCache = s.pipe.CacheStats
	if ac != nil {
		s.metrics.artifactStats = ac.Stats
	}

	s.mux.Handle("/v1/compile", heavyHandler(s, "/v1/compile", s.compile))
	s.mux.Handle("/v1/simulate", heavyHandler(s, "/v1/simulate", s.simulate))
	s.mux.Handle("/v1/grid", heavyHandler(s, "/v1/grid", s.grid))
	s.mux.HandleFunc("/v1/artifact/", s.handleArtifact)
	s.mux.HandleFunc("/healthz", s.healthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close flushes in-flight artifact-store writes and shuts the store
// down, returning the number of artifacts this process persisted. Call
// it after draining HTTP traffic so a SIGTERM'd node never leaves torn
// cache entries. With no artifact store configured it is a no-op.
func (s *Server) Close() (persisted int64, err error) {
	if s.artifacts == nil {
		return 0, nil
	}
	return s.artifacts.Close()
}

// Pipeline exposes the server's pipeline for tests that assert on
// schedule-pass counts.
func (s *Server) Pipeline() *boosting.Pipeline { return s.pipe }

// handleArtifact serves GET /v1/artifact/{key}: the raw encoded artifact
// bytes stored under a pipeline cache key, for sibling boostd nodes.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code := s.serveArtifact(w, r)
	s.metrics.endpoint("/v1/artifact").record(code, time.Since(start).Seconds())
}

func (s *Server) serveArtifact(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		return writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"use GET"})
	}
	if s.artifacts == nil {
		return writeJSON(w, http.StatusNotFound, errorResponse{"artifact store disabled"})
	}
	key, err := url.PathUnescape(strings.TrimPrefix(r.URL.EscapedPath(), "/v1/artifact/"))
	if err != nil || key == "" {
		return writeJSON(w, http.StatusBadRequest, errorResponse{"bad artifact key"})
	}
	// Flush queued writes first so an artifact saved by a just-finished
	// compile is immediately visible to the peer asking for it. The disk
	// tier alone is consulted — peer requests never cascade to further
	// peers, so fetch loops are impossible by construction.
	s.artifacts.Flush()
	data, ok := s.artifacts.GetRaw(key)
	if !ok {
		return writeJSON(w, http.StatusNotFound, errorResponse{"artifact not found"})
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
	return http.StatusOK
}

// keyedRequest is a decoded request body that can validate itself and
// derive its response-cache key.
type keyedRequest interface {
	validate() error
	cacheKey() string
}

// statusClientClosed mirrors the de-facto 499 "client closed request"
// code; it is only ever recorded in metrics, never sent on the wire.
const statusClientClosed = 499

// artifactSourceKey carries a per-request slot for the compiled
// program's provenance through the compute functions.
type artifactSourceKey struct{}

// withArtifactSource attaches a fresh provenance slot to ctx and returns
// it for the leader to read back after compute finishes.
func withArtifactSource(ctx context.Context) (context.Context, *string) {
	src := new(string)
	return context.WithValue(ctx, artifactSourceKey{}, src), src
}

// setArtifactSource records the compiled program's provenance for the
// current request, if a slot is attached.
func setArtifactSource(ctx context.Context, source string) {
	if p, ok := ctx.Value(artifactSourceKey{}).(*string); ok {
		*p = source
	}
}

// heavyHandler wraps a typed compute endpoint with the full serving
// discipline: method/body checks, decode+validate, response-cache lookup
// with singleflight dedup, bounded admission with backpressure,
// per-request deadline, panic isolation, and metrics.
func heavyHandler[R keyedRequest](s *Server, endpoint string, compute func(ctx context.Context, req R) (int, any)) http.Handler {
	em := s.metrics.endpoint(endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code := serveHeavy(s, endpoint, em, compute, w, r)
		em.record(code, time.Since(start).Seconds())
	})
}

// serveHeavy handles one request and returns the status code recorded in
// metrics (statusClientClosed when the client vanished first).
func serveHeavy[R keyedRequest](s *Server, endpoint string, em *endpointMetrics,
	compute func(ctx context.Context, req R) (int, any),
	w http.ResponseWriter, r *http.Request) int {

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		return writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"use POST"})
	}
	body, status, err := readBody(w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		return writeJSON(w, status, errorResponse{err.Error()})
	}
	var req R
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return writeJSON(w, http.StatusBadRequest, errorResponse{"invalid JSON body: " + err.Error()})
	}
	if err := req.validate(); err != nil {
		return writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	key := req.cacheKey()
	computed := false
	resp, err := s.responses.Do(ctx, key, func() (cr *cachedResponse, retErr error) {
		// Only the computing leader passes admission control;
		// deduplicated waiters cost nothing to serve.
		if aerr := s.queue.Acquire(ctx); aerr != nil {
			return nil, aerr
		}
		defer s.queue.Release()
		computed = true
		// Panic isolation: a panicking computation becomes a 500 for the
		// leader and every deduplicated waiter; the daemon lives on.
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.panics.Add(1)
				cr, retErr = nil, fmt.Errorf("internal panic: %v", rec)
			}
		}()
		if s.computeHook != nil {
			s.computeHook(endpoint, req)
		}
		cctx, srcp := withArtifactSource(ctx)
		status, v := compute(cctx, req)
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if status == 0 {
			// Compute bailed out on a context it saw as done; if ours is
			// somehow alive, fail the request rather than cache a hole.
			return nil, fmt.Errorf("internal: compute returned no result")
		}
		b, merr := json.Marshal(v)
		if merr != nil {
			return nil, fmt.Errorf("marshal response: %w", merr)
		}
		return &cachedResponse{status: status, body: append(b, '\n'), artifactSource: *srcp}, nil
	})

	switch {
	case err == nil:
	case errors.Is(err, ErrSaturated):
		// A full queue says nothing about the request itself: forget the
		// key so the next identical request is re-admitted.
		s.responses.Forget(key)
		em.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		return writeJSON(w, http.StatusTooManyRequests, errorResponse{"server saturated, retry later"})
	case errors.Is(err, context.Canceled):
		// Client went away; nothing useful can be written.
		return statusClientClosed
	case errors.Is(err, context.DeadlineExceeded):
		return writeJSON(w, http.StatusServiceUnavailable, errorResponse{"request deadline exceeded"})
	default:
		// Panics and other non-deterministic failures: do not cache.
		s.responses.Forget(key)
		return writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
	}

	if computed {
		w.Header().Set("X-Boostd-Cache", "miss")
	} else {
		w.Header().Set("X-Boostd-Cache", "hit")
	}
	if resp.artifactSource != "" {
		w.Header().Set("X-Boostd-Artifact", resp.artifactSource)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.status)
	w.Write(resp.body)
	return resp.status
}

func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// readBody drains the size-limited request body, distinguishing an
// oversized body (413) from an unreadable one (400).
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, int, error) {
	lr := http.MaxBytesReader(w, r.Body, limit)
	defer lr.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(lr); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", limit)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("reading body: %w", err)
	}
	return buf.Bytes(), http.StatusOK, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) int {
	b, err := json.Marshal(v)
	if err != nil {
		status = http.StatusInternalServerError
		b = []byte(`{"schema_version":1,"error":"encoding failure"}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
	return status
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code := writeJSON(w, http.StatusOK, map[string]any{"schema_version": SchemaVersion, "status": "ok"})
	s.metrics.endpoint("/healthz").record(code, time.Since(start).Seconds())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
	s.metrics.endpoint("/metrics").record(http.StatusOK, time.Since(start).Seconds())
}
