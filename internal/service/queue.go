package service

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrSaturated is returned by admitQueue.Acquire when both every
// execution slot and every waiting slot are taken; handlers translate it
// to 429 Too Many Requests with a Retry-After hint.
var ErrSaturated = errors.New("service: admission queue full")

// admitQueue is the daemon's bounded admission queue: at most maxInFlight
// requests execute concurrently and at most maxQueue more may wait for a
// slot. Anything beyond that is rejected immediately — backpressure
// instead of unbounded goroutine pileup. A waiter whose context is
// cancelled releases its waiting slot on the way out.
type admitQueue struct {
	tickets chan struct{} // waiting + running
	running chan struct{} // running only
	waiting atomic.Int64
}

func newAdmitQueue(maxInFlight, maxQueue int) *admitQueue {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admitQueue{
		tickets: make(chan struct{}, maxInFlight+maxQueue),
		running: make(chan struct{}, maxInFlight),
	}
}

// Acquire claims an execution slot, waiting in the bounded queue if all
// slots are busy. It returns ErrSaturated without blocking when the
// queue itself is full, and ctx.Err() if the caller gives up first.
// Every successful Acquire must be paired with Release.
func (q *admitQueue) Acquire(ctx context.Context) error {
	select {
	case q.tickets <- struct{}{}:
	default:
		return ErrSaturated
	}
	q.waiting.Add(1)
	defer q.waiting.Add(-1)
	select {
	case q.running <- struct{}{}:
		return nil
	case <-ctx.Done():
		<-q.tickets
		return ctx.Err()
	}
}

// Release frees the execution slot claimed by a successful Acquire.
func (q *admitQueue) Release() {
	<-q.running
	<-q.tickets
}

// Depth reports how many requests are waiting (admitted but not yet
// executing).
func (q *admitQueue) Depth() int64 { return q.waiting.Load() }

// InFlight reports how many requests hold execution slots.
func (q *admitQueue) InFlight() int64 { return int64(len(q.running)) }
