package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"boosting"
	"boosting/internal/core"
	"boosting/internal/dynsched"
	"boosting/internal/experiments"
	"boosting/internal/isa"
	"boosting/internal/machine"
	"boosting/internal/memhier"
	"boosting/internal/passes"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/regalloc"
	"boosting/internal/sim"
)

// The compute functions below return (HTTP status, response value).
// Deterministic domain failures — unparsable programs, runaway programs,
// verification mismatches — are ordinary (non-2xx, errorResponse)
// outcomes and therefore cache like successes: the same broken request
// will fail the same way every time. Context errors never reach here;
// serveHeavy checks ctx after compute returns.

// compile schedules an assembly program for a machine model and returns
// the machine-schedule listing plus schedule statistics and the per-pass
// compile report. The stages mirror prepareAsm, but run as named passes
// so the response (and the boostd_compile_pass_seconds metric) can
// attribute compile time to each of them.
func (s *Server) compile(ctx context.Context, req CompileRequest) (int, any) {
	model, _ := boosting.ModelByName(req.Model)
	pm := passes.NewManager()
	var (
		pr       *prog.Program
		stageErr error
	)
	// run times fn as a named pass; stageErr keeps the raw error so the
	// response message stays "stage: cause" rather than the manager's
	// wrapped form.
	run := func(name string, fn func() error) bool {
		_ = pm.Run(name, func() error {
			stageErr = fn()
			return stageErr
		})
		return stageErr == nil
	}

	if !run("parse", func() error {
		var err error
		pr, err = prog.Parse(req.Asm)
		return err
	}) {
		return http.StatusBadRequest, errorResponse{fmt.Sprintf("parse: %v", stageErr)}
	}
	if !req.Options.InfiniteRegisters {
		if !run("regalloc", func() error {
			_, err := regalloc.Allocate(pr)
			return err
		}) {
			return http.StatusUnprocessableEntity, errorResponse{fmt.Sprintf("regalloc: %v", stageErr)}
		}
	}
	if err := ctx.Err(); err != nil {
		return 0, nil
	}
	// The bounded reference run proves the program halts before
	// profile.Annotate re-runs it without a step limit.
	if !run("reference-run", func() error {
		_, err := sim.Run(pr, sim.RefConfig{MaxSteps: s.cfg.MaxRefSteps})
		return err
	}) {
		return http.StatusUnprocessableEntity, errorResponse{fmt.Sprintf("reference run: %v", stageErr)}
	}
	if !run("profile", func() error { return profile.Annotate(pr) }) {
		return http.StatusUnprocessableEntity, errorResponse{fmt.Sprintf("profile: %v", stageErr)}
	}
	if err := ctx.Err(); err != nil {
		return 0, nil
	}
	sp, err := pm.Schedule(pr, model, req.Options.coreOptions())
	if err != nil {
		return http.StatusUnprocessableEntity, errorResponse{fmt.Sprintf("schedule: %v", err)}
	}
	s.metrics.recordCompilePasses(pm.Stats())
	var sb strings.Builder
	for _, name := range pr.Order {
		sb.WriteString(sp.Procs[name].Format())
	}
	return http.StatusOK, CompileResponse{
		SchemaVersion: SchemaVersion,
		Model:         model.Name,
		Listing:       sb.String(),
		Insts:         sp.NumInsts(),
		Procs:         len(sp.Procs),
		ObjectGrowth:  sp.ObjectGrowth(),
		PassStats:     pm.Stats(),
	}
}

// simulate compiles and executes a workload or assembly program and
// reports verified cycle counts and speculation statistics.
func (s *Server) simulate(ctx context.Context, req SimulateRequest) (int, any) {
	if req.Workload != "" {
		return s.simulateWorkload(ctx, req)
	}
	return s.simulateAsm(ctx, req)
}

// simulateWorkload routes through the shared boosting.Pipeline, so
// compiled artifacts and scalar baselines are reused across requests.
func (s *Server) simulateWorkload(ctx context.Context, req SimulateRequest) (int, any) {
	c, err := s.pipe.Compile(ctx, req.Workload, req.Options.opts()...)
	if err != nil {
		return domainStatus(err)
	}
	setArtifactSource(ctx, c.Source())
	opts := req.Options.opts()
	if req.Mem != nil {
		opts = append(opts, boosting.WithMemHier(req.Mem.config()))
	}
	if req.Dynamic {
		res, err := s.pipe.SimulateDynamic(ctx, c, req.Renaming, opts...)
		if err != nil {
			return domainStatus(err)
		}
		s.metrics.recordMem(res.Mem)
		return http.StatusOK, SimulateResponse{
			SchemaVersion: SchemaVersion,
			Workload:      req.Workload,
			Machine:       fmt.Sprintf("dynamic(renaming=%v)", req.Renaming),
			Cycles:        res.Cycles,
			ScalarCycles:  res.ScalarCycles,
			Speedup:       res.Speedup,
			Mispredicts:   res.Mispredicts,
			Mem:           memStatsResponse(res.Mem, res.MemStalls, 0, 0),
			OutLen:        len(res.Out),
		}
	}
	model, _ := boosting.ModelByName(req.Model)
	res, err := s.pipe.Simulate(ctx, c, model, opts...)
	if err != nil {
		return domainStatus(err)
	}
	s.metrics.recordEngine(res.Engine)
	s.metrics.recordMem(res.Mem)
	return http.StatusOK, SimulateResponse{
		SchemaVersion:      SchemaVersion,
		Workload:           req.Workload,
		Machine:            model.Name,
		Engine:             res.Engine,
		Cycles:             res.Cycles,
		ScalarCycles:       res.ScalarCycles,
		Speedup:            res.Speedup,
		Insts:              res.Insts,
		IPC:                ratio(res.Insts, res.Cycles),
		BoostedExec:        res.BoostedExec,
		Squashed:           res.Squashed,
		PredictionAccuracy: res.PredictionAccuracy,
		ObjectGrowth:       res.ObjectGrowth,
		Mem:                memStatsResponse(res.Mem, res.MemStalls, res.BoostedMemStalls, res.SquashedMemStalls),
		OutLen:             len(res.Out),
	}
}

// simulateAsm runs the full pipeline on a caller-supplied program:
// parse, register-allocate (unless infinite registers), self-profile,
// reference-interpret, schedule, execute, and verify. The profile is
// trained on the same input it predicts — callers benchmarking the
// predictor should use named workloads, which keep the paper's
// train/test split.
func (s *Server) simulateAsm(ctx context.Context, req SimulateRequest) (int, any) {
	pr, ref, status, eresp := s.prepareAsm(ctx, req.Asm, req.Options.InfiniteRegisters)
	if eresp != nil {
		return status, eresp
	}
	if err := ctx.Err(); err != nil {
		return 0, nil
	}

	engine := req.Options.engine()
	var mem *memhier.Config
	if req.Mem != nil {
		cfg := req.Mem.config()
		mem = &cfg
	}
	scalar, eresp := s.asmScalarBaseline(pr, ref, engine, mem)
	if eresp != nil {
		return http.StatusUnprocessableEntity, eresp
	}
	if err := ctx.Err(); err != nil {
		return 0, nil
	}

	if req.Dynamic {
		cfg := dynsched.Default()
		cfg.Renaming = req.Renaming
		cfg.Mem = mem
		res, err := dynsched.Simulate(prog.Clone(pr), cfg)
		if err != nil {
			return http.StatusUnprocessableEntity, errorResponse{fmt.Sprintf("dynamic simulation: %v", err)}
		}
		if err := verifyAgainst(ref, res.Out, res.MemHash); err != nil {
			return http.StatusInternalServerError, errorResponse{err.Error()}
		}
		s.metrics.recordMem(res.Mem)
		return http.StatusOK, SimulateResponse{
			SchemaVersion: SchemaVersion,
			Machine:       fmt.Sprintf("dynamic(renaming=%v)", req.Renaming),
			Cycles:        res.Cycles,
			ScalarCycles:  scalar,
			Speedup:       ratio(scalar, res.Cycles),
			Mispredicts:   res.Mispredicts,
			Mem:           memStatsResponse(res.Mem, res.MemStalls, 0, 0),
			OutLen:        len(res.Out),
		}
	}

	model, _ := boosting.ModelByName(req.Model)
	sp, err := core.Schedule(prog.Clone(pr), model, req.Options.coreOptions())
	if err != nil {
		return http.StatusUnprocessableEntity, errorResponse{fmt.Sprintf("schedule: %v", err)}
	}
	if err := ctx.Err(); err != nil {
		return 0, nil
	}
	res, err := sim.Exec(sp, sim.ExecConfig{Engine: engine, MaxCycles: s.execCycleCap(), Mem: mem})
	if err != nil {
		return http.StatusUnprocessableEntity, errorResponse{fmt.Sprintf("simulation: %v", err)}
	}
	if err := verifyAgainst(ref, res.Out, res.MemHash); err != nil {
		return http.StatusInternalServerError, errorResponse{err.Error()}
	}
	s.metrics.recordEngine(engine.String())
	s.metrics.recordMem(res.Mem)
	return http.StatusOK, SimulateResponse{
		SchemaVersion:      SchemaVersion,
		Machine:            model.Name,
		Engine:             engine.String(),
		Cycles:             res.Cycles,
		ScalarCycles:       scalar,
		Speedup:            ratio(scalar, res.Cycles),
		Insts:              res.Insts,
		IPC:                ratio(res.Insts, res.Cycles),
		BoostedExec:        res.BoostedExec,
		Squashed:           res.Squashed,
		PredictionAccuracy: selfAccuracy(pr),
		ObjectGrowth:       sp.ObjectGrowth(),
		Mem:                memStatsResponse(res.Mem, res.MemStalls, res.BoostedMemStalls, res.SquashedMemStalls),
		OutLen:             len(res.Out),
	}
}

// prepareAsm parses and readies a caller-supplied program: register
// allocation (unless infinite registers), then a bounded run that both
// serves as the reference for verification and proves the program halts
// before profile.Annotate re-runs it without a step limit.
func (s *Server) prepareAsm(ctx context.Context, asm string, infiniteReg bool) (*prog.Program, *sim.Result, int, *errorResponse) {
	pr, err := prog.Parse(asm)
	if err != nil {
		return nil, nil, http.StatusBadRequest, &errorResponse{fmt.Sprintf("parse: %v", err)}
	}
	if !infiniteReg {
		if _, err := regalloc.Allocate(pr); err != nil {
			return nil, nil, http.StatusUnprocessableEntity, &errorResponse{fmt.Sprintf("regalloc: %v", err)}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, 0, &errorResponse{}
	}
	ref, err := sim.Run(pr, sim.RefConfig{MaxSteps: s.cfg.MaxRefSteps})
	if err != nil {
		return nil, nil, http.StatusUnprocessableEntity, &errorResponse{fmt.Sprintf("reference run: %v", err)}
	}
	if err := profile.Annotate(pr); err != nil {
		return nil, nil, http.StatusUnprocessableEntity, &errorResponse{fmt.Sprintf("profile: %v", err)}
	}
	return pr, ref, http.StatusOK, nil
}

// selfAccuracy reads the static predictor's accuracy straight out of the
// self-trained profile counts: the majority direction is predicted, so
// the majority count is the correct count.
func selfAccuracy(pr *prog.Program) float64 {
	var total, correct int64
	for _, p := range pr.ProcList() {
		for _, b := range p.Blocks {
			t := b.Terminator()
			if t == nil || !isa.IsCondBranch(t.Op) {
				continue
			}
			total += b.Count
			if maj := b.Count - b.TakenCount; maj > b.TakenCount {
				correct += maj
			} else {
				correct += b.TakenCount
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(correct) / float64(total)
}

// asmScalarBaseline measures the single-issue R2000 baseline for a
// prepared assembly program on the requested simulator engine, under
// the same memory hierarchy (if any) as the boosted run it normalizes.
func (s *Server) asmScalarBaseline(pr *prog.Program, ref *sim.Result, engine sim.Engine, mem *memhier.Config) (int64, *errorResponse) {
	sp, err := core.Schedule(prog.Clone(pr), machine.Scalar(), core.Options{LocalOnly: true})
	if err != nil {
		return 0, &errorResponse{fmt.Sprintf("scalar baseline schedule: %v", err)}
	}
	res, err := sim.Exec(sp, sim.ExecConfig{Engine: engine, MaxCycles: s.execCycleCap(), Mem: mem})
	if err != nil {
		return 0, &errorResponse{fmt.Sprintf("scalar baseline: %v", err)}
	}
	if err := verifyAgainst(ref, res.Out, res.MemHash); err != nil {
		return 0, &errorResponse{"scalar baseline: " + err.Error()}
	}
	return res.Cycles, nil
}

func (s *Server) execCycleCap() int64 { return s.cfg.MaxRefSteps * 8 }

// grid runs a workload × model × ablation sweep, fanned out over the
// experiment harness's bounded worker pool. One grid request holds one
// admission slot; its internal parallelism is capped by the server.
func (s *Server) grid(ctx context.Context, req GridRequest) (int, any) {
	workloadNames := req.Workloads
	if len(workloadNames) == 0 {
		workloadNames = boosting.Workloads()
	}
	modelNames := req.Models
	var models []*machine.Model
	if len(modelNames) == 0 {
		ms := boosting.Models()
		models = []*machine.Model{ms.Scalar, ms.NoBoost, ms.Squashing, ms.Boost1, ms.MinBoost3, ms.Boost7}
	} else {
		for _, name := range modelNames {
			m, _ := boosting.ModelByName(name)
			models = append(models, m)
		}
	}

	var cells []boosting.GridCell
	if len(req.Ablations) == 0 {
		cells = boosting.AblationCells(workloadNames, models)
	} else {
		byName := map[string]boosting.Ablation{}
		for _, ab := range boosting.Ablations() {
			byName[ab.Name] = ab
		}
		for _, w := range workloadNames {
			for _, m := range models {
				for _, name := range req.Ablations {
					ab := byName[name]
					cells = append(cells, boosting.GridCell{
						Workload: w, Model: m, Opts: ab.Opts, Label: ab.Name,
					})
				}
			}
		}
	}
	if req.Mem != nil {
		// Every cell — including the scalar baselines the pipeline
		// measures internally — runs under the requested hierarchy.
		memOpt := boosting.WithMemHier(req.Mem.config())
		for i := range cells {
			opts := make([]boosting.Option, len(cells[i].Opts), len(cells[i].Opts)+1)
			copy(opts, cells[i].Opts)
			cells[i].Opts = append(opts, memOpt)
		}
	}
	total := len(cells)
	if n := len(req.MemSweep); n > 0 {
		total *= n
	}
	if total > s.cfg.GridCellCap {
		return http.StatusBadRequest, errorResponse{
			fmt.Sprintf("sweep has %d cells, cap is %d — narrow workloads/models/ablations", total, s.cfg.GridCellCap)}
	}

	workers := s.cfg.GridParallelism
	if req.Parallelism > 0 && req.Parallelism < workers {
		workers = req.Parallelism
	}
	if len(req.MemSweep) > 0 {
		return s.gridMemSweep(ctx, req, cells, workers)
	}
	rows := make([]GridRow, len(cells))
	err := experiments.ForEachLimited(ctx, len(cells), workers, func(ctx context.Context, i int) error {
		cell := cells[i]
		rows[i] = GridRow{Workload: cell.Workload, Model: cell.Model.Name, Ablation: cell.Label}
		res, err := s.pipe.Run(ctx, cell.Workload, cell.Model, cell.Opts...)
		switch {
		case err == nil:
			rows[i].Cycles = res.Cycles
			rows[i].Speedup = res.Speedup
		case ctx.Err() != nil:
			// The request itself was cancelled or timed out.
			return ctx.Err()
		default:
			// A failing cell — including one that inherited a cancelled
			// flight from an unrelated request's pipeline memo — is
			// reported in its row; it must not abort the rest of the
			// sweep.
			rows[i].Error = err.Error()
		}
		return nil
	})
	if err != nil {
		// Only context errors escape the per-cell handling above;
		// serveHeavy turns them into 503/closed-connection.
		return 0, nil
	}
	return http.StatusOK, GridResponse{SchemaVersion: SchemaVersion, Cells: len(cells), Rows: rows}
}

// gridMemSweep is the mem_sweep form of the grid: each cell schedules its
// program once and runs every requested memory hierarchy as a lane of one
// lockstep batched execution (Pipeline.SimulateBatch), producing one row
// per (cell, hierarchy). The worker pool fans out over cells; the
// per-cell hierarchy fan-out is the batch itself.
func (s *Server) gridMemSweep(ctx context.Context, req GridRequest, cells []boosting.GridCell, workers int) (int, any) {
	n := len(req.MemSweep)
	memKeys := make([]string, n)
	lanes := make([][]boosting.Option, n)
	for k, m := range req.MemSweep {
		cfg := m.config()
		memKeys[k] = cfg.Key()
		lanes[k] = []boosting.Option{boosting.WithMemHier(cfg)}
	}
	rows := make([]GridRow, len(cells)*n)
	err := experiments.ForEachLimited(ctx, len(cells), workers, func(ctx context.Context, i int) error {
		cell := cells[i]
		cellRows := rows[i*n : (i+1)*n]
		for k := range cellRows {
			cellRows[k] = GridRow{
				Workload: cell.Workload, Model: cell.Model.Name,
				Ablation: cell.Label, Mem: memKeys[k],
			}
		}
		// Cell-level failures (compile, schedule, lane validation) land in
		// every one of the cell's rows; like the plain grid, they must not
		// abort the rest of the sweep.
		fail := func(err error) error {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			for k := range cellRows {
				cellRows[k].Error = err.Error()
			}
			return nil
		}
		c, err := s.pipe.Compile(ctx, cell.Workload, cell.Opts...)
		if err != nil {
			return fail(err)
		}
		results, errs, err := s.pipe.SimulateBatch(ctx, c, cell.Model, lanes, cell.Opts...)
		if err != nil {
			return fail(err)
		}
		for k := range cellRows {
			switch {
			case errs[k] == nil:
				cellRows[k].Cycles = results[k].Cycles
				cellRows[k].Speedup = results[k].Speedup
			case ctx.Err() != nil:
				return ctx.Err()
			default:
				cellRows[k].Error = errs[k].Error()
			}
		}
		return nil
	})
	if err != nil {
		return 0, nil
	}
	return http.StatusOK, GridResponse{SchemaVersion: SchemaVersion, Cells: len(rows), Rows: rows}
}

// domainStatus classifies a pipeline error: context errors are handed
// back untouched for serveHeavy to map (the zero status is never written
// because serveHeavy re-checks ctx), everything else is a deterministic
// domain failure.
func domainStatus(err error) (int, any) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 0, nil
	}
	return http.StatusUnprocessableEntity, errorResponse{err.Error()}
}

// verifyAgainst compares a simulated run's observables with the
// reference interpreter's.
func verifyAgainst(ref *sim.Result, out []uint32, memHash uint64) error {
	if len(out) != len(ref.Out) {
		return fmt.Errorf("verification failed: %d outputs, want %d", len(out), len(ref.Out))
	}
	for i := range out {
		if out[i] != ref.Out[i] {
			return fmt.Errorf("verification failed: out[%d] = %d, want %d", i, out[i], ref.Out[i])
		}
	}
	if memHash != ref.MemHash {
		return fmt.Errorf("verification failed: final memory differs")
	}
	return nil
}

// ratio is a/b guarding the b==0 edge.
func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
