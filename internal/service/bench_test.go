package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// BenchmarkSimulateHot measures the dedup fast path: every request hits
// the rendered-response cache.
func BenchmarkSimulateHot(b *testing.B) {
	ts, body := benchServer(b)
	benchPost(b, ts, body) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts, body)
	}
}

// BenchmarkSimulateCold measures the full pipeline path: every request
// carries a distinct program, so nothing is reusable.
func BenchmarkSimulateCold(b *testing.B) {
	ts, _ := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts, simBenchBody(1000+i))
	}
}

func benchServer(b *testing.B) (*httptest.Server, string) {
	b.Helper()
	s, err := New(Config{})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	return ts, simBenchBody(0)
}

func simBenchBody(seed int) string {
	bs, _ := json.Marshal(SimulateRequest{Asm: testAsm(seed), Model: "MinBoost3"})
	return string(bs)
}

func benchPost(tb testing.TB, ts *httptest.Server, body string) {
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		tb.Fatalf("POST: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("status %d", resp.StatusCode)
	}
}

// benchStats summarizes one measured configuration.
type benchStats struct {
	Requests      int     `json:"requests"`
	ThroughputQPS float64 `json:"throughput_qps"`
	P50Micros     float64 `json:"p50_us"`
	P99Micros     float64 `json:"p99_us"`
}

// TestWriteBenchJSON measures /v1/simulate throughput and latency
// percentiles with a hot and a cold response cache and writes the result
// to the file named by BOOSTD_BENCH_JSON. It is skipped unless that
// variable is set, so `go test ./...` stays quiet; `make bench-json`
// drives it.
func TestWriteBenchJSON(t *testing.T) {
	out := os.Getenv("BOOSTD_BENCH_JSON")
	if out == "" {
		t.Skip("set BOOSTD_BENCH_JSON=path to write the service benchmark file")
	}
	s, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const hotN, coldN = 400, 60
	benchPost(t, ts, simBenchBody(0)) // warm
	hot := measure(t, ts, hotN, func(int) string { return simBenchBody(0) })
	cold := measure(t, ts, coldN, func(i int) string { return simBenchBody(5000 + i) })

	report := map[string]any{
		"benchmark":  "boostd /v1/simulate",
		"go":         runtime.Version(),
		"hot_cache":  hot,
		"cold_cache": cold,
		"speedup_p50": func() float64 {
			if hot.P50Micros == 0 {
				return 0
			}
			return cold.P50Micros / hot.P50Micros
		}(),
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: hot p50=%.1fus p99=%.1fus (%.0f qps), cold p50=%.1fus p99=%.1fus (%.0f qps)",
		out, hot.P50Micros, hot.P99Micros, hot.ThroughputQPS,
		cold.P50Micros, cold.P99Micros, cold.ThroughputQPS)
}

func measure(t *testing.T, ts *httptest.Server, n int, body func(i int) string) benchStats {
	t.Helper()
	lat := make([]float64, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		benchPost(t, ts, body(i))
		lat[i] = float64(time.Since(t0).Microseconds())
	}
	elapsed := time.Since(start).Seconds()
	sort.Float64s(lat)
	return benchStats{
		Requests:      n,
		ThroughputQPS: float64(n) / elapsed,
		P50Micros:     percentile(lat, 0.50),
		P99Micros:     percentile(lat, 0.99),
	}
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
